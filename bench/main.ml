(* Benchmark and figure-reproduction harness.

   The paper (Middleware 2003) is a design/implementation paper whose
   published evaluation is qualitative; its figures are an architecture
   diagram (Fig. 1), the extended architecture (Fig. 2) and an example
   policy (Fig. 3). This harness regenerates all three as executable
   artifacts, and adds the quantitative microbenchmarks (T1-T7 in
   DESIGN.md) that measure the cost of the paper's design decisions:
   what the authorization callout adds to the critical path, how policy
   evaluation scales, and what each integration backend (flat-file,
   Akenti, CAS) costs.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- f1 t2   # selected experiments *)

open Core
open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)

let run_tests ?(quota = 0.5) tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"" ~fmt:"%s%s" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  (* name -> ns/run *)
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (ns :: _) -> (name, ns) :: acc
      | Some [] | None -> acc)
    results []

(* Every printed table is also retained so --json can dump the whole run
   machine-readably at the end. *)
let collected : (string * (string * float) list) list ref = ref []

(* Experiments with enforced acceptance bounds (T20's allocation ceiling,
   divergence checks) record failures here; the harness exits 1 if any
   tripped, so CI can gate on a bench run. *)
let bench_failures = ref 0

let print_table title rows =
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  collected := (title, rows) :: !collected;
  Printf.printf "\n-- %s\n" title;
  Printf.printf "   %-42s %14s\n" "case" "ns/op";
  List.iter (fun (name, ns) -> Printf.printf "   %-42s %14.0f\n" name ns) rows

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path tables =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let experiment (title, rows) =
        Printf.sprintf "{\"title\":\"%s\",\"rows\":[%s]}" (json_escape title)
          (String.concat ","
             (List.map
                (fun (name, ns) ->
                  Printf.sprintf "{\"case\":\"%s\",\"ns_per_op\":%.1f}" (json_escape name) ns)
                rows))
      in
      output_string oc
        (Printf.sprintf "{\"harness\":\"grid-authz-bench\",\"experiments\":[%s]}\n"
           (String.concat "," (List.map experiment tables))));
  Printf.printf "\n(wrote %s)\n" path

let section name = Printf.printf "\n=== %s ===\n" name

(* ------------------------------------------------------------------ *)
(* Figure reproductions                                                 *)

(* Figure 1: interaction of the main components of GRAM (GT2 baseline). *)
let figure1 () =
  section "Figure 1: GT2 GRAM component interaction (baseline mode)";
  let w = Fusion.build ~backend:`Baseline () in
  (match
     Gram.Client.submit_sync w.Fusion.kate
       ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(simduration=100)"
   with
  | Ok r -> begin
    ignore (Gram.Client.status_sync w.Fusion.kate ~contact:r.Gram.Protocol.job_contact);
    Testbed.run w.Fusion.testbed
  end
  | Error e -> Printf.printf "unexpected: %s\n" (Gram.Protocol.submit_error_to_string e));
  Fmt.pr "%a@." Sim.Trace.pp (Gram.Resource.trace w.Fusion.resource);
  Printf.printf
    "(no 'authorization callout' arrows: GT2 authorizes only via the gridmap)\n"

(* Figure 2: the changed GRAM with authorization callouts in the JM. *)
let figure2 () =
  section "Figure 2: extended GRAM with PEP callouts (changed Job Manager)";
  let w = Fusion.build () in
  (match
     Gram.Client.submit_sync w.Fusion.kate
       ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=10000)"
   with
  | Ok r ->
    (* A third party (the VO admin) cancels: the callout runs again. *)
    ignore
      (Gram.Client.manage_sync w.Fusion.vo_admin ~contact:r.Gram.Protocol.job_contact
         Gram.Protocol.Cancel)
  | Error e -> Printf.printf "unexpected: %s\n" (Gram.Protocol.submit_error_to_string e));
  Fmt.pr "%a@." Sim.Trace.pp (Gram.Resource.trace w.Fusion.resource);
  let callouts =
    Sim.Trace.count (Gram.Resource.trace w.Fusion.resource) ~label:"authorization callout"
  in
  Printf.printf "(authorization callout invoked %d times: job start + management)\n" callouts

(* Figure 3: the example policy, as a decision matrix. *)
let figure3 () =
  section "Figure 3: example VO policy, decision matrix";
  let policy = Policy.Figure3.get () in
  let start who rsl =
    Policy.Types.start_request ~subject:(Gsi.Dn.parse who)
      ~job:(Rsl.Parser.parse_clause_exn rsl)
  in
  let cancel who ~owner ~tag =
    Policy.Types.management_request ~subject:(Gsi.Dn.parse who)
      ~action:Policy.Types.Action.Cancel ~jobowner:(Gsi.Dn.parse owner) ~jobtag:(Some tag)
  in
  let cases =
    [ ("Bo Liu: test1 /sandbox/test ADS count=3",
       start Policy.Figure3.bo_liu
         "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)");
      ("Bo Liu: test1 ADS count=4 (over limit)",
       start Policy.Figure3.bo_liu
         "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)");
      ("Bo Liu: test2 /sandbox/test NFC count=2",
       start Policy.Figure3.bo_liu
         "&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)");
      ("Bo Liu: TRANSP (not her executable)",
       start Policy.Figure3.bo_liu
         "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)");
      ("Bo Liu: test1 without jobtag (requirement)",
       start Policy.Figure3.bo_liu "&(executable=test1)(directory=/sandbox/test)");
      ("Kate: TRANSP /sandbox/test NFC",
       start Policy.Figure3.kate_keahey
         "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)");
      ("Kate: cancel Bo's NFC job",
       cancel Policy.Figure3.kate_keahey ~owner:Policy.Figure3.bo_liu ~tag:"NFC");
      ("Kate: cancel Bo's ADS job",
       cancel Policy.Figure3.kate_keahey ~owner:Policy.Figure3.bo_liu ~tag:"ADS");
      ("Bo Liu: cancel Kate's NFC job",
       cancel Policy.Figure3.bo_liu ~owner:Policy.Figure3.kate_keahey ~tag:"NFC");
      ("Outsider: test1 ADS",
       start "/O=Grid/O=Other/CN=Outsider"
         "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)") ]
  in
  List.iter
    (fun (label, request) ->
      Printf.printf "   %-45s %s\n" label
        (Policy.Eval.decision_to_string (Policy.Eval.evaluate policy request)))
    cases

(* ------------------------------------------------------------------ *)
(* T1: policy evaluation latency vs policy size                         *)

let synthetic_policy n =
  let statement i =
    Printf.sprintf
      "/O=Grid/O=Synth/CN=user%04d: &(action = start)(executable = app%04d)(directory = /work)(count < 16)"
      i i
  in
  Policy.Parse.parse (String.concat "\n" (List.init n statement))

let t1_authz_latency () =
  section "T1: policy evaluation latency vs number of statements";
  let sizes = [ 1; 10; 100; 1000 ] in
  let tests =
    List.map
      (fun n ->
        let policy = synthetic_policy n in
        (* Worst case: the matching statement is the last one. *)
        let request =
          Policy.Types.start_request
            ~subject:(Gsi.Dn.parse (Printf.sprintf "/O=Grid/O=Synth/CN=user%04d" (n - 1)))
            ~job:
              (Rsl.Parser.parse_clause_exn
                 (Printf.sprintf "&(executable=app%04d)(directory=/work)(count=4)" (n - 1)))
        in
        Test.make
          ~name:(Printf.sprintf "eval/%04d-statements" n)
          (Staged.stage (fun () -> ignore (Policy.Eval.evaluate policy request))))
      sizes
  in
  print_table "decision latency (flat-file PEP, worst-case rule position)" (run_tests tests)

(* ------------------------------------------------------------------ *)
(* T2: end-to-end job startup, baseline vs callout backends             *)

let cas_world () =
  let tb = Testbed.create () in
  let vo = Fusion.build_vo () in
  let cas = Cas.Server.create ~vo "fusion-cas" in
  let engine = Testbed.engine tb in
  let callout =
    Cas.Pep.callout ~cas_key:(Cas.Server.public_key cas)
      ~now:(fun () -> Sim.Engine.now engine)
  in
  let resource =
    Testbed.make_resource tb ~name:"cas-site" ~nodes:64 ~cpus_per_node:8
      ~gridmap:(Gsi.Gridmap.parse Fusion.gridmap_text) ~backend:(Custom callout)
  in
  let kate_id = Testbed.add_user tb Fusion.kate_keahey in
  let kate_proxy =
    Result.get_ok (Cas.Server.grant_proxy cas ~trust:(Testbed.trust tb) ~now:0.0 kate_id)
  in
  (tb, Testbed.client tb ~user:kate_proxy ~resource)

let akenti_callout_for tb =
  let mk seed =
    let kp = Crypto.Keypair.generate ~seed_material:seed in
    Crypto.Keypair.register kp;
    kp
  in
  let site_kp = mk "bench-site" and vo_kp = mk "bench-vo" and aa_kp = mk "bench-aa" in
  let site = { Akenti.Engine.dn = Gsi.Dn.parse "/O=B/CN=Site"; key = Crypto.Keypair.public site_kp } in
  let vo_s = { Akenti.Engine.dn = Gsi.Dn.parse "/O=B/CN=VO"; key = Crypto.Keypair.public vo_kp } in
  let aa = { Akenti.Engine.dn = Gsi.Dn.parse "/O=B/CN=AA"; key = Crypto.Keypair.public aa_kp } in
  let engine =
    Akenti.Engine.create ~resource:"gram-job-manager" ~stakeholders:[ site; vo_s ]
      ~attribute_authorities:[ aa ]
  in
  let constr attribute op values =
    { Policy.Types.attribute; op; values = List.map (fun v -> Policy.Types.Str v) values }
  in
  Akenti.Engine.publish_condition engine
    (Akenti.Use_condition.make ~resource:"gram-job-manager" ~stakeholder:site.Akenti.Engine.dn
       ~actions:Policy.Types.Action.all
       ~constraints:[ constr "queue" Rsl.Ast.Neq [ "reserved" ] ]
       ~required_attributes:[] ~not_before:0.0 ~not_after:1e12
       ~signing_key:(Crypto.Keypair.secret site_kp));
  Akenti.Engine.publish_condition engine
    (Akenti.Use_condition.make ~resource:"gram-job-manager" ~stakeholder:vo_s.Akenti.Engine.dn
       ~actions:Policy.Types.Action.all
       ~constraints:[ constr "executable" Rsl.Ast.Eq [ "TRANSP" ] ]
       ~required_attributes:[ ("group", "analysts") ] ~not_before:0.0 ~not_after:1e12
       ~signing_key:(Crypto.Keypair.secret vo_kp));
  Akenti.Engine.publish_attribute engine
    (Akenti.Attr_cert.make ~subject:(Gsi.Dn.parse Fusion.kate_keahey) ~attribute:"group"
       ~value:"analysts" ~issuer:aa.Akenti.Engine.dn ~not_before:0.0 ~not_after:1e12
       ~signing_key:(Crypto.Keypair.secret aa_kp));
  let sim_engine = Testbed.engine tb in
  Akenti.Akenti_pep.callout ~engine ~now:(fun () -> Sim.Engine.now sim_engine)

(* One measured iteration: fresh credential, full gatekeeper+JMI path,
   then drain the engine so the zero-length job completes and frees
   capacity. *)
let submit_iteration tb client rsl =
  Staged.stage (fun () ->
      match Gram.Client.submit_sync client ~rsl with
      | Ok _ -> Testbed.run tb
      | Error e -> failwith (Gram.Protocol.submit_error_to_string e))

let t2_startup_overhead () =
  section "T2: end-to-end job startup cost per authorization backend";
  let tagged = "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=0)" in
  let untagged = "&(executable=TRANSP)(directory=/sandbox/test)(simduration=0)" in
  let wb = Fusion.build ~backend:`Baseline ~nodes:64 ~cpus_per_node:8 () in
  let wf = Fusion.build ~nodes:64 ~cpus_per_node:8 () in
  let tb_cas, kate_cas = cas_world () in
  let tb_ak = Testbed.create () in
  let ak_callout = akenti_callout_for tb_ak in
  let ak_resource =
    Testbed.make_resource tb_ak ~name:"akenti-site" ~nodes:64 ~cpus_per_node:8
      ~gridmap:(Gsi.Gridmap.parse Fusion.gridmap_text) ~backend:(Custom ak_callout)
  in
  let kate_ak =
    Testbed.client tb_ak ~user:(Testbed.add_user tb_ak Fusion.kate_keahey)
      ~resource:ak_resource
  in
  let tests =
    [ Test.make ~name:"submit/1-baseline-gridmap"
        (submit_iteration wb.Fusion.testbed wb.Fusion.kate untagged);
      Test.make ~name:"submit/2-extended-flat-file"
        (submit_iteration wf.Fusion.testbed wf.Fusion.kate tagged);
      Test.make ~name:"submit/3-extended-akenti"
        (submit_iteration tb_ak kate_ak untagged);
      Test.make ~name:"submit/4-extended-cas" (submit_iteration tb_cas kate_cas tagged) ]
  in
  print_table "full submit (authn + authz + mapping + JMI + LRM + completion)"
    (run_tests tests);
  Printf.printf
    "   shape: baseline < flat-file < akenti/cas (certificate work dominates)\n"

(* ------------------------------------------------------------------ *)
(* T3: management-request authorization                                 *)

let t3_management () =
  section "T3: management request cost, owner-only (GT2) vs policy-based";
  let wb = Fusion.build ~backend:`Baseline ~nodes:64 ~cpus_per_node:8 () in
  let wf = Fusion.build ~nodes:64 ~cpus_per_node:8 () in
  let start (w : Fusion.world) rsl =
    match Gram.Client.submit_sync w.Fusion.kate ~rsl with
    | Ok r -> r.Gram.Protocol.job_contact
    | Error e -> failwith (Gram.Protocol.submit_error_to_string e)
  in
  let cb = start wb "&(executable=TRANSP)(directory=/sandbox/test)(simduration=1000000)" in
  let cf =
    start wf "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=1000000)"
  in
  let status client contact =
    Staged.stage (fun () ->
        match Gram.Client.manage_sync client ~contact Gram.Protocol.Status with
        | Ok _ -> ()
        | Error e -> failwith (Gram.Protocol.management_error_to_string e))
  in
  let tests =
    [ Test.make ~name:"status/1-baseline-owner-rule" (status wb.Fusion.kate cb);
      Test.make ~name:"status/2-extended-owner-via-policy" (status wf.Fusion.kate cf);
      Test.make ~name:"status/3-extended-third-party" (status wf.Fusion.vo_admin cf) ]
  in
  print_table "status request (authn + management authz + LRM query)" (run_tests tests);
  Printf.printf "   note: the baseline cannot express case 3 at all - it denies it.\n"

(* ------------------------------------------------------------------ *)
(* T4: delegation chain verification                                    *)

let t4_delegation () =
  section "T4: credential validation vs proxy delegation depth";
  Util.Ids.reset ();
  Crypto.Keypair.reset_keystore ();
  let ca = Gsi.Ca.create ~now:0.0 "/O=Bench/CN=CA" in
  let trust = Gsi.Ca.Trust_store.create () in
  Gsi.Ca.Trust_store.add trust (Gsi.Ca.certificate ca);
  let base = Gsi.Identity.create ~ca ~now:0.0 "/O=Bench/CN=User" in
  let tests =
    List.map
      (fun depth ->
        let rec delegate id n =
          if n = 0 then id else delegate (Gsi.Identity.delegate id ~now:0.0) (n - 1)
        in
        let id = delegate base depth in
        let cred = Gsi.Credential.of_identity id ~challenge:"c" in
        Test.make
          ~name:(Printf.sprintf "validate/depth-%02d" depth)
          (Staged.stage (fun () ->
               match Gsi.Credential.validate cred ~trust ~now:1.0 with
               | Ok _ -> ()
               | Error e -> failwith (Gsi.Credential.error_to_string e))))
      [ 0; 1; 2; 4; 8; 16 ]
  in
  print_table "chain validation (signatures + naming + possession proof)" (run_tests tests)

(* ------------------------------------------------------------------ *)
(* T5: combined decision vs number of policy sources                    *)

let t5_combination () =
  section "T5: combined decision cost vs number of policy sources";
  let request =
    Policy.Types.start_request
      ~subject:(Gsi.Dn.parse "/O=Grid/O=Synth/CN=user0000")
      ~job:(Rsl.Parser.parse_clause_exn "&(executable=app0000)(directory=/work)(count=4)")
  in
  let tests =
    List.map
      (fun k ->
        let sources =
          List.init k (fun i ->
              Policy.Combine.source
                ~name:(Printf.sprintf "source-%d" i)
                (synthetic_policy 10))
        in
        Test.make
          ~name:(Printf.sprintf "combine/%02d-sources" k)
          (Staged.stage (fun () -> ignore (Policy.Combine.evaluate sources request))))
      [ 1; 2; 4; 8 ]
  in
  print_table "conjunctive combination (10-statement policies each)" (run_tests tests)

(* ------------------------------------------------------------------ *)
(* T6: RSL parse throughput                                             *)

let t6_rsl_parse () =
  section "T6: RSL parse cost vs request size";
  let request_of n =
    "&(executable=/sandbox/app)(directory=/work)(jobtag=NFC)"
    ^ String.concat ""
        (List.init n (fun i -> Printf.sprintf "(attr%03d=value%03d)" i i))
  in
  let tests =
    List.map
      (fun n ->
        let text = request_of n in
        Test.make
          ~name:(Printf.sprintf "parse/%03d-relations" (n + 3))
          (Staged.stage (fun () -> ignore (Rsl.Parser.parse text))))
      [ 0; 5; 29; 125 ]
  in
  print_table "RSL text to AST" (run_tests tests)

(* ------------------------------------------------------------------ *)
(* T7: dynamic account pool                                             *)

let t7_accounts () =
  section "T7: dynamic account pool operations";
  let tests =
    List.map
      (fun size ->
        let pool = Accounts.Pool.create ~size ~lease_lifetime:1e9 () in
        let holder = Gsi.Dn.parse "/O=Bench/CN=Holder" in
        Test.make
          ~name:(Printf.sprintf "pool/%04d-acquire-release" size)
          (Staged.stage (fun () ->
               match Accounts.Pool.acquire pool ~now:0.0 ~holder with
               | Ok lease ->
                 ignore (Accounts.Pool.release pool ~lease_id:lease.Accounts.Pool.lease_id)
               | Error e -> failwith (Accounts.Pool.error_to_string e))))
      [ 10; 100; 1000 ]
  in
  let gridmap =
    Gsi.Gridmap.parse
      (String.concat ""
         (List.init 100 (fun i -> Printf.sprintf "\"/O=B/CN=user%03d\" acct%03d\n" i i)))
  in
  let probe = Gsi.Dn.parse "/O=B/CN=user099" in
  let static =
    Test.make ~name:"gridmap/100-entries-lookup"
      (Staged.stage (fun () -> ignore (Gsi.Gridmap.lookup gridmap probe)))
  in
  print_table "account resolution" (run_tests (static :: tests))

(* ------------------------------------------------------------------ *)
(* T8: PEP placement ablation (Section 5.2 discusses multiple decision  *)
(* domains: Gatekeeper vs Job Manager)                                  *)

let t8_pep_placement () =
  section "T8: PEP placement ablation (gatekeeper vs job manager vs both)";
  (* The gatekeeper-only configuration rides on the GT2-baseline JM,
     whose protocol has no jobtag — so its PEP evaluates a tag-free
     policy of comparable size; cost is what is compared here. *)
  let pep ~with_requirement () =
    if with_requirement then
      Callout.File_pep.of_sources (Fusion.policy_sources (Fusion.build_vo ()))
    else
      Callout.File_pep.of_texts
        [ ("owner", Fusion.organization ^ ": &(action = start)(queue != reserved)");
          ("vo",
           Fusion.organization
           ^ "/CN=Kate Keahey: &(action = start)(executable = TRANSP)(directory = /sandbox/test)") ]
  in
  let world ~gk ~jm =
    let tb = Testbed.create () in
    let backend = if jm then Flat_file (Fusion.policy_sources (Fusion.build_vo ())) else Baseline in
    let resource =
      Testbed.make_resource tb ~name:"ablate" ~nodes:64 ~cpus_per_node:8
        ~gridmap:(Gsi.Gridmap.parse Fusion.gridmap_text)
        ?gatekeeper_pep:(if gk then Some (pep ~with_requirement:jm ()) else None)
        ~backend
    in
    (tb, Testbed.client tb ~user:(Testbed.add_user tb Fusion.kate_keahey) ~resource)
  in
  let tagged = "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=0)" in
  let untagged = "&(executable=TRANSP)(directory=/sandbox/test)(simduration=0)" in
  let tb0, c0 = world ~gk:false ~jm:false in
  let tb1, c1 = world ~gk:true ~jm:false in
  let tb2, c2 = world ~gk:false ~jm:true in
  let tb3, c3 = world ~gk:true ~jm:true in
  let tests =
    [ Test.make ~name:"placement/0-none-(baseline)" (submit_iteration tb0 c0 untagged);
      Test.make ~name:"placement/1-gatekeeper-only" (submit_iteration tb1 c1 untagged);
      Test.make ~name:"placement/2-job-manager-only" (submit_iteration tb2 c2 tagged);
      Test.make ~name:"placement/3-both" (submit_iteration tb3 c3 tagged) ]
  in
  print_table "submit cost by PEP placement" (run_tests tests);
  Printf.printf
    "   semantics differ: only a JM-side PEP also authorizes management\n";
  Printf.printf
    "   requests; the gatekeeper PEP sees job invocations exclusively.\n"

(* ------------------------------------------------------------------ *)
(* T9: policy syntax front ends (Section 6.3)                          *)

let t9_policy_syntax () =
  section "T9: policy parse cost, RSL-based syntax vs XACML-style XML";
  let sizes = [ 1; 10; 100 ] in
  let tests =
    List.concat_map
      (fun n ->
        let policy = synthetic_policy n in
        let rsl_text = Policy.Types.to_string policy in
        let xml_text = Policy.Xacml.to_string policy in
        [ Test.make
            ~name:(Printf.sprintf "syntax/rsl-%03d-statements" n)
            (Staged.stage (fun () -> ignore (Policy.Parse.parse rsl_text)));
          Test.make
            ~name:(Printf.sprintf "syntax/xml-%03d-statements" n)
            (Staged.stage (fun () -> ignore (Policy.Xacml.parse xml_text))) ])
      sizes
  in
  print_table "parse cost (same policies, two concrete syntaxes)" (run_tests tests);
  Printf.printf
    "   both compile to the same AST; decisions are identical (tested),\n";
  Printf.printf "   so the syntax choice is purely an administration-cost question.\n"

(* ------------------------------------------------------------------ *)
(* T10: information service query scaling                               *)

let t10_discovery () =
  section "T10: information-service query cost vs registry size";
  let tests =
    List.map
      (fun n ->
        let tb = Testbed.create () in
        let dir = Mds.Directory.create (Testbed.engine tb) in
        for i = 0 to n - 1 do
          Mds.Directory.register dir
            { Mds.Directory.resource_name = Printf.sprintf "site-%04d" i;
              site = (if i mod 2 = 0 then "anl" else "nersc");
              total_cpus = 64;
              queues = [ "batch" ] };
          Mds.Directory.publish dir
            ~resource_name:(Printf.sprintf "site-%04d" i)
            { Mds.Directory.free_cpus = i mod 64; running_jobs = i mod 7; pending_jobs = 0;
              published_at = 0.0 }
        done;
        Test.make
          ~name:(Printf.sprintf "query/%04d-resources" n)
          (Staged.stage (fun () ->
               ignore (Mds.Directory.query ~min_free_cpus:32 ~queue:"batch" dir))))
      [ 10; 100; 1000 ]
  in
  print_table "filtered+sorted directory query" (run_tests tests)

(* ------------------------------------------------------------------ *)
(* T11: coarse-grained allocation enforcement overhead (Section 2)      *)

let t11_allocation () =
  section "T11: submit cost with and without VO allocation enforcement";
  let world ~with_bank =
    let tb = Testbed.create () in
    let allocation =
      if with_bank then begin
        let bank = Accounts.Allocation.create () in
        Accounts.Allocation.open_account bank ~party:Fusion.organization ~budget:1e12;
        Some (Accounts.Allocation.enforcement bank)
      end
      else None
    in
    let resource =
      Testbed.make_resource tb ~name:"alloc" ~nodes:64 ~cpus_per_node:8
        ~gridmap:(Gsi.Gridmap.parse Fusion.gridmap_text) ?allocation ~backend:Baseline
    in
    (tb, Testbed.client tb ~user:(Testbed.add_user tb Fusion.kate_keahey) ~resource)
  in
  let rsl = "&(executable=/bin/sim)(count=2)(maxwalltime=1)(simduration=0)" in
  let tb0, c0 = world ~with_bank:false in
  let tb1, c1 = world ~with_bank:true in
  let tests =
    [ Test.make ~name:"allocate/0-no-bank" (submit_iteration tb0 c0 rsl);
      Test.make ~name:"allocate/1-reserve+settle" (submit_iteration tb1 c1 rsl) ]
  in
  print_table "submit + completion (reservation and settlement included)" (run_tests tests)

(* ------------------------------------------------------------------ *)
(* T12: sustained workload throughput                                   *)

let t12_workload () =
  section "T12: sustained mixed-workload throughput, baseline vs extended";
  let jobs = 3000 in
  let run backend =
    let w = Fusion.build ~backend ~nodes:16 ~cpus_per_node:8 () in
    let profiles =
      [ { Workload.identity = Gram.Client.identity w.Fusion.bo;
          rsl_templates =
            [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=30)";
              "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)" ];
          weight = 1 };
        { Workload.identity = Gram.Client.identity w.Fusion.kate;
          rsl_templates =
            [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=60)" ];
          weight = 1 } ]
    in
    (* Baseline mode cannot parse jobtag: use tag-free templates there. *)
    let profiles =
      match backend with
      | `Baseline ->
        List.map
          (fun p ->
            { p with
              Workload.rsl_templates =
                [ "&(executable=test1)(directory=/sandbox/test)(count=2)(simduration=30)" ] })
          profiles
      | `Flat_file | `Rebac -> profiles
    in
    let t0 = Sys.time () in
    let stats =
      Workload.run
        ~engine:(Testbed.engine w.Fusion.testbed)
        ~resource:w.Fusion.resource ~profiles
        { Workload.default_config with
          Workload.job_count = jobs;
          arrival_rate = 5.0;
          seed = 11 }
    in
    let elapsed = Sys.time () -. t0 in
    (stats, elapsed)
  in
  let report label (stats, elapsed) =
    Printf.printf "   %-22s %6.2f s cpu  %8.0f jobs/s  (%s)\n" label elapsed
      (float_of_int jobs /. elapsed)
      (Fmt.str "%a" Workload.pp_stats stats)
  in
  report "baseline" (run `Baseline);
  report "extended (flat-file)" (run `Flat_file);
  Printf.printf
    "   shape: extended throughput within a small factor of baseline; the\n";
  Printf.printf "   denied templates show policy working under sustained load.\n"

(* ------------------------------------------------------------------ *)
(* T13: Akenti decision cache (the pull model's optimization)           *)

let t13_akenti_cache () =
  section "T13: Akenti decision latency, cold vs cached";
  let tb = Testbed.create () in
  ignore tb;
  let make_engine ~cached =
    let mk seed =
      let kp = Crypto.Keypair.generate ~seed_material:seed in
      Crypto.Keypair.register kp;
      kp
    in
    let site_kp = mk "t13-site" and vo_kp = mk "t13-vo" and aa_kp = mk "t13-aa" in
    let site = { Akenti.Engine.dn = Gsi.Dn.parse "/O=B/CN=S"; key = Crypto.Keypair.public site_kp } in
    let vo_s = { Akenti.Engine.dn = Gsi.Dn.parse "/O=B/CN=V"; key = Crypto.Keypair.public vo_kp } in
    let aa = { Akenti.Engine.dn = Gsi.Dn.parse "/O=B/CN=A"; key = Crypto.Keypair.public aa_kp } in
    let engine =
      Akenti.Engine.create ~resource:"r" ~stakeholders:[ site; vo_s ]
        ~attribute_authorities:[ aa ]
    in
    let constr attribute values =
      { Policy.Types.attribute; op = Grid_rsl.Ast.Eq;
        values = List.map (fun v -> Policy.Types.Str v) values }
    in
    List.iter
      (fun (stakeholder, kp) ->
        Akenti.Engine.publish_condition engine
          (Akenti.Use_condition.make ~resource:"r" ~stakeholder
             ~actions:Policy.Types.Action.all
             ~constraints:[ constr "executable" [ "TRANSP" ] ]
             ~required_attributes:[ ("group", "analysts") ] ~not_before:0.0
             ~not_after:1e12 ~signing_key:(Crypto.Keypair.secret kp)))
      [ (site.Akenti.Engine.dn, site_kp); (vo_s.Akenti.Engine.dn, vo_kp) ];
    Akenti.Engine.publish_attribute engine
      (Akenti.Attr_cert.make ~subject:(Gsi.Dn.parse Fusion.kate_keahey) ~attribute:"group"
         ~value:"analysts" ~issuer:aa.Akenti.Engine.dn ~not_before:0.0 ~not_after:1e12
         ~signing_key:(Crypto.Keypair.secret aa_kp));
    if cached then Akenti.Engine.enable_cache engine ~ttl:1e9;
    engine
  in
  let request =
    Policy.Types.start_request
      ~subject:(Gsi.Dn.parse Fusion.kate_keahey)
      ~job:(Rsl.Parser.parse_clause_exn "&(executable=TRANSP)(count=2)")
  in
  let cold = make_engine ~cached:false in
  let warm = make_engine ~cached:true in
  ignore (Akenti.Engine.decide warm ~now:0.0 request);
  let tests =
    [ Test.make ~name:"akenti/1-uncached"
        (Staged.stage (fun () -> ignore (Akenti.Engine.decide cold ~now:1.0 request)));
      Test.make ~name:"akenti/2-cached"
        (Staged.stage (fun () -> ignore (Akenti.Engine.decide warm ~now:1.0 request))) ]
  in
  print_table "two-stakeholder decision with attribute certificates" (run_tests tests)

(* ------------------------------------------------------------------ *)
(* T14: observability instrumentation overhead                          *)

let t14_obs_overhead () =
  section "T14: instrumentation overhead on the authorization callout";
  let sources = Fusion.policy_sources (Fusion.build_vo ()) in
  let query =
    { Callout.Callout.requester = Gsi.Dn.parse Fusion.kate_keahey;
      requester_credential = None;
      job_owner = None;
      action = Policy.Types.Action.Start;
      job_id = None;
      rsl =
        Some
          (Rsl.Parser.parse_clause_exn
             "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)");
      jobtag = Some "NFC" }
  in
  let bare = Callout.File_pep.of_sources sources in
  (* Disabled observer: instrument returns the callout unchanged, so this
     measures the guaranteed-zero-cost path. *)
  let disabled = Callout.Callout.instrument ~backend:"flat_file" ~obs:Obs.Obs.noop bare in
  (* Enabled observer with a constant clock: full metric + span recording
     on every decision. The tracer's retention cap (100k spans) bounds
     memory across the millions of iterations bechamel runs. *)
  let obs = Obs.Obs.create () in
  let instrumented =
    Callout.Callout.instrument ~backend:"flat_file" ~obs
      (Callout.File_pep.of_sources ~obs sources)
  in
  let labels = [ ("backend", "flat_file"); ("action", "start"); ("outcome", "permitted") ] in
  let tests =
    [ Test.make ~name:"obs/0-bare-callout"
        (Staged.stage (fun () -> ignore (bare query)));
      Test.make ~name:"obs/1-disabled-observer"
        (Staged.stage (fun () -> ignore (disabled query)));
      Test.make ~name:"obs/2-instrumented-callout"
        (Staged.stage (fun () -> ignore (instrumented query)));
      Test.make ~name:"obs/3-counter-inc-only"
        (Staged.stage (fun () -> Obs.Obs.incr obs ~labels "authz_decisions_total"));
      Test.make ~name:"obs/4-span-only"
        (Staged.stage (fun () -> Obs.Obs.with_span obs "authz.callout" (fun _ -> ()))) ]
  in
  print_table "decision cost, bare vs instrumented (metrics + spans)" (run_tests tests);
  Printf.printf "   spans retained %d, dropped beyond cap %d\n"
    (List.length (Obs.Span.spans (Obs.Obs.tracer obs)))
    (Obs.Span.dropped (Obs.Obs.tracer obs))

(* ------------------------------------------------------------------ *)
(* T15: throughput and request outcomes under network fault profiles    *)

let t15_faults () =
  section "T15: sustained workload under fault injection (drop 0% / 1% / 5%)";
  let jobs = 3000 in
  let run ~drop =
    let faults =
      if drop = 0.0 then None
      else
        Some
          (Sim.Network.Faults.profile ~drop ~duplicate:(drop /. 2.0)
             ~delay_probability:(5.0 *. drop) ~max_extra_delay:0.05 ())
    in
    let w =
      Fusion.build ~nodes:16 ~cpus_per_node:8 ?faults
        ?request_timeout:(Option.map (fun _ -> 0.25) faults)
        ()
    in
    let profiles =
      [ { Workload.identity = Gram.Client.identity w.Fusion.bo;
          rsl_templates =
            [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=30)";
              "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)" ];
          weight = 1 };
        { Workload.identity = Gram.Client.identity w.Fusion.kate;
          rsl_templates =
            [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=60)" ];
          weight = 1 } ]
    in
    let t0 = Sys.time () in
    let stats =
      Workload.run
        ~engine:(Testbed.engine w.Fusion.testbed)
        ~resource:w.Fusion.resource ~profiles
        { Workload.default_config with
          Workload.job_count = jobs;
          arrival_rate = 5.0;
          seed = 11 }
    in
    let elapsed = Sys.time () -. t0 in
    let network = Gram.Resource.network w.Fusion.resource in
    (stats, elapsed, network)
  in
  let rows = ref [] in
  let report label (stats, elapsed, network) =
    Printf.printf "   %-14s %6.2f s cpu  %8.0f jobs/s  (%s)\n" label elapsed
      (float_of_int jobs /. elapsed)
      (Fmt.str "%a" Workload.pp_stats stats);
    Printf.printf "                  network: %d sent, %d dropped, %d duplicated, %d delayed\n"
      (Sim.Network.messages_sent network)
      (Sim.Network.messages_dropped network)
      (Sim.Network.messages_duplicated network)
      (Sim.Network.messages_delayed network);
    rows :=
      !rows
      @ [ (label ^ "/jobs_per_cpu_sec", float_of_int jobs /. elapsed);
          (label ^ "/accepted", float_of_int stats.Workload.accepted);
          (label ^ "/timed_out", float_of_int stats.Workload.timed_out);
          (label ^ "/dropped", float_of_int (Sim.Network.messages_dropped network)) ]
  in
  report "faults/0-none" (run ~drop:0.0);
  report "faults/1-drop-1%" (run ~drop:0.01);
  report "faults/2-drop-5%" (run ~drop:0.05);
  (* All submissions are accounted for in every profile: accepted + denied
     + timed out = submitted, with zero hung requests. *)
  collected := ("workload under fault injection", !rows) :: !collected

(* ------------------------------------------------------------------ *)
(* T16: compiled policy index + decision cache                          *)

let t16_authz_cache () =
  section "T16: authorization latency — reference vs compiled index vs decision cache";
  let n = 200 in
  (* Per-user management grants: the paper's VO-admin pattern, scaled.
     Every statement has an exact subject, so the compiled index resolves
     a query with one bucket probe where the reference evaluator scans
     all [n] statements. *)
  let statement i =
    Printf.sprintf
      "/O=Grid/O=Synth/CN=user%04d: &(action = cancel)(jobowner = self) &(action = information)"
      i
  in
  let policy = Policy.Parse.parse (String.concat "\n" (List.init n statement)) in
  let sources = [ Policy.Combine.source ~name:"synthetic" policy ] in
  let reference = Callout.File_pep.reference sources in
  let compiled = Callout.File_pep.of_sources sources in
  let cache =
    Callout.Cache.create ~capacity:4096 ~ttl:1e12 ~now:(fun () -> 0.0) ()
  in
  let cached = Callout.Cache.with_cache cache compiled in
  let user i = Gsi.Dn.parse (Printf.sprintf "/O=Grid/O=Synth/CN=user%04d" i) in
  let query ?(i = n - 1) ?(action = Policy.Types.Action.Information) ?(job = 0) () =
    Callout.Callout.Query.make ~requester:(user i)
      ~job_id:(Printf.sprintf "job-%03d" job)
      (Callout.Callout.Query.Management
         { action; job_owner = user i; jobtag = None })
  in
  let q = query () in
  ignore (cached q);
  (* warm: the benchmark measures the hit path *)
  let rows =
    run_tests
      [ Test.make ~name:"authz/0-reference"
          (Staged.stage (fun () -> ignore (reference q)));
        Test.make ~name:"authz/1-compiled"
          (Staged.stage (fun () -> ignore (compiled q)));
        Test.make ~name:"authz/2-compiled+cached"
          (Staged.stage (fun () -> ignore (cached q))) ]
  in
  print_table (Printf.sprintf "management decision, %d-statement policy" n) rows;
  (match
     ( List.assoc_opt "authz/0-reference" rows,
       List.assoc_opt "authz/1-compiled" rows,
       List.assoc_opt "authz/2-compiled+cached" rows )
   with
  | Some r, Some c, Some h ->
    Printf.printf "   speedup: compiled %.1fx, compiled+cached %.1fx over reference\n"
      (r /. c) (r /. h);
    collected :=
      ("authz cache speedups", [ ("speedup/compiled", r /. c); ("speedup/cached", r /. h) ])
      :: !collected
  | _ -> ());
  (* Divergence check: the three pipelines must agree bit-for-bit on a
     seeded random query mix (members and strangers, all actions, owner
     and third-party targets). The cache is live across the sweep, so
     hits are being compared against fresh evaluations too. *)
  let rng = Util.Rng.create ~seed:20260806 in
  let trials = 1000 in
  let divergences = ref 0 in
  for _ = 1 to trials do
    let i = Util.Rng.int rng (n + 20) in
    (* some misses *)
    let owner = if Util.Rng.bool rng then i else Util.Rng.int rng n in
    let q =
      Callout.Callout.Query.make ~requester:(user i)
        ~job_id:(Printf.sprintf "job-%03d" (Util.Rng.int rng 8))
        (Callout.Callout.Query.Management
           { action = Util.Rng.pick rng Policy.Types.Action.all;
             job_owner = user owner;
             jobtag = (if Util.Rng.bool rng then Some "NFC" else None) })
    in
    let r = reference q and c = compiled q and h = cached q in
    if r <> c || r <> h then incr divergences
  done;
  Printf.printf "   divergence check: %d/%d queries disagree (must be 0); %s\n"
    !divergences trials
    (Fmt.str "%a" Callout.Cache.pp cache);
  collected :=
    ("authz cache divergence", [ ("divergences", float_of_int !divergences) ]) :: !collected

(* ------------------------------------------------------------------ *)
(* T17: crash-recovery time vs journal length and snapshot interval     *)

let t17_recovery () =
  section "T17: recovery time vs journal length and snapshot interval";
  let rows = ref [] in
  let profiles_of (w : Fusion.world) =
    [ { Workload.identity = Gram.Client.identity w.Fusion.bo;
        rsl_templates =
          [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=30)" ];
        weight = 1 };
      { Workload.identity = Gram.Client.identity w.Fusion.kate;
        rsl_templates =
          [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=60)" ];
        weight = 1 } ]
  in
  (* Load a durable world with [jobs] accepted-or-denied submissions (each
     accepted job contributes creation + terminal-state records, plus any
     management records), then kill and restart the job manager and time
     the replay. *)
  let measure label ~jobs ~snapshot_every =
    let w = Fusion.build ~nodes:16 ~cpus_per_node:8 ~store:true ?snapshot_every () in
    ignore
      (Workload.run
         ~engine:(Testbed.engine w.Fusion.testbed)
         ~resource:w.Fusion.resource ~profiles:(profiles_of w)
         { Workload.default_config with
           Workload.job_count = jobs;
           arrival_rate = 20.0;
           seed = 7 });
    Gram.Resource.crash w.Fusion.resource;
    let s = Gram.Resource.recover w.Fusion.resource in
    Printf.printf "   %-30s %6d records  %9.3f ms  (%d jobs restored)\n" label
      s.Gram.Resource.records_replayed
      (s.Gram.Resource.duration *. 1000.0)
      s.Gram.Resource.jobs_restored;
    rows :=
      !rows
      @ [ (label ^ "/records_replayed", float_of_int s.Gram.Resource.records_replayed);
          (label ^ "/recovery_ms", s.Gram.Resource.duration *. 1000.0);
          (label ^ "/jobs_restored", float_of_int s.Gram.Resource.jobs_restored) ]
  in
  measure "recover/j0200-snap-none" ~jobs:200 ~snapshot_every:None;
  measure "recover/j1000-snap-none" ~jobs:1000 ~snapshot_every:None;
  measure "recover/j1000-snap-0100" ~jobs:1000 ~snapshot_every:(Some 100);
  measure "recover/j1000-snap-0025" ~jobs:1000 ~snapshot_every:(Some 25);
  Printf.printf
    "   shape: recovery scales with records replayed; tighter snapshot\n";
  Printf.printf "   intervals trade steady-state compaction work for shorter replays.\n";
  collected := ("recovery scaling", !rows) :: !collected;
  (* Zero-divergence check: the same management decisions must come out
     of a restarted job manager as out of one that never crashed —
     including the third-party jobtag-authorized cancel and the
     default-deny for an outsider's attempt. *)
  let decisions ~crash =
    let w = Fusion.build ~store:true () in
    let submit client rsl =
      match Gram.Client.submit_sync client ~rsl with
      | Ok r -> Some r.Gram.Protocol.job_contact
      | Error _ -> None
    in
    let kate_job =
      submit w.Fusion.kate
        "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=100000)"
    in
    let bo_job =
      submit w.Fusion.bo
        "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=100000)"
    in
    if crash then begin
      Gram.Resource.crash w.Fusion.resource;
      ignore (Gram.Resource.recover w.Fusion.resource)
    end;
    let manage client contact action =
      match contact with
      | None -> "no-job"
      | Some contact -> begin
        match Gram.Client.manage_sync client ~contact action with
        | Ok _ -> "ok"
        | Error e -> Gram.Protocol.management_error_to_string e
      end
    in
    [ manage w.Fusion.bo kate_job Gram.Protocol.Cancel;  (* denied: no grant *)
      manage w.Fusion.kate bo_job Gram.Protocol.Status;  (* admin tag grant *)
      manage w.Fusion.vo_admin (Some "jmi-none") Gram.Protocol.Cancel;  (* unknown *)
      manage w.Fusion.vo_admin kate_job Gram.Protocol.Cancel;  (* third-party ok *)
      manage w.Fusion.bo bo_job Gram.Protocol.Cancel ]  (* owner ok *)
  in
  let uncrashed = decisions ~crash:false in
  let recovered = decisions ~crash:true in
  let divergences =
    List.fold_left2 (fun n a b -> if String.equal a b then n else n + 1) 0 uncrashed
      recovered
  in
  Printf.printf "   divergence check: %d/%d decisions differ after crash+recovery (must be 0)\n"
    divergences (List.length uncrashed);
  collected :=
    ("recovery decision divergence", [ ("divergences", float_of_int divergences) ])
    :: !collected

(* ------------------------------------------------------------------ *)
(* T18: soak campaign throughput and safety-monitor overhead           *)

let t18_soak () =
  section "T18: soak campaign and safety-monitor overhead";
  let config =
    { Soak.default_config with
      Soak.days = 2.0;
      jobs_per_day = 300;
      seed = 42;
      faults = Soak.Light }
  in
  (* Whole-campaign host-clock time, best of 5 after one untimed warmup
     of each variant (the campaign itself is deterministic; only the host
     timing jitters, and the first run pays one-off warmup costs that
     must not be charged to whichever variant happens to go first). *)
  ignore (Soak.run { config with Soak.monitor = false });
  ignore (Soak.run { config with Soak.monitor = true });
  let time_run monitor =
    let best = ref infinity in
    let last = ref None in
    for _ = 1 to 5 do
      let t0 = Sys.time () in
      let report = Soak.run { config with Soak.monitor } in
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt;
      last := Some report
    done;
    (!best, Option.get !last)
  in
  let off_s, off_report = time_run false in
  let on_s, on_report = time_run true in
  let overhead_pct = (on_s -. off_s) /. off_s *. 100.0 in
  let events = on_report.Soak.events_checked in
  let per_event_ns =
    if events = 0 then 0.0 else (on_s -. off_s) *. 1e9 /. float_of_int events
  in
  Printf.printf "   %-34s %9.1f ms  (%d submitted, %d accepted)\n" "campaign/monitor-off"
    (off_s *. 1000.0) off_report.Soak.submitted off_report.Soak.accepted;
  Printf.printf "   %-34s %9.1f ms  (%d events checked, %d violations)\n"
    "campaign/monitor-on" (on_s *. 1000.0) events
    (List.length on_report.Soak.violations);
  Printf.printf "   monitor overhead: %.1f%% (%.0f ns/event); acceptance bound: <= 10%%\n"
    overhead_pct per_event_ns;
  collected :=
    ( "soak monitor overhead",
      [ ("soak/monitor-off/wall_ms", off_s *. 1000.0);
        ("soak/monitor-on/wall_ms", on_s *. 1000.0);
        ("soak/monitor-on/events_checked", float_of_int events);
        ("soak/monitor-on/violations", float_of_int (List.length on_report.Soak.violations));
        ("soak/overhead_pct", overhead_pct);
        ("soak/overhead_ns_per_event", per_event_ns) ] )
    :: !collected

(* ------------------------------------------------------------------ *)
(* T19: ReBAC deep-nesting expansion vs flat compiled evaluation       *)

let t19_rebac () =
  section "T19: ReBAC graph expansion (deep nesting) vs flat compiled index";
  (* A trie 8 organizational levels deep with 4 sibling branches per
     level: the grant sits at the org root, the requester at the deepest
     leaf, so every ReBAC decision walks >= 6 child levels (the paper's
     group-nesting worst case) where the flat index answers with bucket
     probes. Statements at every level keep the interior nodes real
     (each carries its own grant) rather than skeletal. *)
  let depth = 8 in
  let branching = 4 in
  let chain level = String.concat "" (List.init level (fun i -> Printf.sprintf "/OU=l%ds0" (i + 1))) in
  let statements =
    ("/O=Grid: &(action = information)"
    :: List.concat_map
         (fun level ->
           List.init branching (fun s ->
               Printf.sprintf "/O=Grid%s/OU=l%ds%d: &(action = information)"
                 (chain (level - 1)) level s))
         (List.init depth (fun i -> i + 1)))
  in
  let policy = Policy.Parse.parse (String.concat "\n" statements) in
  let sources = [ Policy.Combine.source ~name:"synthetic" policy ] in
  let rebac_pep = Rebac.Pep.create sources in
  let rebac = Rebac.Pep.callout rebac_pep in
  let flat = Callout.File_pep.of_sources sources in
  let make_cached ?epoch ?revision pep =
    Callout.Cache.with_cache
      (Callout.Cache.create ~capacity:4096 ~ttl:1e12 ?epoch ?revision
         ~now:(fun () -> 0.0) ())
      pep
  in
  let rebac_cached =
    make_cached
      ~epoch:(fun () -> Rebac.Pep.epoch rebac_pep)
      ~revision:(fun () -> Rebac.Pep.revision rebac_pep)
      rebac
  in
  let flat_cached = make_cached flat in
  let user level i =
    Gsi.Dn.parse (Printf.sprintf "/O=Grid%s/CN=user%02d" (chain level) i)
  in
  let query ?(level = depth) ?(i = 0) ?(action = Policy.Types.Action.Information) () =
    Callout.Callout.Query.make ~requester:(user level i) ~job_id:"job-0"
      (Callout.Callout.Query.Management
         { action; job_owner = user level i; jobtag = None })
  in
  let q = query () in
  ignore (rebac_cached q);
  ignore (flat_cached q);
  (* warm: measure the hit path *)
  Printf.printf "   trie: %d levels, %d branches/level, %d tuples; requester at depth %d\n"
    depth branching
    (Rebac.Store.tuple_count (Rebac.Pep.store rebac_pep))
    (depth + 2);
  let rows =
    run_tests
      [ Test.make ~name:"rebac/0-expansion" (Staged.stage (fun () -> ignore (rebac q)));
        Test.make ~name:"rebac/1-expansion+cached"
          (Staged.stage (fun () -> ignore (rebac_cached q)));
        Test.make ~name:"flat/0-compiled" (Staged.stage (fun () -> ignore (flat q)));
        Test.make ~name:"flat/1-compiled+cached"
          (Staged.stage (fun () -> ignore (flat_cached q))) ]
  in
  print_table
    (Printf.sprintf "deep-nesting decision, depth %d, branching %d" depth branching)
    rows;
  (match
     ( List.assoc_opt "rebac/0-expansion" rows,
       List.assoc_opt "rebac/1-expansion+cached" rows,
       List.assoc_opt "flat/0-compiled" rows )
   with
  | Some e, Some h, Some f ->
    Printf.printf
      "   expansion costs %.1fx the flat index; the decision cache recovers %.1fx\n"
      (e /. f) (e /. h);
    collected :=
      ( "rebac expansion ratios",
        [ ("ratio/expansion_vs_flat", e /. f); ("ratio/expansion_vs_cached", e /. h);
          ("shape/nesting_levels", float_of_int depth);
          ("shape/tuples", float_of_int (Rebac.Store.tuple_count (Rebac.Pep.store rebac_pep)))
        ] )
      :: !collected
  | _ -> ());
  (* Divergence check across the whole query mix — every nesting level,
     strangers, all actions, third-party targets — with the caches live
     so cache hits are compared against fresh evaluations too. *)
  let rng = Util.Rng.create ~seed:20260808 in
  let trials = 1000 in
  let divergences = ref 0 in
  for _ = 1 to trials do
    let level = Util.Rng.int rng (depth + 1) in
    let requester =
      if Util.Rng.int rng 10 = 0 then Gsi.Dn.parse "/O=Elsewhere/CN=stranger"
      else user level (Util.Rng.int rng 4)
    in
    let q =
      Callout.Callout.Query.make ~requester
        ~job_id:(Printf.sprintf "job-%03d" (Util.Rng.int rng 8))
        (Callout.Callout.Query.Management
           { action = Util.Rng.pick rng Policy.Types.Action.all;
             job_owner = user (Util.Rng.int rng (depth + 1)) 0;
             jobtag = (if Util.Rng.bool rng then Some "NFC" else None) })
    in
    let r = rebac q and rc = rebac_cached q and f = flat q and fc = flat_cached q in
    if r <> f || r <> rc || r <> fc then incr divergences
  done;
  Printf.printf "   divergence check: %d/%d decisions differ across pipelines (must be 0)\n"
    !divergences trials;
  collected :=
    ("rebac decision divergence", [ ("divergences", float_of_int !divergences) ])
    :: !collected

(* ------------------------------------------------------------------ *)
(* T20: batch decision pipeline throughput and allocation             *)

(* The checked-in allocation budget for the batched compiled path, in
   minor words per decision. A missing file falls back to the built-in
   default so ad-hoc runs outside the repo root still work. *)
let batch_alloc_ceiling () =
  let default = (200.0, "built-in default") in
  match open_in "bench/batch_alloc_ceiling.txt" with
  | exception Sys_error _ -> default
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match float_of_string_opt (String.trim (input_line ic)) with
        | Some v -> (v, "bench/batch_alloc_ceiling.txt")
        | None -> default
        | exception End_of_file -> default)

let t20_batch () =
  section "T20: batch decision pipeline — throughput and allocation";
  let sources = Fusion.policy_sources (Fusion.build_vo ()) in
  let compiled_pep = Callout.File_pep.Compiled.create sources in
  let compiled = Callout.File_pep.Compiled.batch compiled_pep in
  let rebac_pep = Rebac.Pep.create sources in
  let rebac = Rebac.Pep.batch rebac_pep in
  let cache =
    Callout.Cache.create ~capacity:8192 ~ttl:1e12
      ~epoch:(fun () -> Callout.File_pep.Compiled.epoch compiled_pep)
      ~now:(fun () -> 0.0) ()
  in
  let cached = Callout.Cache.with_cache_many cache compiled in
  (* T12's traffic shape as a query stream: the fusion cast submitting
     their usual templates and managing each other's jobs, plus stranger
     noise. A small cast times a small action space yields the natural
     repetition a job manager sees under sustained load — exactly what
     the batch lanes amortize (request dedupe, subject grouping, shared
     index probes). *)
  let bo = Gsi.Dn.parse Fusion.bo_liu in
  let kate = Gsi.Dn.parse Fusion.kate_keahey in
  let vo_admin = Gsi.Dn.parse Fusion.admin in
  let strangers =
    Array.init 4 (fun i -> Gsi.Dn.parse (Printf.sprintf "/O=Elsewhere/CN=stranger%d" i))
  in
  (* T12's templates: bo's ADS pair (one over the developer count cap, so
     the stream carries real denials) and kate's NFC production run. *)
  let templates =
    Array.map Rsl.Parser.parse_clause_exn
      [| "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)";
         "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=6)";
         "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)" |]
  in
  (* Management targets are running jobs, so the jobtag rides with its
     owner exactly as the job manager would present it. *)
  let owners = [| (bo, Some "ADS"); (kate, Some "NFC") |] in
  let managers = [| bo; kate; vo_admin |] in
  let actions =
    [| Policy.Types.Action.Information; Policy.Types.Action.Cancel;
       Policy.Types.Action.Signal |]
  in
  let query_stream ~seed n =
    let rng = Util.Rng.create ~seed in
    Array.init n (fun _ ->
        let stranger = Util.Rng.int rng 10 = 0 in
        if Util.Rng.int rng 10 < 3 then
          let requester =
            if stranger then strangers.(Util.Rng.int rng (Array.length strangers))
            else if Util.Rng.bool rng then bo
            else kate
          in
          Callout.Callout.Query.make ~requester
            (Callout.Callout.Query.Start
               templates.(Util.Rng.int rng (Array.length templates)))
        else
          let requester =
            if stranger then strangers.(Util.Rng.int rng (Array.length strangers))
            else managers.(Util.Rng.int rng (Array.length managers))
          in
          let job_owner, jobtag = owners.(Util.Rng.int rng (Array.length owners)) in
          Callout.Callout.Query.make ~requester
            ~job_id:(Printf.sprintf "job-%02d" (Util.Rng.int rng 8))
            (Callout.Callout.Query.Management
               { action = actions.(Util.Rng.int rng (Array.length actions));
                 job_owner;
                 jobtag }))
  in
  let queries = query_stream ~seed:20260808 4096 in
  let batch_size = 1024 in
  let chunks =
    Array.init (Array.length queries / batch_size) (fun i ->
        Array.sub queries (i * batch_size) batch_size)
  in
  (* Hand-rolled measurement (bechamel's OLS does not surface allocation
     per run): one [run ()] is a full pass over the 4096-query stream;
     reps are calibrated so the minor-word delta averages many passes. *)
  let measure run =
    ignore (run ());
    let reps = ref 1 in
    let rec calibrate () =
      let t0 = Sys.time () in
      for _ = 1 to !reps do
        ignore (run ())
      done;
      if Sys.time () -. t0 < 0.1 && !reps < 1 lsl 16 then begin
        reps := !reps * 4;
        calibrate ()
      end
    in
    calibrate ();
    let minor0 = Gc.minor_words () in
    let t0 = Sys.time () in
    for _ = 1 to !reps do
      ignore (run ())
    done;
    let dt = Sys.time () -. t0 in
    let minor = Gc.minor_words () -. minor0 in
    let ops = float_of_int (!reps * Array.length queries) in
    (ops /. dt, minor /. ops)
  in
  let single_lane b =
    let single = Callout.Callout.Batch.check b in
    fun () -> Array.map single queries
  in
  let many_lane b () = Array.map (Callout.Callout.Batch.evaluate_many b) chunks in
  let cases =
    [ ("compiled", compiled); ("compiled+cache", cached); ("rebac", rebac) ]
  in
  Printf.printf "   batches of %d over a %d-query stream\n" batch_size
    (Array.length queries);
  Printf.printf "   %-28s %12s %10s %18s\n" "case" "kdec/s" "ns/op" "minor words/op";
  let rows = ref [] in
  let results =
    List.map
      (fun (name, b) ->
        let s_dps, s_w = measure (single_lane b) in
        let m_dps, m_w = measure (many_lane b) in
        List.iter
          (fun (label, dps, w) ->
            Printf.printf "   %-28s %12.0f %10.0f %18.1f\n" label (dps /. 1e3)
              (1e9 /. dps) w;
            rows :=
              !rows
              @ [ (label ^ "/decisions_per_sec", dps);
                  (label ^ "/minor_words_per_op", w) ])
          [ (name ^ "/0-single", s_dps, s_w); (name ^ "/1-batched", m_dps, m_w) ];
        (name, (s_dps, m_dps, m_w)))
      cases
  in
  (match List.assoc_opt "compiled" results with
  | Some (s_dps, m_dps, m_w) ->
    let speedup = m_dps /. s_dps in
    Printf.printf
      "   compiled: batched %.1fx single-shot, %.2fM decisions/s (targets: >=5x, >1M/s)\n"
      speedup (m_dps /. 1e6);
    let ceiling, origin = batch_alloc_ceiling () in
    Printf.printf "   allocation: %.1f minor words/op vs ceiling %.1f (%s)\n" m_w
      ceiling origin;
    if m_w > ceiling then begin
      Printf.printf "   FAIL: batched compiled path exceeds the allocation ceiling\n";
      incr bench_failures
    end;
    rows :=
      !rows @ [ ("compiled/batch_speedup", speedup); ("compiled/alloc_ceiling", ceiling) ]
  | None -> ());
  collected := ("batch decision pipeline", !rows) :: !collected;
  (* Differential oracle: every backend's many lane must agree with its
     single lane element-wise — decision AND reason (the structural
     compare covers the full error payload) — across a fresh seeded mix
     chopped into ragged batch sizes. The fallback lane exercises
     [Batch.of_callout] itself over the uncompiled reference evaluator. *)
  let fallback = Callout.Callout.Batch.of_callout (Callout.File_pep.reference sources) in
  let trials = 1200 in
  let stream = query_stream ~seed:20260811 trials in
  let rng = Util.Rng.create ~seed:99 in
  let divergences = ref 0 in
  List.iter
    (fun (name, b) ->
      let single = Callout.Callout.Batch.check b in
      let expect = Array.map single stream in
      let got = Array.make trials Callout.Callout.permitted in
      let pos = ref 0 in
      while !pos < trials do
        let len = min (trials - !pos) (1 + Util.Rng.int rng 97) in
        let answers = Callout.Callout.Batch.evaluate_many b (Array.sub stream !pos len) in
        Array.blit answers 0 got !pos len;
        pos := !pos + len
      done;
      let diff = ref 0 in
      for i = 0 to trials - 1 do
        if expect.(i) <> got.(i) then incr diff
      done;
      if !diff > 0 then Printf.printf "   %-28s %d/%d divergences\n" name !diff trials;
      divergences := !divergences + !diff)
    (("fallback", fallback) :: cases);
  Printf.printf "   divergence check: %d/%d per-backend answers differ (must be 0)\n"
    !divergences (trials * 4);
  if !divergences > 0 then incr bench_failures;
  collected :=
    ("batch divergence", [ ("divergences", float_of_int !divergences) ]) :: !collected

(* ------------------------------------------------------------------ *)
(* T21: federated fleet — population-scale workload across N members   *)

(* The checked-in allocation budget for the population synthesizer, in
   minor words per (sample + dn) pair. Same fallback scheme as
   [batch_alloc_ceiling]. *)
let population_alloc_ceiling () =
  let default = (512.0, "built-in default") in
  match open_in "bench/population_alloc_ceiling.txt" with
  | exception Sys_error _ -> default
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match float_of_string_opt (String.trim (input_line ic)) with
        | Some v -> (v, "bench/population_alloc_ceiling.txt")
        | None -> default
        | exception End_of_file -> default)

let t21_fleet () =
  section "T21: federated fleet — population-scale workload across N resources";
  (* Smoke mode (BENCH_FLEET_SMOKE=1, the CI setting) shrinks the member
     sweep and job count but keeps the population at 10^5 distinct DNs —
     the synthesizer is O(1) in size, so only job count costs time. *)
  let smoke = Sys.getenv_opt "BENCH_FLEET_SMOKE" <> None in
  let population_size = 100_000 in
  let jobs = if smoke then 400 else 2_000 in
  let member_counts = if smoke then [ 2 ] else [ 1; 2; 4; 8 ] in
  let cache_capacity = 1024 in
  (* capacity << distinct subjects: the hot cache covers the zipf head *)
  let run n =
    let pop = Core.Population.create ~seed:49 ~size:population_size in
    let w =
      Fusion.build ~fleet:n ~population:pop ~authz_cache:cache_capacity
        ~nodes:8 ~cpus_per_node:8 ~faults:Sim.Network.Faults.none ~broker_seed:42 ()
    in
    let fleet = Option.get w.Fusion.fleet in
    let t0 = Sys.time () in
    let stats =
      Workload.run_population ~fleet ~population:pop
        ~ca:(Testbed.ca w.Fusion.testbed)
        { Workload.default_population_config with
          Workload.pop_job_count = jobs;
          pop_seed = 42 }
    in
    let wall = Sys.time () -. t0 in
    let makespan = Sim.Engine.now (Fleet.engine fleet) in
    (fleet, stats, wall, makespan)
  in
  Printf.printf
    "   %d jobs, population %d (zipfian), decision cache %d entries/member\n"
    jobs population_size cache_capacity;
  Printf.printf "   %-4s %12s %10s %10s %10s %12s\n" "N" "accepted"
    "jobs/sim-s" "p50 (s)" "p99 (s)" "wall (ms)";
  let rows = ref [] in
  let last = ref None in
  List.iter
    (fun n ->
      let fleet, stats, wall, makespan = run n in
      let accepted = stats.Workload.tally.Workload.accepted in
      let throughput = float_of_int accepted /. makespan in
      let p50 = Option.value (Workload.latency_percentile stats 0.5) ~default:0.0 in
      let p99 = Option.value (Workload.latency_percentile stats 0.99) ~default:0.0 in
      Printf.printf "   %-4d %12d %10.2f %10.3f %10.3f %12.1f\n" n accepted
        throughput p50 p99 (wall *. 1000.0);
      rows :=
        !rows
        @ [ (Printf.sprintf "fleet/n%d/accepted" n, float_of_int accepted);
            (Printf.sprintf "fleet/n%d/jobs_per_sim_s" n, throughput);
            (Printf.sprintf "fleet/n%d/latency_p50_s" n, p50);
            (Printf.sprintf "fleet/n%d/latency_p99_s" n, p99);
            (Printf.sprintf "fleet/n%d/wall_ms" n, wall *. 1000.0);
            ( Printf.sprintf "fleet/n%d/distinct_subjects" n,
              float_of_int stats.Workload.distinct_subjects ) ];
      last := Some (fleet, stats))
    member_counts;
  (* Per-member decision-cache hit rates at the largest fleet. Start
     decisions are keyed per job contact (a fresh job can never reuse a
     cached answer), so only repeated management of the same job can
     hit — a one-shot-follow-up workload measures the floor, not a
     defect. *)
  (match !last with
  | None -> ()
  | Some (fleet, stats) ->
    Printf.printf
      "   per-member decision cache at N=%d (start decisions key per job;\n\
      \   hits come from repeated management of the same job):\n"
      (Fleet.size fleet);
    List.iter
      (fun m ->
        match Fleet.member_cache m with
        | None -> ()
        | Some cache ->
          let hits = float_of_int (Callout.Cache.hits cache) in
          let misses = float_of_int (Callout.Cache.misses cache) in
          let rate = if hits +. misses = 0.0 then 0.0 else hits /. (hits +. misses) in
          let name = Fleet.member_name m in
          Printf.printf "     %-16s hits %6.0f  misses %6.0f  hit rate %5.1f%%\n"
            name hits misses (rate *. 100.0);
          rows := !rows @ [ ("cache/" ^ name ^ "/hit_rate", rate) ])
      (Fleet.members fleet);
    if stats.Workload.distinct_subjects <= cache_capacity / 4 then begin
      Printf.printf
        "   FAIL: workload touched too few distinct subjects to stress the cache\n";
      incr bench_failures
    end);
  (* The synthesizer's allocation budget: one (sample + dn) pair must
     stay under the checked-in ceiling, and building a 10^6-subject
     population must cost no more than building a 10^2-subject one —
     the O(1)-in-size claims T21 rests on. *)
  let pop = Core.Population.create ~seed:7 ~size:population_size in
  let rng = Util.Rng.create ~seed:7 in
  let iters = 200_000 in
  let minor0 = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Core.Population.dn pop (Core.Population.sample pop rng))
  done;
  let per_pair = (Gc.minor_words () -. minor0) /. float_of_int iters in
  let ceiling, origin = population_alloc_ceiling () in
  Printf.printf "   synthesizer: %.1f minor words per (sample+dn) vs ceiling %.1f (%s)\n"
    per_pair ceiling origin;
  if per_pair > ceiling then begin
    Printf.printf "   FAIL: population synthesizer exceeds the allocation ceiling\n";
    incr bench_failures
  end;
  let create_words size =
    let before = Gc.minor_words () in
    ignore (Core.Population.create ~seed:11 ~size);
    Gc.minor_words () -. before
  in
  let small = create_words 100 and large = create_words 1_000_000 in
  Printf.printf "   create: %.0f words at size 10^2, %.0f at 10^6 (must match)\n"
    small large;
  if abs_float (large -. small) > 64.0 then begin
    Printf.printf "   FAIL: Population.create allocation grows with size\n";
    incr bench_failures
  end;
  rows :=
    !rows
    @ [ ("synthesizer/minor_words_per_pair", per_pair);
        ("synthesizer/alloc_ceiling", ceiling);
        ("synthesizer/create_words_1e6", large) ];
  collected := ("fleet population workload", !rows) :: !collected

(* T22: the security token service. Three questions:
   - what does the token gate cost per validation (decode + signature +
     claims) on top of the policy decision it guards?
   - once a subject is revoked, how long until every member enforces it
     — per distribution mode, as simulated p50/p99 — and does the p99
     stay inside the mode's declared propagation window?
   - what resident revocation state does each mode pay for that window?
   The sweep runs the 10^5-subject population workload over a tokenized
   fleet, revoking zipf-head subjects mid-campaign. Smoke mode
   (BENCH_STS_SMOKE=1, the CI setting) shrinks jobs and revocations but
   keeps the population and all three modes. *)
let t22_sts () =
  section "T22: security token service — validation cost and revocation enforcement";
  let smoke = Sys.getenv_opt "BENCH_STS_SMOKE" <> None in
  let rows = ref [] in
  (* validation microbench: one token, one member's gate, fixed query *)
  Util.Ids.reset ();
  Crypto.Keypair.reset_keystore ();
  let engine = Sim.Engine.create () in
  let ca = Gsi.Ca.create ~now:0.0 "/O=Grid/CN=Bench CA" in
  let trust = Gsi.Ca.Trust_store.create () in
  Gsi.Ca.Trust_store.add trust (Gsi.Ca.certificate ca);
  let service =
    Sts.Service.create ~name:"bench-sts" ~engine ~trust ~obs:Obs.Obs.noop ()
  in
  let alice = Gsi.Identity.create ~ca ~now:0.0 ~lifetime:43_200.0 "/O=Grid/CN=Alice" in
  let proxy, token =
    Result.get_ok (Sts.Service.proxy_with_token service ~now:0.0 alice)
  in
  let encoded = Sts.Token.encode token in
  let sts_key = Sts.Service.public_key service in
  let credential =
    Gsi.Credential.of_identity proxy
      ~challenge:(Sts.Service.fresh_challenge service)
  in
  let query =
    Callout.Callout.Query.make ~requester:(Gsi.Identity.subject alice) ~credential
      ~job_id:"job-1"
      (Callout.Callout.Query.Start (Rsl.Parser.parse_clause_exn "&(executable=x)"))
  in
  let gate =
    Sts.Pep.callout ~sts_key ~audience:"*" ~now:(fun () -> 100.0)
      Callout.Callout.permit_all
  in
  print_table "T22a: token validation (ns/op)"
    (run_tests
       [ Test.make ~name:"token/decode"
           (Staged.stage (fun () -> ignore (Sts.Token.decode encoded)));
         Test.make ~name:"token/verify"
           (Staged.stage (fun () ->
                ignore
                  (Sts.Token.verify token ~sts_key
                     ~presenter:(Gsi.Identity.subject alice) ~audience:"gram"
                     ~now:100.0)));
         Test.make ~name:"pep/full_gate"
           (Staged.stage (fun () -> ignore (gate query))) ]);
  (* per-mode revocation sweep over the tokenized fleet *)
  let population_size = 100_000 in
  let jobs = if smoke then 300 else 1_500 in
  let revocation_count = if smoke then 24 else 120 in
  let arrival_rate = 2.0 in
  let span = float_of_int jobs /. arrival_rate in
  let percentile q = function
    | [] -> 0.0
    | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      a.(min (Array.length a - 1)
           (int_of_float (q *. float_of_int (Array.length a))))
  in
  Printf.printf
    "   %d jobs over %.0f sim-s, population %d, %d mid-campaign revocations\n"
    jobs span population_size revocation_count;
  Printf.printf "   %-10s %10s %12s %12s %12s %14s\n" "mode" "accepted"
    "latencies" "p50 (s)" "p99 (s)" "state (bytes)";
  List.iter
    (fun mode ->
      let pop = Core.Population.create ~seed:51 ~size:population_size in
      let w =
        Fusion.build ~fleet:2 ~population:pop ~authz_cache:1024 ~nodes:8
          ~cpus_per_node:8 ~faults:Sim.Network.Faults.none ~broker_seed:42
          ~sts:mode ()
      in
      let fleet = Option.get w.Fusion.fleet in
      let sts = Option.get w.Fusion.sts in
      let engine = Fleet.engine fleet in
      (* Revocations land across the first 60% of the arrival span, on
         distinct zipf-head ranks (the subjects the workload actually
         exercises). Short-TTL enforcement is expiry: its latency sample
         is the subject's latest outstanding [not_after] at revocation
         time. *)
      let short_ttl_latencies = ref [] in
      for k = 0 to revocation_count - 1 do
        let at = span *. 0.6 *. float_of_int (k + 1) /. float_of_int revocation_count in
        Sim.Engine.schedule_at engine at (fun () ->
            let subject = Gsi.Dn.parse (Core.Population.dn pop k) in
            let now = Sim.Engine.now engine in
            (match Sts.Service.outstanding_not_after sts subject with
            | Some not_after when mode = Sts.Validator.Short_ttl ->
              short_ttl_latencies := (not_after -. now) :: !short_ttl_latencies
            | _ -> ());
            Sts.Service.revoke_subject sts ~now subject)
      done;
      let stats =
        Workload.run_population ~sts ~fleet ~population:pop
          ~ca:(Testbed.ca w.Fusion.testbed)
          { Workload.default_population_config with
            Workload.pop_job_count = jobs;
            pop_arrival_rate = arrival_rate;
            pop_seed = 42 }
      in
      let validators = List.filter_map Fleet.member_validator (Fleet.members fleet) in
      let latencies =
        match mode with
        | Sts.Validator.Short_ttl -> !short_ttl_latencies
        | Sts.Validator.Push | Sts.Validator.Pull ->
          List.concat_map Sts.Validator.enforcement_latencies validators
      in
      let state_bytes =
        List.fold_left (fun acc v -> acc + Sts.Validator.state_bytes v) 0 validators
      in
      let p50 = percentile 0.5 latencies and p99 = percentile 0.99 latencies in
      let window = Sts.Service.propagation_window sts in
      let label = Sts.Validator.mode_to_string mode in
      Printf.printf "   %-10s %10d %12d %12.3f %12.3f %14d\n" label
        stats.Workload.tally.Workload.accepted (List.length latencies) p50 p99
        state_bytes;
      if latencies = [] then begin
        Printf.printf "   FAIL: %s produced no enforcement-latency samples\n" label;
        incr bench_failures
      end;
      if p99 > window then begin
        Printf.printf
          "   FAIL: %s revocation-to-enforcement p99 %.3fs exceeds the mode's \
           %.0fs window\n"
          label p99 window;
        incr bench_failures
      end;
      rows :=
        !rows
        @ [ (Printf.sprintf "%s/accepted" label,
             float_of_int stats.Workload.tally.Workload.accepted);
            (Printf.sprintf "%s/latency_samples" label,
             float_of_int (List.length latencies));
            (Printf.sprintf "%s/enforcement_p50_s" label, p50);
            (Printf.sprintf "%s/enforcement_p99_s" label, p99);
            (Printf.sprintf "%s/propagation_window_s" label, window);
            (Printf.sprintf "%s/state_bytes" label, float_of_int state_bytes) ])
    Sts.Validator.all_modes;
  collected := ("sts revocation enforcement", !rows) :: !collected

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("f1", figure1); ("f2", figure2); ("f3", figure3);
    ("t1", t1_authz_latency); ("t2", t2_startup_overhead); ("t3", t3_management);
    ("t4", t4_delegation); ("t5", t5_combination); ("t6", t6_rsl_parse);
    ("t7", t7_accounts); ("t8", t8_pep_placement); ("t9", t9_policy_syntax);
    ("t10", t10_discovery); ("t11", t11_allocation); ("t12", t12_workload);
    ("t13", t13_akenti_cache); ("t14", t14_obs_overhead); ("t15", t15_faults);
    ("t16", t16_authz_cache); ("t17", t17_recovery); ("t18", t18_soak);
    ("t19", t19_rebac); ("t20", t20_batch); ("t21", t21_fleet);
    ("t22", t22_sts) ]

(* Every experiment has a canonical artifact, so multi-experiment --json
   runs write one file per experiment instead of lumping everything into
   BENCH_obs.json. The t14/t15/t16 names are historical. *)
let artifact_of = function
  | "t14" -> "BENCH_obs.json"
  | "t15" -> "BENCH_faults.json"
  | "t16" -> "BENCH_authz_cache.json"
  | "t17" -> "BENCH_recovery.json"
  | "t18" -> "BENCH_soak.json"
  | "t19" -> "BENCH_rebac.json"
  | "t20" -> "BENCH_batch.json"
  | "t21" -> "BENCH_fleet.json"
  | "t22" -> "BENCH_sts.json"
  | name -> Printf.sprintf "BENCH_%s.json" name

let usage () =
  Printf.printf "usage: bench [--json] [EXPERIMENT...]\n\n";
  Printf.printf "Experiments (default: all):\n";
  Printf.printf "  f1 f2 f3     figure reproductions\n";
  Printf.printf "  t1..t21      microbenchmarks (see DESIGN.md)\n\n";
  Printf.printf "--json additionally writes each experiment's table to its canonical\n";
  Printf.printf "artifact (e.g. t15 -> BENCH_faults.json, t18 -> BENCH_soak.json).\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then begin
    usage ();
    exit 0
  end;
  let json = List.mem "--json" args in
  let requested =
    match List.filter (fun a -> a <> "--json") args with
    | [] -> List.map fst experiments
    | names -> names
  in
  Printf.printf "Fine-grain GRID authorization: benchmark & figure harness\n";
  Printf.printf "(figures F1-F3 reproduce the paper's artifacts; T1-T22 are the\n";
  Printf.printf " quantitative microbenchmarks defined in DESIGN.md)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let before = !collected in
        f ();
        if json then begin
          (* Tables pushed by this experiment, in chronological order. *)
          let rec fresh acc tables =
            if tables == before then acc
            else
              match tables with [] -> acc | t :: rest -> fresh (t :: acc) rest
          in
          match fresh [] !collected with
          | [] -> ()
          | tables -> write_json (artifact_of name) tables
        end
      | None -> Printf.printf "unknown experiment %S (known: f1 f2 f3 t1..t21)\n" name)
    requested;
  if !bench_failures > 0 then begin
    Printf.printf "\n%d experiment acceptance check(s) FAILED\n" !bench_failures;
    exit 1
  end
