(* Multi-site VO policy: "the VO coordinate[s] policy across resources in
   different domains to form a consistent policy environment" (Section 1).

   One fusion VO, two sites with different owners: ANL allows any queue
   but caps cpu counts; NERSC reserves its "priority" queue and admits
   larger jobs. Both combine their own policy with the same VO policy, so
   a member's VO-level rights are identical across sites while site rules
   differ — and the VO admin can manage the VO's jobs wherever they run.

   Run with: dune exec examples/multi_site.exe *)

open Core

let say fmt = Printf.printf fmt

let () =
  let tb = Testbed.create () in
  let vo = Fusion.build_vo () in
  let vo_source = Vo.Vo.policy_source vo in

  let site name owner_policy_text =
    let owner = Policy.Combine.source ~name:(name ^ "-owner") (Policy.Parse.parse owner_policy_text) in
    Testbed.make_resource tb ~name ~nodes:8 ~cpus_per_node:8
      ~gridmap:(Gsi.Gridmap.parse Fusion.gridmap_text)
      ~backend:(Flat_file [ owner; vo_source ])
  in
  let anl =
    site "anl"
      (Fusion.organization
     ^ {|: &(action = start)(count <= 8) &(action = cancel) &(action = information) &(action = signal)|})
  in
  let nersc =
    site "nersc"
      (Fusion.organization
     ^ {|: &(action = start)(queue != priority) &(action = cancel) &(action = information) &(action = signal)|})
  in

  let kate_id = Testbed.add_user tb Fusion.kate_keahey in
  let admin_id = Testbed.add_user tb Fusion.admin in
  let kate_at resource = Testbed.client tb ~user:kate_id ~resource in
  let admin_at resource = Testbed.client tb ~user:admin_id ~resource in

  let submit site_name client rsl =
    match Gram.Client.submit_sync client ~rsl with
    | Ok r ->
      say "  %-6s %-68s -> PERMIT\n" site_name rsl;
      Some r.Gram.Protocol.job_contact
    | Error e ->
      say "  %-6s %-68s -> DENY\n         %s\n" site_name rsl
        (Gram.Protocol.submit_error_to_string e);
      None
  in

  say "== The same VO right works at both sites ==\n";
  let transp = "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=9000)" in
  let at_anl = submit "anl" (kate_at anl) transp in
  let _at_nersc = submit "nersc" (kate_at nersc) transp in

  say "\n== Site-specific owner rules differ ==\n";
  (* ANL caps count at 8. *)
  ignore
    (submit "anl" (kate_at anl)
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=9)");
  (* NERSC admits 9 cpus but reserves its priority queue. *)
  ignore
    (submit "nersc" (kate_at nersc)
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=9)");
  ignore
    (submit "nersc" (kate_at nersc)
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(queue=priority)");
  ignore
    (submit "anl" (kate_at anl)
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(queue=priority)(simduration=60)");

  say "\n== VO-wide management crosses sites ==\n";
  (match at_anl with
  | Some contact -> begin
    match Gram.Client.manage_sync (admin_at anl) ~contact Gram.Protocol.Cancel with
    | Ok _ -> say "  VO admin cancels Kate's NFC job at ANL -> PERMIT\n"
    | Error e -> say "  cancel failed: %s\n" (Gram.Protocol.management_error_to_string e)
  end
  | None -> ());

  say "\n== The compiled VO policy shipped to both sites ==\n%s\n"
    (Policy.Types.to_string (Vo.Vo.compile_policy vo))
