(* Policy administration workflows: the tooling Section 6.3 says the
   administrator community needs — linting policy before deployment,
   answering "what did I grant?", and moving between the RSL-based and
   XACML-style syntaxes without changing semantics.

   Run with: dune exec examples/policy_administration.exe *)

open Core

let say fmt = Printf.printf fmt

let () =
  say "== 1. Lint a draft policy before deployment ==\n";
  let draft =
    {|# draft VO policy, with mistakes
/O=Grid/O=Fusion/CN=Alice: &(action = start)(executable = sim)(count > 8)(count < 4)
/O=Grid/O=Fusion/CN=Bob: &(executable = sim)
/O=Grid/O=Fusion/CN=Bob: &(executable = sim)
|}
  in
  let policy = Policy.Parse.parse draft in
  List.iter
    (fun f -> say "  %s\n" (Policy.Lint.finding_to_string f))
    (Policy.Lint.lint policy);

  say "\n== 2. The corrected policy is clean ==\n";
  let fixed =
    Policy.Parse.parse
      {|/O=Grid/O=Fusion/CN=Alice: &(action = start)(executable = sim)(count < 4)
/O=Grid/O=Fusion/CN=Bob: &(action = start)(executable = sim)
/O=Grid/O=Fusion/CN=Bob: &(action = cancel)(jobowner = self)|}
  in
  (match Policy.Lint.lint fixed with
  | [] -> say "  no findings\n"
  | fs -> List.iter (fun f -> say "  %s\n" (Policy.Lint.finding_to_string f)) fs);

  say "\n== 3. What did we actually grant? ==\n";
  List.iter
    (fun who ->
      Fmt.pr "%a@." Policy.Query.pp_rights (fixed, Gsi.Dn.parse who))
    [ "/O=Grid/O=Fusion/CN=Alice"; "/O=Grid/O=Fusion/CN=Bob" ];
  say "  Who can cancel jobs? %s\n"
    (String.concat ", "
       (List.map Gsi.Dn.to_string
          (Policy.Query.who_can fixed ~action:Policy.Types.Action.Cancel ())));
  say "  Alice's executables: %s\n"
    (String.concat ", "
       (Policy.Query.allowed_values fixed ~subject:(Gsi.Dn.parse "/O=Grid/O=Fusion/CN=Alice")
          ~attribute:"executable"));

  say "\n== 4. Export to the XACML-style syntax (Section 6.3) ==\n";
  let xml = Policy.Xacml.to_string ~policy_id:"fusion-draft" fixed in
  print_string xml;

  say "\n== 5. Round-trip: the XML re-imports to the same decisions ==\n";
  let reimported = Policy.Xacml.parse xml in
  let probe =
    Policy.Types.start_request
      ~subject:(Gsi.Dn.parse "/O=Grid/O=Fusion/CN=Alice")
      ~job:(Rsl.Parser.parse_clause_exn "&(executable=sim)(count=2)")
  in
  say "  RSL-syntax decision:  %s\n"
    (Policy.Eval.decision_to_string (Policy.Eval.evaluate fixed probe));
  say "  XML-syntax decision:  %s\n"
    (Policy.Eval.decision_to_string (Policy.Eval.evaluate reimported probe))
