(* Three authorization backends, one policy: the flat-file PEP (the
   paper's prototype), Akenti use-condition certificates (the SC02
   integration), and CAS capabilities (the push-model generality test of
   Section 5). The same requests are evaluated against each backend to
   show the callout API makes them interchangeable.

   Run with: dune exec examples/multi_source_policy.exe *)

open Core

let org = Fusion.organization
let kate = Fusion.kate_keahey

let requests =
  [ ("TRANSP in /sandbox/test, tag NFC", "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)");
    ("TRANSP without a jobtag", "&(executable=TRANSP)(directory=/sandbox/test)");
    ("arbitrary executable", "&(executable=/bin/sh)(directory=/sandbox/test)(jobtag=NFC)") ]

let query rsl kate_credential =
  { Callout.Callout.requester = Gsi.Dn.parse kate;
    requester_credential = kate_credential;
    job_owner = None;
    action = Policy.Types.Action.Start;
    job_id = Some "job-x";
    rsl = Some (Rsl.Parser.parse_clause_exn rsl);
    jobtag = None }

let show name callout credential =
  Printf.printf "%s\n" name;
  List.iter
    (fun (label, rsl) ->
      match callout (query rsl credential) with
      | Ok () -> Printf.printf "  %-40s -> PERMIT\n" label
      | Error e ->
        Printf.printf "  %-40s -> DENY: %s\n" label (Callout.Callout.error_to_string e))
    requests;
  print_newline ()

let () =
  let tb = Testbed.create () in
  let vo = Fusion.build_vo () in
  let kate_id = Testbed.add_user tb kate in

  (* --- Backend 1: flat-file policies on the resource (pull). --------- *)
  let file_callout = Callout.File_pep.of_sources (Fusion.policy_sources vo) in
  show "[flat-file PEP: resource-owner + VO policy files]" file_callout None;

  (* --- Backend 2: Akenti (pull: use-conditions + attribute certs). --- *)
  let site_kp = Crypto.Keypair.generate ~seed_material:"site" in
  let vo_kp = Crypto.Keypair.generate ~seed_material:"vo" in
  let aa_kp = Crypto.Keypair.generate ~seed_material:"attr-authority" in
  Crypto.Keypair.register site_kp;
  Crypto.Keypair.register vo_kp;
  Crypto.Keypair.register aa_kp;
  let site =
    { Akenti.Engine.dn = Gsi.Dn.parse "/O=Grid/CN=Site"; key = Crypto.Keypair.public site_kp }
  in
  let vo_stakeholder =
    { Akenti.Engine.dn = Gsi.Dn.parse "/O=Grid/CN=Fusion VO";
      key = Crypto.Keypair.public vo_kp }
  in
  let authority =
    { Akenti.Engine.dn = Gsi.Dn.parse "/O=Grid/CN=Fusion AA";
      key = Crypto.Keypair.public aa_kp }
  in
  let engine =
    Akenti.Engine.create ~resource:"gram-job-manager" ~stakeholders:[ site; vo_stakeholder ]
      ~attribute_authorities:[ authority ]
  in
  let constraints rsl =
    List.map
      (fun (r : Rsl.Ast.relation) ->
        { Policy.Types.attribute = r.attribute;
          op = r.op;
          values =
            List.map
              (function
                | Rsl.Ast.Literal "NULL" -> Policy.Types.Null
                | Rsl.Ast.Literal s -> Policy.Types.Str s
                | Rsl.Ast.Variable _ | Rsl.Ast.Binding _ -> assert false)
              r.values })
      (Rsl.Parser.parse_clause_exn rsl)
  in
  Akenti.Engine.publish_condition engine
    (Akenti.Use_condition.make ~resource:"gram-job-manager" ~stakeholder:site.Akenti.Engine.dn
       ~actions:Policy.Types.Action.all ~constraints:(constraints "&(queue != reserved)")
       ~required_attributes:[] ~not_before:0.0 ~not_after:1e9
       ~signing_key:(Crypto.Keypair.secret site_kp));
  Akenti.Engine.publish_condition engine
    (Akenti.Use_condition.make ~resource:"gram-job-manager"
       ~stakeholder:vo_stakeholder.Akenti.Engine.dn ~actions:[ Policy.Types.Action.Start ]
       ~constraints:(constraints "&(executable=TRANSP)(directory=/sandbox/test)(jobtag != NULL)")
       ~required_attributes:[ ("group", "analysts") ] ~not_before:0.0 ~not_after:1e9
       ~signing_key:(Crypto.Keypair.secret vo_kp));
  Akenti.Engine.publish_attribute engine
    (Akenti.Attr_cert.make ~subject:(Gsi.Dn.parse kate) ~attribute:"group" ~value:"analysts"
       ~issuer:authority.Akenti.Engine.dn ~not_before:0.0 ~not_after:1e9
       ~signing_key:(Crypto.Keypair.secret aa_kp));
  let akenti_callout = Akenti.Akenti_pep.callout ~engine ~now:(fun () -> 1.0) in
  show "[Akenti PEP: use-conditions from 2 stakeholders + attribute certs]" akenti_callout
    None;

  (* --- Backend 3: CAS (push: capability carried by the user). -------- *)
  let cas = Cas.Server.create ~vo "fusion-cas" in
  let kate_proxy =
    Result.get_ok (Cas.Server.grant_proxy cas ~trust:(Testbed.trust tb) ~now:0.0 kate_id)
  in
  let challenge = Gsi.Authn.fresh_challenge () in
  let kate_credential = Gsi.Credential.of_identity kate_proxy ~challenge in
  let cas_callout =
    Cas.Pep.callout ~cas_key:(Cas.Server.public_key cas) ~now:(fun () -> 1.0)
  in
  show "[CAS PEP: capability credential issued by the community server]" cas_callout
    (Some kate_credential);

  (* The callout API makes the backends composable: require ALL of them. *)
  let belt_and_braces =
    Callout.Callout.all [ file_callout; akenti_callout; cas_callout ]
  in
  show "[conjunction of all three backends]"
    (fun q -> belt_and_braces { q with Callout.Callout.requester_credential = Some kate_credential })
    (Some kate_credential);

  Printf.printf "Note: %s is the organization prefix all three backends scope to.\n" org
