(* The SC02 / Section 2 scenario: "users often have long-running
   computational jobs ... and the VO often has short-notice high-priority
   jobs that require immediate access to resources. This requires
   suspending existing jobs ... something that normally only the user that
   submitted the job has the right to do."

   A VO administrator — not the job owner — suspends a long-running
   analysis to make room for a funding-agency demo, then resumes it.

   Run with: dune exec examples/sc02_priority_demo.exe *)

open Core

let say fmt = Printf.printf fmt

let state client contact =
  match Gram.Client.status_sync client ~contact with
  | Ok st -> Gram.Protocol.job_state_to_string st.Gram.Protocol.state
  | Error e -> "?" ^ Gram.Protocol.management_error_to_string e

let () =
  (* A small cluster so the demo genuinely cannot fit beside the
     analysis. *)
  let w = Fusion.build ~nodes:1 ~cpus_per_node:4 () in
  let now () = Testbed.now w.Fusion.testbed in

  say "t=%6.1fs  Kate starts a long TRANSP analysis on all 4 cpus.\n" (now ());
  let analysis =
    match
      Gram.Client.submit_sync w.Fusion.kate
        ~rsl:
          "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=86400)"
    with
    | Ok r -> r.Gram.Protocol.job_contact
    | Error e -> failwith (Gram.Protocol.submit_error_to_string e)
  in
  say "t=%6.1fs  analysis %s is %s\n" (now ()) analysis (state w.Fusion.kate analysis);

  Testbed.run_for w.Fusion.testbed 3600.0;
  say "t=%6.1fs  An agency demo arrives: the VO admin submits it (jobtag DEMO).\n" (now ());
  let demo =
    match
      Gram.Client.submit_sync w.Fusion.vo_admin
        ~rsl:"&(executable=demo)(directory=/sandbox/test)(jobtag=DEMO)(count=4)(simduration=1800)"
    with
    | Ok r -> r.Gram.Protocol.job_contact
    | Error e -> failwith (Gram.Protocol.submit_error_to_string e)
  in
  say "t=%6.1fs  demo %s is %s (cluster full)\n" (now ()) demo (state w.Fusion.vo_admin demo);

  say "t=%6.1fs  Kate is unreachable; the admin suspends her job under the\n" (now ());
  say "           VO-wide management grant over jobtag NFC.\n";
  (match
     Gram.Client.manage_sync w.Fusion.vo_admin ~contact:analysis
       (Gram.Protocol.Signal Gram.Protocol.Suspend)
   with
  | Ok _ -> ()
  | Error e -> failwith (Gram.Protocol.management_error_to_string e));
  say "t=%6.1fs  analysis: %s, demo: %s\n" (now ())
    (state w.Fusion.vo_admin analysis)
    (state w.Fusion.vo_admin demo);

  Testbed.run_for w.Fusion.testbed 1900.0;
  say "t=%6.1fs  demo: %s — the admin resumes the analysis.\n" (now ())
    (state w.Fusion.vo_admin demo);
  (match
     Gram.Client.manage_sync w.Fusion.vo_admin ~contact:analysis
       (Gram.Protocol.Signal Gram.Protocol.Resume)
   with
  | Ok _ -> ()
  | Error e -> failwith (Gram.Protocol.management_error_to_string e));
  say "t=%6.1fs  analysis: %s\n" (now ()) (state w.Fusion.vo_admin analysis);

  say "\nContrast: a developer (Bo Liu) attempting the same suspension:\n";
  (match
     Gram.Client.manage_sync w.Fusion.bo ~contact:analysis
       (Gram.Protocol.Signal Gram.Protocol.Suspend)
   with
  | Ok _ -> say "  unexpectedly permitted!\n"
  | Error e -> say "  denied: %s\n" (Gram.Protocol.management_error_to_string e));

  say "\nManagement audit trail:\n";
  let audit = Gram.Resource.audit w.Fusion.resource in
  List.iter
    (fun r -> Fmt.pr "  %a@." Audit.Audit.pp_record r)
    (Audit.Audit.by_kind audit Audit.Audit.Job_management)
