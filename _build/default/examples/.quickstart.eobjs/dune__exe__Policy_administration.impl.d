examples/policy_administration.ml: Core Fmt Gsi List Policy Printf Rsl String
