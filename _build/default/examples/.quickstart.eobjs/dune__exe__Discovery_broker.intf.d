examples/discovery_broker.mli:
