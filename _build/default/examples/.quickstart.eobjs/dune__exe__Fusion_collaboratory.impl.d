examples/fusion_collaboratory.ml: Core Fusion Gram Gsi List Policy Printf Rsl Vo
