examples/quickstart.mli:
