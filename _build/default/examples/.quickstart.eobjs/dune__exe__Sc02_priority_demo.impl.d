examples/sc02_priority_demo.ml: Audit Core Fmt Fusion Gram List Printf Testbed
