examples/discovery_broker.ml: Core Fmt Fusion Gram Gsi List Mds Policy Printf Testbed
