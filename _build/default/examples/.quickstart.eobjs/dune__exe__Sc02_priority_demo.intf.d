examples/sc02_priority_demo.mli:
