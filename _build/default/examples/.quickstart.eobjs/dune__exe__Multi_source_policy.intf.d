examples/multi_source_policy.mli:
