examples/multi_site.mli:
