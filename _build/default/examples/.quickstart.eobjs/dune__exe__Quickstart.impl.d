examples/quickstart.ml: Audit Core Fmt Gram Gsi Policy Printf Testbed
