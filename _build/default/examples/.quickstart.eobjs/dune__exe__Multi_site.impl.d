examples/multi_site.ml: Core Fusion Gram Gsi Policy Printf Testbed Vo
