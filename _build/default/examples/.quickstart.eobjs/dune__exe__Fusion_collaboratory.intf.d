examples/fusion_collaboratory.mli:
