examples/multi_source_policy.ml: Akenti Callout Cas Core Crypto Fusion Gsi List Policy Printf Result Rsl Testbed
