(* Discovery-driven, authorization-aware brokering: the "which site can
   run my job?" workflow GT2 deployments built from MDS + GRAM. Two
   sites publish capacity into the information service; a broker plans
   placements from fresh entries, pre-checks the VO policy to avoid
   doomed submissions, and falls through when a site's own PEP says no.

   Run with: dune exec examples/discovery_broker.exe *)

open Core

let say fmt = Printf.printf fmt

let () =
  let tb = Testbed.create () in
  let vo = Fusion.build_vo () in
  let gridmap = Gsi.Gridmap.parse Fusion.gridmap_text in

  (* Site A: big, enforces the full owner+VO policy. *)
  let site_a =
    Testbed.make_resource tb ~name:"anl-cluster" ~nodes:16 ~cpus_per_node:8 ~gridmap
      ~backend:(Flat_file (Fusion.policy_sources vo))
  in
  (* Site B: small, same policy. *)
  let site_b =
    Testbed.make_resource tb ~name:"pppl-cluster" ~nodes:2 ~cpus_per_node:4 ~gridmap
      ~backend:(Flat_file (Fusion.policy_sources vo))
  in

  let directory = Mds.Directory.create ~ttl:120.0 (Testbed.engine tb) in
  let _pa = Mds.Provider.attach ~period:30.0 ~site:"anl" ~directory site_a in
  let _pb = Mds.Provider.attach ~period:30.0 ~site:"pppl" ~directory site_b in

  say "== Information service after initial publication ==\n";
  List.iter
    (fun e -> Fmt.pr "  %a@." (Mds.Directory.pp_entry (Testbed.now tb)) e)
    (Mds.Directory.query directory);

  (* A broker that pre-checks the VO's own policy before submitting. *)
  let vo_sources = Fusion.policy_sources vo in
  let precheck request =
    Policy.Combine.is_permit (Policy.Combine.evaluate vo_sources request)
  in
  let broker = Mds.Broker.create ~precheck ~directory [ site_a; site_b ] in
  let kate = Testbed.add_user tb Fusion.kate_keahey in

  let place label rsl =
    match Mds.Broker.submit broker ~identity:kate ~rsl with
    | Ok (site, reply) ->
      say "  %-34s -> %s (%s)\n" label site reply.Gram.Protocol.job_contact
    | Error e -> say "  %-34s -> FAILED\n%s\n" label (Mds.Broker.error_to_string e)
  in

  say "\n== Brokered placements ==\n";
  (* Fills 100 cpus at ANL over several jobs; watch placement shift. *)
  place "TRANSP x64 (only fits ANL)"
    "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=64)(simduration=7200)";
  place "TRANSP x60 (ANL nearly full)"
    "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=60)(simduration=7200)";
  (* The directory has not republished yet: it still believes ANL has
     128 free cpus. The submission falls through to actual capacity. *)
  place "TRANSP x8 (directory is stale)"
    "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=8)(simduration=3600)";
  Testbed.run_for tb 35.0;
  say "\n== After republication (t=%.0fs) ==\n" (Testbed.now tb);
  List.iter
    (fun e -> Fmt.pr "  %a@." (Mds.Directory.pp_entry (Testbed.now tb)) e)
    (Mds.Directory.query directory);
  place "TRANSP x4 (fresh view)"
    "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=600)";

  say "\n== The pre-check saves doomed submissions ==\n";
  place "forbidden executable" "&(executable=rm)(directory=/)(jobtag=NFC)";
  say "\n(no site ever saw that request: the VO policy already denied it)\n"
