(* Policy lint: static diagnosis of suspicious policy.

   Section 6.3 reports that administrators found the RSL-based syntax
   error-prone. Beyond syntax, the silent failure mode of a default-deny
   language is policy that parses but never fires: contradictory
   conjunctions, duplicate clauses, statements shadowed by earlier ones.
   The linter flags those before deployment; gridctl exposes it. *)

type severity = Warning | Error_

type finding = {
  severity : severity;
  statement_index : int; (* 0-based position in the policy *)
  message : string;
}

let severity_to_string = function Warning -> "warning" | Error_ -> "error"

let finding_to_string f =
  Printf.sprintf "%s: statement %d: %s" (severity_to_string f.severity)
    (f.statement_index + 1) f.message

(* A conjunction is unsatisfiable when one attribute is pinned to
   disjoint equality sets, required both present and absent, or boxed
   into an empty numeric interval. This is a conservative check: it only
   reports contradictions it can prove. *)
let clause_unsatisfiable (clause : Types.clause) : string option =
  let by_attribute =
    List.fold_left
      (fun acc (c : Types.constr) ->
        let existing = Option.value (List.assoc_opt c.Types.attribute acc) ~default:[] in
        (c.Types.attribute, existing @ [ c ]) :: List.remove_assoc c.Types.attribute acc)
      [] clause
  in
  List.find_map
    (fun (attribute, constraints) ->
      (* Equality sets must intersect pairwise. *)
      let eq_sets =
        List.filter_map
          (fun (c : Types.constr) ->
            if c.Types.op = Grid_rsl.Ast.Eq && not (List.mem Types.Null c.Types.values)
            then Some c.Types.values
            else None)
          constraints
      in
      let eq_conflict =
        match eq_sets with
        | first :: rest ->
          let inter =
            List.fold_left
              (fun acc set ->
                List.filter (fun v -> List.exists (Types.cvalue_equal v) set) acc)
              first rest
          in
          if inter = [] && rest <> [] then
            Some (Printf.sprintf "(%s): equality constraints have no common value" attribute)
          else None
        | [] -> None
      in
      let requires_absent =
        List.exists
          (fun (c : Types.constr) ->
            c.Types.op = Grid_rsl.Ast.Eq && c.Types.values = [ Types.Null ])
          constraints
      in
      let requires_present =
        List.exists
          (fun (c : Types.constr) ->
            (c.Types.op = Grid_rsl.Ast.Neq && c.Types.values = [ Types.Null ])
            || (c.Types.op <> Grid_rsl.Ast.Neq && not (List.mem Types.Null c.Types.values)))
          constraints
      in
      let presence_conflict =
        if requires_absent && requires_present then
          Some (Printf.sprintf "(%s): required both present and absent" attribute)
        else None
      in
      (* Numeric interval: lower bound above upper bound. *)
      let bound op =
        List.filter_map
          (fun (c : Types.constr) ->
            if c.Types.op <> op then None
            else
              match c.Types.values with
              | [ Types.Str s ] -> float_of_string_opt s
              | _ -> None)
          constraints
      in
      let uppers = bound Grid_rsl.Ast.Lt @ bound Grid_rsl.Ast.Le in
      let lowers = bound Grid_rsl.Ast.Gt @ bound Grid_rsl.Ast.Ge in
      let strict_upper = bound Grid_rsl.Ast.Lt <> [] in
      let strict_lower = bound Grid_rsl.Ast.Gt <> [] in
      let numeric_conflict =
        match (lowers, uppers) with
        | l :: _ as lows, (u :: _ as ups) ->
          ignore l;
          ignore u;
          let lo = List.fold_left Float.max neg_infinity lows in
          let hi = List.fold_left Float.min infinity ups in
          if lo > hi || (lo = hi && (strict_upper || strict_lower)) then
            Some (Printf.sprintf "(%s): empty numeric interval" attribute)
          else None
        | _ -> None
      in
      match (eq_conflict, presence_conflict, numeric_conflict) with
      | Some m, _, _ | _, Some m, _ | _, _, Some m -> Some m
      | None, None, None -> None)
    by_attribute

(* Clause A subsumes clause B when every constraint of A appears in B:
   any request satisfying B satisfies A, so B never adds new permits. *)
let clause_subsumes (a : Types.clause) (b : Types.clause) =
  List.for_all
    (fun (ca : Types.constr) ->
      List.exists
        (fun (cb : Types.constr) ->
          ca.Types.attribute = cb.Types.attribute && ca.Types.op = cb.Types.op
          && List.length ca.Types.values = List.length cb.Types.values
          && List.for_all2 Types.cvalue_equal ca.Types.values cb.Types.values)
        b)
    a

let lint (policy : Types.t) : finding list =
  let findings = ref [] in
  let add severity statement_index message =
    findings := { severity; statement_index; message } :: !findings
  in
  List.iteri
    (fun i (st : Types.statement) ->
      (* Unsatisfiable clauses. *)
      List.iteri
        (fun ci clause ->
          match clause_unsatisfiable clause with
          | Some why ->
            add Error_ i
              (Printf.sprintf "clause %d can never be satisfied %s" (ci + 1) why)
          | None -> ())
        st.Types.clauses;
      (* Duplicate / subsumed clauses within a statement. *)
      List.iteri
        (fun ci clause ->
          List.iteri
            (fun cj other ->
              if cj < ci && clause_subsumes other clause then
                add Warning i
                  (Printf.sprintf "clause %d is subsumed by clause %d (never adds permits)"
                     (ci + 1) (cj + 1)))
            st.Types.clauses)
        st.Types.clauses;
      (* Grants with no action constraint fire for every action. *)
      if st.Types.kind = Types.Grant then
        List.iteri
          (fun ci clause ->
            if
              not
                (List.exists (fun (c : Types.constr) -> c.Types.attribute = "action") clause)
            then
              add Warning i
                (Printf.sprintf "clause %d has no action constraint: it permits every action"
                   (ci + 1)))
          st.Types.clauses;
      (* Statement-level duplicates: identical subject + kind with every
         clause subsumed by an earlier statement. *)
      List.iteri
        (fun j (other : Types.statement) ->
          if
            j < i && other.Types.kind = st.Types.kind
            && Grid_gsi.Dn.equal other.Types.subject_pattern st.Types.subject_pattern
            && List.for_all
                 (fun clause ->
                   List.exists (fun c -> clause_subsumes c clause) other.Types.clauses)
                 st.Types.clauses
          then
            add Warning i
              (Printf.sprintf "every clause is already covered by statement %d" (j + 1)))
        policy)
    policy;
  (* Validation findings surface as errors too. *)
  (match Eval.validate policy with
  | Ok () -> ()
  | Error m -> add Error_ 0 m);
  List.rev !findings

let has_errors findings = List.exists (fun f -> f.severity = Error_) findings
