(** Policy analysis: syntactic "what did I grant?" queries for
    administrators of a default-deny system. *)

type granted_clause = {
  statement_index : int;
  subject_pattern : Grid_gsi.Dn.t;
  actions : Types.Action.t list;
  clause : Types.clause;
}

val actions_of_clause : Types.clause -> Types.Action.t list
(** Actions the clause's action-constraints admit (all four when
    unconstrained). *)

val grants_for : Types.t -> subject:Grid_gsi.Dn.t -> granted_clause list

val requirements_for : Types.t -> subject:Grid_gsi.Dn.t -> Types.statement list

val may_perform : Types.t -> subject:Grid_gsi.Dn.t -> Types.Action.t -> bool
(** Syntactic: some applicable grant clause admits the action. *)

val allowed_values : Types.t -> subject:Grid_gsi.Dn.t -> attribute:string -> string list
(** Values the attribute is pinned to across the subject's start grants
    (e.g. ~attribute:"executable" lists launchable executables). *)

val who_can :
  Types.t -> action:Types.Action.t -> ?jobtag:string -> unit -> Grid_gsi.Dn.t list
(** Subject patterns holding the action (optionally over a jobtag). *)

val pp_rights : (Types.t * Grid_gsi.Dn.t) Fmt.t
