(** Minimal XML reader/writer used by the {!Xacml} policy front end. *)

type t = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
  text : string;
}

exception Parse_error of { pos : int; message : string }

val parse : string -> t
(** Parse one document. Raises {!Parse_error}. *)

val attr : t -> string -> string option
val children_named : t -> string -> t list
val child_named : t -> string -> t option

val to_string : t -> string
(** Render with an XML prolog and 2-space indentation; round-trips
    through {!parse}. *)

val element : ?attrs:(string * string) list -> ?text:string -> string -> t list -> t

val encode_entities : string -> string
