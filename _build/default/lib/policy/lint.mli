(** Policy lint: conservative static diagnosis of policy that parses but
    cannot work — unsatisfiable clauses, subsumed (dead) clauses,
    all-action grants, duplicated statements. *)

type severity = Warning | Error_

type finding = {
  severity : severity;
  statement_index : int;
  message : string;
}

val severity_to_string : severity -> string
val finding_to_string : finding -> string

val clause_unsatisfiable : Types.clause -> string option
(** Proof of unsatisfiability, if one is found (conservative). *)

val clause_subsumes : Types.clause -> Types.clause -> bool
(** [clause_subsumes a b]: every constraint of [a] appears in [b]. *)

val lint : Types.t -> finding list

val has_errors : finding list -> bool
