(* A minimal XML reader/writer.

   Section 6.3 of the paper concludes that RSL-based policy syntax "is
   not natural to [the policy administrator] community" and that
   XML-based languages such as XACML are the candidates to replace it.
   The {!Xacml} module provides exactly that alternative front end; this
   module is the small XML substrate it parses with.

   Supported subset: prolog, comments, elements with attributes, nested
   elements, text content, self-closing tags, the five predefined
   entities. No namespaces, CDATA, doctypes or processing instructions —
   policies don't need them. *)

type t = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
  text : string; (* concatenated character data directly under this element *)
}

exception Parse_error of { pos : int; message : string }

let fail pos fmt = Printf.ksprintf (fun message -> raise (Parse_error { pos; message })) fmt

(* --- decoding -------------------------------------------------------- *)

let decode_entities pos s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | None -> fail pos "unterminated entity"
      | Some j ->
        let name = String.sub s (i + 1) (j - i - 1) in
        let c =
          match name with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ -> fail pos "unknown entity &%s;" name
        in
        Buffer.add_string buf c;
        go (j + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let encode_entities s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

type cursor = { input : string; mutable pos : int }

let peek_char c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.input && Grid_util.Strings.is_space c.input.[c.pos]
  do
    c.pos <- c.pos + 1
  done

let expect_string c s =
  let n = String.length s in
  if c.pos + n <= String.length c.input && String.sub c.input c.pos n = s then
    c.pos <- c.pos + n
  else fail c.pos "expected %S" s

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.input && String.sub c.input c.pos n = s

let is_name_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
  || ch = '-' || ch = '_' || ch = '.' || ch = ':'

let read_name c =
  let start = c.pos in
  while c.pos < String.length c.input && is_name_char c.input.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c.pos "expected a name";
  String.sub c.input start (c.pos - start)

let read_attr_value c =
  match peek_char c with
  | Some ('"' as q) | Some ('\'' as q) ->
    c.pos <- c.pos + 1;
    let start = c.pos in
    (match String.index_from_opt c.input c.pos q with
    | None -> fail start "unterminated attribute value"
    | Some close ->
      let raw = String.sub c.input start (close - start) in
      c.pos <- close + 1;
      decode_entities start raw)
  | _ -> fail c.pos "expected a quoted attribute value"

let rec skip_misc c =
  skip_ws c;
  if looking_at c "<?" then begin
    (match Grid_util.Str_search.find c.input ~from:c.pos "?>" with
    | Some j -> c.pos <- j + 2
    | None -> fail c.pos "unterminated prolog");
    skip_misc c
  end
  else if looking_at c "<!--" then begin
    (match Grid_util.Str_search.find c.input ~from:c.pos "-->" with
    | Some j -> c.pos <- j + 3
    | None -> fail c.pos "unterminated comment");
    skip_misc c
  end

and parse_element c =
  expect_string c "<";
  let tag = read_name c in
  let rec attrs acc =
    skip_ws c;
    match peek_char c with
    | Some '/' | Some '>' -> List.rev acc
    | Some ch when is_name_char ch ->
      let name = read_name c in
      skip_ws c;
      expect_string c "=";
      skip_ws c;
      let value = read_attr_value c in
      attrs ((name, value) :: acc)
    | _ -> fail c.pos "malformed attribute list in <%s>" tag
  in
  let attrs = attrs [] in
  skip_ws c;
  if looking_at c "/>" then begin
    c.pos <- c.pos + 2;
    { tag; attrs; children = []; text = "" }
  end
  else begin
    expect_string c ">";
    let children = ref [] in
    let text = Buffer.create 16 in
    let rec content () =
      if looking_at c "<!--" then begin
        (match Grid_util.Str_search.find c.input ~from:c.pos "-->" with
        | Some j -> c.pos <- j + 3
        | None -> fail c.pos "unterminated comment");
        content ()
      end
      else if looking_at c "</" then begin
        c.pos <- c.pos + 2;
        let close = read_name c in
        if close <> tag then fail c.pos "mismatched close: <%s> ended by </%s>" tag close;
        skip_ws c;
        expect_string c ">"
      end
      else if looking_at c "<" then begin
        children := parse_element c :: !children;
        content ()
      end
      else begin
        let start = c.pos in
        (match String.index_from_opt c.input c.pos '<' with
        | None -> fail start "unterminated element <%s>" tag
        | Some j ->
          Buffer.add_string text (decode_entities start (String.sub c.input start (j - start)));
          c.pos <- j);
        content ()
      end
    in
    content ();
    { tag;
      attrs;
      children = List.rev !children;
      text = Grid_util.Strings.strip (Buffer.contents text) }
  end

and parse input =
  let c = { input; pos = 0 } in
  skip_misc c;
  if not (looking_at c "<") then fail c.pos "expected an element";
  let root = parse_element c in
  skip_misc c;
  if c.pos <> String.length c.input then fail c.pos "trailing content after root element";
  root


(* --- accessors -------------------------------------------------------- *)

let attr t name = List.assoc_opt name t.attrs

let children_named t tag = List.filter (fun c -> c.tag = tag) t.children

let child_named t tag = List.find_opt (fun c -> c.tag = tag) t.children

(* --- printing --------------------------------------------------------- *)

let rec print_into buf indent t =
  let pad = String.make indent ' ' in
  Buffer.add_string buf pad;
  Buffer.add_char buf '<';
  Buffer.add_string buf t.tag;
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (encode_entities v)))
    t.attrs;
  match (t.children, t.text) with
  | [], "" -> Buffer.add_string buf "/>\n"
  | [], text ->
    Buffer.add_string buf ">";
    Buffer.add_string buf (encode_entities text);
    Buffer.add_string buf (Printf.sprintf "</%s>\n" t.tag)
  | children, _ ->
    Buffer.add_string buf ">\n";
    if t.text <> "" then begin
      Buffer.add_string buf (String.make (indent + 2) ' ');
      Buffer.add_string buf (encode_entities t.text);
      Buffer.add_char buf '\n'
    end;
    List.iter (print_into buf (indent + 2)) children;
    Buffer.add_string buf pad;
    Buffer.add_string buf (Printf.sprintf "</%s>\n" t.tag)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  print_into buf 0 t;
  Buffer.contents buf

let element ?(attrs = []) ?(text = "") tag children = { tag; attrs; children; text }
