(* XACML-style XML front end for the policy language.

   Section 6.3: "expressing policies in [RSL] terms is not natural to
   this community ... languages based on XML, such as XACML, are being
   scrutinized by the Grid security community and are viable
   candidates." This module is that replacement front end: a simplified
   XACML 1.0-shaped syntax that compiles to exactly the same internal
   representation ({!Types.t}) the RSL-based parser produces, so the
   evaluation engine, combination semantics and every PEP work
   unchanged with either syntax.

     <?xml version="1.0"?>
     <Policy PolicyId="fusion-vo">
       <Rule RuleId="bo-test1" Effect="Permit">
         <Target>
           <Subjects><Subject>/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu</Subject></Subjects>
           <Actions><Action>start</Action></Actions>
         </Target>
         <Condition>
           <Match AttributeId="executable" MatchId="equal">test1</Match>
           <Match AttributeId="directory"  MatchId="equal">/sandbox/test</Match>
           <Match AttributeId="jobtag"     MatchId="equal">ADS</Match>
           <Match AttributeId="count"      MatchId="less-than">4</Match>
         </Condition>
       </Rule>
       <Rule RuleId="must-tag" Effect="Obligation">
         <Target>
           <Subjects><Subject>/O=Grid/O=Globus/OU=mcs.anl.gov</Subject></Subjects>
           <Actions><Action>start</Action></Actions>
         </Target>
         <Condition>
           <Match AttributeId="jobtag" MatchId="present"/>
         </Condition>
       </Rule>
     </Policy>

   Mapping: Effect="Permit" rules become grant statements (one per
   <Subject>); Effect="Obligation" rules become requirement statements.
   <Action> names become an (action = ...) constraint. MatchIds map to
   the relational operators; "present"/"absent" map to != NULL / = NULL;
   the value "self" keeps its special meaning on MatchId="equal". A
   <Match> may carry several <Value> children for value sets. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let match_id_to_op = function
  | "equal" -> Grid_rsl.Ast.Eq
  | "not-equal" -> Grid_rsl.Ast.Neq
  | "less-than" -> Grid_rsl.Ast.Lt
  | "greater-than" -> Grid_rsl.Ast.Gt
  | "less-or-equal" -> Grid_rsl.Ast.Le
  | "greater-or-equal" -> Grid_rsl.Ast.Ge
  | other -> fail "unknown MatchId %S" other

let op_to_match_id = function
  | Grid_rsl.Ast.Eq -> "equal"
  | Grid_rsl.Ast.Neq -> "not-equal"
  | Grid_rsl.Ast.Lt -> "less-than"
  | Grid_rsl.Ast.Gt -> "greater-than"
  | Grid_rsl.Ast.Le -> "less-or-equal"
  | Grid_rsl.Ast.Ge -> "greater-or-equal"

let cvalue_of_text s = if s = "self" then Types.Self else Types.Str s

let parse_match (el : Xml_lite.t) : Types.constr =
  let attribute =
    match Xml_lite.attr el "AttributeId" with
    | Some a -> Grid_rsl.Ast.normalize_attribute a
    | None -> fail "<Match> without AttributeId"
  in
  let match_id = Option.value (Xml_lite.attr el "MatchId") ~default:"equal" in
  match match_id with
  | "present" -> { Types.attribute; op = Grid_rsl.Ast.Neq; values = [ Types.Null ] }
  | "absent" -> { Types.attribute; op = Grid_rsl.Ast.Eq; values = [ Types.Null ] }
  | match_id ->
    let op = match_id_to_op match_id in
    let values =
      match Xml_lite.children_named el "Value" with
      | [] -> begin
        match el.Xml_lite.text with
        | "" -> fail "<Match AttributeId=%S> without a value" attribute
        | text -> [ cvalue_of_text text ]
      end
      | value_elements ->
        List.map (fun (v : Xml_lite.t) -> cvalue_of_text v.Xml_lite.text) value_elements
    in
    { Types.attribute; op; values }

let parse_rule (el : Xml_lite.t) : Types.statement list =
  let rule_id = Option.value (Xml_lite.attr el "RuleId") ~default:"(anonymous)" in
  let kind =
    match Xml_lite.attr el "Effect" with
    | Some "Permit" -> Types.Grant
    | Some "Obligation" -> Types.Requirement
    | Some other -> fail "rule %s: unsupported Effect %S (Permit or Obligation)" rule_id other
    | None -> fail "rule %s: missing Effect" rule_id
  in
  let target =
    match Xml_lite.child_named el "Target" with
    | Some t -> t
    | None -> fail "rule %s: missing <Target>" rule_id
  in
  let subjects =
    match Xml_lite.child_named target "Subjects" with
    | Some s -> List.map (fun (el : Xml_lite.t) -> el.Xml_lite.text) (Xml_lite.children_named s "Subject")
    | None -> []
  in
  if subjects = [] then fail "rule %s: no <Subject>" rule_id;
  let actions =
    match Xml_lite.child_named target "Actions" with
    | Some a ->
      List.map
        (fun (el : Xml_lite.t) ->
          match Types.Action.of_string el.Xml_lite.text with
          | Some action -> action
          | None -> fail "rule %s: unknown action %S" rule_id el.Xml_lite.text)
        (Xml_lite.children_named a "Action")
    | None -> []
  in
  let matches =
    match Xml_lite.child_named el "Condition" with
    | Some c -> List.map parse_match (Xml_lite.children_named c "Match")
    | None -> []
  in
  let action_constr =
    match actions with
    | [] -> []
    | actions ->
      [ { Types.attribute = "action";
          op = Grid_rsl.Ast.Eq;
          values = List.map (fun a -> Types.Str (Types.Action.to_string a)) actions } ]
  in
  let clause = action_constr @ matches in
  if clause = [] then fail "rule %s: empty rule (no actions, no matches)" rule_id;
  List.map
    (fun subject ->
      let subject_pattern =
        try Grid_gsi.Dn.parse subject
        with Grid_gsi.Dn.Parse_error m -> fail "rule %s: bad subject: %s" rule_id m
      in
      { Types.kind; subject_pattern; clauses = [ clause ] })
    subjects

let of_xml (root : Xml_lite.t) : Types.t =
  if root.Xml_lite.tag <> "Policy" then fail "root element must be <Policy>";
  List.concat_map parse_rule (Xml_lite.children_named root "Rule")

let parse text : Types.t =
  match Xml_lite.parse text with
  | exception Xml_lite.Parse_error { pos; message } -> fail "XML error at %d: %s" pos message
  | root -> of_xml root

let parse_result text = try Ok (parse text) with Error m -> Error m

(* --- export ----------------------------------------------------------- *)

let constr_to_match (c : Types.constr) : Xml_lite.t =
  let base = [ ("AttributeId", c.Types.attribute) ] in
  match (c.Types.op, c.Types.values) with
  | Grid_rsl.Ast.Neq, [ Types.Null ] ->
    Xml_lite.element ~attrs:(base @ [ ("MatchId", "present") ]) "Match" []
  | Grid_rsl.Ast.Eq, [ Types.Null ] ->
    Xml_lite.element ~attrs:(base @ [ ("MatchId", "absent") ]) "Match" []
  | op, values ->
    let attrs = base @ [ ("MatchId", op_to_match_id op) ] in
    (match values with
    | [ v ] -> Xml_lite.element ~attrs ~text:(Types.cvalue_to_plain v) "Match" []
    | values ->
      Xml_lite.element ~attrs "Match"
        (List.map
           (fun v -> Xml_lite.element ~text:(Types.cvalue_to_plain v) "Value" [])
           values))

(* Split a clause into its action constraint (for <Actions>) and the
   rest (for <Condition>). Only a single positive (action = ...)
   constraint can be represented in the target; anything else stays a
   Match on the "action" attribute. *)
let split_actions (clause : Types.clause) =
  let is_action_eq (c : Types.constr) =
    c.Types.attribute = "action" && c.Types.op = Grid_rsl.Ast.Eq
    && List.for_all (function Types.Str _ -> true | Types.Null | Types.Self -> false)
         c.Types.values
  in
  match List.partition is_action_eq clause with
  | [ actions ], rest ->
    ( List.filter_map
        (function Types.Str s -> Some s | Types.Null | Types.Self -> None)
        actions.Types.values,
      rest )
  | _ -> ([], clause)

let statement_to_rules index (st : Types.statement) : Xml_lite.t list =
  let effect = match st.Types.kind with Types.Grant -> "Permit" | Types.Requirement -> "Obligation" in
  List.mapi
    (fun clause_index clause ->
      let action_names, rest = split_actions clause in
      let subjects =
        Xml_lite.element "Subjects"
          [ Xml_lite.element ~text:(Grid_gsi.Dn.to_string st.Types.subject_pattern)
              "Subject" [] ]
      in
      let actions =
        match action_names with
        | [] -> []
        | names ->
          [ Xml_lite.element "Actions"
              (List.map (fun a -> Xml_lite.element ~text:a "Action" []) names) ]
      in
      let condition =
        match rest with
        | [] -> []
        | rest -> [ Xml_lite.element "Condition" (List.map constr_to_match rest) ]
      in
      Xml_lite.element
        ~attrs:
          [ ("RuleId", Printf.sprintf "rule-%d-%d" index clause_index);
            ("Effect", effect) ]
        "Rule"
        (Xml_lite.element "Target" ([ subjects ] @ actions) :: condition))
    st.Types.clauses

let to_xml ?(policy_id = "policy") (policy : Types.t) : Xml_lite.t =
  Xml_lite.element
    ~attrs:[ ("PolicyId", policy_id) ]
    "Policy"
    (List.concat (List.mapi statement_to_rules policy))

let to_string ?policy_id policy = Xml_lite.to_string (to_xml ?policy_id policy)
