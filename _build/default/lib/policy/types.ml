(* Policy language abstract syntax (Section 5.1 of the paper).

   A policy is a list of statements. Each statement relates a subject
   pattern (a DN prefix: "a user, or a group of users") to clauses written
   in RSL relation syntax over the job-request attributes, extended with:

     action    - start | cancel | information | signal
     jobowner  - DN of the job initiator (management requests)
     jobtag    - the job-group tag (paper's new RSL parameter)
     NULL      - the special "no value" marker
     self      - the requesting user's own identity

   Statements come in two forms, as in Figure 3:

     requirement ("&" before the subject): whenever its action-guards
       match a request from a matching subject, the remaining constraints
       must hold or the request is denied;

     grant: the request is permitted if some clause of some applicable
       grant is fully satisfied. Absent any applicable satisfied grant the
       default is deny ("unless a specific stipulation has been made, an
       action will not be allowed"). *)

module Action = struct
  type t = Start | Cancel | Information | Signal

  let to_string = function
    | Start -> "start"
    | Cancel -> "cancel"
    | Information -> "information"
    | Signal -> "signal"

  let of_string s =
    match String.lowercase_ascii s with
    | "start" -> Some Start
    | "cancel" -> Some Cancel
    | "information" -> Some Information
    | "signal" -> Some Signal
    | _ -> None

  let all = [ Start; Cancel; Information; Signal ]
  let equal = ( = )
  let pp ppf a = Fmt.string ppf (to_string a)
end

(* Constraint values extend RSL literals with the two special markers. *)
type cvalue =
  | Str of string
  | Null
  | Self

let cvalue_to_string = function
  | Str s -> if Grid_rsl.Ast.needs_quoting s then Printf.sprintf "%S" s else s
  | Null -> "NULL"
  | Self -> "self"

(* Unquoted rendering for carriers with their own escaping (XML). *)
let cvalue_to_plain = function
  | Str s -> s
  | Null -> "NULL"
  | Self -> "self"

let cvalue_equal a b =
  match (a, b) with
  | Str x, Str y -> String.equal x y
  | Null, Null | Self, Self -> true
  | (Str _ | Null | Self), _ -> false

type constr = {
  attribute : string; (* lowercase *)
  op : Grid_rsl.Ast.op;
  values : cvalue list; (* non-empty *)
}

let constr_to_string c =
  Printf.sprintf "(%s %s %s)" c.attribute
    (Grid_rsl.Ast.op_to_string c.op)
    (String.concat " " (List.map cvalue_to_string c.values))

type clause = constr list

let clause_to_string clause = "&" ^ String.concat "" (List.map constr_to_string clause)

type statement_kind =
  | Grant
  | Requirement

type statement = {
  kind : statement_kind;
  subject_pattern : Grid_gsi.Dn.t; (* matches any DN it prefixes *)
  clauses : clause list;           (* non-empty *)
}

type t = statement list

let statement_to_string st =
  let prefix = match st.kind with Requirement -> "&" | Grant -> "" in
  Printf.sprintf "%s%s:\n  %s" prefix
    (Grid_gsi.Dn.to_string st.subject_pattern)
    (String.concat "\n  " (List.map clause_to_string st.clauses))

let to_string policy = String.concat "\n" (List.map statement_to_string policy)

let pp ppf policy = Fmt.string ppf (to_string policy)

let statement_applies st ~subject = Grid_gsi.Dn.is_prefix st.subject_pattern subject

(* The request a policy evaluation point judges. For [Start], [job] carries
   the submitted RSL clause; for management actions, [jobowner] and
   [jobtag] describe the target job (taken from the job manager's record of
   it, not from the requester). *)
type request = {
  subject : Grid_gsi.Dn.t;
  action : Action.t;
  job : Grid_rsl.Ast.clause option;
  jobowner : Grid_gsi.Dn.t option;
  jobtag : string option;
}

let start_request ~subject ~job = { subject; action = Action.Start; job = Some job; jobowner = None; jobtag = None }

let management_request ~subject ~action ~jobowner ~jobtag =
  { subject; action; job = None; jobowner = Some jobowner; jobtag }

let pp_request ppf r =
  Fmt.pf ppf "request{%a %a%a}" Grid_gsi.Dn.pp r.subject Action.pp r.action
    (Fmt.option (fun ppf c -> Fmt.pf ppf " %s" (Grid_rsl.Ast.clause_to_string c)))
    r.job
