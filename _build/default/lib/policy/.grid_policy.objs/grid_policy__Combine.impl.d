lib/policy/combine.ml: Eval Fmt List Printf Types
