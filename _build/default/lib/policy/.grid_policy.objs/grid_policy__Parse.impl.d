lib/policy/parse.ml: Grid_gsi Grid_rsl Grid_util List Printf String Types
