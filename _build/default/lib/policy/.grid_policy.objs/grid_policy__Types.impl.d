lib/policy/types.ml: Fmt Grid_gsi Grid_rsl List Printf String
