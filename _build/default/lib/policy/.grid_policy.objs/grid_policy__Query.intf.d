lib/policy/query.mli: Fmt Grid_gsi Types
