lib/policy/eval.ml: Fmt Grid_gsi Grid_rsl List Printf String Types
