lib/policy/parse.mli: Types
