lib/policy/types.mli: Fmt Grid_gsi Grid_rsl
