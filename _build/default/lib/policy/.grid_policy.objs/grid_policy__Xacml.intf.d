lib/policy/xacml.mli: Types Xml_lite
