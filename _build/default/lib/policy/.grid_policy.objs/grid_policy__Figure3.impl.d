lib/policy/figure3.ml: Lazy Parse
