lib/policy/xml_lite.mli:
