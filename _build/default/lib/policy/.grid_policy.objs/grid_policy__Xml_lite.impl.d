lib/policy/xml_lite.ml: Buffer Grid_util List Printf String
