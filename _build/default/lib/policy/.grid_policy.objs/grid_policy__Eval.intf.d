lib/policy/eval.mli: Fmt Grid_gsi Types
