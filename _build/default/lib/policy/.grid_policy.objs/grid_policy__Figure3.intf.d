lib/policy/figure3.mli: Types
