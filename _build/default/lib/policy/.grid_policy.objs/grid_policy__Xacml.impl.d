lib/policy/xacml.ml: Grid_gsi Grid_rsl List Option Printf Types Xml_lite
