lib/policy/lint.mli: Types
