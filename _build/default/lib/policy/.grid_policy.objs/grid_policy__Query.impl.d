lib/policy/query.ml: Fmt Grid_gsi Grid_rsl Grid_util List Types
