lib/policy/lint.ml: Eval Float Grid_gsi Grid_rsl List Option Printf Types
