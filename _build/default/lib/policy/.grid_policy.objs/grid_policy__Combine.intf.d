lib/policy/combine.mli: Eval Fmt Types
