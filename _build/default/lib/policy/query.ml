(* Policy analysis queries.

   Administrators of a default-deny system need to answer "what did I
   actually grant?" without constructing test requests: what can this
   user do, which executables may they start, who can manage jobs
   carrying a given tag. These are syntactic analyses over the policy
   (sound for the common constraint shapes; a clause that constrains an
   attribute the analysis does not model is still reported, with its
   constraints shown). *)

type granted_clause = {
  statement_index : int;
  subject_pattern : Grid_gsi.Dn.t;
  actions : Types.Action.t list; (* all actions when unconstrained *)
  clause : Types.clause;
}

(* Actions a clause's action-constraints admit. *)
let actions_of_clause (clause : Types.clause) : Types.Action.t list =
  let constraints =
    List.filter (fun (c : Types.constr) -> c.Types.attribute = "action") clause
  in
  List.filter
    (fun action ->
      let name = Types.Action.to_string action in
      List.for_all
        (fun (c : Types.constr) ->
          let values =
            List.filter_map
              (function Types.Str s -> Some s | Types.Null | Types.Self -> None)
              c.Types.values
          in
          match c.Types.op with
          | Grid_rsl.Ast.Eq -> List.mem name values
          | Grid_rsl.Ast.Neq -> not (List.mem name values)
          | Grid_rsl.Ast.Lt | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Le | Grid_rsl.Ast.Ge -> false)
        constraints)
    Types.Action.all

(* Every grant clause applicable to a subject. *)
let grants_for (policy : Types.t) ~subject : granted_clause list =
  List.concat
    (List.mapi
       (fun statement_index (st : Types.statement) ->
         if st.Types.kind <> Types.Grant || not (Types.statement_applies st ~subject) then []
         else
           List.map
             (fun clause ->
               { statement_index;
                 subject_pattern = st.Types.subject_pattern;
                 actions = actions_of_clause clause;
                 clause })
             st.Types.clauses)
       policy)

(* Requirements that constrain a subject. *)
let requirements_for (policy : Types.t) ~subject : Types.statement list =
  List.filter
    (fun (st : Types.statement) ->
      st.Types.kind = Types.Requirement && Types.statement_applies st ~subject)
    policy

let may_perform (policy : Types.t) ~subject action =
  List.exists
    (fun g -> List.exists (Types.Action.equal action) g.actions)
    (grants_for policy ~subject)

(* Values an attribute is pinned to across the subject's start grants
   (e.g. which executables they may launch). *)
let allowed_values (policy : Types.t) ~subject ~attribute : string list =
  grants_for policy ~subject
  |> List.filter (fun g -> List.exists (Types.Action.equal Types.Action.Start) g.actions)
  |> List.concat_map (fun g ->
         List.concat_map
           (fun (c : Types.constr) ->
             if c.Types.attribute = attribute && c.Types.op = Grid_rsl.Ast.Eq then
               List.filter_map
                 (function Types.Str s -> Some s | Types.Null | Types.Self -> None)
                 c.Types.values
             else [])
           g.clause)
  |> List.sort_uniq compare

(* Subject patterns that hold a given management right over a jobtag.
   Syntactic: a clause qualifies when it admits the action and its
   jobtag constraints are compatible with the tag (no constraint means
   any tag). *)
let who_can (policy : Types.t) ~action ?jobtag () : Grid_gsi.Dn.t list =
  let tag_ok (clause : Types.clause) =
    List.for_all
      (fun (c : Types.constr) ->
        if c.Types.attribute <> "jobtag" then true
        else
          let values =
            List.filter_map
              (function Types.Str s -> Some s | Types.Null | Types.Self -> None)
              c.Types.values
          in
          match (c.Types.op, jobtag) with
          | Grid_rsl.Ast.Eq, Some tag -> List.mem tag values
          | Grid_rsl.Ast.Eq, None -> false (* requires a tag we don't have *)
          | Grid_rsl.Ast.Neq, Some tag ->
            if c.Types.values = [ Types.Null ] then true else not (List.mem tag values)
          | Grid_rsl.Ast.Neq, None -> c.Types.values <> [ Types.Null ]
          | (Grid_rsl.Ast.Lt | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Le | Grid_rsl.Ast.Ge), _ ->
            false)
      clause
  in
  List.filter_map
    (fun (st : Types.statement) ->
      if
        st.Types.kind = Types.Grant
        && List.exists
             (fun clause ->
               List.exists (Types.Action.equal action) (actions_of_clause clause)
               && tag_ok clause)
             st.Types.clauses
      then Some st.Types.subject_pattern
      else None)
    policy
  |> List.sort_uniq Grid_gsi.Dn.compare

(* Human-readable rights report. *)
let pp_rights ppf (policy, subject) =
  let grants = grants_for policy ~subject in
  let requirements = requirements_for policy ~subject in
  Fmt.pf ppf "@[<v>Rights of %a:@," Grid_gsi.Dn.pp subject;
  if grants = [] then Fmt.pf ppf "  (none: default deny)@,"
  else
    List.iter
      (fun g ->
        Fmt.pf ppf "  [stmt %d] %s: %s@," (g.statement_index + 1)
          (Grid_util.Strings.concat_map "/" Types.Action.to_string g.actions)
          (Types.clause_to_string g.clause))
      grants;
  if requirements <> [] then begin
    Fmt.pf ppf "Subject to requirements:@,";
    List.iter
      (fun (st : Types.statement) ->
        List.iter
          (fun clause -> Fmt.pf ppf "  %s@," (Types.clause_to_string clause))
          st.Types.clauses)
      requirements
  end;
  Fmt.pf ppf "@]"
