(** The paper's Figure 3 example policy, as text and parsed. *)

val organization : string
(** "/O=Grid/O=Globus/OU=mcs.anl.gov" *)

val bo_liu : string
val kate_keahey : string

val text : string
(** The policy in concrete syntax. *)

val get : unit -> Types.t
(** The parsed policy (parsed once, memoized). *)
