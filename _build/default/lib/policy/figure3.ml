(* The paper's Figure 3 policy, verbatim semantics.

   Three statements:
     1. every mcs.anl.gov user must submit start requests with a jobtag;
     2. Bo Liu may start test1 or test2 from /sandbox/test with specific
        jobtags and fewer than 4 processors;
     3. Kate Keahey may start TRANSP from /sandbox/test under jobtag NFC,
        and may cancel any job tagged NFC.

   (The published figure's third DN misses a '/' before "OU" — an obvious
   typesetting fault; we restore it so all three statements name the same
   organization, as the narrative in Section 5.1 assumes.) *)

let organization = "/O=Grid/O=Globus/OU=mcs.anl.gov"
let bo_liu = organization ^ "/CN=Bo Liu"
let kate_keahey = organization ^ "/CN=Kate Keahey"

let text =
  {|# Figure 3: Simple VO-wide policy for job management
&/O=Grid/O=Globus/OU=mcs.anl.gov: (action = start)(jobtag != NULL)

/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu:
  &(action = start)(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count < 4)
  &(action = start)(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count < 4)

/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey:
  &(action = start)(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)
  &(action = cancel)(jobtag = NFC)
|}

let policy = lazy (Parse.parse text)

let get () = Lazy.force policy
