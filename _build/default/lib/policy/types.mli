(** Policy language abstract syntax (paper Section 5.1). *)

module Action : sig
  type t = Start | Cancel | Information | Signal

  val to_string : t -> string
  val of_string : string -> t option
  val all : t list
  val equal : t -> t -> bool
  val pp : t Fmt.t
end

type cvalue =
  | Str of string
  | Null  (** the paper's [NULL]: absence of a value *)
  | Self  (** the paper's [self]: the requesting identity *)

val cvalue_to_string : cvalue -> string

(** Without concrete-syntax quoting, for carriers with their own
    escaping (the XACML front end). *)
val cvalue_to_plain : cvalue -> string
val cvalue_equal : cvalue -> cvalue -> bool

type constr = {
  attribute : string;
  op : Grid_rsl.Ast.op;
  values : cvalue list;
}

val constr_to_string : constr -> string

type clause = constr list

val clause_to_string : clause -> string

type statement_kind =
  | Grant        (** permits requests matching one of its clauses *)
  | Requirement  (** obliges matching requests to satisfy its constraints *)

type statement = {
  kind : statement_kind;
  subject_pattern : Grid_gsi.Dn.t;
  clauses : clause list;
}

type t = statement list

val statement_to_string : statement -> string
val to_string : t -> string
val pp : t Fmt.t

val statement_applies : statement -> subject:Grid_gsi.Dn.t -> bool
(** Subject-pattern prefix match. *)

(** The request judged by a policy evaluation point. *)
type request = {
  subject : Grid_gsi.Dn.t;
  action : Action.t;
  job : Grid_rsl.Ast.clause option;
  jobowner : Grid_gsi.Dn.t option;
  jobtag : string option;
}

val start_request : subject:Grid_gsi.Dn.t -> job:Grid_rsl.Ast.clause -> request

val management_request :
  subject:Grid_gsi.Dn.t ->
  action:Action.t ->
  jobowner:Grid_gsi.Dn.t ->
  jobtag:string option ->
  request

val pp_request : request Fmt.t
