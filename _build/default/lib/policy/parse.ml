(* Policy concrete-syntax parser (the Figure 3 notation).

   A policy text is a sequence of statements. A statement starts on a line
   whose content begins with a subject pattern — a DN, optionally preceded
   by '&' to mark a requirement — followed by ':'. The clauses follow the
   ':' and may continue on subsequent lines; each clause is introduced by
   '&' and consists of parenthesized RSL-style constraints:

     # all mcs.anl.gov users must tag their jobs
     &/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(jobtag != NULL)

     /O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu:
       &(action = start)(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count < 4)
       &(action = start)(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count < 4)

   For the requirement statement Figure 3 writes the clause without a
   leading '&' ("(action = start)(jobtag != NULL)"); we accept both forms.
   '#' starts a comment. *)

exception Error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* Recognize statement-header lines: "[&]/DN... :" with the colon outside
   parentheses. Returns (kind, subject, remainder-after-colon). *)
let split_header line =
  let body, kind =
    if Grid_util.Strings.starts_with ~prefix:"&/" line then
      (String.sub line 1 (String.length line - 1), Types.Requirement)
    else (line, Types.Grant)
  in
  if String.length body = 0 || body.[0] <> '/' then None
  else
    let depth = ref 0 in
    let colon = ref None in
    String.iteri
      (fun i c ->
        match c with
        | '(' -> incr depth
        | ')' -> decr depth
        | ':' -> if !depth = 0 && !colon = None then colon := Some i
        | _ -> ())
      body;
    match !colon with
    | None -> None
    | Some i ->
      let subject = Grid_util.Strings.strip (String.sub body 0 i) in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      Some (kind, subject, rest)

let cvalue_of_string s =
  if s = "NULL" then Types.Null
  else if String.lowercase_ascii s = "self" then Types.Self
  else Types.Str s

(* Clause text is RSL relation syntax; reuse the RSL lexer/parser and then
   reinterpret the special values. A clause may or may not start with '&'. *)
let parse_clause_text line text =
  let text = Grid_util.Strings.strip text in
  let text = if Grid_util.Strings.starts_with ~prefix:"&" text then text else "&" ^ text in
  match Grid_rsl.Parser.parse_result text with
  | Error m -> fail line "bad clause syntax: %s" m
  | Ok (Grid_rsl.Ast.Multi _) -> fail line "multirequests are not valid in policies"
  | Ok (Grid_rsl.Ast.Single relations) ->
    List.map
      (fun (r : Grid_rsl.Ast.relation) ->
        let values =
          List.map
            (function
              | Grid_rsl.Ast.Literal s -> cvalue_of_string s
              | Grid_rsl.Ast.Variable v ->
                fail line "variables are not valid in policies: $(%s)" v
              | Grid_rsl.Ast.Binding (n, _) ->
                fail line "bindings are not valid in policies: (%s ...)" n)
            r.values
        in
        { Types.attribute = r.attribute; op = r.op; values })
      relations

(* Split concatenated clauses "&(...)(...) &(...)" into individual clause
   texts at top-level '&' boundaries. *)
let split_clauses line text =
  let n = String.length text in
  let boundaries = ref [] in
  let depth = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '(' -> incr depth
      | ')' -> decr depth
      | '&' -> if !depth = 0 then boundaries := i :: !boundaries
      | _ -> ())
    text;
  match List.rev !boundaries with
  | [] ->
    let t = Grid_util.Strings.strip text in
    if t = "" then [] else [ t ]
  | first :: _ as starts ->
    let leading = Grid_util.Strings.strip (String.sub text 0 first) in
    if leading <> "" then fail line "unexpected text before clause: %s" leading;
    let rec cut = function
      | [] -> []
      | [ s ] -> [ String.sub text s (n - s) ]
      | s :: (s' :: _ as rest) -> String.sub text s (s' - s) :: cut rest
    in
    List.map Grid_util.Strings.strip (cut starts)

type partial = {
  kind : Types.statement_kind;
  subject : string;
  header_line : int;
  mutable clause_texts : (int * string) list; (* reverse order *)
}

let finish (p : partial) : Types.statement =
  let subject_pattern =
    try Grid_gsi.Dn.parse p.subject
    with Grid_gsi.Dn.Parse_error m -> fail p.header_line "bad subject pattern: %s" m
  in
  let clauses =
    List.rev p.clause_texts
    |> List.concat_map (fun (line, text) ->
           split_clauses line text |> List.map (fun t -> parse_clause_text line t))
  in
  if clauses = [] then fail p.header_line "statement for %s has no clauses" p.subject;
  List.iter
    (fun clause -> if clause = [] then fail p.header_line "empty clause for %s" p.subject)
    clauses;
  { Types.kind = p.kind; subject_pattern; clauses }

let parse text : Types.t =
  let lines = Grid_util.Strings.config_lines text in
  let statements = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some p ->
      statements := finish p :: !statements;
      current := None
  in
  List.iter
    (fun (lineno, line) ->
      match split_header line with
      | Some (kind, subject, rest) ->
        flush ();
        let p = { kind; subject; header_line = lineno; clause_texts = [] } in
        let rest = Grid_util.Strings.strip rest in
        if rest <> "" then p.clause_texts <- [ (lineno, rest) ];
        current := Some p
      | None -> begin
        match !current with
        | None -> fail lineno "expected a statement header, found: %s" line
        | Some p -> p.clause_texts <- (lineno, line) :: p.clause_texts
      end)
    lines;
  flush ();
  List.rev !statements

let parse_result text =
  try Ok (parse text)
  with Error { line; message } -> Error (Printf.sprintf "line %d: %s" line message)
