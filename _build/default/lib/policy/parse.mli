(** Parser for the policy concrete syntax of the paper's Figure 3. *)

exception Error of { line : int; message : string }

val parse : string -> Types.t
(** Raises {!Error} with a 1-based line number. *)

val parse_result : string -> (Types.t, string) result
