(** XACML-style XML front end (the Section 6.3 replacement syntax).

    Parses a simplified XACML-shaped document into the same {!Types.t}
    the RSL-based concrete syntax produces, and exports policies back to
    XML. Evaluation, combination and every PEP are syntax-agnostic. *)

exception Error of string

val parse : string -> Types.t
(** Raises {!Error} on malformed XML or unsupported constructs. *)

val parse_result : string -> (Types.t, string) result

val of_xml : Xml_lite.t -> Types.t

val to_xml : ?policy_id:string -> Types.t -> Xml_lite.t

val to_string : ?policy_id:string -> Types.t -> string
(** Round-trips: [parse (to_string p)] is decision-equivalent to [p]
    (verified by property test). *)
