(* RSL recursive-descent parser.

   Grammar (after lexing):

     spec      ::= '&' relation+            conjunction request
                 | '+' ('(' spec ')')+      multirequest of conjunctions
                 | relation+                bare relation list (implicit '&')
     relation  ::= '(' ATTR op value+ ')'
     value     ::= ATOM | QUOTED | VAR

   A multirequest's sub-specs must themselves be conjunctions (GT2 does not
   nest multirequests). *)

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type stream = { mutable tokens : Lexer.token list }

let peek s = match s.tokens with [] -> None | t :: _ -> Some t

let advance s =
  match s.tokens with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
    s.tokens <- rest;
    t

let expect s tok =
  let got = advance s in
  if got <> tok then
    fail "expected '%s' but found '%s'" (Lexer.token_to_string tok) (Lexer.token_to_string got)

(* A parenthesized (NAME value) pair in value position: GT2's
   rsl_substitution binding syntax. *)
let parse_binding s =
  expect s Lexer.Lparen;
  let name =
    match advance s with
    | Lexer.Atom a -> a
    | t -> fail "expected a binding name, found '%s'" (Lexer.token_to_string t)
  in
  let value =
    match advance s with
    | Lexer.Atom a -> a
    | Lexer.Quoted q -> q
    | t -> fail "expected a binding value, found '%s'" (Lexer.token_to_string t)
  in
  expect s Lexer.Rparen;
  Ast.Binding (name, value)

let parse_values s =
  let rec go acc =
    match peek s with
    | Some (Lexer.Atom a) ->
      ignore (advance s);
      go (Ast.Literal a :: acc)
    | Some (Lexer.Quoted q) ->
      ignore (advance s);
      go (Ast.Literal q :: acc)
    | Some (Lexer.Var v) ->
      ignore (advance s);
      go (Ast.Variable v :: acc)
    | Some Lexer.Lparen ->
      (* Inside a relation's value list a '(' can only open a
         (name value) binding pair. *)
      go (parse_binding s :: acc)
    | _ -> List.rev acc
  in
  let values = go [] in
  if values = [] then fail "relation has no value";
  values

let parse_relation s =
  expect s Lexer.Lparen;
  let attribute =
    match advance s with
    | Lexer.Atom a -> Ast.normalize_attribute a
    | t -> fail "expected attribute name, found '%s'" (Lexer.token_to_string t)
  in
  let op =
    match advance s with
    | Lexer.Op o -> o
    | t -> fail "expected relational operator, found '%s'" (Lexer.token_to_string t)
  in
  let values = parse_values s in
  expect s Lexer.Rparen;
  { Ast.attribute; op; values }

let parse_relations s =
  let rec go acc =
    match peek s with
    | Some Lexer.Lparen -> go (parse_relation s :: acc)
    | _ -> List.rev acc
  in
  let relations = go [] in
  if relations = [] then fail "expected at least one relation";
  relations

let parse_clause s =
  (match peek s with
  | Some Lexer.Amp -> ignore (advance s)
  | _ -> ());
  parse_relations s

let parse_spec s =
  match peek s with
  | Some Lexer.Plus ->
    ignore (advance s);
    let rec subrequests acc =
      match peek s with
      | Some Lexer.Lparen ->
        ignore (advance s);
        let clause = parse_clause s in
        expect s Lexer.Rparen;
        subrequests (clause :: acc)
      | _ -> List.rev acc
    in
    let clauses = subrequests [] in
    if clauses = [] then fail "empty multirequest";
    Ast.Multi clauses
  | _ -> Ast.Single (parse_clause s)

let parse input =
  let tokens =
    try Lexer.tokenize input
    with Lexer.Error { pos; message } -> fail "lexical error at %d: %s" pos message
  in
  let s = { tokens } in
  let spec = parse_spec s in
  (match peek s with
  | None -> ()
  | Some t -> fail "trailing input starting at '%s'" (Lexer.token_to_string t));
  spec

let parse_clause_exn input =
  match parse input with
  | Ast.Single clause -> clause
  | Ast.Multi _ -> fail "expected a single request, found a multirequest"

let parse_result input = try Ok (parse input) with Error m -> Error m
