(** Typed job description parsed from an RSL clause.

    Covers the standard GT2 attributes ([executable], [directory],
    [arguments], [count], [maxwalltime], [maxmemory], [queue], [stdout],
    [stderr]) and the paper's [jobtag] extension. *)

type t = {
  clause : Ast.clause;
  executable : string;
  directory : string option;
  arguments : string list;
  count : int;
  max_wall_time : float option;  (** minutes *)
  max_memory : int option;       (** megabytes *)
  queue : string option;
  jobtag : string option;
  stdout : string option;
  stderr : string option;
  environment : (string * string) list;
}

type error =
  | Missing_attribute of string
  | Not_an_integer of { attribute : string; value : string }
  | Not_a_number of { attribute : string; value : string }
  | Unsupported_multirequest
  | Unbound_variable of string
  | Bad_value of { attribute : string; message : string }

val error_to_string : error -> string
val pp_error : error Fmt.t

val of_clause : ?environment:(string * string) list -> Ast.clause -> (t, error) result
(** Parse a clause, substituting [$(VAR)] references from [environment]. *)

val of_rsl : ?environment:(string * string) list -> Ast.t -> (t, error) result
(** Rejects multirequests with {!Unsupported_multirequest}. *)

val of_string : ?environment:(string * string) list -> string -> (t, error) result

val clause : t -> Ast.clause
val to_string : t -> string
val pp : t Fmt.t
