(* Typed job-description view over an RSL clause.

   The Job Manager parses the user's RSL into this structure before talking
   to the local resource manager. Standard GT2 attributes plus the paper's
   [jobtag] extension (Section 5.2, "RSL parameters"). *)

type t = {
  clause : Ast.clause;
  executable : string;
  directory : string option;
  arguments : string list;
  count : int;
  max_wall_time : float option; (* minutes, as in GT2 *)
  max_memory : int option;      (* megabytes *)
  queue : string option;
  jobtag : string option;
  stdout : string option;
  stderr : string option;
  environment : (string * string) list;
}

type error =
  | Missing_attribute of string
  | Not_an_integer of { attribute : string; value : string }
  | Not_a_number of { attribute : string; value : string }
  | Unsupported_multirequest
  | Unbound_variable of string
  | Bad_value of { attribute : string; message : string }

let error_to_string = function
  | Missing_attribute a -> "missing required attribute: " ^ a
  | Not_an_integer { attribute; value } ->
    Printf.sprintf "attribute %s: not an integer: %s" attribute value
  | Not_a_number { attribute; value } ->
    Printf.sprintf "attribute %s: not a number: %s" attribute value
  | Unsupported_multirequest -> "multirequests are not supported by this job manager"
  | Unbound_variable v -> "unbound RSL variable: $(" ^ v ^ ")"
  | Bad_value { attribute; message } -> Printf.sprintf "attribute %s: %s" attribute message

let pp_error ppf e = Fmt.string ppf (error_to_string e)

let substitute_value env = function
  | Ast.Literal s -> Ok s
  | Ast.Variable v -> begin
    match List.assoc_opt v env with
    | Some s -> Ok s
    | None -> Error (Unbound_variable v)
  end
  | Ast.Binding (name, _) ->
    Error
      (Bad_value
         { attribute = "<value>";
           message =
             Printf.sprintf "binding (%s ...) is only valid under rsl_substitution" name })

let rec substitute_values env = function
  | [] -> Ok []
  | v :: rest -> begin
    match substitute_value env v with
    | Error _ as e -> e
    | Ok s -> begin
      match substitute_values env rest with
      | Error _ as e -> e
      | Ok ss -> Ok (s :: ss)
    end
  end

(* First relation with this attribute and operator [=]; RSL treats repeated
   attributes as an error in GT2, we take the first binding. *)
let find_eq clause attribute =
  List.find_opt
    (fun (r : Ast.relation) -> r.attribute = attribute && r.op = Ast.Eq)
    clause

let string_values env clause attribute =
  match find_eq clause attribute with
  | None -> Ok None
  | Some r -> begin
    match substitute_values env r.values with
    | Error _ as e -> e
    | Ok ss -> Ok (Some ss)
  end

let single_string env clause attribute =
  match string_values env clause attribute with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some [ s ]) -> Ok (Some s)
  | Ok (Some _) ->
    Error (Bad_value { attribute; message = "expected a single value" })

let int_attr env clause attribute ~default =
  match single_string env clause attribute with
  | Error _ as e -> e
  | Ok None -> Ok default
  | Ok (Some s) -> begin
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Not_an_integer { attribute; value = s })
  end

let float_attr env clause attribute =
  match single_string env clause attribute with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some s) -> begin
    match float_of_string_opt s with
    | Some f -> Ok (Some f)
    | None -> Error (Not_a_number { attribute; value = s })
  end

let opt_int_attr env clause attribute =
  match single_string env clause attribute with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some s) -> begin
    match int_of_string_opt s with
    | Some n -> Ok (Some n)
    | None -> Error (Not_an_integer { attribute; value = s })
  end

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

(* GT2's rsl_substitution attribute: its (NAME value) binding pairs
   extend the substitution environment for the rest of the request. *)
let substitution_bindings (clause : Ast.clause) =
  List.concat_map
    (fun (r : Ast.relation) ->
      if r.attribute <> "rsl_substitution" || r.op <> Ast.Eq then []
      else
        List.filter_map
          (function
            | Ast.Binding (name, value) -> Some (name, value)
            | Ast.Literal _ | Ast.Variable _ -> None)
          r.values)
    clause

let of_clause ?(environment = []) (clause : Ast.clause) =
  let environment = substitution_bindings clause @ environment in
  let* executable =
    match single_string environment clause "executable" with
    | Ok (Some e) -> Ok e
    | Ok None -> Error (Missing_attribute "executable")
    | Error e -> Error e
  in
  let* directory = single_string environment clause "directory" in
  let* arguments =
    match string_values environment clause "arguments" with
    | Ok None -> Ok []
    | Ok (Some vs) -> Ok vs
    | Error e -> Error e
  in
  let* count = int_attr environment clause "count" ~default:1 in
  let* () =
    if count <= 0 then
      Error (Bad_value { attribute = "count"; message = "must be positive" })
    else Ok ()
  in
  let* max_wall_time = float_attr environment clause "maxwalltime" in
  let* max_memory = opt_int_attr environment clause "maxmemory" in
  let* queue = single_string environment clause "queue" in
  let* jobtag = single_string environment clause "jobtag" in
  let* stdout = single_string environment clause "stdout" in
  let* stderr = single_string environment clause "stderr" in
  Ok
    { clause; executable; directory; arguments; count; max_wall_time; max_memory; queue;
      jobtag; stdout; stderr; environment }

let of_rsl ?environment (spec : Ast.t) =
  match spec with
  | Ast.Single clause -> of_clause ?environment clause
  | Ast.Multi _ -> Error Unsupported_multirequest

let of_string ?environment input =
  match Parser.parse_result input with
  | Error m -> Error (Bad_value { attribute = "<rsl>"; message = m })
  | Ok spec -> of_rsl ?environment spec

let clause t = t.clause
let to_string t = Ast.clause_to_string t.clause

let pp ppf t =
  Fmt.pf ppf "job{exe=%s; count=%d%a}" t.executable t.count
    (Fmt.option (fun ppf tag -> Fmt.pf ppf "; jobtag=%s" tag))
    t.jobtag
