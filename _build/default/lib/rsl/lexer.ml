(* RSL lexer.

   Token stream over the concrete syntax. Unquoted atoms stop at
   metacharacters; quoted strings use double quotes with '""' as the
   escaped quote (GT2 RSL convention); variables are $(NAME). *)

type token =
  | Amp
  | Plus
  | Lparen
  | Rparen
  | Op of Ast.op
  | Atom of string
  | Quoted of string
  | Var of string

exception Error of { pos : int; message : string }

let fail pos message = raise (Error { pos; message })

let token_to_string = function
  | Amp -> "&"
  | Plus -> "+"
  | Lparen -> "("
  | Rparen -> ")"
  | Op o -> Ast.op_to_string o
  | Atom s -> s
  | Quoted s -> Printf.sprintf "%S" s
  | Var v -> Printf.sprintf "$(%s)" v

let is_atom_char c =
  not
    (Grid_util.Strings.is_space c || c = '(' || c = ')' || c = '&' || c = '+' || c = '='
    || c = '!' || c = '<' || c = '>' || c = '"' || c = '$')

let tokenize (input : string) : token list =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let c = input.[i] in
      if Grid_util.Strings.is_space c then go (i + 1) acc
      else
        match c with
        | '&' -> go (i + 1) (Amp :: acc)
        | '+' -> go (i + 1) (Plus :: acc)
        | '(' -> go (i + 1) (Lparen :: acc)
        | ')' -> go (i + 1) (Rparen :: acc)
        | '=' -> go (i + 1) (Op Ast.Eq :: acc)
        | '!' ->
          if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (Op Ast.Neq :: acc)
          else fail i "'!' must be followed by '='"
        | '<' ->
          if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (Op Ast.Le :: acc)
          else go (i + 1) (Op Ast.Lt :: acc)
        | '>' ->
          if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (Op Ast.Ge :: acc)
          else go (i + 1) (Op Ast.Gt :: acc)
        | '"' ->
          let buf = Buffer.create 16 in
          let rec quoted j =
            if j >= n then fail i "unterminated quoted string"
            else if input.[j] = '"' then
              if j + 1 < n && input.[j + 1] = '"' then begin
                Buffer.add_char buf '"';
                quoted (j + 2)
              end
              else j + 1
            else begin
              Buffer.add_char buf input.[j];
              quoted (j + 1)
            end
          in
          let next = quoted (i + 1) in
          go next (Quoted (Buffer.contents buf) :: acc)
        | '$' ->
          if i + 1 < n && input.[i + 1] = '(' then begin
            match String.index_from_opt input (i + 2) ')' with
            | None -> fail i "unterminated variable reference"
            | Some close ->
              let name = String.sub input (i + 2) (close - i - 2) in
              if name = "" then fail i "empty variable reference";
              go (close + 1) (Var name :: acc)
          end
          else fail i "'$' must be followed by '('"
        | _ ->
          let j = ref i in
          while !j < n && is_atom_char input.[!j] do incr j done;
          go !j (Atom (String.sub input i (!j - i)) :: acc)
  in
  go 0 []
