(** RSL lexer. *)

type token =
  | Amp
  | Plus
  | Lparen
  | Rparen
  | Op of Ast.op
  | Atom of string
  | Quoted of string
  | Var of string

exception Error of { pos : int; message : string }

val token_to_string : token -> string

val tokenize : string -> token list
(** Raises {!Error} with the byte position of a lexical fault. *)
