(** RSL parser. *)

exception Error of string

val parse : string -> Ast.t
(** Parse a full RSL specification. Raises {!Error}. *)

val parse_clause_exn : string -> Ast.clause
(** Parse a specification that must be a single conjunction. *)

val parse_result : string -> (Ast.t, string) result
