(* RSL abstract syntax.

   GT2's Resource Specification Language describes a job request as a
   conjunction of attribute relations:

     &(executable=/sandbox/test/test1)(count=4)(arguments="-v" "run")

   Attributes are case-insensitive (normalized to lowercase here). A
   relation may carry several values (a sequence). Values are literal
   strings or RSL substitution variables [$(NAME)]. The paper's policy
   language reuses this relation syntax, adding the comparison operators
   beyond [=] real GT2 RSL already allowed for resource constraints. *)

type op = Eq | Neq | Lt | Gt | Le | Ge

type value =
  | Literal of string
  | Variable of string
  | Binding of string * string
    (* a parenthesized (NAME value) pair, as in GT2's
       (rsl_substitution = (HOME /home/kate) (TAG NFC)) *)

type relation = {
  attribute : string; (* lowercase *)
  op : op;
  values : value list; (* at least one *)
}

(* A conjunction of relations: one job request. *)
type clause = relation list

type t =
  | Single of clause
  | Multi of clause list (* the "+" multirequest form *)

let op_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

let op_of_string = function
  | "=" -> Some Eq
  | "!=" -> Some Neq
  | "<" -> Some Lt
  | ">" -> Some Gt
  | "<=" -> Some Le
  | ">=" -> Some Ge
  | _ -> None

let normalize_attribute a = String.lowercase_ascii a

let relation ?(op = Eq) attribute values =
  if values = [] then invalid_arg "Ast.relation: a relation needs at least one value";
  { attribute = normalize_attribute attribute; op; values }

let literal_relation ?(op = Eq) attribute strings =
  relation ~op attribute (List.map (fun s -> Literal s) strings)

(* A value needs quoting when it contains RSL metacharacters. *)
let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         Grid_util.Strings.is_space c
         || c = '(' || c = ')' || c = '&' || c = '+' || c = '=' || c = '!' || c = '<'
         || c = '>' || c = '"' || c = '$')
       s

let value_to_string = function
  | Literal s -> if needs_quoting s then Printf.sprintf "%S" s else s
  | Variable v -> Printf.sprintf "$(%s)" v
  | Binding (name, value) ->
    Printf.sprintf "(%s %s)" name
      (if needs_quoting value then Printf.sprintf "%S" value else value)

let relation_to_string r =
  Printf.sprintf "(%s %s %s)" r.attribute (op_to_string r.op)
    (String.concat " " (List.map value_to_string r.values))

let clause_to_string c = "&" ^ String.concat "" (List.map relation_to_string c)

let to_string = function
  | Single c -> clause_to_string c
  | Multi cs ->
    "+" ^ String.concat "" (List.map (fun c -> "(" ^ clause_to_string c ^ ")") cs)

let pp ppf t = Fmt.string ppf (to_string t)
let pp_clause ppf c = Fmt.string ppf (clause_to_string c)

let value_equal a b =
  match (a, b) with
  | Literal x, Literal y -> String.equal x y
  | Variable x, Variable y -> String.equal x y
  | Binding (n, v), Binding (n', v') -> String.equal n n' && String.equal v v'
  | (Literal _ | Variable _ | Binding _), _ -> false

let relation_equal a b =
  String.equal a.attribute b.attribute && a.op = b.op
  && List.length a.values = List.length b.values
  && List.for_all2 value_equal a.values b.values

let clause_equal a b =
  List.length a = List.length b && List.for_all2 relation_equal a b

let equal a b =
  match (a, b) with
  | Single x, Single y -> clause_equal x y
  | Multi xs, Multi ys ->
    List.length xs = List.length ys && List.for_all2 clause_equal xs ys
  | Single _, Multi _ | Multi _, Single _ -> false
