lib/rsl/ast.ml: Fmt Grid_util List Printf String
