lib/rsl/lexer.mli: Ast
