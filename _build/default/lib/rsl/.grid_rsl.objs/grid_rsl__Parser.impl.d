lib/rsl/parser.ml: Ast Lexer List Printf
