lib/rsl/job.ml: Ast Fmt List Parser Printf
