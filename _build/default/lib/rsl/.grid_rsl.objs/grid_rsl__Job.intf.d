lib/rsl/job.mli: Ast Fmt
