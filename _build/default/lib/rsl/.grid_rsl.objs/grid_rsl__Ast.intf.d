lib/rsl/ast.mli: Fmt
