lib/rsl/parser.mli: Ast
