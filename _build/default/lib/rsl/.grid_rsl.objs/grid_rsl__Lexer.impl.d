lib/rsl/lexer.ml: Ast Buffer Grid_util List Printf String
