(** RSL abstract syntax: conjunctions of attribute relations. *)

type op = Eq | Neq | Lt | Gt | Le | Ge

type value =
  | Literal of string
  | Variable of string  (** an RSL substitution [$(NAME)] *)
  | Binding of string * string
      (** a parenthesized [(NAME value)] pair, used by
          [rsl_substitution] *)

type relation = {
  attribute : string;  (** normalized to lowercase *)
  op : op;
  values : value list; (** non-empty *)
}

type clause = relation list
(** A conjunction of relations: one job request. *)

type t =
  | Single of clause
  | Multi of clause list  (** the ["+"] multirequest form *)

val op_to_string : op -> string
val op_of_string : string -> op option

val normalize_attribute : string -> string

val relation : ?op:op -> string -> value list -> relation
(** Raises [Invalid_argument] on an empty value list. *)

val literal_relation : ?op:op -> string -> string list -> relation

val needs_quoting : string -> bool
(** True when a literal must be double-quoted to survive re-parsing. *)

val value_to_string : value -> string
val relation_to_string : relation -> string
val clause_to_string : clause -> string
val to_string : t -> string
val pp : t Fmt.t
val pp_clause : clause Fmt.t

val value_equal : value -> value -> bool
val relation_equal : relation -> relation -> bool
val clause_equal : clause -> clause -> bool
val equal : t -> t -> bool
