lib/core/workload.mli: Fmt Grid_gram Grid_gsi Grid_sim
