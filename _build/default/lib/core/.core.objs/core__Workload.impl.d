lib/core/workload.ml: Fmt Grid_gram Grid_gsi Grid_sim Grid_util List
