(** Accounting reports aggregated from the audit trail. *)

type subject_summary = {
  subject : Grid_gsi.Dn.t;
  authentications : int;
  authn_failures : int;
  authorizations : int;
  authz_denials : int;
  submissions : int;
  submission_failures : int;
  management_actions : int;
}

val by_subject : Audit.t -> subject_summary list
(** One summary per subject, sorted by DN. *)

val denial_reasons : Audit.t -> (string * int) list
(** Failure messages with frequencies, most frequent first. *)

val kind_counts : Audit.t -> (Audit.kind * int) list

val pp_subject_summary : subject_summary Fmt.t
val pp : Audit.t Fmt.t
