lib/audit/reports.ml: Audit Fmt Grid_gsi Hashtbl List Option
