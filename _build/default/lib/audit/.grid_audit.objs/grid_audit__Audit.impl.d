lib/audit/audit.ml: Fmt Grid_gsi Grid_sim List Option
