lib/audit/audit.mli: Fmt Grid_gsi Grid_sim
