lib/audit/reports.mli: Audit Fmt Grid_gsi
