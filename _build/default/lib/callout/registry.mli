(** In-process stand-in for dynamically loaded callout libraries. *)

type t

val create : unit -> t

val register : t -> library:string -> symbol:string -> Callout.t -> unit
(** Make [symbol] of [library] resolvable (the moral equivalent of
    installing a .so). *)

val lookup : t -> library:string -> symbol:string -> (Callout.t, Callout.error) result
(** Fails with [Bad_configuration] on unknown library or symbol. *)

val libraries : t -> string list
