lib/callout/callout.mli: Fmt Grid_gsi Grid_policy Grid_rsl
