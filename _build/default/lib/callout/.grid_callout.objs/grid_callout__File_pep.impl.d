lib/callout/file_pep.ml: Callout Grid_policy List Option Printf
