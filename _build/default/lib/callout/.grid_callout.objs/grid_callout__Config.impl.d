lib/callout/config.ml: Callout Grid_util List Printf Registry
