lib/callout/registry.ml: Callout Hashtbl Printf
