lib/callout/callout.ml: Fmt Grid_gsi Grid_policy Grid_rsl
