lib/callout/config.mli: Callout Registry
