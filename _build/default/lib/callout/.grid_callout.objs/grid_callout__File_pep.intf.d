lib/callout/file_pep.mli: Callout Grid_policy
