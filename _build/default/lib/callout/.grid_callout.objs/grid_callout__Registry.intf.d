lib/callout/registry.mli: Callout
