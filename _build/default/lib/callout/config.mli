(** Callout configuration file: binds abstract callout types to
    library/symbol pairs, resolved at runtime against a {!Registry}. *)

type binding = {
  callout_type : string;
  library : string;
  symbol : string;
}

type t

exception Parse_error of { line : int; message : string }

val load : string -> t
(** Parse configuration text ([<type> <library> <symbol>] lines, [#]
    comments). Raises {!Parse_error}. *)

val load_result : string -> (t, string) result

val bindings : t -> binding list
val find : t -> string -> binding option

val resolve : t -> Registry.t -> string -> (Callout.t, Callout.error) result
(** Locate and "load" the callout for an abstract type; fails closed with
    [Bad_configuration] when the type is unconfigured or the
    library/symbol cannot be resolved. *)

val gram_authz_type : string
(** The abstract type name GRAM's job manager resolves:
    ["globus_gram_jobmanager_authz"]. *)

val to_text : t -> string
