(* Callout configuration file.

   Mirrors the paper's global configuration file: one line per callout
   point, naming the abstract callout type, the library implementing it and
   the symbol within the library:

     # type             library                symbol
     globus_gram_jobmanager_authz  libauthz_file.so    authz_file_callout

   [load] parses the text; [resolve] binds a configured type against a
   registry, producing the callable callout or a Bad_configuration error —
   exactly the failure a real deployment hits when the .so is missing. *)

type binding = {
  callout_type : string;
  library : string;
  symbol : string;
}

type t = { bindings : binding list }

exception Parse_error of { line : int; message : string }

let load text =
  let bindings =
    List.map
      (fun (lineno, line) ->
        match Grid_util.Strings.split_whitespace line with
        | [ callout_type; library; symbol ] -> { callout_type; library; symbol }
        | _ ->
          raise
            (Parse_error
               { line = lineno; message = "expected: <type> <library> <symbol>" }))
      (Grid_util.Strings.config_lines text)
  in
  { bindings }

let load_result text =
  try Ok (load text)
  with Parse_error { line; message } -> Error (Printf.sprintf "line %d: %s" line message)

let bindings t = t.bindings

let find t callout_type =
  List.find_opt (fun b -> b.callout_type = callout_type) t.bindings

let resolve t registry callout_type =
  match find t callout_type with
  | None ->
    Error
      (Callout.Bad_configuration
         (Printf.sprintf "no callout configured for type %S" callout_type))
  | Some { library; symbol; _ } -> Registry.lookup registry ~library ~symbol

(* The abstract callout type GRAM's job manager uses, as a constant so all
   components agree on the name. *)
let gram_authz_type = "globus_gram_jobmanager_authz"

let to_text t =
  Grid_util.Strings.concat_map "\n"
    (fun b -> Printf.sprintf "%s %s %s" b.callout_type b.library b.symbol)
    t.bindings
