(* Runtime-configurable callout loading.

   The paper configures callouts through a file naming, per abstract
   callout type, the dynamic library implementing it and the symbol inside
   that library, loaded with GNU Libtool's dlopen. We model a dynamic
   library as a named bag of symbols registered in-process: the
   registration seam, name resolution, and the misconfiguration failure
   modes (unknown library, unknown symbol, unconfigured type) are
   preserved exactly. *)

type symbol_table = (string, Callout.t) Hashtbl.t

type t = { libraries : (string, symbol_table) Hashtbl.t }

let create () = { libraries = Hashtbl.create 8 }

let register t ~library ~symbol callout =
  let table =
    match Hashtbl.find_opt t.libraries library with
    | Some table -> table
    | None ->
      let table = Hashtbl.create 4 in
      Hashtbl.replace t.libraries library table;
      table
  in
  Hashtbl.replace table symbol callout

let lookup t ~library ~symbol =
  match Hashtbl.find_opt t.libraries library with
  | None -> Error (Callout.Bad_configuration (Printf.sprintf "cannot load library %S" library))
  | Some table -> begin
    match Hashtbl.find_opt table symbol with
    | None ->
      Error
        (Callout.Bad_configuration
           (Printf.sprintf "library %S defines no symbol %S" library symbol))
    | Some callout -> Ok callout
  end

let libraries t = Hashtbl.fold (fun name _ acc -> name :: acc) t.libraries []
