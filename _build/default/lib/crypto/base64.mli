(** Base64 (RFC 4648, padded) used when wire-encoding credentials. *)

val encode : string -> string

val decode : string -> string
(** Inverse of {!encode}. Raises [Invalid_argument] on malformed input. *)
