(** SHA-256 message digest (FIPS 180-4), implemented from scratch.

    Used for certificate fingerprints and as the hash underlying
    {!Hmac.sha256}. Verified against the FIPS test vectors in the test
    suite. *)

type t = string
(** A digest: exactly 32 raw bytes. *)

val digest : string -> t

val to_hex : t -> string

val digest_hex : string -> string
(** [digest_hex msg = to_hex (digest msg)]. *)
