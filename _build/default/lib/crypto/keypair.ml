(* Simulated asymmetric keypairs.

   Substitution (see DESIGN.md §4): the paper's GSI uses RSA/X.509. Offline
   we model a keypair as a secret signing key plus a public key identifier
   derived from it; verification requires the verifier to resolve the public
   key identifier to the secret through a trusted keystore — standing in for
   "the verifier trusts the CA's public key". The *shape* of the API (sign
   with private key, verify against public key) matches an asymmetric
   scheme, so the GSI code above it is structured exactly as it would be
   over RSA. *)

type public = { key_id : string }
type secret = { secret : string; public : public }

type t = { sk : secret; pk : public }

let generate ~seed_material =
  let secret = Sha256.digest ("keypair-secret:" ^ seed_material) in
  let public = { key_id = Sha256.digest_hex ("keypair-public:" ^ secret) } in
  { sk = { secret; public }; pk = public }

let public t = t.pk
let secret t = t.sk

let sign (sk : secret) msg = Hmac.sha256_hex ~key:sk.secret msg

(* The keystore: public-key-id -> secret. Verification looks the signer up
   here, modelling possession of the signer's trusted public key. *)
let keystore : (string, string) Hashtbl.t = Hashtbl.create 64

let register t = Hashtbl.replace keystore t.pk.key_id t.sk.secret

let verify (pk : public) ~signature msg =
  match Hashtbl.find_opt keystore pk.key_id with
  | None -> false
  | Some secret -> String.equal signature (Hmac.sha256_hex ~key:secret msg)

let reset_keystore () = Hashtbl.reset keystore

let pp_public ppf (pk : public) =
  Fmt.pf ppf "pub:%s" (String.sub pk.key_id 0 (min 12 (String.length pk.key_id)))

let public_equal (a : public) (b : public) = String.equal a.key_id b.key_id
