lib/crypto/base64.ml: Buffer Char String
