lib/crypto/base64.mli:
