lib/crypto/hex.mli:
