lib/crypto/hmac.mli:
