lib/crypto/keypair.ml: Fmt Hashtbl Hmac Sha256 String
