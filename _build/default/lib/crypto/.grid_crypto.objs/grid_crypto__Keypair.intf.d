lib/crypto/keypair.mli: Fmt
