(* HMAC-SHA-256 (RFC 2104). *)

let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  key ^ String.make (block_size - String.length key) '\000'

let sha256 ~key msg =
  let key = normalize_key key in
  let xor_pad byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) key in
  let ipad = xor_pad 0x36 and opad = xor_pad 0x5c in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let sha256_hex ~key msg = Hex.encode (sha256 ~key msg)

(* Constant-time comparison; MACs must not be compared with [=] lest a
   timing side channel leak prefix matches. The simulator has no real
   adversary, but the code path should model the production discipline. *)
let verify ~key ~mac msg =
  let expected = sha256 ~key msg in
  String.length mac = String.length expected
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code expected.[i])) mac;
  !diff = 0
