(* Base64 (RFC 4648, with padding) for wire-encoding credentials. *)

let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let buf = Buffer.create (((n + 2) / 3) * 4) in
  let byte i = Char.code s.[i] in
  let rec go i =
    if i + 3 <= n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) lor byte (i + 2) in
      Buffer.add_char buf alphabet.[(b lsr 18) land 63];
      Buffer.add_char buf alphabet.[(b lsr 12) land 63];
      Buffer.add_char buf alphabet.[(b lsr 6) land 63];
      Buffer.add_char buf alphabet.[b land 63];
      go (i + 3)
    end
    else if i + 2 = n then begin
      let b = (byte i lsl 16) lor (byte (i + 1) lsl 8) in
      Buffer.add_char buf alphabet.[(b lsr 18) land 63];
      Buffer.add_char buf alphabet.[(b lsr 12) land 63];
      Buffer.add_char buf alphabet.[(b lsr 6) land 63];
      Buffer.add_char buf '='
    end
    else if i + 1 = n then begin
      let b = byte i lsl 16 in
      Buffer.add_char buf alphabet.[(b lsr 18) land 63];
      Buffer.add_char buf alphabet.[(b lsr 12) land 63];
      Buffer.add_string buf "=="
    end
  in
  go 0;
  Buffer.contents buf

let index c =
  match c with
  | 'A' .. 'Z' -> Char.code c - Char.code 'A'
  | 'a' .. 'z' -> Char.code c - Char.code 'a' + 26
  | '0' .. '9' -> Char.code c - Char.code '0' + 52
  | '+' -> 62
  | '/' -> 63
  | _ -> invalid_arg "Base64.decode: bad character"

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then invalid_arg "Base64.decode: length not a multiple of 4";
  if n = 0 then ""
  else begin
    let pad =
      if s.[n - 2] = '=' then 2
      else if s.[n - 1] = '=' then 1
      else 0
    in
    let out = Buffer.create ((n / 4) * 3) in
    for q = 0 to (n / 4) - 1 do
      let i = q * 4 in
      let c0 = index s.[i]
      and c1 = index s.[i + 1]
      and c2 = if s.[i + 2] = '=' then 0 else index s.[i + 2]
      and c3 = if s.[i + 3] = '=' then 0 else index s.[i + 3] in
      let b = (c0 lsl 18) lor (c1 lsl 12) lor (c2 lsl 6) lor c3 in
      Buffer.add_char out (Char.chr ((b lsr 16) land 0xFF));
      if not (q = (n / 4) - 1 && pad = 2) then
        Buffer.add_char out (Char.chr ((b lsr 8) land 0xFF));
      if not (q = (n / 4) - 1 && pad >= 1) then
        Buffer.add_char out (Char.chr (b land 0xFF))
    done;
    Buffer.contents out
  end
