(** HMAC-SHA-256 (RFC 2104): the signature primitive of the simulated PKI. *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte MAC of [msg] under [key]. *)

val sha256_hex : key:string -> string -> string

val verify : key:string -> mac:string -> string -> bool
(** Constant-time MAC verification. *)
