(** Simulated asymmetric keypairs (see DESIGN.md §4 for the substitution).

    API shape matches an asymmetric signature scheme: the holder of the
    {!secret} signs; anyone holding the {!public} key verifies. Under the
    hood verification resolves the public key through a process-global
    trusted keystore (standing in for CA public-key distribution), so a
    signature by an {e unregistered} key never verifies. *)

type public
(** Public key: safe to embed in certificates. *)

type secret
(** Secret signing key. *)

type t

val generate : seed_material:string -> t
(** Deterministically derive a keypair from seed material (e.g. a subject
    name plus a nonce). Deterministic so simulations are reproducible. *)

val public : t -> public
val secret : t -> secret

val sign : secret -> string -> string
(** Hex-encoded signature of a message. *)

val register : t -> unit
(** Publish the keypair to the trusted keystore, enabling verification of
    its signatures. A CA does this for itself at creation. *)

val verify : public -> signature:string -> string -> bool
(** [verify pk ~signature msg] checks [signature] over [msg] against [pk].
    Returns [false] when [pk] is unknown to the keystore. *)

val reset_keystore : unit -> unit
(** Clear the trusted keystore (test setup). *)

val pp_public : public Fmt.t
val public_equal : public -> public -> bool
