(** Hexadecimal encoding/decoding of raw byte strings. *)

val encode : string -> string
(** Lowercase hex; output is twice the input length. *)

val decode : string -> string
(** Inverse of {!encode}; accepts either case. Raises [Invalid_argument] on
    malformed input. *)
