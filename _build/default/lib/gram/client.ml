(* The GRAM client.

   Submits jobs and issues management requests on behalf of a grid
   identity. Section 5.2's client-side extension is visible here:
   management requests carry the requester's own identity, which may
   differ from the job originator's — the client "recognizes the identity
   of the job originator" via the job status it can query.

   The [*_sync] helpers drive the simulation engine until the reply
   arrives, giving tests and examples a blocking API over the
   asynchronous wire protocol. *)

type t = {
  identity : Grid_gsi.Identity.t;
  resource : Resource.t;
}

let create ~identity ~resource = { identity; resource }

let identity t = t.identity
let subject t = Grid_gsi.Identity.subject t.identity

let credential_for t =
  let challenge = Resource.new_challenge t.resource in
  Grid_gsi.Credential.of_identity t.identity ~challenge

let submit t ~rsl ~reply =
  Resource.submit t.resource ~credential:(credential_for t) ~rsl ~reply

let manage t ~contact action ~reply =
  Resource.manage t.resource ~requester:(Grid_gsi.Identity.effective_subject t.identity)
    ~credential:(credential_for t) ~contact action ~reply

(* --- Blocking wrappers ------------------------------------------------ *)

let await engine cell =
  let guard = ref 0 in
  while !cell = None && !guard < 1_000_000 do
    if not (Grid_sim.Engine.step engine) then guard := 1_000_000 else incr guard
  done;
  match !cell with
  | Some v -> v
  | None -> failwith "Client: no reply (simulation drained)"

let submit_sync t ~rsl =
  let cell = ref None in
  submit t ~rsl ~reply:(fun r -> cell := Some r);
  await (Resource.engine t.resource) cell

let manage_sync t ~contact action =
  let cell = ref None in
  manage t ~contact action ~reply:(fun r -> cell := Some r);
  await (Resource.engine t.resource) cell

let watch t ~contact ~on_state_change =
  Resource.register_callback t.resource ~contact ~on_state_change

let status_sync t ~contact =
  match manage_sync t ~contact Protocol.Status with
  | Ok (Protocol.Job_status st) -> Ok st
  | Ok Protocol.Ack -> Error (Protocol.Invalid_request "status returned no body")
  | Error _ as e -> e
