(** The GRAM client: submission and (possibly third-party) job
    management on behalf of a grid identity. *)

type t

val create : identity:Grid_gsi.Identity.t -> resource:Resource.t -> t

val identity : t -> Grid_gsi.Identity.t
val subject : t -> Grid_gsi.Dn.t

val credential_for : t -> Grid_gsi.Credential.t
(** Fresh credential bound to a challenge newly minted by the resource. *)

val submit :
  t ->
  rsl:string ->
  reply:((Protocol.submit_reply, Protocol.submit_error) result -> unit) ->
  unit

val manage :
  t ->
  contact:string ->
  Protocol.management_action ->
  reply:((Protocol.management_reply, Protocol.management_error) result -> unit) ->
  unit

val submit_sync : t -> rsl:string -> (Protocol.submit_reply, Protocol.submit_error) result
(** Drive the simulation until the reply arrives. *)

val manage_sync :
  t ->
  contact:string ->
  Protocol.management_action ->
  (Protocol.management_reply, Protocol.management_error) result

val watch :
  t ->
  contact:string ->
  on_state_change:(Protocol.job_state -> unit) ->
  (unit, Protocol.management_error) result
(** Register a GT2-style callback contact: subsequent state transitions
    of the job are delivered asynchronously. *)

val status_sync : t -> contact:string -> (Protocol.job_status, Protocol.management_error) result
