(** GRAM operating modes: unmodified GT2 vs the paper's extension. *)

type t =
  | Gt2_baseline
  | Extended of {
      authorization : Grid_callout.Callout.t;
      advice : (Grid_callout.Callout.query -> Grid_policy.Types.clause option) option;
          (** policy-derived-enforcement hook: the clause an authorized
              decision rested on, for sandbox configuration *)
    }

val extended :
  ?advice:(Grid_callout.Callout.query -> Grid_policy.Types.clause option) ->
  Grid_callout.Callout.t ->
  t

val is_extended : t -> bool
val to_string : t -> string

val extended_from_config : Grid_callout.Config.t -> Grid_callout.Registry.t -> t
(** Resolve the job-manager authorization callout from configuration; a
    misconfigured callout fails closed at invocation time. *)
