lib/gram/client.ml: Grid_gsi Grid_sim Protocol Resource
