lib/gram/gatekeeper.mli: Grid_accounts Grid_audit Grid_callout Grid_gsi Grid_lrm Grid_sim Job_manager Mode Protocol
