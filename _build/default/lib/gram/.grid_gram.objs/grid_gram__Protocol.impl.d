lib/gram/protocol.ml: Grid_callout Grid_gsi Grid_lrm Grid_policy Printf String
