lib/gram/client.mli: Grid_gsi Protocol Resource
