lib/gram/job_manager.ml: Float Grid_accounts Grid_audit Grid_callout Grid_gsi Grid_lrm Grid_policy Grid_rsl Grid_sim Grid_util List Mode Option Printf Protocol String
