lib/gram/mode.ml: Grid_callout Grid_policy
