lib/gram/protocol.mli: Grid_callout Grid_gsi Grid_lrm Grid_policy
