lib/gram/gatekeeper.ml: Grid_accounts Grid_audit Grid_callout Grid_gsi Grid_lrm Grid_policy Grid_rsl Grid_sim Hashtbl Job_manager Mode Printf Protocol
