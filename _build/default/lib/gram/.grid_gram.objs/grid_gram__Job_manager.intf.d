lib/gram/job_manager.mli: Grid_accounts Grid_audit Grid_gsi Grid_lrm Grid_rsl Grid_sim Mode Protocol
