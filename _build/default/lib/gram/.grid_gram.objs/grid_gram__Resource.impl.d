lib/gram/resource.ml: Gatekeeper Grid_audit Grid_gsi Grid_lrm Grid_sim Hashtbl Job_manager List Printf Protocol String
