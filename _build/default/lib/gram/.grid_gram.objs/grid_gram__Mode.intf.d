lib/gram/mode.mli: Grid_callout Grid_policy
