(* Akenti-style attribute certificates.

   An attribute authority asserts that a subject holds an attribute
   (e.g. group=fusion-analysts, role=vo-admin). Use-conditions name the
   attributes a user must hold; the Akenti engine gathers a user's
   attribute certificates from its stores and checks them against the
   conditions. *)

type t = {
  subject : Grid_gsi.Dn.t;
  attribute : string;
  value : string;
  issuer : Grid_gsi.Dn.t;
  not_before : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  signature : string;
}

let signing_bytes ~subject ~attribute ~value ~issuer ~not_before ~not_after =
  Printf.sprintf "akenti-attr|%s|%s|%s|%s|%.6f|%.6f"
    (Grid_gsi.Dn.to_string subject)
    attribute value
    (Grid_gsi.Dn.to_string issuer)
    not_before not_after

let make ~subject ~attribute ~value ~issuer ~not_before ~not_after ~signing_key =
  let body = signing_bytes ~subject ~attribute ~value ~issuer ~not_before ~not_after in
  { subject; attribute; value; issuer; not_before; not_after;
    signature = Grid_crypto.Keypair.sign signing_key body }

let verify t ~issuer_key ~now =
  t.not_before <= now && now <= t.not_after
  && Grid_crypto.Keypair.verify issuer_key ~signature:t.signature
       (signing_bytes ~subject:t.subject ~attribute:t.attribute ~value:t.value
          ~issuer:t.issuer ~not_before:t.not_before ~not_after:t.not_after)

let pp ppf t =
  Fmt.pf ppf "attr-cert(%a: %s=%s by %a)" Grid_gsi.Dn.pp t.subject t.attribute t.value
    Grid_gsi.Dn.pp t.issuer
