(** Akenti engine adapted to the GRAM authorization callout API. *)

type clock = unit -> Grid_sim.Clock.time

val callout : engine:Engine.t -> now:clock -> Grid_callout.Callout.t
