(** Akenti-style attribute certificates: signed (subject, attribute,
    value) assertions from attribute authorities. *)

type t = {
  subject : Grid_gsi.Dn.t;
  attribute : string;
  value : string;
  issuer : Grid_gsi.Dn.t;
  not_before : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  signature : string;
}

val make :
  subject:Grid_gsi.Dn.t ->
  attribute:string ->
  value:string ->
  issuer:Grid_gsi.Dn.t ->
  not_before:Grid_sim.Clock.time ->
  not_after:Grid_sim.Clock.time ->
  signing_key:Grid_crypto.Keypair.secret ->
  t

val verify : t -> issuer_key:Grid_crypto.Keypair.public -> now:Grid_sim.Clock.time -> bool

val pp : t Fmt.t
