(** The Akenti decision engine: conjunctive multi-stakeholder
    use-condition evaluation with attribute certificates. *)

type principal = {
  dn : Grid_gsi.Dn.t;
  key : Grid_crypto.Keypair.public;
}

type t

val create :
  resource:string ->
  stakeholders:principal list ->
  attribute_authorities:principal list ->
  t
(** Raises [Invalid_argument] with no stakeholders. *)

val publish_condition : t -> Use_condition.t -> unit
val publish_attribute : t -> Attr_cert.t -> unit

type verdict =
  | Granted
  | Refused of string

val user_holds : t -> user:Grid_gsi.Dn.t -> now:Grid_sim.Clock.time -> string * string -> bool
(** Does a verified attribute certificate from a trusted authority cover
    this (attribute, value) for the user? *)

val decide : t -> now:Grid_sim.Clock.time -> Grid_policy.Types.request -> verdict
(** Every stakeholder must contribute a satisfied, applicable
    use-condition; otherwise the request is refused. Served from the
    decision cache when enabled and fresh. *)

val enable_cache : t -> ttl:Grid_sim.Clock.time -> unit
(** Cache decisions for [ttl]; the cache is flushed on every publish. *)

val flush_cache : t -> unit
val cache_hits : t -> int
val cache_misses : t -> int
