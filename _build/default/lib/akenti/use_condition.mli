(** Akenti-style use-condition certificates: a stakeholder's signed terms
    of use for a resource. *)

type t = {
  resource : string;
  stakeholder : Grid_gsi.Dn.t;
  actions : Grid_policy.Types.Action.t list;
  constraints : Grid_policy.Types.clause;
  required_attributes : (string * string) list;
  not_before : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  signature : string;
}

val make :
  resource:string ->
  stakeholder:Grid_gsi.Dn.t ->
  actions:Grid_policy.Types.Action.t list ->
  constraints:Grid_policy.Types.clause ->
  required_attributes:(string * string) list ->
  not_before:Grid_sim.Clock.time ->
  not_after:Grid_sim.Clock.time ->
  signing_key:Grid_crypto.Keypair.secret ->
  t

val verify :
  t -> stakeholder_key:Grid_crypto.Keypair.public -> now:Grid_sim.Clock.time -> bool

val governs : t -> Grid_policy.Types.Action.t -> bool
