lib/akenti/attr_cert.mli: Fmt Grid_crypto Grid_gsi Grid_sim
