lib/akenti/engine.mli: Attr_cert Grid_crypto Grid_gsi Grid_policy Grid_sim Use_condition
