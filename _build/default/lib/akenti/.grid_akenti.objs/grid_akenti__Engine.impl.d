lib/akenti/engine.ml: Attr_cert Fmt Grid_crypto Grid_gsi Grid_policy Grid_sim Hashtbl List Printf Use_condition
