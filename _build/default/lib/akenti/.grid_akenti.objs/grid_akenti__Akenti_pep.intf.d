lib/akenti/akenti_pep.mli: Engine Grid_callout Grid_sim
