lib/akenti/use_condition.mli: Grid_crypto Grid_gsi Grid_policy Grid_sim
