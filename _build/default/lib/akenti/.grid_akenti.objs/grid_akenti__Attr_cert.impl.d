lib/akenti/attr_cert.ml: Fmt Grid_crypto Grid_gsi Grid_sim Printf
