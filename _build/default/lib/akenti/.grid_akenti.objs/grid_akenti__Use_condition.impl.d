lib/akenti/use_condition.ml: Grid_crypto Grid_gsi Grid_policy Grid_sim Grid_util List Printf
