lib/akenti/akenti_pep.ml: Engine Grid_callout Grid_sim
