(* The Akenti decision engine (pull model).

   The engine is configured resource-side with:
     - trusted stakeholders per resource (every stakeholder must grant);
     - trusted attribute authorities;
     - stores of use-condition and attribute certificates (in a real
       deployment these are fetched from web/LDAP repositories; the
       fetch-and-verify structure is the same).

   Decision procedure for (user, action, request view) on a resource:
     1. gather this resource's use-conditions, dropping any that fail
        signature/lifetime verification against the stakeholder's key;
     2. every trusted stakeholder must contribute at least one applicable
        (action-governing) condition that is satisfied — Akenti's
        conjunctive multi-stakeholder semantics;
     3. a condition is satisfied when its request constraints hold and
        every required attribute is covered by a verified attribute
        certificate from a trusted authority. *)

type principal = {
  dn : Grid_gsi.Dn.t;
  key : Grid_crypto.Keypair.public;
}

type verdict =
  | Granted
  | Refused of string

type t = {
  resource : string;
  stakeholders : principal list;
  attribute_authorities : principal list;
  mutable conditions : Use_condition.t list;
  mutable attribute_certs : Attr_cert.t list;
  (* Decision cache: real Akenti deployments cache decisions and fetched
     certificates because certificate collection dominates latency. The
     cache is keyed on the full request rendering, bounded by a TTL, and
     flushed whenever the certificate stores change. *)
  mutable cache_ttl : Grid_sim.Clock.time option;
  cache : (string, verdict * Grid_sim.Clock.time) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create ~resource ~stakeholders ~attribute_authorities =
  if stakeholders = [] then invalid_arg "Akenti engine needs at least one stakeholder";
  { resource; stakeholders; attribute_authorities; conditions = []; attribute_certs = [];
    cache_ttl = None; cache = Hashtbl.create 64; cache_hits = 0; cache_misses = 0 }

let enable_cache t ~ttl = t.cache_ttl <- Some ttl
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses

let flush_cache t = Hashtbl.reset t.cache

let publish_condition t uc =
  flush_cache t;
  t.conditions <- t.conditions @ [ uc ]

let publish_attribute t ac =
  flush_cache t;
  t.attribute_certs <- t.attribute_certs @ [ ac ]

let user_holds t ~user ~now (attribute, value) =
  List.exists
    (fun (ac : Attr_cert.t) ->
      Grid_gsi.Dn.equal ac.subject user
      && ac.attribute = attribute && ac.value = value
      && (match
            List.find_opt
              (fun p -> Grid_gsi.Dn.equal p.dn ac.Attr_cert.issuer)
              t.attribute_authorities
          with
         | None -> false (* untrusted issuer *)
         | Some authority -> Attr_cert.verify ac ~issuer_key:authority.key ~now))
    t.attribute_certs

let condition_satisfied t ~user ~view ~now (uc : Use_condition.t) =
  Grid_policy.Eval.clause_satisfied ~subject:user view uc.constraints
  && List.for_all (user_holds t ~user ~now) uc.required_attributes

let decide_uncached t ~now (request : Grid_policy.Types.request) : verdict =
  let user = request.Grid_policy.Types.subject in
  let view = Grid_policy.Eval.View.of_request request in
  let verified_conditions =
    List.filter
      (fun (uc : Use_condition.t) ->
        uc.resource = t.resource
        &&
        match
          List.find_opt (fun p -> Grid_gsi.Dn.equal p.dn uc.Use_condition.stakeholder)
            t.stakeholders
        with
        | None -> false
        | Some stakeholder -> Use_condition.verify uc ~stakeholder_key:stakeholder.key ~now)
      t.conditions
  in
  let stakeholder_grants (p : principal) =
    let own =
      List.filter
        (fun (uc : Use_condition.t) ->
          Grid_gsi.Dn.equal uc.stakeholder p.dn
          && Use_condition.governs uc request.Grid_policy.Types.action)
        verified_conditions
    in
    if own = [] then
      (* A stakeholder with no applicable condition has not granted the
         action: Akenti denies. *)
      Error
        (Printf.sprintf "stakeholder %s publishes no use-condition for action %s"
           (Grid_gsi.Dn.to_string p.dn)
           (Grid_policy.Types.Action.to_string request.Grid_policy.Types.action))
    else if List.exists (condition_satisfied t ~user ~view ~now) own then Ok ()
    else
      Error
        (Printf.sprintf "no use-condition of stakeholder %s is satisfied"
           (Grid_gsi.Dn.to_string p.dn))
  in
  let rec check = function
    | [] -> Granted
    | p :: rest -> begin
      match stakeholder_grants p with
      | Ok () -> check rest
      | Error m -> Refused m
    end
  in
  check t.stakeholders

let decide t ~now (request : Grid_policy.Types.request) : verdict =
  match t.cache_ttl with
  | None -> decide_uncached t ~now request
  | Some ttl -> begin
    let key = Fmt.str "%a" Grid_policy.Types.pp_request request in
    match Hashtbl.find_opt t.cache key with
    | Some (verdict, at) when now -. at <= ttl ->
      t.cache_hits <- t.cache_hits + 1;
      verdict
    | Some _ | None ->
      t.cache_misses <- t.cache_misses + 1;
      let verdict = decide_uncached t ~now request in
      Hashtbl.replace t.cache key (verdict, now);
      verdict
  end
