(* Akenti-style use-condition certificates.

   A stakeholder in a resource signs the conditions under which the
   resource may be used: which actions are governed, what request
   constraints must hold (we reuse the policy language's clause/constraint
   semantics — the paper reports representing "the same policies" in
   Akenti), and which attributes the user must hold via attribute
   certificates from trusted issuers. *)

type t = {
  resource : string;                           (* e.g. "gram-job-manager" *)
  stakeholder : Grid_gsi.Dn.t;
  actions : Grid_policy.Types.Action.t list;   (* actions this condition governs *)
  constraints : Grid_policy.Types.clause;      (* over the request view *)
  required_attributes : (string * string) list;(* user must hold all of these *)
  not_before : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  signature : string;
}

let signing_bytes ~resource ~stakeholder ~actions ~constraints ~required_attributes
    ~not_before ~not_after =
  Printf.sprintf "akenti-uc|%s|%s|%s|%s|%s|%.6f|%.6f" resource
    (Grid_gsi.Dn.to_string stakeholder)
    (Grid_util.Strings.concat_map "," Grid_policy.Types.Action.to_string actions)
    (Grid_policy.Types.clause_to_string constraints)
    (Grid_util.Strings.concat_map "," (fun (a, v) -> a ^ "=" ^ v) required_attributes)
    not_before not_after

let make ~resource ~stakeholder ~actions ~constraints ~required_attributes ~not_before
    ~not_after ~signing_key =
  let body =
    signing_bytes ~resource ~stakeholder ~actions ~constraints ~required_attributes
      ~not_before ~not_after
  in
  { resource; stakeholder; actions; constraints; required_attributes; not_before;
    not_after; signature = Grid_crypto.Keypair.sign signing_key body }

let verify t ~stakeholder_key ~now =
  t.not_before <= now && now <= t.not_after
  && Grid_crypto.Keypair.verify stakeholder_key ~signature:t.signature
       (signing_bytes ~resource:t.resource ~stakeholder:t.stakeholder ~actions:t.actions
          ~constraints:t.constraints ~required_attributes:t.required_attributes
          ~not_before:t.not_before ~not_after:t.not_after)

let governs t action = List.exists (Grid_policy.Types.Action.equal action) t.actions
