(* Akenti as a GRAM authorization callout.

   The adapter the paper demonstrated at SC02: GRAM's callout API on one
   side, the Akenti engine on the other. *)

type clock = unit -> Grid_sim.Clock.time

let callout ~(engine : Engine.t) ~(now : clock) : Grid_callout.Callout.t =
 fun query ->
  let request = Grid_callout.Callout.to_policy_request query in
  match Engine.decide engine ~now:(now ()) request with
  | Engine.Granted -> Ok ()
  | Engine.Refused reason -> Error (Grid_callout.Callout.Denied ("Akenti: " ^ reason))
