(* The CAS policy evaluation point.

   Resource-side: trusts a CAS public key, expects requests to arrive with
   a credential whose chain carries a capability, verifies the capability
   (signature, lifetime, holder binding), then evaluates the carried
   policy against the request. Missing or invalid capabilities deny;
   undecodable ones are authorization-system failures. *)

type clock = unit -> Grid_sim.Clock.time

let callout ~(cas_key : Grid_crypto.Keypair.public) ~(now : clock) : Grid_callout.Callout.t =
 fun query ->
  match query.Grid_callout.Callout.requester_credential with
  | None ->
    Error
      (Grid_callout.Callout.Denied "no credential presented; CAS PEP requires a capability")
  | Some credential -> begin
    match Capability.find_in_credential credential with
    | None -> Error (Grid_callout.Callout.Denied "credential carries no CAS capability")
    | Some (Error m) ->
      Error (Grid_callout.Callout.System_error ("cannot decode capability: " ^ m))
    | Some (Ok capability) -> begin
      match
        Capability.verify capability ~cas_key
          ~presenter:query.Grid_callout.Callout.requester ~now:(now ())
      with
      | Error e ->
        Error (Grid_callout.Callout.Denied (Capability.verify_error_to_string e))
      | Ok () -> begin
        match Grid_policy.Parse.parse_result capability.Capability.policy_text with
        | Error m ->
          Error
            (Grid_callout.Callout.System_error ("capability carries unparseable policy: " ^ m))
        | Ok policy -> begin
          let request = Grid_callout.Callout.to_policy_request query in
          match Grid_policy.Eval.evaluate policy request with
          | Grid_policy.Eval.Permit -> Ok ()
          | Grid_policy.Eval.Deny reason ->
            Error
              (Grid_callout.Callout.Denied
                 (Printf.sprintf "%s (CAS capability from %s)"
                    (Grid_policy.Eval.reason_to_string reason)
                    capability.Capability.vo))
        end
      end
    end
  end
