lib/cas/capability.ml: Grid_crypto Grid_gsi Grid_sim List Printf String
