lib/cas/server.mli: Capability Grid_crypto Grid_gsi Grid_policy Grid_sim Grid_vo
