lib/cas/pep.mli: Grid_callout Grid_crypto Grid_sim
