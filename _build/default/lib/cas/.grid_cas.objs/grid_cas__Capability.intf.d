lib/cas/capability.mli: Grid_crypto Grid_gsi Grid_sim
