lib/cas/pep.ml: Capability Grid_callout Grid_crypto Grid_policy Grid_sim Printf
