(** The CAS server: authenticates community members and signs them
    capabilities embedding their slice of community policy. *)

type t

val create : ?capability_lifetime:Grid_sim.Clock.time -> vo:Grid_vo.Vo.t -> string -> t
(** Default capability lifetime: 8 simulated hours. *)

val public_key : t -> Grid_crypto.Keypair.public
(** What resources configure as the trusted CAS key. *)

val capabilities_issued : t -> int

val user_policy : t -> user:Grid_gsi.Dn.t -> Grid_policy.Types.t
(** The compiled community policy restricted to statements applying to
    [user]. *)

type grant_error =
  | Not_a_member
  | Authentication_failed of string

val grant_error_to_string : grant_error -> string

val grant :
  t ->
  trust:Grid_gsi.Ca.Trust_store.store ->
  now:Grid_sim.Clock.time ->
  Grid_gsi.Credential.t ->
  (Capability.t, grant_error) result

val grant_proxy :
  t ->
  trust:Grid_gsi.Ca.Trust_store.store ->
  now:Grid_sim.Clock.time ->
  Grid_gsi.Identity.t ->
  (Grid_gsi.Identity.t, grant_error) result
(** Issue a capability and wrap it into a fresh proxy of the identity, so
    it travels with subsequent requests. *)
