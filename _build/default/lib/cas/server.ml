(* The CAS server.

   Holds a VO and a signing keypair. On request it authenticates the user,
   checks membership, extracts the subset of the community policy that
   applies to the user, and signs it into a capability. *)

type t = {
  name : string;
  vo : Grid_vo.Vo.t;
  keypair : Grid_crypto.Keypair.t;
  capability_lifetime : Grid_sim.Clock.time;
  mutable capabilities_issued : int;
}

let create ?(capability_lifetime = Grid_sim.Clock.hours 8.0) ~vo name =
  let keypair = Grid_crypto.Keypair.generate ~seed_material:("cas:" ^ name) in
  Grid_crypto.Keypair.register keypair;
  { name; vo; keypair; capability_lifetime; capabilities_issued = 0 }

let public_key t = Grid_crypto.Keypair.public t.keypair
let capabilities_issued t = t.capabilities_issued

(* The policy subset relevant to one user: requirement statements covering
   them plus grant statements addressed to them. Anything else would leak
   other members' rights into the capability. *)
let user_policy t ~user =
  Grid_vo.Vo.compile_policy t.vo
  |> List.filter (fun st -> Grid_policy.Types.statement_applies st ~subject:user)

type grant_error =
  | Not_a_member
  | Authentication_failed of string

let grant_error_to_string = function
  | Not_a_member -> "requester is not a member of the community"
  | Authentication_failed m -> "authentication failed: " ^ m

let grant t ~trust ~now (credential : Grid_gsi.Credential.t) =
  match Grid_gsi.Credential.validate credential ~trust ~now with
  | Error e -> Error (Authentication_failed (Grid_gsi.Credential.error_to_string e))
  | Ok user ->
    if not (Grid_vo.Vo.is_member t.vo user) then Error Not_a_member
    else begin
      let policy_text = Grid_policy.Types.to_string (user_policy t ~user) in
      t.capabilities_issued <- t.capabilities_issued + 1;
      Ok
        (Capability.make ~holder:user ~vo:(Grid_vo.Vo.name t.vo) ~policy_text ~issued_at:now
           ~not_after:(Grid_sim.Clock.add now t.capability_lifetime)
           ~signing_key:(Grid_crypto.Keypair.secret t.keypair))
    end

(* Convenience used by clients: obtain a capability and fold it into a
   fresh proxy so it travels with the user's credential. *)
let grant_proxy t ~trust ~now (identity : Grid_gsi.Identity.t) =
  let challenge = Grid_gsi.Authn.fresh_challenge () in
  match grant t ~trust ~now (Grid_gsi.Credential.of_identity identity ~challenge) with
  | Error _ as e -> e
  | Ok capability ->
    Ok
      (Grid_gsi.Identity.delegate identity ~now
         ~extensions:[ Capability.to_extension capability ])
