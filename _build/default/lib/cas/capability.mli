(** CAS capability credentials: signed policy subsets carried by users
    (the push model). *)

type t = {
  holder : Grid_gsi.Dn.t;
  vo : string;
  policy_text : string;
  issued_at : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  signature : string;
}

val make :
  holder:Grid_gsi.Dn.t ->
  vo:string ->
  policy_text:string ->
  issued_at:Grid_sim.Clock.time ->
  not_after:Grid_sim.Clock.time ->
  signing_key:Grid_crypto.Keypair.secret ->
  t

type verify_error =
  | Bad_signature
  | Expired
  | Holder_mismatch of { expected : Grid_gsi.Dn.t; actual : Grid_gsi.Dn.t }

val verify_error_to_string : verify_error -> string

val verify :
  t ->
  cas_key:Grid_crypto.Keypair.public ->
  presenter:Grid_gsi.Dn.t ->
  now:Grid_sim.Clock.time ->
  (unit, verify_error) result
(** Signature, lifetime, and holder-binding checks. *)

val extension_oid : string

val encode : t -> string
val decode : string -> (t, string) result

val to_extension : t -> Grid_gsi.Cert.extension
(** Wrap for embedding in a proxy certificate. *)

val find_in_credential : Grid_gsi.Credential.t -> (t, string) result option
(** Locate and decode a capability carried in a credential chain. *)
