(** Discrete-event simulation engine.

    Deterministic: events scheduled for the same instant fire in the order
    they were scheduled. All grid components (gatekeeper, job managers, the
    local resource manager) run as event handlers over one engine. *)

type t

val create : unit -> t

val now : t -> Clock.time
(** Current virtual time. *)

val pending : t -> int
(** Number of events still queued. *)

val executed : t -> int
(** Number of events executed so far. *)

val schedule_at : t -> Clock.time -> (unit -> unit) -> unit
(** Schedule an event at an absolute time. Raises [Invalid_argument] if the
    time is in the past. *)

val schedule_after : t -> Clock.time -> (unit -> unit) -> unit
(** Schedule an event after a relative delay. *)

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : t -> unit
(** Execute events until the queue drains. *)

val run_until : t -> Clock.time -> unit
(** Execute events with timestamps [<= deadline], then set the clock to
    [deadline]. *)
