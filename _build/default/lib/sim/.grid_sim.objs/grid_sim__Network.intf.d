lib/sim/network.mli: Clock Engine
