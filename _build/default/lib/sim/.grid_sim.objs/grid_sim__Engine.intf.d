lib/sim/engine.mli: Clock
