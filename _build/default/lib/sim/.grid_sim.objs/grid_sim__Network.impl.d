lib/sim/network.ml: Clock Engine Grid_util
