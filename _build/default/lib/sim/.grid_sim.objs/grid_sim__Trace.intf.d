lib/sim/trace.mli: Clock Fmt
