lib/sim/trace.ml: Clock Fmt List
