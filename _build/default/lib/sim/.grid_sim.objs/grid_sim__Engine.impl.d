lib/sim/engine.ml: Array Clock Printf
