(* Interaction traces.

   The Figure 1/2 reproductions print "who sent what to whom when" arrows;
   components record those arrows here. A trace is an ordered list of
   events, each a timestamped (source, target, label) triple. *)

type entry = {
  at : Clock.time;
  source : string;
  target : string;
  label : string;
}

type t = { mutable entries : entry list (* reverse order *) }

let create () = { entries = [] }

let record t ~at ~source ~target label =
  t.entries <- { at; source; target; label } :: t.entries

let entries t = List.rev t.entries

let pp_entry ppf e =
  Fmt.pf ppf "%8.3fs  %-14s -> %-14s  %s" e.at e.source e.target e.label

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_entry) (entries t)

let find t ~label = List.filter (fun e -> e.label = label) (entries t)

let count t ~label = List.length (find t ~label)
