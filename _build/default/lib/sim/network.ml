(* Network latency model.

   Grid components exchange messages through [send], which delivers the
   handler after a latency drawn from a simple model: a base one-way latency
   plus uniform jitter, both configurable. A zero-latency model is available
   for microbenchmarks where only CPU cost matters. *)

type t = {
  engine : Engine.t;
  base_latency : Clock.time;
  jitter : Clock.time;
  rng : Grid_util.Rng.t;
  mutable messages_sent : int;
}

let create ?(base_latency = 0.005) ?(jitter = 0.002) ?(seed = 7) engine =
  { engine; base_latency; jitter; rng = Grid_util.Rng.create ~seed; messages_sent = 0 }

let zero_latency engine =
  { engine; base_latency = 0.0; jitter = 0.0; rng = Grid_util.Rng.create ~seed:0;
    messages_sent = 0 }

let latency t =
  if t.jitter = 0.0 then t.base_latency
  else t.base_latency +. Grid_util.Rng.float t.rng t.jitter

let send t deliver =
  t.messages_sent <- t.messages_sent + 1;
  Engine.schedule_after t.engine (latency t) deliver

let messages_sent t = t.messages_sent
let engine t = t.engine
