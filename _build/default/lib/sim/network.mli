(** Network latency model over the simulation engine.

    Message delivery incurs a base one-way latency plus uniform jitter,
    making component interaction traces (Figure 1/2 reproductions) show
    realistic orderings. *)

type t

val create : ?base_latency:Clock.time -> ?jitter:Clock.time -> ?seed:int -> Engine.t -> t
(** Default: 5 ms base latency, up to 2 ms jitter. *)

val zero_latency : Engine.t -> t
(** A network that delivers instantly (still via the event queue): used by
    microbenchmarks isolating CPU cost. *)

val send : t -> (unit -> unit) -> unit
(** Deliver a message: run the handler after a sampled latency. *)

val messages_sent : t -> int

val engine : t -> Engine.t
