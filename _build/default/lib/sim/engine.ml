(* Discrete-event simulation engine.

   A binary min-heap of (time, sequence, thunk) events. The sequence number
   breaks ties so that events scheduled at equal times fire in scheduling
   order — without it the heap would make same-time ordering arbitrary and
   runs would not be reproducible. *)

type event = { at : Clock.time; seq : int; run : unit -> unit }

type t = {
  mutable now : Clock.time;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
  mutable executed : int;
}

let create () =
  { now = Clock.zero;
    heap = Array.make 64 { at = 0.0; seq = 0; run = ignore };
    size = 0;
    next_seq = 0;
    executed = 0 }

let now t = t.now
let pending t = t.size
let executed t = t.executed

let earlier a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let bigger = Array.make (2 * cap) t.heap.(0) in
    Array.blit t.heap 0 bigger 0 cap;
    t.heap <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let schedule_at t at run =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %.3f is in the past (now %.3f)" at t.now);
  grow t;
  t.heap.(t.size) <- { at; seq = t.next_seq; run };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let schedule_after t delay run = schedule_at t (Clock.add t.now delay) run

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0;
    Some top
  end

let step t =
  match pop t with
  | None -> false
  | Some ev ->
    t.now <- ev.at;
    t.executed <- t.executed + 1;
    ev.run ();
    true

let run t =
  while step t do () done

let run_until t deadline =
  let continue = ref true in
  while !continue do
    match if t.size > 0 && t.heap.(0).at <= deadline then pop t else None with
    | None ->
      (* Advance the clock to the deadline even if the queue drained. *)
      if t.now < deadline then t.now <- deadline;
      continue := false
    | Some ev ->
      t.now <- ev.at;
      t.executed <- t.executed + 1;
      ev.run ()
  done
