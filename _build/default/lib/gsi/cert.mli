(** Certificates: subject DN bound to a public key under an issuer
    signature, with validity window and extensions. *)

type kind =
  | End_entity
  | Authority
  | Proxy

type extension = { oid : string; critical : bool; payload : string }

type t = {
  serial : int;
  kind : kind;
  subject : Dn.t;
  issuer : Dn.t;
  public_key : Grid_crypto.Keypair.public;
  not_before : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  extensions : extension list;
  signature : string;
}

val kind_to_string : kind -> string

val make :
  kind:kind ->
  subject:Dn.t ->
  issuer:Dn.t ->
  public_key:Grid_crypto.Keypair.public ->
  not_before:Grid_sim.Clock.time ->
  not_after:Grid_sim.Clock.time ->
  extensions:extension list ->
  signing_key:Grid_crypto.Keypair.secret ->
  t
(** Issue a certificate, signing the canonical encoding of all fields. *)

val signing_bytes : t -> string
(** The canonical to-be-signed encoding; any field change alters it. *)

val verify_signature : t -> issuer_key:Grid_crypto.Keypair.public -> bool

val valid_at : t -> now:Grid_sim.Clock.time -> bool

val find_extension : t -> string -> extension option

val fingerprint : t -> string
(** SHA-256 fingerprint over body and signature. *)

val pp : t Fmt.t
