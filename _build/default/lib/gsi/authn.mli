(** Mutual authentication: the GSI handshake producing a security context. *)

type context = {
  peer : Dn.t;
  credential : Credential.t;
  established_at : Grid_sim.Clock.time;
}

type error =
  | Credential_error of Credential.error
  | Challenge_mismatch

val error_to_string : error -> string
val pp_error : error Fmt.t

val fresh_challenge : unit -> string

val authenticate :
  trust:Ca.Trust_store.store ->
  now:Grid_sim.Clock.time ->
  challenge:string ->
  Credential.t ->
  (context, error) result
(** Verify a credential bound to the given challenge. *)

val handshake :
  trust:Ca.Trust_store.store ->
  now:Grid_sim.Clock.time ->
  Identity.t ->
  (context, error) result
(** Mint a challenge and authenticate the identity against it. *)

val pp : context Fmt.t
