lib/gsi/renewal.mli: Ca Credential Dn Grid_sim Identity
