lib/gsi/authn.mli: Ca Credential Dn Fmt Grid_sim Identity
