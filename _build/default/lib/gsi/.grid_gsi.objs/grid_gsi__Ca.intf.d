lib/gsi/ca.mli: Cert Dn Grid_crypto Grid_sim
