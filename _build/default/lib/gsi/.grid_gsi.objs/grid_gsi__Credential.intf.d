lib/gsi/credential.mli: Ca Cert Dn Fmt Grid_sim Identity
