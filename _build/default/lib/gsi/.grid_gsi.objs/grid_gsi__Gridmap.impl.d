lib/gsi/gridmap.ml: Dn Grid_util List Printf String
