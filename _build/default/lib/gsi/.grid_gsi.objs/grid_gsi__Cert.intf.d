lib/gsi/cert.mli: Dn Fmt Grid_crypto Grid_sim
