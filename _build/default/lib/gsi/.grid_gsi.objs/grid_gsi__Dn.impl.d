lib/gsi/dn.ml: Fmt Grid_util List String
