lib/gsi/dn.mli: Fmt
