lib/gsi/renewal.ml: Ca Cert Credential Dn Float Grid_sim Hashtbl Identity List Printf
