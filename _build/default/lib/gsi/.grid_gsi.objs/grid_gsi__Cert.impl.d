lib/gsi/cert.ml: Dn Fmt Grid_crypto Grid_sim Grid_util List Printf
