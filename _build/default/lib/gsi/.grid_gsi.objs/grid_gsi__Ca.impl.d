lib/gsi/ca.ml: Cert Dn Grid_crypto Grid_sim Hashtbl List Option
