lib/gsi/identity.mli: Ca Cert Dn Fmt Grid_crypto Grid_sim
