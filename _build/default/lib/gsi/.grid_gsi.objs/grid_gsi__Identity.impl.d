lib/gsi/identity.ml: Ca Cert Dn Fmt Grid_crypto Grid_sim List Printf
