lib/gsi/authn.ml: Ca Credential Dn Fmt Grid_sim Identity Printf String
