lib/gsi/credential.ml: Ca Cert Dn Fmt Grid_crypto Identity List Printf
