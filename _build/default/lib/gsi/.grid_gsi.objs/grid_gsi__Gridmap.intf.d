lib/gsi/gridmap.mli: Dn
