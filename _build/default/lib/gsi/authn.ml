(* Mutual authentication.

   Models the GSI handshake that precedes every GRAM exchange: the verifier
   issues a fresh challenge, the peer presents a credential bound to that
   challenge, and the verifier validates the chain. The result is a
   security context carrying the authenticated grid identity, which the
   Gatekeeper and Job Manager consult for all subsequent authorization. *)

type context = {
  peer : Dn.t;               (* authenticated effective grid identity *)
  credential : Credential.t; (* as presented, for delegation-aware callers *)
  established_at : Grid_sim.Clock.time;
}

type error =
  | Credential_error of Credential.error
  | Challenge_mismatch

let error_to_string = function
  | Credential_error e -> "authentication failed: " ^ Credential.error_to_string e
  | Challenge_mismatch -> "authentication failed: challenge mismatch"

let pp_error ppf e = Fmt.string ppf (error_to_string e)

let challenge_counter = ref 0

let fresh_challenge () =
  incr challenge_counter;
  Printf.sprintf "challenge-%06d" !challenge_counter

let authenticate ~(trust : Ca.Trust_store.store) ~now ~challenge (credential : Credential.t)
    =
  if not (String.equal credential.Credential.challenge challenge) then
    Error Challenge_mismatch
  else
    match Credential.validate credential ~trust ~now with
    | Error e -> Error (Credential_error e)
    | Ok peer -> Ok { peer; credential; established_at = now }

(* One-shot convenience: verifier mints the challenge, identity answers. *)
let handshake ~trust ~now (identity : Identity.t) =
  let challenge = fresh_challenge () in
  authenticate ~trust ~now ~challenge (Credential.of_identity identity ~challenge)

let pp ppf ctx =
  Fmt.pf ppf "authn-context(%a @@ %.3f)" Dn.pp ctx.peer ctx.established_at
