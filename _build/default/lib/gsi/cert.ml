(* Certificates.

   A certificate binds a subject DN to a public key under an issuer's
   signature, with a validity window and a bag of extensions. Proxy
   certificates and CAS capability credentials are ordinary certificates
   with distinguishing extensions, mirroring how GSI piggybacks on X.509. *)

type kind =
  | End_entity        (* a user or service identity certificate *)
  | Authority         (* a CA certificate (self-signed) *)
  | Proxy             (* a delegated proxy certificate *)

type extension = { oid : string; critical : bool; payload : string }

type t = {
  serial : int;
  kind : kind;
  subject : Dn.t;
  issuer : Dn.t;
  public_key : Grid_crypto.Keypair.public;
  not_before : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  extensions : extension list;
  signature : string;
}

let kind_to_string = function
  | End_entity -> "end-entity"
  | Authority -> "authority"
  | Proxy -> "proxy"

(* Canonical byte encoding of the to-be-signed portion. Any change to a
   field changes these bytes, so a tampered certificate fails verification. *)
let to_signing_bytes ~serial ~kind ~subject ~issuer ~public_key_id ~not_before ~not_after
    ~extensions =
  let ext_bytes =
    Grid_util.Strings.concat_map ";"
      (fun e ->
        Printf.sprintf "%s:%b:%s" e.oid e.critical (Grid_crypto.Base64.encode e.payload))
      extensions
  in
  Printf.sprintf "cert|%d|%s|%s|%s|%s|%.6f|%.6f|%s" serial (kind_to_string kind)
    (Dn.to_string subject) (Dn.to_string issuer) public_key_id not_before not_after ext_bytes

let signing_bytes t =
  (* Re-derive the key id through the same canonical form used at issuance:
     the public key's identity is its registered key id. *)
  to_signing_bytes ~serial:t.serial ~kind:t.kind ~subject:t.subject ~issuer:t.issuer
    ~public_key_id:(Fmt.to_to_string Grid_crypto.Keypair.pp_public t.public_key)
    ~not_before:t.not_before ~not_after:t.not_after ~extensions:t.extensions

let serial_counter = ref 0

let make ~kind ~subject ~issuer ~public_key ~not_before ~not_after ~extensions
    ~(signing_key : Grid_crypto.Keypair.secret) =
  incr serial_counter;
  let serial = !serial_counter in
  let body =
    to_signing_bytes ~serial ~kind ~subject ~issuer
      ~public_key_id:(Fmt.to_to_string Grid_crypto.Keypair.pp_public public_key)
      ~not_before ~not_after ~extensions
  in
  { serial; kind; subject; issuer; public_key; not_before; not_after; extensions;
    signature = Grid_crypto.Keypair.sign signing_key body }

let verify_signature t ~issuer_key =
  Grid_crypto.Keypair.verify issuer_key ~signature:t.signature (signing_bytes t)

let valid_at t ~now = t.not_before <= now && now <= t.not_after

let find_extension t oid = List.find_opt (fun e -> e.oid = oid) t.extensions

let fingerprint t = Grid_crypto.Sha256.digest_hex (signing_bytes t ^ t.signature)

let pp ppf t =
  Fmt.pf ppf "@[<v 1>Certificate #%d (%s):@ subject = %a@ issuer  = %a@ valid   = [%.1f, %.1f]@]"
    t.serial (kind_to_string t.kind) Dn.pp t.subject Dn.pp t.issuer t.not_before t.not_after
