(** X.509-style distinguished names ("/O=Grid/OU=mcs.anl.gov/CN=..."). *)

type rdn = { attr : string; value : string }
type t = rdn list

exception Parse_error of string

val parse : string -> t
(** Parse "/A=v/B=w/..." form. Raises {!Parse_error} on malformed input. *)

val to_string : t -> string
val pp : t Fmt.t
val equal : t -> t -> bool
val compare : t -> t -> int

val is_prefix : t -> t -> bool
(** [is_prefix p t] holds when [p]'s components are the leading components
    of [t]; the policy language's group statements use this. Reflexive. *)

val common_name : t -> string option
(** Value of the last CN component, if any. *)

val append : t -> attr:string -> value:string -> t
(** Extend with one component (proxy certificates append "CN=proxy").
    Raises [Invalid_argument] on empty attribute or value. *)

val length : t -> int
