(* Certificate authorities.

   A CA holds a keypair and a self-signed Authority certificate, and issues
   End_entity certificates. Verifiers hold a set of trusted CA certificates
   (the "trusted certificates directory" of a real GSI installation). *)

type t = {
  name : Dn.t;
  keypair : Grid_crypto.Keypair.t;
  certificate : Cert.t;
  default_lifetime : Grid_sim.Clock.time;
}

let create ?(lifetime = Grid_sim.Clock.hours 24.0) ?(default_identity_lifetime = Grid_sim.Clock.hours 12.0)
    ~now name_string =
  let name = Dn.parse name_string in
  let keypair = Grid_crypto.Keypair.generate ~seed_material:("ca:" ^ name_string) in
  Grid_crypto.Keypair.register keypair;
  let certificate =
    Cert.make ~kind:Cert.Authority ~subject:name ~issuer:name
      ~public_key:(Grid_crypto.Keypair.public keypair) ~not_before:now
      ~not_after:(Grid_sim.Clock.add now lifetime) ~extensions:[]
      ~signing_key:(Grid_crypto.Keypair.secret keypair)
  in
  { name; keypair; certificate; default_lifetime = default_identity_lifetime }

let certificate t = t.certificate
let name t = t.name

let issue ?lifetime ?(extensions = []) t ~now ~subject ~public_key =
  let lifetime = Option.value lifetime ~default:t.default_lifetime in
  Cert.make ~kind:Cert.End_entity ~subject ~issuer:t.name ~public_key ~not_before:now
    ~not_after:(Grid_sim.Clock.add now lifetime) ~extensions
    ~signing_key:(Grid_crypto.Keypair.secret t.keypair)

(* Issue a certificate of arbitrary kind; CAS servers use this to mint
   capability certificates carrying a policy extension. *)
let issue_special ?lifetime ?(extensions = []) t ~now ~kind ~subject ~public_key =
  let lifetime = Option.value lifetime ~default:t.default_lifetime in
  Cert.make ~kind ~subject ~issuer:t.name ~public_key ~not_before:now
    ~not_after:(Grid_sim.Clock.add now lifetime) ~extensions
    ~signing_key:(Grid_crypto.Keypair.secret t.keypair)

let signing_key t = Grid_crypto.Keypair.secret t.keypair

module Trust_store = struct
  (* Trust anchors plus a certificate revocation list. Real GSI
     installations keep CRL files beside the trusted certificates
     directory; here revocation is by serial number, checked during
     chain validation. *)
  type store = {
    mutable anchors : Cert.t list;
    revoked : (int, unit) Hashtbl.t;
  }

  let create () = { anchors = []; revoked = Hashtbl.create 8 }

  let add store cert =
    if cert.Cert.kind <> Cert.Authority then
      invalid_arg "Trust_store.add: only Authority certificates can be anchors";
    if not (List.exists (fun c -> Cert.fingerprint c = Cert.fingerprint cert) store.anchors)
    then store.anchors <- cert :: store.anchors

  let anchors store = store.anchors

  let find store ~issuer =
    List.find_opt (fun c -> Dn.equal c.Cert.subject issuer) store.anchors

  let revoke store (cert : Cert.t) = Hashtbl.replace store.revoked cert.Cert.serial ()

  let revoke_serial store serial = Hashtbl.replace store.revoked serial ()

  let is_revoked store (cert : Cert.t) = Hashtbl.mem store.revoked cert.Cert.serial
end
