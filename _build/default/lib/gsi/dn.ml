(* X.509-style distinguished names.

   Grid identities look like "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate
   Keahey": an ordered sequence of attribute=value components. The policy
   language matches users either exactly or by DN prefix (the paper's group
   statements name the "/O=Grid/O=Globus/OU=mcs.anl.gov" prefix), so prefix
   matching is first-class here. *)

type rdn = { attr : string; value : string }
type t = rdn list

exception Parse_error of string

let parse s =
  let s = Grid_util.Strings.strip s in
  if s = "" then raise (Parse_error "empty distinguished name");
  if s.[0] <> '/' then raise (Parse_error ("distinguished name must start with '/': " ^ s));
  let components = String.split_on_char '/' (String.sub s 1 (String.length s - 1)) in
  List.map
    (fun comp ->
      match String.index_opt comp '=' with
      | None -> raise (Parse_error ("component without '=': " ^ comp))
      | Some i ->
        let attr = String.sub comp 0 i in
        let value = String.sub comp (i + 1) (String.length comp - i - 1) in
        if attr = "" then raise (Parse_error ("empty attribute in: " ^ comp));
        if value = "" then raise (Parse_error ("empty value in: " ^ comp));
        { attr; value })
    components

let to_string t =
  String.concat "" (List.map (fun { attr; value } -> "/" ^ attr ^ "=" ^ value) t)

let pp ppf t = Fmt.string ppf (to_string t)

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> x.attr = y.attr && x.value = y.value) a b

let compare a b = String.compare (to_string a) (to_string b)

(* [is_prefix p t]: every component of [p] matches the corresponding leading
   component of [t]. A DN is a prefix of itself. *)
let is_prefix p t =
  let rec go p t =
    match (p, t) with
    | [], _ -> true
    | _, [] -> false
    | x :: p', y :: t' -> x.attr = y.attr && x.value = y.value && go p' t'
  in
  go p t

let common_name t =
  let rec last_cn acc = function
    | [] -> acc
    | { attr; value } :: rest -> last_cn (if attr = "CN" then Some value else acc) rest
  in
  last_cn None t

let append t ~attr ~value =
  if attr = "" || value = "" then invalid_arg "Dn.append: empty attribute or value";
  t @ [ { attr; value } ]

let length = List.length
