(* Presented credentials and their validation.

   A credential is what travels with a request: the presenter's certificate
   chain plus a proof of possession (a signature over a verifier-chosen
   challenge with the leaf key). Validation walks the chain exactly as a
   GSI verifier would:

     1. every certificate is inside its validity window;
     2. each certificate's signature verifies under its parent's key
        (the chain's own parent, or a trusted CA for the chain root);
     3. issuer/subject names chain correctly;
     4. proxy certificates extend their issuer's DN ("CN=proxy"), and only
        proxies may be issued by non-authorities;
     5. the proof of possession verifies under the leaf public key. *)

type t = {
  chain : Cert.t list; (* leaf first *)
  proof : string;      (* signature over [challenge] by the leaf key *)
  challenge : string;
}

type error =
  | Empty_chain
  | Expired of Dn.t
  | Bad_signature of Dn.t
  | Broken_chain of { child : Dn.t; claimed_issuer : Dn.t }
  | Untrusted_root of Dn.t
  | Bad_proxy_name of Dn.t
  | Revoked of Dn.t
  | Bad_possession_proof

let error_to_string = function
  | Empty_chain -> "empty certificate chain"
  | Expired dn -> "certificate expired: " ^ Dn.to_string dn
  | Bad_signature dn -> "bad certificate signature: " ^ Dn.to_string dn
  | Broken_chain { child; claimed_issuer } ->
    Printf.sprintf "broken chain: %s claims issuer %s" (Dn.to_string child)
      (Dn.to_string claimed_issuer)
  | Untrusted_root dn -> "untrusted root issuer: " ^ Dn.to_string dn
  | Bad_proxy_name dn -> "proxy subject does not extend issuer: " ^ Dn.to_string dn
  | Revoked dn -> "certificate revoked: " ^ Dn.to_string dn
  | Bad_possession_proof -> "proof of possession failed"

let pp_error ppf e = Fmt.string ppf (error_to_string e)

let of_identity (id : Identity.t) ~challenge =
  { chain = Identity.chain id;
    proof = Grid_crypto.Keypair.sign (Identity.secret_key id) challenge;
    challenge }

let leaf t = List.nth_opt t.chain 0

let subject t =
  match leaf t with
  | Some c -> c.Cert.subject
  | None -> []

(* The grid identity the credential asserts: subject of the last
   End_entity certificate, falling back to the leaf subject. *)
let effective_subject t =
  let rec find_eec fallback = function
    | [] -> fallback
    | (c : Cert.t) :: rest ->
      if c.Cert.kind = Cert.End_entity then c.Cert.subject else find_eec fallback rest
  in
  find_eec (subject t) t.chain

let validate (t : t) ~(trust : Ca.Trust_store.store) ~now =
  let rec walk = function
    | [] -> Error Empty_chain
    | [ (root : Cert.t) ] -> begin
      (* Chain root: must be vouched for by a trusted CA. *)
      match Ca.Trust_store.find trust ~issuer:root.Cert.issuer with
      | None -> Error (Untrusted_root root.Cert.issuer)
      | Some anchor ->
        if not (Cert.valid_at anchor ~now) then Error (Expired anchor.Cert.subject)
        else if not (Cert.verify_signature root ~issuer_key:anchor.Cert.public_key) then
          Error (Bad_signature root.Cert.subject)
        else Ok ()
    end
    | (child : Cert.t) :: (parent : Cert.t) :: rest ->
      if not (Dn.equal child.Cert.issuer parent.Cert.subject) then
        Error (Broken_chain { child = child.Cert.subject; claimed_issuer = child.Cert.issuer })
      else if not (Cert.verify_signature child ~issuer_key:parent.Cert.public_key) then
        Error (Bad_signature child.Cert.subject)
      else if
        child.Cert.kind = Cert.Proxy && not (Dn.is_prefix parent.Cert.subject child.Cert.subject)
      then Error (Bad_proxy_name child.Cert.subject)
      else walk (parent :: rest)
  in
  let expired = List.find_opt (fun c -> not (Cert.valid_at c ~now)) t.chain in
  let revoked = List.find_opt (Ca.Trust_store.is_revoked trust) t.chain in
  match (t.chain, expired, revoked) with
  | [], _, _ -> Error Empty_chain
  | _, Some c, _ -> Error (Expired c.Cert.subject)
  | _, None, Some c -> Error (Revoked c.Cert.subject)
  | leaf :: _, None, None -> begin
    match walk t.chain with
    | Error _ as e -> e
    | Ok () ->
      if
        Grid_crypto.Keypair.verify leaf.Cert.public_key ~signature:t.proof t.challenge
      then Ok (effective_subject t)
      else Error Bad_possession_proof
  end

(* Limitation is chain-inherited: any limited proxy anywhere taints the
   whole credential. *)
let is_limited t =
  List.exists
    (fun (c : Cert.t) ->
      c.Cert.kind = Cert.Proxy
      && Dn.common_name c.Cert.subject = Some Identity.limited_proxy_cn)
    t.chain

let delegation_depth t =
  List.length (List.filter (fun (c : Cert.t) -> c.Cert.kind = Cert.Proxy) t.chain)

let pp ppf t =
  Fmt.pf ppf "credential(%a, depth %d)" Dn.pp (effective_subject t) (delegation_depth t)
