(* The grid-mapfile.

   GT2's access-control list and account-mapping policy in one file: each
   line maps a quoted grid DN to a local account name. Presence in the file
   is what the Gatekeeper's coarse-grained authorization checks; the mapped
   account is the local credential the job runs under.

     "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" keahey
     "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu" bliu,fusion   # multiple accounts
*)

type entry = { dn : Dn.t; accounts : string list }
type t = { entries : entry list }

exception Parse_error of { line : int; message : string }

let parse_line lineno line =
  let fail message = raise (Parse_error { line = lineno; message }) in
  if String.length line = 0 || line.[0] <> '"' then
    fail "entry must start with a quoted distinguished name";
  match String.index_from_opt line 1 '"' with
  | None -> fail "unterminated quoted distinguished name"
  | Some close ->
    let dn_string = String.sub line 1 (close - 1) in
    let dn = try Dn.parse dn_string with Dn.Parse_error m -> fail m in
    let rest = Grid_util.Strings.strip (String.sub line (close + 1) (String.length line - close - 1)) in
    if rest = "" then fail "missing local account name";
    let accounts =
      String.split_on_char ',' rest |> List.map Grid_util.Strings.strip
      |> List.filter (fun a -> a <> "")
    in
    if accounts = [] then fail "missing local account name";
    { dn; accounts }

let parse text =
  { entries = List.map (fun (n, line) -> parse_line n line) (Grid_util.Strings.config_lines text) }

let empty = { entries = [] }

let add t ~dn ~account = { entries = t.entries @ [ { dn; accounts = [ account ] } ] }

let lookup t dn =
  match List.find_opt (fun e -> Dn.equal e.dn dn) t.entries with
  | Some { accounts = a :: _; _ } -> Some a
  | Some { accounts = []; _ } | None -> None

let lookup_all t dn =
  match List.find_opt (fun e -> Dn.equal e.dn dn) t.entries with
  | Some e -> e.accounts
  | None -> []

let mem t dn = lookup t dn <> None

let entries t = t.entries

let to_text t =
  Grid_util.Strings.concat_map "\n"
    (fun e -> Printf.sprintf "%S %s" (Dn.to_string e.dn) (String.concat "," e.accounts))
    t.entries
