(** Certificate authorities and verifier trust stores. *)

type t

val create :
  ?lifetime:Grid_sim.Clock.time ->
  ?default_identity_lifetime:Grid_sim.Clock.time ->
  now:Grid_sim.Clock.time ->
  string ->
  t
(** [create ~now dn_string] builds a CA with a self-signed certificate and
    registers its key as verifiable. Default CA cert lifetime 24 h; default
    lifetime of issued identity certs 12 h. *)

val certificate : t -> Cert.t
val name : t -> Dn.t

val issue :
  ?lifetime:Grid_sim.Clock.time ->
  ?extensions:Cert.extension list ->
  t ->
  now:Grid_sim.Clock.time ->
  subject:Dn.t ->
  public_key:Grid_crypto.Keypair.public ->
  Cert.t
(** Issue an end-entity certificate. *)

val issue_special :
  ?lifetime:Grid_sim.Clock.time ->
  ?extensions:Cert.extension list ->
  t ->
  now:Grid_sim.Clock.time ->
  kind:Cert.kind ->
  subject:Dn.t ->
  public_key:Grid_crypto.Keypair.public ->
  Cert.t
(** Issue a certificate of a chosen kind (CAS capability certificates). *)

val signing_key : t -> Grid_crypto.Keypair.secret

(** A verifier's set of trusted CA certificates. *)
module Trust_store : sig
  type store

  val create : unit -> store

  val add : store -> Cert.t -> unit
  (** Raises [Invalid_argument] if the certificate is not an Authority
      certificate. Idempotent. *)

  val anchors : store -> Cert.t list
  val find : store -> issuer:Dn.t -> Cert.t option

  val revoke : store -> Cert.t -> unit
  (** Add a certificate to the revocation list (by serial). *)

  val revoke_serial : store -> int -> unit
  val is_revoked : store -> Cert.t -> bool
end
