(** Principals: keypair plus CA-issued certificate, with GSI-style proxy
    delegation. *)

type t

val create :
  ca:Ca.t -> now:Grid_sim.Clock.time -> ?lifetime:Grid_sim.Clock.time -> string -> t
(** [create ~ca ~now dn] generates a keypair and has [ca] certify it. *)

val subject : t -> Dn.t
val certificate : t -> Cert.t

val chain : t -> Cert.t list
(** Leaf-first certificate chain down to (but excluding) the CA cert. *)

val secret_key : t -> Grid_crypto.Keypair.secret

val effective_subject : t -> Dn.t
(** The grid identity this principal acts as: for a proxy, the subject of
    the underlying end-entity certificate. *)

val limited_proxy_cn : string
(** "limited proxy": the CN marking GSI limited proxies. *)

val delegate :
  ?lifetime:Grid_sim.Clock.time -> ?extensions:Cert.extension list -> ?limited:bool ->
  t -> now:Grid_sim.Clock.time -> t
(** Issue an impersonation proxy: fresh keypair, subject extended with
    "CN=proxy" (or "CN=limited proxy" with [~limited:true]), certificate
    signed by this identity's key. *)

val is_limited : t -> bool
(** A limited proxy appears anywhere in the chain: limitation is
    inherited by further delegation. *)

val pp : t Fmt.t
