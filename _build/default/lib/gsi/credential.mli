(** Presented grid credentials: certificate chain + proof of possession. *)

type t = {
  chain : Cert.t list;
  proof : string;
  challenge : string;
}

type error =
  | Empty_chain
  | Expired of Dn.t
  | Bad_signature of Dn.t
  | Broken_chain of { child : Dn.t; claimed_issuer : Dn.t }
  | Untrusted_root of Dn.t
  | Bad_proxy_name of Dn.t
  | Revoked of Dn.t
  | Bad_possession_proof

val error_to_string : error -> string
val pp_error : error Fmt.t

val of_identity : Identity.t -> challenge:string -> t
(** Build the credential an identity presents against a given challenge. *)

val subject : t -> Dn.t
(** Leaf certificate subject ([[]] if the chain is empty). *)

val effective_subject : t -> Dn.t
(** The grid identity asserted: the end-entity subject beneath any
    proxies. *)

val validate :
  t -> trust:Ca.Trust_store.store -> now:Grid_sim.Clock.time -> (Dn.t, error) result
(** Full GSI-style validation (expiry, signatures, name chaining, proxy
    naming, root trust, possession proof). Returns the effective subject. *)

val is_limited : t -> bool
(** True when any certificate in the chain is a GSI limited proxy;
    services refuse job startup (but not authentication) for these. *)

val delegation_depth : t -> int
(** Number of proxy certificates in the chain. *)

val pp : t Fmt.t
