(* Principals: a keypair plus the certificate a CA issued for it.

   An identity can delegate by issuing a proxy certificate: a fresh keypair
   whose certificate is signed by the delegator's key and whose subject
   extends the delegator's DN with "CN=proxy" — the GSI impersonation-proxy
   scheme. Chains of any depth arise from proxies delegating further. *)

type t = {
  subject : Dn.t;
  keypair : Grid_crypto.Keypair.t;
  certificate : Cert.t;
  (* Certificates above this one, leaf-to-root order, excluding the CA
     certificate itself: empty for an end entity, ancestors for a proxy. *)
  parents : Cert.t list;
}

let create ~(ca : Ca.t) ~now ?lifetime subject_string =
  let subject = Dn.parse subject_string in
  let keypair = Grid_crypto.Keypair.generate ~seed_material:("identity:" ^ subject_string) in
  Grid_crypto.Keypair.register keypair;
  let certificate =
    Ca.issue ?lifetime ca ~now ~subject ~public_key:(Grid_crypto.Keypair.public keypair)
  in
  { subject; keypair; certificate; parents = [] }

let subject t = t.subject
let certificate t = t.certificate
let chain t = t.certificate :: t.parents
let secret_key t = Grid_crypto.Keypair.secret t.keypair

(* Effective identity: proxies act as the end entity whose DN is the
   longest non-proxy prefix — i.e. the subject of the last End_entity
   certificate in the chain. *)
let effective_subject t =
  let rec find_eec = function
    | [] -> t.subject
    | (c : Cert.t) :: rest -> if c.kind = Cert.End_entity then c.subject else find_eec rest
  in
  find_eec (chain t)

(* GSI distinguishes full impersonation proxies from *limited* proxies
   ("CN=limited proxy"): a limited proxy authenticates its holder but
   services refuse to start jobs with it — the classic protection for
   credentials that ride along with a job and could leak from a worker
   node. *)
let limited_proxy_cn = "limited proxy"

let delegate ?(lifetime = Grid_sim.Clock.hours 12.0) ?(extensions = []) ?(limited = false)
    t ~now =
  let cn = if limited then limited_proxy_cn else "proxy" in
  let proxy_subject = Dn.append t.subject ~attr:"CN" ~value:cn in
  let seed =
    Printf.sprintf "proxy:%s:%d" (Dn.to_string proxy_subject) (List.length t.parents)
  in
  let keypair = Grid_crypto.Keypair.generate ~seed_material:seed in
  Grid_crypto.Keypair.register keypair;
  let certificate =
    Cert.make ~kind:Cert.Proxy ~subject:proxy_subject ~issuer:t.subject
      ~public_key:(Grid_crypto.Keypair.public keypair) ~not_before:now
      ~not_after:(Grid_sim.Clock.add now lifetime) ~extensions
      ~signing_key:(Grid_crypto.Keypair.secret t.keypair)
  in
  { subject = proxy_subject; keypair; certificate; parents = chain t }

let is_limited t =
  List.exists
    (fun (c : Cert.t) ->
      c.Cert.kind = Cert.Proxy && Dn.common_name c.Cert.subject = Some limited_proxy_cn)
    (chain t)

let pp ppf t = Fmt.pf ppf "identity(%a)" Dn.pp t.subject
