(** The grid-mapfile: GT2's ACL + DN-to-account mapping. *)

type entry = { dn : Dn.t; accounts : string list }
type t

exception Parse_error of { line : int; message : string }

val parse : string -> t
(** Parse mapfile text: lines of ["DN" account[,account...]], [#] comments.
    Raises {!Parse_error}. *)

val empty : t

val add : t -> dn:Dn.t -> account:string -> t

val lookup : t -> Dn.t -> string option
(** Primary account for a DN (the first one listed). *)

val lookup_all : t -> Dn.t -> string list

val mem : t -> Dn.t -> bool
(** The Gatekeeper's coarse-grain authorization check. *)

val entries : t -> entry list

val to_text : t -> string
(** Render back to mapfile syntax (round-trips through {!parse}). *)
