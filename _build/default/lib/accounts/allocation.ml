(* Coarse-grained resource allocations.

   Section 2: "the resource providers think of the allocation in a
   coarse-grained manner: they are concerned about how many resources the
   VO can use as a whole, but they are not concerned about how allocation
   is used inside the VO."

   A bank tracks cpu-second budgets per party (typically one per VO).
   Admission reserves the job's worst-case demand (cpus x walltime
   estimate); completion settles the reservation against actual usage,
   refunding the difference. Jobs whose worst case does not fit the
   remaining budget are refused — the provider-side guarantee that makes
   outsourcing the fine-grained decisions to the VO safe. *)

type account = {
  party : string;
  budget : float; (* cpu-seconds *)
  mutable charged : float;
  mutable reserved : float;
}

type reservation = {
  reservation_id : string;
  account : account;
  amount : float;
  mutable settled : bool;
}

type t = {
  accounts : (string, account) Hashtbl.t;
  mutable refusals : int;
}

type error =
  | Unknown_party of string
  | Insufficient_allocation of { party : string; requested : float; available : float }

let error_to_string = function
  | Unknown_party p -> "no allocation for party: " ^ p
  | Insufficient_allocation { party; requested; available } ->
    Printf.sprintf "allocation of %s exhausted: %.0f cpu-s requested, %.0f available" party
      requested available

let create () = { accounts = Hashtbl.create 8; refusals = 0 }

let open_account t ~party ~budget =
  if budget < 0.0 then invalid_arg "Allocation.open_account: negative budget";
  if Hashtbl.mem t.accounts party then
    invalid_arg ("Allocation.open_account: duplicate party " ^ party);
  Hashtbl.replace t.accounts party { party; budget; charged = 0.0; reserved = 0.0 }

let available account = account.budget -. account.charged -. account.reserved

let balance t ~party =
  Option.map (fun a -> available a) (Hashtbl.find_opt t.accounts party)

let charged t ~party =
  Option.map (fun a -> a.charged) (Hashtbl.find_opt t.accounts party)

let refusals t = t.refusals

let reserve t ~party ~amount =
  match Hashtbl.find_opt t.accounts party with
  | None ->
    t.refusals <- t.refusals + 1;
    Error (Unknown_party party)
  | Some account ->
    if amount > available account then begin
      t.refusals <- t.refusals + 1;
      Error
        (Insufficient_allocation
           { party; requested = amount; available = available account })
    end
    else begin
      account.reserved <- account.reserved +. amount;
      Ok
        { reservation_id = Grid_util.Ids.fresh "rsv"; account; amount; settled = false }
    end

(* Settle against actual usage. Usage beyond the reservation is still
   charged (walltime accounting is authoritative); idempotent. *)
let settle (r : reservation) ~actual =
  if not r.settled then begin
    r.settled <- true;
    r.account.reserved <- Float.max 0.0 (r.account.reserved -. r.amount);
    r.account.charged <- r.account.charged +. Float.max 0.0 actual
  end

let cancel (r : reservation) = settle r ~actual:0.0

(* How the gatekeeper maps a grid identity to a paying party: typically
   the longest registered DN-prefix (the VO's organization). *)
let prefix_party_of t dn =
  let dn_string = Grid_gsi.Dn.to_string dn in
  Hashtbl.fold
    (fun party _ best ->
      if Grid_util.Strings.starts_with ~prefix:party dn_string then
        match best with
        | Some b when String.length b >= String.length party -> best
        | Some _ | None -> Some party
      else best)
    t.accounts None

(** What GRAM needs to enforce allocations: the bank plus the
    identity-to-party mapping. *)
type enforcement = {
  bank : t;
  party_of : Grid_gsi.Dn.t -> string option;
}

let enforcement ?party_of bank =
  { bank;
    party_of = (match party_of with Some f -> f | None -> prefix_party_of bank) }
