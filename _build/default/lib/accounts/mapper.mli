(** Grid-identity-to-local-account resolution: static grid-mapfile first,
    dynamic pool fallback, with sandbox limits attached per mapping. *)

type mapping = {
  account : string;
  source : [ `Static | `Dynamic of Pool.lease ];
  limits : Sandbox.limits;
}

type t

type error =
  | No_local_account of Grid_gsi.Dn.t
  | Pool_error of Pool.error

val error_to_string : error -> string

val create :
  ?pool:Pool.t ->
  ?static_limits:(Grid_gsi.Dn.t -> Sandbox.limits) ->
  ?dynamic_limits:Sandbox.limits ->
  Grid_gsi.Gridmap.t ->
  t
(** Limits default to {!Sandbox.unrestricted}. *)

val resolve : t -> now:Grid_sim.Clock.time -> Grid_gsi.Dn.t -> (mapping, error) result

val release : t -> mapping -> unit
(** Return a dynamic lease to the pool; no-op for static mappings. *)
