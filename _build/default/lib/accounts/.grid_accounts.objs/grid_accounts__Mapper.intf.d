lib/accounts/mapper.mli: Grid_gsi Grid_sim Pool Sandbox
