lib/accounts/allocation.ml: Float Grid_gsi Grid_util Hashtbl Option Printf String
