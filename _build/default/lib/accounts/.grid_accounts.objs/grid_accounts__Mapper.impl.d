lib/accounts/mapper.ml: Grid_gsi Pool Sandbox
