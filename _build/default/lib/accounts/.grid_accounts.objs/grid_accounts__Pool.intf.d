lib/accounts/pool.mli: Grid_gsi Grid_sim
