lib/accounts/sandbox.mli: Grid_policy Grid_rsl
