lib/accounts/sandbox.ml: Float Grid_policy Grid_rsl Grid_util List Option Printf String
