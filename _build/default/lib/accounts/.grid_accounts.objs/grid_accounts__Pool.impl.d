lib/accounts/pool.ml: Grid_gsi Grid_sim Grid_util List Option Printf
