lib/accounts/allocation.mli: Grid_gsi
