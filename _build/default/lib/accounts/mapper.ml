(* Account mapping: the Gatekeeper's "determine the account in which the
   job should be run" step.

   Resolution order mirrors deployed practice: a static grid-mapfile entry
   wins; otherwise, if a dynamic pool is configured, lease an account on
   the fly; otherwise the user has no local credential and the request
   fails — shortcoming (5) of Section 4.3, which dynamic accounts
   alleviate. Each mapping carries the sandbox limits to apply to the
   account. *)

type mapping = {
  account : string;
  source : [ `Static | `Dynamic of Pool.lease ];
  limits : Sandbox.limits;
}

type t = {
  gridmap : Grid_gsi.Gridmap.t;
  pool : Pool.t option;
  static_limits : Grid_gsi.Dn.t -> Sandbox.limits;
  dynamic_limits : Sandbox.limits;
}

type error =
  | No_local_account of Grid_gsi.Dn.t
  | Pool_error of Pool.error

let error_to_string = function
  | No_local_account dn -> "no local account for " ^ Grid_gsi.Dn.to_string dn
  | Pool_error e -> Pool.error_to_string e

let create ?pool ?(static_limits = fun _ -> Sandbox.unrestricted)
    ?(dynamic_limits = Sandbox.unrestricted) gridmap =
  { gridmap; pool; static_limits; dynamic_limits }

let resolve t ~now dn =
  match Grid_gsi.Gridmap.lookup t.gridmap dn with
  | Some account -> Ok { account; source = `Static; limits = t.static_limits dn }
  | None -> begin
    match t.pool with
    | None -> Error (No_local_account dn)
    | Some pool -> begin
      match Pool.acquire pool ~now ~holder:dn with
      | Ok lease ->
        Ok { account = lease.Pool.account; source = `Dynamic lease; limits = t.dynamic_limits }
      | Error e -> Error (Pool_error e)
    end
  end

let release t mapping =
  match (mapping.source, t.pool) with
  | `Dynamic lease, Some pool ->
    ignore (Pool.release pool ~lease_id:lease.Pool.lease_id)
  | `Dynamic _, None | `Static, _ -> ()
