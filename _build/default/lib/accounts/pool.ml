(* Dynamic accounts (Section 6.1).

   "Dynamic Accounts are accounts created and configured on the fly by a
   resource management facility[, enabling it] to run jobs ... for users
   that do not have an account on that system." The pool hands out leases
   on a fixed set of template accounts; a lease binds an account to one
   grid identity for a limited time, is renewed on reuse, and is reclaimed
   on release or expiry. A holder that already has a live lease gets the
   same account back — account state (files, quotas) stays coherent within
   a session. *)

type lease = {
  lease_id : string;
  account : string;
  holder : Grid_gsi.Dn.t;
  granted_at : Grid_sim.Clock.time;
  mutable expires_at : Grid_sim.Clock.time;
}

type t = {
  accounts : string list;
  lease_lifetime : Grid_sim.Clock.time;
  mutable leases : lease list;
  mutable grants : int;
  mutable reuses : int;
  mutable exhaustions : int;
}

type error =
  | Pool_exhausted of { size : int }
  | Unknown_lease of string

let error_to_string = function
  | Pool_exhausted { size } ->
    Printf.sprintf "dynamic account pool exhausted (%d accounts, all leased)" size
  | Unknown_lease id -> "unknown lease: " ^ id

let create ?(prefix = "grid") ~size ~lease_lifetime () =
  if size <= 0 then invalid_arg "Pool.create: size must be positive";
  { accounts = List.init size (fun i -> Printf.sprintf "%s%03d" prefix i);
    lease_lifetime;
    leases = [];
    grants = 0;
    reuses = 0;
    exhaustions = 0 }

let live_leases t ~now = List.filter (fun l -> now <= l.expires_at) t.leases

(* Reclaim expired leases; returns how many were collected. *)
let expire t ~now =
  let before = List.length t.leases in
  t.leases <- live_leases t ~now;
  before - List.length t.leases

let acquire t ~now ~holder =
  ignore (expire t ~now);
  match List.find_opt (fun l -> Grid_gsi.Dn.equal l.holder holder) t.leases with
  | Some lease ->
    (* Renew rather than double-allocate. *)
    lease.expires_at <- Grid_sim.Clock.add now t.lease_lifetime;
    t.reuses <- t.reuses + 1;
    Ok lease
  | None -> begin
    let in_use = List.map (fun l -> l.account) t.leases in
    match List.find_opt (fun a -> not (List.mem a in_use)) t.accounts with
    | None ->
      t.exhaustions <- t.exhaustions + 1;
      Error (Pool_exhausted { size = List.length t.accounts })
    | Some account ->
      let lease =
        { lease_id = Grid_util.Ids.lease ();
          account;
          holder;
          granted_at = now;
          expires_at = Grid_sim.Clock.add now t.lease_lifetime }
      in
      t.grants <- t.grants + 1;
      t.leases <- lease :: t.leases;
      Ok lease
  end

let release t ~lease_id =
  if List.exists (fun l -> l.lease_id = lease_id) t.leases then begin
    t.leases <- List.filter (fun l -> l.lease_id <> lease_id) t.leases;
    Ok ()
  end
  else Error (Unknown_lease lease_id)

let holder_of t ~account ~now =
  List.find_opt (fun l -> l.account = account) (live_leases t ~now)
  |> Option.map (fun l -> l.holder)

let size t = List.length t.accounts
let in_use t ~now = List.length (live_leases t ~now)
let available t ~now = size t - in_use t ~now

type stats = { total_grants : int; total_reuses : int; total_exhaustions : int }

let stats t =
  { total_grants = t.grants; total_reuses = t.reuses; total_exhaustions = t.exhaustions }
