(* Sandboxes (Section 6.1).

   "A sandbox is an environment that imposes restrictions on resource
   usage ... having the resource operating system act as the policy
   evaluation and enforcement modules." The gateway PEP authorizes a
   request once; the sandbox is the *continuous* enforcement the paper
   identifies as the gateway model's missing half. A sandbox profile is
   attached to a local account when a job is mapped to it and is checked
   against the concrete job parameters handed to the LRM — and again at
   runtime operations. *)

type limits = {
  max_cpus : int option;
  max_memory_mb : int option;
  max_walltime : float option;            (* seconds *)
  allowed_directories : string list;      (* job working dirs; [] = any *)
  allowed_executables : string list;      (* [] = any *)
}

let unrestricted =
  { max_cpus = None;
    max_memory_mb = None;
    max_walltime = None;
    allowed_directories = [];
    allowed_executables = [] }

type violation =
  | Cpus_exceeded of { requested : int; limit : int }
  | Memory_exceeded of { requested : int; limit : int }
  | Walltime_exceeded of { requested : float; limit : float }
  | Directory_forbidden of string
  | Executable_forbidden of string

let violation_to_string = function
  | Cpus_exceeded { requested; limit } ->
    Printf.sprintf "sandbox: %d cpus requested, limit %d" requested limit
  | Memory_exceeded { requested; limit } ->
    Printf.sprintf "sandbox: %d MB requested, limit %d" requested limit
  | Walltime_exceeded { requested; limit } ->
    Printf.sprintf "sandbox: %.0f s walltime requested, limit %.0f" requested limit
  | Directory_forbidden d -> "sandbox: directory not permitted: " ^ d
  | Executable_forbidden e -> "sandbox: executable not permitted: " ^ e

(* Path containment: /sandbox/test permits /sandbox/test and
   /sandbox/test/sub but not /sandbox/testing. *)
let path_within ~root path =
  String.equal root path
  || Grid_util.Strings.starts_with ~prefix:(root ^ "/") path

(* Tightest-of-both combination: used when account-level limits meet
   limits derived from the authorizing policy clause. *)
let intersect (a : limits) (b : limits) : limits =
  let min_opt x y =
    match (x, y) with
    | None, v | v, None -> v
    | Some x, Some y -> Some (min x y)
  in
  let join_lists x y =
    match (x, y) with
    | [], v | v, [] -> v
    | x, y -> begin
      (* Both restrict: keep the intersection; if disjoint, nothing is
         allowed (represented by an impossible sentinel entry rather
         than [], which means "anything"). *)
      match List.filter (fun e -> List.mem e y) x with
      | [] -> [ "\000nothing" ]
      | common -> common
    end
  in
  { max_cpus = min_opt a.max_cpus b.max_cpus;
    max_memory_mb = min_opt a.max_memory_mb b.max_memory_mb;
    max_walltime = min_opt a.max_walltime b.max_walltime;
    allowed_directories = join_lists a.allowed_directories b.allowed_directories;
    allowed_executables = join_lists a.allowed_executables b.allowed_executables }

(* Derive an enforcement envelope from the policy clause that authorized
   a request (the paper's Section 7 "GT3" direction: the job description
   — and here, the authorization decision — configures the local
   enforcement). Only constraints with an enforceable reading
   contribute; everything else is ignored. *)
let of_policy_clause (clause : Grid_policy.Types.clause) : limits =
  let strings_of values =
    List.filter_map
      (function Grid_policy.Types.Str s -> Some s | Grid_policy.Types.Null | Grid_policy.Types.Self -> None)
      values
  in
  let bound_of op values =
    match (op, strings_of values) with
    | Grid_rsl.Ast.Lt, [ v ] -> Option.map (fun f -> f -. 1.0) (float_of_string_opt v)
    | Grid_rsl.Ast.Le, [ v ] -> float_of_string_opt v
    | (Grid_rsl.Ast.Eq | Grid_rsl.Ast.Neq | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Ge), _ -> None
    | (Grid_rsl.Ast.Lt | Grid_rsl.Ast.Le), _ -> None
  in
  List.fold_left
    (fun acc (c : Grid_policy.Types.constr) ->
      match c.Grid_policy.Types.attribute with
      | "executable" when c.Grid_policy.Types.op = Grid_rsl.Ast.Eq ->
        { acc with
          allowed_executables =
            acc.allowed_executables @ strings_of c.Grid_policy.Types.values }
      | "directory" when c.Grid_policy.Types.op = Grid_rsl.Ast.Eq ->
        { acc with
          allowed_directories =
            acc.allowed_directories @ strings_of c.Grid_policy.Types.values }
      | "count" -> begin
        match bound_of c.Grid_policy.Types.op c.Grid_policy.Types.values with
        | Some bound ->
          { acc with
            max_cpus =
              Some
                (match acc.max_cpus with
                | Some existing -> min existing (int_of_float bound)
                | None -> int_of_float bound) }
        | None -> acc
      end
      | "maxmemory" -> begin
        match bound_of c.Grid_policy.Types.op c.Grid_policy.Types.values with
        | Some bound ->
          { acc with
            max_memory_mb =
              Some
                (match acc.max_memory_mb with
                | Some existing -> min existing (int_of_float bound)
                | None -> int_of_float bound) }
        | None -> acc
      end
      | "maxwalltime" (* minutes in RSL *) -> begin
        match bound_of c.Grid_policy.Types.op c.Grid_policy.Types.values with
        | Some minutes ->
          let seconds = minutes *. 60.0 in
          { acc with
            max_walltime =
              Some
                (match acc.max_walltime with
                | Some existing -> Float.min existing seconds
                | None -> seconds) }
        | None -> acc
      end
      | _ -> acc)
    unrestricted clause

let check (limits : limits) (job : Grid_rsl.Job.t) : violation list =
  let cpus =
    match limits.max_cpus with
    | Some limit when job.Grid_rsl.Job.count > limit ->
      [ Cpus_exceeded { requested = job.Grid_rsl.Job.count; limit } ]
    | Some _ | None -> []
  in
  let memory =
    match (limits.max_memory_mb, job.Grid_rsl.Job.max_memory) with
    | Some limit, Some requested when requested > limit ->
      [ Memory_exceeded { requested; limit } ]
    | _ -> []
  in
  let walltime =
    match (limits.max_walltime, job.Grid_rsl.Job.max_wall_time) with
    | Some limit, Some minutes when minutes *. 60.0 > limit ->
      [ Walltime_exceeded { requested = minutes *. 60.0; limit } ]
    | _ -> []
  in
  let directory =
    match (limits.allowed_directories, job.Grid_rsl.Job.directory) with
    | [], _ | _, None -> []
    | roots, Some dir ->
      if List.exists (fun root -> path_within ~root dir) roots then []
      else [ Directory_forbidden dir ]
  in
  let executable =
    match limits.allowed_executables with
    | [] -> []
    | allowed ->
      if List.mem job.Grid_rsl.Job.executable allowed then []
      else [ Executable_forbidden job.Grid_rsl.Job.executable ]
  in
  cpus @ memory @ walltime @ directory @ executable

let permits limits job = check limits job = []
