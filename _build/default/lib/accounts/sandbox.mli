(** Sandbox resource limits: continuous enforcement attached to a local
    account (paper Section 6.1). *)

type limits = {
  max_cpus : int option;
  max_memory_mb : int option;
  max_walltime : float option;
  allowed_directories : string list;
  allowed_executables : string list;
}

val unrestricted : limits

type violation =
  | Cpus_exceeded of { requested : int; limit : int }
  | Memory_exceeded of { requested : int; limit : int }
  | Walltime_exceeded of { requested : float; limit : float }
  | Directory_forbidden of string
  | Executable_forbidden of string

val violation_to_string : violation -> string

val path_within : root:string -> string -> bool
(** Proper path containment (no prefix-string false positives). *)

val intersect : limits -> limits -> limits
(** Tightest-of-both: numeric caps take the minimum; allow-lists take
    the set intersection (two disjoint restrictions allow nothing). *)

val of_policy_clause : Grid_policy.Types.clause -> limits
(** Enforcement envelope implied by an authorizing policy clause:
    executable/directory allow-lists from [=] constraints, numeric caps
    from [<]/[<=] bounds on count, maxmemory and maxwalltime. *)

val check : limits -> Grid_rsl.Job.t -> violation list
val permits : limits -> Grid_rsl.Job.t -> bool
