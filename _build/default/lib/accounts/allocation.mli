(** Coarse-grained cpu-second allocations per party (paper Section 2):
    reserve at admission, settle against actual usage at completion. *)

type account

type reservation

type t

type error =
  | Unknown_party of string
  | Insufficient_allocation of { party : string; requested : float; available : float }

val error_to_string : error -> string

val create : unit -> t

val open_account : t -> party:string -> budget:float -> unit
(** [budget] in cpu-seconds. Raises [Invalid_argument] on negative
    budgets or duplicate parties. *)

val balance : t -> party:string -> float option
(** Budget minus charges minus outstanding reservations. *)

val charged : t -> party:string -> float option

val refusals : t -> int
(** Admissions refused for allocation reasons. *)

val reserve : t -> party:string -> amount:float -> (reservation, error) result

val settle : reservation -> actual:float -> unit
(** Release the reservation and charge actual usage. Idempotent. *)

val cancel : reservation -> unit
(** [settle ~actual:0.0]. *)

val prefix_party_of : t -> Grid_gsi.Dn.t -> string option
(** Longest registered party that is a string prefix of the DN. *)

type enforcement = {
  bank : t;
  party_of : Grid_gsi.Dn.t -> string option;
}

val enforcement : ?party_of:(Grid_gsi.Dn.t -> string option) -> t -> enforcement
(** Defaults to {!prefix_party_of}. *)
