(** Dynamic account pool: time-limited leases of template accounts to grid
    identities (paper Section 6.1). *)

type lease = {
  lease_id : string;
  account : string;
  holder : Grid_gsi.Dn.t;
  granted_at : Grid_sim.Clock.time;
  mutable expires_at : Grid_sim.Clock.time;
}

type t

type error =
  | Pool_exhausted of { size : int }
  | Unknown_lease of string

val error_to_string : error -> string

val create : ?prefix:string -> size:int -> lease_lifetime:Grid_sim.Clock.time -> unit -> t
(** Accounts are named [<prefix>NNN]. Raises [Invalid_argument] when
    [size <= 0]. *)

val acquire : t -> now:Grid_sim.Clock.time -> holder:Grid_gsi.Dn.t -> (lease, error) result
(** Grant (or renew) a lease for the holder. A holder with a live lease
    gets the same account back. *)

val release : t -> lease_id:string -> (unit, error) result

val expire : t -> now:Grid_sim.Clock.time -> int
(** Reclaim expired leases; returns the number collected. *)

val holder_of : t -> account:string -> now:Grid_sim.Clock.time -> Grid_gsi.Dn.t option

val size : t -> int
val in_use : t -> now:Grid_sim.Clock.time -> int
val available : t -> now:Grid_sim.Clock.time -> int

type stats = { total_grants : int; total_reuses : int; total_exhaustions : int }

val stats : t -> stats
