lib/lrm/lrm.mli: Fmt Grid_sim
