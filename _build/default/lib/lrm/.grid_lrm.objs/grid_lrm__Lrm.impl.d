lib/lrm/lrm.ml: Float Fmt Grid_sim Grid_util Hashtbl List Printf
