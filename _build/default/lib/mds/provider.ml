(* Information providers (the GRIS role).

   Attaches to a GRAM resource and republishes its local state into the
   directory on a fixed period, driven by the simulation engine — the
   moral equivalent of the MDS information provider scripts polling the
   scheduler. *)

type t = {
  directory : Directory.t;
  resource : Grid_gram.Resource.t;
  period : Grid_sim.Clock.time;
  mutable publications : int;
  mutable stopped : bool;
}

let status_of resource ~now =
  let lrm = Grid_gram.Resource.lrm resource in
  { Directory.free_cpus = Grid_lrm.Lrm.free_cpus lrm;
    running_jobs = List.length (Grid_lrm.Lrm.running_jobs lrm);
    pending_jobs = List.length (Grid_lrm.Lrm.pending_jobs lrm);
    published_at = now }

let attach ?(period = 30.0) ?(site = "default") ~directory resource =
  let lrm = Grid_gram.Resource.lrm resource in
  Directory.register directory
    { Directory.resource_name = Grid_gram.Resource.name resource;
      site;
      total_cpus = Grid_lrm.Lrm.capacity lrm;
      queues = Grid_lrm.Lrm.queue_names lrm };
  let engine = Grid_gram.Resource.engine resource in
  let provider = { directory; resource; period; publications = 0; stopped = false } in
  let rec publish () =
    if not provider.stopped then begin
      let now = Grid_sim.Engine.now engine in
      Directory.publish directory
        ~resource_name:(Grid_gram.Resource.name resource)
        (status_of resource ~now);
      provider.publications <- provider.publications + 1;
      Grid_sim.Engine.schedule_after engine period publish
    end
  in
  publish ();
  provider

let stop t = t.stopped <- true

let publish_now t =
  let engine = Grid_gram.Resource.engine t.resource in
  Directory.publish t.directory
    ~resource_name:(Grid_gram.Resource.name t.resource)
    (status_of t.resource ~now:(Grid_sim.Engine.now engine))

let publications t = t.publications
