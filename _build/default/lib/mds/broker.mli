(** Resource broker: discovery-driven site selection with optional
    VO-policy pre-check and fall-through retries. *)

type t

type failure = {
  site : string;
  error : string;
}

type error =
  | No_candidates
  | All_failed of failure list

val error_to_string : error -> string

val create :
  ?precheck:(Grid_policy.Types.request -> bool) ->
  directory:Directory.t ->
  Grid_gram.Resource.t list ->
  t
(** [precheck] is advisory (the resource PEPs stay authoritative): it
    saves doomed submissions when the VO policy already denies. *)

val plan : t -> job:Grid_rsl.Job.t -> Grid_gram.Resource.t list
(** Candidate resources for a job, best (most free cpus) first, from
    fresh directory entries only. *)

val submit :
  t ->
  identity:Grid_gsi.Identity.t ->
  rsl:string ->
  (string * Grid_gram.Protocol.submit_reply, error) result
(** Try candidates in order; returns the winning site name and reply. *)
