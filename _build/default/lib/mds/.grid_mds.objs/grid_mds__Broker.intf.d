lib/mds/broker.mli: Directory Grid_gram Grid_gsi Grid_policy Grid_rsl
