lib/mds/provider.ml: Directory Grid_gram Grid_lrm Grid_sim List
