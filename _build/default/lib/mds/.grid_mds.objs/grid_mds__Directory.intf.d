lib/mds/directory.mli: Fmt Grid_sim
