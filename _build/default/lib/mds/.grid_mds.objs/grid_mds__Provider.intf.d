lib/mds/provider.mli: Directory Grid_gram Grid_sim
