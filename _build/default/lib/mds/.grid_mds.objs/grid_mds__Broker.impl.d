lib/mds/broker.ml: Directory Grid_gram Grid_gsi Grid_policy Grid_rsl Grid_util List Printf
