lib/mds/directory.ml: Fmt Grid_sim Hashtbl List
