(** Information provider: periodically publishes a GRAM resource's state
    into the {!Directory}. *)

type t

val attach :
  ?period:Grid_sim.Clock.time ->
  ?site:string ->
  directory:Directory.t ->
  Grid_gram.Resource.t ->
  t
(** Register the resource and start periodic publication (default every
    30 simulated seconds, starting immediately). *)

val stop : t -> unit
(** Cease publication after the current period. *)

val publish_now : t -> unit
(** Out-of-band immediate publication. *)

val publications : t -> int
