(* The Virtual Organization.

   Holds membership (DN -> groups), the jobtag registry ("at present
   jobtags are statically defined by a policy administrator", Section 5.1),
   per-group usage profiles, and compiles everything into a VO policy: the
   artifact a resource's PEP evaluates alongside the resource owner's own
   policy. *)

type member = {
  dn : Grid_gsi.Dn.t;
  groups : string list;
}

type t = {
  name : string;
  mutable members : member list;
  mutable profiles : Profile.t list;
  mutable jobtags : string list;
  mutable require_jobtag_on_start : bool;
  (* Subject prefix covering all VO members, used for VO-wide
     requirements; None disables prefix-wide statements. *)
  mutable member_prefix : Grid_gsi.Dn.t option;
}

let create ?member_prefix name =
  { name;
    members = [];
    profiles = [];
    jobtags = [];
    require_jobtag_on_start = false;
    member_prefix = Option.map Grid_gsi.Dn.parse member_prefix }

let name t = t.name

let add_member t ~dn ~groups =
  let dn = Grid_gsi.Dn.parse dn in
  if List.exists (fun m -> Grid_gsi.Dn.equal m.dn dn) t.members then
    invalid_arg ("Vo.add_member: already a member: " ^ Grid_gsi.Dn.to_string dn);
  t.members <- t.members @ [ { dn; groups } ]

let remove_member t ~dn =
  t.members <- List.filter (fun m -> not (Grid_gsi.Dn.equal m.dn dn)) t.members

let members t = t.members

let is_member t dn = List.exists (fun m -> Grid_gsi.Dn.equal m.dn dn) t.members

let groups_of t dn =
  match List.find_opt (fun m -> Grid_gsi.Dn.equal m.dn dn) t.members with
  | Some m -> m.groups
  | None -> []

let in_group t dn group = List.mem group (groups_of t dn)

let add_profile t profile =
  if List.exists (fun p -> p.Profile.group = profile.Profile.group) t.profiles then
    invalid_arg ("Vo.add_profile: duplicate profile for group " ^ profile.Profile.group);
  t.profiles <- t.profiles @ [ profile ]

let profiles t = t.profiles

let register_jobtag t tag =
  if not (List.mem tag t.jobtags) then t.jobtags <- t.jobtags @ [ tag ]

let jobtags t = t.jobtags
let jobtag_registered t tag = List.mem tag t.jobtags

let require_jobtag t = t.require_jobtag_on_start <- true

(* --- Policy compilation ---------------------------------------------- *)

let requirement_statements t =
  match (t.require_jobtag_on_start, t.member_prefix) with
  | true, Some prefix ->
    [ { Grid_policy.Types.kind = Grid_policy.Types.Requirement;
        subject_pattern = prefix;
        clauses =
          [ [ { Grid_policy.Types.attribute = "action";
                op = Grid_rsl.Ast.Eq;
                values = [ Grid_policy.Types.Str "start" ] };
              { Grid_policy.Types.attribute = "jobtag";
                op = Grid_rsl.Ast.Neq;
                values = [ Grid_policy.Types.Null ] } ] ] } ]
  | true, None | false, _ -> []

let member_statements t =
  List.filter_map
    (fun m ->
      let clauses =
        List.concat_map
          (fun group ->
            match List.find_opt (fun p -> p.Profile.group = group) t.profiles with
            | Some profile -> Profile.to_clauses profile
            | None -> [])
          m.groups
      in
      if clauses = [] then None
      else
        Some
          { Grid_policy.Types.kind = Grid_policy.Types.Grant;
            subject_pattern = m.dn;
            clauses })
    t.members

let compile_policy t : Grid_policy.Types.t =
  requirement_statements t @ member_statements t

let policy_source t =
  Grid_policy.Combine.source ~name:t.name (compile_policy t)

(* VO-issued credential extension: the VO attests membership and groups by
   adding an extension a CAS-style service can sign into a credential. *)
let membership_extension t dn =
  match List.find_opt (fun m -> Grid_gsi.Dn.equal m.dn dn) t.members with
  | None -> None
  | Some m ->
    Some
      { Grid_gsi.Cert.oid = "vo-membership";
        critical = false;
        payload = Printf.sprintf "%s|%s" t.name (String.concat "," m.groups) }
