lib/vo/profile.ml: Action Grid_policy Grid_rsl List
