lib/vo/profile.mli: Grid_policy
