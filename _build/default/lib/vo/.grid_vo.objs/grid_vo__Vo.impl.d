lib/vo/vo.ml: Grid_gsi Grid_policy Grid_rsl List Option Printf Profile String
