lib/vo/vo.mli: Grid_gsi Grid_policy Profile
