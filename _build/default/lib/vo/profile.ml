(* Group usage profiles.

   Section 2's use case: a VO classifies members into groups with very
   different usage envelopes — developers run many kinds of processes but
   little resource volume; analysts run sanctioned application services at
   scale; administrators manage any VO job. A profile captures one group's
   envelope declaratively; the VO compiles profiles into concrete policy
   statements per member (the policy language addresses users by DN, so
   group membership is resolved at compile time). *)

type start_rule = {
  executables : string list;       (* sanctioned application services *)
  directory : string option;       (* where they must live *)
  jobtag : string option;          (* tag jobs must carry (None: any) *)
  max_count : int option;          (* processor ceiling (exclusive) *)
}

type t = {
  group : string;
  start_rules : start_rule list;
  manage_tags : string list;
    (* jobs tagged with these may be cancelled/queried/signalled *)
  may_manage_own : bool;
    (* grant the GT2-style (jobowner = self) management right *)
}

let start_rule ?directory ?jobtag ?max_count executables =
  { executables; directory; jobtag; max_count }

let make ?(start_rules = []) ?(manage_tags = []) ?(may_manage_own = true) group =
  { group; start_rules; manage_tags; may_manage_own }

(* Compile one profile to the clauses granted to each member of the
   group. *)
let to_clauses (t : t) : Grid_policy.Types.clause list =
  let open Grid_policy.Types in
  let str s = Str s in
  let start_clauses =
    List.map
      (fun rule ->
        let base =
          [ { attribute = "action"; op = Grid_rsl.Ast.Eq; values = [ str "start" ] };
            { attribute = "executable";
              op = Grid_rsl.Ast.Eq;
              values = List.map str rule.executables } ]
        in
        let dir =
          match rule.directory with
          | Some d -> [ { attribute = "directory"; op = Grid_rsl.Ast.Eq; values = [ str d ] } ]
          | None -> []
        in
        let tag =
          match rule.jobtag with
          | Some tg -> [ { attribute = "jobtag"; op = Grid_rsl.Ast.Eq; values = [ str tg ] } ]
          | None -> []
        in
        let count =
          match rule.max_count with
          | Some n ->
            [ { attribute = "count"; op = Grid_rsl.Ast.Lt; values = [ str (string_of_int n) ] } ]
          | None -> []
        in
        base @ dir @ tag @ count)
      t.start_rules
  in
  let manage_clauses =
    List.concat_map
      (fun tag ->
        List.map
          (fun action ->
            [ { attribute = "action";
                op = Grid_rsl.Ast.Eq;
                values = [ str (Action.to_string action) ] };
              { attribute = "jobtag"; op = Grid_rsl.Ast.Eq; values = [ str tag ] } ])
          [ Action.Cancel; Action.Information; Action.Signal ])
      t.manage_tags
  in
  let own_clauses =
    if t.may_manage_own then
      List.map
        (fun action ->
          [ { attribute = "action";
              op = Grid_rsl.Ast.Eq;
              values = [ str (Action.to_string action) ] };
            { attribute = "jobowner"; op = Grid_rsl.Ast.Eq; values = [ Self ] } ])
        [ Action.Cancel; Action.Information; Action.Signal ]
    else []
  in
  start_clauses @ manage_clauses @ own_clauses
