(** Group usage profiles: a VO group's resource-usage envelope, compiled
    into policy clauses per member. *)

type start_rule = {
  executables : string list;
  directory : string option;
  jobtag : string option;
  max_count : int option;  (** exclusive processor ceiling *)
}

type t = {
  group : string;
  start_rules : start_rule list;
  manage_tags : string list;
  may_manage_own : bool;
}

val start_rule :
  ?directory:string -> ?jobtag:string -> ?max_count:int -> string list -> start_rule

val make :
  ?start_rules:start_rule list ->
  ?manage_tags:string list ->
  ?may_manage_own:bool ->
  string ->
  t
(** [may_manage_own] defaults to [true]: members keep the GT2-style right
    to manage their own jobs. *)

val to_clauses : t -> Grid_policy.Types.clause list
