(** The Virtual Organization: membership, group profiles, jobtag registry,
    and compilation into a VO policy for resource-side PEPs. *)

type member = {
  dn : Grid_gsi.Dn.t;
  groups : string list;
}

type t

val create : ?member_prefix:string -> string -> t
(** [create ~member_prefix name]: [member_prefix] is the DN prefix covering
    all members, enabling VO-wide requirement statements. *)

val name : t -> string

val add_member : t -> dn:string -> groups:string list -> unit
(** Raises [Invalid_argument] on duplicate membership. *)

val remove_member : t -> dn:Grid_gsi.Dn.t -> unit
val members : t -> member list
val is_member : t -> Grid_gsi.Dn.t -> bool
val groups_of : t -> Grid_gsi.Dn.t -> string list
val in_group : t -> Grid_gsi.Dn.t -> string -> bool

val add_profile : t -> Profile.t -> unit
(** Raises [Invalid_argument] on a duplicate group profile. *)

val profiles : t -> Profile.t list

val register_jobtag : t -> string -> unit
(** Statically register a jobtag (idempotent). *)

val jobtags : t -> string list
val jobtag_registered : t -> string -> bool

val require_jobtag : t -> unit
(** Require every member start request to carry a jobtag (compiles to the
    Figure 3 requirement statement; needs [member_prefix]). *)

val compile_policy : t -> Grid_policy.Types.t
(** Requirements first, then per-member grants from group profiles. *)

val policy_source : t -> Grid_policy.Combine.source

val membership_extension : t -> Grid_gsi.Dn.t -> Grid_gsi.Cert.extension option
(** Certificate extension attesting VO membership and groups. *)
