lib/util/ids.mli: Fmt
