lib/util/rng.mli:
