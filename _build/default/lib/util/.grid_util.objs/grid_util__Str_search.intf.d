lib/util/str_search.mli:
