lib/util/ids.ml: Fmt Printf String
