lib/util/str_search.ml: String
