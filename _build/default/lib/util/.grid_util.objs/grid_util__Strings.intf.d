lib/util/strings.mli:
