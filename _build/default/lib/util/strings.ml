(* Small string utilities shared by the parsers and config readers. *)

let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let strip s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && is_space s.[!i] do incr i done;
  let j = ref (n - 1) in
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let split_on_char c s = String.split_on_char c s

let split_whitespace s =
  String.split_on_char ' ' (String.map (fun c -> if is_space c then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

(* Strip a trailing comment introduced by [#] outside of any quotes. *)
let strip_comment line =
  let buf = Buffer.create (String.length line) in
  let in_quote = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then in_quote := not !in_quote;
         if c = '#' && not !in_quote then raise Exit;
         Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let lines s = String.split_on_char '\n' s

(* Non-comment, non-blank lines of a config text, with line numbers
   (1-based) preserved for error reporting. *)
let config_lines text =
  lines text
  |> List.mapi (fun i line -> (i + 1, strip (strip_comment line)))
  |> List.filter (fun (_, line) -> line <> "")

let concat_map sep f xs = String.concat sep (List.map f xs)
