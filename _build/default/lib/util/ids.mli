(** Deterministic unique identifiers.

    The whole system runs inside a deterministic simulator, so identifiers
    are drawn from a process-global counter rather than from wall-clock or
    randomness. [reset] restores the counter, which tests use to obtain
    reproducible ids. *)

type t = string

val reset : unit -> unit
(** Reset the global counter. Intended for test setup only. *)

val fresh : string -> t
(** [fresh prefix] returns [prefix ^ "-" ^ n] for a fresh [n]. *)

val job : unit -> t
(** Fresh job identifier ([job-NNNNNN]). *)

val lease : unit -> t
(** Fresh dynamic-account lease identifier. *)

val request : unit -> t
(** Fresh request identifier, used to correlate audit records. *)

val contact : unit -> t
(** Fresh job-manager contact string (the GRAM "job contact"). *)

val pp : t Fmt.t
val equal : t -> t -> bool
val compare : t -> t -> int
