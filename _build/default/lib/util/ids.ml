(* Generation of unique, human-readable identifiers.

   Jobs, credentials, leases and audit records all need identifiers that are
   unique within a run and stable across runs with the same seed (the
   simulator is deterministic, so identifiers must be too — no wall-clock or
   PID entropy). *)

type t = string

let counter = ref 0

let reset () = counter := 0

let fresh prefix =
  incr counter;
  Printf.sprintf "%s-%06d" prefix !counter

let job () = fresh "job"
let lease () = fresh "lease"
let request () = fresh "req"
let contact () = fresh "jmi"

let pp = Fmt.string
let equal = String.equal
let compare = String.compare
