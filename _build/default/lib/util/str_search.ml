(* Substring search (naive; inputs are small config/policy texts). *)

let find (haystack : string) ~from (needle : string) : int option =
  let hn = String.length haystack and nn = String.length needle in
  if nn = 0 then Some from
  else begin
    let limit = hn - nn in
    let rec go i =
      if i > limit then None
      else if String.sub haystack i nn = needle then Some i
      else go (i + 1)
    in
    go (max 0 from)
  end

let contains haystack needle = find haystack ~from:0 needle <> None
