(** Deterministic pseudo-random number generator (SplitMix64).

    Explicit-state PRNG used by workload generators and the latency model so
    that simulations are reproducible given a seed. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice. Raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)
