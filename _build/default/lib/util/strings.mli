(** String helpers shared by the RSL/policy/config parsers. *)

val is_space : char -> bool

val strip : string -> string
(** Remove leading and trailing whitespace. *)

val starts_with : prefix:string -> string -> bool

val split_on_char : char -> string -> string list

val split_whitespace : string -> string list
(** Split on runs of whitespace, dropping empty tokens. *)

val strip_comment : string -> string
(** Remove a ['#'] comment, respecting double-quoted regions. *)

val lines : string -> string list

val config_lines : string -> (int * string) list
(** Lines of a config text that remain after comment/blank stripping, each
    paired with its 1-based line number. *)

val concat_map : string -> ('a -> string) -> 'a list -> string
