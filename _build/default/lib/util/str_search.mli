(** Substring search. *)

val find : string -> from:int -> string -> int option
(** [find haystack ~from needle] is the index of the first occurrence of
    [needle] at or after [from]. *)

val contains : string -> string -> bool
