test/test_lrm.ml: Alcotest Engine Grid_lrm Grid_sim Grid_util List QCheck QCheck_alcotest
