test/test_xacml.mli:
