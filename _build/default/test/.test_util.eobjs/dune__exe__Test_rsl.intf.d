test/test_rsl.mli:
