test/test_audit.ml: Alcotest Fmt Grid_audit Grid_gsi Grid_util List Printf String
