test/test_gsi.ml: Alcotest Authn Ca Cert Credential Dn Grid_crypto Grid_gsi Grid_util Gridmap Identity List Printf QCheck QCheck_alcotest Renewal String
