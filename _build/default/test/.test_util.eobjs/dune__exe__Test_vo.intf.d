test/test_vo.mli:
