test/test_util.ml: Alcotest Grid_util Ids List QCheck QCheck_alcotest Rng String Strings
