test/test_callout.mli:
