test/test_cas.mli:
