test/test_mds.ml: Alcotest Callout Core Fusion Gram Grid_sim Gsi List Mds Policy Printf String Testbed
