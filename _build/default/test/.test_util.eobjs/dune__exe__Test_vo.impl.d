test/test_vo.ml: Alcotest Grid_gsi Grid_policy Grid_rsl Grid_vo List Profile Vo
