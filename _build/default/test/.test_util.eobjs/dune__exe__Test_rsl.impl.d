test/test_rsl.ml: Alcotest Ast Grid_rsl Job List Parser Printf QCheck QCheck_alcotest String
