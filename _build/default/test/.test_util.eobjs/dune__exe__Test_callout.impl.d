test/test_callout.ml: Alcotest Callout Config File_pep Grid_callout Grid_gsi Grid_policy Grid_rsl Grid_util List Registry
