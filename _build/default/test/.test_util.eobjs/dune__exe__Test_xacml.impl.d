test/test_xacml.ml: Alcotest Eval Figure3 Grid_gsi Grid_policy Grid_rsl List Printf QCheck QCheck_alcotest Types Xacml Xml_lite
