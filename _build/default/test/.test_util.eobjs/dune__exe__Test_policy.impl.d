test/test_policy.ml: Alcotest Combine Eval Figure3 Fmt Grid_gsi Grid_policy Grid_rsl Grid_util Lint List Option Parse Printf QCheck QCheck_alcotest Query Result String Types
