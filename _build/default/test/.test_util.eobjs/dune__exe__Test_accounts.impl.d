test/test_accounts.ml: Alcotest Allocation Grid_accounts Grid_gsi Grid_policy Grid_rsl Grid_util List Mapper Option Pool Printf QCheck QCheck_alcotest Result Sandbox
