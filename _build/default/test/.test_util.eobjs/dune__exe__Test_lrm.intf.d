test/test_lrm.mli:
