test/test_core.ml: Alcotest Audit Callout Cas Core Fusion Gram Grid_audit Grid_gsi Grid_sim Grid_util Gsi List Lrm Result Testbed Workload
