test/test_accounts.mli:
