test/test_gram.mli:
