test/test_akenti.ml: Akenti_pep Alcotest Attr_cert Engine Grid_akenti Grid_callout Grid_crypto Grid_gsi Grid_policy Grid_rsl Grid_util List Use_condition
