test/test_gsi.mli:
