test/test_cas.ml: Alcotest Capability Grid_callout Grid_cas Grid_crypto Grid_gsi Grid_policy Grid_rsl Grid_util Grid_vo List Pep Result Server String
