test/test_akenti.mli:
