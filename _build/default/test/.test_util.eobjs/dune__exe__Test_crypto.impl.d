test/test_crypto.ml: Alcotest Base64 Grid_crypto Hex Hmac Keypair QCheck QCheck_alcotest Sha256 String
