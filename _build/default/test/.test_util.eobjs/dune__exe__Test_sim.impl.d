test/test_sim.ml: Alcotest Clock Engine Grid_sim Grid_util List Network QCheck QCheck_alcotest Trace
