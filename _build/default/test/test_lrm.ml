(* Tests for grid_lrm: scheduling, lifecycle, suspension, walltime,
   priorities, invariants. *)

open Grid_sim

let make ?(nodes = 2) ?(cpus = 4) ?queues () =
  Grid_util.Ids.reset ();
  let engine = Engine.create () in
  let lrm = Grid_lrm.Lrm.create ?queues ~nodes ~cpus_per_node:cpus engine in
  (engine, lrm)

let spec ?(account = "user1") ?(cpus = 1) ?(duration = 10.0) ?walltime ?queue () =
  { Grid_lrm.Lrm.account; cpus; duration; walltime_limit = walltime; queue }

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected LRM error: %s" (Grid_lrm.Lrm.error_to_string e)

let state_of lrm id = (ok (Grid_lrm.Lrm.query lrm id)).Grid_lrm.Lrm.job_state

let check_state msg lrm id expected =
  Alcotest.(check string) msg
    (Grid_lrm.Lrm.state_to_string expected)
    (Grid_lrm.Lrm.state_to_string (state_of lrm id))

let test_submit_runs_and_completes () =
  let engine, lrm = make () in
  let id = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:10.0 ())) in
  check_state "starts immediately" lrm id Grid_lrm.Lrm.Running;
  Engine.run_until engine 5.0;
  check_state "still running" lrm id Grid_lrm.Lrm.Running;
  Engine.run_until engine 10.5;
  check_state "completed" lrm id Grid_lrm.Lrm.Completed;
  Alcotest.(check int) "cpus freed" 0 (Grid_lrm.Lrm.cpus_in_use lrm)

let test_queueing_when_full () =
  let engine, lrm = make ~nodes:1 ~cpus:2 () in
  let a = ok (Grid_lrm.Lrm.submit lrm (spec ~cpus:2 ~duration:10.0 ())) in
  let b = ok (Grid_lrm.Lrm.submit lrm (spec ~cpus:2 ~duration:5.0 ())) in
  check_state "a running" lrm a Grid_lrm.Lrm.Running;
  check_state "b pending" lrm b Grid_lrm.Lrm.Pending;
  Engine.run_until engine 10.5;
  check_state "a done" lrm a Grid_lrm.Lrm.Completed;
  check_state "b now running" lrm b Grid_lrm.Lrm.Running;
  Engine.run engine;
  check_state "b done" lrm b Grid_lrm.Lrm.Completed

let test_jobs_span_nodes () =
  let _, lrm = make ~nodes:2 ~cpus:4 () in
  let id = ok (Grid_lrm.Lrm.submit lrm (spec ~cpus:6 ~duration:5.0 ())) in
  check_state "6-cpu job spans two 4-cpu nodes" lrm id Grid_lrm.Lrm.Running;
  Alcotest.(check int) "six in use" 6 (Grid_lrm.Lrm.cpus_in_use lrm);
  Alcotest.(check bool) "invariant" true (Grid_lrm.Lrm.invariant_holds lrm)

let test_too_many_cpus_rejected () =
  let _, lrm = make ~nodes:1 ~cpus:2 () in
  match Grid_lrm.Lrm.submit lrm (spec ~cpus:3 ()) with
  | Error (Grid_lrm.Lrm.Too_many_cpus _) -> ()
  | _ -> Alcotest.fail "oversized job accepted"

let test_unknown_queue_rejected () =
  let _, lrm = make () in
  match Grid_lrm.Lrm.submit lrm (spec ~queue:"nope" ()) with
  | Error (Grid_lrm.Lrm.Unknown_queue "nope") -> ()
  | _ -> Alcotest.fail "unknown queue accepted"

let test_cancel_pending_and_running () =
  let engine, lrm = make ~nodes:1 ~cpus:1 () in
  let a = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:10.0 ())) in
  let b = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:10.0 ())) in
  ignore (ok (Grid_lrm.Lrm.cancel lrm b));
  check_state "pending job cancelled" lrm b Grid_lrm.Lrm.Cancelled;
  ignore (ok (Grid_lrm.Lrm.cancel lrm a));
  check_state "running job cancelled" lrm a Grid_lrm.Lrm.Cancelled;
  Alcotest.(check int) "cpus freed" 0 (Grid_lrm.Lrm.cpus_in_use lrm);
  Engine.run engine;
  check_state "stays cancelled" lrm a Grid_lrm.Lrm.Cancelled;
  (* Cancelling again is an invalid transition. *)
  match Grid_lrm.Lrm.cancel lrm a with
  | Error (Grid_lrm.Lrm.Invalid_transition _) -> ()
  | _ -> Alcotest.fail "double cancel accepted"

let test_suspend_resume_preserves_progress () =
  let engine, lrm = make ~nodes:1 ~cpus:1 () in
  let id = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:10.0 ())) in
  Engine.run_until engine 4.0;
  ignore (ok (Grid_lrm.Lrm.suspend lrm id));
  check_state "suspended" lrm id Grid_lrm.Lrm.Suspended;
  Alcotest.(check (float 1e-6)) "6s of compute left" 6.0
    (ok (Grid_lrm.Lrm.query lrm id)).Grid_lrm.Lrm.job_remaining;
  Alcotest.(check int) "cpus freed while suspended" 0 (Grid_lrm.Lrm.cpus_in_use lrm);
  Engine.run_until engine 100.0;
  check_state "stays suspended" lrm id Grid_lrm.Lrm.Suspended;
  ignore (ok (Grid_lrm.Lrm.resume lrm id));
  check_state "running again" lrm id Grid_lrm.Lrm.Running;
  Engine.run_until engine 105.9;
  check_state "not yet done" lrm id Grid_lrm.Lrm.Running;
  Engine.run_until engine 106.1;
  check_state "completed after remaining 6s" lrm id Grid_lrm.Lrm.Completed

let test_suspend_frees_capacity_for_other_jobs () =
  (* The SC02 scenario mechanics: suspending a long job lets a
     high-priority job run immediately. *)
  let engine, lrm = make ~nodes:1 ~cpus:2 () in
  let long = ok (Grid_lrm.Lrm.submit lrm (spec ~cpus:2 ~duration:1000.0 ())) in
  let urgent = ok (Grid_lrm.Lrm.submit lrm (spec ~cpus:2 ~duration:5.0 ())) in
  check_state "urgent waits" lrm urgent Grid_lrm.Lrm.Pending;
  ignore (ok (Grid_lrm.Lrm.suspend lrm long));
  check_state "urgent runs after suspension" lrm urgent Grid_lrm.Lrm.Running;
  Engine.run_until engine 6.0;
  check_state "urgent done" lrm urgent Grid_lrm.Lrm.Completed;
  ignore (ok (Grid_lrm.Lrm.resume lrm long));
  check_state "long resumes" lrm long Grid_lrm.Lrm.Running

let test_stale_completion_event_ignored () =
  (* Suspend before the original completion event fires: the stale event
     must not complete the job. *)
  let engine, lrm = make ~nodes:1 ~cpus:1 () in
  let id = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:10.0 ())) in
  Engine.run_until engine 2.0;
  ignore (ok (Grid_lrm.Lrm.suspend lrm id));
  Engine.run_until engine 50.0;
  check_state "stale event did not complete the job" lrm id Grid_lrm.Lrm.Suspended

let test_walltime_kill () =
  let engine, lrm = make () in
  let id = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:100.0 ~walltime:30.0 ())) in
  Engine.run_until engine 29.0;
  check_state "running before limit" lrm id Grid_lrm.Lrm.Running;
  Engine.run_until engine 31.0;
  match state_of lrm id with
  | Grid_lrm.Lrm.Killed _ -> ()
  | s -> Alcotest.failf "expected kill, got %s" (Grid_lrm.Lrm.state_to_string s)

let test_walltime_survives_suspension () =
  let engine, lrm = make () in
  let id = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:100.0 ~walltime:30.0 ())) in
  Engine.run_until engine 20.0;
  ignore (ok (Grid_lrm.Lrm.suspend lrm id));
  Engine.run_until engine 500.0;
  ignore (ok (Grid_lrm.Lrm.resume lrm id));
  (* 20 s of the 30 s budget consumed; 10 left. *)
  Engine.run_until engine 509.0;
  check_state "within remaining budget" lrm id Grid_lrm.Lrm.Running;
  Engine.run_until engine 511.0;
  (match state_of lrm id with
  | Grid_lrm.Lrm.Killed _ -> ()
  | s -> Alcotest.failf "expected kill, got %s" (Grid_lrm.Lrm.state_to_string s))

let test_queue_walltime_cap () =
  let engine, lrm = make () in
  let id = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:1e6 ~queue:"priority" ())) in
  (* default "priority" queue caps walltime at 7200 s *)
  Engine.run_until engine 7300.0;
  match state_of lrm id with
  | Grid_lrm.Lrm.Killed _ -> ()
  | s -> Alcotest.failf "expected queue-cap kill, got %s" (Grid_lrm.Lrm.state_to_string s)

let test_priority_queue_scheduled_first () =
  let engine, lrm = make ~nodes:1 ~cpus:1 () in
  let _running = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:10.0 ())) in
  let batch = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:5.0 ())) in
  let urgent = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:5.0 ~queue:"priority" ())) in
  Engine.run_until engine 10.5;
  check_state "priority queue preempts batch in queue order" lrm urgent Grid_lrm.Lrm.Running;
  check_state "batch still waits" lrm batch Grid_lrm.Lrm.Pending

let test_set_priority_reorders () =
  let engine, lrm = make ~nodes:1 ~cpus:1 () in
  let _running = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:10.0 ())) in
  let first = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:5.0 ())) in
  let second = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:5.0 ())) in
  ignore (ok (Grid_lrm.Lrm.set_priority lrm second 5));
  Engine.run_until engine 10.5;
  check_state "boosted job overtakes" lrm second Grid_lrm.Lrm.Running;
  check_state "first-come job waits" lrm first Grid_lrm.Lrm.Pending

let test_events_observed () =
  let engine, lrm = make () in
  let transitions = ref [] in
  Grid_lrm.Lrm.on_event lrm (fun (Grid_lrm.Lrm.State_changed { job; _ }) ->
      transitions := Grid_lrm.Lrm.state_to_string job.Grid_lrm.Lrm.state :: !transitions);
  let _id = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:5.0 ())) in
  Engine.run engine;
  Alcotest.(check (list string)) "observed lifecycle" [ "pending"; "running"; "completed" ]
    (List.rev !transitions)

let test_zero_duration_job () =
  let engine, lrm = make () in
  let id = ok (Grid_lrm.Lrm.submit lrm (spec ~duration:0.0 ())) in
  Engine.run engine;
  check_state "zero-duration job completes" lrm id Grid_lrm.Lrm.Completed

let qcheck_no_oversubscription =
  QCheck.Test.make ~name:"scheduler never oversubscribes cpus" ~count:60
    QCheck.(pair (int_range 1 50) small_int)
    (fun (njobs, seed) ->
      Grid_util.Ids.reset ();
      let engine = Engine.create () in
      let lrm = Grid_lrm.Lrm.create ~nodes:3 ~cpus_per_node:4 engine in
      let rng = Grid_util.Rng.create ~seed in
      let ok = ref true in
      Grid_lrm.Lrm.on_event lrm (fun _ ->
          if not (Grid_lrm.Lrm.invariant_holds lrm) then ok := false);
      for _ = 1 to njobs do
        let cpus = 1 + Grid_util.Rng.int rng 12 in
        let duration = Grid_util.Rng.float rng 50.0 in
        ignore
          (Grid_lrm.Lrm.submit lrm
             { Grid_lrm.Lrm.account = "acct"; cpus; duration; walltime_limit = None;
               queue = None })
      done;
      Engine.run engine;
      !ok && Grid_lrm.Lrm.invariant_holds lrm && Grid_lrm.Lrm.cpus_in_use lrm = 0)

let qcheck_all_jobs_terminate =
  QCheck.Test.make ~name:"every accepted job reaches a terminal state" ~count:60
    QCheck.(pair (int_range 1 40) small_int)
    (fun (njobs, seed) ->
      Grid_util.Ids.reset ();
      let engine = Engine.create () in
      let lrm = Grid_lrm.Lrm.create ~nodes:2 ~cpus_per_node:4 engine in
      let rng = Grid_util.Rng.create ~seed in
      let ids = ref [] in
      for _ = 1 to njobs do
        let cpus = 1 + Grid_util.Rng.int rng 8 in
        let duration = Grid_util.Rng.float rng 20.0 in
        let walltime = if Grid_util.Rng.bool rng then Some (Grid_util.Rng.float rng 25.0) else None in
        match
          Grid_lrm.Lrm.submit lrm
            { Grid_lrm.Lrm.account = "acct"; cpus; duration; walltime_limit = walltime;
              queue = None }
        with
        | Ok id -> ids := id :: !ids
        | Error _ -> ()
      done;
      Engine.run engine;
      List.for_all
        (fun id ->
          match Grid_lrm.Lrm.query lrm id with
          | Ok { Grid_lrm.Lrm.job_state = Completed | Killed _; _ } -> true
          | _ -> false)
        !ids)

let () =
  Alcotest.run "grid_lrm"
    [ ( "lifecycle",
        [ Alcotest.test_case "submit/run/complete" `Quick test_submit_runs_and_completes;
          Alcotest.test_case "queueing when full" `Quick test_queueing_when_full;
          Alcotest.test_case "spans nodes" `Quick test_jobs_span_nodes;
          Alcotest.test_case "too many cpus" `Quick test_too_many_cpus_rejected;
          Alcotest.test_case "unknown queue" `Quick test_unknown_queue_rejected;
          Alcotest.test_case "cancel" `Quick test_cancel_pending_and_running;
          Alcotest.test_case "zero duration" `Quick test_zero_duration_job;
          Alcotest.test_case "events" `Quick test_events_observed ] );
      ( "suspension",
        [ Alcotest.test_case "suspend/resume progress" `Quick
            test_suspend_resume_preserves_progress;
          Alcotest.test_case "frees capacity" `Quick test_suspend_frees_capacity_for_other_jobs;
          Alcotest.test_case "stale completion" `Quick test_stale_completion_event_ignored ] );
      ( "walltime",
        [ Alcotest.test_case "kill at limit" `Quick test_walltime_kill;
          Alcotest.test_case "budget survives suspension" `Quick
            test_walltime_survives_suspension;
          Alcotest.test_case "queue cap" `Quick test_queue_walltime_cap ] );
      ( "priorities",
        [ Alcotest.test_case "priority queue first" `Quick test_priority_queue_scheduled_first;
          Alcotest.test_case "set_priority reorders" `Quick test_set_priority_reorders ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_no_oversubscription;
          QCheck_alcotest.to_alcotest qcheck_all_jobs_terminate ] ) ]
