(* Tests for grid_util: ids, rng, strings. *)

open Grid_util

let test_ids_fresh_unique () =
  Ids.reset ();
  let a = Ids.fresh "x" and b = Ids.fresh "x" in
  Alcotest.(check bool) "distinct" false (String.equal a b);
  Alcotest.(check string) "prefix" "x-000001" a

let test_ids_reset () =
  Ids.reset ();
  let a = Ids.fresh "job" in
  Ids.reset ();
  let b = Ids.fresh "job" in
  Alcotest.(check string) "reset restores counter" a b

let test_ids_kinds () =
  Ids.reset ();
  Alcotest.(check bool) "job prefix" true (Strings.starts_with ~prefix:"job-" (Ids.job ()));
  Alcotest.(check bool) "lease prefix" true (Strings.starts_with ~prefix:"lease-" (Ids.lease ()));
  Alcotest.(check bool) "req prefix" true (Strings.starts_with ~prefix:"req-" (Ids.request ()));
  Alcotest.(check bool) "jmi prefix" true (Strings.starts_with ~prefix:"jmi-" (Ids.contact ()))

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let sa = List.init 20 (fun _ -> Rng.int a 1000000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "different streams" false (sa = sb)

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_invalid_bound () =
  let r = Rng.create ~seed:7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_pick () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 50 do
    let v = Rng.pick r [ 1; 2; 3 ] in
    Alcotest.(check bool) "picked member" true (List.mem v [ 1; 2; 3 ])
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:11 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_strings_strip () =
  Alcotest.(check string) "strips both ends" "abc" (Strings.strip "  abc\t\n");
  Alcotest.(check string) "all space" "" (Strings.strip "   ");
  Alcotest.(check string) "empty" "" (Strings.strip "")

let test_strings_starts_with () =
  Alcotest.(check bool) "yes" true (Strings.starts_with ~prefix:"ab" "abc");
  Alcotest.(check bool) "no" false (Strings.starts_with ~prefix:"b" "abc");
  Alcotest.(check bool) "empty prefix" true (Strings.starts_with ~prefix:"" "abc");
  Alcotest.(check bool) "longer prefix" false (Strings.starts_with ~prefix:"abcd" "abc")

let test_strings_strip_comment () =
  Alcotest.(check string) "plain" "a b " (Strings.strip_comment "a b # c");
  Alcotest.(check string) "quoted hash survives" {|"a#b" c|}
    (Strings.strip_comment {|"a#b" c|});
  Alcotest.(check string) "no comment" "abc" (Strings.strip_comment "abc")

let test_strings_config_lines () =
  let text = "# header\n\n  line one # trailing\nline two\n   \n" in
  Alcotest.(check (list (pair int string)))
    "numbered non-blank lines"
    [ (3, "line one"); (4, "line two") ]
    (Strings.config_lines text)

let test_strings_split_whitespace () =
  Alcotest.(check (list string)) "mixed separators" [ "a"; "b"; "c" ]
    (Strings.split_whitespace " a\tb  \n c ")

let qcheck_shuffle_preserves =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let r = Rng.create ~seed in
      List.sort compare (Rng.shuffle r xs) = List.sort compare xs)

let qcheck_strip_idempotent =
  QCheck.Test.make ~name:"strip idempotent" ~count:500 QCheck.string (fun s ->
      Strings.strip (Strings.strip s) = Strings.strip s)

let () =
  Alcotest.run "grid_util"
    [ ( "ids",
        [ Alcotest.test_case "fresh unique" `Quick test_ids_fresh_unique;
          Alcotest.test_case "reset" `Quick test_ids_reset;
          Alcotest.test_case "kinds" `Quick test_ids_kinds ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "invalid bound" `Quick test_rng_invalid_bound;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest qcheck_shuffle_preserves ] );
      ( "strings",
        [ Alcotest.test_case "strip" `Quick test_strings_strip;
          Alcotest.test_case "starts_with" `Quick test_strings_starts_with;
          Alcotest.test_case "strip_comment" `Quick test_strings_strip_comment;
          Alcotest.test_case "config_lines" `Quick test_strings_config_lines;
          Alcotest.test_case "split_whitespace" `Quick test_strings_split_whitespace;
          QCheck_alcotest.to_alcotest qcheck_strip_idempotent ] ) ]
