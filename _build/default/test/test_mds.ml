(* Tests for grid_mds: directory registration/publication/queries with
   TTL, the periodic provider, and the broker's plan/submit logic. *)

open Core

let build_two_sites () =
  let tb = Testbed.create () in
  let gridmap = Gsi.Gridmap.parse (Printf.sprintf "%S kate\n" Fusion.kate_keahey) in
  let big =
    Testbed.make_resource tb ~name:"big-site" ~nodes:8 ~cpus_per_node:8 ~gridmap
      ~backend:(Custom Callout.Callout.permit_all)
  in
  let small =
    Testbed.make_resource tb ~name:"small-site" ~nodes:1 ~cpus_per_node:2 ~gridmap
      ~backend:(Custom Callout.Callout.permit_all)
  in
  let kate = Testbed.add_user tb Fusion.kate_keahey in
  (tb, big, small, kate)

(* --- Directory -------------------------------------------------------------- *)

let test_directory_register_publish_query () =
  let tb = Testbed.create () in
  let dir = Mds.Directory.create (Testbed.engine tb) in
  Mds.Directory.register dir
    { Mds.Directory.resource_name = "a"; site = "anl"; total_cpus = 64; queues = [ "batch" ] };
  Mds.Directory.register dir
    { Mds.Directory.resource_name = "b"; site = "nersc"; total_cpus = 16; queues = [ "batch"; "priority" ] };
  Mds.Directory.publish dir ~resource_name:"a"
    { Mds.Directory.free_cpus = 10; running_jobs = 5; pending_jobs = 0; published_at = 0.0 };
  Mds.Directory.publish dir ~resource_name:"b"
    { Mds.Directory.free_cpus = 16; running_jobs = 0; pending_jobs = 0; published_at = 0.0 };
  let all = Mds.Directory.query dir in
  Alcotest.(check int) "both fresh" 2 (List.length all);
  (match all with
  | first :: _ ->
    Alcotest.(check string) "most free first" "b" first.Mds.Directory.info.Mds.Directory.resource_name
  | [] -> Alcotest.fail "empty");
  Alcotest.(check int) "min_free filter" 1
    (List.length (Mds.Directory.query ~min_free_cpus:12 dir));
  Alcotest.(check int) "queue filter" 1
    (List.length (Mds.Directory.query ~queue:"priority" dir));
  Alcotest.(check int) "site filter" 1 (List.length (Mds.Directory.query ~site:"anl" dir))

let test_directory_ttl () =
  let tb = Testbed.create () in
  let engine = Testbed.engine tb in
  let dir = Mds.Directory.create ~ttl:10.0 engine in
  Mds.Directory.register dir
    { Mds.Directory.resource_name = "a"; site = "x"; total_cpus = 4; queues = [] };
  Mds.Directory.publish dir ~resource_name:"a"
    { Mds.Directory.free_cpus = 4; running_jobs = 0; pending_jobs = 0; published_at = 0.0 };
  Alcotest.(check int) "fresh now" 1 (List.length (Mds.Directory.query dir));
  Grid_sim.Engine.run_until engine 11.0;
  Alcotest.(check int) "stale after ttl" 0 (List.length (Mds.Directory.query dir));
  Alcotest.(check int) "stale included when asked" 1
    (List.length (Mds.Directory.query ~fresh_only:false dir))

let test_directory_errors () =
  let tb = Testbed.create () in
  let dir = Mds.Directory.create (Testbed.engine tb) in
  Mds.Directory.register dir
    { Mds.Directory.resource_name = "a"; site = "x"; total_cpus = 4; queues = [] };
  Alcotest.(check bool) "duplicate registration raises" true
    (try
       Mds.Directory.register dir
         { Mds.Directory.resource_name = "a"; site = "x"; total_cpus = 4; queues = [] };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "publish unregistered raises" true
    (try
       Mds.Directory.publish dir ~resource_name:"nope"
         { Mds.Directory.free_cpus = 0; running_jobs = 0; pending_jobs = 0; published_at = 0.0 };
       false
     with Invalid_argument _ -> true)

(* --- Provider ------------------------------------------------------------------ *)

let test_provider_publishes_periodically () =
  let tb, big, _small, kate = build_two_sites () in
  let engine = Testbed.engine tb in
  let dir = Mds.Directory.create ~ttl:100.0 engine in
  let provider = Mds.Provider.attach ~period:30.0 ~site:"anl" ~directory:dir big in
  (* Initial publication happened at attach. *)
  Alcotest.(check int) "initial" 1 (Mds.Provider.publications provider);
  (* Submit a job and advance time: subsequent publications see usage. *)
  let client = Testbed.client tb ~user:kate ~resource:big in
  (match Gram.Client.submit_sync client ~rsl:"&(executable=x)(count=8)(simduration=500)" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "submit: %s" (Gram.Protocol.submit_error_to_string e));
  Grid_sim.Engine.run_until engine 65.0;
  Alcotest.(check bool) "published again" true (Mds.Provider.publications provider >= 3);
  (match Mds.Directory.lookup dir "big-site" with
  | Some { Mds.Directory.latest = Some s; _ } ->
    Alcotest.(check int) "usage visible" (64 - 8) s.Mds.Directory.free_cpus
  | _ -> Alcotest.fail "no status");
  Mds.Provider.stop provider;
  let before = Mds.Provider.publications provider in
  Grid_sim.Engine.run_until engine 300.0;
  Alcotest.(check bool) "stopped" true (Mds.Provider.publications provider <= before + 1)

(* --- Broker -------------------------------------------------------------------- *)

let test_broker_picks_fitting_site () =
  let tb, big, small, kate = build_two_sites () in
  let dir = Mds.Directory.create (Testbed.engine tb) in
  let _pb = Mds.Provider.attach ~directory:dir ~site:"anl" big in
  let _ps = Mds.Provider.attach ~directory:dir ~site:"nersc" small in
  let broker = Mds.Broker.create ~directory:dir [ big; small ] in
  (* 8 cpus only fit the big site. *)
  (match Mds.Broker.submit broker ~identity:kate ~rsl:"&(executable=x)(count=8)" with
  | Ok (site, _) -> Alcotest.(check string) "big site chosen" "big-site" site
  | Error e -> Alcotest.failf "broker: %s" (Mds.Broker.error_to_string e));
  (* 100 cpus fit nowhere. *)
  match Mds.Broker.submit broker ~identity:kate ~rsl:"&(executable=x)(count=100)" with
  | Error Mds.Broker.No_candidates -> ()
  | _ -> Alcotest.fail "impossible job placed"

let test_broker_falls_through_on_refusal () =
  (* The directory says the big site has room, but its PEP refuses the
     user; the broker must fall through to the small site. *)
  let tb = Testbed.create () in
  let gridmap = Gsi.Gridmap.parse (Printf.sprintf "%S kate\n" Fusion.kate_keahey) in
  let choosy =
    Testbed.make_resource tb ~name:"choosy" ~nodes:8 ~cpus_per_node:8 ~gridmap
      ~backend:(Custom (Callout.Callout.deny_all ~reason:"not here"))
  in
  let open_site =
    Testbed.make_resource tb ~name:"open" ~nodes:1 ~cpus_per_node:4 ~gridmap
      ~backend:(Custom Callout.Callout.permit_all)
  in
  let dir = Mds.Directory.create (Testbed.engine tb) in
  let _p1 = Mds.Provider.attach ~directory:dir ~site:"a" choosy in
  let _p2 = Mds.Provider.attach ~directory:dir ~site:"b" open_site in
  let kate = Testbed.add_user tb Fusion.kate_keahey in
  let broker = Mds.Broker.create ~directory:dir [ choosy; open_site ] in
  match Mds.Broker.submit broker ~identity:kate ~rsl:"&(executable=x)(count=2)" with
  | Ok (site, _) -> Alcotest.(check string) "fell through" "open" site
  | Error e -> Alcotest.failf "broker: %s" (Mds.Broker.error_to_string e)

let test_broker_precheck_blocks_doomed_submission () =
  let tb, big, small, kate = build_two_sites () in
  let dir = Mds.Directory.create (Testbed.engine tb) in
  let _p = Mds.Provider.attach ~directory:dir ~site:"anl" big in
  let _p2 = Mds.Provider.attach ~directory:dir ~site:"nersc" small in
  let vo_policy =
    Policy.Parse.parse (Fusion.kate_keahey ^ ": &(action = start)(executable = TRANSP)")
  in
  let precheck request = Policy.Eval.is_permit (Policy.Eval.evaluate vo_policy request) in
  let broker = Mds.Broker.create ~precheck ~directory:dir [ big; small ] in
  (match Mds.Broker.submit broker ~identity:kate ~rsl:"&(executable=TRANSP)" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pre-check blocked a permitted job: %s" (Mds.Broker.error_to_string e));
  match Mds.Broker.submit broker ~identity:kate ~rsl:"&(executable=rm)" with
  | Error (Mds.Broker.All_failed [ { site = "(broker pre-check)"; _ } ]) -> ()
  | _ -> Alcotest.fail "doomed submission not blocked by pre-check"

let test_broker_reports_all_failures () =
  let tb = Testbed.create () in
  let gridmap = Gsi.Gridmap.empty in
  (* Kate is in nobody's gridmap: every site refuses at the gatekeeper. *)
  let a =
    Testbed.make_resource tb ~name:"a" ~gridmap ~backend:(Custom Callout.Callout.permit_all)
  in
  let dir = Mds.Directory.create (Testbed.engine tb) in
  let _p = Mds.Provider.attach ~directory:dir ~site:"a" a in
  let kate = Testbed.add_user tb Fusion.kate_keahey in
  let broker = Mds.Broker.create ~directory:dir [ a ] in
  match Mds.Broker.submit broker ~identity:kate ~rsl:"&(executable=x)" with
  | Error (Mds.Broker.All_failed [ { site = "a"; error } ]) ->
    Alcotest.(check bool) "error carried" true (String.length error > 0)
  | _ -> Alcotest.fail "failure list not reported"

let () =
  Alcotest.run "grid_mds"
    [ ( "directory",
        [ Alcotest.test_case "register/publish/query" `Quick
            test_directory_register_publish_query;
          Alcotest.test_case "ttl" `Quick test_directory_ttl;
          Alcotest.test_case "errors" `Quick test_directory_errors ] );
      ( "provider",
        [ Alcotest.test_case "periodic publication" `Quick
            test_provider_publishes_periodically ] );
      ( "broker",
        [ Alcotest.test_case "picks fitting site" `Quick test_broker_picks_fitting_site;
          Alcotest.test_case "falls through" `Quick test_broker_falls_through_on_refusal;
          Alcotest.test_case "pre-check" `Quick test_broker_precheck_blocks_doomed_submission;
          Alcotest.test_case "reports failures" `Quick test_broker_reports_all_failures ] ) ]
