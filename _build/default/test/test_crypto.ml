(* Tests for grid_crypto: SHA-256 against FIPS vectors, HMAC against RFC
   4231 vectors, hex/base64 round-trips, simulated keypair semantics. *)

open Grid_crypto

(* --- SHA-256: FIPS 180-4 / NIST test vectors ----------------------- *)

let sha_vector msg expected () =
  Alcotest.(check string) msg expected (Sha256.digest_hex msg)

let test_sha_empty () =
  Alcotest.(check string) "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_hex "")

let test_sha_abc () =
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_hex "abc")

let test_sha_two_blocks () =
  Alcotest.(check string) "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha_million_a () =
  Alcotest.(check string) "million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex (String.make 1_000_000 'a'))

let test_sha_length_edge () =
  (* 55 and 56 bytes straddle the single-block padding boundary. *)
  let d55 = Sha256.digest (String.make 55 'x') in
  let d56 = Sha256.digest (String.make 56 'x') in
  Alcotest.(check int) "digest length" 32 (String.length d55);
  Alcotest.(check int) "digest length" 32 (String.length d56);
  Alcotest.(check bool) "distinct" false (String.equal d55 d56)

(* --- HMAC-SHA-256: RFC 4231 ---------------------------------------- *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.sha256_hex ~key "Hi There")

let test_hmac_rfc4231_case2 () =
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.sha256_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  let key = String.make 20 '\xaa' in
  let data = String.make 50 '\xdd' in
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.sha256_hex ~key data)

let test_hmac_long_key () =
  (* RFC 4231 case 6: 131-byte key is hashed down first. *)
  let key = String.make 131 '\xaa' in
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.sha256_hex ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let mac = Hmac.sha256 ~key:"k" "msg" in
  Alcotest.(check bool) "accepts valid" true (Hmac.verify ~key:"k" ~mac "msg");
  Alcotest.(check bool) "rejects wrong message" false (Hmac.verify ~key:"k" ~mac "msg2");
  Alcotest.(check bool) "rejects wrong key" false (Hmac.verify ~key:"k2" ~mac "msg");
  Alcotest.(check bool) "rejects truncated mac" false
    (Hmac.verify ~key:"k" ~mac:(String.sub mac 0 16) "msg")

(* --- Hex / Base64 --------------------------------------------------- *)

let test_hex_known () =
  Alcotest.(check string) "encode" "00ff10" (Hex.encode "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Hex.decode "00ff10");
  Alcotest.(check string) "decode uppercase" "\xab" (Hex.decode "AB")

let test_hex_errors () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: not a hex digit")
    (fun () -> ignore (Hex.decode "zz"))

let test_base64_known () =
  (* RFC 4648 vectors. *)
  Alcotest.(check string) "f" "Zg==" (Base64.encode "f");
  Alcotest.(check string) "fo" "Zm8=" (Base64.encode "fo");
  Alcotest.(check string) "foo" "Zm9v" (Base64.encode "foo");
  Alcotest.(check string) "foob" "Zm9vYg==" (Base64.encode "foob");
  Alcotest.(check string) "fooba" "Zm9vYmE=" (Base64.encode "fooba");
  Alcotest.(check string) "foobar" "Zm9vYmFy" (Base64.encode "foobar");
  Alcotest.(check string) "empty" "" (Base64.encode "")

let test_base64_decode () =
  Alcotest.(check string) "round known" "foobar" (Base64.decode "Zm9vYmFy");
  Alcotest.(check string) "padded 1" "fooba" (Base64.decode "Zm9vYmE=");
  Alcotest.(check string) "padded 2" "foob" (Base64.decode "Zm9vYg==")

(* --- Keypairs -------------------------------------------------------- *)

let test_keypair_sign_verify () =
  Keypair.reset_keystore ();
  let kp = Keypair.generate ~seed_material:"alice" in
  Keypair.register kp;
  let signature = Keypair.sign (Keypair.secret kp) "hello" in
  Alcotest.(check bool) "verifies" true
    (Keypair.verify (Keypair.public kp) ~signature "hello");
  Alcotest.(check bool) "tampered message" false
    (Keypair.verify (Keypair.public kp) ~signature "hellp");
  Alcotest.(check bool) "tampered signature" false
    (Keypair.verify (Keypair.public kp) ~signature:(String.map (fun _ -> '0') signature)
       "hello")

let test_keypair_unregistered () =
  Keypair.reset_keystore ();
  let kp = Keypair.generate ~seed_material:"bob" in
  let signature = Keypair.sign (Keypair.secret kp) "m" in
  Alcotest.(check bool) "unknown key never verifies" false
    (Keypair.verify (Keypair.public kp) ~signature "m")

let test_keypair_cross () =
  Keypair.reset_keystore ();
  let a = Keypair.generate ~seed_material:"a" in
  let b = Keypair.generate ~seed_material:"b" in
  Keypair.register a;
  Keypair.register b;
  let signature = Keypair.sign (Keypair.secret a) "m" in
  Alcotest.(check bool) "b cannot claim a's signature" false
    (Keypair.verify (Keypair.public b) ~signature "m")

let test_keypair_deterministic () =
  let a = Keypair.generate ~seed_material:"same" in
  let b = Keypair.generate ~seed_material:"same" in
  Alcotest.(check bool) "same seed, same key" true
    (Keypair.public_equal (Keypair.public a) (Keypair.public b))

(* --- Properties ------------------------------------------------------ *)

let qcheck_hex_roundtrip =
  QCheck.Test.make ~name:"hex round-trip" ~count:500 QCheck.string (fun s ->
      Hex.decode (Hex.encode s) = s)

let qcheck_base64_roundtrip =
  QCheck.Test.make ~name:"base64 round-trip" ~count:500 QCheck.string (fun s ->
      Base64.decode (Base64.encode s) = s)

let qcheck_sha_injective_on_samples =
  QCheck.Test.make ~name:"sha256 distinguishes distinct strings" ~count:300
    QCheck.(pair string string)
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let qcheck_sha_length =
  QCheck.Test.make ~name:"sha256 digest is 32 bytes" ~count:200 QCheck.string (fun s ->
      String.length (Sha256.digest s) = 32)

let () =
  ignore sha_vector;
  Alcotest.run "grid_crypto"
    [ ( "sha256",
        [ Alcotest.test_case "empty" `Quick test_sha_empty;
          Alcotest.test_case "abc" `Quick test_sha_abc;
          Alcotest.test_case "two blocks" `Quick test_sha_two_blocks;
          Alcotest.test_case "million a" `Slow test_sha_million_a;
          Alcotest.test_case "padding boundary" `Quick test_sha_length_edge;
          QCheck_alcotest.to_alcotest qcheck_sha_injective_on_samples;
          QCheck_alcotest.to_alcotest qcheck_sha_length ] );
      ( "hmac",
        [ Alcotest.test_case "rfc4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 case 3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 case 6 (long key)" `Quick test_hmac_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify ] );
      ( "encodings",
        [ Alcotest.test_case "hex known" `Quick test_hex_known;
          Alcotest.test_case "hex errors" `Quick test_hex_errors;
          Alcotest.test_case "base64 known" `Quick test_base64_known;
          Alcotest.test_case "base64 decode" `Quick test_base64_decode;
          QCheck_alcotest.to_alcotest qcheck_hex_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_base64_roundtrip ] );
      ( "keypair",
        [ Alcotest.test_case "sign/verify" `Quick test_keypair_sign_verify;
          Alcotest.test_case "unregistered" `Quick test_keypair_unregistered;
          Alcotest.test_case "cross-key" `Quick test_keypair_cross;
          Alcotest.test_case "deterministic" `Quick test_keypair_deterministic ] ) ]
