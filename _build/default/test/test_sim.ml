(* Tests for grid_sim: event ordering, clock semantics, network model,
   traces. *)

open Grid_sim

let test_engine_orders_by_time () =
  let e = Engine.create () in
  let order = ref [] in
  Engine.schedule_at e 3.0 (fun () -> order := 3 :: !order);
  Engine.schedule_at e 1.0 (fun () -> order := 1 :: !order);
  Engine.schedule_at e 2.0 (fun () -> order := 2 :: !order);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 10 do
    Engine.schedule_at e 5.0 (fun () -> order := i :: !order)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !order)

let test_engine_now_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule_at e 1.5 (fun () -> seen := Engine.now e :: !seen);
  Engine.schedule_at e 4.0 (fun () -> seen := Engine.now e :: !seen);
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "clock tracks events" [ 1.5; 4.0 ] (List.rev !seen)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule_at e 2.0 (fun () ->
      Alcotest.(check bool) "scheduling in the past raises" true
        (try
           Engine.schedule_at e 1.0 ignore;
           false
         with Invalid_argument _ -> true));
  Engine.run e

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule_at e 1.0 (fun () ->
      Engine.schedule_after e 1.0 (fun () ->
          incr hits;
          Alcotest.(check (float 1e-9)) "nested time" 2.0 (Engine.now e)));
  Engine.run e;
  Alcotest.(check int) "nested ran" 1 !hits

let test_engine_run_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule_at e 1.0 (fun () -> incr hits);
  Engine.schedule_at e 10.0 (fun () -> incr hits);
  Engine.run_until e 5.0;
  Alcotest.(check int) "only events before deadline" 1 !hits;
  Alcotest.(check (float 1e-9)) "clock at deadline" 5.0 (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "remaining fired" 2 !hits

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  Engine.schedule_at e 0.0 ignore;
  Alcotest.(check bool) "step executes" true (Engine.step e);
  Alcotest.(check int) "executed counter" 1 (Engine.executed e)

let test_engine_many_events () =
  (* Exercises heap growth beyond the initial 64-slot array. *)
  let e = Engine.create () in
  let r = Grid_util.Rng.create ~seed:5 in
  let fired = ref 0 in
  let last = ref (-1.0) in
  for _ = 1 to 5000 do
    let at = Grid_util.Rng.float r 1000.0 in
    Engine.schedule_at e at (fun () ->
        incr fired;
        Alcotest.(check bool) "monotone" true (Engine.now e >= !last);
        last := Engine.now e)
  done;
  Engine.run e;
  Alcotest.(check int) "all fired" 5000 !fired

let test_clock_helpers () =
  Alcotest.(check (float 1e-9)) "minutes" 90.0 (Clock.minutes 1.5);
  Alcotest.(check (float 1e-9)) "hours" 7200.0 (Clock.hours 2.0);
  Alcotest.(check bool) "leq" true Clock.(1.0 <= 1.0)

let test_network_delivers_with_latency () =
  let e = Engine.create () in
  let net = Network.create ~base_latency:0.01 ~jitter:0.0 e in
  let delivered_at = ref nan in
  Network.send net (fun () -> delivered_at := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "base latency" 0.01 !delivered_at;
  Alcotest.(check int) "counted" 1 (Network.messages_sent net)

let test_network_jitter_bounded () =
  let e = Engine.create () in
  let net = Network.create ~base_latency:0.005 ~jitter:0.002 ~seed:9 e in
  let times = ref [] in
  for _ = 1 to 100 do
    Network.send net (fun () -> times := Engine.now e :: !times)
  done;
  Engine.run e;
  List.iter
    (fun t -> Alcotest.(check bool) "within [base, base+jitter)" true (t >= 0.005 && t < 0.007))
    !times

let test_network_zero_latency () =
  let e = Engine.create () in
  let net = Network.zero_latency e in
  let at = ref nan in
  Network.send net (fun () -> at := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "instant" 0.0 !at

let test_trace_roundtrip () =
  let tr = Trace.create () in
  Trace.record tr ~at:1.0 ~source:"client" ~target:"gatekeeper" "submit";
  Trace.record tr ~at:2.0 ~source:"gatekeeper" ~target:"jmi" "spawn";
  Trace.record tr ~at:3.0 ~source:"client" ~target:"gatekeeper" "submit";
  Alcotest.(check int) "entries" 3 (List.length (Trace.entries tr));
  Alcotest.(check int) "find submit" 2 (Trace.count tr ~label:"submit");
  Alcotest.(check int) "find spawn" 1 (Trace.count tr ~label:"spawn");
  let first = List.hd (Trace.entries tr) in
  Alcotest.(check string) "order preserved" "client" first.Trace.source

let qcheck_engine_executes_all =
  QCheck.Test.make ~name:"engine executes every scheduled event" ~count:100
    QCheck.(list (float_bound_exclusive 100.0))
    (fun times ->
      let e = Engine.create () in
      let n = ref 0 in
      List.iter (fun t -> Engine.schedule_at e t (fun () -> incr n)) times;
      Engine.run e;
      !n = List.length times)

let () =
  Alcotest.run "grid_sim"
    [ ( "engine",
        [ Alcotest.test_case "orders by time" `Quick test_engine_orders_by_time;
          Alcotest.test_case "fifo at same time" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "clock advances" `Quick test_engine_now_advances;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "many events (heap growth)" `Quick test_engine_many_events;
          QCheck_alcotest.to_alcotest qcheck_engine_executes_all ] );
      ("clock", [ Alcotest.test_case "helpers" `Quick test_clock_helpers ]);
      ( "network",
        [ Alcotest.test_case "delivers with latency" `Quick test_network_delivers_with_latency;
          Alcotest.test_case "jitter bounded" `Quick test_network_jitter_bounded;
          Alcotest.test_case "zero latency" `Quick test_network_zero_latency ] );
      ("trace", [ Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip ]) ]
