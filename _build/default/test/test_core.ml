(* Integration tests for the core facade: the Testbed builder and the
   Fusion (NFC) world end-to-end, including the paper's Section 2 use
   case (developers vs analysts vs admins, high-priority preemption). *)

open Core

let ok_submit = function
  | Ok (r : Gram.Protocol.submit_reply) -> r
  | Error e -> Alcotest.failf "submit failed: %s" (Gram.Protocol.submit_error_to_string e)

let ok_manage = function
  | Ok r -> r
  | Error e -> Alcotest.failf "manage failed: %s" (Gram.Protocol.management_error_to_string e)

let state_of client contact =
  match Gram.Client.status_sync client ~contact with
  | Ok st -> Gram.Protocol.job_state_to_string st.Gram.Protocol.state
  | Error e -> Alcotest.failf "status failed: %s" (Gram.Protocol.management_error_to_string e)

(* --- Testbed --------------------------------------------------------------- *)

let test_testbed_builds () =
  let tb = Testbed.create () in
  let user = Testbed.add_user tb "/O=Grid/CN=Someone" in
  Alcotest.(check string) "user dn" "/O=Grid/CN=Someone"
    (Grid_gsi.Dn.to_string (Gsi.Identity.subject user));
  Alcotest.(check bool) "user retrievable" true (Testbed.user tb "/O=Grid/CN=Someone" == user);
  Alcotest.(check bool) "unknown user raises" true
    (try
       ignore (Testbed.user tb "/O=Grid/CN=Nobody");
       false
     with Invalid_argument _ -> true)

let test_testbed_resource_modes () =
  let tb = Testbed.create () in
  let gridmap =
    Gsi.Gridmap.add Gsi.Gridmap.empty ~dn:(Gsi.Dn.parse "/O=Grid/CN=U") ~account:"u"
  in
  let r_base = Testbed.make_resource tb ~name:"base" ~gridmap ~backend:Baseline in
  let r_ext =
    Testbed.make_resource tb ~name:"ext" ~gridmap
      ~backend:(Custom Callout.Callout.permit_all)
  in
  let u = Testbed.add_user tb "/O=Grid/CN=U" in
  let c_base = Testbed.client tb ~user:u ~resource:r_base in
  let c_ext = Testbed.client tb ~user:u ~resource:r_ext in
  ignore (ok_submit (Gram.Client.submit_sync c_base ~rsl:"&(executable=x)"));
  ignore (ok_submit (Gram.Client.submit_sync c_ext ~rsl:"&(executable=x)(jobtag=T)"));
  (* jobtag is a protocol error on the baseline resource *)
  match Gram.Client.submit_sync c_base ~rsl:"&(executable=x)(jobtag=T)" with
  | Error (Gram.Protocol.Bad_rsl _) -> ()
  | _ -> Alcotest.fail "baseline accepted jobtag"

(* --- Fusion world ------------------------------------------------------------ *)

let test_fusion_analyst_runs_transp () =
  let w = Fusion.build () in
  let reply =
    ok_submit
      (Gram.Client.submit_sync w.Fusion.kate
         ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=100)")
  in
  Alcotest.(check string) "runs" "ACTIVE" (state_of w.Fusion.kate reply.Gram.Protocol.job_contact);
  Testbed.run w.Fusion.testbed;
  Alcotest.(check string) "completes" "DONE"
    (state_of w.Fusion.kate reply.Gram.Protocol.job_contact)

let test_fusion_developer_envelope () =
  let w = Fusion.build () in
  (* Developers: test1/test2 in /sandbox/test under ADS, count < 4. *)
  ignore
    (ok_submit
       (Gram.Client.submit_sync w.Fusion.bo
          ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)"));
  (match
     Gram.Client.submit_sync w.Fusion.bo
       ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)"
   with
  | Error (Gram.Protocol.Authorization_failed _) -> ()
  | _ -> Alcotest.fail "count ceiling not enforced");
  (match
     Gram.Client.submit_sync w.Fusion.bo
       ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"
   with
  | Error (Gram.Protocol.Authorization_failed _) -> ()
  | _ -> Alcotest.fail "developer ran the analysts' service");
  match
    Gram.Client.submit_sync w.Fusion.bo ~rsl:"&(executable=test1)(directory=/sandbox/test)"
  with
  | Error (Gram.Protocol.Authorization_failed _) -> ()
  | _ -> Alcotest.fail "untagged job admitted despite VO requirement"

let test_fusion_outsider_denied () =
  let w = Fusion.build () in
  let outsider_id = Testbed.add_user w.Fusion.testbed Fusion.outsider in
  let outsider =
    Testbed.client w.Fusion.testbed ~user:outsider_id ~resource:w.Fusion.resource
  in
  match Gram.Client.submit_sync outsider ~rsl:"&(executable=TRANSP)(jobtag=NFC)" with
  | Error (Gram.Protocol.Gatekeeper_refused _) -> ()
  | _ -> Alcotest.fail "outsider admitted"

let test_fusion_reserved_queue_blocked_by_owner_policy () =
  let w = Fusion.build () in
  match
    Gram.Client.submit_sync w.Fusion.kate
      ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(queue=reserved)"
  with
  | Error (Gram.Protocol.Authorization_failed (Gram.Protocol.Authz_denied m)) ->
    Alcotest.(check bool) "denied by the resource owner" true
      (Grid_util.Strings.starts_with ~prefix:"resource-owner" m)
  | _ -> Alcotest.fail "reserved queue admitted"

(* The Section 2 / SC02 scenario: long-running analysis jobs occupy the
   cluster; a high-priority demo arrives; a VO admin (not the owner of the
   running jobs) suspends them, runs the demo, then resumes. *)
let test_fusion_priority_demo_preemption () =
  let w = Fusion.build ~nodes:1 ~cpus_per_node:4 () in
  (* Kate fills the machine with a long NFC analysis. *)
  let long =
    ok_submit
      (Gram.Client.submit_sync w.Fusion.kate
         ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=100000)")
  in
  Alcotest.(check string) "analysis running" "ACTIVE" (state_of w.Fusion.kate long.Gram.Protocol.job_contact);
  (* The admin's demo job cannot fit. *)
  let demo =
    ok_submit
      (Gram.Client.submit_sync w.Fusion.vo_admin
         ~rsl:"&(executable=demo)(directory=/sandbox/test)(jobtag=DEMO)(count=4)(simduration=50)")
  in
  Alcotest.(check string) "demo queued" "PENDING"
    (state_of w.Fusion.vo_admin demo.Gram.Protocol.job_contact);
  (* Admin suspends Kate's job — possible only because the admins profile
     grants signal over the NFC tag; Kate is not consulted. *)
  ignore
    (ok_manage
       (Gram.Client.manage_sync w.Fusion.vo_admin ~contact:long.Gram.Protocol.job_contact
          (Gram.Protocol.Signal Gram.Protocol.Suspend)));
  Alcotest.(check string) "analysis suspended" "SUSPENDED"
    (state_of w.Fusion.vo_admin long.Gram.Protocol.job_contact);
  Alcotest.(check string) "demo running" "ACTIVE"
    (state_of w.Fusion.vo_admin demo.Gram.Protocol.job_contact);
  (* Demo finishes; admin resumes the analysis. *)
  Testbed.run_for w.Fusion.testbed 100.0;
  Alcotest.(check string) "demo done" "DONE"
    (state_of w.Fusion.vo_admin demo.Gram.Protocol.job_contact);
  ignore
    (ok_manage
       (Gram.Client.manage_sync w.Fusion.vo_admin ~contact:long.Gram.Protocol.job_contact
          (Gram.Protocol.Signal Gram.Protocol.Resume)));
  Alcotest.(check string) "analysis resumed" "ACTIVE"
    (state_of w.Fusion.vo_admin long.Gram.Protocol.job_contact)

let test_fusion_developer_cannot_preempt () =
  let w = Fusion.build () in
  let kate_job =
    ok_submit
      (Gram.Client.submit_sync w.Fusion.kate
         ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=1000)")
  in
  match
    Gram.Client.manage_sync w.Fusion.bo ~contact:kate_job.Gram.Protocol.job_contact
      (Gram.Protocol.Signal Gram.Protocol.Suspend)
  with
  | Error (Gram.Protocol.Not_authorized _) -> ()
  | _ -> Alcotest.fail "developer suspended an analyst's job"

let test_fusion_own_job_management () =
  let w = Fusion.build () in
  let job =
    ok_submit
      (Gram.Client.submit_sync w.Fusion.bo
         ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(simduration=1000)")
  in
  (* may_manage_own grants the (jobowner = self) clauses. *)
  ignore (ok_manage (Gram.Client.manage_sync w.Fusion.bo ~contact:job.Gram.Protocol.job_contact
                       Gram.Protocol.Cancel));
  Alcotest.(check string) "own job cancelled" "CANCELED"
    (state_of w.Fusion.bo job.Gram.Protocol.job_contact)

let test_fusion_admin_manages_all_tags () =
  let w = Fusion.build () in
  let dev_job =
    ok_submit
      (Gram.Client.submit_sync w.Fusion.bo
         ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(simduration=1000)")
  in
  ignore
    (ok_manage
       (Gram.Client.manage_sync w.Fusion.vo_admin ~contact:dev_job.Gram.Protocol.job_contact
          Gram.Protocol.Cancel));
  Alcotest.(check string) "admin cancelled ADS job" "CANCELED"
    (state_of w.Fusion.vo_admin dev_job.Gram.Protocol.job_contact)

let test_fusion_baseline_comparison () =
  (* The same world in baseline mode: VO-wide management is impossible. *)
  let w = Fusion.build ~backend:`Baseline () in
  let job =
    ok_submit
      (Gram.Client.submit_sync w.Fusion.kate
         ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(simduration=1000)")
  in
  match
    Gram.Client.manage_sync w.Fusion.vo_admin ~contact:job.Gram.Protocol.job_contact
      Gram.Protocol.Cancel
  with
  | Error (Gram.Protocol.Not_authorized _) -> ()
  | _ -> Alcotest.fail "baseline allowed VO-wide management"

let test_fusion_audit_accountability () =
  let w = Fusion.build () in
  let job =
    ok_submit
      (Gram.Client.submit_sync w.Fusion.bo
         ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(simduration=1000)")
  in
  ignore
    (ok_manage
       (Gram.Client.manage_sync w.Fusion.vo_admin ~contact:job.Gram.Protocol.job_contact
          Gram.Protocol.Cancel));
  (* The audit trail attributes the cancel to the admin, not the owner. *)
  let audit = Gram.Resource.audit w.Fusion.resource in
  let admin_dn = Gsi.Dn.parse Fusion.admin in
  let admin_records = Grid_audit.Audit.by_subject audit admin_dn in
  Alcotest.(check bool) "admin's management recorded" true
    (List.exists
       (fun r -> r.Grid_audit.Audit.kind = Grid_audit.Audit.Job_management)
       admin_records)

let test_fusion_policy_derived_sandbox () =
  (* The Flat_file backend wires File_pep.advice automatically: a
     permitted start leaves a "sandbox derived from policy clause" audit
     record carrying the matched constraints. *)
  let w = Fusion.build () in
  ignore
    (ok_submit
       (Gram.Client.submit_sync w.Fusion.kate
          ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"));
  let derived =
    Grid_audit.Audit.records (Gram.Resource.audit w.Fusion.resource)
    |> List.filter (fun r ->
           Grid_util.Strings.starts_with ~prefix:"sandbox derived from policy clause"
             r.Grid_audit.Audit.detail)
  in
  Alcotest.(check int) "derivation recorded" 1 (List.length derived);
  match derived with
  | [ r ] ->
    Alcotest.(check bool) "carries the executable constraint" true
      (Grid_util.Str_search.contains r.Grid_audit.Audit.detail "(executable = TRANSP)")
  | _ -> Alcotest.fail "unexpected"

let test_fusion_cas_backend () =
  (* Same VO, push model: members fetch CAS capabilities; the resource
     runs the CAS PEP instead of reading policy files. *)
  let tb = Testbed.create () in
  let vo = Fusion.build_vo () in
  let cas = Cas.Server.create ~vo "fusion-cas" in
  let engine = Testbed.engine tb in
  let callout =
    Cas.Pep.callout ~cas_key:(Cas.Server.public_key cas)
      ~now:(fun () -> Grid_sim.Engine.now engine)
  in
  let resource =
    Testbed.make_resource tb ~name:"cas-site"
      ~gridmap:(Gsi.Gridmap.parse Fusion.gridmap_text) ~backend:(Custom callout)
  in
  let kate_id = Testbed.add_user tb Fusion.kate_keahey in
  let kate_proxy =
    Result.get_ok (Cas.Server.grant_proxy cas ~trust:(Testbed.trust tb) ~now:0.0 kate_id)
  in
  let kate = Testbed.client tb ~user:kate_proxy ~resource in
  ignore
    (ok_submit
       (Gram.Client.submit_sync kate
          ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"));
  (* Without a capability the same request is denied. *)
  let kate_plain = Testbed.client tb ~user:kate_id ~resource in
  match
    Gram.Client.submit_sync kate_plain
      ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"
  with
  | Error (Gram.Protocol.Authorization_failed (Gram.Protocol.Authz_denied _)) -> ()
  | _ -> Alcotest.fail "capability-less submission admitted by CAS PEP"

(* --- Workload stress ---------------------------------------------------------- *)

let fusion_profiles (w : Fusion.world) =
  [ { Workload.identity = Gram.Client.identity w.Fusion.bo;
      rsl_templates =
        [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=40)";
          "&(executable=test2)(directory=/sandbox/test)(jobtag=ADS)(count=3)(simduration=20)";
          (* over the count<4 limit: always denied *)
          "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)";
          (* missing jobtag: requirement violation *)
          "&(executable=test1)(directory=/sandbox/test)" ];
      weight = 3 };
    { Workload.identity = Gram.Client.identity w.Fusion.kate;
      rsl_templates =
        [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=120)";
          "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=60)" ];
      weight = 2 } ]

let test_workload_accounting () =
  let w = Fusion.build ~nodes:8 ~cpus_per_node:8 () in
  let stats =
    Workload.run
      ~engine:(Testbed.engine w.Fusion.testbed)
      ~resource:w.Fusion.resource ~profiles:(fusion_profiles w)
      { Workload.default_config with Workload.job_count = 300; seed = 7 }
  in
  (* Every submission is accounted for exactly once. *)
  Alcotest.(check int) "all submissions issued" 300 stats.Workload.submitted;
  Alcotest.(check int) "accepted + denied = submitted" 300
    (stats.Workload.accepted + stats.Workload.denied_authorization
   + stats.Workload.denied_other);
  (* Both policy-permitted and policy-denied templates are in the mix,
     so the tallies must both be non-trivial. *)
  Alcotest.(check bool) "some accepted" true (stats.Workload.accepted > 50);
  Alcotest.(check bool) "some denied by policy" true
    (stats.Workload.denied_authorization > 20);
  (* After the engine drains, every accepted job reached a terminal or
     suspended state, CPUs balance, and the LRM invariant holds. *)
  let lrm = Gram.Resource.lrm w.Fusion.resource in
  Alcotest.(check bool) "lrm invariant" true (Lrm.Lrm.invariant_holds lrm);
  let non_terminal =
    List.filter
      (fun (j : Lrm.Lrm.job) ->
        match j.Lrm.Lrm.state with
        | Lrm.Lrm.Completed | Lrm.Lrm.Cancelled | Lrm.Lrm.Killed _ | Lrm.Lrm.Suspended ->
          false
        | Lrm.Lrm.Pending | Lrm.Lrm.Running -> true)
      (Lrm.Lrm.jobs lrm)
  in
  Alcotest.(check int) "no job stuck pending/running" 0 (List.length non_terminal);
  (* Audit coverage: one successful authorization per accepted job at
     minimum (start), plus records for denials. *)
  let audit = Gram.Resource.audit w.Fusion.resource in
  Alcotest.(check bool) "audit saw the workload" true
    (Audit.Audit.count audit >= stats.Workload.submitted)

let test_workload_deterministic () =
  let run_once () =
    let w = Fusion.build ~nodes:4 ~cpus_per_node:4 () in
    let stats =
      Workload.run
        ~engine:(Testbed.engine w.Fusion.testbed)
        ~resource:w.Fusion.resource ~profiles:(fusion_profiles w)
        { Workload.default_config with Workload.job_count = 120; seed = 99 }
    in
    ( stats.Workload.accepted,
      stats.Workload.denied_authorization,
      stats.Workload.management_requests )
  in
  Alcotest.(check (triple int int int)) "same seed, same outcome" (run_once ()) (run_once ())

let test_workload_baseline_vs_extended_admission () =
  (* The baseline admits everything the gridmap lets through (minus
     jobtag protocol errors); the extended mode also applies policy. *)
  let run backend =
    let w = Fusion.build ~backend ~nodes:8 ~cpus_per_node:8 () in
    (* Tag-free templates so the baseline protocol accepts them. *)
    let profiles =
      [ { Workload.identity = Gram.Client.identity w.Fusion.bo;
          rsl_templates = [ "&(executable=evil)(directory=/tmp)(simduration=10)" ];
          weight = 1 } ]
    in
    let stats =
      Workload.run
        ~engine:(Testbed.engine w.Fusion.testbed)
        ~resource:w.Fusion.resource ~profiles
        { Workload.default_config with Workload.job_count = 50; seed = 3 }
    in
    stats.Workload.accepted
  in
  Alcotest.(check int) "baseline admits all" 50 (run `Baseline);
  Alcotest.(check int) "extended denies all" 0 (run `Flat_file)

let () =
  Alcotest.run "core"
    [ ( "testbed",
        [ Alcotest.test_case "builds" `Quick test_testbed_builds;
          Alcotest.test_case "resource modes" `Quick test_testbed_resource_modes ] );
      ( "fusion",
        [ Alcotest.test_case "analyst runs TRANSP" `Quick test_fusion_analyst_runs_transp;
          Alcotest.test_case "developer envelope" `Quick test_fusion_developer_envelope;
          Alcotest.test_case "outsider denied" `Quick test_fusion_outsider_denied;
          Alcotest.test_case "reserved queue" `Quick
            test_fusion_reserved_queue_blocked_by_owner_policy;
          Alcotest.test_case "priority demo preemption" `Quick
            test_fusion_priority_demo_preemption;
          Alcotest.test_case "developer cannot preempt" `Quick
            test_fusion_developer_cannot_preempt;
          Alcotest.test_case "own-job management" `Quick test_fusion_own_job_management;
          Alcotest.test_case "admin manages all tags" `Quick test_fusion_admin_manages_all_tags;
          Alcotest.test_case "baseline comparison" `Quick test_fusion_baseline_comparison;
          Alcotest.test_case "audit accountability" `Quick test_fusion_audit_accountability;
          Alcotest.test_case "policy-derived sandbox" `Quick
            test_fusion_policy_derived_sandbox;
          Alcotest.test_case "CAS backend" `Quick test_fusion_cas_backend ] );
      ( "workload",
        [ Alcotest.test_case "accounting" `Quick test_workload_accounting;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "baseline vs extended" `Quick
            test_workload_baseline_vs_extended_admission ] ) ]
