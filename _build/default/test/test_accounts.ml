(* Tests for grid_accounts: dynamic account pool, sandbox limits, the
   gatekeeper-side account mapper. *)

open Grid_accounts

let dn = Grid_gsi.Dn.parse

let setup () = Grid_util.Ids.reset ()

(* --- Pool ----------------------------------------------------------------- *)

let test_pool_acquire_release () =
  setup ();
  let pool = Pool.create ~size:2 ~lease_lifetime:100.0 () in
  let a = Result.get_ok (Pool.acquire pool ~now:0.0 ~holder:(dn "/O=Grid/CN=A")) in
  let b = Result.get_ok (Pool.acquire pool ~now:0.0 ~holder:(dn "/O=Grid/CN=B")) in
  Alcotest.(check bool) "distinct accounts" false (a.Pool.account = b.Pool.account);
  Alcotest.(check int) "both leased" 2 (Pool.in_use pool ~now:0.0);
  (match Pool.acquire pool ~now:0.0 ~holder:(dn "/O=Grid/CN=C") with
  | Error (Pool.Pool_exhausted { size = 2 }) -> ()
  | _ -> Alcotest.fail "exhaustion not reported");
  ignore (Result.get_ok (Pool.release pool ~lease_id:a.Pool.lease_id));
  match Pool.acquire pool ~now:0.0 ~holder:(dn "/O=Grid/CN=C") with
  | Ok lease -> Alcotest.(check string) "recycled" a.Pool.account lease.Pool.account
  | Error _ -> Alcotest.fail "released account not reusable"

let test_pool_same_holder_same_account () =
  setup ();
  let pool = Pool.create ~size:4 ~lease_lifetime:100.0 () in
  let holder = dn "/O=Grid/CN=A" in
  let l1 = Result.get_ok (Pool.acquire pool ~now:0.0 ~holder) in
  let l2 = Result.get_ok (Pool.acquire pool ~now:10.0 ~holder) in
  Alcotest.(check string) "same account on reuse" l1.Pool.account l2.Pool.account;
  Alcotest.(check int) "one lease only" 1 (Pool.in_use pool ~now:10.0);
  let stats = Pool.stats pool in
  Alcotest.(check int) "grants" 1 stats.Pool.total_grants;
  Alcotest.(check int) "reuses" 1 stats.Pool.total_reuses

let test_pool_lease_renewal_extends () =
  setup ();
  let pool = Pool.create ~size:1 ~lease_lifetime:100.0 () in
  let holder = dn "/O=Grid/CN=A" in
  ignore (Result.get_ok (Pool.acquire pool ~now:0.0 ~holder));
  (* Renew at t=90: lease now runs to 190. *)
  ignore (Result.get_ok (Pool.acquire pool ~now:90.0 ~holder));
  Alcotest.(check int) "still live at 150" 1 (Pool.in_use pool ~now:150.0);
  Alcotest.(check int) "expired at 200" 0 (Pool.in_use pool ~now:200.0)

let test_pool_expiry_reclaims () =
  setup ();
  let pool = Pool.create ~size:1 ~lease_lifetime:50.0 () in
  ignore (Result.get_ok (Pool.acquire pool ~now:0.0 ~holder:(dn "/O=Grid/CN=A")));
  (match Pool.acquire pool ~now:10.0 ~holder:(dn "/O=Grid/CN=B") with
  | Error (Pool.Pool_exhausted _) -> ()
  | _ -> Alcotest.fail "pool should be exhausted");
  (* After expiry, B can lease the reclaimed account. *)
  match Pool.acquire pool ~now:60.0 ~holder:(dn "/O=Grid/CN=B") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "expired lease not reclaimed"

let test_pool_holder_of () =
  setup ();
  let pool = Pool.create ~prefix:"nfc" ~size:2 ~lease_lifetime:100.0 () in
  let lease = Result.get_ok (Pool.acquire pool ~now:0.0 ~holder:(dn "/O=Grid/CN=A")) in
  (match Pool.holder_of pool ~account:lease.Pool.account ~now:1.0 with
  | Some h -> Alcotest.(check string) "holder" "/O=Grid/CN=A" (Grid_gsi.Dn.to_string h)
  | None -> Alcotest.fail "holder not found");
  Alcotest.(check (option string)) "free account has no holder" None
    (Option.map Grid_gsi.Dn.to_string (Pool.holder_of pool ~account:"nfc001" ~now:1.0))

let test_pool_release_unknown () =
  setup ();
  let pool = Pool.create ~size:1 ~lease_lifetime:10.0 () in
  match Pool.release pool ~lease_id:"lease-999999" with
  | Error (Pool.Unknown_lease _) -> ()
  | _ -> Alcotest.fail "unknown lease released"

let qcheck_pool_never_double_allocates =
  QCheck.Test.make ~name:"pool never double-allocates an account" ~count:100
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (size, holders) ->
      Grid_util.Ids.reset ();
      let pool = Pool.create ~size ~lease_lifetime:1000.0 () in
      let leases =
        List.filter_map
          (fun i ->
            match
              Pool.acquire pool ~now:0.0 ~holder:(dn (Printf.sprintf "/O=G/CN=u%d" i))
            with
            | Ok l -> Some l
            | Error _ -> None)
          holders
      in
      (* distinct holders must hold distinct accounts *)
      let by_holder = List.sort_uniq compare
          (List.map (fun l -> (Grid_gsi.Dn.to_string l.Pool.holder, l.Pool.account)) leases) in
      let accounts = List.map snd by_holder in
      List.length (List.sort_uniq compare accounts) = List.length accounts)

(* --- Sandbox ---------------------------------------------------------------- *)

let job rsl = Result.get_ok (Grid_rsl.Job.of_string rsl)

let test_sandbox_unrestricted () =
  Alcotest.(check bool) "anything goes" true
    (Sandbox.permits Sandbox.unrestricted (job "&(executable=/bin/rm)(count=999)"))

let test_sandbox_cpu_limit () =
  let limits = { Sandbox.unrestricted with Sandbox.max_cpus = Some 4 } in
  Alcotest.(check bool) "within" true (Sandbox.permits limits (job "&(executable=x)(count=4)"));
  match Sandbox.check limits (job "&(executable=x)(count=5)") with
  | [ Sandbox.Cpus_exceeded { requested = 5; limit = 4 } ] -> ()
  | _ -> Alcotest.fail "cpu violation not reported"

let test_sandbox_memory_and_walltime () =
  let limits =
    { Sandbox.unrestricted with
      Sandbox.max_memory_mb = Some 512;
      Sandbox.max_walltime = Some 3600.0 }
  in
  Alcotest.(check bool) "within" true
    (Sandbox.permits limits (job "&(executable=x)(maxmemory=512)(maxwalltime=60)"));
  Alcotest.(check int) "two violations" 2
    (List.length (Sandbox.check limits (job "&(executable=x)(maxmemory=1024)(maxwalltime=61)")))

let test_sandbox_paths () =
  Alcotest.(check bool) "exact" true (Sandbox.path_within ~root:"/sandbox/test" "/sandbox/test");
  Alcotest.(check bool) "child" true
    (Sandbox.path_within ~root:"/sandbox/test" "/sandbox/test/sub");
  Alcotest.(check bool) "sibling prefix is not containment" false
    (Sandbox.path_within ~root:"/sandbox/test" "/sandbox/testing");
  let limits = { Sandbox.unrestricted with Sandbox.allowed_directories = [ "/sandbox/test" ] } in
  Alcotest.(check bool) "inside" true
    (Sandbox.permits limits (job "&(executable=x)(directory=/sandbox/test/run1)"));
  match Sandbox.check limits (job "&(executable=x)(directory=/home)") with
  | [ Sandbox.Directory_forbidden "/home" ] -> ()
  | _ -> Alcotest.fail "directory violation not reported"

let test_sandbox_executables () =
  let limits = { Sandbox.unrestricted with Sandbox.allowed_executables = [ "TRANSP" ] } in
  Alcotest.(check bool) "allowed" true (Sandbox.permits limits (job "&(executable=TRANSP)"));
  match Sandbox.check limits (job "&(executable=sh)") with
  | [ Sandbox.Executable_forbidden "sh" ] -> ()
  | _ -> Alcotest.fail "executable violation not reported"

(* --- Mapper ------------------------------------------------------------------- *)

let gridmap = Grid_gsi.Gridmap.parse "\"/O=Grid/CN=Static User\" statica\n"

let test_mapper_static_first () =
  setup ();
  let pool = Pool.create ~size:2 ~lease_lifetime:100.0 () in
  let mapper = Mapper.create ~pool gridmap in
  match Mapper.resolve mapper ~now:0.0 (dn "/O=Grid/CN=Static User") with
  | Ok { Mapper.account = "statica"; source = `Static; _ } -> ()
  | _ -> Alcotest.fail "static mapping not preferred"

let test_mapper_dynamic_fallback () =
  setup ();
  let pool = Pool.create ~size:2 ~lease_lifetime:100.0 () in
  let mapper = Mapper.create ~pool gridmap in
  match Mapper.resolve mapper ~now:0.0 (dn "/O=Grid/CN=Visitor") with
  | Ok ({ Mapper.source = `Dynamic _; _ } as mapping) ->
    Alcotest.(check bool) "pool account" true
      (Grid_util.Strings.starts_with ~prefix:"grid" mapping.Mapper.account);
    Mapper.release mapper mapping;
    Alcotest.(check int) "released" 0 (Pool.in_use pool ~now:0.0)
  | _ -> Alcotest.fail "dynamic fallback failed"

let test_mapper_no_account () =
  setup ();
  let mapper = Mapper.create gridmap in
  match Mapper.resolve mapper ~now:0.0 (dn "/O=Grid/CN=Visitor") with
  | Error (Mapper.No_local_account _) -> ()
  | _ -> Alcotest.fail "unmapped visitor accepted without pool"

let test_mapper_limits_attached () =
  setup ();
  let static_limits _ = { Sandbox.unrestricted with Sandbox.max_cpus = Some 2 } in
  let dynamic_limits = { Sandbox.unrestricted with Sandbox.max_cpus = Some 1 } in
  let pool = Pool.create ~size:1 ~lease_lifetime:10.0 () in
  let mapper = Mapper.create ~pool ~static_limits ~dynamic_limits gridmap in
  let static_map = Result.get_ok (Mapper.resolve mapper ~now:0.0 (dn "/O=Grid/CN=Static User")) in
  Alcotest.(check (option int)) "static limits" (Some 2)
    static_map.Mapper.limits.Sandbox.max_cpus;
  let dynamic_map = Result.get_ok (Mapper.resolve mapper ~now:0.0 (dn "/O=Grid/CN=Visitor")) in
  Alcotest.(check (option int)) "dynamic limits" (Some 1)
    dynamic_map.Mapper.limits.Sandbox.max_cpus

(* --- Sandbox derivation (policy-derived enforcement) ------------------------- *)

let constraints_of rsl =
  List.map
    (fun (r : Grid_rsl.Ast.relation) ->
      { Grid_policy.Types.attribute = r.attribute;
        op = r.op;
        values =
          List.map
            (function
              | Grid_rsl.Ast.Literal s -> Grid_policy.Types.Str s
              | Grid_rsl.Ast.Variable _ | Grid_rsl.Ast.Binding _ -> assert false)
            r.values })
    (Grid_rsl.Parser.parse_clause_exn rsl)

let test_sandbox_intersect () =
  let a =
    { Sandbox.unrestricted with
      Sandbox.max_cpus = Some 8;
      Sandbox.allowed_executables = [ "a"; "b" ] }
  in
  let b =
    { Sandbox.unrestricted with
      Sandbox.max_cpus = Some 4;
      Sandbox.max_walltime = Some 60.0;
      Sandbox.allowed_executables = [ "b"; "c" ] }
  in
  let i = Sandbox.intersect a b in
  Alcotest.(check (option int)) "min cpus" (Some 4) i.Sandbox.max_cpus;
  Alcotest.(check (option (float 1e-9))) "walltime adopted" (Some 60.0) i.Sandbox.max_walltime;
  Alcotest.(check (list string)) "executables intersected" [ "b" ] i.Sandbox.allowed_executables;
  (* Disjoint allow-lists permit nothing (not everything). *)
  let c = { Sandbox.unrestricted with Sandbox.allowed_executables = [ "x" ] } in
  let d = { Sandbox.unrestricted with Sandbox.allowed_executables = [ "y" ] } in
  let disjoint = Sandbox.intersect c d in
  Alcotest.(check bool) "disjoint permits nothing" false
    (Sandbox.permits disjoint (job "&(executable=x)"));
  (* Unrestricted is the identity. *)
  let id = Sandbox.intersect a Sandbox.unrestricted in
  Alcotest.(check (option int)) "identity cpus" (Some 8) id.Sandbox.max_cpus;
  Alcotest.(check (list string)) "identity exes" [ "a"; "b" ] id.Sandbox.allowed_executables

let test_sandbox_of_policy_clause () =
  let clause =
    constraints_of
      "&(action=start)(executable=test1 test2)(directory=/sandbox/test)(jobtag=ADS)(count < 4)(maxmemory <= 512)(maxwalltime <= 2)"
  in
  let limits = Sandbox.of_policy_clause clause in
  Alcotest.(check (list string)) "executables" [ "test1"; "test2" ]
    limits.Sandbox.allowed_executables;
  Alcotest.(check (list string)) "directories" [ "/sandbox/test" ]
    limits.Sandbox.allowed_directories;
  Alcotest.(check (option int)) "count < 4 gives cap 3" (Some 3) limits.Sandbox.max_cpus;
  Alcotest.(check (option int)) "memory" (Some 512) limits.Sandbox.max_memory_mb;
  Alcotest.(check (option (float 1e-9))) "walltime minutes to seconds" (Some 120.0)
    limits.Sandbox.max_walltime

let test_sandbox_of_policy_clause_ignores_unenforceable () =
  let clause = constraints_of "&(action=start)(jobowner != NULL)(queue != reserved)(count > 2)" in
  let limits = Sandbox.of_policy_clause clause in
  Alcotest.(check (option int)) "lower bounds not enforceable as caps" None
    limits.Sandbox.max_cpus;
  Alcotest.(check (list string)) "no allow-lists" [] limits.Sandbox.allowed_executables

(* --- Allocations ---------------------------------------------------------------- *)

let test_allocation_lifecycle () =
  let bank = Allocation.create () in
  Allocation.open_account bank ~party:"/O=Grid/O=Fusion" ~budget:1000.0;
  Alcotest.(check (option (float 1e-9))) "full budget" (Some 1000.0)
    (Allocation.balance bank ~party:"/O=Grid/O=Fusion");
  let r = Result.get_ok (Allocation.reserve bank ~party:"/O=Grid/O=Fusion" ~amount:600.0) in
  Alcotest.(check (option (float 1e-9))) "reservation held" (Some 400.0)
    (Allocation.balance bank ~party:"/O=Grid/O=Fusion");
  Allocation.settle r ~actual:250.0;
  Alcotest.(check (option (float 1e-9))) "refund after settle" (Some 750.0)
    (Allocation.balance bank ~party:"/O=Grid/O=Fusion");
  Alcotest.(check (option (float 1e-9))) "charge recorded" (Some 250.0)
    (Allocation.charged bank ~party:"/O=Grid/O=Fusion")

let test_allocation_refusal () =
  let bank = Allocation.create () in
  Allocation.open_account bank ~party:"/O=Grid" ~budget:100.0;
  (match Allocation.reserve bank ~party:"/O=Grid" ~amount:101.0 with
  | Error (Allocation.Insufficient_allocation { requested = 101.0; available = 100.0; _ }) -> ()
  | _ -> Alcotest.fail "over-budget reservation accepted");
  (match Allocation.reserve bank ~party:"/O=Nobody" ~amount:1.0 with
  | Error (Allocation.Unknown_party _) -> ()
  | _ -> Alcotest.fail "unknown party accepted");
  Alcotest.(check int) "refusals counted" 2 (Allocation.refusals bank)

let test_allocation_settle_idempotent () =
  let bank = Allocation.create () in
  Allocation.open_account bank ~party:"p" ~budget:100.0;
  let r = Result.get_ok (Allocation.reserve bank ~party:"p" ~amount:50.0) in
  Allocation.settle r ~actual:10.0;
  Allocation.settle r ~actual:10.0;
  Alcotest.(check (option (float 1e-9))) "charged once" (Some 10.0)
    (Allocation.charged bank ~party:"p")

let test_allocation_cancel () =
  let bank = Allocation.create () in
  Allocation.open_account bank ~party:"p" ~budget:100.0;
  let r = Result.get_ok (Allocation.reserve bank ~party:"p" ~amount:50.0) in
  Allocation.cancel r;
  Alcotest.(check (option (float 1e-9))) "nothing charged" (Some 0.0)
    (Allocation.charged bank ~party:"p");
  Alcotest.(check (option (float 1e-9))) "all returned" (Some 100.0)
    (Allocation.balance bank ~party:"p")

let test_allocation_overrun_still_charged () =
  (* Walltime accounting is authoritative: usage beyond the reservation is
     charged anyway (the LRM kill already bounds it). *)
  let bank = Allocation.create () in
  Allocation.open_account bank ~party:"p" ~budget:100.0;
  let r = Result.get_ok (Allocation.reserve bank ~party:"p" ~amount:10.0) in
  Allocation.settle r ~actual:30.0;
  Alcotest.(check (option (float 1e-9))) "overrun charged" (Some 30.0)
    (Allocation.charged bank ~party:"p")

let test_allocation_prefix_party () =
  let bank = Allocation.create () in
  Allocation.open_account bank ~party:"/O=Grid" ~budget:10.0;
  Allocation.open_account bank ~party:"/O=Grid/O=Fusion" ~budget:10.0;
  Alcotest.(check (option string)) "longest prefix wins" (Some "/O=Grid/O=Fusion")
    (Allocation.prefix_party_of bank (dn "/O=Grid/O=Fusion/CN=Kate"));
  Alcotest.(check (option string)) "shorter prefix fallback" (Some "/O=Grid")
    (Allocation.prefix_party_of bank (dn "/O=Grid/O=Other/CN=X"));
  Alcotest.(check (option string)) "no party" None
    (Allocation.prefix_party_of bank (dn "/O=Elsewhere/CN=Y"))

let test_allocation_invalid_args () =
  let bank = Allocation.create () in
  Alcotest.(check bool) "negative budget raises" true
    (try
       Allocation.open_account bank ~party:"p" ~budget:(-1.0);
       false
     with Invalid_argument _ -> true);
  Allocation.open_account bank ~party:"p" ~budget:1.0;
  Alcotest.(check bool) "duplicate raises" true
    (try
       Allocation.open_account bank ~party:"p" ~budget:1.0;
       false
     with Invalid_argument _ -> true)

let qcheck_allocation_never_negative =
  QCheck.Test.make ~name:"allocation balance never exceeds budget nor goes negative"
    ~count:200
    QCheck.(small_list (pair (int_range 1 50) (int_range 0 60)))
    (fun ops ->
      let bank = Allocation.create () in
      Allocation.open_account bank ~party:"p" ~budget:100.0;
      List.iter
        (fun (amount, actual) ->
          match Allocation.reserve bank ~party:"p" ~amount:(float_of_int amount) with
          | Ok r -> Allocation.settle r ~actual:(float_of_int actual)
          | Error _ -> ())
        ops;
      match Allocation.balance bank ~party:"p" with
      | Some b -> b <= 100.0 +. 1e-9
      | None -> false)

let () =
  Alcotest.run "grid_accounts"
    [ ( "pool",
        [ Alcotest.test_case "acquire/release" `Quick test_pool_acquire_release;
          Alcotest.test_case "holder stickiness" `Quick test_pool_same_holder_same_account;
          Alcotest.test_case "renewal extends" `Quick test_pool_lease_renewal_extends;
          Alcotest.test_case "expiry reclaims" `Quick test_pool_expiry_reclaims;
          Alcotest.test_case "holder_of" `Quick test_pool_holder_of;
          Alcotest.test_case "release unknown" `Quick test_pool_release_unknown;
          QCheck_alcotest.to_alcotest qcheck_pool_never_double_allocates ] );
      ( "sandbox",
        [ Alcotest.test_case "unrestricted" `Quick test_sandbox_unrestricted;
          Alcotest.test_case "cpu limit" `Quick test_sandbox_cpu_limit;
          Alcotest.test_case "memory+walltime" `Quick test_sandbox_memory_and_walltime;
          Alcotest.test_case "paths" `Quick test_sandbox_paths;
          Alcotest.test_case "executables" `Quick test_sandbox_executables;
          Alcotest.test_case "intersect" `Quick test_sandbox_intersect;
          Alcotest.test_case "of_policy_clause" `Quick test_sandbox_of_policy_clause;
          Alcotest.test_case "unenforceable ignored" `Quick
            test_sandbox_of_policy_clause_ignores_unenforceable ] );
      ( "mapper",
        [ Alcotest.test_case "static first" `Quick test_mapper_static_first;
          Alcotest.test_case "dynamic fallback" `Quick test_mapper_dynamic_fallback;
          Alcotest.test_case "no account" `Quick test_mapper_no_account;
          Alcotest.test_case "limits attached" `Quick test_mapper_limits_attached ] );
      ( "allocation",
        [ Alcotest.test_case "lifecycle" `Quick test_allocation_lifecycle;
          Alcotest.test_case "refusal" `Quick test_allocation_refusal;
          Alcotest.test_case "settle idempotent" `Quick test_allocation_settle_idempotent;
          Alcotest.test_case "cancel" `Quick test_allocation_cancel;
          Alcotest.test_case "overrun charged" `Quick test_allocation_overrun_still_charged;
          Alcotest.test_case "prefix party" `Quick test_allocation_prefix_party;
          Alcotest.test_case "invalid args" `Quick test_allocation_invalid_args;
          QCheck_alcotest.to_alcotest qcheck_allocation_never_negative ] ) ]
