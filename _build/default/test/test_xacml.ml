(* Tests for the XACML-style XML front end (Section 6.3's replacement
   syntax) and the underlying XML reader. *)

open Grid_policy

let dn = Grid_gsi.Dn.parse

(* --- XML reader ---------------------------------------------------------- *)

let test_xml_basic () =
  let doc = Xml_lite.parse {|<?xml version="1.0"?><a x="1"><b>text</b><c/></a>|} in
  Alcotest.(check string) "root" "a" doc.Xml_lite.tag;
  Alcotest.(check (option string)) "attr" (Some "1") (Xml_lite.attr doc "x");
  Alcotest.(check int) "children" 2 (List.length doc.Xml_lite.children);
  (match Xml_lite.child_named doc "b" with
  | Some b -> Alcotest.(check string) "text" "text" b.Xml_lite.text
  | None -> Alcotest.fail "child b missing");
  Alcotest.(check bool) "self-closing" true (Xml_lite.child_named doc "c" <> None)

let test_xml_entities () =
  let doc = Xml_lite.parse {|<a x="&lt;&amp;&gt;">&quot;v&apos;</a>|} in
  Alcotest.(check (option string)) "attr entities" (Some "<&>") (Xml_lite.attr doc "x");
  Alcotest.(check string) "text entities" {|"v'|} doc.Xml_lite.text

let test_xml_comments_and_ws () =
  let doc =
    Xml_lite.parse
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<a>\n  <!-- inner -->\n  <b/>\n</a>\n"
  in
  Alcotest.(check int) "comments skipped" 1 (List.length doc.Xml_lite.children)

let test_xml_errors () =
  let bad s =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %s" s)
      true
      (try
         ignore (Xml_lite.parse s);
         false
       with Xml_lite.Parse_error _ -> true)
  in
  bad "";
  bad "<a>";
  bad "<a></b>";
  bad "<a";
  bad "<a x=1/>";
  bad "<a x=\"1/>";
  bad "<a>&unknown;</a>";
  bad "<a/><b/>";
  bad "<a>text"

let test_xml_roundtrip () =
  let doc =
    Xml_lite.element ~attrs:[ ("k", "v<&>") ] "root"
      [ Xml_lite.element ~text:"hello \"world\"" "child" [];
        Xml_lite.element "empty" [] ]
  in
  let doc' = Xml_lite.parse (Xml_lite.to_string doc) in
  Alcotest.(check (option string)) "attr survives" (Some "v<&>") (Xml_lite.attr doc' "k");
  match Xml_lite.child_named doc' "child" with
  | Some c -> Alcotest.(check string) "text survives" "hello \"world\"" c.Xml_lite.text
  | None -> Alcotest.fail "child lost"

(* --- XACML front end ------------------------------------------------------- *)

let figure3_xacml =
  {|<?xml version="1.0"?>
<Policy PolicyId="fusion-vo">
  <Rule RuleId="must-tag" Effect="Obligation">
    <Target>
      <Subjects><Subject>/O=Grid/O=Globus/OU=mcs.anl.gov</Subject></Subjects>
      <Actions><Action>start</Action></Actions>
    </Target>
    <Condition><Match AttributeId="jobtag" MatchId="present"/></Condition>
  </Rule>
  <Rule RuleId="bo-test1" Effect="Permit">
    <Target>
      <Subjects><Subject>/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu</Subject></Subjects>
      <Actions><Action>start</Action></Actions>
    </Target>
    <Condition>
      <Match AttributeId="executable" MatchId="equal">test1</Match>
      <Match AttributeId="directory" MatchId="equal">/sandbox/test</Match>
      <Match AttributeId="jobtag" MatchId="equal">ADS</Match>
      <Match AttributeId="count" MatchId="less-than">4</Match>
    </Condition>
  </Rule>
  <Rule RuleId="bo-test2" Effect="Permit">
    <Target>
      <Subjects><Subject>/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu</Subject></Subjects>
      <Actions><Action>start</Action></Actions>
    </Target>
    <Condition>
      <Match AttributeId="executable" MatchId="equal">test2</Match>
      <Match AttributeId="directory" MatchId="equal">/sandbox/test</Match>
      <Match AttributeId="jobtag" MatchId="equal">NFC</Match>
      <Match AttributeId="count" MatchId="less-than">4</Match>
    </Condition>
  </Rule>
  <Rule RuleId="kate-transp" Effect="Permit">
    <Target>
      <Subjects><Subject>/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey</Subject></Subjects>
      <Actions><Action>start</Action></Actions>
    </Target>
    <Condition>
      <Match AttributeId="executable" MatchId="equal">TRANSP</Match>
      <Match AttributeId="directory" MatchId="equal">/sandbox/test</Match>
      <Match AttributeId="jobtag" MatchId="equal">NFC</Match>
    </Condition>
  </Rule>
  <Rule RuleId="kate-cancel" Effect="Permit">
    <Target>
      <Subjects><Subject>/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey</Subject></Subjects>
      <Actions><Action>cancel</Action></Actions>
    </Target>
    <Condition><Match AttributeId="jobtag" MatchId="equal">NFC</Match></Condition>
  </Rule>
</Policy>|}

let start ~who ~rsl =
  Types.start_request ~subject:(dn who) ~job:(Grid_rsl.Parser.parse_clause_exn rsl)

let manage ~who ~action ~owner ~tag =
  Types.management_request ~subject:(dn who) ~action ~jobowner:(dn owner) ~jobtag:tag

(* The probes used to compare syntaxes decision-for-decision. *)
let probes =
  [ start ~who:Figure3.bo_liu
      ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)";
    start ~who:Figure3.bo_liu
      ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)";
    start ~who:Figure3.bo_liu
      ~rsl:"&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)";
    start ~who:Figure3.bo_liu ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)";
    start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(directory=/sandbox/test)";
    start ~who:Figure3.kate_keahey
      ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)";
    start ~who:Figure3.kate_keahey ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)";
    manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
      ~tag:(Some "NFC");
    manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
      ~tag:(Some "ADS");
    manage ~who:Figure3.bo_liu ~action:Types.Action.Cancel ~owner:Figure3.kate_keahey
      ~tag:(Some "NFC");
    start ~who:"/O=Elsewhere/CN=X" ~rsl:"&(executable=test1)(jobtag=ADS)" ]

let test_xacml_figure3_equivalent () =
  (* The XACML rendering of Figure 3 makes the same decisions as the
     RSL-syntax original on every probe. *)
  let xacml_policy = Xacml.parse figure3_xacml in
  let rsl_policy = Figure3.get () in
  List.iteri
    (fun i probe ->
      Alcotest.(check bool)
        (Printf.sprintf "probe %d" i)
        (Eval.is_permit (Eval.evaluate rsl_policy probe))
        (Eval.is_permit (Eval.evaluate xacml_policy probe)))
    probes

let test_xacml_parse_structure () =
  let policy = Xacml.parse figure3_xacml in
  Alcotest.(check int) "five statements" 5 (List.length policy);
  match policy with
  | req :: _ ->
    Alcotest.(check bool) "obligation becomes requirement" true
      (req.Types.kind = Types.Requirement)
  | [] -> Alcotest.fail "empty"

let test_xacml_value_sets_and_self () =
  let policy =
    Xacml.parse
      {|<Policy>
          <Rule RuleId="r" Effect="Permit">
            <Target>
              <Subjects><Subject>/O=G</Subject></Subjects>
              <Actions><Action>start</Action></Actions>
            </Target>
            <Condition>
              <Match AttributeId="executable" MatchId="equal">
                <Value>a</Value><Value>b</Value>
              </Match>
            </Condition>
          </Rule>
          <Rule RuleId="own" Effect="Permit">
            <Target>
              <Subjects><Subject>/O=G</Subject></Subjects>
              <Actions><Action>cancel</Action></Actions>
            </Target>
            <Condition>
              <Match AttributeId="jobowner" MatchId="equal">self</Match>
            </Condition>
          </Rule>
        </Policy>|}
  in
  Alcotest.(check bool) "value set member" true
    (Eval.is_permit (Eval.evaluate policy (start ~who:"/O=G/CN=U" ~rsl:"&(executable=b)")));
  Alcotest.(check bool) "value set non-member" false
    (Eval.is_permit (Eval.evaluate policy (start ~who:"/O=G/CN=U" ~rsl:"&(executable=c)")));
  Alcotest.(check bool) "self works" true
    (Eval.is_permit
       (Eval.evaluate policy
          (manage ~who:"/O=G/CN=U" ~action:Types.Action.Cancel ~owner:"/O=G/CN=U" ~tag:None)));
  Alcotest.(check bool) "self rejects others" false
    (Eval.is_permit
       (Eval.evaluate policy
          (manage ~who:"/O=G/CN=U" ~action:Types.Action.Cancel ~owner:"/O=G/CN=V" ~tag:None)))

let test_xacml_errors () =
  let bad text =
    match Xacml.parse_result text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" text
  in
  bad "<NotPolicy/>";
  bad "<Policy><Rule RuleId=\"r\"><Target/></Rule></Policy>";
  bad
    {|<Policy><Rule RuleId="r" Effect="Permit"><Target><Subjects><Subject>/O=G</Subject></Subjects></Target></Rule></Policy>|};
  bad
    {|<Policy><Rule RuleId="r" Effect="Permit"><Target><Subjects><Subject>bad-dn</Subject></Subjects><Actions><Action>start</Action></Actions></Target></Rule></Policy>|};
  bad
    {|<Policy><Rule RuleId="r" Effect="Permit"><Target><Subjects><Subject>/O=G</Subject></Subjects><Actions><Action>fly</Action></Actions></Target></Rule></Policy>|};
  bad
    {|<Policy><Rule RuleId="r" Effect="Deny"><Target><Subjects><Subject>/O=G</Subject></Subjects><Actions><Action>start</Action></Actions></Target></Rule></Policy>|}

let test_xacml_export_roundtrip_figure3 () =
  let policy = Figure3.get () in
  let exported = Xacml.to_string ~policy_id:"figure3" policy in
  let reimported = Xacml.parse exported in
  List.iteri
    (fun i probe ->
      Alcotest.(check bool)
        (Printf.sprintf "probe %d survives export/import" i)
        (Eval.is_permit (Eval.evaluate policy probe))
        (Eval.is_permit (Eval.evaluate reimported probe)))
    probes

(* Generator of random policies over a small vocabulary, for the
   round-trip property. *)
let gen_policy : Types.t QCheck.Gen.t =
  QCheck.Gen.(
    let subject =
      oneofl
        [ "/O=Grid/O=T"; "/O=Grid/O=T/CN=Alice"; "/O=Grid/O=T/CN=Bob"; "/O=Other/CN=Eve" ]
    in
    let attr = oneofl [ "executable"; "directory"; "count"; "jobtag"; "queue"; "jobowner" ] in
    let value =
      oneof
        [ map (fun s -> Types.Str s) (oneofl [ "a"; "b"; "/x/y"; "3"; "7" ]);
          return Types.Self ]
    in
    let constr =
      let* attribute = attr in
      let* op = oneofl Grid_rsl.Ast.[ Eq; Neq; Lt; Gt; Le; Ge ] in
      match op with
      | Grid_rsl.Ast.Lt | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Le | Grid_rsl.Ast.Ge ->
        (* keep numeric bounds well-formed *)
        let* bound = oneofl [ "2"; "5"; "10" ] in
        return { Types.attribute; op; values = [ Types.Str bound ] }
      | Grid_rsl.Ast.Eq | Grid_rsl.Ast.Neq ->
        let* null = frequency [ (4, return false); (1, return true) ] in
        if null then return { Types.attribute; op; values = [ Types.Null ] }
        else
          let* values = list_size (int_range 1 3) value in
          return { Types.attribute; op; values }
    in
    let action_constr =
      let* actions =
        list_size (int_range 1 2) (oneofl [ "start"; "cancel"; "information"; "signal" ])
      in
      return
        { Types.attribute = "action";
          op = Grid_rsl.Ast.Eq;
          values = List.map (fun a -> Types.Str a) (List.sort_uniq compare actions) }
    in
    let clause =
      let* head = action_constr in
      let* rest = list_size (int_range 0 4) constr in
      return (head :: rest)
    in
    let statement =
      let* kind = frequency [ (4, return Types.Grant); (1, return Types.Requirement) ] in
      let* subject = subject in
      let* clauses = list_size (int_range 1 3) clause in
      return { Types.kind; subject_pattern = Grid_gsi.Dn.parse subject; clauses }
    in
    list_size (int_range 1 6) statement)

let gen_probe : Types.request QCheck.Gen.t =
  QCheck.Gen.(
    let subject =
      oneofl
        [ "/O=Grid/O=T/CN=Alice"; "/O=Grid/O=T/CN=Bob"; "/O=Other/CN=Eve"; "/O=Grid/O=T/CN=Carol" ]
    in
    let* who = subject in
    let* kind = oneofl [ `Start; `Manage ] in
    match kind with
    | `Start ->
      let* exe = oneofl [ "a"; "b"; "c" ] in
      let* count = oneofl [ 1; 3; 7 ] in
      let* tag = oneofl [ None; Some "a"; Some "b" ] in
      let tag_text = match tag with None -> "" | Some t -> Printf.sprintf "(jobtag=%s)" t in
      return (start ~who ~rsl:(Printf.sprintf "&(executable=%s)(count=%d)%s" exe count tag_text))
    | `Manage ->
      let* owner = subject in
      let* action = oneofl Types.Action.[ Cancel; Information; Signal ] in
      let* tag = oneofl [ None; Some "a" ] in
      return (manage ~who ~action ~owner ~tag))

let qcheck_export_import_decision_equivalent =
  QCheck.Test.make ~name:"XACML export/import preserves decisions" ~count:200
    (QCheck.make
       QCheck.Gen.(pair gen_policy (list_size (int_range 1 8) gen_probe))
       ~print:(fun (p, _) -> Types.to_string p))
    (fun (policy, probes) ->
      match Xacml.parse_result (Xacml.to_string policy) with
      | Error _ -> false
      | Ok policy' ->
        List.for_all
          (fun probe ->
            Eval.is_permit (Eval.evaluate policy probe)
            = Eval.is_permit (Eval.evaluate policy' probe))
          probes)

let qcheck_xml_fuzz_no_crash =
  QCheck.Test.make ~name:"XML parser never crashes" ~count:500
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s ->
      match Xml_lite.parse s with
      | _ -> true
      | exception Xml_lite.Parse_error _ -> true)

let qcheck_xacml_fuzz_no_crash =
  QCheck.Test.make ~name:"XACML parser never crashes" ~count:500
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s ->
      match Xacml.parse_result s with
      | Ok _ | Error _ -> true)

let () =
  Alcotest.run "grid_policy_xacml"
    [ ( "xml",
        [ Alcotest.test_case "basic" `Quick test_xml_basic;
          Alcotest.test_case "entities" `Quick test_xml_entities;
          Alcotest.test_case "comments" `Quick test_xml_comments_and_ws;
          Alcotest.test_case "errors" `Quick test_xml_errors;
          Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_xml_fuzz_no_crash ] );
      ( "xacml",
        [ Alcotest.test_case "figure3 equivalent" `Quick test_xacml_figure3_equivalent;
          Alcotest.test_case "structure" `Quick test_xacml_parse_structure;
          Alcotest.test_case "value sets + self" `Quick test_xacml_value_sets_and_self;
          Alcotest.test_case "errors" `Quick test_xacml_errors;
          Alcotest.test_case "figure3 export round-trip" `Quick
            test_xacml_export_roundtrip_figure3;
          QCheck_alcotest.to_alcotest qcheck_export_import_decision_equivalent;
          QCheck_alcotest.to_alcotest qcheck_xacml_fuzz_no_crash ] ) ]
