(* Tests for grid_vo: membership, profiles, jobtags, policy compilation. *)

open Grid_vo

let dn = Grid_gsi.Dn.parse

let org = "/O=Grid/O=Fusion"
let alice = org ^ "/CN=Alice"
let bob = org ^ "/CN=Bob"

let make_vo () =
  let vo = Vo.create ~member_prefix:org "fusion" in
  Vo.add_profile vo
    (Profile.make "developers"
       ~start_rules:
         [ Profile.start_rule ~directory:"/sandbox" ~jobtag:"DEV" ~max_count:4
             [ "test1"; "test2" ] ]);
  Vo.add_profile vo
    (Profile.make "admins" ~manage_tags:[ "DEV"; "PROD" ]
       ~start_rules:[ Profile.start_rule ~jobtag:"PROD" [ "TRANSP" ] ]);
  Vo.add_member vo ~dn:alice ~groups:[ "developers" ];
  Vo.add_member vo ~dn:bob ~groups:[ "developers"; "admins" ];
  vo

let test_membership () =
  let vo = make_vo () in
  Alcotest.(check bool) "alice member" true (Vo.is_member vo (dn alice));
  Alcotest.(check bool) "stranger not" false (Vo.is_member vo (dn "/O=Grid/CN=X"));
  Alcotest.(check (list string)) "alice groups" [ "developers" ] (Vo.groups_of vo (dn alice));
  Alcotest.(check bool) "bob is admin" true (Vo.in_group vo (dn bob) "admins");
  Alcotest.(check bool) "alice is not admin" false (Vo.in_group vo (dn alice) "admins")

let test_duplicate_member_rejected () =
  let vo = make_vo () in
  Alcotest.(check bool) "raises" true
    (try
       Vo.add_member vo ~dn:alice ~groups:[];
       false
     with Invalid_argument _ -> true)

let test_remove_member () =
  let vo = make_vo () in
  Vo.remove_member vo ~dn:(dn alice);
  Alcotest.(check bool) "gone" false (Vo.is_member vo (dn alice))

let test_jobtags () =
  let vo = make_vo () in
  Vo.register_jobtag vo "DEV";
  Vo.register_jobtag vo "DEV";
  Vo.register_jobtag vo "PROD";
  Alcotest.(check (list string)) "idempotent registration" [ "DEV"; "PROD" ] (Vo.jobtags vo);
  Alcotest.(check bool) "registered" true (Vo.jobtag_registered vo "DEV");
  Alcotest.(check bool) "not registered" false (Vo.jobtag_registered vo "X")

let eval policy request = Grid_policy.Eval.is_permit (Grid_policy.Eval.evaluate policy request)

let start ~who ~rsl =
  Grid_policy.Types.start_request ~subject:(dn who)
    ~job:(Grid_rsl.Parser.parse_clause_exn rsl)

let manage ~who ~action ~owner ~tag =
  Grid_policy.Types.management_request ~subject:(dn who) ~action ~jobowner:(dn owner)
    ~jobtag:tag

let test_compiled_policy_grants () =
  let vo = make_vo () in
  let policy = Vo.compile_policy vo in
  Alcotest.(check bool) "alice starts test1" true
    (eval policy (start ~who:alice ~rsl:"&(executable=test1)(directory=/sandbox)(jobtag=DEV)(count=2)"));
  Alcotest.(check bool) "alice blocked on count" false
    (eval policy (start ~who:alice ~rsl:"&(executable=test1)(directory=/sandbox)(jobtag=DEV)(count=4)"));
  Alcotest.(check bool) "alice cannot run TRANSP" false
    (eval policy (start ~who:alice ~rsl:"&(executable=TRANSP)(jobtag=PROD)"));
  Alcotest.(check bool) "bob (admin) runs TRANSP" true
    (eval policy (start ~who:bob ~rsl:"&(executable=TRANSP)(jobtag=PROD)"))

let test_compiled_policy_management () =
  let vo = make_vo () in
  let policy = Vo.compile_policy vo in
  Alcotest.(check bool) "admin cancels DEV job" true
    (eval policy
       (manage ~who:bob ~action:Grid_policy.Types.Action.Cancel ~owner:alice
          ~tag:(Some "DEV")));
  Alcotest.(check bool) "developer cannot cancel others" false
    (eval policy
       (manage ~who:alice ~action:Grid_policy.Types.Action.Cancel ~owner:bob
          ~tag:(Some "PROD")));
  Alcotest.(check bool) "developer manages own job (self rule)" true
    (eval policy
       (manage ~who:alice ~action:Grid_policy.Types.Action.Cancel ~owner:alice
          ~tag:(Some "DEV")))

let test_may_manage_own_disabled () =
  let vo = Vo.create "strict" in
  Vo.add_profile vo
    (Profile.make "workers" ~may_manage_own:false
       ~start_rules:[ Profile.start_rule [ "x" ] ]);
  Vo.add_member vo ~dn:alice ~groups:[ "workers" ];
  let policy = Vo.compile_policy vo in
  Alcotest.(check bool) "own-management withheld" false
    (eval policy
       (manage ~who:alice ~action:Grid_policy.Types.Action.Cancel ~owner:alice ~tag:None))

let test_jobtag_requirement_compiled () =
  let vo = make_vo () in
  Vo.require_jobtag vo;
  let policy = Vo.compile_policy vo in
  Alcotest.(check bool) "untagged start denied" false
    (eval policy (start ~who:alice ~rsl:"&(executable=test1)(directory=/sandbox)"));
  match Grid_policy.Eval.evaluate policy
          (start ~who:alice ~rsl:"&(executable=test1)(directory=/sandbox)") with
  | Grid_policy.Eval.Deny (Grid_policy.Eval.Requirement_violated _) -> ()
  | d -> Alcotest.failf "expected requirement violation, got %s"
           (Grid_policy.Eval.decision_to_string d)

let test_compiled_policy_parses_back () =
  (* The compiled policy must be expressible in the concrete syntax. *)
  let vo = make_vo () in
  Vo.require_jobtag vo;
  let text = Grid_policy.Types.to_string (Vo.compile_policy vo) in
  match Grid_policy.Parse.parse_result text with
  | Ok policy' ->
    Alcotest.(check int) "same statement count"
      (List.length (Vo.compile_policy vo))
      (List.length policy')
  | Error m -> Alcotest.failf "compiled policy unparseable: %s" m

let test_membership_extension () =
  let vo = make_vo () in
  (match Vo.membership_extension vo (dn bob) with
  | Some ext ->
    Alcotest.(check string) "oid" "vo-membership" ext.Grid_gsi.Cert.oid;
    Alcotest.(check string) "payload" "fusion|developers,admins" ext.Grid_gsi.Cert.payload
  | None -> Alcotest.fail "member extension missing");
  Alcotest.(check bool) "no extension for stranger" true
    (Vo.membership_extension vo (dn "/O=Grid/CN=X") = None)

let test_unknown_group_profile_ignored () =
  let vo = Vo.create "v" in
  Vo.add_member vo ~dn:alice ~groups:[ "ghost-group" ];
  Alcotest.(check int) "no grants for unprofiled group" 0
    (List.length (Vo.compile_policy vo))

let () =
  Alcotest.run "grid_vo"
    [ ( "membership",
        [ Alcotest.test_case "membership" `Quick test_membership;
          Alcotest.test_case "duplicates rejected" `Quick test_duplicate_member_rejected;
          Alcotest.test_case "remove" `Quick test_remove_member;
          Alcotest.test_case "jobtags" `Quick test_jobtags;
          Alcotest.test_case "extension" `Quick test_membership_extension ] );
      ( "policy-compilation",
        [ Alcotest.test_case "grants" `Quick test_compiled_policy_grants;
          Alcotest.test_case "management" `Quick test_compiled_policy_management;
          Alcotest.test_case "own-management toggle" `Quick test_may_manage_own_disabled;
          Alcotest.test_case "jobtag requirement" `Quick test_jobtag_requirement_compiled;
          Alcotest.test_case "parses back" `Quick test_compiled_policy_parses_back;
          Alcotest.test_case "unprofiled group" `Quick test_unknown_group_profile_ignored ] ) ]
