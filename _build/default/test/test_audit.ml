(* Tests for grid_audit. *)

let dn = Grid_gsi.Dn.parse

let test_log_and_query () =
  let a = Grid_audit.Audit.create () in
  let kate = dn "/O=Grid/CN=Kate" in
  let bo = dn "/O=Grid/CN=Bo" in
  Grid_audit.Audit.log a ~at:1.0 ~kind:Grid_audit.Audit.Authentication ~subject:kate
    ~outcome:Grid_audit.Audit.Success "login";
  Grid_audit.Audit.log a ~at:2.0 ~kind:Grid_audit.Audit.Authorization ~subject:kate
    ~job_id:"job-1" ~outcome:Grid_audit.Audit.Success "start";
  Grid_audit.Audit.log a ~at:3.0 ~kind:Grid_audit.Audit.Authorization ~subject:bo
    ~job_id:"job-2" ~outcome:(Grid_audit.Audit.Failure "denied") "start";
  Alcotest.(check int) "count" 3 (Grid_audit.Audit.count a);
  Alcotest.(check int) "authz records" 2
    (List.length (Grid_audit.Audit.by_kind a Grid_audit.Audit.Authorization));
  Alcotest.(check int) "kate's records" 2 (List.length (Grid_audit.Audit.by_subject a kate));
  Alcotest.(check int) "job-2 records" 1 (List.length (Grid_audit.Audit.by_job a "job-2"));
  Alcotest.(check int) "failures" 1 (List.length (Grid_audit.Audit.failures a))

let test_chronological_order () =
  let a = Grid_audit.Audit.create () in
  for i = 1 to 5 do
    Grid_audit.Audit.log a ~at:(float_of_int i) ~kind:Grid_audit.Audit.Job_state
      ~outcome:Grid_audit.Audit.Success (string_of_int i)
  done;
  let details = List.map (fun r -> r.Grid_audit.Audit.detail) (Grid_audit.Audit.records a) in
  Alcotest.(check (list string)) "in order" [ "1"; "2"; "3"; "4"; "5" ] details

let test_pp_does_not_raise () =
  let a = Grid_audit.Audit.create () in
  Grid_audit.Audit.log a ~at:1.0 ~kind:Grid_audit.Audit.Account_mapping
    ~subject:(dn "/O=Grid/CN=U") ~job_id:"j" ~outcome:(Grid_audit.Audit.Failure "x") "d";
  let s = Fmt.str "%a" Grid_audit.Audit.pp a in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* --- Reports ----------------------------------------------------------- *)

let populated_audit () =
  let a = Grid_audit.Audit.create () in
  let kate = dn "/O=Grid/CN=Kate" in
  let bo = dn "/O=Grid/CN=Bo" in
  Grid_audit.Audit.log a ~at:1.0 ~kind:Grid_audit.Audit.Authentication ~subject:kate
    ~outcome:Grid_audit.Audit.Success "login";
  Grid_audit.Audit.log a ~at:2.0 ~kind:Grid_audit.Audit.Authorization ~subject:kate
    ~job_id:"j1" ~outcome:Grid_audit.Audit.Success "start";
  Grid_audit.Audit.log a ~at:3.0 ~kind:Grid_audit.Audit.Job_submission ~subject:kate
    ~job_id:"j1" ~outcome:Grid_audit.Audit.Success "submitted";
  Grid_audit.Audit.log a ~at:4.0 ~kind:Grid_audit.Audit.Authorization ~subject:bo
    ~job_id:"j2" ~outcome:(Grid_audit.Audit.Failure "denied: count") "start";
  Grid_audit.Audit.log a ~at:5.0 ~kind:Grid_audit.Audit.Authorization ~subject:bo
    ~job_id:"j3" ~outcome:(Grid_audit.Audit.Failure "denied: count") "start";
  Grid_audit.Audit.log a ~at:6.0 ~kind:Grid_audit.Audit.Job_management ~subject:kate
    ~job_id:"j1" ~outcome:Grid_audit.Audit.Success "cancel";
  (a, kate, bo)

let test_reports_by_subject () =
  let a, kate, bo = populated_audit () in
  let summaries = Grid_audit.Reports.by_subject a in
  Alcotest.(check int) "two subjects" 2 (List.length summaries);
  let find d =
    List.find (fun s -> Grid_gsi.Dn.equal s.Grid_audit.Reports.subject d) summaries
  in
  let k = find kate and b = find bo in
  Alcotest.(check int) "kate authn" 1 k.Grid_audit.Reports.authentications;
  Alcotest.(check int) "kate submissions" 1 k.Grid_audit.Reports.submissions;
  Alcotest.(check int) "kate management" 1 k.Grid_audit.Reports.management_actions;
  Alcotest.(check int) "bo denials" 2 b.Grid_audit.Reports.authz_denials;
  Alcotest.(check int) "bo authz total" 2 b.Grid_audit.Reports.authorizations

let test_reports_denial_reasons () =
  let a, _, _ = populated_audit () in
  match Grid_audit.Reports.denial_reasons a with
  | [ ("denied: count", 2) ] -> ()
  | other ->
    Alcotest.failf "unexpected: %s"
      (String.concat "; " (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n) other))

let test_reports_kind_counts () =
  let a, _, _ = populated_audit () in
  let counts = Grid_audit.Reports.kind_counts a in
  Alcotest.(check (option int)) "authz count" (Some 3)
    (List.assoc_opt Grid_audit.Audit.Authorization counts)

let test_reports_pp () =
  let a, _, _ = populated_audit () in
  let s = Fmt.str "%a" Grid_audit.Reports.pp a in
  Alcotest.(check bool) "mentions denial reason" true
    (Grid_util.Str_search.contains s "denied: count")

let () =
  Alcotest.run "grid_audit"
    [ ( "audit",
        [ Alcotest.test_case "log and query" `Quick test_log_and_query;
          Alcotest.test_case "chronological" `Quick test_chronological_order;
          Alcotest.test_case "pp" `Quick test_pp_does_not_raise ] );
      ( "reports",
        [ Alcotest.test_case "by subject" `Quick test_reports_by_subject;
          Alcotest.test_case "denial reasons" `Quick test_reports_denial_reasons;
          Alcotest.test_case "kind counts" `Quick test_reports_kind_counts;
          Alcotest.test_case "pp" `Quick test_reports_pp ] ) ]
