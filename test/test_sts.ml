(* The STS differential gate and unit suite.

   Five sections:

   - token: the signed capability token itself — codec round-trip,
     tamper evidence, every verify refusal, entitlement matching;
   - exchange: trust-relation matching, TTL capping, refusal paths,
     and refresh-before-expiry through the escrow;
   - enforcement: for each distribution mode, after a revocation at T
     no token-authorized permit happens later than T + the mode's
     propagation window;
   - differential: under a pinned seed matrix (1/7/42) a tokenized
     Fusion world must be decision- AND reason-equivalent to the plain
     proxy-path world for identical submission scripts — the token
     gate adds a credential check, never a policy opinion;
   - soak: tokenized campaigns run violation-free under the online
     safety monitor in all three modes, and the monitor's
     token-revocation invariant catches a planted violation. *)

open Core
module Sts = Core.Sts
module Token = Sts.Token
module Service = Sts.Service
module Validator = Sts.Validator
module Callout = Grid_callout.Callout

let dn = Grid_gsi.Dn.parse
let seeds = [ 1; 7; 42 ]
let population_size = 2_000

(* --- A minimal STS world ------------------------------------------------- *)

type world = {
  engine : Grid_sim.Engine.t;
  trust : Grid_gsi.Ca.Trust_store.store;
  ca : Grid_gsi.Ca.t;
  service : Service.t;
}

let setup ?default_ttl ?relations ?(mode = Validator.Short_ttl) () =
  Grid_util.Ids.reset ();
  Grid_crypto.Keypair.reset_keystore ();
  let engine = Grid_sim.Engine.create () in
  let ca = Grid_gsi.Ca.create ~now:0.0 "/O=Grid/CN=CA" in
  let trust = Grid_gsi.Ca.Trust_store.create () in
  Grid_gsi.Ca.Trust_store.add trust (Grid_gsi.Ca.certificate ca);
  let service =
    Service.create ~name:"test-sts" ?default_ttl ~mode ?relations ~engine ~trust
      ~obs:Grid_obs.Obs.noop ()
  in
  { engine; trust; ca; service }

let identity w ?(lifetime = 43_200.0) name =
  Grid_gsi.Identity.create ~ca:w.ca ~now:(Grid_sim.Engine.now w.engine)
    ~lifetime ("/O=Grid/CN=" ^ name)

let credential_of w id =
  Grid_gsi.Credential.of_identity id ~challenge:(Service.fresh_challenge w.service)

(* --- Token -------------------------------------------------------------- *)

let signing_key () =
  let kp = Grid_crypto.Keypair.generate ~seed_material:"test-sts-key" in
  Grid_crypto.Keypair.register kp;
  kp

let sample_token ?(audience = "*") ?(entitlements = [ "*" ]) key =
  Token.make ~subject:(dn "/O=Grid/CN=Alice") ~audience ~entitlements
    ~jti:"jti-1" ~epoch:3 ~issued_at:10.0 ~not_after:910.0
    ~signing_key:(Grid_crypto.Keypair.secret key)

let test_token_roundtrip () =
  let key = signing_key () in
  let t = sample_token key in
  match Token.decode (Token.encode t) with
  | Error m -> Alcotest.failf "decode failed: %s" m
  | Ok t' ->
    Alcotest.(check bool) "identical token" true (t = t');
    Alcotest.(check bool) "decoded token verifies" true
      (Token.verify t' ~sts_key:(Grid_crypto.Keypair.public key)
         ~presenter:(dn "/O=Grid/CN=Alice") ~audience:"gram" ~now:500.0
      = Ok ())

let test_token_verify_refusals () =
  let key = signing_key () in
  let pub = Grid_crypto.Keypair.public key in
  let t = sample_token ~audience:"gram" key in
  let alice = dn "/O=Grid/CN=Alice" in
  let verify ?(presenter = alice) ?(audience = "gram") ?(now = 500.0) tok =
    Token.verify tok ~sts_key:pub ~presenter ~audience ~now
  in
  Alcotest.(check bool) "valid" true (verify t = Ok ());
  (match verify { t with Token.entitlements = [ "start"; "cancel" ] } with
  | Error Token.Bad_signature -> ()
  | _ -> Alcotest.fail "entitlement tamper accepted");
  (match verify ~now:1e6 t with
  | Error Token.Expired -> ()
  | _ -> Alcotest.fail "expired token accepted");
  (match verify ~now:1.0 t with
  | Error Token.Not_yet_valid -> ()
  | _ -> Alcotest.fail "pre-validity token accepted");
  (match verify ~audience:"storage" t with
  | Error (Token.Audience_mismatch _) -> ()
  | _ -> Alcotest.fail "wrong audience accepted");
  match verify ~presenter:(dn "/O=Grid/CN=Mallory") t with
  | Error (Token.Subject_mismatch _) -> ()
  | _ -> Alcotest.fail "stolen token accepted"

let test_token_issued_at_instant () =
  (* The decimal rendering of a timestamp can round up past the true
     issue time; the codec must keep a token valid at the very instant
     it was minted (the in-process batch lane validates with zero
     delay). *)
  let key = signing_key () in
  let issued_at = 1234.567_890_123_4 in
  let t =
    Token.make ~subject:(dn "/O=Grid/CN=Alice") ~audience:"*"
      ~entitlements:[ "*" ] ~jti:"jti-i" ~epoch:1 ~issued_at
      ~not_after:(issued_at +. 900.0)
      ~signing_key:(Grid_crypto.Keypair.secret key)
  in
  let t' = Result.get_ok (Token.decode (Token.encode t)) in
  Alcotest.(check bool) "issued_at survives exactly" true
    (t'.Token.issued_at = issued_at);
  Alcotest.(check bool) "valid at the minting instant" true
    (Token.verify t' ~sts_key:(Grid_crypto.Keypair.public key)
       ~presenter:(dn "/O=Grid/CN=Alice") ~audience:"gram" ~now:issued_at
    = Ok ())

let test_token_permits () =
  let key = signing_key () in
  let wildcard = sample_token key in
  Alcotest.(check bool) "wildcard permits start" true
    (Token.permits wildcard Grid_policy.Types.Action.Start);
  let scoped = sample_token ~entitlements:[ "start"; "information" ] key in
  Alcotest.(check bool) "scoped permits start" true
    (Token.permits scoped Grid_policy.Types.Action.Start);
  Alcotest.(check bool) "scoped refuses cancel" false
    (Token.permits scoped Grid_policy.Types.Action.Cancel)

(* --- Exchange and refresh ------------------------------------------------ *)

let test_exchange_default_relation () =
  let w = setup () in
  let alice = identity w "Alice" in
  match Service.exchange w.service ~now:0.0 (credential_of w alice) with
  | Error e -> Alcotest.failf "exchange refused: %s" (Service.exchange_error_to_string e)
  | Ok token ->
    Alcotest.(check bool) "subject is the identity" true
      (Grid_gsi.Dn.equal token.Token.subject (Grid_gsi.Identity.subject alice));
    Alcotest.(check (list string)) "permissive entitlements" [ "*" ]
      token.Token.entitlements;
    Alcotest.(check bool) "TTL is the service default" true
      (token.Token.not_after = Service.default_ttl w.service)

let test_exchange_relation_matching () =
  let relations =
    [ Sts.Trust.relation ~subject_prefix:(dn "/O=Grid/OU=fusion")
        ~entitlements:[ "start" ] ~max_ttl:60.0 "fusion-members" ]
  in
  let w = setup ~relations () in
  let member =
    Grid_gsi.Identity.create ~ca:w.ca ~now:0.0 ~lifetime:3600.0
      "/O=Grid/OU=fusion/CN=Bob"
  in
  (match Service.exchange w.service ~now:0.0 (credential_of w member) with
  | Ok token ->
    Alcotest.(check (list string)) "relation entitlements" [ "start" ]
      token.Token.entitlements;
    Alcotest.(check bool) "relation caps the TTL" true (token.Token.not_after = 60.0)
  | Error e -> Alcotest.failf "member refused: %s" (Service.exchange_error_to_string e));
  let outsider = identity w "Outsider" in
  match Service.exchange w.service ~now:0.0 (credential_of w outsider) with
  | Error (Service.No_matching_relation _) -> ()
  | Ok _ -> Alcotest.fail "outsider exchanged without a relation"
  | Error e -> Alcotest.failf "wrong refusal: %s" (Service.exchange_error_to_string e)

let test_exchange_revoked_subject_refused () =
  let w = setup () in
  let alice = identity w "Alice" in
  ignore (Result.get_ok (Service.exchange w.service ~now:0.0 (credential_of w alice)));
  Service.revoke_subject w.service ~now:10.0 (Grid_gsi.Identity.subject alice);
  match Service.exchange w.service ~now:20.0 (credential_of w alice) with
  | Error (Service.Subject_revoked _) -> ()
  | Ok _ -> Alcotest.fail "revoked subject exchanged a new token"
  | Error e -> Alcotest.failf "wrong refusal: %s" (Service.exchange_error_to_string e)

let test_refresh_through_escrow () =
  let w = setup () in
  let alice = identity w "Alice" in
  let subject = Grid_gsi.Identity.subject alice in
  Alcotest.(check bool) "first deposit" true
    (Service.deposit w.service ~identity:alice ~authorized_renewers:[ subject ]
       ~now:0.0 ()
    = `Deposited);
  let proxy, token0 =
    Result.get_ok (Service.proxy_with_token w.service ~now:0.0 alice)
  in
  (* shortly before expiry the client redeems its current proxy for a
     fresh one *)
  let refresh_at = 0.8 *. token0.Token.not_after in
  (match
     Service.refresh w.service ~now:refresh_at ~owner:subject
       (Grid_gsi.Credential.of_identity proxy
          ~challenge:(Service.fresh_challenge w.service))
   with
  | Error e -> Alcotest.failf "refresh refused: %s" (Service.refresh_error_to_string e)
  | Ok (_proxy', token1) ->
    Alcotest.(check bool) "fresh token outlives the old" true
      (token1.Token.not_after > token0.Token.not_after);
    Alcotest.(check bool) "fresh jti" true (token1.Token.jti <> token0.Token.jti));
  (* a revoked subject cannot refresh *)
  Service.revoke_subject w.service ~now:(refresh_at +. 1.0) subject;
  match
    Service.refresh w.service ~now:(refresh_at +. 2.0) ~owner:subject
      (Grid_gsi.Credential.of_identity proxy
         ~challenge:(Service.fresh_challenge w.service))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "revoked subject refreshed"

let test_escrow_replacement_reported () =
  let w = setup () in
  let alice = identity w "Alice" in
  let subject = Grid_gsi.Identity.subject alice in
  ignore
    (Service.deposit w.service ~identity:alice ~authorized_renewers:[ subject ]
       ~now:0.0 ());
  Alcotest.(check bool) "re-deposit reports replacement" true
    (Service.deposit w.service ~identity:alice ~authorized_renewers:[ subject ]
       ~now:1.0 ()
    = `Replaced);
  Alcotest.(check int) "replacement counted" 1
    (Service.escrow_replacements w.service)

(* --- Per-mode revocation enforcement ------------------------------------ *)

(* The invariant under test, directly: once a subject is revoked at T,
   a token-gated PEP never answers a permit for it later than
   T + propagation window — whatever the mode does in between. *)
let enforcement_case mode () =
  let w = setup ~mode ~default_ttl:900.0 () in
  let validator =
    Service.attach_validator w.service ~name:"test-resource" ()
  in
  let pep =
    Sts.Pep.callout ~validator ~sts_key:(Service.public_key w.service)
      ~audience:"*"
      ~now:(fun () -> Grid_sim.Engine.now w.engine)
      Callout.permit_all
  in
  let alice = identity w "Alice" in
  let subject = Grid_gsi.Identity.subject alice in
  ignore
    (Service.deposit w.service ~identity:alice ~authorized_renewers:[ subject ]
       ~now:0.0 ());
  let current = ref (Result.get_ok (Service.proxy_with_token w.service ~now:0.0 alice)) in
  let query () =
    Callout.Query.make ~requester:subject
      ~credential:
        (Grid_gsi.Credential.of_identity (fst !current)
           ~challenge:(Service.fresh_challenge w.service))
      ~job_id:"job-1"
      (Callout.Query.Start (Grid_rsl.Parser.parse_clause_exn "&(executable=x)"))
  in
  let permitted = ref [] in
  let revoke_at = 1000.0 in
  (* probe every 100 s over two windows' worth of campaign; refresh like
     a live client at 80% of TTL so short-TTL enforcement is tested
     against an *attacker* holding the last pre-revocation token, not a
     cooperating client *)
  for i = 0 to 40 do
    let at = float_of_int i *. 100.0 in
    Grid_sim.Engine.schedule_at w.engine at (fun () ->
        let now = Grid_sim.Engine.now w.engine in
        if now < revoke_at then begin
          match
            Service.refresh w.service ~now ~owner:subject
              (Grid_gsi.Credential.of_identity (fst !current)
                 ~challenge:(Service.fresh_challenge w.service))
          with
          | Ok fresh -> current := fresh
          | Error _ -> ()
        end;
        if pep (query ()) = Ok () then permitted := now :: !permitted)
  done;
  Grid_sim.Engine.schedule_at w.engine revoke_at (fun () ->
      Service.revoke_subject w.service ~now:revoke_at subject);
  Grid_sim.Engine.run_until w.engine 4200.0;
  Validator.stop validator;
  Grid_sim.Engine.run w.engine;
  let window = Service.propagation_window w.service in
  let late =
    List.filter (fun at -> at > revoke_at +. window) !permitted
  in
  Alcotest.(check (list (float 0.0)))
    (Printf.sprintf "no permit after T + %.0fs in %s mode" window
       (Validator.mode_to_string mode))
    [] late;
  Alcotest.(check bool) "permits flowed before the revocation" true
    (List.exists (fun at -> at < revoke_at) !permitted);
  (* the stateful modes enforce long before expiry-by-TTL would *)
  if mode <> Validator.Short_ttl then
    Alcotest.(check bool) "stateful mode beats the TTL bound" true
      (window < Service.default_ttl w.service)

let test_validator_state_profile () =
  (* Push and pull hold the revocation set; short-TTL holds nothing —
     the footprint trade the bench quantifies. *)
  let residency mode =
    let w = setup ~mode () in
    let v = Service.attach_validator w.service ~name:"site" () in
    let alice = identity w "Alice" in
    ignore (Result.get_ok (Service.proxy_with_token w.service ~now:0.0 alice));
    Service.revoke_subject w.service ~now:1.0 (Grid_gsi.Identity.subject alice);
    Grid_sim.Engine.run_until w.engine 200.0;
    Validator.stop v;
    Grid_sim.Engine.run w.engine;
    (Validator.entries v, Validator.state_bytes v, Validator.enforcement_latencies v)
  in
  let entries_push, bytes_push, lat_push = residency Validator.Push in
  Alcotest.(check bool) "push holds entries" true (entries_push > 0 && bytes_push > 0);
  Alcotest.(check bool) "push records enforcement latency" true (lat_push <> []);
  let entries_pull, bytes_pull, lat_pull = residency Validator.Pull in
  Alcotest.(check bool) "pull holds entries" true (entries_pull > 0 && bytes_pull > 0);
  Alcotest.(check bool) "pull records enforcement latency" true (lat_pull <> []);
  let entries_ttl, bytes_ttl, lat_ttl = residency Validator.Short_ttl in
  Alcotest.(check int) "short-ttl holds nothing" 0 entries_ttl;
  Alcotest.(check int) "short-ttl zero bytes" 0 bytes_ttl;
  Alcotest.(check (list (float 0.0))) "short-ttl records no latency" [] lat_ttl

(* --- The token PEP ------------------------------------------------------- *)

let test_pep_fails_closed () =
  let w = setup () in
  let pep =
    Sts.Pep.callout ~sts_key:(Service.public_key w.service) ~audience:"*"
      ~now:(fun () -> 0.0)
      Callout.permit_all
  in
  let bare =
    Callout.Query.make ~requester:(dn "/O=Grid/CN=U") ~job_id:"job-1"
      (Callout.Query.Start (Grid_rsl.Parser.parse_clause_exn "&(executable=x)"))
  in
  (match pep bare with
  | Error (Callout.Denied m) ->
    Alcotest.(check bool) "names the missing token" true
      (Grid_util.Strings.starts_with ~prefix:"no credential" m)
  | _ -> Alcotest.fail "credential-less query passed the token gate");
  (* a plain proxy without a token extension is refused too *)
  let alice = identity w "Alice" in
  let plain =
    Callout.Query.make ~requester:(Grid_gsi.Identity.subject alice)
      ~credential:(credential_of w alice) ~job_id:"job-1"
      (Callout.Query.Start (Grid_rsl.Parser.parse_clause_exn "&(executable=x)"))
  in
  match pep plain with
  | Error (Callout.Denied m) ->
    Alcotest.(check bool) "names the missing extension" true
      (Grid_util.Strings.starts_with ~prefix:"credential carries no" m)
  | _ -> Alcotest.fail "token-less proxy passed the token gate"

let test_pep_delegates_decision_and_reason () =
  (* The gate's only opinion is credential validity: the inner PEP's
     decision AND reason pass through bit-identically. *)
  let w = setup () in
  let inner = Callout.deny_all ~reason:"owner: queue reserved for admin" in
  let pep =
    Sts.Pep.callout ~sts_key:(Service.public_key w.service) ~audience:"*"
      ~now:(fun () -> Grid_sim.Engine.now w.engine)
      inner
  in
  let alice = identity w "Alice" in
  let proxy, _ = Result.get_ok (Service.proxy_with_token w.service ~now:0.0 alice) in
  let q =
    Callout.Query.make ~requester:(Grid_gsi.Identity.subject alice)
      ~credential:
        (Grid_gsi.Credential.of_identity proxy
           ~challenge:(Service.fresh_challenge w.service))
      ~job_id:"job-1"
      (Callout.Query.Start (Grid_rsl.Parser.parse_clause_exn "&(executable=x)"))
  in
  Alcotest.(check bool) "inner reason passes through verbatim" true
    (pep q = inner q)

(* --- Differential gate --------------------------------------------------- *)

let submit_label = function
  | Ok (r : Gram.Protocol.submit_reply) ->
    "accepted as " ^ r.Gram.Protocol.submitted_as
  | Error e -> "refused: " ^ Gram.Protocol.submit_error_to_string e

type who =
  | Cast of string
  | Rank of int

let script ~seed =
  let probe = Population.create ~seed ~size:population_size in
  let rng = Util.Rng.create ~seed in
  let cast =
    [ (Cast Fusion.bo_liu,
       "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)");
      (Cast Fusion.kate_keahey,
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)");
      (Cast Fusion.outsider,
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)") ]
  in
  cast
  @ List.init 16 (fun _ ->
        let rank = Population.sample probe rng in
        (Rank rank, Population.template probe rng rank))

let world_results ~seed ~sts entries =
  let pop = Population.create ~seed ~size:population_size in
  let w = Fusion.build ~nodes:16 ~population:pop ?sts () in
  let tb = w.Fusion.testbed in
  List.map
    (fun (who, rsl) ->
      let base =
        match who with
        | Cast dn -> Testbed.add_user tb dn
        | Rank rank ->
          Population.identity pop ~ca:(Testbed.ca tb) ~now:(Testbed.now tb) rank
      in
      let user =
        match w.Fusion.sts with
        | None -> base
        | Some s ->
          fst
            (Result.get_ok
               (Service.proxy_with_token s ~now:(Testbed.now tb) base))
      in
      let client = Testbed.client tb ~user ~resource:w.Fusion.resource in
      submit_label (Gram.Client.submit_sync client ~rsl))
    entries

let test_differential seed () =
  let entries = script ~seed in
  let plain = world_results ~seed ~sts:None entries in
  Alcotest.(check bool) "script has accepts" true
    (List.exists (String.starts_with ~prefix:"accepted") plain);
  Alcotest.(check bool) "script has refusals" true
    (List.exists (String.starts_with ~prefix:"refused") plain);
  List.iter
    (fun mode ->
      let tokenized = world_results ~seed ~sts:(Some mode) entries in
      List.iteri
        (fun i (a, b) ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d mode %s entry %d" seed
               (Validator.mode_to_string mode) i)
            a b)
        (List.combine plain tokenized))
    Validator.all_modes

(* --- Soak campaigns under the online monitor ----------------------------- *)

let small_config mode =
  { Soak.default_config with
    Soak.days = 0.5;
    jobs_per_day = 120;
    seed = 42;
    tokens = Some mode }

let test_soak_tokenized mode () =
  let r = Soak.run (small_config mode) in
  Alcotest.(check (list string))
    "no violations"
    []
    (List.map Grid_obs.Monitor.class_to_string (Soak.violation_classes r));
  Alcotest.(check bool) "jobs were accepted" true (r.Soak.accepted > 10);
  Alcotest.(check bool) "renewals went through the escrow" true (r.Soak.renewals > 0);
  Alcotest.(check bool) "the campaign revoked at the STS" true (r.Soak.revocations > 0);
  Alcotest.(check bool) "the monitor checked events" true (r.Soak.events_checked > 500)

let test_soak_injection () =
  let r =
    Soak.run
      { (small_config Validator.Push) with
        Soak.inject = Some Grid_obs.Monitor.Token_revocation }
  in
  Alcotest.(check (list string))
    "exactly the planted class detected"
    [ Grid_obs.Monitor.class_to_string Grid_obs.Monitor.Token_revocation ]
    (List.map Grid_obs.Monitor.class_to_string (Soak.violation_classes r))

let () =
  Alcotest.run "grid_sts"
    [ ( "token",
        [ Alcotest.test_case "codec roundtrip" `Quick test_token_roundtrip;
          Alcotest.test_case "verify refusals" `Quick test_token_verify_refusals;
          Alcotest.test_case "valid at minting instant" `Quick
            test_token_issued_at_instant;
          Alcotest.test_case "entitlement matching" `Quick test_token_permits ] );
      ( "exchange",
        [ Alcotest.test_case "default relation" `Quick test_exchange_default_relation;
          Alcotest.test_case "relation matching" `Quick test_exchange_relation_matching;
          Alcotest.test_case "revoked subject refused" `Quick
            test_exchange_revoked_subject_refused;
          Alcotest.test_case "refresh through escrow" `Quick test_refresh_through_escrow;
          Alcotest.test_case "escrow replacement reported" `Quick
            test_escrow_replacement_reported ] );
      ( "enforcement",
        List.map
          (fun mode ->
            Alcotest.test_case
              (Printf.sprintf "%s: no permit outside the window"
                 (Validator.mode_to_string mode))
              `Quick (enforcement_case mode))
          Validator.all_modes
        @ [ Alcotest.test_case "validator state profile" `Quick
              test_validator_state_profile ] );
      ( "pep",
        [ Alcotest.test_case "fails closed" `Quick test_pep_fails_closed;
          Alcotest.test_case "delegates decision and reason" `Quick
            test_pep_delegates_decision_and_reason ] );
      ( "differential",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick
              (test_differential seed))
          seeds );
      ( "soak",
        List.map
          (fun mode ->
            Alcotest.test_case
              (Printf.sprintf "tokens %s: monitored campaign clean"
                 (Validator.mode_to_string mode))
              `Slow (test_soak_tokenized mode))
          Validator.all_modes
        @ [ Alcotest.test_case "inject token_revocation -> caught" `Slow
              test_soak_injection ] ) ]
