(* Tests for grid_obs: metrics registry, span tracing, and the end-to-end
   instrumentation of the authorization critical path. *)

module Metrics = Grid_obs.Metrics
module Span = Grid_obs.Span
module Obs = Grid_obs.Obs

(* --- Metrics: counters & gauges ---------------------------------------- *)

let test_counter_basics () =
  let m = Metrics.create () in
  Metrics.inc m "requests_total";
  Metrics.inc m ~by:2.5 "requests_total";
  Alcotest.(check (float 1e-9)) "value" 3.5 (Metrics.counter_value m "requests_total");
  Alcotest.(check (float 1e-9)) "absent is 0" 0.0 (Metrics.counter_value m "nope")

let test_label_identity () =
  let m = Metrics.create () in
  Metrics.inc m ~labels:[ ("a", "1"); ("b", "2") ] "c_total";
  (* Same label set, different order: must address the same series. *)
  Metrics.inc m ~labels:[ ("b", "2"); ("a", "1") ] "c_total";
  Alcotest.(check (float 1e-9)) "order-insensitive" 2.0
    (Metrics.counter_value m ~labels:[ ("a", "1"); ("b", "2") ] "c_total");
  (* Different label values: distinct series. *)
  Metrics.inc m ~labels:[ ("a", "1"); ("b", "3") ] "c_total";
  Alcotest.(check (float 1e-9)) "distinct series" 1.0
    (Metrics.counter_value m ~labels:[ ("b", "3"); ("a", "1") ] "c_total");
  Alcotest.(check (float 1e-9)) "total over label sets" 3.0
    (Metrics.counter_total m "c_total")

let test_kind_conflict () =
  let m = Metrics.create () in
  Metrics.inc m "x";
  Alcotest.check_raises "counter as gauge"
    (Invalid_argument "Metrics: x is a counter, not re-registrable") (fun () ->
      Metrics.set m "x" 1.0)

let test_gauge () =
  let m = Metrics.create () in
  Metrics.set m "cpus" 7.0;
  Metrics.set m "cpus" 3.0;
  Alcotest.(check (float 1e-9)) "last write wins" 3.0 (Metrics.gauge_value m "cpus")

(* --- Metrics: histograms ----------------------------------------------- *)

let test_histogram_empty () =
  let m = Metrics.create () in
  Alcotest.(check bool) "no series -> None" true
    (Metrics.histogram_summary m "h" = None)

let test_histogram_bucket_boundaries () =
  let m = Metrics.create () in
  let buckets = [| 1.0; 2.0; 5.0 |] in
  (* Upper bounds are inclusive, Prometheus-style: 1.0 lands in le=1. *)
  List.iter (Metrics.observe m ~buckets "h") [ 1.0; 1.5; 2.0; 5.0; 7.0 ];
  let series = Metrics.dump m in
  let cumulative =
    match series with
    | [ { Metrics.series_data = Metrics.Histogram { buckets; _ }; _ } ] -> buckets
    | _ -> Alcotest.fail "expected one histogram series"
  in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "cumulative bucket counts (incl. +inf overflow)"
    [ (1.0, 1); (2.0, 3); (5.0, 4); (infinity, 5) ]
    cumulative;
  match Metrics.histogram_summary m "h" with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
    Alcotest.(check int) "count includes overflow" 5 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 16.5 s.Metrics.sum;
    Alcotest.(check (float 1e-9)) "max tracked exactly" 7.0 s.Metrics.max

let test_histogram_quantiles () =
  let m = Metrics.create () in
  let buckets = [| 0.01; 0.1; 1.0 |] in
  (* 100 observations at ~0.05: p50 and p99 both interpolate within the
     (0.01, 0.1] bucket; everything is clamped to the observed max. *)
  for _ = 1 to 100 do
    Metrics.observe m ~buckets "h" 0.05
  done;
  match Metrics.histogram_summary m "h" with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
    Alcotest.(check bool) "p50 within bucket" true
      (s.Metrics.p50 > 0.01 && s.Metrics.p50 <= 0.1);
    Alcotest.(check bool) "p99 <= observed max" true (s.Metrics.p99 <= s.Metrics.max +. 1e-9)

let test_histogram_all_zero () =
  let m = Metrics.create () in
  for _ = 1 to 10 do
    Metrics.observe m "h" 0.0
  done;
  match Metrics.histogram_summary m "h" with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
    (* Zero-duration stages must report 0, not an interpolated sliver of
       the first bucket. *)
    Alcotest.(check (float 1e-9)) "p99 of zeros is 0" 0.0 s.Metrics.p99;
    Alcotest.(check (float 1e-9)) "max" 0.0 s.Metrics.max

let test_exposition () =
  let m = Metrics.create () in
  Metrics.inc m ~labels:[ ("outcome", "denied") ] "decisions_total";
  Metrics.observe m ~buckets:[| 1.0 |] "lat_seconds" 0.5;
  let prom = Metrics.to_prometheus m in
  let contains = Grid_util.Str_search.contains in
  Alcotest.(check bool) "TYPE line" true (contains prom "# TYPE decisions_total counter");
  Alcotest.(check bool) "labelled sample" true
    (contains prom "decisions_total{outcome=\"denied\"} 1");
  Alcotest.(check bool) "histogram _bucket" true
    (contains prom "lat_seconds_bucket{le=\"1.0\"} 1");
  Alcotest.(check bool) "histogram _count" true (contains prom "lat_seconds_count 1");
  let json = Metrics.to_json m in
  Alcotest.(check bool) "json mentions series" true (contains json "\"decisions_total\"")

(* --- Spans -------------------------------------------------------------- *)

(* A controllable clock standing in for the simulation engine. *)
let fake_clock () =
  let t = ref 0.0 in
  ((fun () -> !t), fun dt -> t := !t +. dt)

let test_span_nesting () =
  let now, advance = fake_clock () in
  let tracer = Span.create () in
  let outer = Span.enter tracer ~at:(now ()) "outer" in
  advance 1.0;
  let inner = Span.enter tracer ~at:(now ()) "inner" in
  advance 2.0;
  Span.exit tracer inner ~at:(now ());
  advance 1.0;
  Span.exit tracer outer ~at:(now ());
  Alcotest.(check int) "all closed" 0 (Span.depth tracer);
  Alcotest.(check (option int)) "inner parent" (Some outer.Span.id) inner.Span.parent;
  Alcotest.(check (option (float 1e-9))) "inner duration" (Some 2.0) (Span.duration inner);
  Alcotest.(check (option (float 1e-9))) "outer duration" (Some 4.0) (Span.duration outer);
  Alcotest.(check int) "one root" 1 (List.length (Span.roots tracer));
  Alcotest.(check int) "outer has one child" 1 (List.length (Span.children tracer outer))

let test_span_detached () =
  let now, advance = fake_clock () in
  let tracer = Span.create () in
  let req = Span.start tracer ~at:(now ()) "request" in
  advance 0.5;
  (* An async continuation re-establishes the detached span as scope. *)
  let child =
    Span.in_scope tracer req (fun () ->
        let c = Span.enter tracer ~at:(now ()) "work" in
        Span.exit tracer c ~at:(now ());
        c)
  in
  Alcotest.(check (option int)) "continuation nests under request" (Some req.Span.id)
    child.Span.parent;
  advance 0.5;
  Span.finish req ~at:(now ());
  Alcotest.(check (option (float 1e-9))) "request spans the round trip" (Some 1.0)
    (Span.duration req)

let test_span_summarize () =
  let now, advance = fake_clock () in
  let tracer = Span.create () in
  List.iter
    (fun d ->
      let s = Span.enter tracer ~at:(now ()) "stage" in
      advance d;
      Span.exit tracer s ~at:(now ()))
    [ 1.0; 3.0 ];
  match Span.summarize tracer with
  | [ ("stage", st) ] ->
    Alcotest.(check int) "count" 2 st.Span.stage_count;
    Alcotest.(check (float 1e-9)) "total" 4.0 st.Span.stage_total;
    Alcotest.(check (float 1e-9)) "max" 3.0 st.Span.stage_max
  | _ -> Alcotest.fail "expected one summarized stage"

let test_span_retention_cap () =
  let tracer = Span.create ~max_spans:3 () in
  for _ = 1 to 5 do
    let s = Span.enter tracer ~at:0.0 "s" in
    Span.exit tracer s ~at:0.0
  done;
  Alcotest.(check int) "stored capped" 3 (List.length (Span.spans tracer));
  Alcotest.(check int) "overflow counted" 2 (Span.dropped tracer)

let test_obs_with_span_feeds_stage_metric () =
  let now, advance = fake_clock () in
  let obs = Obs.create ~clock:now () in
  Obs.with_span obs "gatekeeper.submit" (fun _ -> advance 0.25);
  (match
     Metrics.histogram_summary (Obs.metrics obs)
       ~labels:[ ("stage", "gatekeeper.submit") ]
       Obs.stage_metric
   with
  | None -> Alcotest.fail "stage histogram expected"
  | Some s ->
    Alcotest.(check int) "one observation" 1 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "duration recorded" 0.25 s.Metrics.sum);
  (* The disabled handle records nothing and hands out the null span. *)
  Obs.with_span Obs.noop "x" (fun span ->
      Alcotest.(check bool) "null span" true (span == Span.null));
  Alcotest.(check int) "noop tracer empty" 0 (List.length (Span.spans (Obs.tracer Obs.noop)))

(* --- End-to-end: the instrumented request path -------------------------- *)

let counter w ~labels name =
  Metrics.counter_value
    (Obs.metrics (Core.Gram.Resource.obs w.Core.Fusion.resource))
    ~labels name

let test_end_to_end_metrics () =
  let w = Core.Fusion.build () in
  let obs = Core.Gram.Resource.obs w.Core.Fusion.resource in
  (* Permitted submission (Bo, inside the developers envelope)... *)
  let reply =
    Core.Gram.Client.submit_sync w.Core.Fusion.bo
      ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=10)"
  in
  let contact =
    match reply with
    | Ok r -> r.Core.Gram.Protocol.job_contact
    | Error e -> Alcotest.fail (Core.Gram.Protocol.submit_error_to_string e)
  in
  (* ...a denied one (count over the profile limit)... *)
  (match
     Core.Gram.Client.submit_sync w.Core.Fusion.bo
       ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=6)"
   with
  | Ok _ -> Alcotest.fail "expected denial"
  | Error _ -> ());
  (* ...and a permitted third-party cancel (admin over the ADS tag). *)
  (match
     Core.Gram.Client.manage_sync w.Core.Fusion.vo_admin ~contact Core.Gram.Protocol.Cancel
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Core.Gram.Protocol.management_error_to_string e));
  Core.Testbed.run w.Core.Fusion.testbed;
  let check name expected labels =
    Alcotest.(check (float 1e-9)) name expected (counter w ~labels name)
  in
  check "authz_decisions_total" 1.0
    [ ("backend", "flat_file"); ("action", "start"); ("outcome", "permitted") ];
  check "authz_decisions_total" 1.0
    [ ("backend", "flat_file"); ("action", "start"); ("outcome", "denied") ];
  check "authz_decisions_total" 1.0
    [ ("backend", "flat_file"); ("action", "cancel"); ("outcome", "permitted") ];
  check "jobs_submitted_total" 1.0 [ ("outcome", "accepted") ];
  check "jobs_submitted_total" 1.0 [ ("outcome", "refused") ];
  check "management_requests_total" 1.0 [ ("action", "cancel"); ("outcome", "ok") ];
  check "lrm_submissions_total" 1.0 [ ("outcome", "accepted") ];
  check "lrm_jobs_total" 1.0 [ ("state", "cancelled") ];
  check "authn_total" 3.0 [ ("outcome", "ok") ];
  (* Per-source policy evaluation: both sources ran on each of the three
     decisions (conjunctive combination, resource-owner permits all). *)
  Alcotest.(check bool) "policy evals recorded" true
    (Metrics.counter_total (Obs.metrics obs) "policy_eval_total" >= 6.0);
  (* Stage histograms exist for the whole span vocabulary of this path. *)
  List.iter
    (fun stage ->
      match
        Metrics.histogram_summary (Obs.metrics obs) ~labels:[ ("stage", stage) ]
          Obs.stage_metric
      with
      | Some s -> Alcotest.(check bool) (stage ^ " observed") true (s.Metrics.count > 0)
      | None -> Alcotest.fail ("missing stage histogram: " ^ stage))
    [ "gram.request"; "gatekeeper.submit"; "gsi.authenticate"; "account.map";
      "jmi.start"; "authz.callout"; "policy.eval"; "sandbox.check"; "lrm.submit";
      "jmi.manage"; "lrm.cancel"; "job.run" ]

let test_end_to_end_spans () =
  let w = Core.Fusion.build () in
  let obs = Core.Gram.Resource.obs w.Core.Fusion.resource in
  (match
     Core.Gram.Client.submit_sync w.Core.Fusion.kate
       ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=30)"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Core.Gram.Protocol.submit_error_to_string e));
  Core.Testbed.run w.Core.Fusion.testbed;
  let tracer = Obs.tracer obs in
  (* The network round trip is the only stage with nonzero duration; the
     in-resource stages all happen within one simulation event. *)
  (match Span.find tracer ~name:"gram.request" with
  | [ req ] -> begin
    Alcotest.(check bool) "request took simulated time" true
      (match Span.duration req with Some d -> d > 0.0 | None -> false);
    (* gatekeeper.submit nests under the request via in_scope. *)
    match Span.find tracer ~name:"gatekeeper.submit" with
    | [ gk ] -> Alcotest.(check (option int)) "nested" (Some req.Span.id) gk.Span.parent
    | _ -> Alcotest.fail "expected one gatekeeper.submit span"
  end
  | _ -> Alcotest.fail "expected one gram.request span");
  (* job.run is detached: it outlives jmi.start and records the job's
     simulated lifetime. *)
  (match Span.find tracer ~name:"job.run" with
  | [ run ] ->
    Alcotest.(check bool) "job lifetime recorded" true
      (match Span.duration run with Some d -> d >= 30.0 | None -> false)
  | _ -> Alcotest.fail "expected one job.run span");
  (* Rendering never raises and mentions the span names. *)
  let rendered = Fmt.str "%a" Span.pp tracer in
  Alcotest.(check bool) "forest renders" true
    (Grid_util.Str_search.contains rendered "gram.request")

let test_disabled_observer_changes_nothing () =
  let tb = Core.Testbed.create () in
  let user = Core.Testbed.add_user tb "/O=Grid/O=Demo/CN=Solo" in
  let policy = Core.Policy.Parse.parse "/O=Grid/O=Demo: &(action = start)" in
  let lrm = Core.Lrm.Lrm.create ~nodes:1 ~cpus_per_node:4 (Core.Testbed.engine tb) in
  let resource =
    Core.Gram.Resource.create ~obs:Obs.noop ~trust:(Core.Testbed.trust tb)
      ~mapper:
        (Core.Accounts.Mapper.create
           (Core.Gsi.Gridmap.parse "\"/O=Grid/O=Demo/CN=Solo\" solo\n"))
      ~mode:
        (Core.Gram.Mode.extended
           (Core.Callout.File_pep.of_policy ~name:"p" policy))
      ~lrm ~engine:(Core.Testbed.engine tb) ()
  in
  let client = Core.Testbed.client tb ~user ~resource in
  (match Core.Gram.Client.submit_sync client ~rsl:"&(executable=x)(simduration=0)" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Core.Gram.Protocol.submit_error_to_string e));
  Core.Testbed.run tb;
  let obs = Core.Gram.Resource.obs resource in
  Alcotest.(check bool) "disabled" false (Obs.enabled obs);
  Alcotest.(check int) "no spans recorded" 0 (List.length (Span.spans (Obs.tracer obs)))

let () =
  Alcotest.run "grid_obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "label identity" `Quick test_label_identity;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_bucket_boundaries;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "all-zero histogram" `Quick test_histogram_all_zero;
          Alcotest.test_case "exposition" `Quick test_exposition ] );
      ( "spans",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "detached + in_scope" `Quick test_span_detached;
          Alcotest.test_case "summarize" `Quick test_span_summarize;
          Alcotest.test_case "retention cap" `Quick test_span_retention_cap;
          Alcotest.test_case "with_span feeds stage metric" `Quick
            test_obs_with_span_feeds_stage_metric ] );
      ( "end-to-end",
        [ Alcotest.test_case "metric deltas" `Quick test_end_to_end_metrics;
          Alcotest.test_case "span structure" `Quick test_end_to_end_spans;
          Alcotest.test_case "disabled observer" `Quick
            test_disabled_observer_changes_nothing ] ) ]
