(* Tests for grid_util: ids, rng, strings, retry policies. *)

open Grid_util

let test_ids_fresh_unique () =
  Ids.reset ();
  let a = Ids.fresh "x" and b = Ids.fresh "x" in
  Alcotest.(check bool) "distinct" false (String.equal a b);
  Alcotest.(check string) "prefix" "x-000001" a

let test_ids_reset () =
  Ids.reset ();
  let a = Ids.fresh "job" in
  Ids.reset ();
  let b = Ids.fresh "job" in
  Alcotest.(check string) "reset restores counter" a b

let test_ids_kinds () =
  Ids.reset ();
  Alcotest.(check bool) "job prefix" true (Strings.starts_with ~prefix:"job-" (Ids.job ()));
  Alcotest.(check bool) "lease prefix" true (Strings.starts_with ~prefix:"lease-" (Ids.lease ()));
  Alcotest.(check bool) "req prefix" true (Strings.starts_with ~prefix:"req-" (Ids.request ()));
  Alcotest.(check bool) "jmi prefix" true (Strings.starts_with ~prefix:"jmi-" (Ids.contact ()))

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let sa = List.init 20 (fun _ -> Rng.int a 1000000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "different streams" false (sa = sb)

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_invalid_bound () =
  let r = Rng.create ~seed:7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_pick () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 50 do
    let v = Rng.pick r [ 1; 2; 3 ] in
    Alcotest.(check bool) "picked member" true (List.mem v [ 1; 2; 3 ])
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:11 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_strings_strip () =
  Alcotest.(check string) "strips both ends" "abc" (Strings.strip "  abc\t\n");
  Alcotest.(check string) "all space" "" (Strings.strip "   ");
  Alcotest.(check string) "empty" "" (Strings.strip "")

let test_strings_starts_with () =
  Alcotest.(check bool) "yes" true (Strings.starts_with ~prefix:"ab" "abc");
  Alcotest.(check bool) "no" false (Strings.starts_with ~prefix:"b" "abc");
  Alcotest.(check bool) "empty prefix" true (Strings.starts_with ~prefix:"" "abc");
  Alcotest.(check bool) "longer prefix" false (Strings.starts_with ~prefix:"abcd" "abc")

let test_strings_strip_comment () =
  Alcotest.(check string) "plain" "a b " (Strings.strip_comment "a b # c");
  Alcotest.(check string) "quoted hash survives" {|"a#b" c|}
    (Strings.strip_comment {|"a#b" c|});
  Alcotest.(check string) "no comment" "abc" (Strings.strip_comment "abc")

let test_strings_config_lines () =
  let text = "# header\n\n  line one # trailing\nline two\n   \n" in
  Alcotest.(check (list (pair int string)))
    "numbered non-blank lines"
    [ (3, "line one"); (4, "line two") ]
    (Strings.config_lines text)

let test_strings_split_whitespace () =
  Alcotest.(check (list string)) "mixed separators" [ "a"; "b"; "c" ]
    (Strings.split_whitespace " a\tb  \n c ")

let qcheck_shuffle_preserves =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let r = Rng.create ~seed in
      List.sort compare (Rng.shuffle r xs) = List.sort compare xs)

let qcheck_strip_idempotent =
  QCheck.Test.make ~name:"strip idempotent" ~count:500 QCheck.string (fun s ->
      Strings.strip (Strings.strip s) = Strings.strip s)

(* --- Retry policy properties ------------------------------------------- *)

(* A small policy generator: positive backoffs, growth >= 1, jitter in
   [0, 1] — the region real configurations live in. *)
let retry_policy_gen =
  QCheck.Gen.(
    map
      (fun (attempts, (initial, (mult, (cap, jitter)))) ->
        Retry.policy ~max_attempts:attempts
          ~initial_backoff:(0.001 +. (initial *. 0.5))
          ~backoff_multiplier:(1.0 +. (mult *. 3.0))
          ~max_backoff:(0.5 +. (cap *. 10.0))
          ~jitter ())
      (pair (int_range 1 10)
         (pair (float_bound_inclusive 1.0)
            (pair (float_bound_inclusive 1.0)
               (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))))))

let retry_policy_arb =
  QCheck.make retry_policy_gen ~print:(fun (p : Retry.policy) ->
      Printf.sprintf
        "{max_attempts=%d; initial=%g; mult=%g; cap=%g; jitter=%g}"
        p.Retry.max_attempts p.Retry.initial_backoff p.Retry.backoff_multiplier
        p.Retry.max_backoff p.Retry.jitter)

let unjittered (p : Retry.policy) ~attempt =
  Float.min p.Retry.max_backoff
    (p.Retry.initial_backoff
    *. (p.Retry.backoff_multiplier ** float_of_int (attempt - 1)))

(* Jittered delays stay inside [base*(1-j), base*(1+j)]. *)
let qcheck_backoff_within_jitter_bounds =
  QCheck.Test.make ~name:"backoff within jitter bounds" ~count:300
    QCheck.(triple retry_policy_arb small_int (int_range 1 12))
    (fun (p, seed, attempt) ->
      let rng = Rng.create ~seed in
      let base = unjittered p ~attempt in
      let b = Retry.backoff p ~rng ~attempt in
      let lo = base *. (1.0 -. p.Retry.jitter) in
      let hi = base *. (1.0 +. p.Retry.jitter) in
      b >= lo -. 1e-12 && b <= hi +. 1e-12)

(* With jitter off, the schedule is non-decreasing until it hits the cap
   and never exceeds it. *)
let qcheck_backoff_monotone_before_cap =
  QCheck.Test.make ~name:"backoff monotone before cap (jitter=0)" ~count:300
    QCheck.(pair retry_policy_arb small_int)
    (fun (p, seed) ->
      let p = { p with Retry.jitter = 0.0 } in
      let rng = Rng.create ~seed in
      let delays =
        List.init 12 (fun i -> Retry.backoff p ~rng ~attempt:(i + 1))
      in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-12 && monotone rest
        | _ -> true
      in
      monotone delays
      && List.for_all (fun d -> d <= p.Retry.max_backoff +. 1e-12) delays)

(* [next] never schedules a retry that would start at or past the
   deadline, and never retries once attempts are exhausted. *)
let qcheck_next_respects_deadline =
  QCheck.Test.make ~name:"next never overshoots the deadline" ~count:500
    QCheck.(
      quad retry_policy_arb small_int (int_range 1 12)
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 30.0)))
    (fun (p, seed, attempt, (now, headroom)) ->
      let rng = Rng.create ~seed in
      let deadline = now +. headroom in
      match Retry.next p ~rng ~now ~deadline:(Some deadline) ~attempt with
      | Retry.Give_up _ -> true
      | Retry.Retry_after delay ->
        attempt < p.Retry.max_attempts && delay >= 0.0 && now +. delay < deadline)

let () =
  Alcotest.run "grid_util"
    [ ( "ids",
        [ Alcotest.test_case "fresh unique" `Quick test_ids_fresh_unique;
          Alcotest.test_case "reset" `Quick test_ids_reset;
          Alcotest.test_case "kinds" `Quick test_ids_kinds ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "invalid bound" `Quick test_rng_invalid_bound;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          QCheck_alcotest.to_alcotest qcheck_shuffle_preserves ] );
      ( "strings",
        [ Alcotest.test_case "strip" `Quick test_strings_strip;
          Alcotest.test_case "starts_with" `Quick test_strings_starts_with;
          Alcotest.test_case "strip_comment" `Quick test_strings_strip_comment;
          Alcotest.test_case "config_lines" `Quick test_strings_config_lines;
          Alcotest.test_case "split_whitespace" `Quick test_strings_split_whitespace;
          QCheck_alcotest.to_alcotest qcheck_strip_idempotent ] );
      ( "retry",
        [ QCheck_alcotest.to_alcotest qcheck_backoff_within_jitter_bounds;
          QCheck_alcotest.to_alcotest qcheck_backoff_monotone_before_cap;
          QCheck_alcotest.to_alcotest qcheck_next_respects_deadline ] ) ]
