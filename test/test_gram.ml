(* Integration tests for grid_gram: the full Gatekeeper -> JMI -> LRM
   pipeline in GT2 baseline and extended (callout) modes, over both the
   direct and networked paths. *)

open Grid_gram

let org = Grid_policy.Figure3.organization
let kate_dn = Grid_policy.Figure3.kate_keahey
let bo_dn = Grid_policy.Figure3.bo_liu
let outsider_dn = "/O=Grid/O=Globus/OU=cs.wisc.edu/CN=Outsider"

type world = {
  engine : Grid_sim.Engine.t;
  ca : Grid_gsi.Ca.t;
  trust : Grid_gsi.Ca.Trust_store.store;
  resource : Resource.t;
  kate : Client.t;
  bo : Client.t;
}

let fig3_sources () =
  (* The VO policy is Figure 3 plus the GT2-compatible baseline right to
     manage one's own jobs, expressed with the language's [self] value. *)
  let self_management =
    Grid_policy.Parse.parse
      (org
     ^ ": &(action = cancel)(jobowner = self) &(action = information)(jobowner = self) \
        &(action = signal)(jobowner = self)")
  in
  [ Grid_policy.Combine.source ~name:"resource-owner"
      (Grid_policy.Parse.parse
         (org ^ ": &(action = start)(queue != reserved) &(action = cancel) &(action = information) &(action = signal)"));
    Grid_policy.Combine.source ~name:"fusion-vo"
      (Grid_policy.Figure3.get () @ self_management) ]

let gridmap_text = Printf.sprintf "%S keahey\n%S bliu\n" kate_dn bo_dn

let build ?static_limits ?dynamic_accounts ?gatekeeper_pep ?network_of ?request_timeout
    ?(nodes = 2) ?(cpus_per_node = 4) mode_of =
  Grid_util.Ids.reset ();
  Grid_crypto.Keypair.reset_keystore ();
  let engine = Grid_sim.Engine.create () in
  let ca = Grid_gsi.Ca.create ~now:0.0 "/O=Grid/CN=CA" in
  let trust = Grid_gsi.Ca.Trust_store.create () in
  Grid_gsi.Ca.Trust_store.add trust (Grid_gsi.Ca.certificate ca);
  let lrm = Grid_lrm.Lrm.create ~nodes ~cpus_per_node engine in
  let pool =
    Option.map
      (fun size -> Grid_accounts.Pool.create ~size ~lease_lifetime:3600.0 ())
      dynamic_accounts
  in
  let mapper =
    Grid_accounts.Mapper.create ?pool ?static_limits (Grid_gsi.Gridmap.parse gridmap_text)
  in
  let network = Option.map (fun f -> f engine) network_of in
  let resource =
    Resource.create ?gatekeeper_pep ?network ?request_timeout ~trust ~mapper
      ~mode:(mode_of ()) ~lrm ~engine ()
  in
  let kate = Client.create ~identity:(Grid_gsi.Identity.create ~ca ~now:0.0 kate_dn) ~resource () in
  let bo = Client.create ~identity:(Grid_gsi.Identity.create ~ca ~now:0.0 bo_dn) ~resource () in
  { engine; ca; trust; resource; kate; bo }

let baseline ?static_limits ?dynamic_accounts ?network_of ?request_timeout ?nodes
    ?cpus_per_node () =
  build ?static_limits ?dynamic_accounts ?network_of ?request_timeout ?nodes ?cpus_per_node
    (fun () -> Mode.Gt2_baseline)

let extended ?static_limits ?dynamic_accounts ?callout () =
  build ?static_limits ?dynamic_accounts (fun () ->
      match callout with
      | Some c -> Mode.extended c
      | None ->
        Mode.extended (Grid_callout.File_pep.of_sources (fig3_sources ())))

let ok_submit = function
  | Ok (r : Protocol.submit_reply) -> r
  | Error e -> Alcotest.failf "submit failed: %s" (Protocol.submit_error_to_string e)

let ok_manage = function
  | Ok (r : Protocol.management_reply) -> r
  | Error e -> Alcotest.failf "manage failed: %s" (Protocol.management_error_to_string e)

(* --- GT2 baseline ----------------------------------------------------------- *)

let test_baseline_submit_and_complete () =
  let w = baseline () in
  let reply = ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(count=2)(simduration=30)") in
  Alcotest.(check string) "mapped account" "keahey" reply.Protocol.submitted_as;
  Grid_sim.Engine.run w.engine;
  match Client.status_sync w.kate ~contact:reply.Protocol.job_contact with
  | Ok st ->
    Alcotest.(check string) "done" "DONE" (Protocol.job_state_to_string st.Protocol.state);
    Alcotest.(check string) "owner recorded" kate_dn (Grid_gsi.Dn.to_string st.Protocol.owner)
  | Error e -> Alcotest.failf "status failed: %s" (Protocol.management_error_to_string e)

let test_baseline_unknown_user_refused () =
  let w = baseline () in
  let outsider =
    Client.create
      ~identity:(Grid_gsi.Identity.create ~ca:w.ca ~now:0.0 outsider_dn)
      ~resource:w.resource ()
  in
  match Client.submit_sync outsider ~rsl:"&(executable=/bin/sim)" with
  | Error (Protocol.Gatekeeper_refused _) -> ()
  | Ok _ -> Alcotest.fail "unmapped user admitted"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.submit_error_to_string e)

let test_baseline_rejects_jobtag () =
  let w = baseline () in
  match Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(jobtag=NFC)" with
  | Error (Protocol.Bad_rsl m) ->
    Alcotest.(check bool) "names jobtag" true
      (Grid_util.Strings.starts_with ~prefix:"GT2: unknown RSL attribute" m)
  | _ -> Alcotest.fail "jobtag accepted by baseline protocol"

let test_baseline_owner_only_management () =
  let w = baseline () in
  let reply = ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=1000)") in
  let contact = reply.Protocol.job_contact in
  (* Bo cannot cancel Kate's job. *)
  (match Client.manage_sync w.bo ~contact Protocol.Cancel with
  | Error (Protocol.Not_authorized (Protocol.Authz_denied m)) ->
    Alcotest.(check bool) "the GT2 static rule" true
      (Grid_util.Strings.starts_with ~prefix:"GT2: only the job initiator" m)
  | _ -> Alcotest.fail "non-owner cancel accepted");
  (* Kate can. *)
  ignore (ok_manage (Client.manage_sync w.kate ~contact Protocol.Cancel));
  match Client.status_sync w.kate ~contact with
  | Ok st ->
    Alcotest.(check string) "cancelled" "CANCELED"
      (Protocol.job_state_to_string st.Protocol.state)
  | Error e -> Alcotest.failf "status failed: %s" (Protocol.management_error_to_string e)

let test_baseline_authn_failures () =
  let w = baseline () in
  (* Rogue-CA identity. *)
  let rogue_ca = Grid_gsi.Ca.create ~now:0.0 "/O=Rogue/CN=CA" in
  let mallory = Grid_gsi.Identity.create ~ca:rogue_ca ~now:0.0 "/O=Rogue/CN=Mallory" in
  let cred =
    Grid_gsi.Credential.of_identity mallory ~challenge:(Resource.new_challenge w.resource)
  in
  (match Resource.submit_direct w.resource ~credential:cred ~rsl:"&(executable=x)" with
  | Error (Protocol.Authentication_failed _) -> ()
  | _ -> Alcotest.fail "rogue credential admitted");
  (* Replay: reusing a consumed challenge. *)
  let replay = Client.credential_for w.kate in
  ignore (Resource.submit_direct w.resource ~credential:replay ~rsl:"&(executable=x)");
  match Resource.submit_direct w.resource ~credential:replay ~rsl:"&(executable=x)" with
  | Error (Protocol.Authentication_failed _) -> ()
  | _ -> Alcotest.fail "replayed credential admitted"

let test_baseline_cluster_full () =
  let w = baseline ~nodes:1 ~cpus_per_node:2 () in
  match Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(count=50)" with
  | Error (Protocol.Resource_unavailable _) -> ()
  | _ -> Alcotest.fail "oversized job admitted"

(* --- Extended mode ------------------------------------------------------------ *)

let kate_transp = "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=500)"

let test_extended_policy_permits () =
  let w = extended () in
  let reply = ok_submit (Client.submit_sync w.kate ~rsl:kate_transp) in
  Alcotest.(check string) "mapped account" "keahey" reply.Protocol.submitted_as;
  match Client.status_sync w.kate ~contact:reply.Protocol.job_contact with
  | Ok st ->
    Alcotest.(check string) "active" "ACTIVE" (Protocol.job_state_to_string st.Protocol.state);
    Alcotest.(check (option string)) "jobtag travelled" (Some "NFC") st.Protocol.jobtag
  | Error e -> Alcotest.failf "status: %s" (Protocol.management_error_to_string e)

let test_extended_policy_denies_start () =
  let w = extended () in
  (* Bo Liu, count = 4 violates (count < 4). *)
  match
    Client.submit_sync w.bo
      ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)"
  with
  | Error (Protocol.Authorization_failed (Protocol.Authz_denied m)) ->
    Alcotest.(check bool) "names the denying source" true
      (Grid_util.Strings.starts_with ~prefix:"fusion-vo" m)
  | _ -> Alcotest.fail "over-count start authorized"

let test_extended_requirement_violation () =
  let w = extended () in
  match
    Client.submit_sync w.kate ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)"
  with
  | Error (Protocol.Authorization_failed (Protocol.Authz_denied m)) ->
    Alcotest.(check bool) "requirement named" true
      (let rec contains i =
         i + 11 <= String.length m && (String.sub m i 11 = "requirement" || contains (i + 1))
       in
       contains 0)
  | _ -> Alcotest.fail "untagged start authorized"

let test_extended_vo_wide_management () =
  let w = extended () in
  (* Bo starts an NFC job; Kate (not the owner) cancels it under the
     Figure 3 cancel-NFC grant. *)
  let reply =
    ok_submit
      (Client.submit_sync w.bo
         ~rsl:"&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)(simduration=1000)")
  in
  let contact = reply.Protocol.job_contact in
  ignore (ok_manage (Client.manage_sync w.kate ~contact Protocol.Cancel));
  (match Client.status_sync w.bo ~contact with
  | Ok st ->
    Alcotest.(check string) "cancelled by non-owner" "CANCELED"
      (Protocol.job_state_to_string st.Protocol.state)
  | Error e -> Alcotest.failf "status: %s" (Protocol.management_error_to_string e));
  (* The reverse is not permitted: Bo cannot cancel Kate's NFC job. *)
  let reply2 = ok_submit (Client.submit_sync w.kate ~rsl:kate_transp) in
  match Client.manage_sync w.bo ~contact:reply2.Protocol.job_contact Protocol.Cancel with
  | Error (Protocol.Not_authorized (Protocol.Authz_denied _)) -> ()
  | _ -> Alcotest.fail "Bo cancelled Kate's job"

let test_extended_tag_scoping () =
  let w = extended () in
  (* Kate's cancel grant covers NFC only; an ADS job is out of reach. *)
  let reply =
    ok_submit
      (Client.submit_sync w.bo
         ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=1000)")
  in
  match Client.manage_sync w.kate ~contact:reply.Protocol.job_contact Protocol.Cancel with
  | Error (Protocol.Not_authorized (Protocol.Authz_denied _)) -> ()
  | _ -> Alcotest.fail "ADS job cancelled under NFC grant"

let test_extended_unknown_contact () =
  let w = extended () in
  match Client.manage_sync w.kate ~contact:"jmi-999999" Protocol.Cancel with
  | Error (Protocol.Unknown_job _) -> ()
  | _ -> Alcotest.fail "unknown contact accepted"

let test_extended_misconfigured_callout () =
  let registry = Grid_callout.Registry.create () in
  let config = Grid_callout.Config.load "globus_gram_jobmanager_authz libmissing.so sym" in
  let mode () = Mode.extended_from_config config registry in
  let w = build mode in
  match Client.submit_sync w.kate ~rsl:kate_transp with
  | Error (Protocol.Authorization_failed (Protocol.Authz_misconfigured _)) -> ()
  | _ -> Alcotest.fail "misconfigured callout did not fail closed"

let test_extended_system_failure_distinguished () =
  let w = extended ~callout:(Grid_callout.Callout.failing ~message:"pep crashed") () in
  match Client.submit_sync w.kate ~rsl:kate_transp with
  | Error (Protocol.Authorization_failed (Protocol.Authz_system_failure _)) -> ()
  | _ -> Alcotest.fail "system failure not distinguished from denial"

let test_extended_sandbox_enforced () =
  let static_limits _ =
    { Grid_accounts.Sandbox.unrestricted with Grid_accounts.Sandbox.max_cpus = Some 1 }
  in
  let w = extended ~static_limits () in
  (* Policy allows Bo count<4, but the account sandbox caps at 1. *)
  match
    Client.submit_sync w.bo
      ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)"
  with
  | Error (Protocol.Sandbox_violation _) -> ()
  | _ -> Alcotest.fail "sandbox not enforced"

let test_extended_dynamic_accounts () =
  let w = extended ~dynamic_accounts:2 () in
  (* An org member absent from the gridmap gets a dynamic account when VO
     policy admits them... Figure 3 has no grant for this DN, so use Kate
     removed from gridmap instead: simulate by a fresh org user denied by
     policy => to exercise the dynamic path use baseline mode instead. *)
  ignore w;
  let wb = baseline ~dynamic_accounts:2 () in
  let visitor =
    Client.create
      ~identity:(Grid_gsi.Identity.create ~ca:wb.ca ~now:0.0 (org ^ "/CN=Visitor"))
      ~resource:wb.resource ()
  in
  let reply = ok_submit (Client.submit_sync visitor ~rsl:"&(executable=/bin/sim)") in
  Alcotest.(check bool) "dynamic account" true
    (Grid_util.Strings.starts_with ~prefix:"grid" reply.Protocol.submitted_as)

let test_extended_suspend_resume_via_signal () =
  let w = extended () in
  let reply = ok_submit (Client.submit_sync w.kate ~rsl:kate_transp) in
  let contact = reply.Protocol.job_contact in
  ignore (ok_manage (Client.manage_sync w.kate ~contact (Protocol.Signal Protocol.Suspend)));
  (match Client.status_sync w.kate ~contact with
  | Ok st ->
    Alcotest.(check string) "suspended" "SUSPENDED"
      (Protocol.job_state_to_string st.Protocol.state)
  | Error e -> Alcotest.failf "status: %s" (Protocol.management_error_to_string e));
  ignore (ok_manage (Client.manage_sync w.kate ~contact (Protocol.Signal Protocol.Resume)));
  match Client.status_sync w.kate ~contact with
  | Ok st ->
    Alcotest.(check string) "active again" "ACTIVE"
      (Protocol.job_state_to_string st.Protocol.state)
  | Error e -> Alcotest.failf "status: %s" (Protocol.management_error_to_string e)

let test_limited_proxy_cannot_start_but_can_manage () =
  let w = baseline () in
  (* Kate starts a job with her full credential... *)
  let reply =
    ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=1e6)")
  in
  (* ...then hands a limited proxy to a monitoring process. It may query
     and even cancel (it authenticates as Kate), but not start jobs. *)
  let limited =
    Grid_gsi.Identity.delegate (Client.identity w.kate) ~now:0.0 ~limited:true
  in
  let monitor = Client.create ~identity:limited ~resource:w.resource () in
  ignore (ok_manage (Client.manage_sync monitor ~contact:reply.Protocol.job_contact
                       Protocol.Status));
  match Client.submit_sync monitor ~rsl:"&(executable=/bin/sim)" with
  | Error (Protocol.Gatekeeper_refused m) ->
    Alcotest.(check bool) "names the limitation" true
      (Grid_util.Str_search.contains m "limited prox")
  | _ -> Alcotest.fail "limited proxy started a job"

(* --- Management-request authentication (Section 4.2) --------------------- *)

let test_management_requires_valid_credential () =
  let w = baseline () in
  let reply =
    ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=1e6)")
  in
  let contact = reply.Protocol.job_contact in
  (* A short-lived proxy manages fine while valid... *)
  let proxy = Grid_gsi.Identity.delegate (Client.identity w.kate) ~now:0.0 ~lifetime:100.0 in
  let proxy_client = Client.create ~identity:proxy ~resource:w.resource () in
  ignore (ok_manage (Client.manage_sync proxy_client ~contact Protocol.Status));
  (* ...but not after it expires. *)
  Grid_sim.Engine.run_until w.engine 200.0;
  match Client.manage_sync proxy_client ~contact Protocol.Status with
  | Error (Protocol.Management_authentication_failed _) -> ()
  | _ -> Alcotest.fail "expired proxy managed a job"

let test_management_rejects_revoked_credential () =
  let w = baseline () in
  let reply =
    ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=1e6)")
  in
  Grid_gsi.Ca.Trust_store.revoke w.trust
    (Grid_gsi.Identity.certificate (Client.identity w.kate));
  match Client.manage_sync w.kate ~contact:reply.Protocol.job_contact Protocol.Status with
  | Error (Protocol.Management_authentication_failed m) ->
    Alcotest.(check bool) "names revocation" true
      (Grid_util.Str_search.contains m "revoked")
  | _ -> Alcotest.fail "revoked credential managed a job"

let test_management_rejects_identity_mismatch () =
  let w = baseline () in
  let reply =
    ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=1e6)")
  in
  (* Bo presents his own (valid) credential but claims to be Kate. *)
  let bo_credential = Client.credential_for w.bo in
  match
    Resource.manage_direct w.resource
      ~requester:(Grid_gsi.Dn.parse kate_dn)
      ~credential:bo_credential ~contact:reply.Protocol.job_contact Protocol.Cancel
  with
  | Error (Protocol.Management_authentication_failed m) ->
    Alcotest.(check bool) "mismatch detected" true
      (Grid_util.Str_search.contains m "claims")
  | _ -> Alcotest.fail "identity spoofing succeeded"

let test_management_credential_replay_rejected () =
  let w = baseline () in
  let reply =
    ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=1e6)")
  in
  let contact = reply.Protocol.job_contact in
  let credential = Client.credential_for w.kate in
  let requester = Grid_gsi.Dn.parse kate_dn in
  (match Resource.manage_direct w.resource ~requester ~credential ~contact Protocol.Status with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first use failed: %s" (Protocol.management_error_to_string e));
  match Resource.manage_direct w.resource ~requester ~credential ~contact Protocol.Status with
  | Error (Protocol.Management_authentication_failed _) -> ()
  | _ -> Alcotest.fail "replayed management credential accepted"

(* --- Coarse-grained VO allocations (Section 2) --------------------------- *)

let allocation_world budget =
  Grid_util.Ids.reset ();
  Grid_crypto.Keypair.reset_keystore ();
  let engine = Grid_sim.Engine.create () in
  let ca = Grid_gsi.Ca.create ~now:0.0 "/O=Grid/CN=CA" in
  let trust = Grid_gsi.Ca.Trust_store.create () in
  Grid_gsi.Ca.Trust_store.add trust (Grid_gsi.Ca.certificate ca);
  let lrm = Grid_lrm.Lrm.create ~nodes:8 ~cpus_per_node:8 engine in
  let mapper = Grid_accounts.Mapper.create (Grid_gsi.Gridmap.parse gridmap_text) in
  let bank = Grid_accounts.Allocation.create () in
  Grid_accounts.Allocation.open_account bank ~party:org ~budget;
  let resource =
    Resource.create ~allocation:(Grid_accounts.Allocation.enforcement bank) ~trust
      ~mapper ~mode:Mode.Gt2_baseline ~lrm ~engine ()
  in
  let kate = Client.create ~identity:(Grid_gsi.Identity.create ~ca ~now:0.0 kate_dn) ~resource () in
  (engine, ca, bank, resource, kate)

let test_allocation_admits_and_settles () =
  let engine, _, bank, _, kate = allocation_world 1000.0 in
  (* 2 cpus x 100 s worst case = 200 cpu-s reserved; job actually runs
     50 s -> 100 cpu-s charged. *)
  ignore
    (ok_submit
       (Client.submit_sync kate
          ~rsl:"&(executable=/bin/sim)(count=2)(maxwalltime=1.6667)(simduration=50)"));
  Grid_sim.Engine.run engine;
  let charged = Option.get (Grid_accounts.Allocation.charged bank ~party:org) in
  Alcotest.(check bool) "charged about 100 cpu-s" true (charged > 99.0 && charged < 101.0);
  let balance = Option.get (Grid_accounts.Allocation.balance bank ~party:org) in
  Alcotest.(check bool) "reservation released" true (balance > 898.0 && balance < 902.0)

let test_allocation_refuses_over_budget () =
  let _, _, _, _, kate = allocation_world 100.0 in
  (* 4 cpus x 60 s default duration = 240 cpu-s worst case > 100. *)
  match Client.submit_sync kate ~rsl:"&(executable=/bin/sim)(count=4)" with
  | Error (Protocol.Allocation_refused _) -> ()
  | _ -> Alcotest.fail "over-budget job admitted"

let test_allocation_refund_enables_more_work () =
  let engine, _, _, _, kate = allocation_world 150.0 in
  (* Worst case 1 x 100 = 100 cpu-s; actual 10 s. After settling, 140
     remain, enough for a second identical job; without the refund only
     50 would remain and the reservation would fail. *)
  ignore
    (ok_submit
       (Client.submit_sync kate
          ~rsl:"&(executable=/bin/sim)(maxwalltime=1.6667)(simduration=10)"));
  Grid_sim.Engine.run engine;
  ignore
    (ok_submit
       (Client.submit_sync kate
          ~rsl:"&(executable=/bin/sim)(maxwalltime=1.6667)(simduration=10)"));
  Grid_sim.Engine.run engine

let test_allocation_unknown_party_refused () =
  let _, ca, _, resource, _ = allocation_world 1000.0 in
  let outsider =
    Client.create ~identity:(Grid_gsi.Identity.create ~ca ~now:0.0 outsider_dn) ~resource ()
  in
  (* The outsider is not under the VO's allocation; but also not in the
     gridmap — use a mapped-but-unallocated DN instead: extend gridmap?
     Simplest: outsider is refused at mapping already; assert the party
     path with a member of another org added to the gridmap. *)
  match Client.submit_sync outsider ~rsl:"&(executable=/bin/sim)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "outsider admitted"

let test_allocation_cancelled_job_charged_for_usage_only () =
  let engine, _, bank, resource, kate = allocation_world 10000.0 in
  let reply =
    ok_submit
      (Client.submit_sync kate
         ~rsl:"&(executable=/bin/sim)(count=2)(maxwalltime=16.667)(simduration=1000)")
  in
  Grid_sim.Engine.run_until engine 100.0;
  ignore (Client.manage_sync kate ~contact:reply.Protocol.job_contact Protocol.Cancel);
  ignore resource;
  let charged = Option.get (Grid_accounts.Allocation.charged bank ~party:org) in
  (* ~100 s x 2 cpus of actual usage, not the 2000 cpu-s worst case. *)
  Alcotest.(check bool)
    (Printf.sprintf "charged for usage only (%.0f)" charged)
    true
    (charged > 190.0 && charged < 220.0)

(* --- Policy-derived sandboxes (the Section 7 "GT3" direction) ------------ *)

let advice_clause rsl : Grid_policy.Types.clause =
  List.map
    (fun (r : Grid_rsl.Ast.relation) ->
      { Grid_policy.Types.attribute = r.attribute;
        op = r.op;
        values =
          List.map
            (function
              | Grid_rsl.Ast.Literal s -> Grid_policy.Types.Str s
              | Grid_rsl.Ast.Variable _ | Grid_rsl.Ast.Binding _ -> assert false)
            r.values })
    (Grid_rsl.Parser.parse_clause_exn rsl)

let test_derived_sandbox_caps_walltime () =
  (* Authorization permits, but the decision's clause carries a walltime
     envelope; the JMI configures the LRM from it, so the job dies at the
     policy's cap even though the request never mentioned walltime. *)
  let advice _ = Some (advice_clause "&(maxwalltime <= 1)") in
  let w =
    build (fun () -> Mode.extended ~advice Grid_callout.Callout.permit_all)
  in
  let reply =
    ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=1000)")
  in
  Grid_sim.Engine.run w.engine;
  match Client.status_sync w.kate ~contact:reply.Protocol.job_contact with
  | Ok st -> begin
    match st.Protocol.state with
    | Protocol.Failed _ -> ()
    | s ->
      Alcotest.failf "expected walltime kill, got %s" (Protocol.job_state_to_string s)
  end
  | Error e -> Alcotest.failf "status: %s" (Protocol.management_error_to_string e)

let test_derived_sandbox_blocks_excess_cpus () =
  (* The envelope can be tighter than the authorization check itself:
     the PEP permits, the derived sandbox refuses. *)
  let advice _ = Some (advice_clause "&(count < 2)") in
  let w = build (fun () -> Mode.extended ~advice Grid_callout.Callout.permit_all) in
  (match Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(count=2)" with
  | Error (Protocol.Sandbox_violation _) -> ()
  | _ -> Alcotest.fail "excess cpus admitted past the derived sandbox");
  ignore (ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(count=1)"))

(* --- Gatekeeper-level PEP (Section 5.2's other decision domain) --------- *)

let test_gatekeeper_pep_denies_before_mapping () =
  let gk_pep = Grid_callout.Callout.deny_all ~reason:"site lockdown" in
  let w =
    build ~gatekeeper_pep:gk_pep (fun () ->
        Mode.extended Grid_callout.Callout.permit_all)
  in
  (match Client.submit_sync w.kate ~rsl:kate_transp with
  | Error (Protocol.Authorization_failed (Protocol.Authz_denied "site lockdown")) -> ()
  | _ -> Alcotest.fail "gatekeeper PEP did not deny");
  (* Denied before account mapping: no mapping record exists. *)
  Alcotest.(check int) "no mapping happened" 0
    (List.length
       (Grid_audit.Audit.by_kind (Resource.audit w.resource) Grid_audit.Audit.Account_mapping))

let test_gatekeeper_pep_composes_with_jm_pep () =
  let gk_hits = ref 0 in
  let gk_pep q =
    incr gk_hits;
    (* The gatekeeper PEP sees start requests only. *)
    Alcotest.(check bool) "start only" true
      (q.Grid_callout.Callout.action = Grid_policy.Types.Action.Start);
    Ok ()
  in
  let w2 =
    build ~gatekeeper_pep:gk_pep (fun () ->
        Mode.extended (Grid_callout.File_pep.of_sources (fig3_sources ())))
  in
  let reply = ok_submit (Client.submit_sync w2.kate ~rsl:kate_transp) in
  Alcotest.(check int) "gatekeeper PEP ran once" 1 !gk_hits;
  Alcotest.(check int) "both PEP arrows traced" 1
    (Grid_sim.Trace.count (Resource.trace w2.resource)
       ~label:"gatekeeper authorization callout");
  (* Management requests bypass the gatekeeper PEP entirely. *)
  ignore (Client.manage_sync w2.kate ~contact:reply.Protocol.job_contact Protocol.Status);
  Alcotest.(check int) "management did not touch the gatekeeper PEP" 1 !gk_hits

let test_gatekeeper_pep_in_baseline_mode () =
  (* The gatekeeper PEP is independent of the JM mode: a site can bolt a
     PEP onto otherwise-unmodified GT2. *)
  let gk_pep =
    Grid_callout.File_pep.of_texts
      [ ("site", org ^ ": &(action = start)(count < 3)") ]
  in
  let w = build ~gatekeeper_pep:gk_pep (fun () -> Mode.Gt2_baseline) in
  ignore (ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(count=2)"));
  match Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(count=3)" with
  | Error (Protocol.Authorization_failed _) -> ()
  | _ -> Alcotest.fail "gatekeeper PEP inactive in baseline mode"

let test_callout_invocation_counts () =
  let w = extended () in
  let reply = ok_submit (Client.submit_sync w.kate ~rsl:kate_transp) in
  let contact = reply.Protocol.job_contact in
  let jmi = Option.get (Resource.find_jmi w.resource contact) in
  Alcotest.(check int) "one callout for start" 1 (Job_manager.callout_invocations jmi);
  ignore (Client.manage_sync w.kate ~contact Protocol.Status);
  ignore (Client.manage_sync w.kate ~contact Protocol.Cancel);
  Alcotest.(check int) "one more per management action" 3
    (Job_manager.callout_invocations jmi)

let test_trace_shows_callout_only_in_extended () =
  let wb = baseline () in
  ignore (ok_submit (Client.submit_sync wb.kate ~rsl:"&(executable=/bin/sim)"));
  Alcotest.(check int) "baseline: no callout arrows" 0
    (Grid_sim.Trace.count (Resource.trace wb.resource) ~label:"authorization callout");
  let we = extended () in
  ignore (ok_submit (Client.submit_sync we.kate ~rsl:kate_transp));
  Alcotest.(check bool) "extended: callout arrow present" true
    (Grid_sim.Trace.count (Resource.trace we.resource) ~label:"authorization callout" > 0)

let test_audit_trail_records_flow () =
  let w = extended () in
  ignore (ok_submit (Client.submit_sync w.kate ~rsl:kate_transp));
  let audit = Resource.audit w.resource in
  Alcotest.(check bool) "authn recorded" true
    (List.length (Grid_audit.Audit.by_kind audit Grid_audit.Audit.Authentication) > 0);
  Alcotest.(check bool) "authz recorded" true
    (List.length (Grid_audit.Audit.by_kind audit Grid_audit.Audit.Authorization) > 0);
  Alcotest.(check bool) "mapping recorded" true
    (List.length (Grid_audit.Audit.by_kind audit Grid_audit.Audit.Account_mapping) > 0);
  Alcotest.(check bool) "submission recorded" true
    (List.length (Grid_audit.Audit.by_kind audit Grid_audit.Audit.Job_submission) > 0)

let test_denied_submission_audited () =
  let w = extended () in
  (match
     Client.submit_sync w.bo
       ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should be denied");
  let failures = Grid_audit.Audit.failures (Resource.audit w.resource) in
  Alcotest.(check bool) "denial audited" true (List.length failures > 0)

(* --- Callback contacts (GT2 state-change notifications) ------------------- *)

let test_state_callbacks () =
  let w = baseline () in
  let reply =
    ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=100)")
  in
  let contact = reply.Protocol.job_contact in
  let seen = ref [] in
  (match
     Client.watch w.kate ~contact ~on_state_change:(fun s ->
         seen := Protocol.job_state_to_string s :: !seen)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "watch: %s" (Protocol.management_error_to_string e));
  (* Suspend, resume, and let it finish: each transition is delivered. *)
  ignore (ok_manage (Client.manage_sync w.kate ~contact (Protocol.Signal Protocol.Suspend)));
  ignore (ok_manage (Client.manage_sync w.kate ~contact (Protocol.Signal Protocol.Resume)));
  Grid_sim.Engine.run w.engine;
  (* PENDING and ACTIVE fire at the same instant on resume; independent
     network jitter may reorder those two notifications, so assert the
     multiset plus the meaningful ordering (suspension first, completion
     last). *)
  let delivered = List.rev !seen in
  Alcotest.(check (list string)) "all transitions delivered"
    [ "ACTIVE"; "DONE"; "PENDING"; "SUSPENDED" ]
    (List.sort compare delivered);
  Alcotest.(check (option string)) "suspension first" (Some "SUSPENDED")
    (List.nth_opt delivered 0);
  Alcotest.(check (option string)) "completion last" (Some "DONE") (List.nth_opt delivered 3);
  (* Unknown contact refused. *)
  match Client.watch w.kate ~contact:"jmi-999999" ~on_state_change:ignore with
  | Error (Protocol.Unknown_job _) -> ()
  | _ -> Alcotest.fail "watch on unknown contact accepted"

(* --- Faulty network: timeouts, retries, duplicate delivery ----------------- *)

let test_retry_zero_deadline () =
  let w = baseline ~request_timeout:0.25 () in
  let reply = ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=100)") in
  match
    Client.manage_with_retry_sync ~deadline:0.0 w.kate ~contact:reply.Protocol.job_contact
      Protocol.Status
  with
  | Error (Protocol.Request_timed_out m) ->
    Alcotest.(check string) "fails before sending anything"
      "gave up after 0 attempts: deadline expired" m
  | Ok _ -> Alcotest.fail "zero deadline must not succeed"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.management_error_to_string e)

let test_retry_exhaustion_under_partition () =
  let w = baseline ~request_timeout:0.25 () in
  let reply = ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=100)") in
  (* Sever the request hop: every attempt must time out client-side, the
     retry loop must back off and ultimately give up — never hang. *)
  Grid_sim.Network.partition (Resource.network w.resource) ~link:"client->resource";
  (match
     Client.manage_with_retry_sync ~deadline:60.0 w.kate ~contact:reply.Protocol.job_contact
       Protocol.Status
   with
  | Error (Protocol.Request_timed_out m) ->
    Alcotest.(check bool) "exhaustion reported" true
      (Grid_util.Str_search.contains m "gave up after 4 attempts")
  | Ok _ -> Alcotest.fail "partitioned request path must not succeed"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.management_error_to_string e));
  (* Heal the partition: the same request now completes. *)
  Grid_sim.Network.heal (Resource.network w.resource) ~link:"client->resource";
  match
    Client.manage_with_retry_sync ~deadline:60.0 w.kate ~contact:reply.Protocol.job_contact
      Protocol.Status
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "healed link failed: %s" (Protocol.management_error_to_string e)

let test_duplicate_delivery_idempotent () =
  (* Every datagram is delivered twice. Challenge-bound single-use
     credentials mean the duplicate request is rejected at
     authentication, so there is exactly one admitted job and one
     effective cancel; duplicate replies are absorbed by the client's
     settle guard. *)
  let network_of engine =
    Grid_sim.Network.create
      ~faults:(Grid_sim.Network.Faults.profile ~duplicate:1.0 ())
      ~seed:5 engine
  in
  let w = baseline ~network_of ~request_timeout:0.25 () in
  let reply = ok_submit (Client.submit_sync w.kate ~rsl:"&(executable=/bin/sim)(simduration=100)") in
  let contact = reply.Protocol.job_contact in
  Alcotest.(check int) "exactly one job admitted" 1
    (List.length (Resource.jobs w.resource));
  (match Client.manage_sync w.kate ~contact Protocol.Cancel with
  | Ok Protocol.Ack -> ()
  | Ok _ -> Alcotest.fail "cancel must ack"
  | Error e -> Alcotest.failf "cancel failed: %s" (Protocol.management_error_to_string e));
  (* Cancel is idempotent at the JMI: an explicit second cancel acks too. *)
  (match Client.manage_sync w.kate ~contact Protocol.Cancel with
  | Ok Protocol.Ack -> ()
  | _ -> Alcotest.fail "second cancel must ack (idempotent)");
  Grid_sim.Engine.run w.engine;
  match Client.status_sync w.kate ~contact with
  | Ok st ->
    Alcotest.(check string) "cancelled once, stays cancelled" "CANCELED"
      (Protocol.job_state_to_string st.Protocol.state)
  | Error e -> Alcotest.failf "status failed: %s" (Protocol.management_error_to_string e)

(* --- Fail-closed chaos property --------------------------------------------- *)

let qcheck_fail_closed_under_flaky_pep =
  (* Whatever a flaky PEP answers, GRAM must track it faithfully: every
     accepted job had a permitting callout, every callout error surfaces
     as an authorization failure (never as silent acceptance). *)
  QCheck.Test.make ~name:"GRAM is fail-closed under arbitrary PEP behaviour" ~count:40
    QCheck.(pair small_int (int_range 1 30))
    (fun (seed, jobs) ->
      let rng = Grid_util.Rng.create ~seed in
      let permitted = ref 0 in
      let flaky _query =
        match Grid_util.Rng.int rng 4 with
        | 0 ->
          incr permitted;
          Ok ()
        | 1 -> Error (Grid_callout.Callout.Denied "chaos")
        | 2 -> Error (Grid_callout.Callout.System_error "chaos")
        | _ -> Error (Grid_callout.Callout.Bad_configuration "chaos")
      in
      let w = build ~nodes:8 ~cpus_per_node:8 (fun () -> Mode.extended flaky) in
      let accepted = ref 0 in
      let denied = ref 0 in
      for _ = 1 to jobs do
        match Client.submit_sync w.kate ~rsl:"&(executable=x)(simduration=0)" with
        | Ok _ -> incr accepted
        | Error (Protocol.Authorization_failed _) -> incr denied
        | Error e ->
          failwith ("unexpected error class: " ^ Protocol.submit_error_to_string e)
      done;
      !accepted = !permitted && !accepted + !denied = jobs)

let () =
  Alcotest.run "grid_gram"
    [ ( "baseline",
        [ Alcotest.test_case "submit and complete" `Quick test_baseline_submit_and_complete;
          Alcotest.test_case "unknown user refused" `Quick test_baseline_unknown_user_refused;
          Alcotest.test_case "jobtag rejected" `Quick test_baseline_rejects_jobtag;
          Alcotest.test_case "owner-only management" `Quick test_baseline_owner_only_management;
          Alcotest.test_case "authentication failures" `Quick test_baseline_authn_failures;
          Alcotest.test_case "cluster full" `Quick test_baseline_cluster_full ] );
      ( "extended",
        [ Alcotest.test_case "policy permits" `Quick test_extended_policy_permits;
          Alcotest.test_case "policy denies start" `Quick test_extended_policy_denies_start;
          Alcotest.test_case "requirement violation" `Quick test_extended_requirement_violation;
          Alcotest.test_case "vo-wide management" `Quick test_extended_vo_wide_management;
          Alcotest.test_case "tag scoping" `Quick test_extended_tag_scoping;
          Alcotest.test_case "unknown contact" `Quick test_extended_unknown_contact;
          Alcotest.test_case "misconfigured callout" `Quick test_extended_misconfigured_callout;
          Alcotest.test_case "system failure errors" `Quick
            test_extended_system_failure_distinguished;
          Alcotest.test_case "sandbox enforced" `Quick test_extended_sandbox_enforced;
          Alcotest.test_case "dynamic accounts" `Quick test_extended_dynamic_accounts;
          Alcotest.test_case "suspend/resume" `Quick test_extended_suspend_resume_via_signal ] );
      ( "limited-proxy",
        [ Alcotest.test_case "authn yes, startup no" `Quick
            test_limited_proxy_cannot_start_but_can_manage ] );
      ( "management-authn",
        [ Alcotest.test_case "expired credential" `Quick
            test_management_requires_valid_credential;
          Alcotest.test_case "revoked credential" `Quick
            test_management_rejects_revoked_credential;
          Alcotest.test_case "identity mismatch" `Quick
            test_management_rejects_identity_mismatch;
          Alcotest.test_case "replay" `Quick test_management_credential_replay_rejected ] );
      ( "allocation",
        [ Alcotest.test_case "admits and settles" `Quick test_allocation_admits_and_settles;
          Alcotest.test_case "refuses over budget" `Quick test_allocation_refuses_over_budget;
          Alcotest.test_case "refund enables more work" `Quick
            test_allocation_refund_enables_more_work;
          Alcotest.test_case "unknown party" `Quick test_allocation_unknown_party_refused;
          Alcotest.test_case "cancel charges usage only" `Quick
            test_allocation_cancelled_job_charged_for_usage_only ] );
      ( "derived-sandbox",
        [ Alcotest.test_case "caps walltime" `Quick test_derived_sandbox_caps_walltime;
          Alcotest.test_case "blocks excess cpus" `Quick
            test_derived_sandbox_blocks_excess_cpus ] );
      ( "gatekeeper-pep",
        [ Alcotest.test_case "denies before mapping" `Quick
            test_gatekeeper_pep_denies_before_mapping;
          Alcotest.test_case "composes with JM PEP" `Quick
            test_gatekeeper_pep_composes_with_jm_pep;
          Alcotest.test_case "works in baseline mode" `Quick
            test_gatekeeper_pep_in_baseline_mode ] );
      ("callbacks", [ Alcotest.test_case "state transitions" `Quick test_state_callbacks ]);
      ( "faults",
        [ Alcotest.test_case "zero deadline" `Quick test_retry_zero_deadline;
          Alcotest.test_case "retry exhaustion under partition" `Quick
            test_retry_exhaustion_under_partition;
          Alcotest.test_case "duplicate delivery idempotent" `Quick
            test_duplicate_delivery_idempotent ] );
      ("chaos", [ QCheck_alcotest.to_alcotest qcheck_fail_closed_under_flaky_pep ]);
      ( "observability",
        [ Alcotest.test_case "callout counts" `Quick test_callout_invocation_counts;
          Alcotest.test_case "trace arrows" `Quick test_trace_shows_callout_only_in_extended;
          Alcotest.test_case "audit trail" `Quick test_audit_trail_records_flow;
          Alcotest.test_case "denials audited" `Quick test_denied_submission_audited ] ) ]
