(* Tests for grid_akenti: attribute certificates, use conditions, the
   multi-stakeholder engine, and the callout adapter. *)

open Grid_akenti

let dn = Grid_gsi.Dn.parse
let alice = "/O=Grid/O=Fusion/CN=Alice"

let keypair_for seed =
  let kp = Grid_crypto.Keypair.generate ~seed_material:seed in
  Grid_crypto.Keypair.register kp;
  kp

type world = {
  engine : Engine.t;
  site : Engine.principal;
  vo : Engine.principal;
  authority : Engine.principal;
  site_kp : Grid_crypto.Keypair.t;
  vo_kp : Grid_crypto.Keypair.t;
  authority_kp : Grid_crypto.Keypair.t;
}

let constraints_of rsl =
  List.map
    (fun (r : Grid_rsl.Ast.relation) ->
      { Grid_policy.Types.attribute = r.attribute;
        op = r.op;
        values =
          List.map
            (function
              | Grid_rsl.Ast.Literal "NULL" -> Grid_policy.Types.Null
              | Grid_rsl.Ast.Literal s -> Grid_policy.Types.Str s
              | Grid_rsl.Ast.Variable _ | Grid_rsl.Ast.Binding _ -> assert false)
            r.values })
    (Grid_rsl.Parser.parse_clause_exn rsl)

let setup ?(two_stakeholders = true) () =
  Grid_crypto.Keypair.reset_keystore ();
  let site_kp = keypair_for "stakeholder:site" in
  let vo_kp = keypair_for "stakeholder:vo" in
  let authority_kp = keypair_for "authority:fusion" in
  let site = { Engine.dn = dn "/O=Grid/CN=Site Owner"; key = Grid_crypto.Keypair.public site_kp } in
  let vo = { Engine.dn = dn "/O=Grid/CN=Fusion VO"; key = Grid_crypto.Keypair.public vo_kp } in
  let authority =
    { Engine.dn = dn "/O=Grid/CN=Fusion Attribute Authority";
      key = Grid_crypto.Keypair.public authority_kp }
  in
  let stakeholders = if two_stakeholders then [ site; vo ] else [ site ] in
  let engine =
    Engine.create ~resource:"gram-job-manager" ~stakeholders
      ~attribute_authorities:[ authority ]
  in
  { engine; site; vo; authority; site_kp; vo_kp; authority_kp }

let site_condition w =
  Use_condition.make ~resource:"gram-job-manager" ~stakeholder:w.site.Engine.dn
    ~actions:Grid_policy.Types.Action.all
    ~constraints:(constraints_of "&(queue != reserved)")
    ~required_attributes:[] ~not_before:0.0 ~not_after:1e6
    ~signing_key:(Grid_crypto.Keypair.secret w.site_kp)

let vo_condition ?(required = [ ("group", "analysts") ]) w =
  Use_condition.make ~resource:"gram-job-manager" ~stakeholder:w.vo.Engine.dn
    ~actions:[ Grid_policy.Types.Action.Start ]
    ~constraints:(constraints_of "&(executable=TRANSP)(jobtag=NFC)")
    ~required_attributes:required ~not_before:0.0 ~not_after:1e6
    ~signing_key:(Grid_crypto.Keypair.secret w.vo_kp)

let alice_attr w =
  Attr_cert.make ~subject:(dn alice) ~attribute:"group" ~value:"analysts"
    ~issuer:w.authority.Engine.dn ~not_before:0.0 ~not_after:1e6
    ~signing_key:(Grid_crypto.Keypair.secret w.authority_kp)

let start_request ?(who = alice) rsl =
  Grid_policy.Types.start_request ~subject:(dn who)
    ~job:(Grid_rsl.Parser.parse_clause_exn rsl)

let test_attr_cert_verify () =
  let w = setup () in
  let ac = alice_attr w in
  Alcotest.(check bool) "verifies" true
    (Attr_cert.verify ac ~issuer_key:w.authority.Engine.key ~now:1.0);
  Alcotest.(check bool) "expired" false
    (Attr_cert.verify ac ~issuer_key:w.authority.Engine.key ~now:1e7);
  let tampered = { ac with Attr_cert.value = "admins" } in
  Alcotest.(check bool) "tampered" false
    (Attr_cert.verify tampered ~issuer_key:w.authority.Engine.key ~now:1.0)

let test_use_condition_verify () =
  let w = setup () in
  let uc = site_condition w in
  Alcotest.(check bool) "verifies" true
    (Use_condition.verify uc ~stakeholder_key:w.site.Engine.key ~now:1.0);
  Alcotest.(check bool) "wrong key" false
    (Use_condition.verify uc ~stakeholder_key:w.vo.Engine.key ~now:1.0);
  let tampered = { uc with Use_condition.resource = "other" } in
  Alcotest.(check bool) "tampered" false
    (Use_condition.verify tampered ~stakeholder_key:w.site.Engine.key ~now:1.0)

let test_engine_grants_when_all_stakeholders_satisfied () =
  let w = setup () in
  Engine.publish_condition w.engine (site_condition w);
  Engine.publish_condition w.engine (vo_condition w);
  Engine.publish_attribute w.engine (alice_attr w);
  match Engine.decide w.engine ~now:1.0 (start_request "&(executable=TRANSP)(jobtag=NFC)") with
  | Engine.Granted -> ()
  | Engine.Refused m -> Alcotest.failf "refused: %s" m

let test_engine_refuses_without_attribute_cert () =
  let w = setup () in
  Engine.publish_condition w.engine (site_condition w);
  Engine.publish_condition w.engine (vo_condition w);
  (* no attribute certificate for alice *)
  match Engine.decide w.engine ~now:1.0 (start_request "&(executable=TRANSP)(jobtag=NFC)") with
  | Engine.Refused _ -> ()
  | Engine.Granted -> Alcotest.fail "granted without required attribute"

let test_engine_refuses_constraint_violation () =
  let w = setup () in
  Engine.publish_condition w.engine (site_condition w);
  Engine.publish_condition w.engine (vo_condition w);
  Engine.publish_attribute w.engine (alice_attr w);
  match Engine.decide w.engine ~now:1.0 (start_request "&(executable=rm)(jobtag=NFC)") with
  | Engine.Refused _ -> ()
  | Engine.Granted -> Alcotest.fail "granted despite constraint violation"

let test_engine_requires_every_stakeholder () =
  let w = setup () in
  (* Only the site's condition is published; the VO stakeholder has no
     applicable condition, so Akenti refuses. *)
  Engine.publish_condition w.engine (site_condition w);
  Engine.publish_attribute w.engine (alice_attr w);
  match Engine.decide w.engine ~now:1.0 (start_request "&(executable=TRANSP)(jobtag=NFC)") with
  | Engine.Refused m ->
    Alcotest.(check bool) "names the silent stakeholder" true
      (Grid_util.Strings.starts_with ~prefix:"stakeholder /O=Grid/CN=Fusion VO" m)
  | Engine.Granted -> Alcotest.fail "granted without VO stakeholder condition"

let test_engine_ignores_forged_condition () =
  let w = setup () in
  Engine.publish_condition w.engine (site_condition w);
  Engine.publish_attribute w.engine (alice_attr w);
  (* Mallory forges a "VO" condition with her own key. *)
  let mallory_kp = keypair_for "mallory" in
  let forged =
    Use_condition.make ~resource:"gram-job-manager" ~stakeholder:w.vo.Engine.dn
      ~actions:Grid_policy.Types.Action.all ~constraints:[] ~required_attributes:[]
      ~not_before:0.0 ~not_after:1e6
      ~signing_key:(Grid_crypto.Keypair.secret mallory_kp)
  in
  Engine.publish_condition w.engine forged;
  match Engine.decide w.engine ~now:1.0 (start_request "&(executable=TRANSP)(jobtag=NFC)") with
  | Engine.Refused _ -> ()
  | Engine.Granted -> Alcotest.fail "forged use-condition honoured"

let test_engine_ignores_untrusted_attribute_issuer () =
  let w = setup () in
  Engine.publish_condition w.engine (site_condition w);
  Engine.publish_condition w.engine (vo_condition w);
  let rogue_kp = keypair_for "rogue-authority" in
  let rogue_attr =
    Attr_cert.make ~subject:(dn alice) ~attribute:"group" ~value:"analysts"
      ~issuer:(dn "/O=Rogue/CN=Authority") ~not_before:0.0 ~not_after:1e6
      ~signing_key:(Grid_crypto.Keypair.secret rogue_kp)
  in
  Engine.publish_attribute w.engine rogue_attr;
  match Engine.decide w.engine ~now:1.0 (start_request "&(executable=TRANSP)(jobtag=NFC)") with
  | Engine.Refused _ -> ()
  | Engine.Granted -> Alcotest.fail "untrusted attribute issuer honoured"

let test_engine_expired_condition_ignored () =
  let w = setup ~two_stakeholders:false () in
  let expired =
    Use_condition.make ~resource:"gram-job-manager" ~stakeholder:w.site.Engine.dn
      ~actions:Grid_policy.Types.Action.all ~constraints:[] ~required_attributes:[]
      ~not_before:0.0 ~not_after:10.0
      ~signing_key:(Grid_crypto.Keypair.secret w.site_kp)
  in
  Engine.publish_condition w.engine expired;
  (match Engine.decide w.engine ~now:5.0 (start_request "&(executable=x)") with
  | Engine.Granted -> ()
  | Engine.Refused m -> Alcotest.failf "refused while valid: %s" m);
  match Engine.decide w.engine ~now:20.0 (start_request "&(executable=x)") with
  | Engine.Refused _ -> ()
  | Engine.Granted -> Alcotest.fail "expired condition honoured"

let test_decision_cache () =
  let w = setup () in
  Engine.publish_condition w.engine (site_condition w);
  Engine.publish_condition w.engine (vo_condition w);
  Engine.publish_attribute w.engine (alice_attr w);
  Engine.enable_cache w.engine ~ttl:100.0;
  let request = start_request "&(executable=TRANSP)(jobtag=NFC)" in
  (* First decision misses, second hits and agrees. *)
  let first = Engine.decide w.engine ~now:1.0 request in
  let second = Engine.decide w.engine ~now:2.0 request in
  Alcotest.(check bool) "same verdict" true (first = second);
  Alcotest.(check int) "one miss" 1 (Engine.cache_misses w.engine);
  Alcotest.(check int) "one hit" 1 (Engine.cache_hits w.engine);
  (* Expired entry re-evaluates. *)
  ignore (Engine.decide w.engine ~now:200.0 request);
  Alcotest.(check int) "ttl miss" 2 (Engine.cache_misses w.engine);
  (* Publishing flushes the cache: a revoked-ish change takes effect
     immediately rather than after the TTL. *)
  Engine.publish_attribute w.engine
    (Attr_cert.make ~subject:(dn "/O=Grid/O=Fusion/CN=Other") ~attribute:"group"
       ~value:"analysts" ~issuer:w.authority.Engine.dn ~not_before:0.0 ~not_after:1e6
       ~signing_key:(Grid_crypto.Keypair.secret w.authority_kp));
  ignore (Engine.decide w.engine ~now:201.0 request);
  Alcotest.(check int) "flush miss" 3 (Engine.cache_misses w.engine)

let test_callout_adapter () =
  let w = setup () in
  Engine.publish_condition w.engine (site_condition w);
  Engine.publish_condition w.engine (vo_condition w);
  Engine.publish_attribute w.engine (alice_attr w);
  let callout = Akenti_pep.callout ~engine:w.engine ~now:(fun () -> 1.0) in
  let ok_query =
    Grid_callout.Callout.Query.make ~requester:(dn alice) ~job_id:"j1"
      (Grid_callout.Callout.Query.Start
         (Grid_rsl.Parser.parse_clause_exn "&(executable=TRANSP)(jobtag=NFC)"))
  in
  Alcotest.(check bool) "adapter grants" true (callout ok_query = Ok ());
  let bad_query =
    Grid_callout.Callout.Query.make ~requester:(dn alice) ~job_id:"j2"
      (Grid_callout.Callout.Query.Start
         (Grid_rsl.Parser.parse_clause_exn "&(executable=rm)"))
  in
  match callout bad_query with
  | Error (Grid_callout.Callout.Denied m) ->
    Alcotest.(check bool) "labelled Akenti" true
      (Grid_util.Strings.starts_with ~prefix:"Akenti:" m)
  | _ -> Alcotest.fail "adapter granted bad query"

let () =
  Alcotest.run "grid_akenti"
    [ ( "certificates",
        [ Alcotest.test_case "attribute cert" `Quick test_attr_cert_verify;
          Alcotest.test_case "use condition" `Quick test_use_condition_verify ] );
      ( "engine",
        [ Alcotest.test_case "grants when satisfied" `Quick
            test_engine_grants_when_all_stakeholders_satisfied;
          Alcotest.test_case "needs attribute cert" `Quick
            test_engine_refuses_without_attribute_cert;
          Alcotest.test_case "constraint violation" `Quick
            test_engine_refuses_constraint_violation;
          Alcotest.test_case "every stakeholder must grant" `Quick
            test_engine_requires_every_stakeholder;
          Alcotest.test_case "forged condition ignored" `Quick
            test_engine_ignores_forged_condition;
          Alcotest.test_case "untrusted attribute issuer" `Quick
            test_engine_ignores_untrusted_attribute_issuer;
          Alcotest.test_case "expired condition" `Quick test_engine_expired_condition_ignored;
          Alcotest.test_case "decision cache" `Quick test_decision_cache ] );
      ("adapter", [ Alcotest.test_case "callout" `Quick test_callout_adapter ]) ]
