(* Tests for grid_cas: capability issuance, verification, wire encoding,
   and the push-model PEP. *)

open Grid_cas

let dn = Grid_gsi.Dn.parse
let org = "/O=Grid/O=Fusion"
let alice = org ^ "/CN=Alice"
let mallory = "/O=Grid/CN=Mallory"

type world = {
  trust : Grid_gsi.Ca.Trust_store.store;
  ca : Grid_gsi.Ca.t;
  vo : Grid_vo.Vo.t;
  server : Server.t;
  alice_id : Grid_gsi.Identity.t;
}

let setup () =
  Grid_util.Ids.reset ();
  Grid_crypto.Keypair.reset_keystore ();
  let ca = Grid_gsi.Ca.create ~now:0.0 "/O=Grid/CN=CA" in
  let trust = Grid_gsi.Ca.Trust_store.create () in
  Grid_gsi.Ca.Trust_store.add trust (Grid_gsi.Ca.certificate ca);
  let vo = Grid_vo.Vo.create ~member_prefix:org "fusion" in
  Grid_vo.Vo.add_profile vo
    (Grid_vo.Profile.make "analysts"
       ~start_rules:[ Grid_vo.Profile.start_rule ~jobtag:"NFC" [ "TRANSP" ] ]);
  Grid_vo.Vo.add_member vo ~dn:alice ~groups:[ "analysts" ];
  let server = Server.create ~vo "fusion-cas" in
  let alice_id = Grid_gsi.Identity.create ~ca ~now:0.0 alice in
  { trust; ca; vo; server; alice_id }

let credential_of id =
  let challenge = Grid_gsi.Authn.fresh_challenge () in
  Grid_gsi.Credential.of_identity id ~challenge

let test_grant_to_member () =
  let w = setup () in
  match Server.grant w.server ~trust:w.trust ~now:1.0 (credential_of w.alice_id) with
  | Ok cap ->
    Alcotest.(check string) "holder" alice (Grid_gsi.Dn.to_string cap.Capability.holder);
    Alcotest.(check string) "vo" "fusion" cap.Capability.vo;
    Alcotest.(check bool) "policy mentions TRANSP" true
      (Grid_util.Strings.starts_with ~prefix:"/O=" cap.Capability.policy_text
      && String.length cap.Capability.policy_text > 0);
    Alcotest.(check int) "issued counter" 1 (Server.capabilities_issued w.server)
  | Error e -> Alcotest.failf "unexpected: %s" (Server.grant_error_to_string e)

let test_grant_refused_to_non_member () =
  let w = setup () in
  let mallory_id = Grid_gsi.Identity.create ~ca:w.ca ~now:0.0 mallory in
  match Server.grant w.server ~trust:w.trust ~now:1.0 (credential_of mallory_id) with
  | Error Server.Not_a_member -> ()
  | _ -> Alcotest.fail "non-member granted a capability"

let test_grant_refused_bad_credential () =
  let w = setup () in
  let rogue_ca = Grid_gsi.Ca.create ~now:0.0 "/O=Rogue/CN=CA" in
  let fake = Grid_gsi.Identity.create ~ca:rogue_ca ~now:0.0 alice in
  match Server.grant w.server ~trust:w.trust ~now:1.0 (credential_of fake) with
  | Error (Server.Authentication_failed _) -> ()
  | _ -> Alcotest.fail "rogue credential granted a capability"

let test_user_policy_scoped () =
  let w = setup () in
  let policy = Server.user_policy w.server ~user:(dn alice) in
  Alcotest.(check bool) "only statements applying to alice" true
    (List.for_all
       (fun st -> Grid_policy.Types.statement_applies st ~subject:(dn alice))
       policy)

let test_capability_verification () =
  let w = setup () in
  let cap =
    Result.get_ok (Server.grant w.server ~trust:w.trust ~now:1.0 (credential_of w.alice_id))
  in
  let key = Server.public_key w.server in
  Alcotest.(check bool) "verifies" true
    (Capability.verify cap ~cas_key:key ~presenter:(dn alice) ~now:2.0 = Ok ());
  (match Capability.verify cap ~cas_key:key ~presenter:(dn mallory) ~now:2.0 with
  | Error (Capability.Holder_mismatch _) -> ()
  | _ -> Alcotest.fail "stolen capability accepted");
  (match Capability.verify cap ~cas_key:key ~presenter:(dn alice) ~now:1e9 with
  | Error Capability.Expired -> ()
  | _ -> Alcotest.fail "expired capability accepted");
  let tampered = { cap with Capability.policy_text = "/O=Grid: &(action = start)(executable = rm)" } in
  match Capability.verify tampered ~cas_key:key ~presenter:(dn alice) ~now:2.0 with
  | Error Capability.Bad_signature -> ()
  | _ -> Alcotest.fail "tampered capability accepted"

let test_capability_encoding_roundtrip () =
  let w = setup () in
  let cap =
    Result.get_ok (Server.grant w.server ~trust:w.trust ~now:1.0 (credential_of w.alice_id))
  in
  match Capability.decode (Capability.encode cap) with
  | Ok cap' ->
    Alcotest.(check string) "holder survives" (Grid_gsi.Dn.to_string cap.Capability.holder)
      (Grid_gsi.Dn.to_string cap'.Capability.holder);
    Alcotest.(check string) "policy survives" cap.Capability.policy_text
      cap'.Capability.policy_text;
    Alcotest.(check string) "signature survives" cap.Capability.signature
      cap'.Capability.signature
  | Error m -> Alcotest.failf "decode failed: %s" m

let test_decode_garbage () =
  (match Capability.decode "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded");
  match Capability.decode "a\nb\nc\nd\ne\nf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed fields decoded"

(* Round-trip as a property: the Wire-based codec must carry adversarial
   bytes — newline-laden VO names, policy texts that look like the old
   separator-joined fields, NUL bytes — without confusing field
   boundaries. Holder DNs stay within what [Dn.parse] can re-read ('/'
   and '=' are structural to DNs, not to the codec). *)
let qcheck_capability_roundtrip =
  let gen_holder =
    QCheck.Gen.(
      let rdn =
        let* attr = oneofl [ "O"; "OU"; "CN"; "a1" ] in
        let* value =
          oneofl [ "Grid"; "a b"; "a\nb"; "x\x00y"; "mcs.anl.gov"; "1" ]
        in
        return { Grid_gsi.Dn.attr; value }
      in
      list_size (int_range 1 3) rdn)
  in
  let gen_cap =
    QCheck.Gen.(
      let* holder = gen_holder in
      let* vo = oneofl [ "fusion"; ""; "e\nng"; "19.|x"; "v\x00o" ] in
      let* policy_text =
        oneofl
          [ "";
            "/O=Grid: &(action = start)(jobtag = NFC)";
            "line1\nline2\n";
            "\x00\x01\xff";
            "12.cas-capability";
            String.make 300 '\n' ]
      in
      let* issued_at = pfloat in
      let* not_after = pfloat in
      let* signature = string_size ~gen:char (int_range 0 24) in
      return
        { Capability.holder; vo; policy_text; issued_at; not_after; signature })
  in
  QCheck.Test.make ~name:"wire codec round-trips adversarial capabilities"
    ~count:1000 (QCheck.make gen_cap) (fun cap ->
      match Capability.decode (Capability.encode cap) with
      | Ok cap' -> cap = cap'
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m)

let pinned test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5EED; 1005 |]) test

(* --- PEP -------------------------------------------------------------------- *)

let pep_query ~credential ~who rsl =
  { Grid_callout.Callout.requester = dn who;
    requester_credential = Some credential;
    job_owner = None;
    action = Grid_policy.Types.Action.Start;
    job_id = Some "job-1";
    rsl = Some (Grid_rsl.Parser.parse_clause_exn rsl);
    jobtag = None }

let test_pep_full_flow () =
  let w = setup () in
  (* Alice gets a capability proxy from the CAS, then presents it. *)
  let proxy =
    Result.get_ok (Server.grant_proxy w.server ~trust:w.trust ~now:1.0 w.alice_id)
  in
  let cred = credential_of proxy in
  (* The proxy chain itself must still validate under GSI rules. *)
  (match Grid_gsi.Credential.validate cred ~trust:w.trust ~now:2.0 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "capability proxy invalid: %s" (Grid_gsi.Credential.error_to_string e));
  let pep = Pep.callout ~cas_key:(Server.public_key w.server) ~now:(fun () -> 2.0) in
  Alcotest.(check bool) "granted action permitted" true
    (pep (pep_query ~credential:cred ~who:alice "&(executable=TRANSP)(jobtag=NFC)") = Ok ());
  match pep (pep_query ~credential:cred ~who:alice "&(executable=rm)(jobtag=NFC)") with
  | Error (Grid_callout.Callout.Denied _) -> ()
  | _ -> Alcotest.fail "unauthorized executable permitted"

let test_pep_no_credential () =
  let w = setup () in
  let pep = Pep.callout ~cas_key:(Server.public_key w.server) ~now:(fun () -> 2.0) in
  let q =
    { (pep_query
         ~credential:(credential_of w.alice_id)
         ~who:alice "&(executable=TRANSP)")
      with Grid_callout.Callout.requester_credential = None }
  in
  match pep q with
  | Error (Grid_callout.Callout.Denied _) -> ()
  | _ -> Alcotest.fail "missing credential permitted"

let test_pep_no_capability () =
  let w = setup () in
  let pep = Pep.callout ~cas_key:(Server.public_key w.server) ~now:(fun () -> 2.0) in
  let cred = credential_of w.alice_id in
  match pep (pep_query ~credential:cred ~who:alice "&(executable=TRANSP)") with
  | Error (Grid_callout.Callout.Denied m) ->
    Alcotest.(check bool) "mentions capability" true
      (Grid_util.Strings.starts_with ~prefix:"credential carries no CAS capability" m)
  | _ -> Alcotest.fail "capability-less credential permitted"

let test_pep_expired_capability () =
  let w = setup () in
  let proxy =
    Result.get_ok (Server.grant_proxy w.server ~trust:w.trust ~now:1.0 w.alice_id)
  in
  let cred = credential_of proxy in
  (* Default lifetime is 8h = 28800 s; evaluate well past it. *)
  let pep = Pep.callout ~cas_key:(Server.public_key w.server) ~now:(fun () -> 40000.0) in
  match pep (pep_query ~credential:cred ~who:alice "&(executable=TRANSP)(jobtag=NFC)") with
  | Error (Grid_callout.Callout.Denied m) ->
    Alcotest.(check string) "expired" "capability expired" m
  | _ -> Alcotest.fail "expired capability permitted"

let test_push_model_staleness () =
  (* The push model's known trade-off: policy updates do not reach
     capabilities already in the field. Alice's old capability keeps its
     rights until expiry; a freshly issued one reflects the change. *)
  let w = setup () in
  let proxy_old =
    Result.get_ok (Server.grant_proxy w.server ~trust:w.trust ~now:1.0 w.alice_id)
  in
  let pep = Pep.callout ~cas_key:(Server.public_key w.server) ~now:(fun () -> 10.0) in
  let q cred = pep_query ~credential:cred ~who:alice "&(executable=TRANSP)(jobtag=NFC)" in
  Alcotest.(check bool) "old capability grants" true (pep (q (credential_of proxy_old)) = Ok ());
  (* The VO revokes Alice's analyst role. *)
  Grid_vo.Vo.remove_member w.vo ~dn:(dn alice);
  (* A new capability request is refused... *)
  (match Server.grant w.server ~trust:w.trust ~now:10.0 (credential_of w.alice_id) with
  | Error Server.Not_a_member -> ()
  | _ -> Alcotest.fail "removed member still granted a capability");
  (* ...but the stale capability still works until it expires. *)
  Alcotest.(check bool) "stale capability still grants" true
    (pep (q (credential_of proxy_old)) = Ok ());
  let pep_late = Pep.callout ~cas_key:(Server.public_key w.server) ~now:(fun () -> 1e6) in
  match pep_late (q (credential_of proxy_old)) with
  | Error (Grid_callout.Callout.Denied _) -> ()
  | _ -> Alcotest.fail "expired capability honoured"

let () =
  Alcotest.run "grid_cas"
    [ ( "server",
        [ Alcotest.test_case "grant to member" `Quick test_grant_to_member;
          Alcotest.test_case "refuse non-member" `Quick test_grant_refused_to_non_member;
          Alcotest.test_case "refuse bad credential" `Quick test_grant_refused_bad_credential;
          Alcotest.test_case "user policy scoped" `Quick test_user_policy_scoped ] );
      ( "capability",
        [ Alcotest.test_case "verification" `Quick test_capability_verification;
          Alcotest.test_case "encoding roundtrip" `Quick test_capability_encoding_roundtrip;
          Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
          pinned qcheck_capability_roundtrip ] );
      ( "pep",
        [ Alcotest.test_case "full flow" `Quick test_pep_full_flow;
          Alcotest.test_case "push-model staleness" `Quick test_push_model_staleness;
          Alcotest.test_case "no credential" `Quick test_pep_no_credential;
          Alcotest.test_case "no capability" `Quick test_pep_no_capability;
          Alcotest.test_case "expired capability" `Quick test_pep_expired_capability ] ) ]
