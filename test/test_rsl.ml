(* Tests for grid_rsl: lexer, parser, printer round-trip, job view. *)

open Grid_rsl

let parse = Parser.parse
let clause s = Parser.parse_clause_exn s

(* --- Parsing ----------------------------------------------------------- *)

let test_parse_simple () =
  match parse "&(executable=/bin/test1)(count=4)" with
  | Ast.Single [ r1; r2 ] ->
    Alcotest.(check string) "attr 1" "executable" r1.Ast.attribute;
    Alcotest.(check bool) "value 1" true (r1.Ast.values = [ Ast.Literal "/bin/test1" ]);
    Alcotest.(check string) "attr 2" "count" r2.Ast.attribute
  | _ -> Alcotest.fail "wrong shape"

let test_parse_without_ampersand () =
  match parse "(action = start)(jobtag != NULL)" with
  | Ast.Single [ r1; r2 ] ->
    Alcotest.(check string) "attr" "action" r1.Ast.attribute;
    Alcotest.(check bool) "neq" true (r2.Ast.op = Ast.Neq)
  | _ -> Alcotest.fail "wrong shape"

let test_parse_operators () =
  match parse "&(a=1)(b!=2)(c<3)(d>4)(e<=5)(f>=6)" with
  | Ast.Single rs ->
    let ops = List.map (fun (r : Ast.relation) -> r.op) rs in
    Alcotest.(check bool) "all operators" true
      (ops = [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Gt; Ast.Le; Ast.Ge ])
  | _ -> Alcotest.fail "wrong shape"

let test_parse_quoted_values () =
  match parse {|&(arguments="-v" "input file.dat")(stdout="out put")|} with
  | Ast.Single [ args; out ] ->
    Alcotest.(check bool) "two argument values" true
      (args.Ast.values = [ Ast.Literal "-v"; Ast.Literal "input file.dat" ]);
    Alcotest.(check bool) "spaced value" true (out.Ast.values = [ Ast.Literal "out put" ])
  | _ -> Alcotest.fail "wrong shape"

let test_parse_escaped_quote () =
  match parse {|&(note="say ""hi""")|} with
  | Ast.Single [ r ] ->
    Alcotest.(check bool) "doubled quote" true (r.Ast.values = [ Ast.Literal {|say "hi"|} ])
  | _ -> Alcotest.fail "wrong shape"

let test_parse_variables () =
  match parse "&(directory=$(HOME))(executable=$(HOME) run)" with
  | Ast.Single [ d; e ] ->
    Alcotest.(check bool) "variable" true (d.Ast.values = [ Ast.Variable "HOME" ]);
    Alcotest.(check bool) "mixed" true
      (e.Ast.values = [ Ast.Variable "HOME"; Ast.Literal "run" ])
  | _ -> Alcotest.fail "wrong shape"

let test_parse_multirequest () =
  match parse "+(&(executable=a))(&(executable=b)(count=2))" with
  | Ast.Multi [ [ _ ]; [ _; _ ] ] -> ()
  | _ -> Alcotest.fail "wrong shape"

let test_parse_attribute_case_insensitive () =
  match parse "&(ExecutAble=/bin/x)(COUNT=2)" with
  | Ast.Single [ r1; r2 ] ->
    Alcotest.(check string) "lowered" "executable" r1.Ast.attribute;
    Alcotest.(check string) "lowered" "count" r2.Ast.attribute
  | _ -> Alcotest.fail "wrong shape"

let test_parse_whitespace_tolerant () =
  match parse "  &  ( executable  =  /bin/x )\n ( count = 2 ) " with
  | Ast.Single [ _; _ ] -> ()
  | _ -> Alcotest.fail "wrong shape"

let test_parse_errors () =
  let bad s =
    match Parser.parse_result s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "&";
  bad "&()";
  bad "&(executable)";
  bad "&(executable=)";
  bad "&(executable=/bin/x";
  bad "&(=x)";
  bad "&(a=1) trailing";
  bad "+";
  bad "+(&(a=1)";
  bad {|&(a="unterminated)|};
  bad "&(a ! b)";
  bad "&(a=$(V)"

let test_parse_clause_exn_rejects_multi () =
  Alcotest.(check bool) "multirequest rejected" true
    (try
       ignore (Parser.parse_clause_exn "+(&(a=1))");
       false
     with Parser.Error _ -> true)

(* --- Printing ----------------------------------------------------------- *)

let test_print_quotes_when_needed () =
  let c = [ Ast.literal_relation "arguments" [ "simple"; "has space"; "" ] ] in
  Alcotest.(check string) "printer quotes"
    {|&(arguments = simple "has space" "")|}
    (Ast.clause_to_string c)

let test_print_parse_roundtrip_fixed () =
  let inputs =
    [ "&(executable = /sandbox/test/test1)(count = 4)";
      "&(action = start)(jobtag != NULL)";
      {|&(arguments = "-x" "a b")(maxwalltime = 30)|};
      "+(&(executable = a))(&(executable = b))" ]
  in
  List.iter
    (fun s ->
      let once = parse s in
      let again = parse (Ast.to_string once) in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %s" s) true (Ast.equal once again))
    inputs

(* --- Job view ------------------------------------------------------------ *)

let test_job_basic () =
  match Job.of_string "&(executable=/bin/sim)(directory=/sandbox)(count=4)(jobtag=NFC)" with
  | Ok j ->
    Alcotest.(check string) "exe" "/bin/sim" j.Job.executable;
    Alcotest.(check (option string)) "dir" (Some "/sandbox") j.Job.directory;
    Alcotest.(check int) "count" 4 j.Job.count;
    Alcotest.(check (option string)) "jobtag" (Some "NFC") j.Job.jobtag
  | Error e -> Alcotest.failf "unexpected: %s" (Job.error_to_string e)

let test_job_defaults () =
  match Job.of_string "&(executable=/bin/x)" with
  | Ok j ->
    Alcotest.(check int) "count default" 1 j.Job.count;
    Alcotest.(check (list string)) "no args" [] j.Job.arguments;
    Alcotest.(check (option string)) "no jobtag" None j.Job.jobtag
  | Error e -> Alcotest.failf "unexpected: %s" (Job.error_to_string e)

let test_job_missing_executable () =
  match Job.of_string "&(count=2)" with
  | Error (Job.Missing_attribute "executable") -> ()
  | _ -> Alcotest.fail "missing executable not reported"

let test_job_bad_count () =
  (match Job.of_string "&(executable=/bin/x)(count=abc)" with
  | Error (Job.Not_an_integer _) -> ()
  | _ -> Alcotest.fail "bad count not reported");
  match Job.of_string "&(executable=/bin/x)(count=0)" with
  | Error (Job.Bad_value _) -> ()
  | _ -> Alcotest.fail "zero count not reported"

let test_job_walltime_memory () =
  match Job.of_string "&(executable=/bin/x)(maxwalltime=90.5)(maxmemory=512)" with
  | Ok j ->
    Alcotest.(check (option (float 1e-9))) "walltime" (Some 90.5) j.Job.max_wall_time;
    Alcotest.(check (option int)) "memory" (Some 512) j.Job.max_memory
  | Error e -> Alcotest.failf "unexpected: %s" (Job.error_to_string e)

let test_job_environment_substitution () =
  match
    Job.of_string ~environment:[ ("HOME", "/home/kate") ] "&(executable=$(HOME)/bin/x)"
  with
  | Error (Job.Bad_value _) ->
    (* "$(HOME)/bin/x" lexes as variable then atom: two values for a
       single-valued attribute — rejected. *)
    ()
  | Ok _ -> Alcotest.fail "juxtaposed values accepted for executable"
  | Error e -> Alcotest.failf "wrong error: %s" (Job.error_to_string e)

let test_job_environment_whole_value () =
  match Job.of_string ~environment:[ ("EXE", "/bin/x") ] "&(executable=$(EXE))(count=2)" with
  | Ok j -> Alcotest.(check string) "substituted" "/bin/x" j.Job.executable
  | Error e -> Alcotest.failf "unexpected: %s" (Job.error_to_string e)

let test_job_unbound_variable () =
  match Job.of_string "&(executable=$(NOPE))" with
  | Error (Job.Unbound_variable "NOPE") -> ()
  | _ -> Alcotest.fail "unbound variable not reported"

let test_rsl_substitution () =
  (* GT2's (rsl_substitution = (NAME value)...) defines variables for the
     rest of the request. *)
  match
    Job.of_string
      {|&(rsl_substitution = (EXE /sandbox/transp) (TAG NFC))(executable=$(EXE))(jobtag=$(TAG))(count=2)|}
  with
  | Ok j ->
    Alcotest.(check string) "substituted exe" "/sandbox/transp" j.Job.executable;
    Alcotest.(check (option string)) "substituted tag" (Some "NFC") j.Job.jobtag
  | Error e -> Alcotest.failf "unexpected: %s" (Job.error_to_string e)

let test_rsl_substitution_precedence () =
  (* In-request bindings shadow caller-supplied environment. *)
  match
    Job.of_string ~environment:[ ("EXE", "/caller") ]
      "&(rsl_substitution = (EXE /request))(executable=$(EXE))"
  with
  | Ok j -> Alcotest.(check string) "request wins" "/request" j.Job.executable
  | Error e -> Alcotest.failf "unexpected: %s" (Job.error_to_string e)

let test_binding_roundtrip_and_errors () =
  (* Printer round-trip for bindings. *)
  let text = {|&(rsl_substitution = (HOME "/home/k k") (TAG NFC))(executable=$(HOME))|} in
  let once = parse text in
  Alcotest.(check bool) "roundtrip" true (Ast.equal once (parse (Ast.to_string once)));
  (* Bindings outside rsl_substitution are rejected by the job view. *)
  (match Job.of_string "&(executable = (A b))" with
  | Error (Job.Bad_value _) -> ()
  | _ -> Alcotest.fail "stray binding accepted");
  (* Malformed binding syntax. *)
  List.iter
    (fun s ->
      match Parser.parse_result s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "&(rsl_substitution = (ONLYNAME))";
      "&(rsl_substitution = (A b c))";
      "&(rsl_substitution = (A b)" ]

let test_job_multirequest_rejected () =
  match Job.of_string "+(&(executable=/bin/x))" with
  | Error Job.Unsupported_multirequest -> ()
  | _ -> Alcotest.fail "multirequest not rejected"

(* --- Properties ----------------------------------------------------------- *)

let gen_clause : Ast.clause QCheck.Gen.t =
  QCheck.Gen.(
    let attr = oneofl [ "executable"; "directory"; "count"; "jobtag"; "arguments"; "queue" ] in
    let value =
      oneof
        [ map (fun s -> Ast.Literal s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
          map (fun s -> Ast.Literal ("with space " ^ s))
            (string_size ~gen:(char_range 'a' 'z') (int_range 1 4));
          map (fun s -> Ast.Variable (String.uppercase_ascii s))
            (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)) ]
    in
    let op = oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Gt; Ast.Le; Ast.Ge ] in
    let relation =
      map3 (fun a o vs -> { Ast.attribute = a; op = o; values = vs })
        attr op (list_size (int_range 1 3) value)
    in
    list_size (int_range 1 6) relation)

let arb_clause =
  QCheck.make gen_clause ~print:Ast.clause_to_string

let qcheck_parser_never_crashes =
  (* Fuzz: arbitrary input either parses or raises the typed error. *)
  QCheck.Test.make ~name:"parser never crashes" ~count:1000
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s -> match Parser.parse_result s with Ok _ | Error _ -> true)

let qcheck_job_view_never_crashes =
  QCheck.Test.make ~name:"job view never crashes" ~count:1000
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s -> match Job.of_string s with Ok _ | Error _ -> true)

let qcheck_rsl_like_fuzz =
  (* Structured fuzz: near-miss RSL built from metacharacter soup. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 40)
        (oneofl [ "&"; "("; ")"; "="; "!="; "<"; ">"; "\""; "$("; "a"; "count"; "4"; " "; "+" ])
      |> map (String.concat ""))
  in
  QCheck.Test.make ~name:"metacharacter soup never crashes" ~count:1000
    (QCheck.make gen ~print:(fun s -> s))
    (fun s -> match Parser.parse_result s with Ok _ | Error _ -> true)

let qcheck_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:500 arb_clause (fun c ->
      match Parser.parse_result (Ast.clause_to_string c) with
      | Ok (Ast.Single c') -> Ast.clause_equal c c'
      | Ok (Ast.Multi _) | Error _ -> false)

(* Full-AST round-trip: every value form the printer can emit — literals
   over the atom-safe alphabet, literals that force quoting (embedded
   spaces), substitution variables and [(NAME value)] bindings — must
   survive [parse (print clause)] structurally intact. Quoted literals
   deliberately avoid double-quote and backslash characters: the printer
   and lexer disagree on escape syntax for those (OCaml-style vs doubled
   quotes), which is an acknowledged printer limitation, not a parser
   bug. *)
let gen_full_clause : Ast.clause QCheck.Gen.t =
  QCheck.Gen.(
    let safe_char =
      oneof
        [ char_range 'a' 'z'; char_range '0' '9';
          oneofl [ '_'; '.'; '/'; '-' ] ]
    in
    let atom = string_size ~gen:safe_char (int_range 1 10) in
    let spaced =
      map2 (fun a b -> a ^ " " ^ b) atom
        (string_size ~gen:safe_char (int_range 0 6))
    in
    let name = map String.uppercase_ascii (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)) in
    let value =
      frequency
        [ (4, map (fun s -> Ast.Literal s) atom);
          (2, map (fun s -> Ast.Literal s) spaced);
          (2, map (fun n -> Ast.Variable n) name);
          (1, map2 (fun n v -> Ast.Binding (n, v)) name (oneof [ atom; spaced ])) ]
    in
    let attr =
      oneofl
        [ "executable"; "directory"; "count"; "jobtag"; "arguments"; "queue";
          "rsl_substitution"; "environment"; "maxwalltime" ]
    in
    let op = oneofl [ Ast.Eq; Ast.Neq; Ast.Lt; Ast.Gt; Ast.Le; Ast.Ge ] in
    let relation =
      map3 (fun a o vs -> { Ast.attribute = a; op = o; values = vs })
        attr op (list_size (int_range 1 3) value)
    in
    list_size (int_range 1 5) relation)

let qcheck_full_roundtrip =
  QCheck.Test.make ~name:"full-AST print/parse round-trip" ~count:1000
    (QCheck.make gen_full_clause ~print:Ast.clause_to_string)
    (fun c ->
      match Parser.parse_result (Ast.clause_to_string c) with
      | Ok (Ast.Single c') -> Ast.clause_equal c c'
      | Ok (Ast.Multi _) | Error _ -> false)

let qcheck_multirequest_roundtrip =
  QCheck.Test.make ~name:"multirequest round-trip" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 4) gen_clause)
       ~print:(fun cs -> Ast.to_string (Ast.Multi cs)))
    (fun cs ->
      match Parser.parse_result (Ast.to_string (Ast.Multi cs)) with
      | Ok spec -> Ast.equal (Ast.Multi cs) spec
      | Error _ -> false)

let () =
  ignore clause;
  Alcotest.run "grid_rsl"
    [ ( "parser",
        [ Alcotest.test_case "simple" `Quick test_parse_simple;
          Alcotest.test_case "implicit conjunction" `Quick test_parse_without_ampersand;
          Alcotest.test_case "operators" `Quick test_parse_operators;
          Alcotest.test_case "quoted values" `Quick test_parse_quoted_values;
          Alcotest.test_case "escaped quote" `Quick test_parse_escaped_quote;
          Alcotest.test_case "variables" `Quick test_parse_variables;
          Alcotest.test_case "multirequest" `Quick test_parse_multirequest;
          Alcotest.test_case "case-insensitive attributes" `Quick
            test_parse_attribute_case_insensitive;
          Alcotest.test_case "whitespace tolerant" `Quick test_parse_whitespace_tolerant;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "clause_exn rejects multi" `Quick
            test_parse_clause_exn_rejects_multi ] );
      ( "printer",
        [ Alcotest.test_case "quotes when needed" `Quick test_print_quotes_when_needed;
          Alcotest.test_case "fixed round-trips" `Quick test_print_parse_roundtrip_fixed;
          QCheck_alcotest.to_alcotest qcheck_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 0x5EED; 1103 |])
            qcheck_full_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_multirequest_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_parser_never_crashes;
          QCheck_alcotest.to_alcotest qcheck_job_view_never_crashes;
          QCheck_alcotest.to_alcotest qcheck_rsl_like_fuzz ] );
      ( "job",
        [ Alcotest.test_case "basic" `Quick test_job_basic;
          Alcotest.test_case "defaults" `Quick test_job_defaults;
          Alcotest.test_case "missing executable" `Quick test_job_missing_executable;
          Alcotest.test_case "bad count" `Quick test_job_bad_count;
          Alcotest.test_case "walltime/memory" `Quick test_job_walltime_memory;
          Alcotest.test_case "juxtaposed values rejected" `Quick
            test_job_environment_substitution;
          Alcotest.test_case "variable substitution" `Quick test_job_environment_whole_value;
          Alcotest.test_case "unbound variable" `Quick test_job_unbound_variable;
          Alcotest.test_case "multirequest rejected" `Quick test_job_multirequest_rejected;
          Alcotest.test_case "rsl_substitution" `Quick test_rsl_substitution;
          Alcotest.test_case "substitution precedence" `Quick test_rsl_substitution_precedence;
          Alcotest.test_case "binding round-trip + errors" `Quick
            test_binding_roundtrip_and_errors ] ) ]
