(* Tests for grid_gsi: DNs, certificates, CAs, proxies, credential
   validation, gridmap, authentication. *)

open Grid_gsi

let setup () =
  Grid_crypto.Keypair.reset_keystore ();
  Grid_util.Ids.reset ()

let dn = Alcotest.testable Dn.pp Dn.equal

(* --- Distinguished names -------------------------------------------- *)

let test_dn_parse_roundtrip () =
  let s = "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" in
  Alcotest.(check string) "roundtrip" s (Dn.to_string (Dn.parse s))

let test_dn_parse_errors () =
  let bad s =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" s)
      true
      (try
         ignore (Dn.parse s);
         false
       with Dn.Parse_error _ -> true)
  in
  bad "";
  bad "no-slash";
  bad "/O=";
  bad "/=value";
  bad "/O=Grid/plain"

let test_dn_prefix () =
  let org = Dn.parse "/O=Grid/O=Globus/OU=mcs.anl.gov" in
  let kate = Dn.parse "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" in
  let other = Dn.parse "/O=Grid/O=Globus/OU=cs.uchicago.edu/CN=Sam Meder" in
  Alcotest.(check bool) "org prefixes member" true (Dn.is_prefix org kate);
  Alcotest.(check bool) "reflexive" true (Dn.is_prefix kate kate);
  Alcotest.(check bool) "not member of other org" false (Dn.is_prefix org other);
  Alcotest.(check bool) "longer is not prefix of shorter" false (Dn.is_prefix kate org)

let test_dn_common_name () =
  Alcotest.(check (option string)) "cn" (Some "Kate Keahey")
    (Dn.common_name (Dn.parse "/O=Grid/CN=Kate Keahey"));
  Alcotest.(check (option string)) "last cn wins" (Some "proxy")
    (Dn.common_name (Dn.parse "/O=Grid/CN=Kate Keahey/CN=proxy"));
  Alcotest.(check (option string)) "no cn" None (Dn.common_name (Dn.parse "/O=Grid"))

let test_dn_append () =
  let d = Dn.append (Dn.parse "/O=Grid") ~attr:"CN" ~value:"proxy" in
  Alcotest.(check string) "appended" "/O=Grid/CN=proxy" (Dn.to_string d)

(* --- Certificates and CAs ------------------------------------------- *)

let make_ca () = Ca.create ~now:0.0 "/O=Grid/CN=Test CA"

let test_ca_self_signed () =
  setup ();
  let ca = make_ca () in
  let cert = Ca.certificate ca in
  Alcotest.(check bool) "self-signature verifies" true
    (Cert.verify_signature cert ~issuer_key:cert.Cert.public_key);
  Alcotest.(check bool) "kind" true (cert.Cert.kind = Cert.Authority)

let test_cert_validity_window () =
  setup ();
  let ca = make_ca () in
  let id = Identity.create ~ca ~now:0.0 ~lifetime:100.0 "/O=Grid/CN=User" in
  let cert = Identity.certificate id in
  Alcotest.(check bool) "valid now" true (Cert.valid_at cert ~now:50.0);
  Alcotest.(check bool) "expired" false (Cert.valid_at cert ~now:101.0);
  Alcotest.(check bool) "not yet valid" false (Cert.valid_at cert ~now:(-1.0))

let test_cert_fingerprint_changes () =
  setup ();
  let ca = make_ca () in
  let a = Identity.create ~ca ~now:0.0 "/O=Grid/CN=A" in
  let b = Identity.create ~ca ~now:0.0 "/O=Grid/CN=B" in
  Alcotest.(check bool) "distinct certs, distinct fingerprints" false
    (String.equal
       (Cert.fingerprint (Identity.certificate a))
       (Cert.fingerprint (Identity.certificate b)))

let test_trust_store_rejects_non_authority () =
  setup ();
  let ca = make_ca () in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=U" in
  let store = Ca.Trust_store.create () in
  Alcotest.(check bool) "raises" true
    (try
       Ca.Trust_store.add store (Identity.certificate id);
       false
     with Invalid_argument _ -> true)

(* --- Credentials ------------------------------------------------------ *)

let trust_of ca =
  let store = Ca.Trust_store.create () in
  Ca.Trust_store.add store (Ca.certificate ca);
  store

let test_credential_validates () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Kate Keahey" in
  let cred = Credential.of_identity id ~challenge:"c1" in
  match Credential.validate cred ~trust ~now:1.0 with
  | Ok subject -> Alcotest.check dn "subject" (Identity.subject id) subject
  | Error e -> Alcotest.failf "unexpected: %s" (Credential.error_to_string e)

let test_credential_untrusted_root () =
  setup ();
  let ca = make_ca () in
  let rogue = Ca.create ~now:0.0 "/O=Rogue/CN=Evil CA" in
  let trust = trust_of ca in
  let id = Identity.create ~ca:rogue ~now:0.0 "/O=Rogue/CN=Mallory" in
  let cred = Credential.of_identity id ~challenge:"c" in
  match Credential.validate cred ~trust ~now:1.0 with
  | Ok _ -> Alcotest.fail "rogue credential accepted"
  | Error (Credential.Untrusted_root _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Credential.error_to_string e)

let test_credential_expired () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 ~lifetime:10.0 "/O=Grid/CN=Short" in
  let cred = Credential.of_identity id ~challenge:"c" in
  match Credential.validate cred ~trust ~now:11.0 with
  | Error (Credential.Expired _) -> ()
  | Ok _ -> Alcotest.fail "expired credential accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Credential.error_to_string e)

let test_proxy_chain_validates () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Kate Keahey" in
  let proxy = Identity.delegate id ~now:0.0 in
  let cred = Credential.of_identity proxy ~challenge:"c" in
  (match Credential.validate cred ~trust ~now:1.0 with
  | Ok subject ->
    (* Effective subject is the EEC's, not the proxy's. *)
    Alcotest.check dn "effective subject" (Identity.subject id) subject
  | Error e -> Alcotest.failf "unexpected: %s" (Credential.error_to_string e));
  Alcotest.(check int) "depth" 1 (Credential.delegation_depth cred)

let test_deep_delegation () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Root User" in
  let rec go id depth = if depth = 0 then id else go (Identity.delegate id ~now:0.0) (depth - 1) in
  let deep = go id 8 in
  let cred = Credential.of_identity deep ~challenge:"c" in
  (match Credential.validate cred ~trust ~now:1.0 with
  | Ok subject -> Alcotest.check dn "still the EEC" (Identity.subject id) subject
  | Error e -> Alcotest.failf "unexpected: %s" (Credential.error_to_string e));
  Alcotest.(check int) "depth 8" 8 (Credential.delegation_depth cred)

let test_proxy_expires_independently () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 ~lifetime:1000.0 "/O=Grid/CN=U" in
  let proxy = Identity.delegate id ~now:0.0 ~lifetime:10.0 in
  let cred = Credential.of_identity proxy ~challenge:"c" in
  match Credential.validate cred ~trust ~now:20.0 with
  | Error (Credential.Expired d) ->
    Alcotest.(check bool) "the proxy is what expired" true
      (Dn.common_name d = Some "proxy")
  | Ok _ -> Alcotest.fail "expired proxy accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Credential.error_to_string e)

let test_possession_proof_required () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=U" in
  let cred = Credential.of_identity id ~challenge:"c" in
  (* Replay the chain with a forged proof: stolen certificates without the
     private key must not authenticate. *)
  let forged = { cred with Credential.proof = "forged" } in
  match Credential.validate forged ~trust ~now:1.0 with
  | Error Credential.Bad_possession_proof -> ()
  | Ok _ -> Alcotest.fail "forged proof accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Credential.error_to_string e)

let test_tampered_chain_rejected () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Honest" in
  let cred = Credential.of_identity id ~challenge:"c" in
  (* Rewrite the leaf subject: signature must break. *)
  let tampered_leaf =
    match cred.Credential.chain with
    | leaf :: rest ->
      { leaf with Cert.subject = Dn.parse "/O=Grid/CN=Impostor" } :: rest
    | [] -> assert false
  in
  let tampered = { cred with Credential.chain = tampered_leaf } in
  match Credential.validate tampered ~trust ~now:1.0 with
  | Error (Credential.Bad_signature _) -> ()
  | Ok _ -> Alcotest.fail "tampered certificate accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Credential.error_to_string e)

let test_revoked_certificate_rejected () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Compromised" in
  let cred = Credential.of_identity id ~challenge:"c" in
  (* Valid before revocation... *)
  (match Credential.validate cred ~trust ~now:1.0 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected: %s" (Credential.error_to_string e));
  (* ...rejected after. *)
  Ca.Trust_store.revoke trust (Identity.certificate id);
  (match Credential.validate cred ~trust ~now:1.0 with
  | Error (Credential.Revoked d) ->
    Alcotest.(check string) "names the cert" "/O=Grid/CN=Compromised" (Dn.to_string d)
  | Ok _ -> Alcotest.fail "revoked credential accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Credential.error_to_string e));
  (* Proxies of a revoked end-entity fail too: the chain contains the
     revoked certificate. *)
  let proxy = Identity.delegate id ~now:0.0 in
  let proxy_cred = Credential.of_identity proxy ~challenge:"c2" in
  match Credential.validate proxy_cred ~trust ~now:1.0 with
  | Error (Credential.Revoked _) -> ()
  | Ok _ -> Alcotest.fail "proxy of revoked identity accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Credential.error_to_string e)

let test_revoked_proxy_only () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=User" in
  let proxy = Identity.delegate id ~now:0.0 in
  Ca.Trust_store.revoke trust (Identity.certificate proxy);
  (* The proxy is dead, the end entity is fine. *)
  (match Credential.validate (Credential.of_identity proxy ~challenge:"a") ~trust ~now:1.0 with
  | Error (Credential.Revoked _) -> ()
  | _ -> Alcotest.fail "revoked proxy accepted");
  match Credential.validate (Credential.of_identity id ~challenge:"b") ~trust ~now:1.0 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "end entity wrongly affected: %s" (Credential.error_to_string e)

let test_limited_proxy_flag () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=User" in
  let full = Identity.delegate id ~now:0.0 in
  let limited = Identity.delegate id ~now:0.0 ~limited:true in
  Alcotest.(check bool) "full proxy not limited" false (Identity.is_limited full);
  Alcotest.(check bool) "limited proxy flagged" true (Identity.is_limited limited);
  (* Limitation is inherited by further delegation. *)
  let grandchild = Identity.delegate limited ~now:0.0 in
  Alcotest.(check bool) "inherited" true (Identity.is_limited grandchild);
  (* The credential still authenticates. *)
  let cred = Credential.of_identity limited ~challenge:"c" in
  Alcotest.(check bool) "credential flagged" true (Credential.is_limited cred);
  match Credential.validate cred ~trust ~now:1.0 with
  | Ok subject -> Alcotest.check dn "authenticates as the EEC" (Identity.subject id) subject
  | Error e -> Alcotest.failf "limited proxy failed authn: %s" (Credential.error_to_string e)

let test_empty_chain () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let cred = { Credential.chain = []; proof = ""; challenge = "c" } in
  match Credential.validate cred ~trust ~now:0.0 with
  | Error Credential.Empty_chain -> ()
  | _ -> Alcotest.fail "empty chain not rejected"

(* --- Gridmap ----------------------------------------------------------- *)

let gridmap_text =
  {|# grid-mapfile
"/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" keahey
"/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu" bliu,fusion
|}

let test_gridmap_parse_lookup () =
  let gm = Gridmap.parse gridmap_text in
  let kate = Dn.parse "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" in
  let bo = Dn.parse "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu" in
  let nobody = Dn.parse "/O=Grid/CN=Nobody" in
  Alcotest.(check (option string)) "kate" (Some "keahey") (Gridmap.lookup gm kate);
  Alcotest.(check (option string)) "bo primary" (Some "bliu") (Gridmap.lookup gm bo);
  Alcotest.(check (list string)) "bo all" [ "bliu"; "fusion" ] (Gridmap.lookup_all gm bo);
  Alcotest.(check bool) "mem" true (Gridmap.mem gm kate);
  Alcotest.(check bool) "not mem" false (Gridmap.mem gm nobody)

let test_gridmap_roundtrip () =
  let gm = Gridmap.parse gridmap_text in
  let gm' = Gridmap.parse (Gridmap.to_text gm) in
  Alcotest.(check int) "same entries" 2 (List.length (Gridmap.entries gm'));
  let kate = Dn.parse "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" in
  Alcotest.(check (option string)) "lookup survives" (Some "keahey") (Gridmap.lookup gm' kate)

let test_gridmap_errors () =
  let bad text =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" text)
      true
      (try
         ignore (Gridmap.parse text);
         false
       with Gridmap.Parse_error _ -> true)
  in
  bad "/O=Grid/CN=X account";
  bad "\"/O=Grid/CN=X\"";
  bad "\"/O=Grid/CN=X";
  bad "\"not-a-dn\" account"

let test_gridmap_add () =
  let gm = Gridmap.add Gridmap.empty ~dn:(Dn.parse "/O=Grid/CN=New") ~account:"new" in
  Alcotest.(check (option string)) "added" (Some "new")
    (Gridmap.lookup gm (Dn.parse "/O=Grid/CN=New"))

(* --- Authentication ----------------------------------------------------- *)

let test_authn_handshake () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Peer" in
  match Authn.handshake ~trust ~now:1.0 id with
  | Ok ctx -> Alcotest.check dn "peer" (Identity.subject id) ctx.Authn.peer
  | Error e -> Alcotest.failf "unexpected: %s" (Authn.error_to_string e)

let test_authn_challenge_binding () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let id = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Peer" in
  (* A credential bound to one challenge cannot answer another: replay
     protection. *)
  let cred = Credential.of_identity id ~challenge:"challenge-A" in
  match Authn.authenticate ~trust ~now:1.0 ~challenge:"challenge-B" cred with
  | Error Authn.Challenge_mismatch -> ()
  | Ok _ -> Alcotest.fail "replayed credential accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Authn.error_to_string e)

(* --- Credential renewal (MyProxy stand-in) ------------------------------- *)

let test_renewal_flow () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let kate = Identity.create ~ca ~now:0.0 ~lifetime:100000.0 "/O=Grid/CN=Kate" in
  let robot = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Renewal Robot" in
  let server = Renewal.create () in
  ignore (Renewal.deposit server ~identity:kate
    ~authorized_renewers:[ Identity.subject robot ]
    ~max_proxy_lifetime:500.0 ~now:0.0 ());
  Alcotest.(check bool) "deposited" true (Renewal.has_deposit server (Identity.subject kate));
  (* The robot draws a fresh proxy at t=1000, well after Kate's original
     short proxy would have died. *)
  let robot_cred = Credential.of_identity robot ~challenge:"r1" in
  (match
     Renewal.renew server ~trust ~now:1000.0 ~owner:(Identity.subject kate) robot_cred
   with
  | Ok proxy ->
    Alcotest.(check bool) "acts as Kate" true
      (Dn.equal (Identity.effective_subject proxy) (Identity.subject kate));
    (match Credential.validate (Credential.of_identity proxy ~challenge:"c") ~trust ~now:1400.0 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "fresh proxy invalid: %s" (Credential.error_to_string e));
    (* Lifetime capped by the deposit. *)
    (match Credential.validate (Credential.of_identity proxy ~challenge:"c2") ~trust ~now:1501.0 with
    | Error (Credential.Expired _) -> ()
    | _ -> Alcotest.fail "lifetime cap not applied")
  | Error e -> Alcotest.failf "renewal failed: %s" (Renewal.error_to_string e));
  Alcotest.(check int) "renewal counted" 1 (Renewal.renewals server)

let test_renewal_authorization () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let kate = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Kate" in
  let stranger = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Stranger" in
  let server = Renewal.create () in
  ignore (Renewal.deposit server ~identity:kate ~authorized_renewers:[] ~now:0.0 ());
  (* A stranger cannot renew... *)
  (match
     Renewal.renew server ~trust ~now:1.0 ~owner:(Identity.subject kate)
       (Credential.of_identity stranger ~challenge:"s")
   with
  | Error (Renewal.Renewer_not_authorized _) -> ()
  | _ -> Alcotest.fail "unauthorized renewal accepted");
  (* ...but self-renewal always works. *)
  (match
     Renewal.renew server ~trust ~now:1.0 ~owner:(Identity.subject kate)
       (Credential.of_identity kate ~challenge:"k")
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "self-renewal failed: %s" (Renewal.error_to_string e));
  (* No deposit: refused. *)
  match
    Renewal.renew server ~trust ~now:1.0 ~owner:(Identity.subject stranger)
      (Credential.of_identity stranger ~challenge:"s2")
  with
  | Error (Renewal.No_deposit _) -> ()
  | _ -> Alcotest.fail "renewal without deposit accepted"

let test_renewal_rejects_bad_credential_and_expired_escrow () =
  setup ();
  let ca = make_ca () in
  let trust = trust_of ca in
  let kate = Identity.create ~ca ~now:0.0 ~lifetime:50.0 "/O=Grid/CN=Kate" in
  let server = Renewal.create () in
  ignore (Renewal.deposit server ~identity:kate ~authorized_renewers:[] ~now:0.0 ());
  (* Rogue renewer credential. *)
  let rogue_ca = Ca.create ~now:0.0 "/O=Rogue/CN=CA" in
  let mallory = Identity.create ~ca:rogue_ca ~now:0.0 "/O=Grid/CN=Kate" in
  (match
     Renewal.renew server ~trust ~now:1.0 ~owner:(Identity.subject kate)
       (Credential.of_identity mallory ~challenge:"m")
   with
  | Error (Renewal.Renewer_authentication_failed _) -> ()
  | _ -> Alcotest.fail "rogue renewer accepted");
  (* The escrow itself expires at t=50; nothing can be drawn after. *)
  let late = Identity.create ~ca ~now:0.0 "/O=Grid/CN=Kate Two" in
  ignore (Renewal.deposit server ~identity:late ~authorized_renewers:[] ~now:0.0 ());
  ignore late;
  match
    Renewal.renew server ~trust ~now:60.0 ~owner:(Identity.subject kate)
      (Credential.of_identity kate ~challenge:"k")
  with
  | Error (Renewal.Renewer_authentication_failed _) (* kate's own cred also expired *)
  | Error (Renewal.Escrowed_credential_expired _) -> ()
  | _ -> Alcotest.fail "expired escrow honoured"

let qcheck_dn_roundtrip =
  let gen_dn =
    QCheck.Gen.(
      let component =
        pair
          (oneofl [ "O"; "OU"; "CN"; "C"; "L" ])
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 12))
      in
      list_size (int_range 1 6) component
      |> map (fun comps ->
             String.concat ""
               (List.map (fun (a, v) -> Printf.sprintf "/%s=%s" a v) comps)))
  in
  QCheck.Test.make ~name:"dn parse/print round-trip" ~count:300
    (QCheck.make gen_dn ~print:(fun s -> s))
    (fun s -> Dn.to_string (Dn.parse s) = s)

let () =
  Alcotest.run "grid_gsi"
    [ ( "dn",
        [ Alcotest.test_case "roundtrip" `Quick test_dn_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_dn_parse_errors;
          Alcotest.test_case "prefix" `Quick test_dn_prefix;
          Alcotest.test_case "common name" `Quick test_dn_common_name;
          Alcotest.test_case "append" `Quick test_dn_append;
          QCheck_alcotest.to_alcotest qcheck_dn_roundtrip ] );
      ( "cert",
        [ Alcotest.test_case "ca self-signed" `Quick test_ca_self_signed;
          Alcotest.test_case "validity window" `Quick test_cert_validity_window;
          Alcotest.test_case "fingerprints" `Quick test_cert_fingerprint_changes;
          Alcotest.test_case "trust store kind check" `Quick test_trust_store_rejects_non_authority ] );
      ( "credential",
        [ Alcotest.test_case "validates" `Quick test_credential_validates;
          Alcotest.test_case "untrusted root" `Quick test_credential_untrusted_root;
          Alcotest.test_case "expired" `Quick test_credential_expired;
          Alcotest.test_case "proxy chain" `Quick test_proxy_chain_validates;
          Alcotest.test_case "deep delegation" `Quick test_deep_delegation;
          Alcotest.test_case "proxy expiry" `Quick test_proxy_expires_independently;
          Alcotest.test_case "possession proof" `Quick test_possession_proof_required;
          Alcotest.test_case "tampered chain" `Quick test_tampered_chain_rejected;
          Alcotest.test_case "revocation" `Quick test_revoked_certificate_rejected;
          Alcotest.test_case "revoked proxy only" `Quick test_revoked_proxy_only;
          Alcotest.test_case "limited proxies" `Quick test_limited_proxy_flag;
          Alcotest.test_case "empty chain" `Quick test_empty_chain ] );
      ( "gridmap",
        [ Alcotest.test_case "parse/lookup" `Quick test_gridmap_parse_lookup;
          Alcotest.test_case "roundtrip" `Quick test_gridmap_roundtrip;
          Alcotest.test_case "errors" `Quick test_gridmap_errors;
          Alcotest.test_case "add" `Quick test_gridmap_add ] );
      ( "authn",
        [ Alcotest.test_case "handshake" `Quick test_authn_handshake;
          Alcotest.test_case "challenge binding" `Quick test_authn_challenge_binding ] );
      ( "renewal",
        [ Alcotest.test_case "flow" `Quick test_renewal_flow;
          Alcotest.test_case "authorization" `Quick test_renewal_authorization;
          Alcotest.test_case "bad credential / expired escrow" `Quick
            test_renewal_rejects_bad_credential_and_expired_escrow ] ) ]
