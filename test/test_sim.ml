(* Tests for grid_sim: event ordering, clock semantics, network model,
   traces. *)

open Grid_sim

let test_engine_orders_by_time () =
  let e = Engine.create () in
  let order = ref [] in
  Engine.schedule_at e 3.0 (fun () -> order := 3 :: !order);
  Engine.schedule_at e 1.0 (fun () -> order := 1 :: !order);
  Engine.schedule_at e 2.0 (fun () -> order := 2 :: !order);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 10 do
    Engine.schedule_at e 5.0 (fun () -> order := i :: !order)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !order)

let test_engine_now_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule_at e 1.5 (fun () -> seen := Engine.now e :: !seen);
  Engine.schedule_at e 4.0 (fun () -> seen := Engine.now e :: !seen);
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "clock tracks events" [ 1.5; 4.0 ] (List.rev !seen)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule_at e 2.0 (fun () ->
      Alcotest.(check bool) "scheduling in the past raises" true
        (try
           Engine.schedule_at e 1.0 ignore;
           false
         with Invalid_argument _ -> true));
  Engine.run e

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule_at e 1.0 (fun () ->
      Engine.schedule_after e 1.0 (fun () ->
          incr hits;
          Alcotest.(check (float 1e-9)) "nested time" 2.0 (Engine.now e)));
  Engine.run e;
  Alcotest.(check int) "nested ran" 1 !hits

let test_engine_run_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule_at e 1.0 (fun () -> incr hits);
  Engine.schedule_at e 10.0 (fun () -> incr hits);
  Engine.run_until e 5.0;
  Alcotest.(check int) "only events before deadline" 1 !hits;
  Alcotest.(check (float 1e-9)) "clock at deadline" 5.0 (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "remaining fired" 2 !hits

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  Engine.schedule_at e 0.0 ignore;
  Alcotest.(check bool) "step executes" true (Engine.step e);
  Alcotest.(check int) "executed counter" 1 (Engine.executed e)

let test_engine_many_events () =
  (* Exercises heap growth beyond the initial 64-slot array. *)
  let e = Engine.create () in
  let r = Grid_util.Rng.create ~seed:5 in
  let fired = ref 0 in
  let last = ref (-1.0) in
  for _ = 1 to 5000 do
    let at = Grid_util.Rng.float r 1000.0 in
    Engine.schedule_at e at (fun () ->
        incr fired;
        Alcotest.(check bool) "monotone" true (Engine.now e >= !last);
        last := Engine.now e)
  done;
  Engine.run e;
  Alcotest.(check int) "all fired" 5000 !fired

let test_clock_helpers () =
  Alcotest.(check (float 1e-9)) "minutes" 90.0 (Clock.minutes 1.5);
  Alcotest.(check (float 1e-9)) "hours" 7200.0 (Clock.hours 2.0);
  Alcotest.(check bool) "leq" true Clock.(1.0 <= 1.0)

let test_network_delivers_with_latency () =
  let e = Engine.create () in
  let net = Network.create ~base_latency:0.01 ~jitter:0.0 e in
  let delivered_at = ref nan in
  Network.send net (fun () -> delivered_at := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "base latency" 0.01 !delivered_at;
  Alcotest.(check int) "counted" 1 (Network.messages_sent net)

let test_network_jitter_bounded () =
  let e = Engine.create () in
  let net = Network.create ~base_latency:0.005 ~jitter:0.002 ~seed:9 e in
  let times = ref [] in
  for _ = 1 to 100 do
    Network.send net (fun () -> times := Engine.now e :: !times)
  done;
  Engine.run e;
  List.iter
    (fun t -> Alcotest.(check bool) "within [base, base+jitter)" true (t >= 0.005 && t < 0.007))
    !times

let test_network_zero_latency () =
  let e = Engine.create () in
  let net = Network.zero_latency e in
  let at = ref nan in
  Network.send net (fun () -> at := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "instant" 0.0 !at

(* --- Fault injection --------------------------------------------------- *)

let test_network_drop_all () =
  let e = Engine.create () in
  let net =
    Network.create ~base_latency:0.01 ~jitter:0.0
      ~faults:(Network.Faults.profile ~drop:1.0 ()) e
  in
  let delivered = ref 0 in
  for _ = 1 to 20 do
    Network.send net (fun () -> incr delivered)
  done;
  Engine.run e;
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  Alcotest.(check int) "all counted dropped" 20 (Network.messages_dropped net);
  Alcotest.(check int) "sends still counted" 20 (Network.messages_sent net)

let test_network_duplicate_all () =
  let e = Engine.create () in
  let net =
    Network.create ~base_latency:0.01 ~jitter:0.0
      ~faults:(Network.Faults.profile ~duplicate:1.0 ()) e
  in
  let delivered = ref 0 in
  for _ = 1 to 10 do
    Network.send net (fun () -> incr delivered)
  done;
  Engine.run e;
  Alcotest.(check int) "every message delivered twice" 20 !delivered;
  Alcotest.(check int) "duplicates counted" 10 (Network.messages_duplicated net)

let test_network_partition_per_link () =
  let e = Engine.create () in
  let net = Network.create ~base_latency:0.01 ~jitter:0.0 e in
  let a = ref 0 and b = ref 0 in
  Network.partition net ~link:"a";
  Alcotest.(check bool) "partitioned" true (Network.partitioned net ~link:"a");
  Network.send ~link:"a" net (fun () -> incr a);
  Network.send ~link:"b" net (fun () -> incr b);
  Engine.run e;
  Alcotest.(check int) "partitioned link drops" 0 !a;
  Alcotest.(check int) "other link unaffected" 1 !b;
  Network.heal net ~link:"a";
  Network.send ~link:"a" net (fun () -> incr a);
  Engine.run e;
  Alcotest.(check int) "healed link delivers" 1 !a

let test_network_fault_schedule () =
  let e = Engine.create () in
  let net = Network.create ~base_latency:0.001 ~jitter:0.0 e in
  (* Outage window [1, 2): everything dropped; before and after, clean. *)
  Network.apply_schedule net
    [ (1.0, Network.Faults.profile ~drop:1.0 ()); (2.0, Network.Faults.none) ];
  let delivered = ref 0 in
  let send_at t = Engine.schedule_at e t (fun () -> Network.send net (fun () -> incr delivered)) in
  send_at 0.5;
  send_at 1.5;
  send_at 2.5;
  Engine.run e;
  Alcotest.(check int) "only the in-window send dropped" 2 !delivered;
  Alcotest.(check int) "one drop" 1 (Network.messages_dropped net)

let test_network_fault_listener () =
  let e = Engine.create () in
  let net =
    Network.create ~faults:(Network.Faults.profile ~drop:1.0 ()) e
  in
  let events = ref [] in
  Network.on_fault net (fun ev -> events := ev :: !events);
  Network.send ~link:"gk" net ignore;
  Network.partition net ~link:"jm";
  Network.send ~link:"jm" net ignore;
  Engine.run e;
  let labels =
    List.rev_map
      (function
        | Network.Dropped l -> "dropped:" ^ l
        | Network.Duplicated l -> "duplicated:" ^ l
        | Network.Delayed (l, _) -> "delayed:" ^ l
        | Network.Partitioned l -> "partitioned:" ^ l)
      !events
  in
  Alcotest.(check (list string)) "events in order" [ "dropped:gk"; "partitioned:jm" ] labels

(* Regression (PR-2 satellite): fault sampling must not perturb the latency
   stream. A message that IS delivered gets exactly the latency it would
   have had with faults disabled — so span/trace timing expectations from
   PR 1 remain stable when chaos is switched on. *)
let test_network_fault_stream_independent_of_latency_stream () =
  let deliveries faults =
    let e = Engine.create () in
    let net = Network.create ~base_latency:0.005 ~jitter:0.002 ~seed:21 ?faults e in
    let times = Array.make 200 nan in
    for i = 0 to 199 do
      (* Record only the first arrival: a duplicate delivers later. *)
      Network.send net (fun () ->
          if Float.is_nan times.(i) then times.(i) <- Engine.now e)
    done;
    Engine.run e;
    times
  in
  let clean = deliveries None in
  let faulty =
    deliveries (Some (Network.Faults.profile ~drop:0.3 ~duplicate:0.1 ()))
  in
  let dropped = ref 0 in
  Array.iteri
    (fun i t ->
      if Float.is_nan t then incr dropped
      else
        Alcotest.(check (float 1e-12))
          (Printf.sprintf "message %d latency unchanged by fault sampling" i)
          clean.(i) t)
    faulty;
  Alcotest.(check bool) "some messages were dropped" true (!dropped > 0)

let test_trace_roundtrip () =
  let tr = Trace.create () in
  Trace.record tr ~at:1.0 ~source:"client" ~target:"gatekeeper" "submit";
  Trace.record tr ~at:2.0 ~source:"gatekeeper" ~target:"jmi" "spawn";
  Trace.record tr ~at:3.0 ~source:"client" ~target:"gatekeeper" "submit";
  Alcotest.(check int) "entries" 3 (List.length (Trace.entries tr));
  Alcotest.(check int) "find submit" 2 (Trace.count tr ~label:"submit");
  Alcotest.(check int) "find spawn" 1 (Trace.count tr ~label:"spawn");
  let first = List.hd (Trace.entries tr) in
  Alcotest.(check string) "order preserved" "client" first.Trace.source

let qcheck_engine_executes_all =
  QCheck.Test.make ~name:"engine executes every scheduled event" ~count:100
    QCheck.(list (float_bound_exclusive 100.0))
    (fun times ->
      let e = Engine.create () in
      let n = ref 0 in
      List.iter (fun t -> Engine.schedule_at e t (fun () -> incr n)) times;
      Engine.run e;
      !n = List.length times)

let () =
  Alcotest.run "grid_sim"
    [ ( "engine",
        [ Alcotest.test_case "orders by time" `Quick test_engine_orders_by_time;
          Alcotest.test_case "fifo at same time" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "clock advances" `Quick test_engine_now_advances;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "many events (heap growth)" `Quick test_engine_many_events;
          QCheck_alcotest.to_alcotest qcheck_engine_executes_all ] );
      ("clock", [ Alcotest.test_case "helpers" `Quick test_clock_helpers ]);
      ( "network",
        [ Alcotest.test_case "delivers with latency" `Quick test_network_delivers_with_latency;
          Alcotest.test_case "jitter bounded" `Quick test_network_jitter_bounded;
          Alcotest.test_case "zero latency" `Quick test_network_zero_latency ] );
      ( "faults",
        [ Alcotest.test_case "drop all" `Quick test_network_drop_all;
          Alcotest.test_case "duplicate all" `Quick test_network_duplicate_all;
          Alcotest.test_case "per-link partition + heal" `Quick
            test_network_partition_per_link;
          Alcotest.test_case "scripted fault schedule" `Quick test_network_fault_schedule;
          Alcotest.test_case "fault listener events" `Quick test_network_fault_listener;
          Alcotest.test_case "latency stream independent of faults (regression)" `Quick
            test_network_fault_stream_independent_of_latency_stream ] );
      ("trace", [ Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip ]) ]
