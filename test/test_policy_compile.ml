(* Differential tests for the compiled policy index (Compile) against the
   reference evaluator (Eval): on random policies and requests the two
   must agree on the decision AND the reason — same denial constructor,
   same violated constraint, same clause count. Seeds are pinned so a
   failure reproduces byte-for-byte.

   The generators deliberately cover the paper's whole vocabulary:
   grant + requirement statements, wildcard (short-prefix and empty)
   subject patterns, NULL and self values, numeric bounds (including
   unparsable ones), duplicate [=] bindings, and start requests that
   omit count. *)

open Grid_policy

let dn = Grid_gsi.Dn.parse

let start ~who ~rsl =
  Types.start_request ~subject:(dn who) ~job:(Grid_rsl.Parser.parse_clause_exn rsl)

let manage ~who ~action ~owner ~tag =
  Types.management_request ~subject:(dn who) ~action ~jobowner:(dn owner) ~jobtag:tag

(* Every QCheck test in this file runs under a pinned seed, overridable
   via QCHECK_SEED for exploratory CI laps; QCHECK_COUNT scales the
   differential volume. A bad override fails loudly. *)
let env_int name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Some n
    | None -> Printf.ksprintf failwith "%s must be an integer, got %S" name s)

let override_seed = env_int "QCHECK_SEED"
let count ~default = match env_int "QCHECK_COUNT" with Some n -> n | None -> default

let pinned test =
  let seeds = match override_seed with Some s -> [| s |] | None -> [| 0x5EED; 421 |] in
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make seeds) test

(* --- Generators ------------------------------------------------------------ *)

(* A small shared vocabulary with subject prefixes of depth 0..3 so
   wildcard buckets, group buckets and per-user buckets all get hit, and
   values colliding often enough that permits actually happen. *)

let pattern_pool =
  [ "/O=G"; "/O=G/OU=u1"; "/O=G/OU=u1/CN=a"; "/O=G/OU=u1/CN=b"; "/O=G/OU=u2/CN=c";
    "/O=H/CN=d" ]

let subject_pool = [ "/O=G/OU=u1/CN=a"; "/O=G/OU=u1/CN=b"; "/O=G/OU=u2/CN=c"; "/O=H/CN=d"; "/O=G" ]

let gen_policy : Types.t QCheck.Gen.t =
  QCheck.Gen.(
    let subject_pattern =
      frequency
        [ (8, map dn (oneofl pattern_pool));
          (* the empty pattern: prefix of every subject *)
          (1, return []) ]
    in
    let attr =
      oneofl [ "executable"; "count"; "jobtag"; "queue"; "jobowner"; "action"; "memory" ]
    in
    let cvalue =
      frequency
        [ ( 10,
            map
              (fun s -> Types.Str s)
              (oneofl
                 [ "x"; "y"; "2"; "5"; "start"; "cancel"; "information";
                   "/O=G/OU=u1/CN=a"; "nan"; "notanumber" ]) );
          (2, return Types.Self);
          (2, return Types.Null) ]
    in
    let constr =
      let* attribute = attr in
      let* op = oneofl Grid_rsl.Ast.[ Eq; Neq; Lt; Le; Gt; Ge ] in
      let* values = list_size (int_range 1 3) cvalue in
      return { Types.attribute; op; values }
    in
    let clause = list_size (int_range 1 4) constr in
    let statement =
      let* kind = frequency [ (3, return Types.Grant); (1, return Types.Requirement) ] in
      let* subject_pattern = subject_pattern in
      let* clauses = list_size (int_range 1 3) clause in
      return { Types.kind; subject_pattern; clauses }
    in
    list_size (int_range 0 8) statement)

let gen_request : Types.request QCheck.Gen.t =
  QCheck.Gen.(
    let* who = oneofl subject_pool in
    let* is_start = bool in
    if is_start then
      let* exe = oneofl [ "x"; "y"; "z" ] in
      let* count =
        oneofl
          [ ""; "(count=2)"; "(count=5)"; "(count=bad)"; "(count=2)(count=2)";
            "(count=2)(count=5)" ]
      in
      let* tag = oneofl [ ""; "(jobtag=x)"; "(jobtag=y)" ] in
      let* queue = oneofl [ ""; "(queue=x)"; "(queue=x)(queue=y)" ] in
      let* owner_binding = oneofl [ ""; {|(jobowner="/O=G/OU=u1/CN=a")|} ] in
      return
        (start ~who
           ~rsl:(Printf.sprintf "&(executable=%s)%s%s%s%s" exe count tag queue owner_binding))
    else
      let* owner = oneofl subject_pool in
      let* action = oneofl Types.Action.[ Cancel; Information; Signal ] in
      let* tag = oneofl [ None; Some "x"; Some "y" ] in
      return (manage ~who ~action ~owner ~tag))

let arb_pair =
  QCheck.make
    QCheck.Gen.(pair gen_policy gen_request)
    ~print:(fun (p, r) ->
      Printf.sprintf "POLICY:\n%s\nREQUEST: %s" (Types.to_string p)
        (Fmt.to_to_string Types.pp_request r))

(* --- Differential properties ----------------------------------------------- *)

let qcheck_compile_agrees_with_reference =
  (* The headline property: decision and reason, structurally equal, on
     2000 policy/request pairs. *)
  QCheck.Test.make ~name:"Compile.eval = Eval.evaluate (decision and reason)" ~count:(count ~default:2000)
    arb_pair
    (fun (policy, request) ->
      Compile.eval (Compile.compile policy) request = Eval.evaluate policy request)

let qcheck_compiled_is_reusable =
  (* One compilation answers many requests: no hidden per-eval state. *)
  QCheck.Test.make ~name:"compiled policy is reusable across requests" ~count:(count ~default:300)
    (QCheck.make
       QCheck.Gen.(pair gen_policy (list_size (int_range 1 5) gen_request))
       ~print:(fun (p, _) -> Types.to_string p))
    (fun (policy, requests) ->
      let compiled = Compile.compile policy in
      List.for_all
        (fun r ->
          Compile.eval compiled r = Eval.evaluate policy r
          && Compile.eval compiled r = Compile.eval compiled r)
        requests)

let qcheck_combine_compiled_agrees =
  (* Conjunctive combination through compiled sources: same decision,
     same denying source, same reason. *)
  QCheck.Test.make ~name:"Combine.evaluate_compiled = Combine.evaluate" ~count:(count ~default:500)
    (QCheck.make
       QCheck.Gen.(triple gen_policy gen_policy gen_request)
       ~print:(fun (p1, p2, r) ->
         Printf.sprintf "OWNER:\n%s\nVO:\n%s\nREQUEST: %s" (Types.to_string p1)
           (Types.to_string p2)
           (Fmt.to_to_string Types.pp_request r)))
    (fun (p1, p2, request) ->
      let sources =
        [ Combine.source ~name:"owner" p1; Combine.source ~name:"vo" p2 ]
      in
      Combine.evaluate_compiled (Combine.compile_sources sources) request
      = Combine.evaluate sources request)

let query_of_request (r : Types.request) : Grid_callout.Callout.query =
  { Grid_callout.Callout.requester = r.Types.subject;
    requester_credential = None;
    job_owner = r.Types.jobowner;
    action = r.Types.action;
    job_id = (if r.Types.action = Types.Action.Start then Some "job-1" else None);
    rsl = r.Types.job;
    jobtag = r.Types.jobtag }

let qcheck_file_pep_compiled_agrees =
  (* End-to-end through the PEP: the compiled callout and the reference
     callout answer identically, denial messages included. *)
  QCheck.Test.make ~name:"File_pep.of_sources = File_pep.reference" ~count:(count ~default:500)
    (QCheck.make
       QCheck.Gen.(triple gen_policy gen_policy gen_request)
       ~print:(fun (p1, p2, r) ->
         Printf.sprintf "OWNER:\n%s\nVO:\n%s\nREQUEST: %s" (Types.to_string p1)
           (Types.to_string p2)
           (Fmt.to_to_string Types.pp_request r)))
    (fun (p1, p2, request) ->
      let sources =
        [ Combine.source ~name:"owner" p1; Combine.source ~name:"vo" p2 ]
      in
      let compiled = Grid_callout.File_pep.of_sources sources in
      let reference = Grid_callout.File_pep.reference sources in
      let q = query_of_request request in
      compiled q = reference q)

(* --- Epoch and store -------------------------------------------------------- *)

let fig3_sources () =
  [ Combine.source ~name:"figure3" (Figure3.get ()) ]

let test_epoch_monotonic () =
  let p = Figure3.get () in
  let c1 = Compile.compile p in
  let c2 = Compile.compile p in
  let c3 = Compile.compile [] in
  Alcotest.(check bool) "second compile has larger epoch" true
    (Compile.epoch c2 > Compile.epoch c1);
  Alcotest.(check bool) "empty policy still draws a fresh epoch" true
    (Compile.epoch c3 > Compile.epoch c2)

let test_store_reload_bumps_epoch () =
  let store = Compile.Store.create (Figure3.get ()) in
  let e1 = Compile.Store.epoch store in
  Compile.Store.reload store (Parse.parse "/O=G: &(action = cancel)");
  let e2 = Compile.Store.epoch store in
  Alcotest.(check bool) "reload bumps epoch" true (e2 > e1);
  (* and the store now answers for the new policy *)
  let r = manage ~who:"/O=G/CN=a" ~action:Types.Action.Cancel ~owner:"/O=G/CN=a" ~tag:None in
  Alcotest.(check bool) "post-reload decision" true
    (Eval.is_permit (Compile.Store.eval store r))

let test_compiled_pep_reload_bumps_epoch () =
  let pep = Grid_callout.File_pep.Compiled.create (fig3_sources ()) in
  let e1 = Grid_callout.File_pep.Compiled.epoch pep in
  Grid_callout.File_pep.Compiled.reload pep (fig3_sources ());
  let e2 = Grid_callout.File_pep.Compiled.epoch pep in
  Alcotest.(check bool) "PEP reload bumps epoch" true (e2 > e1);
  Grid_callout.File_pep.Compiled.reload pep [];
  let e3 = Grid_callout.File_pep.Compiled.epoch pep in
  Alcotest.(check bool) "reload to empty still bumps epoch" true (e3 > e2)

(* --- Index structure -------------------------------------------------------- *)

let test_wildcard_bucket_applies () =
  (* An empty subject pattern prefixes every DN: the compiled index must
     surface it for any requester. *)
  let policy =
    [ { Types.kind = Types.Grant;
        subject_pattern = [];
        clauses = [ [ { Types.attribute = "action"; op = Grid_rsl.Ast.Eq;
                        values = [ Types.Str "cancel" ] } ] ] } ]
  in
  let compiled = Compile.compile policy in
  let r = manage ~who:"/O=Anywhere/CN=anyone" ~action:Types.Action.Cancel
      ~owner:"/O=Anywhere/CN=anyone" ~tag:None
  in
  Alcotest.(check bool) "wildcard grant permits" true
    (Eval.is_permit (Compile.eval compiled r));
  Alcotest.(check bool) "agrees with reference" true
    (Compile.eval compiled r = Eval.evaluate policy r)

let test_statement_order_preserved () =
  (* Two requirement statements both violated: the reference reports the
     first in policy order, so the index's order-restoring merge must
     too. The statements sit in different buckets (group vs user). *)
  let policy =
    Parse.parse
      {|&/O=G: (action = cancel)(jobtag = never1)
&/O=G/CN=a: (action = cancel)(jobtag = never2)|}
  in
  let compiled = Compile.compile policy in
  let r = manage ~who:"/O=G/CN=a" ~action:Types.Action.Cancel ~owner:"/O=G/CN=a"
      ~tag:(Some "t")
  in
  let reference = Eval.evaluate policy r in
  Alcotest.(check string) "same first-violation report"
    (Eval.decision_to_string reference)
    (Eval.decision_to_string (Compile.eval compiled r));
  (match reference with
  | Eval.Deny (Eval.Requirement_violated { subject_pattern; _ }) ->
    Alcotest.(check string) "reference reports the group statement" "/O=G"
      (Grid_gsi.Dn.to_string subject_pattern)
  | _ -> Alcotest.fail "expected a requirement violation")

let test_figure3_scenarios_agree () =
  (* The paper's own narrated decisions, through the compiled path. *)
  let policy = Figure3.get () in
  let compiled = Compile.compile policy in
  let requests =
    [ start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(jobtag=ADS)(count=3)";
      start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(jobtag=ADS)(count=7)";
      start ~who:Figure3.kate_keahey ~rsl:"&(executable=TRANSP)(jobtag=NFC)";
      manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
        ~tag:(Some "NFC");
      manage ~who:Figure3.bo_liu ~action:Types.Action.Cancel ~owner:Figure3.kate_keahey
        ~tag:(Some "NFC") ]
  in
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Fmt.to_to_string Types.pp_request r)
        (Eval.decision_to_string (Eval.evaluate policy r))
        (Eval.decision_to_string (Compile.eval compiled r)))
    requests

(* --- Bucket-key edge cases ------------------------------------------------- *)

(* [Dn.t] is a concrete rdn list, so hand-built DNs can carry bytes the
   parser never produces — '/', '=', control bytes, multi-byte UTF-8 —
   and the index's bucket keys must still agree with the structural
   [Dn.is_prefix] reference. These pinned a real divergence: the keys
   used to join components with '\x00'/'\x01' separators, so an rdn
   value embedding those bytes could alias a longer pattern's bucket
   (e.g. subject [a=b\x00c\x01d] probed the bucket of pattern [a=b,
   c=d]) until the encoding moved to length prefixes. *)

let rdn attr value = { Grid_gsi.Dn.attr; value }

let cancel_grant pattern =
  [ { Types.kind = Types.Grant;
      subject_pattern = pattern;
      clauses = [ [ { Types.attribute = "action"; op = Grid_rsl.Ast.Eq;
                      values = [ Types.Str "cancel" ] } ] ] } ]

(* With a single (action = cancel) grant, the decision on a cancel
   request is Permit iff the statement applies — so an applicability
   divergence is visible as a decision flip. *)
let check_agreement what pattern subject =
  let policy = cancel_grant pattern in
  let r =
    Types.management_request ~subject ~action:Types.Action.Cancel ~jobowner:subject
      ~jobtag:None
  in
  let reference = Eval.evaluate policy r in
  Alcotest.(check bool) (what ^ ": reference applies iff structural prefix")
    (Types.statement_applies (List.hd policy) ~subject)
    (Eval.is_permit reference);
  Alcotest.(check string) (what ^ ": compiled agrees")
    (Eval.decision_to_string reference)
    (Eval.decision_to_string (Compile.eval (Compile.compile policy) r))

let test_control_byte_values_do_not_alias_buckets () =
  (* one rdn whose value embeds the old separators vs the two-rdn
     pattern with the same byte image — both directions *)
  check_agreement "subject aliases deeper pattern"
    [ rdn "a" "b"; rdn "c" "d" ]
    [ rdn "a" "b\x00c\x01d" ];
  check_agreement "pattern aliases deeper subject"
    [ rdn "a" "b\x00c\x01d" ]
    [ rdn "a" "b"; rdn "c" "d" ];
  (* attr/value boundary shift within one rdn *)
  check_agreement "attr/value boundary"
    [ rdn "a\x01b" "c" ]
    [ rdn "a" "b\x01c" ]

let test_empty_component_subjects () =
  check_agreement "empty rdn matches itself" [ rdn "" "" ] [ rdn "" ""; rdn "CN" "a" ];
  check_agreement "empty value is not a wildcard" [ rdn "O" "" ] [ rdn "O" "G" ];
  check_agreement "empty pattern prefixes empty subject" [] [];
  check_agreement "empty vs attr-only shift" [ rdn "a" "" ] [ rdn "" "a" ]

let test_slash_prefix_overlap () =
  (* a '/' inside a value is data, not structure: "O=G/OU=u1" as one
     component must not act as the two-component prefix *)
  check_agreement "slash in pattern value" [ rdn "O" "G/OU=u1" ] (dn "/O=G/OU=u1/CN=a");
  check_agreement "slash in subject value" (dn "/O=G/OU=u1") [ rdn "O" "G/OU=u1/CN=a" ];
  check_agreement "equals in value" [ rdn "O" "G=H" ] [ rdn "O" "G"; rdn "" "H" ]

let test_unicode_dn_components () =
  let grp = [ rdn "O" "Grüße"; rdn "OU" "日本" ] in
  check_agreement "unicode prefix applies" grp (grp @ [ rdn "CN" "ß" ]);
  check_agreement "unicode mismatch refused" grp [ rdn "O" "Grüße"; rdn "OU" "中国" ];
  (* a byte-truncated copy (cutting a multi-byte rune in half) is a
     different value, not a prefix *)
  check_agreement "truncated rune is not a prefix"
    [ rdn "O" (String.sub "Grüße" 0 3) ]
    [ rdn "O" "Grüße" ]

let qcheck_handbuilt_dns_agree =
  (* The property behind the pinned cases: over rdn components drawn
     from an adversarial byte pool (old separators, '/', '=', unicode,
     empties), compiled applicability = structural applicability. *)
  let gen_rdn =
    QCheck.Gen.(
      let* attr = oneofl [ ""; "O"; "a"; "a\x01b"; "Grüße" ] in
      let* value = oneofl [ ""; "G"; "b"; "b\x00c"; "b\x01c"; "G/OU=u1"; "G=H"; "日本" ] in
      return { Grid_gsi.Dn.attr; value })
  in
  let gen_dn = QCheck.Gen.(list_size (int_range 0 3) gen_rdn) in
  QCheck.Test.make ~name:"hand-built DNs: compiled = reference" ~count:(count ~default:1000)
    (QCheck.make
       QCheck.Gen.(pair gen_dn gen_dn)
       ~print:(fun (p, s) ->
         Printf.sprintf "PATTERN: %S SUBJECT: %S" (Grid_gsi.Dn.to_string p)
           (Grid_gsi.Dn.to_string s)))
    (fun (pattern, subject) ->
      let policy = cancel_grant pattern in
      let r =
        Types.management_request ~subject ~action:Types.Action.Cancel ~jobowner:subject
          ~jobtag:None
      in
      Compile.eval (Compile.compile policy) r = Eval.evaluate policy r)

let () =
  Alcotest.run "grid_policy_compile"
    [ ( "differential",
        [ pinned qcheck_compile_agrees_with_reference;
          pinned qcheck_compiled_is_reusable;
          pinned qcheck_combine_compiled_agrees;
          pinned qcheck_file_pep_compiled_agrees ] );
      ( "epoch",
        [ Alcotest.test_case "compile epoch is monotonic" `Quick test_epoch_monotonic;
          Alcotest.test_case "store reload bumps epoch" `Quick
            test_store_reload_bumps_epoch;
          Alcotest.test_case "compiled PEP reload bumps epoch" `Quick
            test_compiled_pep_reload_bumps_epoch ] );
      ( "index",
        [ Alcotest.test_case "wildcard bucket applies to all" `Quick
            test_wildcard_bucket_applies;
          Alcotest.test_case "statement order preserved across buckets" `Quick
            test_statement_order_preserved;
          Alcotest.test_case "figure 3 scenarios agree" `Quick
            test_figure3_scenarios_agree ] );
      ( "edge-cases",
        [ Alcotest.test_case "control bytes do not alias buckets" `Quick
            test_control_byte_values_do_not_alias_buckets;
          Alcotest.test_case "empty components" `Quick test_empty_component_subjects;
          Alcotest.test_case "'/'-prefix overlap" `Quick test_slash_prefix_overlap;
          Alcotest.test_case "unicode components" `Quick test_unicode_dn_components;
          pinned qcheck_handbuilt_dns_agree ] ) ]
