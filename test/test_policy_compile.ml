(* Differential tests for the compiled policy index (Compile) against the
   reference evaluator (Eval): on random policies and requests the two
   must agree on the decision AND the reason — same denial constructor,
   same violated constraint, same clause count. Seeds are pinned so a
   failure reproduces byte-for-byte.

   The generators deliberately cover the paper's whole vocabulary:
   grant + requirement statements, wildcard (short-prefix and empty)
   subject patterns, NULL and self values, numeric bounds (including
   unparsable ones), duplicate [=] bindings, and start requests that
   omit count. *)

open Grid_policy

let dn = Grid_gsi.Dn.parse

let start ~who ~rsl =
  Types.start_request ~subject:(dn who) ~job:(Grid_rsl.Parser.parse_clause_exn rsl)

let manage ~who ~action ~owner ~tag =
  Types.management_request ~subject:(dn who) ~action ~jobowner:(dn owner) ~jobtag:tag

(* Every QCheck test in this file runs under a pinned seed. *)
let pinned test = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5EED; 421 |]) test

(* --- Generators ------------------------------------------------------------ *)

(* A small shared vocabulary with subject prefixes of depth 0..3 so
   wildcard buckets, group buckets and per-user buckets all get hit, and
   values colliding often enough that permits actually happen. *)

let pattern_pool =
  [ "/O=G"; "/O=G/OU=u1"; "/O=G/OU=u1/CN=a"; "/O=G/OU=u1/CN=b"; "/O=G/OU=u2/CN=c";
    "/O=H/CN=d" ]

let subject_pool = [ "/O=G/OU=u1/CN=a"; "/O=G/OU=u1/CN=b"; "/O=G/OU=u2/CN=c"; "/O=H/CN=d"; "/O=G" ]

let gen_policy : Types.t QCheck.Gen.t =
  QCheck.Gen.(
    let subject_pattern =
      frequency
        [ (8, map dn (oneofl pattern_pool));
          (* the empty pattern: prefix of every subject *)
          (1, return []) ]
    in
    let attr =
      oneofl [ "executable"; "count"; "jobtag"; "queue"; "jobowner"; "action"; "memory" ]
    in
    let cvalue =
      frequency
        [ ( 10,
            map
              (fun s -> Types.Str s)
              (oneofl
                 [ "x"; "y"; "2"; "5"; "start"; "cancel"; "information";
                   "/O=G/OU=u1/CN=a"; "nan"; "notanumber" ]) );
          (2, return Types.Self);
          (2, return Types.Null) ]
    in
    let constr =
      let* attribute = attr in
      let* op = oneofl Grid_rsl.Ast.[ Eq; Neq; Lt; Le; Gt; Ge ] in
      let* values = list_size (int_range 1 3) cvalue in
      return { Types.attribute; op; values }
    in
    let clause = list_size (int_range 1 4) constr in
    let statement =
      let* kind = frequency [ (3, return Types.Grant); (1, return Types.Requirement) ] in
      let* subject_pattern = subject_pattern in
      let* clauses = list_size (int_range 1 3) clause in
      return { Types.kind; subject_pattern; clauses }
    in
    list_size (int_range 0 8) statement)

let gen_request : Types.request QCheck.Gen.t =
  QCheck.Gen.(
    let* who = oneofl subject_pool in
    let* is_start = bool in
    if is_start then
      let* exe = oneofl [ "x"; "y"; "z" ] in
      let* count =
        oneofl
          [ ""; "(count=2)"; "(count=5)"; "(count=bad)"; "(count=2)(count=2)";
            "(count=2)(count=5)" ]
      in
      let* tag = oneofl [ ""; "(jobtag=x)"; "(jobtag=y)" ] in
      let* queue = oneofl [ ""; "(queue=x)"; "(queue=x)(queue=y)" ] in
      let* owner_binding = oneofl [ ""; {|(jobowner="/O=G/OU=u1/CN=a")|} ] in
      return
        (start ~who
           ~rsl:(Printf.sprintf "&(executable=%s)%s%s%s%s" exe count tag queue owner_binding))
    else
      let* owner = oneofl subject_pool in
      let* action = oneofl Types.Action.[ Cancel; Information; Signal ] in
      let* tag = oneofl [ None; Some "x"; Some "y" ] in
      return (manage ~who ~action ~owner ~tag))

let arb_pair =
  QCheck.make
    QCheck.Gen.(pair gen_policy gen_request)
    ~print:(fun (p, r) ->
      Printf.sprintf "POLICY:\n%s\nREQUEST: %s" (Types.to_string p)
        (Fmt.to_to_string Types.pp_request r))

(* --- Differential properties ----------------------------------------------- *)

let qcheck_compile_agrees_with_reference =
  (* The headline property: decision and reason, structurally equal, on
     2000 policy/request pairs. *)
  QCheck.Test.make ~name:"Compile.eval = Eval.evaluate (decision and reason)" ~count:2000
    arb_pair
    (fun (policy, request) ->
      Compile.eval (Compile.compile policy) request = Eval.evaluate policy request)

let qcheck_compiled_is_reusable =
  (* One compilation answers many requests: no hidden per-eval state. *)
  QCheck.Test.make ~name:"compiled policy is reusable across requests" ~count:300
    (QCheck.make
       QCheck.Gen.(pair gen_policy (list_size (int_range 1 5) gen_request))
       ~print:(fun (p, _) -> Types.to_string p))
    (fun (policy, requests) ->
      let compiled = Compile.compile policy in
      List.for_all
        (fun r ->
          Compile.eval compiled r = Eval.evaluate policy r
          && Compile.eval compiled r = Compile.eval compiled r)
        requests)

let qcheck_combine_compiled_agrees =
  (* Conjunctive combination through compiled sources: same decision,
     same denying source, same reason. *)
  QCheck.Test.make ~name:"Combine.evaluate_compiled = Combine.evaluate" ~count:500
    (QCheck.make
       QCheck.Gen.(triple gen_policy gen_policy gen_request)
       ~print:(fun (p1, p2, r) ->
         Printf.sprintf "OWNER:\n%s\nVO:\n%s\nREQUEST: %s" (Types.to_string p1)
           (Types.to_string p2)
           (Fmt.to_to_string Types.pp_request r)))
    (fun (p1, p2, request) ->
      let sources =
        [ Combine.source ~name:"owner" p1; Combine.source ~name:"vo" p2 ]
      in
      Combine.evaluate_compiled (Combine.compile_sources sources) request
      = Combine.evaluate sources request)

let query_of_request (r : Types.request) : Grid_callout.Callout.query =
  { Grid_callout.Callout.requester = r.Types.subject;
    requester_credential = None;
    job_owner = r.Types.jobowner;
    action = r.Types.action;
    job_id = (if r.Types.action = Types.Action.Start then Some "job-1" else None);
    rsl = r.Types.job;
    jobtag = r.Types.jobtag }

let qcheck_file_pep_compiled_agrees =
  (* End-to-end through the PEP: the compiled callout and the reference
     callout answer identically, denial messages included. *)
  QCheck.Test.make ~name:"File_pep.of_sources = File_pep.reference" ~count:500
    (QCheck.make
       QCheck.Gen.(triple gen_policy gen_policy gen_request)
       ~print:(fun (p1, p2, r) ->
         Printf.sprintf "OWNER:\n%s\nVO:\n%s\nREQUEST: %s" (Types.to_string p1)
           (Types.to_string p2)
           (Fmt.to_to_string Types.pp_request r)))
    (fun (p1, p2, request) ->
      let sources =
        [ Combine.source ~name:"owner" p1; Combine.source ~name:"vo" p2 ]
      in
      let compiled = Grid_callout.File_pep.of_sources sources in
      let reference = Grid_callout.File_pep.reference sources in
      let q = query_of_request request in
      compiled q = reference q)

(* --- Epoch and store -------------------------------------------------------- *)

let fig3_sources () =
  [ Combine.source ~name:"figure3" (Figure3.get ()) ]

let test_epoch_monotonic () =
  let p = Figure3.get () in
  let c1 = Compile.compile p in
  let c2 = Compile.compile p in
  let c3 = Compile.compile [] in
  Alcotest.(check bool) "second compile has larger epoch" true
    (Compile.epoch c2 > Compile.epoch c1);
  Alcotest.(check bool) "empty policy still draws a fresh epoch" true
    (Compile.epoch c3 > Compile.epoch c2)

let test_store_reload_bumps_epoch () =
  let store = Compile.Store.create (Figure3.get ()) in
  let e1 = Compile.Store.epoch store in
  Compile.Store.reload store (Parse.parse "/O=G: &(action = cancel)");
  let e2 = Compile.Store.epoch store in
  Alcotest.(check bool) "reload bumps epoch" true (e2 > e1);
  (* and the store now answers for the new policy *)
  let r = manage ~who:"/O=G/CN=a" ~action:Types.Action.Cancel ~owner:"/O=G/CN=a" ~tag:None in
  Alcotest.(check bool) "post-reload decision" true
    (Eval.is_permit (Compile.Store.eval store r))

let test_compiled_pep_reload_bumps_epoch () =
  let pep = Grid_callout.File_pep.Compiled.create (fig3_sources ()) in
  let e1 = Grid_callout.File_pep.Compiled.epoch pep in
  Grid_callout.File_pep.Compiled.reload pep (fig3_sources ());
  let e2 = Grid_callout.File_pep.Compiled.epoch pep in
  Alcotest.(check bool) "PEP reload bumps epoch" true (e2 > e1);
  Grid_callout.File_pep.Compiled.reload pep [];
  let e3 = Grid_callout.File_pep.Compiled.epoch pep in
  Alcotest.(check bool) "reload to empty still bumps epoch" true (e3 > e2)

(* --- Index structure -------------------------------------------------------- *)

let test_wildcard_bucket_applies () =
  (* An empty subject pattern prefixes every DN: the compiled index must
     surface it for any requester. *)
  let policy =
    [ { Types.kind = Types.Grant;
        subject_pattern = [];
        clauses = [ [ { Types.attribute = "action"; op = Grid_rsl.Ast.Eq;
                        values = [ Types.Str "cancel" ] } ] ] } ]
  in
  let compiled = Compile.compile policy in
  let r = manage ~who:"/O=Anywhere/CN=anyone" ~action:Types.Action.Cancel
      ~owner:"/O=Anywhere/CN=anyone" ~tag:None
  in
  Alcotest.(check bool) "wildcard grant permits" true
    (Eval.is_permit (Compile.eval compiled r));
  Alcotest.(check bool) "agrees with reference" true
    (Compile.eval compiled r = Eval.evaluate policy r)

let test_statement_order_preserved () =
  (* Two requirement statements both violated: the reference reports the
     first in policy order, so the index's order-restoring merge must
     too. The statements sit in different buckets (group vs user). *)
  let policy =
    Parse.parse
      {|&/O=G: (action = cancel)(jobtag = never1)
&/O=G/CN=a: (action = cancel)(jobtag = never2)|}
  in
  let compiled = Compile.compile policy in
  let r = manage ~who:"/O=G/CN=a" ~action:Types.Action.Cancel ~owner:"/O=G/CN=a"
      ~tag:(Some "t")
  in
  let reference = Eval.evaluate policy r in
  Alcotest.(check string) "same first-violation report"
    (Eval.decision_to_string reference)
    (Eval.decision_to_string (Compile.eval compiled r));
  (match reference with
  | Eval.Deny (Eval.Requirement_violated { subject_pattern; _ }) ->
    Alcotest.(check string) "reference reports the group statement" "/O=G"
      (Grid_gsi.Dn.to_string subject_pattern)
  | _ -> Alcotest.fail "expected a requirement violation")

let test_figure3_scenarios_agree () =
  (* The paper's own narrated decisions, through the compiled path. *)
  let policy = Figure3.get () in
  let compiled = Compile.compile policy in
  let requests =
    [ start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(jobtag=ADS)(count=3)";
      start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(jobtag=ADS)(count=7)";
      start ~who:Figure3.kate_keahey ~rsl:"&(executable=TRANSP)(jobtag=NFC)";
      manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
        ~tag:(Some "NFC");
      manage ~who:Figure3.bo_liu ~action:Types.Action.Cancel ~owner:Figure3.kate_keahey
        ~tag:(Some "NFC") ]
  in
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Fmt.to_to_string Types.pp_request r)
        (Eval.decision_to_string (Eval.evaluate policy r))
        (Eval.decision_to_string (Compile.eval compiled r)))
    requests

let () =
  Alcotest.run "grid_policy_compile"
    [ ( "differential",
        [ pinned qcheck_compile_agrees_with_reference;
          pinned qcheck_compiled_is_reusable;
          pinned qcheck_combine_compiled_agrees;
          pinned qcheck_file_pep_compiled_agrees ] );
      ( "epoch",
        [ Alcotest.test_case "compile epoch is monotonic" `Quick test_epoch_monotonic;
          Alcotest.test_case "store reload bumps epoch" `Quick
            test_store_reload_bumps_epoch;
          Alcotest.test_case "compiled PEP reload bumps epoch" `Quick
            test_compiled_pep_reload_bumps_epoch ] );
      ( "index",
        [ Alcotest.test_case "wildcard bucket applies to all" `Quick
            test_wildcard_bucket_applies;
          Alcotest.test_case "statement order preserved across buckets" `Quick
            test_statement_order_preserved;
          Alcotest.test_case "figure 3 scenarios agree" `Quick
            test_figure3_scenarios_agree ] ) ]
