(* Chaos suite: the full GRAM request path under injected network and
   backend faults. Every scenario is replayed for several pinned seeds
   and asserts *typed* outcomes — a fault may surface only as a refusal
   or a timeout, never as a hang, a lost reply, or a silent permit.

   The pinned seeds always run, so `dune runtest` is deterministic.
   Set FAULT_SEED=<n> to additionally replay the whole suite under one
   extra seed when hunting for new universes locally. *)

open Core

let pinned_seeds = [ 1; 7; 42 ]

let seeds =
  match Option.bind (Sys.getenv_opt "FAULT_SEED") int_of_string_opt with
  | Some s when not (List.mem s pinned_seeds) -> pinned_seeds @ [ s ]
  | _ -> pinned_seeds

let heavy =
  Sim.Network.Faults.profile ~drop:0.05 ~duplicate:0.02 ~delay_probability:0.2
    ~max_extra_delay:0.1 ()

let profiles (w : Fusion.world) =
  [ { Workload.identity = Gram.Client.identity w.Fusion.bo;
      rsl_templates =
        [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=30)";
          "&(executable=compiler)(directory=/sandbox/test)(jobtag=ADS)" ];
      weight = 1 };
    { Workload.identity = Gram.Client.identity w.Fusion.kate;
      rsl_templates =
        [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=60)" ];
      weight = 1 } ]

let chaos_config jobs =
  { Workload.job_count = jobs;
    arrival_rate = 10.0;
    management_probability = 0.4;
    management_batch = 1;
    seed = 23 }

let run_chaos ~fault_seed ?flaky_pep () =
  let w =
    Fusion.build ~nodes:8 ~cpus_per_node:8 ~faults:heavy ~fault_seed
      ~request_timeout:0.25 ?flaky_pep ()
  in
  let stats =
    Workload.run
      ~engine:(Testbed.engine w.Fusion.testbed)
      ~resource:w.Fusion.resource ~profiles:(profiles w) (chaos_config 200)
  in
  (w, stats)

(* Typed-outcome accounting under drops/partitions/duplicates: every
   submission resolves to exactly one of accepted / denied / timed out;
   the engine drains (no hung request holds a timer forever). *)
let test_typed_outcomes_no_hangs () =
  List.iter
    (fun fault_seed ->
      let w, s = run_chaos ~fault_seed () in
      let label fmt = Printf.sprintf ("seed %d: " ^^ fmt) fault_seed in
      Alcotest.(check int) (label "all jobs submitted") 200 s.Workload.submitted;
      Alcotest.(check int) (label "engine fully drained") 0
        (Grid_sim.Engine.pending (Testbed.engine w.Fusion.testbed));
      let resolved =
        s.Workload.accepted + s.Workload.denied_authorization + s.Workload.denied_other
      in
      (* timed_out counts both submit and management timeouts; every
         unresolved submission must be in there, and nothing beyond the
         issued management requests can be. *)
      Alcotest.(check bool) (label "no lost submissions") true
        (resolved + s.Workload.timed_out >= s.Workload.submitted);
      Alcotest.(check bool) (label "no surplus replies") true
        (resolved <= s.Workload.submitted
        && s.Workload.timed_out
           <= s.Workload.submitted - resolved + s.Workload.management_requests);
      (* Under 5% drop something must actually have been injected, or the
         suite is testing the happy path by accident. *)
      let network = Gram.Resource.network w.Fusion.resource in
      Alcotest.(check bool) (label "faults were injected") true
        (Sim.Network.messages_dropped network > 0))
    seeds

(* Determinism: the same fault seed replays the same universe. *)
let test_chaos_deterministic () =
  List.iter
    (fun fault_seed ->
      let snapshot (s : Workload.stats) =
        ( s.Workload.submitted,
          s.Workload.accepted,
          s.Workload.denied_authorization,
          s.Workload.denied_other,
          s.Workload.timed_out,
          s.Workload.management_requests,
          s.Workload.management_denied )
      in
      let _, first = run_chaos ~fault_seed () in
      let _, second = run_chaos ~fault_seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d replays identically" fault_seed)
        true
        (snapshot first = snapshot second))
    seeds

(* Fail-closed: with the PEP itself down (every callout a backend
   fault), nothing is ever admitted — faults deny, they never permit. *)
let test_pep_outage_never_permits () =
  List.iter
    (fun fault_seed ->
      let _, s = run_chaos ~fault_seed ~flaky_pep:1.0 () in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: zero admissions during PEP outage" fault_seed)
        0 s.Workload.accepted;
      Alcotest.(check bool) "denials attributed to authorization" true
        (s.Workload.denied_authorization + s.Workload.denied_other + s.Workload.timed_out
        >= s.Workload.submitted - s.Workload.accepted))
    seeds

(* Retry honors its deadline: against a fully partitioned request hop,
   the retrying client gives up within the deadline in simulated time —
   backoff never pushes an attempt past it. *)
let test_retry_bounded_by_deadline () =
  List.iter
    (fun fault_seed ->
      let w =
        Fusion.build ~faults:(Sim.Network.Faults.profile ()) ~fault_seed
          ~request_timeout:0.25 ()
      in
      let engine = Testbed.engine w.Fusion.testbed in
      let reply =
        match
          Gram.Client.submit_sync w.Fusion.kate
            ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=600)"
        with
        | Ok r -> r
        | Error e ->
          Alcotest.failf "clean submit failed: %s" (Gram.Protocol.submit_error_to_string e)
      in
      let network = Gram.Resource.network w.Fusion.resource in
      Sim.Network.partition network ~link:"client->resource";
      List.iter
        (fun deadline ->
          let t0 = Grid_sim.Engine.now engine in
          (match
             Gram.Client.manage_with_retry_sync ~deadline w.Fusion.kate
               ~contact:reply.Gram.Protocol.job_contact Gram.Protocol.Status
           with
          | Error (Gram.Protocol.Request_timed_out _) -> ()
          | Ok _ -> Alcotest.fail "partitioned request must not succeed"
          | Error e ->
            Alcotest.failf "wrong error class: %s"
              (Gram.Protocol.management_error_to_string e));
          let elapsed = Grid_sim.Engine.now engine -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: %.2fs deadline held (took %.3fs)" fault_seed
               deadline elapsed)
            true (elapsed <= deadline))
        [ 0.3; 1.0; 5.0 ])
    seeds

(* Property: under an arbitrary generated fault schedule (lossy windows
   opening and closing over the run), the workload still resolves every
   request with a typed outcome and the engine drains. *)
let qcheck_fault_schedule =
  let schedule_gen =
    QCheck.Gen.(
      list_size (int_range 1 4)
        (triple (float_bound_inclusive 20.0) (float_bound_inclusive 0.3)
           (float_bound_inclusive 0.3)))
  in
  let arb =
    QCheck.make
      ~print:(fun sch ->
        String.concat "; "
          (List.map
             (fun (at, drop, dup) -> Printf.sprintf "(t=%.1f drop=%.2f dup=%.2f)" at drop dup)
             sch))
      schedule_gen
  in
  QCheck.Test.make ~name:"any fault schedule: typed outcomes, no hangs" ~count:25
    QCheck.(pair small_int arb)
    (fun (seed, schedule) ->
      let w =
        Fusion.build ~nodes:8 ~cpus_per_node:8
          ~faults:(Sim.Network.Faults.profile ())
          ~fault_seed:(seed + 1) ~request_timeout:0.25 ()
      in
      let network = Gram.Resource.network w.Fusion.resource in
      Sim.Network.apply_schedule network
        (List.map
           (fun (at, drop, dup) ->
             ( at,
               Sim.Network.Faults.profile ~drop ~duplicate:dup ~delay_probability:0.1
                 ~max_extra_delay:0.05 () ))
           schedule);
      let s =
        Workload.run
          ~engine:(Testbed.engine w.Fusion.testbed)
          ~resource:w.Fusion.resource ~profiles:(profiles w) (chaos_config 60)
      in
      let resolved =
        s.Workload.accepted + s.Workload.denied_authorization + s.Workload.denied_other
      in
      s.Workload.submitted = 60
      && Grid_sim.Engine.pending (Testbed.engine w.Fusion.testbed) = 0
      && resolved <= s.Workload.submitted
      && resolved + s.Workload.timed_out >= s.Workload.submitted
      && s.Workload.timed_out
         <= s.Workload.submitted - resolved + s.Workload.management_requests)

let () =
  Printf.printf "chaos seeds: %s\n%!" (String.concat ", " (List.map string_of_int seeds));
  Alcotest.run "grid_faults"
    [ ( "chaos",
        [ Alcotest.test_case "typed outcomes, no hangs" `Quick test_typed_outcomes_no_hangs;
          Alcotest.test_case "deterministic replay" `Quick test_chaos_deterministic;
          Alcotest.test_case "PEP outage never permits" `Quick test_pep_outage_never_permits;
          Alcotest.test_case "retry bounded by deadline" `Quick
            test_retry_bounded_by_deadline ] );
      ("schedules", [ QCheck_alcotest.to_alcotest qcheck_fault_schedule ]) ]
