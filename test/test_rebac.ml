(* Differential tests for the relationship-based (Zanzibar-style)
   backend: over random policies and requests, graph expansion through
   the compiled tuple trie must agree with the compiled RSL engine on
   the decision AND the reason — same denial constructor, same violated
   constraint, same denying source. The headline property runs under
   three distinct pinned seeds so a failure reproduces byte-for-byte;
   [QCHECK_SEED] / [QCHECK_COUNT] override seed and volume for
   exploratory CI runs.

   Alongside the differential core: zookie semantics (snapshot-pinned
   decisions are immune to later writes; future tokens and
   expired-epoch snapshots are errors, not denials), expansion
   termination on cyclic graphs, depth-budget behaviour, store MVCC,
   and an end-to-end soak campaign on the ReBAC PEP judged by the
   safety monitor's oracle. *)

open Grid_policy
module Rebac = Grid_rebac
module Tuple = Rebac.Tuple
module Zookie = Rebac.Zookie
module Store = Rebac.Store
module RCompile = Rebac.Compile
module Pep = Rebac.Pep

let dn = Grid_gsi.Dn.parse

let start ~who ~rsl =
  Types.start_request ~subject:(dn who) ~job:(Grid_rsl.Parser.parse_clause_exn rsl)

let manage ~who ~action ~owner ~tag =
  Types.management_request ~subject:(dn who) ~action ~jobowner:(dn owner) ~jobtag:tag

(* --- Seed / count overrides ------------------------------------------------ *)

(* Differential volume and seeding are env-overridable so CI can run the
   pinned matrix *and* an exploratory lap with a random seed; a bad
   override is a loud failure, not a silent fallback to defaults. *)
let env_int name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Some n
    | None -> Printf.ksprintf failwith "%s must be an integer, got %S" name s)

let override_seed = env_int "QCHECK_SEED"
let override_count = env_int "QCHECK_COUNT"
let count ~default = match override_count with Some n -> n | None -> default

(* Every QCheck test runs under a pinned seed (or the QCHECK_SEED
   override, applied uniformly so a reported failure names its seed). *)
let pinned_with seeds test =
  let seeds = match override_seed with Some s -> [| s |] | None -> seeds in
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make seeds) test

let pinned test = pinned_with [| 0x5EED; 421 |] test

(* The pinned-seed matrix for the headline differential property. *)
let seed_matrix = [ ("5eed", [| 0x5EED; 421 |]); ("7", [| 7; 1103 |]); ("42", [| 42; 2741 |]) ]

(* --- Generators ------------------------------------------------------------ *)

(* Same vocabulary as test_policy_compile: subject prefixes of depth
   0..3 so the trie gets root-only, interior and leaf placements, and
   values that collide often enough for permits to happen. *)

let pattern_pool =
  [ "/O=G"; "/O=G/OU=u1"; "/O=G/OU=u1/CN=a"; "/O=G/OU=u1/CN=b"; "/O=G/OU=u2/CN=c";
    "/O=H/CN=d" ]

let subject_pool = [ "/O=G/OU=u1/CN=a"; "/O=G/OU=u1/CN=b"; "/O=G/OU=u2/CN=c"; "/O=H/CN=d"; "/O=G" ]

let gen_policy : Types.t QCheck.Gen.t =
  QCheck.Gen.(
    let subject_pattern =
      frequency
        [ (8, map dn (oneofl pattern_pool));
          (* the empty pattern: prefix of every subject *)
          (1, return []) ]
    in
    let attr =
      oneofl [ "executable"; "count"; "jobtag"; "queue"; "jobowner"; "action"; "memory" ]
    in
    let cvalue =
      frequency
        [ ( 10,
            map
              (fun s -> Types.Str s)
              (oneofl
                 [ "x"; "y"; "2"; "5"; "start"; "cancel"; "information";
                   "/O=G/OU=u1/CN=a"; "nan"; "notanumber" ]) );
          (2, return Types.Self);
          (2, return Types.Null) ]
    in
    let constr =
      let* attribute = attr in
      let* op = oneofl Grid_rsl.Ast.[ Eq; Neq; Lt; Le; Gt; Ge ] in
      let* values = list_size (int_range 1 3) cvalue in
      return { Types.attribute; op; values }
    in
    let clause = list_size (int_range 1 4) constr in
    let statement =
      let* kind = frequency [ (3, return Types.Grant); (1, return Types.Requirement) ] in
      let* subject_pattern = subject_pattern in
      let* clauses = list_size (int_range 1 3) clause in
      return { Types.kind; subject_pattern; clauses }
    in
    list_size (int_range 0 8) statement)

let gen_request : Types.request QCheck.Gen.t =
  QCheck.Gen.(
    let* who = oneofl subject_pool in
    let* is_start = bool in
    if is_start then
      let* exe = oneofl [ "x"; "y"; "z" ] in
      let* count =
        oneofl
          [ ""; "(count=2)"; "(count=5)"; "(count=bad)"; "(count=2)(count=2)";
            "(count=2)(count=5)" ]
      in
      let* tag = oneofl [ ""; "(jobtag=x)"; "(jobtag=y)" ] in
      let* queue = oneofl [ ""; "(queue=x)"; "(queue=x)(queue=y)" ] in
      let* owner_binding = oneofl [ ""; {|(jobowner="/O=G/OU=u1/CN=a")|} ] in
      return
        (start ~who
           ~rsl:(Printf.sprintf "&(executable=%s)%s%s%s%s" exe count tag queue owner_binding))
    else
      let* owner = oneofl subject_pool in
      let* action = oneofl Types.Action.[ Cancel; Information; Signal ] in
      let* tag = oneofl [ None; Some "x"; Some "y" ] in
      return (manage ~who ~action ~owner ~tag))

let print_triple (p1, p2, r) =
  Printf.sprintf "OWNER:\n%s\nVO:\n%s\nREQUEST: %s" (Types.to_string p1)
    (Types.to_string p2)
    (Fmt.to_to_string Types.pp_request r)

let arb_triple =
  QCheck.make QCheck.Gen.(triple gen_policy gen_policy gen_request) ~print:print_triple

let two_sources p1 p2 = [ Combine.source ~name:"owner" p1; Combine.source ~name:"vo" p2 ]

(* --- Differential properties ----------------------------------------------- *)

(* The headline property, instantiated once per pinned seed: expansion
   over the compiled tuple graph and the compiled RSL index agree on
   decision and reason over two conjunctive sources. *)
let rebac_agrees_with_compiled ~seed_name =
  QCheck.Test.make
    ~name:(Printf.sprintf "ReBAC decide = compiled RSL (seed %s)" seed_name)
    ~count:(count ~default:2000) arb_triple
    (fun (p1, p2, request) ->
      let sources = two_sources p1 p2 in
      let plan = RCompile.of_sources sources in
      let store = RCompile.load plan in
      RCompile.decide plan store request
      = Ok (Combine.evaluate_compiled (Combine.compile_sources sources) request))

let qcheck_single_source_agrees_with_eval =
  (* Down to one source, against the reference evaluator itself. *)
  QCheck.Test.make ~name:"single-source ReBAC = Eval.evaluate" ~count:(count ~default:1000)
    (QCheck.make
       QCheck.Gen.(pair gen_policy gen_request)
       ~print:(fun (p, r) ->
         Printf.sprintf "POLICY:\n%s\nREQUEST: %s" (Types.to_string p)
           (Fmt.to_to_string Types.pp_request r)))
    (fun (policy, request) ->
      let plan = RCompile.of_policy policy in
      let store = RCompile.load plan in
      let expected =
        match Eval.evaluate policy request with
        | Eval.Permit -> Combine.Permit
        | Eval.Deny reason -> Combine.Deny { source = "policy"; reason }
      in
      RCompile.decide plan store request = Ok expected)

let qcheck_plan_is_reusable =
  (* One compiled plan + store answers many requests: contextual tuples
     never leak between checks, and reads leave no state behind. *)
  QCheck.Test.make ~name:"compiled plan is reusable across requests" ~count:(count ~default:300)
    (QCheck.make
       QCheck.Gen.(triple gen_policy gen_policy (list_size (int_range 1 5) gen_request))
       ~print:(fun (p1, p2, _) ->
         Printf.sprintf "OWNER:\n%s\nVO:\n%s" (Types.to_string p1) (Types.to_string p2)))
    (fun (p1, p2, requests) ->
      let sources = two_sources p1 p2 in
      let plan = RCompile.of_sources sources in
      let store = RCompile.load plan in
      let compiled = Combine.compile_sources sources in
      let revision_before = Store.revision store in
      List.for_all
        (fun r ->
          RCompile.decide plan store r = Ok (Combine.evaluate_compiled compiled r)
          && RCompile.decide plan store r = RCompile.decide plan store r)
        requests
      && Store.revision store = revision_before)

let query_of_request (r : Types.request) : Grid_callout.Callout.query =
  { Grid_callout.Callout.requester = r.Types.subject;
    requester_credential = None;
    job_owner = r.Types.jobowner;
    action = r.Types.action;
    job_id = (if r.Types.action = Types.Action.Start then Some "job-1" else None);
    rsl = r.Types.job;
    jobtag = r.Types.jobtag }

let qcheck_pep_agrees_with_file_pep =
  (* End-to-end through the callout API: the ReBAC PEP and the compiled
     flat-file PEP answer identically, denial messages included. *)
  QCheck.Test.make ~name:"Pep.of_sources = File_pep.of_sources" ~count:(count ~default:500)
    arb_triple
    (fun (p1, p2, request) ->
      let sources = two_sources p1 p2 in
      let rebac = Pep.of_sources sources in
      let flat = Grid_callout.File_pep.of_sources sources in
      let q = query_of_request request in
      rebac q = flat q)

(* --- Zookie semantics ------------------------------------------------------ *)

let qcheck_snapshot_pinned_decisions_are_stable =
  (* Monotonicity: a decision served against [Snapshot z] never changes,
     no matter what is written after [z] — even writes engineered to
     flip applicability (grafting the requester into every pattern
     node). *)
  QCheck.Test.make ~name:"snapshot-pinned decisions ignore later writes"
    ~count:(count ~default:300) arb_triple
    (fun (p1, p2, request) ->
      let sources = two_sources p1 p2 in
      let plan = RCompile.of_sources sources in
      let store = RCompile.load plan in
      let token = Store.head store in
      let pin = Store.Snapshot token in
      let before = RCompile.decide ~consistency:pin plan store request in
      let reference = Ok (Combine.evaluate_compiled (Combine.compile_sources sources) request) in
      (* make the requester a stored member of every pattern node: at
         head, every statement now applies to them *)
      let user = Tuple.User (Grid_gsi.Dn.to_string request.Types.subject) in
      List.iter
        (fun pattern ->
          ignore
            (Store.write store
               (Tuple.make (RCompile.group_obj (dn pattern)) ~relation:RCompile.member_rel user)))
        pattern_pool;
      let after = RCompile.decide ~consistency:pin plan store request in
      before = reference && after = before
      (* and [At_least] with an already-satisfied token answers at head *)
      && RCompile.decide ~consistency:(Store.At_least token) plan store request
         = RCompile.decide plan store request)

let test_future_token_is_an_error () =
  let plan = RCompile.of_policy (Parse.parse "/O=G: &(action = cancel)") in
  let store = RCompile.load plan in
  let future = Zookie.make ~epoch:(Store.epoch store) ~revision:(Store.revision store + 5) in
  let r = manage ~who:"/O=G/CN=a" ~action:Types.Action.Cancel ~owner:"/O=G/CN=a" ~tag:None in
  (match RCompile.decide ~consistency:(Store.At_least future) plan store r with
  | Error (Store.Future_token _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Future_token");
  match RCompile.decide ~consistency:(Store.Snapshot future) plan store r with
  | Error (Store.Future_token _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Future_token for future snapshot"

let test_zookie_ordering () =
  let z (epoch, revision) = Zookie.make ~epoch ~revision in
  Alcotest.(check bool) "revision orders within an epoch" true
    (Zookie.newer_than (z (3, 5)) (z (3, 4)));
  Alcotest.(check bool) "epoch dominates revision" true
    (Zookie.newer_than (z (4, 0)) (z (3, 999)));
  Alcotest.(check bool) "equal tokens are not newer" false
    (Zookie.newer_than (z (3, 5)) (z (3, 5)));
  Alcotest.(check bool) "equal" true (Zookie.equal (z (3, 5)) (z (3, 5)))

let test_zookie_round_trip () =
  let z = Zookie.make ~epoch:17 ~revision:4242 in
  (match Zookie.of_string (Zookie.to_string z) with
  | Ok z' -> Alcotest.(check bool) "round trip" true (Zookie.equal z z')
  | Error e -> Alcotest.fail ("round trip failed: " ^ e));
  (* corrupting any component must be detected by the digest *)
  let s = Zookie.to_string z in
  let corrupt = "zk:18:" ^ String.sub s 6 (String.length s - 6) in
  (match Zookie.of_string corrupt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted token accepted");
  match Zookie.of_string "not-a-token" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* --- Tuple model ----------------------------------------------------------- *)

let test_tuple_round_trip () =
  let round_trip t =
    match Tuple.of_string (Tuple.to_string t) with
    | Ok t' -> Alcotest.(check bool) (Tuple.to_string t) true (Tuple.equal t t')
    | Error e -> Alcotest.fail (Tuple.to_string t ^ ": " ^ e)
  in
  let g = Tuple.obj ~namespace:"group" ~id:"physics" in
  round_trip (Tuple.make g ~relation:"member" (Tuple.User "/O=G/OU=u1/CN=a"));
  (* DN-ish user strings may contain '@' and ':' *)
  round_trip (Tuple.make g ~relation:"member" (Tuple.User "/O=G/CN=a@b:c"));
  round_trip
    (Tuple.make
       (Tuple.obj ~namespace:"jobtag" ~id:"jt:42")
       ~relation:"manager"
       (Tuple.Userset (Tuple.userset g "member")))

let test_tuple_rejects_malformed () =
  let rejects s =
    match Tuple.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S accepted" s)
  in
  List.iter rejects
    [ ""; "nonsense"; "group:g#member"; "group:g@user:a"; "#member@user:a";
      "group:g#member@"; "group:g##member@user:a" ];
  Alcotest.check_raises "namespace with ':'"
    (Invalid_argument "Tuple.obj: namespace must not contain ':' or '#'") (fun () ->
      ignore (Tuple.obj ~namespace:"a:b" ~id:"x"))

(* --- Store MVCC ------------------------------------------------------------ *)

let mcheck ?consistency store ~obj ~relation ~user expected msg =
  match Store.check ?consistency store ~obj ~relation ~user with
  | Ok b -> Alcotest.(check bool) msg expected b
  | Error e -> Alcotest.fail (msg ^ ": " ^ Store.check_error_to_string e)

let test_store_mvcc () =
  let store = Store.create ~epoch:1 () in
  let g = Tuple.obj ~namespace:"g" ~id:"eng" in
  let alice = Tuple.make g ~relation:"member" (Tuple.User "alice") in
  let z0 = Store.head store in
  let z1 = Store.write store alice in
  Alcotest.(check bool) "write advances the head" true (Zookie.newer_than z1 z0);
  mcheck store ~obj:g ~relation:"member" ~user:"alice" true "visible at head";
  mcheck ~consistency:(Store.Snapshot z0) store ~obj:g ~relation:"member" ~user:"alice" false
    "invisible before the write";
  (* duplicate writes still advance the revision (zookies are handed
     out per write, not per distinct tuple) *)
  let z2 = Store.write store alice in
  Alcotest.(check bool) "duplicate write advances the head" true (Zookie.newer_than z2 z1);
  let z3 = Store.delete store alice in
  Alcotest.(check bool) "delete advances the head" true (Zookie.newer_than z3 z2);
  mcheck store ~obj:g ~relation:"member" ~user:"alice" false "gone at head";
  mcheck ~consistency:(Store.Snapshot z1) store ~obj:g ~relation:"member" ~user:"alice" true
    "still visible at the pre-delete snapshot";
  Alcotest.(check int) "no live tuples" 0 (Store.tuple_count store)

let test_store_epoch_is_monotonic () =
  let store = Store.create ~epoch:3 () in
  Store.set_epoch store 5;
  Alcotest.(check int) "epoch raised" 5 (Store.epoch store);
  Alcotest.check_raises "epoch cannot decrease"
    (Invalid_argument "Store.set_epoch: epoch must not decrease") (fun () ->
      Store.set_epoch store 4)

(* --- Expansion: cycles and depth ------------------------------------------- *)

let node i = Tuple.obj ~namespace:"g" ~id:(Printf.sprintf "n%d" i)

let member_edge i j =
  Tuple.make (node i) ~relation:"member" (Tuple.Userset (Tuple.userset (node j) "member"))

let test_cycle_reaches_members () =
  (* A ring: n0 -> n1 -> ... -> n5 -> n0, with the only concrete member
     attached to n3. Every node on the ring must reach it, and the
     cyclic expansion must terminate. *)
  let store = Store.create () in
  let n = 6 in
  for i = 0 to n - 1 do
    ignore (Store.write store (member_edge i ((i + 1) mod n)))
  done;
  ignore (Store.write store (Tuple.make (node 3) ~relation:"member" (Tuple.User "alice")));
  for i = 0 to n - 1 do
    mcheck store ~obj:(node i) ~relation:"member" ~user:"alice"
      true
      (Printf.sprintf "n%d reaches alice through the ring" i)
  done;
  mcheck store ~obj:(node 0) ~relation:"member" ~user:"nobody" false
    "non-members are refused, not looped on"

let qcheck_random_cyclic_graphs_terminate =
  (* Arbitrary dense digraphs (self-loops, multi-edges, cycles): every
     check terminates with a boolean or a depth error — never hangs,
     never raises. *)
  QCheck.Test.make ~name:"expansion terminates on arbitrary cyclic graphs"
    ~count:(count ~default:300)
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 2 10 in
         let* edges = list_size (int_range 0 30) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
         let* member_at = int_bound (n - 1) in
         let* query_from = int_bound (n - 1) in
         let* budget = oneofl [ 2; 5; Store.default_budget ] in
         return (n, edges, member_at, query_from, budget))
       ~print:(fun (n, edges, m, q, b) ->
         Printf.sprintf "n=%d edges=%s member_at=%d from=%d budget=%d" n
           (String.concat ","
              (List.map (fun (i, j) -> Printf.sprintf "%d->%d" i j) edges))
           m q b))
    (fun (_n, edges, member_at, query_from, budget) ->
      let store = Store.create () in
      List.iter (fun (i, j) -> ignore (Store.write store (member_edge i j))) edges;
      ignore
        (Store.write store (Tuple.make (node member_at) ~relation:"member" (Tuple.User "alice")));
      match
        Store.check ~budget store ~obj:(node query_from) ~relation:"member" ~user:"alice"
      with
      | Ok _ | Error (Store.Depth_exceeded _) -> true
      | Error _ -> false)

let test_depth_budget () =
  (* A 100-link chain: refused under a 50 budget (indeterminate, not a
     deny), resolved under a roomier one. *)
  let store = Store.create () in
  let n = 100 in
  for i = 0 to n - 2 do
    ignore (Store.write store (member_edge i (i + 1)))
  done;
  ignore (Store.write store (Tuple.make (node (n - 1)) ~relation:"member" (Tuple.User "alice")));
  (match Store.check ~budget:50 store ~obj:(node 0) ~relation:"member" ~user:"alice" with
  | Error (Store.Depth_exceeded b) -> Alcotest.(check int) "reports the budget" 50 b
  | Ok _ | Error _ -> Alcotest.fail "expected Depth_exceeded");
  match Store.check ~budget:200 store ~obj:(node 0) ~relation:"member" ~user:"alice" with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "chain end should be reachable"
  | Error e -> Alcotest.fail (Store.check_error_to_string e)

(* --- The PEP --------------------------------------------------------------- *)

let fig3_sources () = [ Combine.source ~name:"figure3" (Figure3.get ()) ]

let test_pep_reload_bumps_epoch_and_head () =
  let obs = Grid_obs.Obs.create () in
  let epochs = ref [] in
  Grid_obs.Event.subscribe (Grid_obs.Obs.events obs) (fun e ->
      if e.Grid_obs.Event.kind = "policy.epoch" then
        epochs := (Grid_obs.Event.attr e "epoch", Grid_obs.Event.attr e "cause") :: !epochs);
  let pep = Pep.create ~obs (fig3_sources ()) in
  let e1 = Pep.epoch pep in
  let z1 = Pep.head pep in
  Pep.reload pep (fig3_sources ());
  let e2 = Pep.epoch pep in
  Alcotest.(check bool) "reload bumps the epoch" true (e2 > e1);
  Alcotest.(check bool) "post-reload head is strictly newer" true
    (Zookie.newer_than (Pep.head pep) z1);
  Pep.reload pep [];
  Alcotest.(check bool) "reload to empty still bumps epoch" true (Pep.epoch pep > e2);
  Alcotest.(check int) "create + 2 reloads announced" 3 (List.length !epochs);
  List.iter
    (fun (epoch, _) -> Alcotest.(check bool) "epoch attr present" true (epoch <> None))
    !epochs;
  Alcotest.(check (option string)) "creation is labelled" (Some "create")
    (snd (List.nth !epochs 2))

let test_pep_snapshot_gone_after_reload () =
  let pep = Pep.create (fig3_sources ()) in
  let old = Pep.head pep in
  Pep.reload pep (fig3_sources ());
  let q =
    query_of_request
      (manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
         ~tag:(Some "NFC"))
  in
  (match Pep.callout_with ~consistency:(Store.Snapshot old) pep q with
  | Error (Grid_callout.Callout.System_error msg) ->
    Alcotest.(check bool) "names the rebac backend" true
      (String.length msg >= 6 && String.sub msg 0 6 = "rebac:")
  | Ok () | Error _ -> Alcotest.fail "expected System_error for an expired snapshot");
  (* but the same query at head still answers *)
  match Pep.callout pep q with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Grid_callout.Callout.error_to_string e)

let test_pep_ad_hoc_writes_bump_revision_not_epoch () =
  let pep = Pep.create (fig3_sources ()) in
  let e = Pep.epoch pep and r = Pep.revision pep in
  ignore
    (Store.write (Pep.store pep)
       (Tuple.make
          (Tuple.obj ~namespace:"g" ~id:"adhoc")
          ~relation:"member" (Tuple.User "alice")));
  Alcotest.(check int) "epoch unchanged" e (Pep.epoch pep);
  Alcotest.(check bool) "revision advanced" true (Pep.revision pep > r)

let test_figure3_scenarios_through_pep () =
  (* The paper's own narrated decisions, through the relationship
     backend, against the flat-file PEP. *)
  let sources = fig3_sources () in
  let rebac = Pep.of_sources sources in
  let flat = Grid_callout.File_pep.of_sources sources in
  let requests =
    [ start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(jobtag=ADS)(count=3)";
      start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(jobtag=ADS)(count=7)";
      start ~who:Figure3.kate_keahey ~rsl:"&(executable=TRANSP)(jobtag=NFC)";
      manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
        ~tag:(Some "NFC");
      manage ~who:Figure3.bo_liu ~action:Types.Action.Cancel ~owner:Figure3.kate_keahey
        ~tag:(Some "NFC") ]
  in
  List.iter
    (fun r ->
      let q = query_of_request r in
      Alcotest.(check bool) (Fmt.to_to_string Types.pp_request r) true (rebac q = flat q))
    requests

(* --- Soak: the monitor's oracle judges ReBAC decisions --------------------- *)

let test_soak_campaign_on_rebac_pep () =
  let module Soak = Core.Soak in
  let r =
    Soak.run
      { Soak.default_config with
        Soak.days = 0.5;
        jobs_per_day = 120;
        seed = 42;
        pep = Soak.Rebac_pep }
  in
  Alcotest.(check int) "no violations" 0 (List.length r.Soak.violations);
  Alcotest.(check bool) "campaign checked events" true (r.Soak.events_checked > 300);
  Alcotest.(check bool) "jobs were accepted" true (r.Soak.accepted > 10);
  Alcotest.(check bool) "outsiders were denied" true (r.Soak.denied > 0);
  Alcotest.(check bool) "policy churned" true (r.Soak.reloads >= 1)

let () =
  Alcotest.run "grid_rebac"
    [ ( "differential",
        List.map
          (fun (name, seeds) -> pinned_with seeds (rebac_agrees_with_compiled ~seed_name:name))
          seed_matrix
        @ [ pinned qcheck_single_source_agrees_with_eval;
            pinned qcheck_plan_is_reusable;
            pinned qcheck_pep_agrees_with_file_pep ] );
      ( "zookies",
        [ pinned qcheck_snapshot_pinned_decisions_are_stable;
          Alcotest.test_case "future tokens are errors" `Quick test_future_token_is_an_error;
          Alcotest.test_case "ordering is (epoch, revision) lexicographic" `Quick
            test_zookie_ordering;
          Alcotest.test_case "round trip and corruption detection" `Quick
            test_zookie_round_trip ] );
      ( "tuples",
        [ Alcotest.test_case "round trip" `Quick test_tuple_round_trip;
          Alcotest.test_case "malformed inputs rejected" `Quick test_tuple_rejects_malformed ] );
      ( "store",
        [ Alcotest.test_case "MVCC visibility across snapshots" `Quick test_store_mvcc;
          Alcotest.test_case "epoch is monotonic" `Quick test_store_epoch_is_monotonic ] );
      ( "expansion",
        [ Alcotest.test_case "cycles terminate and resolve" `Quick test_cycle_reaches_members;
          pinned qcheck_random_cyclic_graphs_terminate;
          Alcotest.test_case "depth budget is an error, not a deny" `Quick test_depth_budget ] );
      ( "pep",
        [ Alcotest.test_case "reload bumps epoch and head" `Quick
            test_pep_reload_bumps_epoch_and_head;
          Alcotest.test_case "expired snapshots answer System_error" `Quick
            test_pep_snapshot_gone_after_reload;
          Alcotest.test_case "ad-hoc writes bump revision, not epoch" `Quick
            test_pep_ad_hoc_writes_bump_revision_not_epoch;
          Alcotest.test_case "figure 3 scenarios agree with flat-file PEP" `Quick
            test_figure3_scenarios_through_pep ] );
      ( "soak",
        [ Alcotest.test_case "rebac campaign under the safety monitor" `Slow
            test_soak_campaign_on_rebac_pep ] ) ]
