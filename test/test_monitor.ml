(* Online safety monitor + soak campaigns.

   Three layers of assurance:
   - unit checks of each invariant class against synthetic event streams;
   - a QCheck property that verdicts are invariant under reordering of
     events within a simulation tick (the canonical-order guarantee);
   - end-to-end soak campaigns: a clean run produces zero violations,
     and every --inject-violation class is caught as exactly itself,
     with a correlated event chain attached. *)

module Event = Grid_obs.Event
module Monitor = Grid_obs.Monitor
module Soak = Core.Soak

let pinned test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5EED; 1806 |]) test

(* --- Synthetic-stream helpers ------------------------------------------ *)

(* A scripted event: time, kind, attrs. Emitted without correlation ids so
   permutations cannot differ through corr minting. *)
type scripted = {
  s_at : float;
  s_kind : string;
  s_attrs : (string * string) list;
}

let ev s_at s_kind s_attrs = { s_at; s_kind; s_attrs }

let run_monitor ?oracle ?(window = 300.0) events =
  let bus = Event.create_bus () in
  let monitor = Monitor.create ?oracle ~propagation_window:window bus in
  List.iter
    (fun s -> Event.emit bus ~at:s.s_at ~layer:"test" ~kind:s.s_kind s.s_attrs)
    events;
  Monitor.flush monitor;
  monitor

let classes_of monitor =
  List.map Monitor.class_to_string (Monitor.classes monitor)

let check_classes what expected monitor =
  Alcotest.(check (list string)) what expected (classes_of monitor)

(* --- Invariant unit tests ---------------------------------------------- *)

let test_clean_stream () =
  let m =
    run_monitor
      [ ev 0.0 "policy.epoch" [ ("epoch", "1") ];
        ev 1.0 "authz.decision" [ ("outcome", "permitted"); ("epoch", "1") ];
        ev 2.0 "cache.hit" [ ("epoch", "1") ];
        ev 3.0 "authz.decision" [ ("outcome", "denied"); ("epoch", "1") ] ]
  in
  check_classes "no violations" [] m;
  Alcotest.(check int) "events seen" 4 (Monitor.events_seen m);
  Alcotest.(check (option int)) "epoch tracked" (Some 1) (Monitor.current_epoch m)

let test_stale_epoch_after_bump () =
  (* Same-tick answers at the old epoch are excused; strictly later ones
     are violations. *)
  let m =
    run_monitor
      [ ev 0.0 "policy.epoch" [ ("epoch", "1") ];
        ev 10.0 "policy.epoch" [ ("epoch", "2") ];
        ev 10.0 "cache.hit" [ ("epoch", "1") ] ]
  in
  check_classes "same tick excused" [] m;
  let m =
    run_monitor
      [ ev 0.0 "policy.epoch" [ ("epoch", "1") ];
        ev 10.0 "policy.epoch" [ ("epoch", "2") ];
        ev 11.0 "cache.hit" [ ("epoch", "1") ] ]
  in
  check_classes "later tick flagged" [ "stale_epoch" ] m

let test_expired_credential () =
  let m =
    run_monitor
      [ ev 100.0 "authz.decision"
          [ ("outcome", "permitted"); ("cred_expiry", "50.000") ] ]
  in
  check_classes "expired credential" [ "expired_credential" ] m;
  (* A denial resting on an expired credential is not a violation. *)
  let m =
    run_monitor
      [ ev 100.0 "authz.decision" [ ("outcome", "denied"); ("cred_expiry", "50.000") ] ]
  in
  check_classes "denials never flagged" [] m

let test_revocation_window () =
  let events at =
    [ ev 10.0 "credential.revoked" [ ("subject", "/O=Grid/CN=Alice") ];
      ev at "authz.decision" [ ("outcome", "permitted"); ("subject", "/O=Grid/CN=Alice") ] ]
  in
  check_classes "inside propagation window" [] (run_monitor ~window:300.0 (events 200.0));
  check_classes "outside propagation window" [ "expired_credential" ]
    (run_monitor ~window:300.0 (events 311.0))

let test_default_deny_oracle () =
  let oracle e =
    if e.Event.kind = "authz.decision" then
      Some (Event.attr e "subject" <> Some "/O=Grid/CN=Mallory")
    else None
  in
  let m =
    run_monitor ~oracle
      [ ev 1.0 "authz.decision"
          [ ("outcome", "permitted"); ("subject", "/O=Grid/CN=Alice") ];
        ev 2.0 "authz.decision"
          [ ("outcome", "permitted"); ("subject", "/O=Grid/CN=Mallory") ] ]
  in
  check_classes "oracle-refuted permit" [ "default_deny" ] m;
  Alcotest.(check int) "exactly one violation" 1 (Monitor.violation_count m)

let test_recovery_divergence () =
  let base =
    [ ev 1.0 "job.created" [ ("contact", "jmi-1"); ("durable", "true") ];
      ev 2.0 "job.created" [ ("contact", "jmi-2"); ("durable", "true") ];
      ev 5.0 "resource.crashed" [ ("lost", "2") ] ]
  in
  (* Everything restored: clean. *)
  let m =
    run_monitor
      (base
      @ [ ev 6.0 "job.restored" [ ("contact", "jmi-1") ];
          ev 6.0 "job.restored" [ ("contact", "jmi-2") ];
          ev 6.0 "resource.recovered"
            [ ("restored", "2"); ("dropped_bytes", "0"); ("decode_failures", "0") ] ])
  in
  check_classes "full restore" [] m;
  (* A job silently missing with a clean store: divergence. *)
  let m =
    run_monitor
      (base
      @ [ ev 6.0 "job.restored" [ ("contact", "jmi-1") ];
          ev 6.0 "resource.recovered"
            [ ("restored", "1"); ("dropped_bytes", "0"); ("decode_failures", "0") ] ])
  in
  check_classes "silent loss" [ "recovery_divergence" ] m;
  (* The same loss explained by dropped tail bytes: accounted to the disk. *)
  let m =
    run_monitor
      (base
      @ [ ev 6.0 "job.restored" [ ("contact", "jmi-1") ];
          ev 6.0 "resource.recovered"
            [ ("restored", "1"); ("dropped_bytes", "57"); ("decode_failures", "0") ] ])
  in
  check_classes "disk-explained loss" [] m;
  (* Jobs that reached a terminal state before the crash are not owed. *)
  let m =
    run_monitor
      [ ev 1.0 "job.created" [ ("contact", "jmi-1"); ("durable", "true") ];
        ev 3.0 "job.terminal" [ ("contact", "jmi-1"); ("state", "done") ];
        ev 5.0 "resource.crashed" [ ("lost", "0") ];
        ev 6.0 "resource.recovered"
          [ ("restored", "0"); ("dropped_bytes", "0"); ("decode_failures", "0") ] ]
  in
  check_classes "terminal jobs not owed" [] m

let test_fail_open_upgrade () =
  let m =
    run_monitor
      [ ev 1.0 "authz.degraded"
          [ ("mode", "fail_closed"); ("original", "system_error"); ("final", "permitted") ] ]
  in
  check_classes "fail-closed upgraded" [ "fail_open_upgrade" ] m;
  let m =
    run_monitor
      [ ev 1.0 "authz.degraded"
          [ ("mode", "fail_closed"); ("original", "system_error"); ("final", "denied") ];
        ev 2.0 "authz.degraded"
          [ ("mode", "fail_open"); ("original", "system_error"); ("final", "permitted") ] ]
  in
  check_classes "fail-closed refusal and declared fail-open are fine" [] m

(* --- Permutation invariance (QCheck) ----------------------------------- *)

(* Two ticks of events whose verdicts depend on state applied in the same
   tick (epoch bump, revocation, crash/restore bookkeeping). The monitor
   must reach the same verdicts whatever the within-tick arrival order. *)
let tick_a =
  [ ev 10.0 "policy.epoch" [ ("epoch", "2") ];
    ev 10.0 "cache.hit" [ ("epoch", "1") ];
    ev 10.0 "credential.revoked" [ ("subject", "/O=Grid/CN=Alice") ];
    ev 10.0 "job.created" [ ("contact", "jmi-1"); ("durable", "true") ];
    ev 10.0 "authz.decision" [ ("outcome", "permitted"); ("epoch", "2") ] ]

let tick_b =
  [ ev 400.0 "resource.crashed" [ ("lost", "1") ];
    ev 400.0 "job.restored" [ ("contact", "jmi-1") ];
    ev 400.0 "resource.recovered"
      [ ("restored", "1"); ("dropped_bytes", "0"); ("decode_failures", "0") ];
    ev 400.0 "cache.hit" [ ("epoch", "1") ];
    ev 400.0 "authz.decision"
      [ ("outcome", "permitted"); ("subject", "/O=Grid/CN=Alice"); ("epoch", "2") ] ]

let verdicts events =
  let m = run_monitor ~window:300.0 events in
  List.sort compare
    (List.map
       (fun (v : Monitor.violation) -> (Monitor.class_to_string v.Monitor.vclass, v.Monitor.message))
       (Monitor.violations m))

let reference_verdicts = verdicts (tick_a @ tick_b)

let qcheck_tick_reordering_invariant =
  QCheck.Test.make ~name:"within-tick reordering never changes verdicts" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (shuffle_l tick_a) (shuffle_l tick_b))
       ~print:(fun (a, b) ->
         String.concat "; " (List.map (fun s -> s.s_kind) (a @ b))))
    (fun (a, b) -> verdicts (a @ b) = reference_verdicts)

(* Sanity: the reference stream actually trips invariants (stale cache
   answer after the bump propagated; permit for a revoked subject), so
   the property above is not vacuous. *)
let test_reference_stream_is_nontrivial () =
  Alcotest.(check (list string))
    "reference verdict classes"
    [ "expired_credential"; "stale_epoch" ]
    (List.sort_uniq compare (List.map fst reference_verdicts))

(* --- Soak campaigns ------------------------------------------------------ *)

let small_config =
  { Soak.default_config with Soak.days = 0.8; jobs_per_day = 120; seed = 42 }

let test_soak_clean () =
  let r = Soak.run small_config in
  Alcotest.(check int) "no violations" 0 (List.length r.Soak.violations);
  Alcotest.(check bool) "campaign checked events" true (r.Soak.events_checked > 500);
  Alcotest.(check bool) "jobs were accepted" true (r.Soak.accepted > 10);
  Alcotest.(check bool) "outsiders were denied" true (r.Soak.denied > 0);
  Alcotest.(check bool) "policy churned" true (r.Soak.reloads >= 3);
  Alcotest.(check bool) "job manager crashed" true (r.Soak.crashes >= 1)

let test_soak_deterministic () =
  let a = Soak.run small_config in
  let b = Soak.run small_config in
  Alcotest.(check int) "submitted" a.Soak.submitted b.Soak.submitted;
  Alcotest.(check int) "accepted" a.Soak.accepted b.Soak.accepted;
  Alcotest.(check int) "events checked" a.Soak.events_checked b.Soak.events_checked

let test_soak_monitor_off () =
  let r = Soak.run { small_config with Soak.monitor = false } in
  Alcotest.(check int) "no monitor, no events checked" 0 r.Soak.events_checked;
  Alcotest.(check int) "no monitor, no violations" 0 (List.length r.Soak.violations)

let test_injection vclass () =
  let r = Soak.run { small_config with Soak.inject = Some vclass } in
  Alcotest.(check (list string))
    "exactly the injected class detected"
    [ Monitor.class_to_string vclass ]
    (List.map Monitor.class_to_string (Soak.violation_classes r));
  let v = List.hd r.Soak.violations in
  Alcotest.(check bool) "violation carries a correlation id" true
    (v.Monitor.corr <> None);
  Alcotest.(check bool) "violation carries an event chain" true
    (v.Monitor.chain <> [])

let injection_cases =
  List.map
    (fun c ->
      Alcotest.test_case
        (Printf.sprintf "inject %s -> caught" (Monitor.class_to_string c))
        `Quick (test_injection c))
    Monitor.all_classes

let () =
  Alcotest.run "monitor"
    [ ( "invariants",
        [ Alcotest.test_case "clean stream" `Quick test_clean_stream;
          Alcotest.test_case "stale epoch after bump" `Quick test_stale_epoch_after_bump;
          Alcotest.test_case "expired credential" `Quick test_expired_credential;
          Alcotest.test_case "revocation propagation window" `Quick
            test_revocation_window;
          Alcotest.test_case "default deny via oracle" `Quick test_default_deny_oracle;
          Alcotest.test_case "recovery divergence" `Quick test_recovery_divergence;
          Alcotest.test_case "fail-open upgrade" `Quick test_fail_open_upgrade ] );
      ( "ordering",
        [ Alcotest.test_case "reference stream is nontrivial" `Quick
            test_reference_stream_is_nontrivial;
          pinned qcheck_tick_reordering_invariant ] );
      ( "soak",
        [ Alcotest.test_case "clean campaign has zero violations" `Quick
            test_soak_clean;
          Alcotest.test_case "campaign is deterministic in its seed" `Quick
            test_soak_deterministic;
          Alcotest.test_case "monitor off checks nothing" `Quick test_soak_monitor_off ]
        @ injection_cases ) ]
