(* Batch decision pipeline equivalence suite.

   The contract of [Callout.Batch] is that the many lane is an
   *optimization*, never a semantic fork: for every backend,
   [evaluate_many qs] must equal [Array.map single qs] element-wise —
   the decision AND the reason (the structural compare covers the full
   error payload) — and the answers must come back in request order.

   The property runs for every backend that ships a native many lane
   (flat-file compiled, compiled behind the decision cache, ReBAC) plus
   the derived [Batch.of_callout] fallback, under three pinned seed
   sets so a failure reproduces byte-for-byte. Generated batches mix
   start and management intents, owners, jobtags, duplicates, and
   missing/live/expired credentials; the cached backend is exercised
   cold (misses) and warm (hits), and on one shared cache under two
   scopes. A deterministic regression case pins request-order
   preservation with asymmetric outcomes and duplicated slots. *)

module Callout = Grid_callout.Callout
module File_pep = Grid_callout.File_pep
module Cache = Grid_callout.Cache
module Pep = Grid_rebac.Pep
module Types = Grid_policy.Types

let dn = Grid_gsi.Dn.parse

(* --- Seed / count overrides (same contract as test_rebac) -------------- *)

let env_int name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Some n
    | None -> Printf.ksprintf failwith "%s must be an integer, got %S" name s)

let override_seed = env_int "QCHECK_SEED"
let override_count = env_int "QCHECK_COUNT"
let count ~default = match override_count with Some n -> n | None -> default

let pinned_with seeds test =
  let seeds = match override_seed with Some s -> [| s |] | None -> seeds in
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make seeds) test

(* The pinned-seed matrix: the whole suite replays under each. *)
let seed_matrix = [ ("1", [| 1; 9973 |]); ("7", [| 7; 1103 |]); ("42", [| 42; 2741 |]) ]

(* --- The world ---------------------------------------------------------- *)

(* The fusion policy sources (resource owner + VO): two sources, so the
   conjunctive source-major batch path is on the hook, with the
   developer count cap supplying real denials. *)
let sources = Core.Fusion.policy_sources (Core.Fusion.build_vo ())
let compiled_pep = File_pep.Compiled.create sources
let compiled = File_pep.Compiled.batch compiled_pep
let rebac = Pep.batch (Pep.create sources)
let fallback = Callout.Batch.of_callout (File_pep.reference sources)

(* All cache clocks sit at [now]; the 50-second identities below are
   long dead by then, the 1000-second ones comfortably live. *)
let now = 100.0
let ca = Grid_gsi.Ca.create ~now:0.0 "/O=Grid/CN=Batch CA"

let credential ~lifetime dn_string =
  Grid_gsi.Credential.of_identity
    (Grid_gsi.Identity.create ~ca ~now:0.0 ~lifetime dn_string)
    ~challenge:"c"

let bo = Core.Fusion.bo_liu
let kate = Core.Fusion.kate_keahey
let admin = Core.Fusion.admin
let stranger = "/O=Elsewhere/CN=stranger"
let subjects = [ bo; kate; admin; stranger ]
let credentials = List.map (fun s -> (s, (credential ~lifetime:1000.0 s, credential ~lifetime:50.0 s))) subjects
let live_credential s = fst (List.assoc s credentials)
let expired_credential s = snd (List.assoc s credentials)

let clauses =
  Array.map Grid_rsl.Parser.parse_clause_exn
    [| "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)";
       "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=6)";
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)";
       "&(executable=test1)(directory=/sandbox/test)" |]

(* --- Generators --------------------------------------------------------- *)

let gen_query : Callout.query QCheck.Gen.t =
  QCheck.Gen.(
    let* who = oneofl subjects in
    let* credential =
      frequency
        [ (3, return None);
          (2, return (Some (live_credential who)));
          (2, return (Some (expired_credential who))) ]
    in
    let* is_start = frequency [ (1, return true); (2, return false) ] in
    if is_start then
      let* i = int_range 0 (Array.length clauses - 1) in
      return
        (Callout.Query.make ~requester:(dn who) ?credential
           (Callout.Query.Start clauses.(i)))
    else
      let* action = oneofl [ Types.Action.Information; Cancel; Signal ] in
      let* owner = oneofl [ bo; kate ] in
      let* jobtag = oneofl [ None; Some "ADS"; Some "NFC" ] in
      let* job = int_range 0 3 in
      return
        (Callout.Query.make ~requester:(dn who) ?credential
           ~job_id:(Printf.sprintf "job-%d" job)
           (Callout.Query.Management { action; job_owner = dn owner; jobtag })))

let credential_live (c : Grid_gsi.Credential.t) =
  c.chain <> [] && List.for_all (fun cert -> Grid_gsi.Cert.valid_at cert ~now) c.chain

let query_to_string (q : Callout.query) =
  Printf.sprintf "{%s %s%s%s%s%s}"
    (Grid_gsi.Dn.to_string q.Callout.requester)
    (Types.Action.to_string q.Callout.action)
    (match q.Callout.job_owner with
    | Some o -> " owner=" ^ Grid_gsi.Dn.to_string o
    | None -> "")
    (match q.Callout.jobtag with Some t -> " tag=" ^ t | None -> "")
    (match q.Callout.rsl with Some _ -> " +rsl" | None -> "")
    (match q.Callout.requester_credential with
    | None -> ""
    | Some c -> if credential_live c then " cred:live" else " cred:EXPIRED")

let arb_batch =
  QCheck.make
    ~print:(fun qs -> String.concat "; " (List.map query_to_string qs))
    QCheck.Gen.(list_size (int_range 0 40) gen_query)

(* --- The equivalence property ------------------------------------------- *)

(* Two passes: against a stateful backend the first is all cold misses,
   the second all warm hits — both must still match the single lane.
   The two lanes get *separate* cache instances so each lane's state
   evolves exactly as its own call sequence dictates. *)
let lanes_agree (b_single, b_many) qs =
  let single = Callout.Batch.check b_single in
  let ok = ref true in
  for _pass = 1 to 2 do
    let expect = Array.map single qs in
    let got = Callout.Batch.evaluate_many b_many qs in
    if expect <> got then ok := false
  done;
  !ok

let fresh_cache () =
  Cache.create ~capacity:512 ~ttl:1e6
    ~epoch:(fun () -> File_pep.Compiled.epoch compiled_pep)
    ~now:(fun () -> now) ()

let backends =
  [ ("flat-file compiled", fun () -> (compiled, compiled));
    ("derived fallback", fun () -> (fallback, fallback));
    ("rebac", fun () -> (rebac, rebac));
    ( "compiled+cache",
      fun () ->
        ( Cache.with_cache_many (fresh_cache ()) compiled,
          Cache.with_cache_many (fresh_cache ()) compiled ) ) ]

let equivalence (name, make_pair) =
  QCheck.Test.make
    ~name:(name ^ ": evaluate_many = map single (decision and reason)")
    ~count:(count ~default:150) arb_batch
    (fun qs -> lanes_agree (make_pair ()) (Array.of_list qs))

(* One shared cache serving two scopes: neither scope's batch lane may
   leak the other's entries, so both must keep matching the uncached
   truth while both scopes run hot on the same store. *)
let mixed_scopes =
  QCheck.Test.make ~name:"one cache, two scopes: both lanes match the uncached truth"
    ~count:(count ~default:100) arb_batch
    (fun qs ->
      let qs = Array.of_list qs in
      let cache = fresh_cache () in
      let authz = Cache.with_cache_many cache ~scope:"authz" compiled in
      let gatekeeper = Cache.with_cache_many cache ~scope:"gatekeeper" compiled in
      let truth = Array.map (Callout.Batch.check compiled) qs in
      let ok = ref true in
      for _pass = 1 to 2 do
        if Callout.Batch.evaluate_many authz qs <> truth then ok := false;
        if Callout.Batch.evaluate_many gatekeeper qs <> truth then ok := false
      done;
      !ok)

(* --- Order preservation (deterministic regression) ---------------------- *)

(* Asymmetric outcomes in fixed slots, with slot 3 duplicating slot 0:
   any reordering, mis-scatter, or duplicate-collapse bug flips at
   least one index. *)
let test_order_preserved () =
  let q_kate =
    Callout.Query.make ~requester:(dn kate) (Callout.Query.Start clauses.(2))
  in
  let qs =
    [| q_kate;
       Callout.Query.make ~requester:(dn stranger) (Callout.Query.Start clauses.(2));
       Callout.Query.make ~requester:(dn bo) (Callout.Query.Start clauses.(1));
       q_kate;
       Callout.Query.make ~requester:(dn bo) (Callout.Query.Start clauses.(0)) |]
  in
  let expect_permit = [| true; false; false; true; true |] in
  List.iter
    (fun (name, make_pair) ->
      let _, b = make_pair () in
      let single = Callout.Batch.check b in
      let expect = Array.map single qs in
      let got = Callout.Batch.evaluate_many b qs in
      Array.iteri
        (fun i d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: slot %d permitted?" name i)
            expect_permit.(i)
            (d = Ok ());
          Alcotest.(check bool)
            (Printf.sprintf "%s: slot %d equals single lane" name i)
            true
            (d = expect.(i)))
        got)
    backends

let () =
  Alcotest.run "grid_batch"
    (( "order",
       [ Alcotest.test_case "request order preserved" `Quick test_order_preserved ] )
    :: List.map
         (fun (label, seeds) ->
           ( "equivalence-seed-" ^ label,
             List.map (fun b -> pinned_with seeds (equivalence b)) backends
             @ [ pinned_with seeds mixed_scopes ] ))
         seed_matrix)
