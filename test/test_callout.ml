(* Tests for grid_callout: the callout API, registry/config resolution,
   and the flat-file PEP. *)

open Grid_callout

let dn = Grid_gsi.Dn.parse

let start_query ?(who = "/O=Grid/CN=U") rsl =
  Callout.Query.make ~requester:(dn who) ~job_id:"job-1"
    (Callout.Query.Start (Grid_rsl.Parser.parse_clause_exn rsl))

let manage_query ?(who = "/O=Grid/CN=U") ~action ~owner ~tag () =
  Callout.Query.make ~requester:(dn who) ~job_id:"job-1"
    (Callout.Query.Management { action; job_owner = dn owner; jobtag = tag })

(* --- Combinators -------------------------------------------------------- *)

let test_all_conjunction () =
  let q = start_query "&(executable=x)" in
  Alcotest.(check bool) "both permit" true
    (Callout.all [ Callout.permit_all; Callout.permit_all ] q = Ok ());
  (match Callout.all [ Callout.permit_all; Callout.deny_all ~reason:"no" ] q with
  | Error (Callout.Denied _) -> ()
  | _ -> Alcotest.fail "denial not propagated");
  match Callout.all [] q with
  | Error (Callout.Bad_configuration _) -> ()
  | _ -> Alcotest.fail "empty chain must fail closed"

let test_all_first_error_wins () =
  let q = start_query "&(executable=x)" in
  match
    Callout.all [ Callout.failing ~message:"boom"; Callout.deny_all ~reason:"no" ] q
  with
  | Error (Callout.System_error "boom") -> ()
  | _ -> Alcotest.fail "first error should win"

let test_counting () =
  let c, count = Callout.counting Callout.permit_all in
  let q = start_query "&(executable=x)" in
  ignore (c q);
  ignore (c q);
  Alcotest.(check int) "two invocations" 2 (count ())

(* --- Resilience combinators ---------------------------------------------- *)

let test_with_timeout () =
  let q = start_query "&(executable=x)" in
  let slow = ref false in
  let latency () = if !slow then 1.0 else 0.01 in
  let c = Callout.with_timeout ~budget:0.1 ~latency Callout.permit_all in
  Alcotest.(check bool) "fast backend permits" true (c q = Ok ());
  slow := true;
  match c q with
  | Error (Callout.System_error m) ->
    Alcotest.(check bool) "mentions timeout" true
      (Grid_util.Str_search.contains m "timed out")
  | _ -> Alcotest.fail "slow backend must time out as System_error"

let test_with_retry_transient () =
  let q = start_query "&(executable=x)" in
  (* Fails twice, then answers: with_retry masks the transient failures. *)
  let calls = ref 0 in
  let transient : Callout.t =
   fun _ ->
    incr calls;
    if !calls <= 2 then Error (Callout.System_error "blip") else Ok ()
  in
  let policy = Grid_util.Retry.policy ~max_attempts:4 () in
  Alcotest.(check bool) "eventually permits" true
    (Callout.with_retry ~policy transient q = Ok ());
  Alcotest.(check int) "three calls" 3 !calls

let test_with_retry_exhaustion_and_no_retry_on_denial () =
  let q = start_query "&(executable=x)" in
  let calls = ref 0 in
  let always_down : Callout.t =
   fun _ ->
    incr calls;
    Error (Callout.System_error "down")
  in
  let policy = Grid_util.Retry.policy ~max_attempts:3 () in
  (match Callout.with_retry ~policy always_down q with
  | Error (Callout.System_error _) -> ()
  | _ -> Alcotest.fail "exhaustion must propagate the system error");
  Alcotest.(check int) "exactly max_attempts calls" 3 !calls;
  (* A denial is a definite answer: never retried. *)
  let denials = ref 0 in
  let denier : Callout.t =
   fun _ ->
    incr denials;
    Error (Callout.Denied "no")
  in
  (match Callout.with_retry ~policy denier q with
  | Error (Callout.Denied _) -> ()
  | _ -> Alcotest.fail "denial must propagate unchanged");
  Alcotest.(check int) "single call on denial" 1 !denials

let test_breaker_opens_and_half_open_recovery () =
  let q = start_query "&(executable=x)" in
  let clock = ref 0.0 in
  let now () = !clock in
  let breaker = Grid_util.Retry.Breaker.create ~failure_threshold:2 ~cooldown:10.0 () in
  let healthy = ref false in
  let backend : Callout.t =
   fun _ -> if !healthy then Ok () else Error (Callout.System_error "down")
  in
  let c = Callout.with_breaker ~breaker ~now backend in
  (* Two failures trip the breaker. *)
  ignore (c q);
  ignore (c q);
  Alcotest.(check bool) "open after threshold" true
    (Grid_util.Retry.Breaker.state breaker ~now:!clock = Grid_util.Retry.Breaker.Open);
  (* While open, the backend is not consulted. *)
  (match c q with
  | Error (Callout.System_error m) ->
    Alcotest.(check bool) "reports circuit open" true
      (Grid_util.Str_search.contains m "circuit open")
  | _ -> Alcotest.fail "open breaker must short-circuit");
  (* Cooldown elapses; the backend heals; the half-open probe closes it. *)
  clock := 11.0;
  healthy := true;
  Alcotest.(check bool) "half-open admits probe" true
    (Grid_util.Retry.Breaker.state breaker ~now:!clock = Grid_util.Retry.Breaker.Half_open);
  Alcotest.(check bool) "probe permits" true (c q = Ok ());
  Alcotest.(check bool) "closed after successful probe" true
    (Grid_util.Retry.Breaker.state breaker ~now:!clock = Grid_util.Retry.Breaker.Closed)

let test_breaker_failed_probe_reopens () =
  let q = start_query "&(executable=x)" in
  let clock = ref 0.0 in
  let now () = !clock in
  let breaker = Grid_util.Retry.Breaker.create ~failure_threshold:1 ~cooldown:5.0 () in
  let c = Callout.with_breaker ~breaker ~now (Callout.failing ~message:"still down") in
  ignore (c q);
  clock := 6.0;
  ignore (c q);
  (* The probe failed: back to Open with a fresh cooldown from t=6. *)
  Alcotest.(check bool) "re-opened" true
    (Grid_util.Retry.Breaker.state breaker ~now:8.0 = Grid_util.Retry.Breaker.Open);
  Alcotest.(check bool) "half-open again after new cooldown" true
    (Grid_util.Retry.Breaker.state breaker ~now:11.5 = Grid_util.Retry.Breaker.Half_open)

let test_degrade_fail_closed_and_open () =
  let q = start_query "&(executable=x)" in
  let down = Callout.failing ~message:"backend unreachable" in
  (* Fail-closed (the default stance): outage stays an error => deny. *)
  (match Callout.degrade Callout.Fail_closed down q with
  | Error (Callout.System_error _) -> ()
  | _ -> Alcotest.fail "fail-closed must preserve the outage error");
  (* Fail-open converts the outage to a permit... *)
  Alcotest.(check bool) "fail-open permits on outage" true
    (Callout.degrade Callout.Fail_open down q = Ok ());
  (* ...but NEVER overrides a policy denial. *)
  match Callout.degrade Callout.Fail_open (Callout.deny_all ~reason:"no") q with
  | Error (Callout.Denied _) -> ()
  | _ -> Alcotest.fail "fail-open must not convert a denial into a permit"

let test_flaky_deterministic () =
  let q = start_query "&(executable=x)" in
  let outcomes seed =
    let rng = Grid_util.Rng.create ~seed in
    let c = Callout.flaky ~rng ~failure_probability:0.5 Callout.permit_all in
    List.init 50 (fun _ -> match c q with Ok () -> 'p' | Error _ -> 'f')
  in
  Alcotest.(check (list char)) "same seed, same fault sequence" (outcomes 3) (outcomes 3);
  let faults = List.length (List.filter (fun c -> c = 'f') (outcomes 3)) in
  Alcotest.(check bool) "faults actually injected" true (faults > 0 && faults < 50)

(* --- Registry / config --------------------------------------------------- *)

let test_registry_lookup () =
  let reg = Registry.create () in
  Registry.register reg ~library:"libauthz_file.so" ~symbol:"authz" Callout.permit_all;
  (match Registry.lookup reg ~library:"libauthz_file.so" ~symbol:"authz" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "registered symbol not found");
  (match Registry.lookup reg ~library:"libmissing.so" ~symbol:"authz" with
  | Error (Callout.Bad_configuration m) ->
    Alcotest.(check bool) "names the library" true
      (Grid_util.Strings.starts_with ~prefix:"cannot load library" m)
  | _ -> Alcotest.fail "missing library accepted");
  match Registry.lookup reg ~library:"libauthz_file.so" ~symbol:"nope" with
  | Error (Callout.Bad_configuration _) -> ()
  | _ -> Alcotest.fail "missing symbol accepted"

let config_text =
  {|# GRAM authorization callout configuration
globus_gram_jobmanager_authz   libauthz_file.so   authz_file_callout
other_type                     libother.so        other_symbol
|}

let test_config_parse () =
  let config = Config.load config_text in
  Alcotest.(check int) "two bindings" 2 (List.length (Config.bindings config));
  match Config.find config Config.gram_authz_type with
  | Some b ->
    Alcotest.(check string) "library" "libauthz_file.so" b.Config.library;
    Alcotest.(check string) "symbol" "authz_file_callout" b.Config.symbol
  | None -> Alcotest.fail "gram type not found"

let test_config_parse_errors () =
  (match Config.load_result "only_two_fields second" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short line accepted");
  match Config.load_result "a b c d" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "long line accepted"

let test_config_roundtrip () =
  let config = Config.load config_text in
  let config' = Config.load (Config.to_text config) in
  Alcotest.(check int) "same size" 2 (List.length (Config.bindings config'))

let test_config_resolution () =
  let reg = Registry.create () in
  Registry.register reg ~library:"libauthz_file.so" ~symbol:"authz_file_callout"
    Callout.permit_all;
  let config = Config.load config_text in
  (match Config.resolve config reg Config.gram_authz_type with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "resolution failed: %s" (Callout.error_to_string e));
  (* Configured but not installed: the paper's missing-.so failure. *)
  (match Config.resolve config reg "other_type" with
  | Error (Callout.Bad_configuration _) -> ()
  | _ -> Alcotest.fail "unresolvable binding accepted");
  match Config.resolve config reg "unconfigured_type" with
  | Error (Callout.Bad_configuration _) -> ()
  | _ -> Alcotest.fail "unconfigured type accepted"

(* --- Flat-file PEP -------------------------------------------------------- *)

let test_file_pep_decisions () =
  let pep = File_pep.of_policy ~name:"vo" (Grid_policy.Figure3.get ()) in
  let permit =
    start_query ~who:Grid_policy.Figure3.kate_keahey
      "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"
  in
  Alcotest.(check bool) "permits" true (pep permit = Ok ());
  let deny =
    start_query ~who:Grid_policy.Figure3.kate_keahey
      "&(executable=rm)(directory=/)(jobtag=NFC)"
  in
  (match pep deny with
  | Error (Callout.Denied m) ->
    Alcotest.(check bool) "names the source" true
      (Grid_util.Strings.starts_with ~prefix:"vo:" m)
  | _ -> Alcotest.fail "bad executable authorized")

let test_file_pep_management () =
  let pep = File_pep.of_policy ~name:"vo" (Grid_policy.Figure3.get ()) in
  let q =
    manage_query ~who:Grid_policy.Figure3.kate_keahey
      ~action:Grid_policy.Types.Action.Cancel ~owner:Grid_policy.Figure3.bo_liu
      ~tag:(Some "NFC") ()
  in
  Alcotest.(check bool) "vo-wide cancel" true (pep q = Ok ())

let test_file_pep_of_texts_bad_policy_fails_closed () =
  let pep = File_pep.of_texts [ ("broken", "this is not a policy") ] in
  match pep (start_query "&(executable=x)") with
  | Error (Callout.System_error _) -> ()
  | _ -> Alcotest.fail "unparseable policy must be a system error"

let test_file_pep_of_texts_invalid_policy_fails_closed () =
  let pep = File_pep.of_texts [ ("invalid", "/O=Grid/CN=U: &(count < lots)") ] in
  match pep (start_query "&(executable=x)") with
  | Error (Callout.System_error _) -> ()
  | _ -> Alcotest.fail "invalid policy must be a system error"

let test_file_pep_of_texts_good () =
  let pep =
    File_pep.of_texts
      [ ("owner", "/O=Grid: &(action = start)(queue != reserved)");
        ("vo", "/O=Grid/CN=U: &(action = start)(executable = x)") ]
  in
  Alcotest.(check bool) "permits" true (pep (start_query "&(executable=x)") = Ok ());
  match pep (start_query "&(executable=x)(queue=reserved)") with
  | Error (Callout.Denied m) ->
    Alcotest.(check bool) "owner denied" true
      (Grid_util.Strings.starts_with ~prefix:"owner:" m)
  | _ -> Alcotest.fail "reserved queue authorized"

(* --- Decision cache ------------------------------------------------------ *)

(* Distinct-keyed management queries for churn tests. *)
let keyed_query ?credential ~job_id () =
  Callout.Query.make ~requester:(dn "/O=Grid/CN=U") ?credential ~job_id
    (Callout.Query.Management
       { action = Grid_policy.Types.Action.Information;
         job_owner = dn "/O=Grid/CN=U";
         jobtag = Some "NFC" })

let test_cache_hits_and_epoch_invalidation () =
  let clock = ref 0.0 in
  let epoch = ref 1 in
  let backend, calls = Callout.counting Callout.permit_all in
  let cache =
    Cache.create ~capacity:8 ~ttl:100.0 ~epoch:(fun () -> !epoch)
      ~now:(fun () -> !clock) ()
  in
  let pep = Cache.with_cache cache backend in
  let q = keyed_query ~job_id:"job-1" () in
  Alcotest.(check bool) "first answer" true (pep q = Ok ());
  Alcotest.(check bool) "second answer" true (pep q = Ok ());
  Alcotest.(check int) "one backend call, one hit" 1 (calls ());
  Alcotest.(check int) "hit counted" 1 (Cache.hits cache);
  (* policy reload: epoch bump must evict the cached permit *)
  incr epoch;
  Alcotest.(check bool) "post-reload answer" true (pep q = Ok ());
  Alcotest.(check int) "backend re-consulted after epoch bump" 2 (calls ());
  Alcotest.(check int) "stale entry counted as invalidated" 1 (Cache.invalidations cache)

let test_cache_caches_denials () =
  let clock = ref 0.0 in
  let backend, calls = Callout.counting (Callout.deny_all ~reason:"no") in
  let cache = Cache.create ~capacity:8 ~ttl:100.0 ~now:(fun () -> !clock) () in
  let pep = Cache.with_cache cache backend in
  let q = keyed_query ~job_id:"job-1" () in
  (match pep q with
  | Error (Callout.Denied _) -> ()
  | _ -> Alcotest.fail "expected denial");
  ignore (pep q);
  Alcotest.(check int) "denial served from cache" 1 (calls ())

let test_cache_ttl_expiry () =
  let clock = ref 0.0 in
  let backend, calls = Callout.counting Callout.permit_all in
  let cache = Cache.create ~capacity:8 ~ttl:10.0 ~now:(fun () -> !clock) () in
  let pep = Cache.with_cache cache backend in
  let q = keyed_query ~job_id:"job-1" () in
  ignore (pep q);
  clock := 5.0;
  ignore (pep q);
  Alcotest.(check int) "within ttl: cached" 1 (calls ());
  clock := 15.0;
  ignore (pep q);
  Alcotest.(check int) "past ttl: re-evaluated" 2 (calls ());
  Alcotest.(check int) "expiry counted as eviction" 1 (Cache.evictions cache)

let test_cache_expired_credential_bypasses () =
  let clock = ref 0.0 in
  let ca = Grid_gsi.Ca.create ~now:0.0 "/O=Grid/CN=Cache CA" in
  let identity = Grid_gsi.Identity.create ~ca ~now:0.0 ~lifetime:100.0 "/O=Grid/CN=U" in
  let credential = Grid_gsi.Credential.of_identity identity ~challenge:"c" in
  let backend, calls = Callout.counting Callout.permit_all in
  let cache = Cache.create ~capacity:8 ~ttl:1000.0 ~now:(fun () -> !clock) () in
  let pep = Cache.with_cache cache backend in
  let q = keyed_query ~credential ~job_id:"job-1" () in
  ignore (pep q);
  ignore (pep q);
  Alcotest.(check int) "live credential: cached" 1 (calls ());
  (* Even with a generous cache TTL, the entry dies with the credential:
     past its chain's expiry the cache is bypassed on both read and
     write. *)
  clock := 200.0;
  ignore (pep q);
  ignore (pep q);
  Alcotest.(check int) "expired credential: every call reaches the backend" 3 (calls ());
  Alcotest.(check int) "bypasses counted" 2 (Cache.bypasses cache)

let test_cache_revoked_credential_bypasses () =
  let clock = ref 0.0 in
  let trust = Grid_gsi.Ca.Trust_store.create () in
  let ca = Grid_gsi.Ca.create ~now:0.0 "/O=Grid/CN=Cache CA" in
  Grid_gsi.Ca.Trust_store.add trust (Grid_gsi.Ca.certificate ca);
  let identity = Grid_gsi.Identity.create ~ca ~now:0.0 ~lifetime:1e6 "/O=Grid/CN=U" in
  let credential = Grid_gsi.Credential.of_identity identity ~challenge:"c" in
  let backend, calls = Callout.counting Callout.permit_all in
  let cache =
    Cache.create ~capacity:8 ~ttl:1000.0
      ~revoked:(fun cred ->
        List.exists
          (Grid_gsi.Ca.Trust_store.is_revoked trust)
          cred.Grid_gsi.Credential.chain)
      ~now:(fun () -> !clock) ()
  in
  let pep = Cache.with_cache cache backend in
  let q = keyed_query ~credential ~job_id:"job-1" () in
  ignore (pep q);
  ignore (pep q);
  Alcotest.(check int) "live credential: cached" 1 (calls ());
  (* CRL update: a cert in the proxy's chain is revoked mid-lifetime.
     The cached permit is unexpired — TTL and chain validity both still
     hold — yet it must stop being served: a revoked credential
     bypasses the cache on read and write, exactly like an expired
     one. *)
  List.iter
    (fun c -> Grid_gsi.Ca.Trust_store.revoke_serial trust c.Grid_gsi.Cert.serial)
    credential.Grid_gsi.Credential.chain;
  clock := 1.0;
  ignore (pep q);
  ignore (pep q);
  Alcotest.(check int) "revoked credential: every call reaches the backend" 3
    (calls ());
  Alcotest.(check int) "bypasses counted" 2 (Cache.bypasses cache);
  (* The batch lane classifies per query: the revoked credential's query
     bypasses while its credential-less neighbour is served from cache. *)
  let many_calls = ref 0 in
  let batch =
    Cache.with_cache_many cache
      (Callout.Batch.make
         ~single:(fun _ ->
           incr many_calls;
           Ok ())
         ~many:(fun qs ->
           many_calls := !many_calls + Array.length qs;
           Array.map (fun _ -> Callout.permitted) qs))
  in
  let bare = keyed_query ~job_id:"job-2" () in
  let q2 = keyed_query ~credential ~job_id:"job-2" () in
  ignore (Callout.Batch.evaluate_many batch [| bare; q2 |]);
  ignore (Callout.Batch.evaluate_many batch [| bare; q2 |]);
  Alcotest.(check int)
    "batch lane: bare query cached once, revoked query re-evaluated twice" 3
    !many_calls

let test_cache_never_caches_system_error_or_fail_open () =
  let clock = ref 0.0 in
  let backend, calls = Callout.counting (Callout.failing ~message:"backend down") in
  let cache = Cache.create ~capacity:8 ~ttl:100.0 ~now:(fun () -> !clock) () in
  (* degrade OUTSIDE the cache: the fail-open permit is a conversion of
     an uncached System_error, so it can never be stored. *)
  let pep = Callout.degrade Callout.Fail_open (Cache.with_cache cache backend) in
  let q = keyed_query ~job_id:"job-1" () in
  Alcotest.(check bool) "fail-open converts outage to permit" true (pep q = Ok ());
  Alcotest.(check bool) "again" true (pep q = Ok ());
  Alcotest.(check int) "nothing was cached: backend consulted each time" 2 (calls ());
  Alcotest.(check int) "cache stayed empty" 0 (Cache.size cache);
  Alcotest.(check int) "both lookups were misses" 2 (Cache.misses cache)

let test_cache_lru_bound_under_churn () =
  let clock = ref 0.0 in
  let backend, calls = Callout.counting Callout.permit_all in
  let cache = Cache.create ~capacity:4 ~ttl:1000.0 ~now:(fun () -> !clock) () in
  let pep = Cache.with_cache cache backend in
  let q i = keyed_query ~job_id:(Printf.sprintf "job-%d" i) () in
  for i = 1 to 10 do ignore (pep (q i)) done;
  Alcotest.(check int) "bound respected" 4 (Cache.size cache);
  Alcotest.(check int) "evictions counted" 6 (Cache.evictions cache);
  (* jobs 7..10 are resident *)
  ignore (pep (q 10));
  Alcotest.(check int) "most recent entry hits" 10 (calls ());
  ignore (pep (q 1));
  Alcotest.(check int) "oldest entry was evicted" 11 (calls ());
  (* recency, not insertion order: touch 8, insert a new key, and the
     least-recently-used entry (9) goes — 8 survives. *)
  ignore (pep (q 8));
  ignore (pep (q 11));
  ignore (pep (q 8));
  Alcotest.(check int) "recently-touched entry survives churn" 12 (calls ());
  ignore (pep (q 9));
  Alcotest.(check int) "LRU victim was evicted" 13 (calls ())

let test_cache_scopes_partition_keys () =
  let clock = ref 0.0 in
  let deny, deny_calls = Callout.counting (Callout.deny_all ~reason:"owner says no") in
  let permit, permit_calls = Callout.counting Callout.permit_all in
  let cache = Cache.create ~capacity:8 ~ttl:100.0 ~now:(fun () -> !clock) () in
  let a = Cache.with_cache cache ~scope:"gatekeeper" deny in
  let b = Cache.with_cache cache ~scope:"jm" permit in
  let q = keyed_query ~job_id:"job-1" () in
  (match a q with
  | Error (Callout.Denied _) -> ()
  | _ -> Alcotest.fail "scope a should deny");
  Alcotest.(check bool) "scope b unaffected by scope a's entry" true (b q = Ok ());
  ignore (a q);
  ignore (b q);
  Alcotest.(check int) "scope a cached" 1 (deny_calls ());
  Alcotest.(check int) "scope b cached" 1 (permit_calls ())

(* --- Cache key construction ----------------------------------------------- *)

(* A key collision between two different queries is a cross-principal
   cache hit, so [Cache.query_key] must be injective over everything a
   decision can depend on: scope, epoch, store revision, requester DN,
   action, job id, jobtag, job owner, RSL fingerprint. *)

let base_query () =
  Callout.Query.make ~requester:(dn "/O=Grid/CN=U") ~job_id:"job-1"
    (Callout.Query.Management
       { action = Grid_policy.Types.Action.Information;
         job_owner = dn "/O=Grid/CN=U";
         jobtag = Some "NFC" })

let test_cache_key_single_component_never_collides () =
  let base = base_query () in
  let key ?(scope = "authz") ?(epoch = 1) ?(revision = 7) q =
    Cache.query_key ~scope ~epoch ~revision q
  in
  (* each variant differs from base in exactly one component *)
  let variants =
    [ ("scope", key ~scope:"authz2" base);
      ("epoch", key ~epoch:2 base);
      ("revision", key ~revision:8 base);
      ("requester", key { base with Callout.requester = dn "/O=Grid/CN=V" });
      ("action", key { base with Callout.action = Grid_policy.Types.Action.Cancel });
      ("job id", key { base with Callout.job_id = Some "job-2" });
      ("job id absent", key { base with Callout.job_id = None });
      ("jobtag", key { base with Callout.jobtag = Some "ADS" });
      ("jobtag absent", key { base with Callout.jobtag = None });
      ("owner", key { base with Callout.job_owner = Some (dn "/O=Grid/CN=W") });
      ("owner absent", key { base with Callout.job_owner = None });
      ("rsl", key { base with Callout.rsl = Some (Grid_rsl.Parser.parse_clause_exn "&(executable=x)") }) ]
  in
  let base_key = key base in
  List.iter
    (fun (what, k) ->
      Alcotest.(check bool) (what ^ " differs from base") true (k <> base_key))
    variants;
  (* and all the variants are pairwise distinct *)
  let keys = base_key :: List.map snd variants in
  let distinct = List.sort_uniq compare keys in
  Alcotest.(check int) "all keys pairwise distinct" (List.length keys)
    (List.length distinct)

let test_cache_key_adversarial_boundaries () =
  (* Hand-built DNs may contain any byte; the length-prefixed encoding
     must keep component boundaries unambiguous where separator-joined
     keys collide. *)
  let rdn attr value = { Grid_gsi.Dn.attr; value } in
  let q dn_parts =
    { (base_query ()) with Callout.requester = dn_parts; job_owner = None }
  in
  let key q = Cache.query_key ~scope:"authz" ~epoch:1 q in
  let pairs =
    [ (* value/attr boundary shifts *)
      ("attr/value shift", q [ rdn "ab" "c" ], q [ rdn "a" "bc" ]);
      (* one rdn vs two, same concatenation *)
      ("rdn split", q [ rdn "a" "bc=d" ], q [ rdn "a" "bc"; rdn "" "d" ]);
      (* '/' inside a value vs a structural '/' *)
      ("slash in value", q [ rdn "O" "G/OU=u1" ], q [ rdn "O" "G"; rdn "OU" "u1" ]);
      (* digits bleeding into a length prefix *)
      ("digit bleed", q [ rdn "a" "1" ], q [ rdn "a1" "" ]);
      (* empty components still occupy a position *)
      ("empty components", q [ rdn "" ""; rdn "" "" ], q [ rdn "" "" ]) ]
  in
  List.iter
    (fun (what, qa, qb) ->
      Alcotest.(check bool) what true (key qa <> key qb))
    pairs;
  (* requester/owner fields must not be confusable either *)
  let a = { (base_query ()) with Callout.requester = dn "/O=G"; job_owner = Some (dn "/O=H") } in
  let b = { (base_query ()) with Callout.requester = dn "/O=H"; job_owner = Some (dn "/O=G") } in
  Alcotest.(check bool) "requester/owner not interchangeable" true
    (Cache.query_key ~scope:"authz" ~epoch:1 a <> Cache.query_key ~scope:"authz" ~epoch:1 b)

(* Injectivity as a property: two random key tuples collide iff every
   component is equal. Pools are tiny so genuine equality happens often
   and both directions of the iff get exercised. *)
let qcheck_cache_key_injective =
  let gen_dn =
    QCheck.Gen.(
      let rdn =
        let* attr = oneofl [ ""; "O"; "CN"; "a"; "a1"; "ab" ] in
        let* value = oneofl [ ""; "G"; "1"; "b"; "bc"; "G/OU=u1"; "x\x00y"; "x\x01y" ] in
        return { Grid_gsi.Dn.attr; value }
      in
      list_size (int_range 0 3) rdn)
  in
  let gen_keyed =
    QCheck.Gen.(
      let* scope = oneofl [ "authz"; "jm" ] in
      let* epoch = int_range 0 2 in
      let* revision = opt (int_range 0 2) in
      let* requester = gen_dn in
      let* action =
        oneofl Grid_policy.Types.Action.[ Start; Cancel; Information; Signal ]
      in
      let* job_id = opt (oneofl [ "job-1"; "job-2"; "" ]) in
      let* jobtag = opt (oneofl [ "NFC"; "ADS"; "" ]) in
      let* job_owner = opt gen_dn in
      let* rsl =
        opt (map Grid_rsl.Parser.parse_clause_exn (oneofl [ "&(executable=x)"; "&(count=2)" ]))
      in
      return (scope, epoch, revision, requester, action, job_id, jobtag, job_owner, rsl))
  in
  let key (scope, epoch, revision, requester, action, job_id, jobtag, job_owner, rsl) =
    Cache.query_key ~scope ~epoch ?revision
      { Callout.requester; requester_credential = None; job_owner; action; job_id; rsl;
        jobtag }
  in
  QCheck.Test.make ~name:"query_key collides iff all components equal" ~count:2000
    (QCheck.make QCheck.Gen.(pair gen_keyed gen_keyed))
    (fun (a, b) -> key a = key b = (a = b))

let pinned test = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5EED; 421 |]) test

let test_cache_revision_keys_without_flushing () =
  (* A revision bump (a tuple write under the ReBAC PEP) must stop old
     entries being served — the key changes — without flushing them:
     rolling back to the same revision probes the original entry again,
     and no invalidations are counted. An epoch bump still flushes. *)
  let clock = ref 0.0 in
  let epoch = ref 1 in
  let revision = ref 10 in
  let backend, calls = Callout.counting Callout.permit_all in
  let cache =
    Cache.create ~capacity:8 ~ttl:100.0 ~epoch:(fun () -> !epoch)
      ~revision:(fun () -> !revision) ~now:(fun () -> !clock) ()
  in
  let pep = Cache.with_cache cache backend in
  let q = keyed_query ~job_id:"job-1" () in
  ignore (pep q);
  ignore (pep q);
  Alcotest.(check int) "cached within a revision" 1 (calls ());
  incr revision;
  ignore (pep q);
  Alcotest.(check int) "new revision misses" 2 (calls ());
  Alcotest.(check int) "no flush on revision change" 0 (Cache.invalidations cache);
  Alcotest.(check int) "old entry still resident" 2 (Cache.size cache);
  revision := 10;
  ignore (pep q);
  Alcotest.(check int) "same-revision entry probed again" 2 (calls ());
  incr epoch;
  ignore (pep q);
  Alcotest.(check bool) "epoch change flushes" true (Cache.invalidations cache > 0)

let () =
  Alcotest.run "grid_callout"
    [ ( "combinators",
        [ Alcotest.test_case "all conjunction" `Quick test_all_conjunction;
          Alcotest.test_case "first error wins" `Quick test_all_first_error_wins;
          Alcotest.test_case "counting" `Quick test_counting ] );
      ( "resilience",
        [ Alcotest.test_case "with_timeout" `Quick test_with_timeout;
          Alcotest.test_case "with_retry transient" `Quick test_with_retry_transient;
          Alcotest.test_case "with_retry exhaustion + denial" `Quick
            test_with_retry_exhaustion_and_no_retry_on_denial;
          Alcotest.test_case "breaker half-open recovery" `Quick
            test_breaker_opens_and_half_open_recovery;
          Alcotest.test_case "breaker failed probe reopens" `Quick
            test_breaker_failed_probe_reopens;
          Alcotest.test_case "degrade fail-open/closed" `Quick
            test_degrade_fail_closed_and_open;
          Alcotest.test_case "flaky deterministic" `Quick test_flaky_deterministic ] );
      ( "registry+config",
        [ Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
          Alcotest.test_case "config parse" `Quick test_config_parse;
          Alcotest.test_case "config errors" `Quick test_config_parse_errors;
          Alcotest.test_case "config roundtrip" `Quick test_config_roundtrip;
          Alcotest.test_case "resolution" `Quick test_config_resolution ] );
      ( "cache",
        [ Alcotest.test_case "hits + epoch invalidation" `Quick
            test_cache_hits_and_epoch_invalidation;
          Alcotest.test_case "denials cached" `Quick test_cache_caches_denials;
          Alcotest.test_case "ttl expiry" `Quick test_cache_ttl_expiry;
          Alcotest.test_case "expired credential bypasses" `Quick
            test_cache_expired_credential_bypasses;
          Alcotest.test_case "revoked credential bypasses" `Quick
            test_cache_revoked_credential_bypasses;
          Alcotest.test_case "system_error/fail-open never cached" `Quick
            test_cache_never_caches_system_error_or_fail_open;
          Alcotest.test_case "lru bound under churn" `Quick
            test_cache_lru_bound_under_churn;
          Alcotest.test_case "scopes partition keys" `Quick
            test_cache_scopes_partition_keys ] );
      ( "cache-keys",
        [ Alcotest.test_case "one differing component never collides" `Quick
            test_cache_key_single_component_never_collides;
          Alcotest.test_case "adversarial component boundaries" `Quick
            test_cache_key_adversarial_boundaries;
          pinned qcheck_cache_key_injective;
          Alcotest.test_case "revision keys without flushing" `Quick
            test_cache_revision_keys_without_flushing ] );
      ( "file-pep",
        [ Alcotest.test_case "decisions" `Quick test_file_pep_decisions;
          Alcotest.test_case "management" `Quick test_file_pep_management;
          Alcotest.test_case "unparseable fails closed" `Quick
            test_file_pep_of_texts_bad_policy_fails_closed;
          Alcotest.test_case "invalid fails closed" `Quick
            test_file_pep_of_texts_invalid_policy_fails_closed;
          Alcotest.test_case "of_texts good" `Quick test_file_pep_of_texts_good ] ) ]
