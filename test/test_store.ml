(* Crash-safety suite for the durable job-manager store: journal framing
   under truncated tails, torn final records and bit rot; the snapshot
   rename-before-truncate crash window; replay idempotence; and the
   headline recovery invariant — a restarted job manager answers the
   same management decisions as one that never crashed, including the
   third-party jobtag-authorized cancel and default-deny.

   Every randomized check also runs under pinned seeds so `dune runtest`
   is deterministic. *)

open Core

let disk ?faults ?(seed = 4242) () = Sim.Disk.create ?faults ~seed ()

let torn_always =
  Sim.Disk.Faults.profile ~torn_write:1.0 ()

(* --- Journal framing under corruption --------------------------------- *)

(* A partial final frame (the classic truncated tail): replay keeps the
   complete prefix and drops the half-written record cleanly. *)
let test_truncated_tail () =
  let d = disk () in
  let j = Store.Journal.create ~disk:d ~file:"t.journal" () in
  List.iter (Store.Journal.append j) [ "alpha"; "beta"; "gamma" ];
  let frame = Store.Journal.frame "delta" in
  Sim.Disk.append d ~file:"t.journal" (String.sub frame 0 (String.length frame - 3));
  ignore (Sim.Disk.sync d ~file:"t.journal");
  let r = Store.Journal.replay ~disk:d ~file:"t.journal" in
  Alcotest.(check (list string)) "prefix survives" [ "alpha"; "beta"; "gamma" ] r.Store.Journal.records;
  Alcotest.(check bool) "tail dropped" true (r.Store.Journal.dropped_bytes > 0);
  (match r.Store.Journal.corruption with
  | Some (Store.Journal.Truncated_frame _) -> ()
  | c ->
    Alcotest.failf "expected Truncated_frame, got %s"
      (match c with
      | None -> "clean tail"
      | Some c -> Store.Journal.corruption_to_string c))

(* A crash with torn_write=1.0 keeps a proper prefix of the unsynced
   final record: the synced records replay bit-exact, the torn one is
   dropped — never half-applied. *)
let test_torn_final_record () =
  List.iter
    (fun seed ->
      let d = disk ~faults:torn_always ~seed () in
      let j = Store.Journal.create ~sync:Store.Journal.Manual ~disk:d ~file:"t.journal" () in
      List.iter (Store.Journal.append j) [ "alpha"; "beta" ];
      Store.Journal.sync j;
      Store.Journal.append j "unsynced-final-record";
      Sim.Disk.crash d;
      let r = Store.Journal.replay ~disk:d ~file:"t.journal" in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: synced prefix survives" seed)
        [ "alpha"; "beta" ] r.Store.Journal.records;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: torn record dropped or vanished" seed)
        true
        (r.Store.Journal.dropped_bytes > 0 || r.Store.Journal.corruption = None))
    [ 1; 7; 42; 1000003 ]

(* Bit rot inside an interior record: everything before the flipped byte
   replays, the damaged record and everything after are dropped. *)
let test_bit_rot_checksum () =
  let d = disk () in
  let j = Store.Journal.create ~disk:d ~file:"t.journal" () in
  List.iter (Store.Journal.append j) [ "first"; "second"; "third" ];
  let first_len = String.length (Store.Journal.frame "first") in
  (* Flip a byte inside the *second* record's payload. *)
  Sim.Disk.corrupt d ~file:"t.journal" ~at:(first_len + 14);
  let r = Store.Journal.replay ~disk:d ~file:"t.journal" in
  Alcotest.(check (list string)) "clean prefix" [ "first" ] r.Store.Journal.records;
  (match r.Store.Journal.corruption with
  | Some (Store.Journal.Checksum_mismatch { offset }) ->
    Alcotest.(check int) "fails at record 2" first_len offset
  | c ->
    Alcotest.failf "expected Checksum_mismatch, got %s"
      (match c with
      | None -> "clean tail"
      | Some c -> Store.Journal.corruption_to_string c))

let test_replay_idempotent () =
  let d = disk ~faults:torn_always ~seed:99 () in
  let j = Store.Journal.create ~sync:Store.Journal.Manual ~disk:d ~file:"t.journal" () in
  List.iter (Store.Journal.append j) [ "a"; "b"; "c" ];
  Store.Journal.sync j;
  Store.Journal.append j "torn";
  Sim.Disk.crash d;
  let r1 = Store.Journal.replay ~disk:d ~file:"t.journal" in
  let r2 = Store.Journal.replay ~disk:d ~file:"t.journal" in
  Alcotest.(check (list string)) "same records" r1.Store.Journal.records r2.Store.Journal.records;
  Alcotest.(check int) "same valid bytes" r1.Store.Journal.valid_bytes r2.Store.Journal.valid_bytes;
  Alcotest.(check int) "same dropped bytes" r1.Store.Journal.dropped_bytes r2.Store.Journal.dropped_bytes

(* --- Snapshot crash windows ------------------------------------------- *)

(* Crash mid-snapshot: a leftover [.snapshot.tmp] (possibly garbage) must
   be discarded, and recovery falls back to the previous snapshot plus
   the untruncated journal. *)
let test_crash_during_snapshot_fallback () =
  let d = disk () in
  let s = Store.Store.create ~disk:d ~name:"jm" () in
  let live = ref [] in
  Store.Store.set_snapshot_source s (fun () -> List.rev !live);
  let add r =
    live := r :: !live;
    Store.Store.append s r
  in
  List.iter add [ "one"; "two" ];
  Store.Store.snapshot_now s;
  List.iter add [ "three"; "four" ];
  (* A half-written snapshot attempt that never reached the rename. *)
  Sim.Disk.append d ~file:(Store.Store.snapshot_file s ^ ".tmp") "garbage-partial-snapshot";
  Store.Store.crash s;
  let r = Store.Store.recover s in
  Alcotest.(check bool) "tmp discarded" true r.Store.Store.tmp_discarded;
  Alcotest.(check bool) "tmp gone from disk" false
    (Sim.Disk.exists d ~file:(Store.Store.snapshot_file s ^ ".tmp"));
  Alcotest.(check (list string)) "old snapshot intact" [ "one"; "two" ]
    r.Store.Store.snapshot_records;
  Alcotest.(check (list string)) "journal since snapshot" [ "three"; "four" ]
    r.Store.Store.journal_records

(* Compaction keeps the recover-time view equal to the full history:
   snapshot records followed by post-snapshot journal records. *)
let test_snapshot_compaction_roundtrip () =
  let d = disk () in
  let s = Store.Store.create ~snapshot_every:3 ~disk:d ~name:"jm" () in
  let live = ref [] in
  Store.Store.set_snapshot_source s (fun () -> List.rev !live);
  let all = List.init 10 (fun i -> Printf.sprintf "record-%02d" i) in
  List.iter
    (fun r ->
      live := r :: !live;
      Store.Store.append s r)
    all;
  Alcotest.(check bool) "compaction happened" true (Store.Store.snapshots_taken s > 0);
  Store.Store.crash s;
  let r = Store.Store.recover s in
  Alcotest.(check (list string)) "snapshot + journal = history" all
    (r.Store.Store.snapshot_records @ r.Store.Store.journal_records);
  Alcotest.(check (list (pair string string))) "verify clean" []
    (List.filter_map
       (fun c ->
         Option.map
           (fun corruption -> (c.Store.Store.check_file, Store.Journal.corruption_to_string corruption))
           c.Store.Store.check_corruption)
       (Store.Store.verify s))

(* Property: for any payload set and snapshot interval, what recovery
   reads back (snapshot entries then journal records) is exactly the
   append history, in order — compaction never loses or reorders. *)
let qcheck_store_preserves_history =
  QCheck.Test.make ~name:"recover returns full append history" ~count:60
    QCheck.(triple small_int (int_range 1 5) (small_list (string_of_size Gen.small_nat)))
    (fun (seed, snapshot_every, payloads) ->
      let d = disk ~seed:(seed + 1) () in
      let s = Store.Store.create ~snapshot_every ~disk:d ~name:"jm" () in
      let live = ref [] in
      Store.Store.set_snapshot_source s (fun () -> List.rev !live);
      List.iter
        (fun r ->
          live := r :: !live;
          Store.Store.append s r)
        payloads;
      Store.Store.crash s;
      let r = Store.Store.recover s in
      r.Store.Store.snapshot_records @ r.Store.Store.journal_records = payloads)

(* --- Job-table recovery equals the live table ------------------------- *)

let table resource =
  List.map
    (fun jmi ->
      ( Gram.Job_manager.contact jmi,
        Gsi.Dn.to_string (Gram.Job_manager.owner jmi),
        Gram.Job_manager.jobtag jmi,
        Gram.Job_manager.account jmi ))
    (Gram.Resource.jobs resource)
  |> List.sort compare

let workload_profiles (w : Fusion.world) =
  [ { Workload.identity = Gram.Client.identity w.Fusion.bo;
      rsl_templates =
        [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=30)" ];
      weight = 1 };
    { Workload.identity = Gram.Client.identity w.Fusion.kate;
      rsl_templates =
        [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=60)" ];
      weight = 1 } ]

let recovered_table_matches_live ~jobs ~seed ~snapshot_every =
  let w = Fusion.build ~nodes:8 ~cpus_per_node:8 ~store:true ?snapshot_every () in
  ignore
    (Workload.run
       ~engine:(Testbed.engine w.Fusion.testbed)
       ~resource:w.Fusion.resource ~profiles:(workload_profiles w)
       { Workload.default_config with Workload.job_count = jobs; arrival_rate = 15.0; seed });
  let before = table w.Fusion.resource in
  Gram.Resource.crash w.Fusion.resource;
  Alcotest.(check int) "crash empties the job table" 0
    (List.length (Gram.Resource.jobs w.Fusion.resource));
  let summary = Gram.Resource.recover w.Fusion.resource in
  let after = table w.Fusion.resource in
  (before = after, before, after, summary)

let test_recovery_rebuilds_job_table () =
  List.iter
    (fun (jobs, seed, snapshot_every) ->
      let equal, before, _, summary = recovered_table_matches_live ~jobs ~seed ~snapshot_every in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d seed=%d: recovered table = live table" jobs seed)
        true equal;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d seed=%d: all jobs restored" jobs seed)
        (List.length before) summary.Gram.Resource.jobs_restored;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d seed=%d: no decode failures" jobs seed)
        0 summary.Gram.Resource.decode_failures)
    [ (12, 3, None); (25, 7, Some 5); (40, 42, Some 8) ]

let qcheck_recovery_equals_live_table =
  QCheck.Test.make ~name:"replay(snapshot+journal) = live job table" ~count:8
    QCheck.(pair (int_range 1 20) (int_range 0 1000))
    (fun (jobs, seed) ->
      let snapshot_every = if seed mod 2 = 0 then Some ((seed mod 6) + 2) else None in
      let equal, _, _, _ = recovered_table_matches_live ~jobs ~seed ~snapshot_every in
      equal)

(* --- Decision equivalence across a crash ------------------------------ *)

(* The paper's Section 4.2 requirement, end to end: every management
   decision a restarted job manager makes — owner cancel, third-party
   cancel authorized by a jobtag clause, admin status read, unknown job,
   and the default-deny for a requester with no grant — is identical to
   the uncrashed run. Pinned seeds; the worlds are rebuilt from scratch
   for each arm so nothing leaks between them. *)
let scripted_decisions ~crash =
  let w = Fusion.build ~store:true ~snapshot_every:4 () in
  let submit client rsl =
    match Gram.Client.submit_sync client ~rsl with
    | Ok r -> Some r.Gram.Protocol.job_contact
    | Error _ -> None
  in
  let kate_job =
    submit w.Fusion.kate
      "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=100000)"
  in
  let bo_job =
    submit w.Fusion.bo
      "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=100000)"
  in
  if crash then begin
    Gram.Resource.crash w.Fusion.resource;
    let s = Gram.Resource.recover w.Fusion.resource in
    Alcotest.(check int) "both live jobs restored" 2 s.Gram.Resource.jobs_restored
  end;
  let manage client contact action =
    match contact with
    | None -> "no-job"
    | Some contact -> begin
      match Gram.Client.manage_sync client ~contact action with
      | Ok _ -> "ok"
      | Error e -> Gram.Protocol.management_error_to_string e
    end
  in
  [ manage w.Fusion.bo kate_job Gram.Protocol.Cancel;  (* default-deny: no grant *)
    manage w.Fusion.kate bo_job Gram.Protocol.Status;  (* admin tag grant *)
    manage w.Fusion.vo_admin (Some "jmi-none") Gram.Protocol.Cancel;  (* unknown job *)
    manage w.Fusion.vo_admin kate_job Gram.Protocol.Cancel;  (* third-party jobtag ok *)
    manage w.Fusion.bo bo_job Gram.Protocol.Cancel ]  (* owner ok *)

let test_decision_equivalence_after_crash () =
  let uncrashed = scripted_decisions ~crash:false in
  let recovered = scripted_decisions ~crash:true in
  Alcotest.(check (list string)) "decision sequences identical" uncrashed recovered;
  (* The sequence itself is part of the contract: a silently-permitted
     bo->kate cancel or a lost jobtag grant would still be "equal" if
     both arms regressed together. *)
  Alcotest.(check bool) "bo -> kate cancel denied" true
    (String.length (List.nth uncrashed 0) > 2
    && not (String.equal (List.nth uncrashed 0) "ok"));
  Alcotest.(check string) "kate admin status ok" "ok" (List.nth uncrashed 1);
  Alcotest.(check bool) "unknown job refused" true
    (not (String.equal (List.nth uncrashed 2) "ok"));
  Alcotest.(check string) "vo_admin third-party cancel ok" "ok" (List.nth uncrashed 3);
  Alcotest.(check string) "owner cancel ok" "ok" (List.nth uncrashed 4)

(* Recovery journals into the audit trail and bumps the metrics. *)
let test_recovery_observable () =
  let w = Fusion.build ~store:true () in
  ignore
    (Gram.Client.submit_sync w.Fusion.kate
       ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=100000)");
  Gram.Resource.crash w.Fusion.resource;
  ignore (Gram.Resource.recover w.Fusion.resource);
  let recovery_records =
    Audit.Audit.by_kind (Gram.Resource.audit w.Fusion.resource) Audit.Audit.Recovery
  in
  Alcotest.(check int) "crash + recovery audited" 2 (List.length recovery_records);
  let metrics = Obs.Obs.metrics (Gram.Resource.obs w.Fusion.resource) in
  let counter ?labels name = Obs.Metrics.counter_value metrics ?labels name in
  Alcotest.(check bool) "crash counted" true
    (counter ~labels:[ ("resource", "fusion-site") ] "resource_crashes_total" >= 1.0);
  Alcotest.(check bool) "recovery counted" true
    (counter ~labels:[ ("resource", "fusion-site") ] "resource_recoveries_total" >= 1.0);
  let journal_file =
    match Gram.Resource.store w.Fusion.resource with
    | Some store -> Store.Store.journal_file store
    | None -> Alcotest.fail "world built without a store"
  in
  Alcotest.(check bool) "appends counted" true
    (counter ~labels:[ ("file", journal_file) ] "store_appends_total" >= 1.0)

(* --- Persist codec ----------------------------------------------------- *)

let roundtrip event =
  match Gram.Persist.decode (Gram.Persist.encode event) with
  | Ok e -> e
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_persist_roundtrip () =
  let owner = Gsi.Dn.parse "/O=Grid/O=Demo/CN=Alice Doe" in
  let entry =
    { Gram.Persist.contact = "jmi-000042";
      owner;
      account = "alice";
      jobtag = Some "NFC";
      rsl = "&(executable=TRANSP)(count=4)";
      rsl_fingerprint = String.make 64 'a';
      policy_epoch = Some 3;
      limits =
        { Accounts.Sandbox.max_cpus = Some 4;
          max_memory_mb = None;
          max_walltime = Some 3600.0;
          allowed_directories = [ "/sandbox/test" ];
          allowed_executables = [ "TRANSP"; "a=b,c" ] };
      lrm_job = Some "lrm-7";
      created_at = 12.5 }
  in
  (match roundtrip (Gram.Persist.Job_created entry) with
  | Gram.Persist.Job_created e ->
    Alcotest.(check string) "contact" entry.Gram.Persist.contact e.Gram.Persist.contact;
    Alcotest.(check bool) "owner" true (Gsi.Dn.equal owner e.Gram.Persist.owner);
    Alcotest.(check (option string)) "jobtag" (Some "NFC") e.Gram.Persist.jobtag;
    Alcotest.(check (option int)) "epoch" (Some 3) e.Gram.Persist.policy_epoch;
    Alcotest.(check (list string)) "executables with separators" [ "TRANSP"; "a=b,c" ]
      e.Gram.Persist.limits.Accounts.Sandbox.allowed_executables
  | _ -> Alcotest.fail "wrong constructor");
  (match
     roundtrip
       (Gram.Persist.Management
          { contact = "jmi-000042"; requester = owner; action = "cancel";
            outcome = "denied"; at = 99.0 })
   with
  | Gram.Persist.Management { outcome; _ } ->
    Alcotest.(check string) "outcome" "denied" outcome
  | _ -> Alcotest.fail "wrong constructor");
  match Gram.Persist.decode "kind=nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus kind must not decode"

(* Rebuild is idempotent under the rename-before-truncate window: the
   same creation records seen in both snapshot and journal collapse to
   one entry per contact. *)
let test_rebuild_idempotent () =
  let owner = Gsi.Dn.parse "/O=Grid/O=Demo/CN=Alice" in
  let entry contact =
    Gram.Persist.encode
      (Gram.Persist.Job_created
         { Gram.Persist.contact;
           owner;
           account = "alice";
           jobtag = None;
           rsl = "&(executable=simulate)";
           rsl_fingerprint = String.make 64 '0';
           policy_epoch = None;
           limits = Accounts.Sandbox.unrestricted;
           lrm_job = None;
           created_at = 0.0 })
  in
  let records = [ entry "jmi-1"; entry "jmi-2" ] in
  let r = Gram.Persist.rebuild ~snapshot:records ~journal:records in
  Alcotest.(check int) "deduplicated by contact" 2 (List.length r.Gram.Persist.entries);
  Alcotest.(check int) "all records decoded" 4 r.Gram.Persist.events;
  Alcotest.(check int) "no failures" 0 r.Gram.Persist.decode_failures;
  Alcotest.(check (list string)) "creation order kept" [ "jmi-1"; "jmi-2" ]
    (List.map (fun (e : Gram.Persist.job_entry) -> e.Gram.Persist.contact) r.Gram.Persist.entries)

let () =
  Alcotest.run "grid_store"
    [ ( "journal",
        [ Alcotest.test_case "truncated tail" `Quick test_truncated_tail;
          Alcotest.test_case "torn final record" `Quick test_torn_final_record;
          Alcotest.test_case "bit rot checksum" `Quick test_bit_rot_checksum;
          Alcotest.test_case "replay idempotent" `Quick test_replay_idempotent ] );
      ( "snapshot",
        [ Alcotest.test_case "crash during snapshot falls back" `Quick
            test_crash_during_snapshot_fallback;
          Alcotest.test_case "compaction roundtrip" `Quick test_snapshot_compaction_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_store_preserves_history ] );
      ( "recovery",
        [ Alcotest.test_case "rebuilds job table" `Quick test_recovery_rebuilds_job_table;
          QCheck_alcotest.to_alcotest qcheck_recovery_equals_live_table;
          Alcotest.test_case "decision equivalence after crash" `Quick
            test_decision_equivalence_after_crash;
          Alcotest.test_case "recovery observable" `Quick test_recovery_observable ] );
      ( "persist",
        [ Alcotest.test_case "codec roundtrip" `Quick test_persist_roundtrip;
          Alcotest.test_case "rebuild idempotent" `Quick test_rebuild_idempotent ] ) ]
