(* The fleet's differential test-suite.

   Four sections, each pinning a federation-level promise to the
   single-resource ground truth:

   - differential: a 1-member fleet reached through the broker must be
     decision- AND reason-equivalent to the plain single-resource Fusion
     world for identical submission scripts and management matrices,
     under a pinned seed matrix (1/7/42);
   - cross-resource jobtag: a jobtag granted at no particular site
     authorizes third-party management of tagged jobs wherever the fleet
     placed them, and the routed answer equals the owning member's local
     decision;
   - population: the subject synthesizer is a pure function of
     (seed, rank), zipfian in the documented shape, and O(1) resident;
   - broker churn: stale, deregistered and partitioned members are never
     selected, and the selection sequence is reproducible per seed. *)

open Core

let seeds = [ 1; 7; 42 ]
let population_size = 2_000

(* --- Outcome normalization ---------------------------------------------

   Both placement lanes collapse to one label: the plain client answers
   with a [submit_error]; the brokered lane wraps the very same error
   string as the single candidate's failure (see [Mds.Broker.submit]). *)

let submit_label = function
  | Ok (r : Gram.Protocol.submit_reply) ->
    "accepted as " ^ r.Gram.Protocol.submitted_as
  | Error e -> "refused: " ^ Gram.Protocol.submit_error_to_string e

let fleet_submit_label = function
  | Ok (_site, (r : Gram.Protocol.submit_reply)) ->
    "accepted as " ^ r.Gram.Protocol.submitted_as
  | Error (Mds.Broker.All_failed [ f ]) -> "refused: " ^ f.Mds.Broker.error
  | Error e -> "refused: " ^ Mds.Broker.error_to_string e

let replace_all ~sub ~by s =
  let n = String.length sub in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    if !i + n <= String.length s && String.sub s !i n = sub then begin
      Buffer.add_string buf by;
      i := !i + n
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Management answers may quote the job contact; the two worlds mint
   contacts from independent id streams, so scrub it before comparing. *)
let manage_label ~contact result =
  let raw =
    match result with
    | Ok Gram.Protocol.Ack -> "ack"
    | Ok (Gram.Protocol.Job_status st) ->
      "status " ^ Gram.Protocol.job_state_to_string st.Gram.Protocol.state
    | Error e -> "denied: " ^ Gram.Protocol.management_error_to_string e
  in
  replace_all ~sub:contact ~by:"<job>" raw

(* --- The pinned submission script -------------------------------------

   Five Figure 3 cast entries covering both permit and deny branches of
   both policy sources, then a seeded zipfian slice of the population.
   The script is derived from a probe population with the same
   (seed, size) as each world's own, so ranks resolve to the same DNs
   everywhere. *)

type who =
  | Cast of string
  | Rank of int

let script ~seed =
  let probe = Population.create ~seed ~size:population_size in
  let rng = Util.Rng.create ~seed in
  let cast =
    [ (Cast Fusion.bo_liu,
       "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)");
      (Cast Fusion.bo_liu,
       "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)");
      (Cast Fusion.kate_keahey,
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)");
      (Cast Fusion.kate_keahey,
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(queue=reserved)");
      (Cast Fusion.outsider, "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)")
    ]
  in
  cast
  @ List.init 24 (fun _ ->
        let rank = Population.sample probe rng in
        (Rank rank, Population.template probe rng rank))

(* Both worlds advertise a [reserved] queue so the (queue=reserved)
   entry reaches the PEP everywhere: without it the broker would prune
   the job at the directory ("no resource matches") while the plain
   lane denies at the resource-owner policy — a reason divergence with
   the same verdict. The PEPs stay authoritative either way. *)
let queues =
  Lrm.Lrm.default_queues
  @ [ { Lrm.Lrm.queue_name = "reserved"; priority = 20; max_walltime = None } ]

let identity_for tb pop = function
  | Cast dn -> Testbed.add_user tb dn
  | Rank rank -> Population.identity pop ~ca:(Testbed.ca tb) ~now:(Testbed.now tb) rank

(* Kate's accepted NFC job is script entry 2 in both worlds. *)
let nfc_entry = 2

let plain_results ~seed entries =
  let pop = Population.create ~seed ~size:population_size in
  let w = Fusion.build ~nodes:16 ~queues ~population:pop () in
  let tb = w.Fusion.testbed in
  let outcomes =
    List.map
      (fun (who, rsl) ->
        let user = identity_for tb pop who in
        let client = Testbed.client tb ~user ~resource:w.Fusion.resource in
        let r = Gram.Client.submit_sync client ~rsl in
        let contact =
          match r with Ok ok -> Some ok.Gram.Protocol.job_contact | Error _ -> None
        in
        (submit_label r, contact))
      entries
  in
  (w, outcomes)

let fleet_results ~seed entries =
  let pop = Population.create ~seed ~size:population_size in
  let w = Fusion.build ~fleet:1 ~nodes:16 ~queues ~population:pop ~broker_seed:seed () in
  let fleet = Option.get w.Fusion.fleet in
  let tb = w.Fusion.testbed in
  let outcomes =
    List.map
      (fun (who, rsl) ->
        let identity = identity_for tb pop who in
        let r = Fleet.submit_sync fleet ~identity ~rsl in
        let contact =
          match r with
          | Ok (_, ok) -> Some ok.Gram.Protocol.job_contact
          | Error _ -> None
        in
        (fleet_submit_label r, contact))
      entries
  in
  (fleet, outcomes)

(* Denied requesters probe first (no state change), then the owner works
   the job over, then the VO admin exercises the canceled-job paths —
   the same order in both worlds, so errors stay comparable. *)
let requesters =
  [ ("bo", Fusion.bo_liu);
    ("outsider", Fusion.outsider);
    ("kate", Fusion.kate_keahey);
    ("vo-admin", Fusion.admin) ]

let actions =
  [ ("status", Gram.Protocol.Status);
    ("suspend", Gram.Protocol.Signal Gram.Protocol.Suspend);
    ("resume", Gram.Protocol.Signal Gram.Protocol.Resume);
    ("cancel", Gram.Protocol.Cancel) ]

let test_differential seed () =
  let entries = script ~seed in
  let wp, plain = plain_results ~seed entries in
  let fleet, fleeted = fleet_results ~seed entries in
  List.iteri
    (fun i ((a, _), (b, _)) ->
      Alcotest.(check string) (Printf.sprintf "seed %d entry %d" seed i) a b)
    (List.combine plain fleeted);
  (* the script must exercise both branches, or equivalence proves
     nothing *)
  Alcotest.(check bool) "script has accepts" true
    (List.exists (fun (l, _) -> String.starts_with ~prefix:"accepted" l) plain);
  Alcotest.(check bool) "script has refusals" true
    (List.exists (fun (l, _) -> String.starts_with ~prefix:"refused" l) plain);
  (* management matrix over kate's NFC job *)
  let contact_p = Option.get (snd (List.nth plain nfc_entry)) in
  let contact_f = Option.get (snd (List.nth fleeted nfc_entry)) in
  List.iter
    (fun (rq_name, rq) ->
      let requester = Gsi.Dn.parse rq in
      List.iter
        (fun (act_name, action) ->
          let a =
            Gram.Resource.manage_direct wp.Fusion.resource ~requester
              ~contact:contact_p action
            |> manage_label ~contact:contact_p
          in
          let b =
            Fleet.manage_sync fleet ~requester ~contact:contact_f action
            |> manage_label ~contact:contact_f
          in
          Alcotest.(check string)
            (Printf.sprintf "seed %d manage %s/%s" seed rq_name act_name)
            a b)
        actions)
    requesters

(* --- Cross-resource third-party management ----------------------------- *)

let test_cross_resource_jobtag seed () =
  let pop = Population.create ~seed ~size:population_size in
  let w = Fusion.build ~fleet:3 ~population:pop ~broker_seed:seed () in
  let fleet = Option.get w.Fusion.fleet in
  let tb = w.Fusion.testbed in
  let kate = Testbed.add_user tb Fusion.kate_keahey in
  let jobs =
    List.init 9 (fun i ->
        match
          Fleet.submit_sync fleet ~identity:kate
            ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"
        with
        | Ok (site, r) -> (site, r.Gram.Protocol.job_contact)
        | Error e ->
          Alcotest.failf "seed %d job %d unplaced: %s" seed i
            (Mds.Broker.error_to_string e))
  in
  let sites = List.sort_uniq compare (List.map fst jobs) in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: jobs spread over >= 2 members (got %d)" seed
       (List.length sites))
    true
    (List.length sites >= 2);
  (* the VO admin's NFC manage grant, held at no particular site,
     authorizes management wherever the broker placed the job — and the
     routed answer is the owning member's own *)
  let admin = Gsi.Dn.parse Fusion.admin in
  List.iter
    (fun (site, contact) ->
      let member = Option.get (Fleet.member_named fleet site) in
      let local =
        Gram.Resource.manage_direct (Fleet.member_resource member) ~requester:admin
          ~contact Gram.Protocol.Status
      in
      let routed = Fleet.manage_sync fleet ~requester:admin ~contact Gram.Protocol.Status in
      Alcotest.(check string)
        (Printf.sprintf "routed = local at %s" site)
        (manage_label ~contact local)
        (manage_label ~contact routed);
      match routed with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "admin jobtag manage refused at %s: %s" site
          (Gram.Protocol.management_error_to_string e))
    jobs;
  (* the denial is identical too: the outsider holds no jobtag anywhere *)
  let outsider = Gsi.Dn.parse Fusion.outsider in
  let site, contact = List.hd jobs in
  let member = Option.get (Fleet.member_named fleet site) in
  let local =
    Gram.Resource.manage_direct (Fleet.member_resource member) ~requester:outsider
      ~contact Gram.Protocol.Cancel
  in
  let routed = Fleet.manage_sync fleet ~requester:outsider ~contact Gram.Protocol.Cancel in
  Alcotest.(check string) "outsider denied identically" (manage_label ~contact local)
    (manage_label ~contact routed);
  match routed with
  | Error (Gram.Protocol.Not_authorized _) -> ()
  | Error e ->
    Alcotest.failf "wrong denial class: %s" (Gram.Protocol.management_error_to_string e)
  | Ok _ -> Alcotest.fail "outsider must not cancel"

(* --- Population synthesizer properties --------------------------------- *)

let qcheck_dn_deterministic =
  QCheck.Test.make ~name:"dn is a pure function of (seed, rank)" ~count:200
    QCheck.(pair (int_range 0 1000) (int_range 0 999))
    (fun (seed, rank) ->
      let p1 = Population.create ~seed ~size:1_000 in
      let p2 = Population.create ~seed ~size:1_000 in
      Population.dn p1 rank = Population.dn p2 rank
      && Population.organization p1 = Population.organization p2
      && Population.jobtag p1 rank = Population.jobtag p2 rank)

let qcheck_dn_distinct =
  QCheck.Test.make ~name:"distinct ranks get distinct DNs" ~count:200
    QCheck.(triple (int_range 0 1000) (int_range 0 999) (int_range 0 999))
    (fun (seed, r1, r2) ->
      QCheck.assume (r1 <> r2);
      let p = Population.create ~seed ~size:1_000 in
      Population.dn p r1 <> Population.dn p r2)

let qcheck_sample_in_range =
  QCheck.Test.make ~name:"sample stays in [0, size)" ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 1 10_000))
    (fun (seed, size) ->
      let p = Population.create ~seed ~size in
      let rng = Util.Rng.create ~seed in
      List.for_all
        (fun r -> 0 <= r && r < size)
        (List.init 100 (fun _ -> Population.sample p rng)))

(* Zipf(s=1) over 10^5 subjects: P(rank < 10) = ln 11 / ln(N+1) ~ 0.21,
   so a 10-wide head band must hold a fifth of the stream while the
   distinct-subject count stays far beyond any per-member cache. *)
let test_zipf_shape seed () =
  let size = 100_000 in
  let draws = 10_000 in
  let p = Population.create ~seed ~size in
  let rng = Util.Rng.create ~seed:(seed + 1) in
  let counts = Hashtbl.create 1024 in
  for _ = 1 to draws do
    let r = Population.sample p rng in
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  done;
  let count r = Option.value ~default:0 (Hashtbl.find_opt counts r) in
  let band lo n =
    List.fold_left (fun acc i -> acc + count (lo + i)) 0 (List.init n Fun.id)
  in
  let head_freq = float_of_int (band 0 10) /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d head mass %.3f within [0.15, 0.30]" seed head_freq)
    true
    (head_freq >= 0.15 && head_freq <= 0.30);
  Alcotest.(check bool) "rank 0 dominates a 10-wide band at rank 1000" true
    (count 0 > band 1_000 10);
  Alcotest.(check bool)
    (Printf.sprintf "seed %d distinct subjects %d > 1500" seed (Hashtbl.length counts))
    true
    (Hashtbl.length counts > 1_500)

(* The synthesizer holds no per-user state: drawing and rendering a
   subject allocates a bounded number of words, and creating a
   million-subject population costs the same as a hundred-subject one. *)
let test_sampler_allocation_ceiling () =
  let p = Population.create ~seed:42 ~size:1_000_000 in
  let rng = Util.Rng.create ~seed:7 in
  ignore (Sys.opaque_identity (Population.dn p (Population.sample p rng)));
  let iters = 20_000 in
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (Population.dn p (Population.sample p rng)))
  done;
  let per_iter = (Gc.minor_words () -. before) /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f words per draw+render under the 512 ceiling" per_iter)
    true (per_iter <= 512.0)

let create_words size =
  let before = Gc.minor_words () in
  ignore (Sys.opaque_identity (Population.create ~seed:11 ~size));
  Gc.minor_words () -. before

let test_create_independent_of_size () =
  let small = create_words 100 in
  let big = create_words 1_000_000 in
  Alcotest.(check bool)
    (Printf.sprintf "create cost: %.0f words at 10^2 vs %.0f at 10^6" small big)
    true
    (Float.abs (big -. small) <= 64.0)

(* --- Broker selection under churn --------------------------------------- *)

let job_of rsl =
  match Rsl.Job.of_string rsl with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad rsl: %s" (Rsl.Job.error_to_string e)

let plan_names broker ~job = List.map Gram.Resource.name (Mds.Broker.plan broker ~job)

let permissive_site tb ~name ~nodes ?network ?request_timeout () =
  let gridmap = Gsi.Gridmap.parse (Printf.sprintf "%S kate\n" Fusion.kate_keahey) in
  Testbed.make_resource tb ~name ~nodes ~cpus_per_node:4 ~gridmap ?network
    ?request_timeout
    ~backend:(Custom Callout.Callout.permit_all)

let test_broker_skips_stale_and_deregistered () =
  let tb = Testbed.create () in
  let engine = Testbed.engine tb in
  let a = permissive_site tb ~name:"site-a" ~nodes:2 () in
  let b = permissive_site tb ~name:"site-b" ~nodes:2 () in
  let dir = Mds.Directory.create ~ttl:60.0 engine in
  let _pa = Mds.Provider.attach ~period:20.0 ~site:"east" ~directory:dir a in
  let pb = Mds.Provider.attach ~period:20.0 ~site:"west" ~directory:dir b in
  let broker = Mds.Broker.create ~seed:42 ~directory:dir [ a; b ] in
  let job = job_of "&(executable=x)" in
  Alcotest.(check (list string))
    "both fresh members planned" [ "site-a"; "site-b" ]
    (List.sort compare (plan_names broker ~job));
  (* b's provider stops: once past the TTL it must never be selected *)
  Mds.Provider.stop pb;
  Grid_sim.Engine.run_until engine 200.0;
  for _ = 1 to 10 do
    Alcotest.(check (list string)) "stale member never selected" [ "site-a" ]
      (plan_names broker ~job)
  done;
  (* deregistration removes the last member: plans empty, submit refuses *)
  Mds.Directory.deregister dir "site-a";
  Alcotest.(check (list string)) "deregistered member never selected" []
    (plan_names broker ~job);
  let kate = Testbed.add_user tb Fusion.kate_keahey in
  match Mds.Broker.submit broker ~identity:kate ~rsl:"&(executable=x)" with
  | Error Mds.Broker.No_candidates -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Mds.Broker.error_to_string e)
  | Ok (site, _) -> Alcotest.failf "selected vanished member %s" site

let test_broker_opens_breaker_on_partition () =
  let tb = Testbed.create () in
  let engine = Testbed.engine tb in
  let far_net = Sim.Network.create ~seed:3 engine in
  let far =
    permissive_site tb ~name:"far" ~nodes:8 ~network:far_net ~request_timeout:0.25 ()
  in
  let near = permissive_site tb ~name:"near" ~nodes:1 () in
  let dir = Mds.Directory.create engine in
  let _pf = Mds.Provider.attach ~period:30.0 ~site:"x" ~directory:dir far in
  let _pn = Mds.Provider.attach ~period:30.0 ~site:"x" ~directory:dir near in
  let broker =
    Mds.Broker.create ~seed:1 ~breaker_threshold:2 ~breaker_cooldown:3600.0
      ~directory:dir [ far; near ]
  in
  let job = job_of "&(executable=x)" in
  (match plan_names broker ~job with
  | "far" :: _ -> ()
  | plan -> Alcotest.failf "expected far ranked first, got [%s]" (String.concat "; " plan));
  Sim.Network.partition far_net ~link:"client->resource";
  let kate = Testbed.add_user tb Fusion.kate_keahey in
  (* two submissions time out against far and fall through to near,
     tripping far's breaker *)
  for i = 1 to 2 do
    match Mds.Broker.submit broker ~identity:kate ~rsl:"&(executable=x)" with
    | Ok (site, _) -> Alcotest.(check string) (Printf.sprintf "fall-through %d" i) "near" site
    | Error e -> Alcotest.failf "fall-through failed: %s" (Mds.Broker.error_to_string e)
  done;
  (match Mds.Broker.breaker_state broker "far" with
  | Some Util.Retry.Breaker.Open -> ()
  | Some st -> Alcotest.failf "breaker %s, not open" (Util.Retry.Breaker.state_to_string st)
  | None -> Alcotest.fail "far unknown to the broker");
  (* while open, the partitioned member is planned around entirely *)
  for _ = 1 to 5 do
    Alcotest.(check (list string)) "partitioned member skipped" [ "near" ]
      (plan_names broker ~job)
  done

let test_broker_selection_reproducible_per_seed () =
  let sequence seed =
    let tb = Testbed.create () in
    let engine = Testbed.engine tb in
    let sites =
      List.init 3 (fun i -> permissive_site tb ~name:(Printf.sprintf "eq-%d" i) ~nodes:2 ())
    in
    let dir = Mds.Directory.create engine in
    List.iter
      (fun r -> ignore (Mds.Provider.attach ~period:30.0 ~site:"x" ~directory:dir r))
      sites;
    let broker = Mds.Broker.create ~seed ~directory:dir sites in
    let job = job_of "&(executable=x)" in
    List.init 8 (fun _ -> plan_names broker ~job)
  in
  List.iter
    (fun seed ->
      let s1 = sequence seed in
      let s2 = sequence seed in
      Alcotest.(check (list (list string)))
        (Printf.sprintf "seed %d plan sequence reproducible" seed)
        s1 s2;
      (* equal-capacity ties rotate from one plan to the next *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d ties rotate across plans" seed)
        true
        (List.length (List.sort_uniq compare s1) >= 2))
    seeds;
  Alcotest.(check bool) "seeds differentiate the rotation" true
    (sequence 1 <> sequence 42)

let () =
  Alcotest.run "grid_fleet"
    [ ( "differential",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick
              (test_differential seed))
          seeds );
      ( "cross-resource jobtag",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick
              (test_cross_resource_jobtag seed))
          seeds );
      ( "population",
        [ QCheck_alcotest.to_alcotest qcheck_dn_deterministic;
          QCheck_alcotest.to_alcotest qcheck_dn_distinct;
          QCheck_alcotest.to_alcotest qcheck_sample_in_range ]
        @ List.map
            (fun seed ->
              Alcotest.test_case (Printf.sprintf "zipf shape seed %d" seed) `Quick
                (test_zipf_shape seed))
            seeds
        @ [ Alcotest.test_case "sampler allocation ceiling" `Quick
              test_sampler_allocation_ceiling;
            Alcotest.test_case "create cost independent of size" `Quick
              test_create_independent_of_size ] );
      ( "broker churn",
        [ Alcotest.test_case "stale and deregistered members" `Quick
            test_broker_skips_stale_and_deregistered;
          Alcotest.test_case "partitioned member trips breaker" `Quick
            test_broker_opens_breaker_on_partition;
          Alcotest.test_case "selection reproducible per seed" `Quick
            test_broker_selection_reproducible_per_seed ] ) ]
