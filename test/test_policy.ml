(* Tests for grid_policy: Figure 3 parsing, the paper's narrated decision
   scenarios, requirement semantics, NULL/self, multi-source combination,
   and properties (default deny, grant monotonicity). *)

open Grid_policy

let dn = Grid_gsi.Dn.parse

let start ~who ~rsl =
  Types.start_request ~subject:(dn who) ~job:(Grid_rsl.Parser.parse_clause_exn rsl)

let manage ~who ~action ~owner ~tag =
  Types.management_request ~subject:(dn who) ~action ~jobowner:(dn owner) ~jobtag:tag

let check_decision msg expected decision =
  Alcotest.(check string) msg expected (Eval.decision_to_string decision)

let permits msg policy request =
  Alcotest.(check bool) msg true (Eval.is_permit (Eval.evaluate policy request))

let denies msg policy request =
  Alcotest.(check bool) msg false (Eval.is_permit (Eval.evaluate policy request))

(* --- Parsing ------------------------------------------------------------ *)

let test_parse_figure3 () =
  let policy = Figure3.get () in
  Alcotest.(check int) "three statements" 3 (List.length policy);
  match policy with
  | [ req; bo; kate ] ->
    Alcotest.(check bool) "first is requirement" true (req.Types.kind = Types.Requirement);
    Alcotest.(check string) "requirement subject" Figure3.organization
      (Grid_gsi.Dn.to_string req.Types.subject_pattern);
    Alcotest.(check bool) "bo is grant" true (bo.Types.kind = Types.Grant);
    Alcotest.(check int) "bo has two clauses" 2 (List.length bo.Types.clauses);
    Alcotest.(check int) "kate has two clauses" 2 (List.length kate.Types.clauses)
  | _ -> Alcotest.fail "wrong statement count"

let test_parse_single_line_statement () =
  let policy =
    Parse.parse "/O=Grid/CN=U: &(action = start)(executable = a) &(action = cancel)(jobtag = T)"
  in
  match policy with
  | [ st ] -> Alcotest.(check int) "two clauses on one line" 2 (List.length st.Types.clauses)
  | _ -> Alcotest.fail "wrong shape"

let test_parse_requirement_without_amp_clause () =
  (* Figure 3 writes the requirement clause without a leading '&'. *)
  let policy = Parse.parse "&/O=Grid: (action = start)(jobtag != NULL)" in
  match policy with
  | [ st ] ->
    Alcotest.(check bool) "requirement" true (st.Types.kind = Types.Requirement);
    Alcotest.(check int) "one clause, two constraints" 2 (List.length (List.hd st.Types.clauses))
  | _ -> Alcotest.fail "wrong shape"

let test_parse_errors () =
  let bad text =
    match Parse.parse_result text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" text
  in
  bad "just words";
  bad "/O=Grid/CN=U:";
  bad "/O=Grid/CN=U: &()";
  bad "/O=Grid/plain: &(a = 1)";
  bad "(action = start)";
  bad "/O=Grid/CN=U: &(a = $(VAR))"

let test_roundtrip_through_printer () =
  let policy = Figure3.get () in
  let policy' = Parse.parse (Types.to_string policy) in
  Alcotest.(check int) "same count" (List.length policy) (List.length policy');
  (* Same decisions on a probe request after round-trip. *)
  let r = start ~who:Figure3.kate_keahey
      ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)" in
  Alcotest.(check string) "same decision"
    (Eval.decision_to_string (Eval.evaluate policy r))
    (Eval.decision_to_string (Eval.evaluate policy' r))

(* --- The paper's narrated scenarios (Section 5.1) ------------------------ *)

let fig3 () = Figure3.get ()

let test_bo_liu_can_start_test1 () =
  permits "Bo Liu starts test1 with jobtag ADS" (fig3 ())
    (start ~who:Figure3.bo_liu
       ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)")

let test_bo_liu_can_start_test2_nfc () =
  permits "Bo Liu starts test2 with jobtag NFC" (fig3 ())
    (start ~who:Figure3.bo_liu
       ~rsl:"&(executable=test2)(directory=/sandbox/test)(jobtag=NFC)(count=2)")

let test_bo_liu_count_limit () =
  denies "count = 4 exceeds (count < 4)" (fig3 ())
    (start ~who:Figure3.bo_liu
       ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)");
  permits "count omitted defaults to 1" (fig3 ())
    (start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)")

let test_bo_liu_wrong_executable () =
  denies "TRANSP is not granted to Bo Liu" (fig3 ())
    (start ~who:Figure3.bo_liu
       ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)")

let test_bo_liu_wrong_directory () =
  denies "directory constraint" (fig3 ())
    (start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(directory=/tmp)(jobtag=ADS)")

let test_bo_liu_wrong_jobtag_pairing () =
  (* test1 is tied to ADS and test2 to NFC; crossing them is denied. *)
  denies "test1 with NFC" (fig3 ())
    (start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=NFC)")

let test_kate_can_start_transp () =
  permits "Kate starts TRANSP" (fig3 ())
    (start ~who:Figure3.kate_keahey
       ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)")

let test_kate_can_cancel_nfc_jobs () =
  (* "It also gives her the right to cancel all the jobs with jobtag NFC;
     for example, jobs based on the executable test1 started by Bo Liu." *)
  permits "Kate cancels Bo Liu's NFC job" (fig3 ())
    (manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
       ~tag:(Some "NFC"))

let test_kate_cannot_cancel_ads_jobs () =
  denies "Kate cannot cancel ADS jobs" (fig3 ())
    (manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
       ~tag:(Some "ADS"))

let test_bo_liu_cannot_cancel () =
  denies "Bo Liu has no cancel grant" (fig3 ())
    (manage ~who:Figure3.bo_liu ~action:Types.Action.Cancel ~owner:Figure3.kate_keahey
       ~tag:(Some "NFC"))

let test_jobtag_requirement_enforced () =
  (* The group requirement: start requests from mcs.anl.gov must carry a
     jobtag. Kate's request without one is denied even though a grant
     would otherwise... not match either, but check the reason. *)
  let r =
    start ~who:Figure3.kate_keahey ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)"
  in
  (match Eval.evaluate (fig3 ()) r with
  | Eval.Deny (Eval.Requirement_violated { constr; _ }) ->
    Alcotest.(check string) "the jobtag constraint" "(jobtag != NULL)"
      (Types.constr_to_string constr)
  | d -> Alcotest.failf "expected requirement violation, got %s" (Eval.decision_to_string d));
  (* The requirement guard is on action=start: cancel without jobtag is not
     a requirement violation. *)
  permits "cancel is not guarded by the start requirement" (fig3 ())
    (manage ~who:Figure3.kate_keahey ~action:Types.Action.Cancel ~owner:Figure3.bo_liu
       ~tag:(Some "NFC"))

let test_outsider_denied () =
  let r =
    start ~who:"/O=Grid/O=Globus/OU=cs.wisc.edu/CN=Someone Else"
      ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)"
  in
  check_decision "no applicable statement" "DENY: no policy statement applies to this subject"
    (Eval.evaluate (fig3 ()) r)

(* --- Constraint semantics ------------------------------------------------ *)

let policy_of = Parse.parse

let test_value_set_membership () =
  let p = policy_of "/O=Grid/CN=U: &(action = start)(executable = a b c)" in
  permits "member of set" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=b)(jobtag=t)");
  denies "not member" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=d)")

let test_neq_forbids_value () =
  let p = policy_of "/O=Grid/CN=U: &(action = start)(queue != reserved)" in
  permits "other queue fine" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(queue=batch)");
  permits "absent queue fine" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)");
  denies "reserved queue denied" p
    (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(queue=reserved)")

let test_null_semantics () =
  let p = policy_of "/O=Grid/CN=U: &(action = start)(jobtag != NULL)" in
  permits "jobtag present" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(jobtag=T)");
  denies "jobtag absent" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)");
  let p2 = policy_of "/O=Grid/CN=U: &(action = start)(queue = NULL)" in
  permits "queue absent satisfies = NULL" p2 (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)");
  denies "queue present violates = NULL" p2
    (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(queue=batch)")

let test_self_semantics () =
  (* GT2's implicit rule, expressed in the language: you may manage your
     own jobs. *)
  let p = policy_of "/O=Grid: &(action = cancel)(jobowner = self)" in
  permits "owner cancels own job" p
    (manage ~who:"/O=Grid/CN=A" ~action:Types.Action.Cancel ~owner:"/O=Grid/CN=A" ~tag:None);
  denies "other cannot cancel" p
    (manage ~who:"/O=Grid/CN=B" ~action:Types.Action.Cancel ~owner:"/O=Grid/CN=A" ~tag:None)

let test_numeric_bounds () =
  let p = policy_of "/O=Grid/CN=U: &(action = start)(count >= 2)(count <= 8)" in
  permits "inside range" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(count=5)");
  denies "below" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(count=1)");
  denies "above" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(count=9)");
  denies "non-numeric request value" p
    (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(count=lots)")

let test_prefix_group_grant () =
  let p = policy_of "/O=Grid/OU=anl: &(action = information)(jobtag != NULL)" in
  permits "group member" p
    (manage ~who:"/O=Grid/OU=anl/CN=Member" ~action:Types.Action.Information
       ~owner:"/O=Grid/OU=anl/CN=Other" ~tag:(Some "T"));
  denies "non-member" p
    (manage ~who:"/O=Grid/OU=pnl/CN=Stranger" ~action:Types.Action.Information
       ~owner:"/O=Grid/OU=anl/CN=Other" ~tag:(Some "T"))

let test_signal_action () =
  let p = policy_of "/O=Grid/CN=Admin: &(action = signal)(jobtag = DEMO)" in
  permits "signal granted" p
    (manage ~who:"/O=Grid/CN=Admin" ~action:Types.Action.Signal ~owner:"/O=Grid/CN=X"
       ~tag:(Some "DEMO"));
  denies "start not granted by a signal clause" p
    (start ~who:"/O=Grid/CN=Admin" ~rsl:"&(executable=x)(jobtag=DEMO)")

let test_requirement_multiple () =
  (* Two requirements must both hold. *)
  let p =
    policy_of
      {|&/O=Grid: (action = start)(jobtag != NULL)
&/O=Grid: (action = start)(queue != reserved)
/O=Grid/CN=U: &(action = start)(executable = x)|}
  in
  permits "both satisfied" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(jobtag=T)");
  denies "first violated" p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(queue=batch)");
  denies "second violated" p
    (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)(jobtag=T)(queue=reserved)")

let test_requirement_denies_despite_grant () =
  let p =
    policy_of
      {|&/O=Grid: (action = start)(jobtag != NULL)
/O=Grid/CN=U: &(action = start)(executable = x)|}
  in
  match Eval.evaluate p (start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)") with
  | Eval.Deny (Eval.Requirement_violated _) -> ()
  | d -> Alcotest.failf "expected requirement violation, got %s" (Eval.decision_to_string d)

let test_validate () =
  Alcotest.(check bool) "figure 3 validates" true
    (Result.is_ok (Eval.validate (Figure3.get ())));
  let mixed = policy_of "/O=Grid/CN=U: &(action = start)(jobtag = NULL x)" in
  Alcotest.(check bool) "NULL mixed flagged" true (Result.is_error (Eval.validate mixed));
  let nonnum = policy_of "/O=Grid/CN=U: &(action = start)(count < lots)" in
  Alcotest.(check bool) "non-numeric bound flagged" true
    (Result.is_error (Eval.validate nonnum));
  let multi = policy_of "/O=Grid/CN=U: &(action = start)(count < 2 3)" in
  Alcotest.(check bool) "multi-bound flagged" true (Result.is_error (Eval.validate multi))

let test_explain () =
  let e =
    Eval.explain (fig3 ())
      (start ~who:Figure3.kate_keahey
         ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)")
  in
  Alcotest.(check bool) "permit" true (Eval.is_permit e.Eval.decision);
  Alcotest.(check int) "one requirement checked" 1 e.Eval.requirements_checked;
  Alcotest.(check int) "one grant statement" 1 e.Eval.grants_considered;
  Alcotest.(check bool) "matched clause reported" true (e.Eval.matched_clause <> None)

(* --- Combination ---------------------------------------------------------- *)

let resource_owner_policy =
  Parse.parse
    {|# resource owner: fusion VO members may run, but not on the reserved queue
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(queue != reserved)
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = cancel) &(action = information) &(action = signal)|}

let test_combination_both_permit () =
  let sources =
    [ Combine.source ~name:"resource-owner" resource_owner_policy;
      Combine.source ~name:"fusion-vo" (fig3 ()) ]
  in
  let r =
    start ~who:Figure3.kate_keahey
      ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"
  in
  Alcotest.(check bool) "both permit" true (Combine.is_permit (Combine.evaluate sources r))

let test_combination_owner_denies () =
  let sources =
    [ Combine.source ~name:"resource-owner" resource_owner_policy;
      Combine.source ~name:"fusion-vo" (fig3 ()) ]
  in
  let r =
    start ~who:Figure3.kate_keahey
      ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(queue=reserved)"
  in
  match Combine.evaluate sources r with
  | Combine.Deny { source; _ } -> Alcotest.(check string) "owner denied" "resource-owner" source
  | Combine.Permit -> Alcotest.fail "reserved queue slipped through"

let test_combination_vo_denies () =
  let sources =
    [ Combine.source ~name:"resource-owner" resource_owner_policy;
      Combine.source ~name:"fusion-vo" (fig3 ()) ]
  in
  let r =
    start ~who:Figure3.bo_liu ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)"
  in
  match Combine.evaluate sources r with
  | Combine.Deny { source; _ } -> Alcotest.(check string) "vo denied" "fusion-vo" source
  | Combine.Permit -> Alcotest.fail "unauthorized executable slipped through"

let test_combination_empty_fails_closed () =
  let r = start ~who:"/O=Grid/CN=U" ~rsl:"&(executable=x)" in
  Alcotest.(check bool) "fail closed" false (Combine.is_permit (Combine.evaluate [] r))

let test_combination_order_independent_outcome () =
  let a = Combine.source ~name:"a" resource_owner_policy in
  let b = Combine.source ~name:"b" (fig3 ()) in
  let requests =
    [ start ~who:Figure3.kate_keahey
        ~rsl:"&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)";
      start ~who:Figure3.bo_liu ~rsl:"&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)";
      start ~who:Figure3.bo_liu ~rsl:"&(executable=evil)(jobtag=ADS)" ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "permit/deny independent of source order"
        (Combine.is_permit (Combine.evaluate [ a; b ] r))
        (Combine.is_permit (Combine.evaluate [ b; a ] r)))
    requests

(* --- Query ------------------------------------------------------------------ *)

let test_query_rights_of_kate () =
  let grants = Query.grants_for (fig3 ()) ~subject:(dn Figure3.kate_keahey) in
  Alcotest.(check int) "two granted clauses" 2 (List.length grants);
  Alcotest.(check bool) "may start" true
    (Query.may_perform (fig3 ()) ~subject:(dn Figure3.kate_keahey) Types.Action.Start);
  Alcotest.(check bool) "may cancel" true
    (Query.may_perform (fig3 ()) ~subject:(dn Figure3.kate_keahey) Types.Action.Cancel);
  Alcotest.(check bool) "may not signal" false
    (Query.may_perform (fig3 ()) ~subject:(dn Figure3.kate_keahey) Types.Action.Signal)

let test_query_executables () =
  Alcotest.(check (list string)) "bo's executables" [ "test1"; "test2" ]
    (Query.allowed_values (fig3 ()) ~subject:(dn Figure3.bo_liu) ~attribute:"executable");
  Alcotest.(check (list string)) "kate's executables" [ "TRANSP" ]
    (Query.allowed_values (fig3 ()) ~subject:(dn Figure3.kate_keahey) ~attribute:"executable");
  Alcotest.(check (list string)) "outsider gets nothing" []
    (Query.allowed_values (fig3 ()) ~subject:(dn "/O=Other/CN=X") ~attribute:"executable")

let test_query_who_can () =
  let cancellers tag = Query.who_can (fig3 ()) ~action:Types.Action.Cancel ?jobtag:tag () in
  Alcotest.(check (list string)) "NFC cancellers" [ Figure3.kate_keahey ]
    (List.map Grid_gsi.Dn.to_string (cancellers (Some "NFC")));
  Alcotest.(check (list string)) "ADS cancellers: none" []
    (List.map Grid_gsi.Dn.to_string (cancellers (Some "ADS")));
  (* Unconstrained-tag management shows up regardless of tag. *)
  let p = policy_of "/O=G/CN=Admin: &(action = cancel)" in
  Alcotest.(check int) "admin cancels any tag" 1
    (List.length (Query.who_can p ~action:Types.Action.Cancel ~jobtag:"whatever" ()))

let test_query_actions_of_clause () =
  let clause rsl = List.hd (List.hd (policy_of ("/O=G: " ^ rsl))).Types.clauses in
  Alcotest.(check int) "unconstrained clause admits all actions" 4
    (List.length (Query.actions_of_clause (clause "&(executable = x)")));
  Alcotest.(check int) "pinned to one" 1
    (List.length (Query.actions_of_clause (clause "&(action = cancel)(jobtag = T)")));
  Alcotest.(check int) "neq excludes" 3
    (List.length (Query.actions_of_clause (clause "&(action != start)")))

let test_query_requirements () =
  Alcotest.(check int) "kate is under the tag requirement" 1
    (List.length (Query.requirements_for (fig3 ()) ~subject:(dn Figure3.kate_keahey)));
  Alcotest.(check int) "outsider is not" 0
    (List.length (Query.requirements_for (fig3 ()) ~subject:(dn "/O=Other/CN=X")))

let test_query_pp_rights () =
  let s = Fmt.str "%a" Query.pp_rights (fig3 (), dn Figure3.kate_keahey) in
  Alcotest.(check bool) "mentions TRANSP" true (Grid_util.Str_search.contains s "TRANSP");
  Alcotest.(check bool) "mentions requirement" true
    (Grid_util.Str_search.contains s "jobtag != NULL")

(* --- Lint ------------------------------------------------------------------- *)

let lint_messages policy =
  List.map Lint.finding_to_string (Lint.lint policy)

let test_lint_clean_policy () =
  Alcotest.(check (list string)) "figure 3 is clean" [] (lint_messages (Figure3.get ()))

let test_lint_contradictory_equalities () =
  let p = policy_of "/O=G/CN=U: &(action = start)(executable = a)(executable = b)" in
  let findings = Lint.lint p in
  Alcotest.(check bool) "error found" true (Lint.has_errors findings);
  Alcotest.(check bool) "names the attribute" true
    (List.exists
       (fun f -> Grid_util.Str_search.contains f.Lint.message "no common value")
       findings)

let test_lint_presence_conflict () =
  let p = policy_of "/O=G/CN=U: &(action = start)(jobtag = NULL)(jobtag != NULL)" in
  Alcotest.(check bool) "error found" true (Lint.has_errors (Lint.lint p));
  let p2 = policy_of "/O=G/CN=U: &(action = start)(queue = NULL)(queue = batch)" in
  Alcotest.(check bool) "absent-yet-equal flagged" true (Lint.has_errors (Lint.lint p2))

let test_lint_empty_interval () =
  let p = policy_of "/O=G/CN=U: &(action = start)(count > 5)(count < 3)" in
  Alcotest.(check bool) "empty interval" true (Lint.has_errors (Lint.lint p));
  let boundary = policy_of "/O=G/CN=U: &(action = start)(count >= 3)(count < 3)" in
  Alcotest.(check bool) "half-open boundary" true (Lint.has_errors (Lint.lint boundary));
  let fine = policy_of "/O=G/CN=U: &(action = start)(count >= 3)(count <= 3)" in
  Alcotest.(check bool) "exact point is satisfiable" false (Lint.has_errors (Lint.lint fine))

let test_lint_subsumed_clause () =
  let p =
    policy_of
      {|/O=G/CN=U: &(action = start)(executable = a) &(action = start)(executable = a)(count < 4)|}
  in
  let findings = Lint.lint p in
  Alcotest.(check bool) "subsumption warned" true
    (List.exists
       (fun f -> Grid_util.Str_search.contains f.Lint.message "subsumed")
       findings);
  Alcotest.(check bool) "only a warning" false (Lint.has_errors findings)

let test_lint_all_action_grant () =
  let p = policy_of "/O=G/CN=U: &(executable = a)" in
  Alcotest.(check bool) "warned" true
    (List.exists
       (fun f -> Grid_util.Str_search.contains f.Lint.message "permits every action")
       (Lint.lint p))

let test_lint_duplicate_statement () =
  let p =
    policy_of
      {|/O=G/CN=U: &(action = start)(executable = a)
/O=G/CN=U: &(action = start)(executable = a)|}
  in
  Alcotest.(check bool) "duplicate statement warned" true
    (List.exists
       (fun f -> Grid_util.Str_search.contains f.Lint.message "already covered")
       (Lint.lint p))

(* --- Differential testing against a reference evaluator --------------------- *)

(* An independent, deliberately naive re-implementation of the decision
   procedure, written straight from the semantics in eval.ml's header
   (and the paper's Section 5.1 prose). The production evaluator must
   agree with it on arbitrary inputs. *)
module Reference = struct
  let view_of (r : Types.request) : (string * string list) list =
    let base = [ ("action", [ Types.Action.to_string r.Types.action ]) ] in
    let owner =
      match r.Types.jobowner with
      | Some d -> [ ("jobowner", [ Grid_gsi.Dn.to_string d ]) ]
      | None -> []
    in
    let tag = match r.Types.jobtag with Some t -> [ ("jobtag", [ t ]) ] | None -> [] in
    let job =
      match r.Types.job with
      | None -> []
      | Some clause ->
        List.filter_map
          (fun (rel : Grid_rsl.Ast.relation) ->
            if rel.Grid_rsl.Ast.op <> Grid_rsl.Ast.Eq then None
            else
              Some
                ( rel.Grid_rsl.Ast.attribute,
                  List.map
                    (function
                      | Grid_rsl.Ast.Literal s -> s
                      | Grid_rsl.Ast.Variable v -> Printf.sprintf "$(%s)" v
                      | Grid_rsl.Ast.Binding (n, v) -> Printf.sprintf "(%s %s)" n v)
                    rel.Grid_rsl.Ast.values ))
          clause
    in
    let v = base @ owner @ tag @ job in
    if r.Types.action = Types.Action.Start && not (List.mem_assoc "count" v) then
      v @ [ ("count", [ "1" ]) ]
    else v

  let holds ~subject view (c : Types.constr) =
    let actual = Option.value (List.assoc_opt c.Types.attribute view) ~default:[] in
    let resolve = function
      | Types.Str s -> Some s
      | Types.Self -> Some (Grid_gsi.Dn.to_string subject)
      | Types.Null -> None
    in
    if List.mem Types.Null c.Types.values then
      List.length c.Types.values = 1
      &&
      match c.Types.op with
      | Grid_rsl.Ast.Eq -> actual = []
      | Grid_rsl.Ast.Neq -> actual <> []
      | _ -> false
    else
      let allowed = List.filter_map resolve c.Types.values in
      match c.Types.op with
      | Grid_rsl.Ast.Eq ->
        actual <> [] && List.for_all (fun v -> List.mem v allowed) actual
      | Grid_rsl.Ast.Neq -> not (List.exists (fun v -> List.mem v allowed) actual)
      | op -> begin
        match allowed with
        | [ bound ] -> begin
          match float_of_string_opt bound with
          | None -> false
          | Some b ->
            actual <> []
            && List.for_all
                 (fun v ->
                   match float_of_string_opt v with
                   | None -> false
                   | Some x -> (
                     match op with
                     | Grid_rsl.Ast.Lt -> x < b
                     | Grid_rsl.Ast.Gt -> x > b
                     | Grid_rsl.Ast.Le -> x <= b
                     | Grid_rsl.Ast.Ge -> x >= b
                     | _ -> false))
                 actual
        end
        | _ -> false
      end

  let permits (policy : Types.t) (r : Types.request) : bool =
    let subject = r.Types.subject in
    let view = view_of r in
    let applicable =
      List.filter (fun st -> Types.statement_applies st ~subject) policy
    in
    let requirement_ok (st : Types.statement) =
      st.Types.kind <> Types.Requirement
      || List.for_all
           (fun clause ->
             let guards, rest =
               List.partition (fun (c : Types.constr) -> c.Types.attribute = "action") clause
             in
             (not (List.for_all (holds ~subject view) guards))
             || List.for_all (holds ~subject view) rest)
           st.Types.clauses
    in
    let granted (st : Types.statement) =
      st.Types.kind = Types.Grant
      && List.exists (fun clause -> List.for_all (holds ~subject view) clause) st.Types.clauses
    in
    List.for_all requirement_ok applicable && List.exists granted applicable
end

(* Random policies and requests over a shared small vocabulary so that
   collisions (and therefore permits) actually happen. *)
let gen_diff_policy : Types.t QCheck.Gen.t =
  QCheck.Gen.(
    let subject = oneofl [ "/O=G"; "/O=G/CN=a"; "/O=G/CN=b"; "/O=H/CN=c" ] in
    let attr = oneofl [ "executable"; "count"; "jobtag"; "queue"; "jobowner"; "action" ] in
    let cvalue =
      frequency
        [ (6, map (fun s -> Types.Str s) (oneofl [ "x"; "y"; "2"; "5"; "start"; "cancel" ]));
          (1, return Types.Self);
          (1, return Types.Null) ]
    in
    let constr =
      let* attribute = attr in
      let* op = oneofl Grid_rsl.Ast.[ Eq; Neq; Lt; Le; Gt; Ge ] in
      let* values = list_size (int_range 1 2) cvalue in
      return { Types.attribute; op; values }
    in
    let clause = list_size (int_range 1 4) constr in
    let statement =
      let* kind = frequency [ (3, return Types.Grant); (1, return Types.Requirement) ] in
      let* s = subject in
      let* clauses = list_size (int_range 1 3) clause in
      return { Types.kind; subject_pattern = Grid_gsi.Dn.parse s; clauses }
    in
    list_size (int_range 0 6) statement)

let gen_diff_request : Types.request QCheck.Gen.t =
  QCheck.Gen.(
    let subject = oneofl [ "/O=G/CN=a"; "/O=G/CN=b"; "/O=H/CN=c" ] in
    let* who = subject in
    let* is_start = bool in
    if is_start then
      let* exe = oneofl [ "x"; "y"; "z" ] in
      let* count = oneofl [ ""; "(count=2)"; "(count=5)"; "(count=bad)" ] in
      let* tag = oneofl [ ""; "(jobtag=x)"; "(jobtag=y)" ] in
      let* queue = oneofl [ ""; "(queue=x)" ] in
      return
        (start ~who ~rsl:(Printf.sprintf "&(executable=%s)%s%s%s" exe count tag queue))
    else
      let* owner = subject in
      let* action = oneofl Types.Action.[ Cancel; Information; Signal ] in
      let* tag = oneofl [ None; Some "x"; Some "y" ] in
      return (manage ~who ~action ~owner ~tag))

let qcheck_lint_never_flags_satisfied_clause =
  (* Soundness: if some request satisfies a clause, the linter must not
     call it unsatisfiable. Reuse the differential generators. *)
  QCheck.Test.make ~name:"lint unsatisfiability is sound" ~count:1000
    (QCheck.make
       QCheck.Gen.(pair gen_diff_policy (list_size (int_range 1 6) gen_diff_request))
       ~print:(fun (p, _) -> Types.to_string p))
    (fun (policy, requests) ->
      List.for_all
        (fun (st : Types.statement) ->
          List.for_all
            (fun clause ->
              match Lint.clause_unsatisfiable clause with
              | None -> true
              | Some _ ->
                (* Claimed unsatisfiable: no sampled request may satisfy it. *)
                not
                  (List.exists
                     (fun (r : Types.request) ->
                       Eval.clause_satisfied ~subject:r.Types.subject
                         (Eval.View.of_request r) clause)
                     requests))
            st.Types.clauses)
        policy)

let qcheck_differential_reference =
  QCheck.Test.make ~name:"evaluator agrees with the naive reference" ~count:2000
    (QCheck.make
       QCheck.Gen.(pair gen_diff_policy gen_diff_request)
       ~print:(fun (p, r) ->
         Printf.sprintf "POLICY:\n%s\nREQUEST: %s" (Types.to_string p)
           (Fmt.to_to_string Types.pp_request r)))
    (fun (policy, request) ->
      Eval.is_permit (Eval.evaluate policy request) = Reference.permits policy request)

(* --- Properties ------------------------------------------------------------ *)

let gen_subject =
  QCheck.Gen.(
    oneofl
      [ Figure3.bo_liu; Figure3.kate_keahey;
        Figure3.organization ^ "/CN=Random User"; "/O=Elsewhere/CN=Stranger" ])

let gen_request =
  QCheck.Gen.(
    let gen_tag = oneofl [ None; Some "NFC"; Some "ADS"; Some "X" ] in
    let gen_exe = oneofl [ "test1"; "test2"; "TRANSP"; "other" ] in
    let gen_dir = oneofl [ "/sandbox/test"; "/tmp" ] in
    let gen_count = int_range 1 6 in
    let* subj = gen_subject in
    let* kind = oneofl [ `Start; `Cancel ] in
    match kind with
    | `Start ->
      let* exe = gen_exe and* dir = gen_dir and* count = gen_count and* tag = gen_tag in
      let tag_part = match tag with None -> "" | Some t -> Printf.sprintf "(jobtag=%s)" t in
      let rsl = Printf.sprintf "&(executable=%s)(directory=%s)(count=%d)%s" exe dir count tag_part in
      return (start ~who:subj ~rsl)
    | `Cancel ->
      let* owner = gen_subject and* tag = gen_tag in
      return (manage ~who:subj ~action:Types.Action.Cancel ~owner ~tag))

let arb_request =
  QCheck.make gen_request ~print:(Fmt.to_to_string Types.pp_request)

let qcheck_default_deny =
  QCheck.Test.make ~name:"empty policy denies everything" ~count:200 arb_request (fun r ->
      not (Eval.is_permit (Eval.evaluate [] r)))

let qcheck_deterministic =
  QCheck.Test.make ~name:"evaluation is deterministic" ~count:200 arb_request (fun r ->
      Eval.evaluate (fig3 ()) r = Eval.evaluate (fig3 ()) r)

let qcheck_grant_monotonic =
  (* Adding a grant statement never turns Permit into Deny (requirements
     unchanged). *)
  let extra =
    Parse.parse "/O=Grid: &(action = start)(executable = bonus)" |> List.hd
  in
  QCheck.Test.make ~name:"adding a grant is monotonic" ~count:200 arb_request (fun r ->
      let before = Eval.is_permit (Eval.evaluate (fig3 ()) r) in
      let after = Eval.is_permit (Eval.evaluate (fig3 () @ [ extra ]) r) in
      (not before) || after)

let qcheck_requirement_restrictive =
  (* Adding a requirement never turns Deny into Permit. *)
  let extra =
    List.hd (Parse.parse "&/O=Grid: (action = start)(count < 3)")
  in
  QCheck.Test.make ~name:"adding a requirement is restrictive" ~count:200 arb_request
    (fun r ->
      let before = Eval.is_permit (Eval.evaluate (fig3 ()) r) in
      let after = Eval.is_permit (Eval.evaluate (extra :: fig3 ()) r) in
      (not after) || before)

let qcheck_policy_parser_never_crashes =
  QCheck.Test.make ~name:"policy parser never crashes" ~count:1000
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s -> match Parse.parse_result s with Ok _ | Error _ -> true)

let qcheck_policy_like_fuzz =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (oneofl
           [ "/O=G"; "/CN=x"; ":"; "&"; "("; ")"; "action"; "="; "start"; "NULL"; "self";
             "!="; "<"; "4"; " "; "\n"; "#c\n" ])
      |> map (String.concat ""))
  in
  QCheck.Test.make ~name:"policy-shaped soup never crashes" ~count:1000
    (QCheck.make gen ~print:(fun s -> s))
    (fun s -> match Parse.parse_result s with Ok _ | Error _ -> true)

let qcheck_printer_parser_galois =
  (* Any policy that parses also survives print-then-reparse with the
     same statement count. *)
  QCheck.Test.make ~name:"print/parse stability" ~count:300
    (QCheck.make gen_diff_policy ~print:Types.to_string)
    (fun p ->
      match Parse.parse_result (Types.to_string p) with
      | Ok p' -> List.length p = List.length p'
      | Error _ -> false)

let qcheck_statement_order_irrelevant =
  QCheck.Test.make ~name:"statement order does not change the verdict" ~count:200 arb_request
    (fun r ->
      let p = fig3 () in
      let shuffled = List.rev p in
      Eval.is_permit (Eval.evaluate p r) = Eval.is_permit (Eval.evaluate shuffled r))

(* --- Request view ------------------------------------------------------- *)

let find_strings view name =
  match Eval.View.find view name with
  | Some vs -> vs
  | None -> Alcotest.failf "view is missing %s" name

let test_view_count_defaults_to_one () =
  (* The job manager starts one process when count is omitted; the view
     must expose that default so count constraints bind either way. *)
  let r = start ~who:"/O=Grid/CN=u" ~rsl:"&(executable=/bin/x)" in
  Alcotest.(check (list string)) "count default" [ "1" ]
    (find_strings (Eval.View.of_request r) "count");
  let r = start ~who:"/O=Grid/CN=u" ~rsl:"&(executable=/bin/x)(count=3)" in
  Alcotest.(check (list string)) "explicit count kept" [ "3" ]
    (find_strings (Eval.View.of_request r) "count");
  (* No default on management requests: they carry no job clause. *)
  let r =
    manage ~who:"/O=Grid/CN=u" ~action:Types.Action.Cancel ~owner:"/O=Grid/CN=u"
      ~tag:None
  in
  Alcotest.(check bool) "no count on management" true
    (Eval.View.find (Eval.View.of_request r) "count" = None)

let test_view_duplicate_bindings_keep_all_values () =
  let r = start ~who:"/O=Grid/CN=u" ~rsl:"&(count=2)(count=5)(queue=a)(queue=b)" in
  let view = Eval.View.of_request r in
  Alcotest.(check (list string)) "both counts" [ "2"; "5" ] (find_strings view "count");
  Alcotest.(check (list string)) "both queues" [ "a"; "b" ] (find_strings view "queue");
  (* Policy consequence: an Eq constraint needs every present value
     allowed, so the second binding cannot smuggle past a first
     satisfying one. *)
  let policy = Parse.parse "/O=Grid: &(action = start)(count = 2)" in
  denies "second count value violates" policy r

let test_view_explicit_jobtag_wins_over_binding () =
  let clause = Grid_rsl.Parser.parse_clause_exn "&(executable=/bin/x)(jobtag=ADS)" in
  let r =
    { (Types.start_request ~subject:(dn "/O=Grid/CN=u") ~job:clause) with
      Types.jobtag = Some "NFC" }
  in
  (* The gatekeeper parsed the tag out of this very clause; the view must
     not merge the raw binding back in alongside it. *)
  Alcotest.(check (list string)) "only the explicit tag" [ "NFC" ]
    (find_strings (Eval.View.of_request r) "jobtag");
  (* Without the explicit field the binding flows through untouched. *)
  let r = Types.start_request ~subject:(dn "/O=Grid/CN=u") ~job:clause in
  Alcotest.(check (list string)) "binding alone" [ "ADS" ]
    (find_strings (Eval.View.of_request r) "jobtag")

let () =
  Alcotest.run "grid_policy"
    [ ( "parse",
        [ Alcotest.test_case "figure 3" `Quick test_parse_figure3;
          Alcotest.test_case "single line" `Quick test_parse_single_line_statement;
          Alcotest.test_case "requirement clause without &" `Quick
            test_parse_requirement_without_amp_clause;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "printer round-trip" `Quick test_roundtrip_through_printer ] );
      ( "figure3-scenarios",
        [ Alcotest.test_case "Bo Liu test1/ADS" `Quick test_bo_liu_can_start_test1;
          Alcotest.test_case "Bo Liu test2/NFC" `Quick test_bo_liu_can_start_test2_nfc;
          Alcotest.test_case "count < 4" `Quick test_bo_liu_count_limit;
          Alcotest.test_case "wrong executable" `Quick test_bo_liu_wrong_executable;
          Alcotest.test_case "wrong directory" `Quick test_bo_liu_wrong_directory;
          Alcotest.test_case "tag pairing" `Quick test_bo_liu_wrong_jobtag_pairing;
          Alcotest.test_case "Kate TRANSP" `Quick test_kate_can_start_transp;
          Alcotest.test_case "Kate cancels NFC" `Quick test_kate_can_cancel_nfc_jobs;
          Alcotest.test_case "Kate cannot cancel ADS" `Quick test_kate_cannot_cancel_ads_jobs;
          Alcotest.test_case "Bo Liu cannot cancel" `Quick test_bo_liu_cannot_cancel;
          Alcotest.test_case "jobtag requirement" `Quick test_jobtag_requirement_enforced;
          Alcotest.test_case "outsider denied" `Quick test_outsider_denied ] );
      ( "semantics",
        [ Alcotest.test_case "value sets" `Quick test_value_set_membership;
          Alcotest.test_case "!= forbids" `Quick test_neq_forbids_value;
          Alcotest.test_case "NULL" `Quick test_null_semantics;
          Alcotest.test_case "self" `Quick test_self_semantics;
          Alcotest.test_case "numeric bounds" `Quick test_numeric_bounds;
          Alcotest.test_case "prefix groups" `Quick test_prefix_group_grant;
          Alcotest.test_case "signal" `Quick test_signal_action;
          Alcotest.test_case "multiple requirements" `Quick test_requirement_multiple;
          Alcotest.test_case "requirement overrides grant" `Quick
            test_requirement_denies_despite_grant;
          Alcotest.test_case "validation" `Quick test_validate;
          Alcotest.test_case "explain" `Quick test_explain ] );
      ( "combination",
        [ Alcotest.test_case "both permit" `Quick test_combination_both_permit;
          Alcotest.test_case "owner denies" `Quick test_combination_owner_denies;
          Alcotest.test_case "vo denies" `Quick test_combination_vo_denies;
          Alcotest.test_case "empty fails closed" `Quick test_combination_empty_fails_closed;
          Alcotest.test_case "order independent" `Quick
            test_combination_order_independent_outcome ] );
      ( "query",
        [ Alcotest.test_case "rights of kate" `Quick test_query_rights_of_kate;
          Alcotest.test_case "executables" `Quick test_query_executables;
          Alcotest.test_case "who_can" `Quick test_query_who_can;
          Alcotest.test_case "actions_of_clause" `Quick test_query_actions_of_clause;
          Alcotest.test_case "requirements" `Quick test_query_requirements;
          Alcotest.test_case "pp_rights" `Quick test_query_pp_rights ] );
      ( "lint",
        [ Alcotest.test_case "clean policy" `Quick test_lint_clean_policy;
          Alcotest.test_case "contradictory equalities" `Quick
            test_lint_contradictory_equalities;
          Alcotest.test_case "presence conflict" `Quick test_lint_presence_conflict;
          Alcotest.test_case "empty interval" `Quick test_lint_empty_interval;
          Alcotest.test_case "subsumed clause" `Quick test_lint_subsumed_clause;
          Alcotest.test_case "all-action grant" `Quick test_lint_all_action_grant;
          Alcotest.test_case "duplicate statement" `Quick test_lint_duplicate_statement;
          QCheck_alcotest.to_alcotest qcheck_lint_never_flags_satisfied_clause ] );
      ( "view",
        [ Alcotest.test_case "count defaults to 1" `Quick test_view_count_defaults_to_one;
          Alcotest.test_case "duplicate bindings keep all values" `Quick
            test_view_duplicate_bindings_keep_all_values;
          Alcotest.test_case "explicit jobtag wins over binding" `Quick
            test_view_explicit_jobtag_wins_over_binding ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_differential_reference;
          QCheck_alcotest.to_alcotest qcheck_default_deny;
          QCheck_alcotest.to_alcotest qcheck_deterministic;
          QCheck_alcotest.to_alcotest qcheck_grant_monotonic;
          QCheck_alcotest.to_alcotest qcheck_requirement_restrictive;
          QCheck_alcotest.to_alcotest qcheck_statement_order_irrelevant;
          QCheck_alcotest.to_alcotest qcheck_policy_parser_never_crashes;
          QCheck_alcotest.to_alcotest qcheck_policy_like_fuzz;
          QCheck_alcotest.to_alcotest qcheck_printer_parser_galois ] ) ]
