(* Quickstart: stand up a one-site grid with a fine-grain policy and watch
   a job be admitted, a job be denied, and a third-party cancel succeed.

   Run with: dune exec examples/quickstart.exe
   Add --faults to run the same scenario over a lossy network: requests
   get 250ms timeouts, management goes through the retrying client, and
   the metrics snapshot shows the injected faults and recoveries.
   Add --crash to give the job manager a durable journal and kill +
   restart it between Alice's submission and Bob's cancel: the cancel is
   then authorized against state replayed from disk. *)

open Core

let faults_enabled = Array.exists (String.equal "--faults") Sys.argv
let crash_enabled = Array.exists (String.equal "--crash") Sys.argv

let () =
  (* 1. A testbed: CA, trust store, simulation engine. *)
  let tb = Testbed.create () in

  (* 2. Two users certified by the testbed CA. *)
  let alice = Testbed.add_user tb "/O=Grid/O=Demo/CN=Alice" in
  let bob = Testbed.add_user tb "/O=Grid/O=Demo/CN=Bob" in

  (* 3. A policy in the paper's language: Alice may run the "simulate"
     executable with fewer than 8 cpus and must tag her jobs; Bob may
     cancel any job tagged TEAM. *)
  let policy_text =
    {|&/O=Grid/O=Demo: (action = start)(jobtag != NULL)
/O=Grid/O=Demo/CN=Alice: &(action = start)(executable = simulate)(count < 8)
/O=Grid/O=Demo/CN=Bob: &(action = cancel)(jobtag = TEAM)|}
  in
  let policy = Policy.Parse.parse policy_text in
  print_endline "Policy in force:";
  print_endline (Policy.Types.to_string policy);
  print_newline ();

  (* 4. A resource running extended GRAM with a flat-file PEP over that
     policy, plus a grid-mapfile for the two users. *)
  let gridmap =
    Gsi.Gridmap.parse "\"/O=Grid/O=Demo/CN=Alice\" alice\n\"/O=Grid/O=Demo/CN=Bob\" bob\n"
  in
  let network =
    if faults_enabled then begin
      print_endline "(fault injection ON: 3% drop, 1% duplicate, 10% extra delay)";
      print_newline ();
      Some
        (Sim.Network.create
           ~faults:
             (Sim.Network.Faults.profile ~drop:0.03 ~duplicate:0.01 ~delay_probability:0.1
                ~max_extra_delay:0.05 ())
           ~fault_seed:271828 (Testbed.engine tb))
    end
    else None
  in
  let store =
    if crash_enabled then begin
      print_endline "(durable job manager ON: journalling to a simulated disk)";
      print_newline ();
      let disk = Sim.Disk.create ~seed:271829 () in
      Some (Store.Store.create ~obs:(Testbed.obs tb) ~snapshot_every:8 ~disk ~name:"demo-site" ())
    end
    else None
  in
  let resource =
    Testbed.make_resource tb ~name:"demo-site" ~gridmap ?network ?store
      ?request_timeout:(if faults_enabled then Some 0.25 else None)
      ~backend:(Flat_file [ Policy.Combine.source ~name:"demo-vo" policy ])
  in
  let alice_client = Testbed.client tb ~user:alice ~resource in
  let bob_client = Testbed.client tb ~user:bob ~resource in

  (* 5. Alice submits a conforming job. *)
  let show_submit who result =
    match result with
    | Ok (r : Gram.Protocol.submit_reply) ->
      Printf.printf "%-6s submit -> accepted, contact %s, account %s\n" who
        r.Gram.Protocol.job_contact r.Gram.Protocol.submitted_as;
      Some r.Gram.Protocol.job_contact
    | Error e ->
      Printf.printf "%-6s submit -> REFUSED: %s\n" who
        (Gram.Protocol.submit_error_to_string e);
      None
  in
  let contact =
    show_submit "Alice"
      (Gram.Client.submit_sync alice_client
         ~rsl:"&(executable=simulate)(count=4)(jobtag=TEAM)(simduration=120)")
  in

  (* 6. Alice over her cpu budget: denied by policy, not by capacity. *)
  ignore
    (show_submit "Alice"
       (Gram.Client.submit_sync alice_client
          ~rsl:"&(executable=simulate)(count=8)(jobtag=TEAM)"));

  (* 7. Bob may not start jobs at all... *)
  ignore
    (show_submit "Bob"
       (Gram.Client.submit_sync bob_client ~rsl:"&(executable=simulate)(count=1)(jobtag=TEAM)"));

  (* 8a. With --crash, the job manager dies here: every in-memory JMI is
     lost, then recovery rebuilds the job table from snapshot + journal.
     Alice's job keeps running in the LRM throughout. *)
  if crash_enabled then begin
    Gram.Resource.crash resource;
    print_endline "Job manager CRASHED (in-memory job table lost)";
    let r = Gram.Resource.recover resource in
    Printf.printf "Job manager restarted: %d job(s) restored from %d journal record(s)\n"
      r.Gram.Resource.jobs_restored r.Gram.Resource.records_replayed
  end;

  (* 8. ...but he may cancel Alice's TEAM job even though he does not own
     it — the fine-grain management right GT2 could not express. With
     --crash this request is served by a restarted job manager: the
     jobtag grant still authorizes Bob because the jobtag was replayed
     from the durable creation record. *)
  (match contact with
  | Some contact -> begin
    (* Under faults, cancel is idempotent and goes through the retrying
       client: dropped requests or replies are retried under a deadline. *)
    let cancel () =
      if faults_enabled then
        Gram.Client.manage_with_retry_sync ~deadline:30.0 bob_client ~contact
          Gram.Protocol.Cancel
      else Gram.Client.manage_sync bob_client ~contact Gram.Protocol.Cancel
    in
    match cancel () with
    | Ok _ -> Printf.printf "Bob    cancel of Alice's job -> permitted (jobtag grant)\n"
    | Error e ->
      Printf.printf "Bob    cancel -> refused: %s\n"
        (Gram.Protocol.management_error_to_string e)
  end
  | None -> ());

  (* 9. The audit trail attributes every decision. *)
  print_newline ();
  print_endline "Audit trail:";
  Fmt.pr "%a@." Audit.Audit.pp (Gram.Resource.audit resource);

  (* 10. Let the admitted job run out, then read the metrics the request
     path collected along the way: decision counts split by outcome and
     the per-stage latency breakdown. *)
  Testbed.run tb;
  print_newline ();
  print_endline "Metrics snapshot:";
  Fmt.pr "%a@." Obs.Obs.pp_summary (Gram.Resource.obs resource)
