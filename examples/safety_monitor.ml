(* Safety monitor: watch a live request path through the wide-event bus
   and catch an enforcement bug the moment it produces a wrong permit.

   Run with: dune exec examples/safety_monitor.exe

   Every layer of the stack (gatekeeper, job manager, PEP, cache, store)
   emits correlated wide events. The online monitor subscribes to the bus
   and checks each event against the paper's enforcement invariants:
   default-deny, no stale-epoch decisions, no expired/revoked
   credentials authorizing work, crash-recovery equivalence, and
   fail-closed degradation never upgrading to a permit.

   The demo runs the same requests twice: once against a correct PEP
   (zero violations), then against a deliberately mis-wired PEP that
   flips one denial into a permit — which the monitor reports with the
   full correlated event chain of the offending request. *)

open Core

let policy_text =
  {|&/O=Grid/O=Demo: (action = start)(jobtag != NULL)
/O=Grid/O=Demo/CN=Alice: &(action = start)(executable = simulate)(count < 8)|}

let run ~sabotage =
  let tb = Testbed.create () in
  let alice = Testbed.add_user tb "/O=Grid/O=Demo/CN=Alice" in
  let obs = Testbed.obs tb in

  (* The flat-file PEP over the demo policy, optionally mis-wired so that
     denials come back as permits — the bug class "default deny" exists
     to rule out. *)
  let sources =
    [ Policy.Combine.source ~name:"demo" (Policy.Parse.parse policy_text) ]
  in
  let pep = Callout.File_pep.Compiled.create ~obs sources in
  let callout q =
    match Callout.File_pep.Compiled.callout pep q with
    | Error (Callout.Callout.Denied _) when sabotage -> Ok ()
    | decision -> decision
  in

  (* The monitor needs a policy oracle to judge permits: here it simply
     re-asks the same compiled policy (an independent copy in a real
     deployment; the soak campaigns keep one per epoch). *)
  let compiled = Policy.Combine.compile_sources sources in
  let oracle (e : Obs.Event.t) =
    match
      ( Obs.Event.attr e "subject",
        Option.bind (Obs.Event.attr e "action") Policy.Types.Action.of_string )
    with
    | Some subject, Some action ->
      let request =
        { Policy.Types.subject = Gsi.Dn.parse subject;
          action;
          job = Option.map Rsl.Parser.parse_clause_exn (Obs.Event.attr e "rsl");
          jobowner = Option.map Gsi.Dn.parse (Obs.Event.attr e "jobowner");
          jobtag = Obs.Event.attr e "jobtag" }
      in
      Some (Policy.Combine.is_permit (Policy.Combine.evaluate_compiled compiled request))
    | _ -> None
  in
  let monitor = Obs.Monitor.create ~oracle (Obs.Obs.events obs) in

  let resource =
    Testbed.make_resource tb
      ~gridmap:(Gsi.Gridmap.parse {|"/O=Grid/O=Demo/CN=Alice" alice|})
      ~backend:(Custom callout)
  in
  let client = Testbed.client tb ~user:alice ~resource in

  (* Two requests: one the policy permits, one it denies (count over the
     limit). Under sabotage the denial comes back as a permit — a wrong
     answer no reply-path check would notice. *)
  List.iter
    (fun rsl ->
      match Gram.Client.submit_sync client ~rsl with
      | Ok r -> Printf.printf "  accepted: %s\n" r.Gram.Protocol.job_contact
      | Error e ->
        Printf.printf "  refused:  %s\n" (Gram.Protocol.submit_error_to_string e))
    [ "&(executable=simulate)(count=4)(jobtag=TEAM)(simduration=10)";
      "&(executable=simulate)(count=32)(jobtag=TEAM)(simduration=10)" ];
  Testbed.run tb;
  Obs.Monitor.flush monitor;
  Fmt.pr "%a@." Obs.Monitor.pp monitor

let () =
  print_endline "=== correct PEP ===";
  run ~sabotage:false;
  print_newline ();
  print_endline "=== sabotaged PEP (denials flipped to permits) ===";
  run ~sabotage:true
