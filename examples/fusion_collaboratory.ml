(* The National Fusion Collaboratory scenario: the paper's Figure 3 policy
   acted out end to end, printing the decision matrix the paper narrates
   in Section 5.1.

   Run with: dune exec examples/fusion_collaboratory.exe *)

open Core

let rule fmt = Printf.printf fmt

let () =
  rule "=== Figure 3 policy ===\n%s\n\n" Policy.Figure3.text;
  let w = Fusion.build () in

  let show who (client : Gram.Client.t) rsl =
    match Gram.Client.submit_sync client ~rsl with
    | Ok r ->
      rule "  %-12s %-70s -> PERMIT (%s)\n" who rsl r.Gram.Protocol.job_contact;
      Some r.Gram.Protocol.job_contact
    | Error e ->
      rule "  %-12s %-70s -> DENY\n      %s\n" who rsl
        (Gram.Protocol.submit_error_to_string e);
      None
  in

  rule "=== Job startup decisions ===\n";
  (* Bo Liu: the narrated envelope. *)
  let bo_job =
    show "Bo Liu" w.Fusion.bo
      "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=3)(simduration=5000)"
  in
  ignore
    (show "Bo Liu" w.Fusion.bo
       "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)");
  ignore
    (show "Bo Liu" w.Fusion.bo "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)");
  ignore (show "Bo Liu" w.Fusion.bo "&(executable=test1)(directory=/tmp)(jobtag=ADS)");
  ignore (show "Bo Liu" w.Fusion.bo "&(executable=test1)(directory=/sandbox/test)");

  (* Kate Keahey: TRANSP under NFC; the jobtag requirement bites without
     a tag. *)
  let kate_job =
    show "Kate Keahey" w.Fusion.kate
      "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(simduration=8000)"
  in
  ignore (show "Kate Keahey" w.Fusion.kate "&(executable=TRANSP)(directory=/sandbox/test)");

  rule "\n=== Job management decisions ===\n";
  let manage who (client : Gram.Client.t) contact action label =
    match contact with
    | None -> ()
    | Some contact -> begin
      match Gram.Client.manage_sync client ~contact action with
      | Ok _ -> rule "  %-12s %-50s -> PERMIT\n" who label
      | Error e ->
        rule "  %-12s %-50s -> DENY\n      %s\n" who label
          (Gram.Protocol.management_error_to_string e)
    end
  in
  (* Bo cannot touch Kate's NFC job. *)
  manage "Bo Liu" w.Fusion.bo kate_job Gram.Protocol.Cancel "cancel Kate's NFC job";
  (* Kate's Figure 3 right: cancel any NFC job. Bo's job is ADS, so it is
     out of reach; admins reach everything. *)
  manage "Kate Keahey" w.Fusion.kate bo_job Gram.Protocol.Cancel "cancel Bo's ADS job";
  manage "VO Admin" w.Fusion.vo_admin bo_job Gram.Protocol.Cancel "cancel Bo's ADS job";
  (* Bo starts an NFC job that Kate can then cancel — the paper's closing
     example: "jobs based on the executable test1 started by Bo Liu"
     (under the NFC tag use test2 which the developers profile ties to
     ADS; the admins' DEMO profile covers TRANSP, so reuse test2/NFC via
     Kate's grant over NFC). *)
  let bo_nfc =
    show "Bo Liu" w.Fusion.bo
      "&(executable=test2)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=5000)"
  in
  manage "Kate Keahey" w.Fusion.kate bo_nfc Gram.Protocol.Cancel "cancel Bo's ADS job (no grant)";
  manage "Kate Keahey" w.Fusion.kate kate_job Gram.Protocol.Status "status of her own job";

  rule "\n=== Combined policy sources ===\n";
  let sources = Fusion.policy_sources w.Fusion.vo in
  let request =
    Policy.Types.start_request
      ~subject:(Gsi.Dn.parse Fusion.kate_keahey)
      ~job:
        (Rsl.Parser.parse_clause_exn
           "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(queue=reserved)")
  in
  List.iter
    (fun (name, decision) ->
      rule "  source %-16s -> %s\n" name (Policy.Eval.decision_to_string decision))
    (Policy.Combine.evaluate_all sources request);
  rule "  combined            -> %s\n"
    (Policy.Combine.decision_to_string (Policy.Combine.evaluate sources request));

  rule "\n=== Compiled VO policy (from group profiles) ===\n%s\n"
    (Policy.Types.to_string (Vo.Vo.compile_policy w.Fusion.vo));

  (* Drain the simulation (remaining jobs run out), then report what the
     instrumented request path recorded: every authorization decision by
     backend/action/outcome, and where simulated time was spent. *)
  Testbed.run w.Fusion.testbed;
  rule "\n=== Metrics snapshot ===\n";
  Fmt.pr "%a@." Obs.Obs.pp_summary (Gram.Resource.obs w.Fusion.resource)
