(* gridctl: command-line front end for the fine-grain authorization
   library.

     gridctl check  POLICY_FILE...            validate policy files
     gridctl eval   --subject DN --action A [--rsl R] [--jobowner DN]
                    [--jobtag T] POLICY_FILE...
                                              evaluate a request
     gridctl show   POLICY_FILE               parse and pretty-print
     gridctl figure3                          the paper's decision matrix

   Policies are in the paper's Figure 3 concrete syntax; multiple files
   are combined conjunctively (resource owner AND VO), each file being
   one source named after its path. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Policies come in two syntaxes (paper Section 5.1 and the Section 6.3
   XACML replacement); files are dispatched on their first character. *)
let parse_policy_text text =
  if Grid_util.Strings.starts_with ~prefix:"<" (Grid_util.Strings.strip text) then
    Grid_policy.Xacml.parse_result text
  else Grid_policy.Parse.parse_result text

let load_sources paths =
  List.map
    (fun path ->
      let text = read_file path in
      match parse_policy_text text with
      | Error m -> Printf.ksprintf failwith "%s: %s" path m
      | Ok policy -> begin
        match Grid_policy.Eval.validate policy with
        | Error m -> Printf.ksprintf failwith "%s: %s" path m
        | Ok () -> Grid_policy.Combine.source ~name:(Filename.basename path) policy
      end)
    paths

(* --- arguments ------------------------------------------------------- *)

let policy_files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"POLICY" ~doc:"Policy file(s).")

let subject =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "subject" ] ~docv:"DN" ~doc:"Grid identity making the request.")

let action =
  let parse s =
    match Grid_policy.Types.Action.of_string s with
    | Some a -> Ok a
    | None -> Error (`Msg "expected start, cancel, information or signal")
  in
  let print ppf a = Fmt.string ppf (Grid_policy.Types.Action.to_string a) in
  Arg.(
    required
    & opt (some (conv (parse, print))) None
    & info [ "a"; "action" ] ~docv:"ACTION" ~doc:"start, cancel, information or signal.")

let rsl =
  Arg.(
    value
    & opt (some string) None
    & info [ "r"; "rsl" ] ~docv:"RSL" ~doc:"Job description (start requests).")

let jobowner =
  Arg.(
    value
    & opt (some string) None
    & info [ "jobowner" ] ~docv:"DN" ~doc:"Owner of the target job (management requests).")

let jobtag =
  Arg.(
    value
    & opt (some string) None
    & info [ "jobtag" ] ~docv:"TAG" ~doc:"Jobtag of the target job (management requests).")

let explain =
  Arg.(value & flag & info [ "explain" ] ~doc:"Show per-source decisions.")

(* Named network fault profiles for the simulation commands. *)
let faults_arg =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("light", `Light); ("heavy", `Heavy) ]) `None
    & info [ "faults" ] ~docv:"PROFILE"
        ~doc:
          "Network fault profile: none, light (1% drop, 0.5% duplicate, 5% extra delay) \
           or heavy (5% drop, 2% duplicate, 20% extra delay). Enables 250ms request \
           timeouts and client retries.")

let fault_seed_arg =
  Arg.(
    value
    & opt int 1299709
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed for the fault-injection stream (independent of the latency stream).")

let faults_of = function
  | `None -> None
  | `Light ->
    Some
      (Core.Sim.Network.Faults.profile ~drop:0.01 ~duplicate:0.005 ~delay_probability:0.05
         ~max_extra_delay:0.02 ())
  | `Heavy ->
    Some
      (Core.Sim.Network.Faults.profile ~drop:0.05 ~duplicate:0.02 ~delay_probability:0.2
         ~max_extra_delay:0.1 ())

let pp_network_counters resource =
  let network = Core.Gram.Resource.network resource in
  Printf.printf "network: %d sent, %d dropped, %d duplicated, %d delayed\n"
    (Core.Sim.Network.messages_sent network)
    (Core.Sim.Network.messages_dropped network)
    (Core.Sim.Network.messages_duplicated network)
    (Core.Sim.Network.messages_delayed network)

(* --- commands --------------------------------------------------------- *)

let check_cmd =
  let run paths =
    try
      List.iter
        (fun path ->
          let text = read_file path in
          match parse_policy_text text with
          | Error m ->
            Printf.printf "%s: PARSE ERROR: %s\n" path m;
            exit 1
          | Ok policy -> begin
            match Grid_policy.Eval.validate policy with
            | Error m ->
              Printf.printf "%s: INVALID: %s\n" path m;
              exit 1
            | Ok () ->
              Printf.printf "%s: ok (%d statements)\n" path (List.length policy)
          end)
        paths
    with Failure m ->
      prerr_endline m;
      exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate policy files.")
    Term.(const run $ policy_files)

let show_cmd =
  let run paths =
    try
      List.iter
        (fun path ->
          let sources = load_sources [ path ] in
          List.iter
            (fun (s : Grid_policy.Combine.source) ->
              Printf.printf "# %s\n%s\n" s.Grid_policy.Combine.name
                (Grid_policy.Types.to_string s.Grid_policy.Combine.policy))
            sources)
        paths
    with Failure m ->
      prerr_endline m;
      exit 1
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Parse and pretty-print policy files.")
    Term.(const run $ policy_files)

let eval_cmd =
  let run subject action rsl jobowner jobtag explain paths =
    try
      let sources = load_sources paths in
      let subject = Grid_gsi.Dn.parse subject in
      let request =
        match (action, rsl) with
        | Grid_policy.Types.Action.Start, Some rsl ->
          Grid_policy.Types.start_request ~subject
            ~job:(Grid_rsl.Parser.parse_clause_exn rsl)
        | Grid_policy.Types.Action.Start, None ->
          failwith "start requests need --rsl"
        | action, _ ->
          let jobowner =
            match jobowner with
            | Some o -> Grid_gsi.Dn.parse o
            | None -> failwith "management requests need --jobowner"
          in
          Grid_policy.Types.management_request ~subject ~action ~jobowner ~jobtag
      in
      if explain then
        List.iter
          (fun (name, decision) ->
            Printf.printf "%-30s %s\n" name (Grid_policy.Eval.decision_to_string decision))
          (Grid_policy.Combine.evaluate_all sources request);
      let combined = Grid_policy.Combine.evaluate sources request in
      Printf.printf "%s\n" (Grid_policy.Combine.decision_to_string combined);
      exit (if Grid_policy.Combine.is_permit combined then 0 else 1)
    with
    | Failure m | Grid_rsl.Parser.Error m ->
      prerr_endline m;
      exit 2
    | Grid_gsi.Dn.Parse_error m ->
      prerr_endline ("bad DN: " ^ m);
      exit 2
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a request against one or more policy files.")
    Term.(const run $ subject $ action $ rsl $ jobowner $ jobtag $ explain $ policy_files)

let rights_cmd =
  let run subject paths =
    try
      let sources = load_sources paths in
      let subject = Grid_gsi.Dn.parse subject in
      List.iter
        (fun (s : Grid_policy.Combine.source) ->
          Printf.printf "# source: %s\n" s.Grid_policy.Combine.name;
          Fmt.pr "%a@." Grid_policy.Query.pp_rights
            (s.Grid_policy.Combine.policy, subject))
        sources
    with
    | Failure m ->
      prerr_endline m;
      exit 2
    | Grid_gsi.Dn.Parse_error m ->
      prerr_endline ("bad DN: " ^ m);
      exit 2
  in
  Cmd.v
    (Cmd.info "rights" ~doc:"Report what a subject may do under each policy source.")
    Term.(const run $ subject $ policy_files)

let lint_cmd =
  let run paths =
    try
      let any_errors = ref false in
      List.iter
        (fun path ->
          let text = read_file path in
          match parse_policy_text text with
          | Error m ->
            Printf.printf "%s: PARSE ERROR: %s\n" path m;
            any_errors := true
          | Ok policy -> begin
            match Grid_policy.Lint.lint policy with
            | [] -> Printf.printf "%s: clean (%d statements)\n" path (List.length policy)
            | findings ->
              List.iter
                (fun f ->
                  Printf.printf "%s: %s\n" path (Grid_policy.Lint.finding_to_string f))
                findings;
              if Grid_policy.Lint.has_errors findings then any_errors := true
          end)
        paths;
      exit (if !any_errors then 1 else 0)
    with Failure m ->
      prerr_endline m;
      exit 2
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Diagnose unsatisfiable, dead or over-broad policy (exit 1 on errors, 0 on \
          clean/warnings).")
    Term.(const run $ policy_files)

(* Shared by simulate and journal: durable-store options. *)
let snapshot_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Compact the job-manager journal into a snapshot after every $(docv) appends \
           (implies a durable store).")

let crash_at_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "crash-at" ] ~docv:"SECONDS"
        ~doc:
          "Kill the job manager at simulated time $(docv) and restart it from snapshot + \
           journal (implies a durable store).")

let print_recovery (r : Core.Gram.Resource.recovery_summary) =
  Printf.printf
    "recovery: %d jobs restored from %d records (%d tail bytes dropped, %d stale-epoch \
     jobs, %d undecodable)\n"
    r.Core.Gram.Resource.jobs_restored r.Core.Gram.Resource.records_replayed
    r.Core.Gram.Resource.dropped_bytes r.Core.Gram.Resource.stale_epoch_jobs
    r.Core.Gram.Resource.decode_failures

let print_store_summary resource =
  match Core.Gram.Resource.store resource with
  | None -> ()
  | Some store ->
    Printf.printf "store: %d journal appends, %d snapshots, %d journal bytes\n"
      (Core.Store.Store.appends store)
      (Core.Store.Store.snapshots_taken store)
      (Core.Store.Store.journal_bytes store)

(* Shared by simulate and soak: the batch decision pipeline knob. *)
let batch_arg =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg "expected a batch size >= 1")
  in
  let print ppf n = Fmt.int ppf n in
  Arg.(
    value
    & opt (conv (parse, print)) 1
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Coalesce management follow-ups and authorize them $(docv) at a time through \
           the batch decision pipeline; 1 (the default) keeps the per-request path.")

(* Shared by simulate and soak: the STS token layer. *)
let tokens_arg =
  let parse s =
    match Core.Sts.Validator.mode_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown token revocation mode %S (expected one of: %s)" s
             (String.concat ", "
                (List.map Core.Sts.Validator.mode_to_string
                   Core.Sts.Validator.all_modes))))
  in
  let print ppf m = Fmt.string ppf (Core.Sts.Validator.mode_to_string m) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "tokens" ] ~docv:"MODE"
        ~doc:
          "Route every request through STS capability tokens, with revocation \
           distributed per $(docv): short-ttl (stateless, expiry is the \
           enforcement), push (in-band deltas over the network) or pull \
           (periodic CRL fetch from disk).")

(* Shared by simulate and soak: federation size. *)
let resources_arg =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg "expected a resource count >= 1")
  in
  Arg.(
    value
    & opt (conv (parse, Fmt.int)) 1
    & info [ "resources" ] ~docv:"N"
        ~doc:
          "Federate $(docv) gatekeeper-fronted resources behind one MDS directory and \
           broker; 1 (the default) keeps the single-site path.")

let simulate_cmd =
  let jobs =
    Arg.(value & opt int 200 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Jobs to generate.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.") in
  let population =
    Arg.(
      value
      & opt int 0
      & info [ "population" ] ~docv:"M"
          ~doc:
            "Draw subjects zipfian from a synthesized population of $(docv) distinct \
             DNs (policy via per-group DN-prefix grants, dynamic account leases) \
             instead of the Figure 3 cast. Implies the fleet path.")
  in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Run unmodified GT2 instead of extended GRAM.")
  in
  let pep =
    Arg.(
      value
      & opt
          (enum [ ("flat-file", `Flat_file); ("baseline", `Baseline); ("rebac", `Rebac) ])
          `Flat_file
      & info [ "pep" ] ~docv:"BACKEND"
          ~doc:
            "Authorization backend: flat-file (the compiled policy index), rebac (the \
             relationship-based tuple graph over the same policies) or baseline \
             (unmodified GT2; same as --baseline).")
  in
  let run jobs seed baseline pep faults fault_seed snapshot_every crash_at batch
      resources population tokens =
    let backend = if baseline then `Baseline else pep in
    let baseline = backend = `Baseline in
    if baseline && Option.is_some tokens then
      failwith "simulate: --tokens needs the extended backends";
    let faults = faults_of faults in
    (* Faulty networks need bounded requests: without a timeout a dropped
       reply would leave the workload hanging forever. *)
    let request_timeout = Option.map (fun _ -> 0.25) faults in
    let store = Option.is_some snapshot_every || Option.is_some crash_at in
    if resources > 1 || population > 0 then begin
      (* The federated path: a fleet of full members behind one MDS, the
         population synthesizer as subject source, placement through the
         broker's asynchronous lane. *)
      if baseline then
        failwith "simulate: --resources/--population need the extended backends";
      if Option.is_some snapshot_every || Option.is_some crash_at then
        failwith "simulate: --snapshot-every/--crash-at apply to the single-site path";
      let population = if population > 0 then population else 100_000 in
      let pop = Core.Population.create ~seed:(seed + 7) ~size:population in
      let w =
        Core.Fusion.build ~backend ~nodes:8 ~cpus_per_node:8 ?faults ~fault_seed
          ?request_timeout ~fleet:resources ~population:pop ~broker_seed:seed
          ?sts:tokens ()
      in
      let fleet = Option.get w.Core.Fusion.fleet in
      Printf.printf
        "Simulating %d jobs across %d resources, population %d (%s mode, seed %d)...\n"
        jobs resources population
        (match backend with `Rebac -> "extended, rebac PEP" | _ -> "extended")
        seed;
      let stats =
        Core.Workload.run_population ?sts:w.Core.Fusion.sts ~fleet ~population:pop
          ~ca:(Core.Testbed.ca w.Core.Fusion.testbed)
          { Core.Workload.default_population_config with
            Core.Workload.pop_job_count = jobs;
            pop_seed = seed;
            pop_management_batch = batch }
      in
      Fmt.pr "%a@." Core.Workload.pp_population_stats stats;
      (match
         ( Core.Workload.latency_percentile stats 0.5,
           Core.Workload.latency_percentile stats 0.99 )
       with
      | Some p50, Some p99 ->
        Printf.printf "placement latency: p50 %.3fs, p99 %.3fs (simulated)\n" p50 p99
      | _ -> ());
      List.iter
        (fun m ->
          let name = Core.Fleet.member_name m in
          let accepted =
            Option.value
              (Hashtbl.find_opt stats.Core.Workload.per_resource_accepted name)
              ~default:0
          in
          Printf.printf "  %s: accepted %d, policy epoch %d\n" name accepted
            (Core.Fleet.member_epoch m))
        (Core.Fleet.members fleet)
    end
    else begin
    let w =
      Core.Fusion.build ~backend ~nodes:8 ~cpus_per_node:8 ?faults ~fault_seed
        ?request_timeout ~store ?snapshot_every ?sts:tokens ()
    in
    (* A crash mid-workload: the job manager dies (in-memory JMIs lost,
       unsynced journal tail lost per the disk fault profile) and restarts
       immediately, replaying snapshot + journal before the next request
       arrives. *)
    (match crash_at with
    | None -> ()
    | Some at ->
      Core.Sim.Engine.schedule_at
        (Core.Testbed.engine w.Core.Fusion.testbed)
        at
        (fun () ->
          Printf.printf "t=%.3fs: job manager crash + restart\n" at;
          Core.Gram.Resource.crash w.Core.Fusion.resource;
          print_recovery (Core.Gram.Resource.recover w.Core.Fusion.resource)));
    let templates_bo =
      if baseline then
        [ "&(executable=test1)(directory=/sandbox/test)(count=2)(simduration=40)" ]
      else
        [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=40)";
          "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=4)";
          "&(executable=test1)(directory=/sandbox/test)" ]
    in
    let templates_kate =
      if baseline then
        [ "&(executable=TRANSP)(directory=/sandbox/test)(simduration=120)" ]
      else
        [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=120)" ]
    in
    let profiles =
      [ { Core.Workload.identity = Core.Gram.Client.identity w.Core.Fusion.bo;
          rsl_templates = templates_bo;
          weight = 3 };
        { Core.Workload.identity = Core.Gram.Client.identity w.Core.Fusion.kate;
          rsl_templates = templates_kate;
          weight = 2 } ]
    in
    Printf.printf "Simulating %d jobs on the fusion testbed (%s mode, seed %d)...\n" jobs
      (match backend with
      | `Baseline -> "GT2 baseline"
      | `Rebac -> "extended, rebac PEP"
      | _ -> "extended")
      seed;
    let stats =
      Core.Workload.run ?sts:w.Core.Fusion.sts
        ~engine:(Core.Testbed.engine w.Core.Fusion.testbed)
        ~resource:w.Core.Fusion.resource ~profiles
        { Core.Workload.default_config with
          Core.Workload.job_count = jobs;
          seed;
          management_batch = batch }
    in
    Fmt.pr "%a@." Core.Workload.pp_stats stats;
    if Option.is_some faults then pp_network_counters w.Core.Fusion.resource;
    print_store_summary w.Core.Fusion.resource;
    let audit = Core.Gram.Resource.audit w.Core.Fusion.resource in
    Printf.printf "audit records: %d (%d failures)\n\n"
      (Core.Audit.Audit.count audit)
      (Core.Audit.Audit.failure_count audit);
    Fmt.pr "%a@." Core.Audit.Reports.pp audit
    end
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a synthetic workload against the National Fusion Collaboratory testbed.")
    Term.(
      const run $ jobs $ seed $ baseline $ pep $ faults_arg $ fault_seed_arg
      $ snapshot_every_arg $ crash_at_arg $ batch_arg $ resources_arg $ population
      $ tokens_arg)

(* A short deterministic scenario on the fusion testbed so every decision
   point fires: permitted and denied submissions, a third-party cancel,
   and jobs running to completion. With --faults, requests run under
   250ms timeouts and management goes through the retrying client path,
   so retry/timeout/fault counters light up. Shared by `metrics` (which
   renders counters) and `trace export` (which renders spans). *)
let fusion_scenario ?authz_cache ~faults ~fault_seed () =
  let faults = faults_of faults in
  let request_timeout = Option.map (fun _ -> 0.25) faults in
  let w =
    Core.Fusion.build ~nodes:4 ~cpus_per_node:8 ?faults ~fault_seed ?request_timeout
      ?authz_cache ()
  in
  let submit client rsl = Core.Gram.Client.submit_sync client ~rsl in
  (* With a decision cache, poll each job's status a few times: the
     repeated identical queries are what the cache exists to absorb. *)
  let poll_status client contact =
    if Option.is_some authz_cache && Option.is_none faults then
      for _ = 1 to 3 do
        ignore (Core.Gram.Client.manage_sync client ~contact Core.Gram.Protocol.Status)
      done
  in
  let cancel client contact =
    match faults with
    | None -> ignore (Core.Gram.Client.manage_sync client ~contact Core.Gram.Protocol.Cancel)
    | Some _ ->
      ignore
        (Core.Gram.Client.manage_with_retry_sync ~deadline:30.0 client ~contact
           Core.Gram.Protocol.Cancel)
  in
  let status_with_retry client contact =
    if Option.is_some faults then
      ignore
        (Core.Gram.Client.manage_with_retry_sync ~deadline:30.0 client ~contact
           Core.Gram.Protocol.Status)
  in
  (match
     submit w.Core.Fusion.bo
       "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=40)"
   with
  | Ok reply ->
    status_with_retry w.Core.Fusion.bo reply.Core.Gram.Protocol.job_contact;
    poll_status w.Core.Fusion.bo reply.Core.Gram.Protocol.job_contact
  | Error _ -> ());
  (* denied: developers are capped at count <= 4 *)
  ignore
    (submit w.Core.Fusion.bo
       "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=6)");
  (* denied: analysts may not run test1 *)
  ignore
    (submit w.Core.Fusion.kate
       "&(executable=test1)(directory=/sandbox/test)(jobtag=NFC)");
  (match
     submit w.Core.Fusion.kate
       "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=120)"
   with
  | Ok reply ->
    status_with_retry w.Core.Fusion.kate reply.Core.Gram.Protocol.job_contact;
    poll_status w.Core.Fusion.kate reply.Core.Gram.Protocol.job_contact;
    (* third-party management: the VO admin cancels Kate's job *)
    cancel w.Core.Fusion.vo_admin reply.Core.Gram.Protocol.job_contact
  | Error _ -> ());
  Core.Testbed.run w.Core.Fusion.testbed;
  (w, faults)

let metrics_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("summary", `Summary); ("prom", `Prom); ("json", `Json) ]) `Summary
      & info [ "f"; "format" ] ~docv:"FORMAT"
          ~doc:"Output format: summary (human), prom (Prometheus text) or json.")
  in
  let spans =
    Arg.(value & flag & info [ "spans" ] ~doc:"Also print the span forest.")
  in
  let authz_cache_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "authz-cache" ] ~docv:"CAPACITY"
          ~doc:
            "Memoize authorization decisions in an LRU cache of $(docv) entries \
             (invalidated on policy reload and credential expiry); the scenario's \
             repeated status polls then surface as cache hits.")
  in
  let run format spans faults fault_seed authz_cache =
    let w, _faults = fusion_scenario ?authz_cache ~faults ~fault_seed () in
    let obs = Core.Gram.Resource.obs w.Core.Fusion.resource in
    (match format with
    | `Summary ->
      Fmt.pr "%a@." Core.Obs.Obs.pp_summary obs;
      (match Core.Gram.Resource.authz_cache w.Core.Fusion.resource with
      | Some cache -> Fmt.pr "@.%a@." Core.Callout.Cache.pp cache
      | None -> ())
    | `Prom -> print_string (Core.Obs.Metrics.to_prometheus (Core.Obs.Obs.metrics obs))
    | `Json -> print_endline (Core.Obs.Metrics.to_json (Core.Obs.Obs.metrics obs)));
    if spans then begin
      print_newline ();
      Fmt.pr "%a@." Core.Obs.Span.pp (Core.Obs.Obs.tracer obs)
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a short scenario on the fusion testbed and expose the collected metrics \
          (authorization decisions, per-stage latencies, LRM activity; with --faults, \
          retries/timeouts/fault counters).")
    Term.(const run $ format $ spans $ faults_arg $ fault_seed_arg $ authz_cache_arg)

let convert_cmd =
  let syntax =
    Arg.(
      required
      & opt (some (enum [ ("rsl", `Rsl); ("xml", `Xml) ])) None
      & info [ "t"; "to" ] ~docv:"SYNTAX" ~doc:"Target syntax: rsl or xml.")
  in
  let run target paths =
    try
      List.iter
        (fun path ->
          let text = read_file path in
          match parse_policy_text text with
          | Error m -> failwith (path ^ ": " ^ m)
          | Ok policy -> begin
            match target with
            | `Rsl -> print_endline (Grid_policy.Types.to_string policy)
            | `Xml ->
              print_string
                (Grid_policy.Xacml.to_string
                   ~policy_id:(Filename.remove_extension (Filename.basename path))
                   policy)
          end)
        paths
    with Failure m ->
      prerr_endline m;
      exit 1
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert policies between the RSL-based and XACML-style syntaxes.")
    Term.(const run $ syntax $ policy_files)

(* The journal commands run a small deterministic fusion workload against
   a durable job manager, then inspect what landed on the simulated disk.
   Everything is seed-driven, so the output is reproducible. *)
let journal_scenario ~jobs ~seed ~snapshot_every ~crash_at () =
  let w = Core.Fusion.build ~store:true ?snapshot_every () in
  (match crash_at with
  | None -> ()
  | Some at ->
    Core.Sim.Engine.schedule_at
      (Core.Testbed.engine w.Core.Fusion.testbed)
      at
      (fun () ->
        Core.Gram.Resource.crash w.Core.Fusion.resource;
        ignore (Core.Gram.Resource.recover w.Core.Fusion.resource)));
  let profiles =
    [ { Core.Workload.identity = Core.Gram.Client.identity w.Core.Fusion.bo;
        rsl_templates =
          [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)(simduration=40)";
            "&(executable=test1)(directory=/sandbox/test)" ];
        weight = 3 };
      { Core.Workload.identity = Core.Gram.Client.identity w.Core.Fusion.kate;
        rsl_templates =
          [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)(simduration=120)" ];
        weight = 2 } ]
  in
  ignore
    (Core.Workload.run
       ~engine:(Core.Testbed.engine w.Core.Fusion.testbed)
       ~resource:w.Core.Fusion.resource ~profiles
       { Core.Workload.default_config with Core.Workload.job_count = jobs; seed });
  w

let journal_jobs_arg =
  Arg.(value & opt int 12 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Jobs to generate.")

let journal_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let journal_show_cmd =
  let run jobs seed snapshot_every crash_at =
    let w = journal_scenario ~jobs ~seed ~snapshot_every ~crash_at () in
    match Core.Gram.Resource.store w.Core.Fusion.resource with
    | None -> ()
    | Some store ->
      let disk = Core.Store.Store.disk store in
      let show file =
        let r = Core.Store.Journal.replay ~disk ~file in
        Printf.printf "# %s: %d records\n" file (List.length r.Core.Store.Journal.records);
        List.iter
          (fun payload ->
            match Core.Gram.Persist.decode payload with
            | Ok event -> Fmt.pr "%a@." Core.Gram.Persist.pp_event event
            | Error _ -> Printf.printf "  (meta) %s\n" payload)
          r.Core.Store.Journal.records
      in
      show (Core.Store.Store.snapshot_file store);
      show (Core.Store.Store.journal_file store);
      print_store_summary w.Core.Fusion.resource
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Run a deterministic durable workload and print the decoded journal/snapshot.")
    Term.(
      const run $ journal_jobs_arg $ journal_seed_arg $ snapshot_every_arg $ crash_at_arg)

let journal_verify_cmd =
  let run jobs seed snapshot_every crash_at =
    let w = journal_scenario ~jobs ~seed ~snapshot_every ~crash_at () in
    match Core.Gram.Resource.store w.Core.Fusion.resource with
    | None -> ()
    | Some store ->
      let checks = Core.Store.Store.verify store in
      List.iter (fun check -> Fmt.pr "%a@." Core.Store.Store.pp_check check) checks;
      let corrupt =
        List.exists
          (fun c -> Option.is_some c.Core.Store.Store.check_corruption)
          checks
      in
      exit (if corrupt then 1 else 0)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run a deterministic durable workload and scan the store's files end to end, \
          exiting 1 on any framing/checksum corruption.")
    Term.(
      const run $ journal_jobs_arg $ journal_seed_arg $ snapshot_every_arg $ crash_at_arg)

let journal_cmd =
  Cmd.group
    (Cmd.info "journal" ~doc:"Inspect the durable job-manager journal and snapshot.")
    [ journal_show_cmd; journal_verify_cmd ]

let soak_cmd =
  let days_arg =
    Arg.(
      value & opt float 3.0
      & info [ "days" ] ~docv:"DAYS" ~doc:"Campaign length in simulated days.")
  in
  let jobs_per_day_arg =
    Arg.(
      value & opt int 400
      & info [ "jobs-per-day" ] ~docv:"N" ~doc:"Baseline Poisson arrival volume per day.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.")
  in
  let soak_faults_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("none", Core.Soak.No_faults); ("light", Core.Soak.Light);
               ("heavy", Core.Soak.Heavy) ])
          Core.Soak.Light
      & info [ "faults" ] ~docv:"PROFILE"
          ~doc:
            "Chaos level: none, light (1% drops, mild delays) or heavy (5% drops, heavy \
             delays, torn writes on the store's disk).")
  in
  let inject_arg =
    let parse s =
      match Core.Obs.Monitor.class_of_string s with
      | Some c -> Ok c
      | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown violation class %S (expected one of: %s)" s
               (String.concat ", "
                  (List.map Core.Obs.Monitor.class_to_string Core.Obs.Monitor.all_classes))))
    in
    let print ppf c = Fmt.string ppf (Core.Obs.Monitor.class_to_string c) in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "inject-violation" ] ~docv:"CLASS"
          ~doc:
            "Self-test mode: provoke exactly this violation class (default_deny, \
             stale_epoch, expired_credential, recovery_divergence, fail_open_upgrade, \
             token_revocation) and require the monitor to report it — and nothing \
             else.")
  in
  let no_monitor_arg =
    Arg.(
      value & flag
      & info [ "no-monitor" ]
          ~doc:"Run without the safety monitor (overhead baselines only).")
  in
  let window_arg =
    Arg.(
      value & opt float 300.0
      & info [ "propagation-window" ] ~docv:"SECONDS"
          ~doc:
            "Grace period after a revocation or policy-epoch change before decisions \
             against the old state count as violations.")
  in
  let pep_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("flat-file", Core.Soak.Flat_file_pep); ("rebac", Core.Soak.Rebac_pep) ])
          Core.Soak.Flat_file_pep
      & info [ "pep" ] ~docv:"BACKEND"
          ~doc:
            "Authorization backend under soak: flat-file (compiled policy index) or \
             rebac (relationship-based tuple graph). The monitor's oracle re-derives \
             decisions through the matching engine either way.")
  in
  let run days jobs_per_day seed faults inject no_monitor window pep batch resources
      tokens =
    let report =
      Core.Soak.run
        { Core.Soak.days; jobs_per_day; seed; faults; monitor = not no_monitor;
          inject; propagation_window = window; pep; batch; resources; tokens }
    in
    Fmt.pr "%a@." Core.Soak.pp_report report;
    match inject with
    | None ->
      if report.Core.Soak.violations <> [] then begin
        Fmt.epr "soak: %d unexpected safety violation(s)@."
          (List.length report.Core.Soak.violations);
        exit 1
      end
    | Some expected -> begin
      match Core.Soak.violation_classes report with
      | [ actual ] when actual = expected ->
        Fmt.pr "self-test: injected %s detected@."
          (Core.Obs.Monitor.class_to_string expected)
      | classes ->
        Fmt.epr "self-test FAILED: injected %s, monitor reported [%s]@."
          (Core.Obs.Monitor.class_to_string expected)
          (String.concat "; " (List.map Core.Obs.Monitor.class_to_string classes));
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run a multi-day chaos campaign — credential renewal/revocation, policy churn, \
          job-manager crashes, network/disk faults — under the online safety monitor. \
          Exits 1 on any safety violation (or, with --inject-violation, unless exactly \
          the injected class is detected).")
    Term.(
      const run $ days_arg $ jobs_per_day_arg $ seed_arg $ soak_faults_arg $ inject_arg
      $ no_monitor_arg $ window_arg $ pep_arg $ batch_arg $ resources_arg $ tokens_arg)

let trace_export_cmd =
  let output_arg =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output path for the Chrome trace_event JSON ('-' for stdout).")
  in
  let run output faults fault_seed authz_cache =
    let w, _ = fusion_scenario ?authz_cache ~faults ~fault_seed () in
    let obs = Core.Gram.Resource.obs w.Core.Fusion.resource in
    let json = Core.Obs.Span.to_chrome_json (Core.Obs.Obs.tracer obs) in
    if output = "-" then print_string json
    else begin
      let oc = open_out output in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s (%d spans); open in chrome://tracing or Perfetto\n" output
        (List.length (Core.Obs.Span.spans (Core.Obs.Obs.tracer obs)))
    end
  in
  let authz_cache_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "authz-cache" ] ~docv:"CAPACITY"
          ~doc:"Enable the authorization decision cache for the traced scenario.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Run the short fusion scenario and export its span tree as Chrome trace_event \
          JSON (chrome://tracing / Perfetto; ts/dur in microseconds of simulated time).")
    Term.(const run $ output_arg $ faults_arg $ fault_seed_arg $ authz_cache_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Export request traces for external viewers.")
    [ trace_export_cmd ]

let figure3_cmd =
  let run () =
    print_endline Grid_policy.Figure3.text;
    let policy = Grid_policy.Figure3.get () in
    Printf.printf "(%d statements, validates: %b)\n" (List.length policy)
      (Result.is_ok (Grid_policy.Eval.validate policy))
  in
  Cmd.v
    (Cmd.info "figure3" ~doc:"Print the paper's Figure 3 example policy.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "gridctl" ~version:Core.version
      ~doc:"Fine-grain authorization policies for grid resource management."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ check_cmd; show_cmd; eval_cmd; convert_cmd; lint_cmd; rights_cmd;
            simulate_cmd; metrics_cmd; journal_cmd; soak_cmd; trace_cmd; figure3_cmd ]))
