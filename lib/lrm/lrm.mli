(** Local resource manager: a PBS/LSF stand-in over the simulation engine.

    Nodes with CPUs, priority queues, and the management operations the
    GRAM Job Manager needs (submit, cancel, suspend, resume, priority
    signal, query). Walltime budgets are consumed while running and
    enforced by killing the job. *)

type node

type queue_config = {
  queue_name : string;
  priority : int;
  max_walltime : float option;
}

type state =
  | Pending
  | Running
  | Suspended
  | Completed
  | Cancelled
  | Killed of string

val state_to_string : state -> string

type spec = {
  account : string;
  cpus : int;
  duration : float;
  walltime_limit : float option;
  queue : string option;
}

type job = private {
  id : string;
  spec : spec;
  queue : queue_config;
  submitted_at : Grid_sim.Clock.time;
  mutable priority : int;
  mutable state : state;
  mutable remaining : float;
  mutable walltime_used : float;
  mutable started_at : Grid_sim.Clock.time;
  mutable allocation : (node * int) list;
  mutable generation : int;
  mutable arrival : int;
}

type event =
  | State_changed of { job : job; from_state : state }

type t

type error =
  | Unknown_queue of string
  | Too_many_cpus of { requested : int; capacity : int }
  | Unknown_job of string
  | Invalid_transition of { job : string; state : state; operation : string }

val error_to_string : error -> string
val pp_error : error Fmt.t

val default_queues : queue_config list
(** "batch" (priority 0, no cap) and "priority" (priority 10, 2 h cap). *)

val create :
  ?obs:Grid_obs.Obs.t ->
  ?queues:queue_config list ->
  nodes:int ->
  cpus_per_node:int ->
  Grid_sim.Engine.t ->
  t
(** The first queue is the default. Raises [Invalid_argument] on an empty
    cluster or queue list. [obs] feeds submission/terminal-state counters
    ([lrm_submissions_total], [lrm_jobs_total]), queue-wait and walltime
    histograms, and CPU occupancy gauges. *)

val capacity : t -> int
val queue_names : t -> string list
val free_cpus : t -> int
val cpus_in_use : t -> int

val on_event : t -> (event -> unit) -> unit
(** Observe every job state change (the JMI's monitoring hook). *)

val submit : t -> spec -> (string, error) result
(** Queue a job; returns its id. Scheduling happens immediately and on
    every capacity change. *)

val cancel : t -> string -> (string, error) result
val suspend : t -> string -> (string, error) result
val resume : t -> string -> (string, error) result
val set_priority : t -> string -> int -> (string, error) result

type status = {
  job_id : string;
  job_state : state;
  job_account : string;
  job_cpus : int;
  job_remaining : float;
  job_walltime_used : float;
  job_queue : string;
  job_priority : int;
}

val query : t -> string -> (status, error) result

val jobs : t -> job list
val running_jobs : t -> job list
val pending_jobs : t -> job list

val invariant_holds : t -> bool
(** No node over-allocated; allocation bookkeeping consistent. *)
