(* The local resource manager: a PBS/LSF stand-in.

   The Job Manager Instance "interfaces with the resource's job control
   system (e.g. LSF, PBS) to initiate the user's job" — this is that job
   control system. A cluster of nodes with CPUs, named priority queues,
   and a scheduler; jobs run under local accounts, consume CPUs for a
   simulated duration, and support the management operations GRAM needs:
   cancel, suspend, resume, signal (priority change), query.

   Scheduling: whenever capacity or the pending set changes, the scheduler
   scans pending jobs in (queue priority, job priority, arrival) order and
   starts every job that fits — i.e. priority-ordered first-fit with
   skipping (small low-priority jobs may backfill around a large blocked
   one; adequate for a simulator substrate).

   Walltime accounting: a job's walltime budget is consumed only while
   running (it survives suspension); exceeding it kills the job, mirroring
   batch-system behaviour. Completion events are invalidated by a per-job
   generation counter so suspend/cancel races cannot double-fire. *)

type node = {
  node_id : int;
  cpus : int;
  mutable free : int;
}

type queue_config = {
  queue_name : string;
  priority : int;                  (* higher runs first *)
  max_walltime : float option;     (* seconds; queue-level cap *)
}

type state =
  | Pending
  | Running
  | Suspended
  | Completed
  | Cancelled
  | Killed of string               (* e.g. walltime exceeded *)

let state_to_string = function
  | Pending -> "pending"
  | Running -> "running"
  | Suspended -> "suspended"
  | Completed -> "completed"
  | Cancelled -> "cancelled"
  | Killed why -> "killed: " ^ why

type spec = {
  account : string;                (* local credential the job runs under *)
  cpus : int;
  duration : float;                (* compute seconds needed *)
  walltime_limit : float option;   (* job-level cap, seconds *)
  queue : string option;           (* None: default queue *)
}

type job = {
  id : string;
  spec : spec;
  queue : queue_config;
  submitted_at : Grid_sim.Clock.time;
  mutable priority : int;          (* job-level, adjustable via signal *)
  mutable state : state;
  mutable remaining : float;       (* compute seconds still needed *)
  mutable walltime_used : float;
  mutable started_at : Grid_sim.Clock.time; (* of current run slice *)
  mutable allocation : (node * int) list;
  mutable generation : int;        (* invalidates stale completion events *)
  mutable arrival : int;           (* FIFO tiebreak *)
}

type event =
  | State_changed of { job : job; from_state : state }

type t = {
  engine : Grid_sim.Engine.t;
  obs : Grid_obs.Obs.t;
  nodes : node list;
  queues : queue_config list;
  default_queue : queue_config;
  jobs : (string, job) Hashtbl.t;
  mutable pending : job list;      (* insertion order; sorted at pass time *)
  mutable arrivals : int;
  mutable listeners : (event -> unit) list;
}

type error =
  | Unknown_queue of string
  | Too_many_cpus of { requested : int; capacity : int }
  | Unknown_job of string
  | Invalid_transition of { job : string; state : state; operation : string }

let error_to_string = function
  | Unknown_queue q -> "unknown queue: " ^ q
  | Too_many_cpus { requested; capacity } ->
    Printf.sprintf "requested %d cpus but the cluster has %d" requested capacity
  | Unknown_job id -> "unknown job: " ^ id
  | Invalid_transition { job; state; operation } ->
    Printf.sprintf "cannot %s job %s in state %s" operation job (state_to_string state)

let pp_error ppf e = Fmt.string ppf (error_to_string e)

let default_queues =
  [ { queue_name = "batch"; priority = 0; max_walltime = None };
    { queue_name = "priority"; priority = 10; max_walltime = Some 7200.0 } ]

let create ?(obs = Grid_obs.Obs.noop) ?(queues = default_queues) ~nodes ~cpus_per_node
    engine =
  if nodes <= 0 || cpus_per_node <= 0 then invalid_arg "Lrm.create: empty cluster";
  (match queues with [] -> invalid_arg "Lrm.create: no queues" | _ :: _ -> ());
  { engine;
    obs;
    nodes = List.init nodes (fun i -> { node_id = i; cpus = cpus_per_node; free = cpus_per_node });
    queues;
    default_queue = List.hd queues;
    jobs = Hashtbl.create 64;
    pending = [];
    arrivals = 0;
    listeners = [] }

let capacity t = List.fold_left (fun acc (n : node) -> acc + n.cpus) 0 t.nodes
let queue_names t = List.map (fun q -> q.queue_name) t.queues
let free_cpus t = List.fold_left (fun acc n -> acc + n.free) 0 t.nodes
let cpus_in_use t = capacity t - free_cpus t

let on_event t f = t.listeners <- f :: t.listeners

let emit t ev = List.iter (fun f -> f ev) t.listeners

(* Cluster occupancy gauges; refreshed on every allocation change. *)
let update_gauges t =
  if Grid_obs.Obs.enabled t.obs then begin
    Grid_obs.Obs.set_gauge t.obs "lrm_cpus_in_use" (float_of_int (cpus_in_use t));
    Grid_obs.Obs.set_gauge t.obs "lrm_cpus_free" (float_of_int (free_cpus t))
  end

(* Coarse label for terminal-state accounting; "killed: <why>" would be an
   unbounded label value. *)
let terminal_label = function
  | Completed -> "completed"
  | Cancelled -> "cancelled"
  | Killed _ -> "killed"
  | Pending | Running | Suspended -> assert false

let set_state t job state =
  let from_state = job.state in
  if from_state <> state then begin
    job.state <- state;
    (if Grid_obs.Obs.enabled t.obs then
       match state with
       | Completed | Cancelled | Killed _ ->
         (* walltime_used is settled before terminal transitions. *)
         Grid_obs.Obs.incr t.obs
           ~labels:[ ("state", terminal_label state) ]
           "lrm_jobs_total";
         Grid_obs.Obs.observe t.obs "lrm_job_walltime_seconds" job.walltime_used
       | Running ->
         (* First run slice only: queue wait is submission-to-first-start,
            not time spent suspended. *)
         if job.walltime_used = 0.0 then
           Grid_obs.Obs.observe t.obs "lrm_queue_wait_seconds"
             (Grid_sim.Engine.now t.engine -. job.submitted_at)
       | Pending | Suspended -> ());
    emit t (State_changed { job; from_state })
  end

let find_job t id =
  match Hashtbl.find_opt t.jobs id with
  | Some job -> Ok job
  | None -> Error (Unknown_job id)

(* --- Allocation ----------------------------------------------------- *)

(* First-fit across nodes; jobs may span nodes. *)
let try_allocate t cpus =
  if free_cpus t < cpus then None
  else begin
    let needed = ref cpus in
    let taken = ref [] in
    List.iter
      (fun node ->
        if !needed > 0 && node.free > 0 then begin
          let take = min node.free !needed in
          node.free <- node.free - take;
          needed := !needed - take;
          taken := (node, take) :: !taken
        end)
      t.nodes;
    assert (!needed = 0);
    Some !taken
  end

let release allocation =
  List.iter (fun (node, n) -> node.free <- node.free + n) allocation

(* --- Scheduling ------------------------------------------------------ *)

let job_order a b =
  let by_queue = compare b.queue.priority a.queue.priority in
  if by_queue <> 0 then by_queue
  else
    let by_prio = compare b.priority a.priority in
    if by_prio <> 0 then by_prio else compare a.arrival b.arrival

(* Remaining walltime budget: the tighter of job and queue caps. *)
let walltime_left job =
  let caps =
    List.filter_map (fun c -> c) [ job.spec.walltime_limit; job.queue.max_walltime ]
  in
  match caps with
  | [] -> infinity
  | caps -> List.fold_left min infinity caps -. job.walltime_used

let rec schedule_pass t =
  let now = Grid_sim.Engine.now t.engine in
  let candidates = List.sort job_order t.pending in
  let started = ref false in
  List.iter
    (fun job ->
      if job.state = Pending then begin
        match try_allocate t job.spec.cpus with
        | None -> ()
        | Some allocation ->
          t.pending <- List.filter (fun j -> j != job) t.pending;
          job.allocation <- allocation;
          job.started_at <- now;
          job.generation <- job.generation + 1;
          started := true;
          set_state t job Running;
          let budget = walltime_left job in
          let run_for = min job.remaining budget in
          let generation = job.generation in
          let timeout = job.remaining > budget in
          Grid_sim.Engine.schedule_after t.engine run_for (fun () ->
              complete t job ~generation ~timeout)
      end)
    candidates;
  if !started then update_gauges t

and complete t job ~generation ~timeout =
  (* Stale event: the job was suspended/cancelled since this was set. *)
  if job.generation = generation && job.state = Running then begin
    let now = Grid_sim.Engine.now t.engine in
    let ran = now -. job.started_at in
    job.walltime_used <- job.walltime_used +. ran;
    job.remaining <- Float.max 0.0 (job.remaining -. ran);
    release job.allocation;
    job.allocation <- [];
    update_gauges t;
    if timeout then set_state t job (Killed "walltime exceeded")
    else set_state t job Completed;
    schedule_pass t
  end

(* --- Operations -------------------------------------------------------- *)

let count_submission t outcome =
  if Grid_obs.Obs.enabled t.obs then
    Grid_obs.Obs.incr t.obs ~labels:[ ("outcome", outcome) ] "lrm_submissions_total"

let submit t (spec : spec) =
  if spec.cpus <= 0 then invalid_arg "Lrm.submit: cpus must be positive";
  if spec.duration < 0.0 then invalid_arg "Lrm.submit: negative duration";
  let queue_result =
    match spec.queue with
    | None -> Ok t.default_queue
    | Some name -> begin
      match List.find_opt (fun q -> q.queue_name = name) t.queues with
      | Some q -> Ok q
      | None -> Error (Unknown_queue name)
    end
  in
  match queue_result with
  | Error _ as e ->
    count_submission t "rejected";
    e
  | Ok queue ->
    if spec.cpus > capacity t then begin
      count_submission t "rejected";
      Error (Too_many_cpus { requested = spec.cpus; capacity = capacity t })
    end
    else begin
      count_submission t "accepted";
      t.arrivals <- t.arrivals + 1;
      let job =
        { id = Grid_util.Ids.job ();
          spec;
          queue;
          submitted_at = Grid_sim.Engine.now t.engine;
          priority = 0;
          state = Pending;
          remaining = spec.duration;
          walltime_used = 0.0;
          started_at = Grid_sim.Engine.now t.engine;
          allocation = [];
          generation = 0;
          arrival = t.arrivals }
      in
      Hashtbl.replace t.jobs job.id job;
      t.pending <- t.pending @ [ job ];
      emit t (State_changed { job; from_state = Pending });
      schedule_pass t;
      Ok job.id
    end

(* Account running time when a job leaves the Running state early. *)
let checkpoint_run t job =
  let now = Grid_sim.Engine.now t.engine in
  let ran = now -. job.started_at in
  job.walltime_used <- job.walltime_used +. ran;
  job.remaining <- Float.max 0.0 (job.remaining -. ran);
  release job.allocation;
  job.allocation <- [];
  update_gauges t;
  job.generation <- job.generation + 1

let cancel t id =
  match find_job t id with
  | Error _ as e -> e
  | Ok job -> begin
    match job.state with
    | Pending ->
      t.pending <- List.filter (fun j -> j != job) t.pending;
      set_state t job Cancelled;
      Ok id
    | Running ->
      checkpoint_run t job;
      set_state t job Cancelled;
      schedule_pass t;
      Ok id
    | Suspended ->
      set_state t job Cancelled;
      Ok id
    | Completed | Cancelled | Killed _ ->
      Error (Invalid_transition { job = id; state = job.state; operation = "cancel" })
  end

let suspend t id =
  match find_job t id with
  | Error _ as e -> e
  | Ok job -> begin
    match job.state with
    | Running ->
      checkpoint_run t job;
      set_state t job Suspended;
      schedule_pass t;
      Ok id
    | Pending | Suspended | Completed | Cancelled | Killed _ ->
      Error (Invalid_transition { job = id; state = job.state; operation = "suspend" })
  end

let resume t id =
  match find_job t id with
  | Error _ as e -> e
  | Ok job -> begin
    match job.state with
    | Suspended ->
      set_state t job Pending;
      t.pending <- job :: t.pending;
      schedule_pass t;
      Ok id
    | Pending | Running | Completed | Cancelled | Killed _ ->
      Error (Invalid_transition { job = id; state = job.state; operation = "resume" })
  end

let set_priority t id priority =
  match find_job t id with
  | Error _ as e -> e
  | Ok job ->
    job.priority <- priority;
    schedule_pass t;
    Ok id

type status = {
  job_id : string;
  job_state : state;
  job_account : string;
  job_cpus : int;
  job_remaining : float;
  job_walltime_used : float;
  job_queue : string;
  job_priority : int;
}

let query t id =
  match find_job t id with
  | Error _ as e -> e
  | Ok job ->
    Ok
      { job_id = job.id;
        job_state = job.state;
        job_account = job.spec.account;
        job_cpus = job.spec.cpus;
        job_remaining = job.remaining;
        job_walltime_used = job.walltime_used;
        job_queue = job.queue.queue_name;
        job_priority = job.priority }

let jobs t = Hashtbl.fold (fun _ job acc -> job :: acc) t.jobs []

let running_jobs t = List.filter (fun j -> j.state = Running) (jobs t)
let pending_jobs t = List.filter (fun j -> j.state = Pending) (jobs t)

(* Invariant checked by the property tests: allocations never exceed any
   node's capacity, and bookkeeping is consistent. *)
let invariant_holds t =
  List.for_all (fun n -> n.free >= 0 && n.free <= n.cpus) t.nodes
  &&
  let allocated =
    List.fold_left
      (fun acc j -> acc + List.fold_left (fun a (_, c) -> a + c) 0 j.allocation)
      0 (running_jobs t)
  in
  allocated = cpus_in_use t
