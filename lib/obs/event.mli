(** Structured wide events with request correlation.

    The third observability signal next to metrics and spans: every
    layer emits self-describing events (string attributes) onto a shared
    bus, each stamped with the simulation time and the correlation id of
    the request being processed. The online safety monitor
    ({!Monitor}) is the principal subscriber; [gridctl soak] reports
    violations as chains of these events.

    The bus keeps an ambient correlation stack (sound because the whole
    system is single-threaded over one simulation engine): request entry
    points push an id, asynchronous continuations re-establish it, and
    {!emit} attaches the innermost id automatically. *)

type t = {
  seq : int;  (** global emission order (monotonic per bus) *)
  at : Grid_sim.Clock.time;
  corr : string option;  (** correlation id of the originating request *)
  layer : string;  (** emitting component, e.g. ["gram"], ["callout"] *)
  kind : string;  (** event name, e.g. ["authz.decision"] *)
  attrs : (string * string) list;
}

type bus

val create_bus : unit -> bus

val subscribe : bus -> (t -> unit) -> unit
(** Listeners run synchronously at emission, in subscription order. *)

val emitted : bus -> int
(** Total events emitted on this bus. *)

val fresh_corr : bus -> string
(** Mint a new correlation id (["c-000042"]); deterministic per bus. *)

val current_corr : bus -> string option
(** Innermost ambient correlation id, if any. *)

val with_corr : bus -> string -> (unit -> 'a) -> 'a
(** Run the callback with [corr] as the ambient correlation id. *)

val emit :
  bus ->
  at:Grid_sim.Clock.time ->
  ?corr:string ->
  layer:string ->
  kind:string ->
  (string * string) list ->
  unit
(** Emit an event. [corr] defaults to the ambient correlation id. *)

val attr : t -> string -> string option
val attr_int : t -> string -> int option
val attr_float : t -> string -> float option

val pp : t Fmt.t
