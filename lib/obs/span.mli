(** Span-based tracing: nested, timed intervals over the simulation clock.

    Where [Grid_sim.Trace] records flat component-to-component arrows
    (the paper's Figure 1/2 diagrams), spans carry structure: a parent,
    a start and end in simulated time, and free-form attributes. The
    request path uses them to answer "where did this submission spend its
    time" — gatekeeper vs callout vs policy evaluation vs LRM.

    The tracer keeps an explicit scope stack: spans opened with
    {!enter}/{!exit} (or [Obs.with_span]) nest automatically. The whole
    system is single-threaded over one simulation engine, so the stack
    discipline matches the synchronous call structure; asynchronous
    work (network hops, job lifetimes) uses detached spans via
    {!start}/{!finish}.

    Timestamps come from [Grid_sim.Clock] values supplied by the caller,
    so traces are as deterministic as the simulation that produced
    them. *)

type span = private {
  id : int;
  name : string;
  parent : int option;
  started_at : Grid_sim.Clock.time;
  mutable ended_at : Grid_sim.Clock.time option;
  mutable attrs : (string * string) list;
}

type t

val create : ?max_spans:int -> unit -> t
(** [max_spans] caps retention (default 100_000): beyond it, spans are
    counted in {!dropped} but not stored, bounding memory under sustained
    load. The cap never affects metric recording, which is external. *)

val null : span
(** Inert span handed out by disabled observers; never stored. *)

(* {1 Scoped spans} *)

val enter : t -> at:Grid_sim.Clock.time -> ?attrs:(string * string) list -> string -> span
(** Open a span as a child of the innermost open span and make it the
    current scope. *)

val exit : t -> span -> at:Grid_sim.Clock.time -> unit
(** Close a scoped span. Closes any deeper spans still open (defensive:
    an exception may have unwound past them). *)

val in_scope : t -> span -> (unit -> 'a) -> 'a
(** Re-establish an existing span as current scope for the duration of the
    callback, without touching its timestamps: how an asynchronous
    continuation (a network delivery) reparents its work under the
    request span. *)

(* {1 Detached spans} *)

val start : t -> at:Grid_sim.Clock.time -> ?parent:span -> ?attrs:(string * string) list -> string -> span
(** Start a span that is not pushed on the scope stack. [parent] defaults
    to the innermost open span, if any. *)

val finish : span -> at:Grid_sim.Clock.time -> unit

(* {1 Inspection} *)

val set_attr : span -> string -> string -> unit
val duration : span -> float option
(** None while the span is open. *)

val spans : t -> span list
(** In start order. *)

val find : t -> name:string -> span list
val roots : t -> span list
val children : t -> span -> span list
val depth : t -> int
(** Currently open scoped spans. *)

val dropped : t -> int

type stage = {
  stage_count : int;
  stage_total : float;
  stage_max : float;
}

val summarize : t -> (string * stage) list
(** Completed spans grouped by name, sorted by name: the per-stage
    latency breakdown. *)

val to_chrome_json : t -> string
(** Export every closed span as a Chrome [trace_event] "X" (complete)
    event — [ts]/[dur] in microseconds of simulated time, attributes and
    the parent span id under [args]. The output loads directly into
    chrome://tracing or Perfetto ([gridctl trace export]). *)

val pp_span : span Fmt.t
val pp : t Fmt.t
(** Render the span forest, indented by depth, with durations. *)
