(** The observability handle threaded through the request path: one
    metrics registry + one span tracer + the clock that timestamps both.

    Components receive an [Obs.t] (usually the testbed's, created from the
    simulation engine) and record through the convenience functions here;
    {!noop} is an always-disabled handle for call sites that were built
    without observability, so instrumentation never needs [Option]
    plumbing.

    Every span closed through {!with_span}/{!finish_span} also feeds the
    [stage_seconds{stage=<name>}] latency histogram, which is where the
    per-stage breakdown (callout vs policy evaluation vs LRM) comes
    from. *)

type t

val create : ?clock:(unit -> Grid_sim.Clock.time) -> unit -> t
(** [clock] defaults to a constant 0 (durations all zero); pass the
    engine clock for meaningful timings. *)

val of_engine : Grid_sim.Engine.t -> t
(** Clocked by [Grid_sim.Engine.now]: deterministic timestamps. *)

val noop : t
(** Disabled: records nothing, costs a branch. *)

val scoped : t -> (string * string) list -> t
(** A handle sharing [t]'s registry, tracer, bus and clock that stamps
    the given attributes on every event it emits and appends them as
    labels to every metric it records — e.g.
    [scoped obs [("resource", name)]] gives one fleet member's whole
    emission stream its per-resource dimension. Explicit event
    attributes and metric labels win over scope ones; nesting composes
    with the inner scope winning. A disabled handle is returned
    unchanged. *)

val enabled : t -> bool
val metrics : t -> Metrics.t
val tracer : t -> Span.t
val now : t -> Grid_sim.Clock.time

val events : t -> Event.bus
(** The wide-event bus: the {!Monitor} and other consumers subscribe
    here. *)

(** {1 Wide events and correlation} *)

val emit : t -> ?corr:string -> layer:string -> string -> (string * string) list -> unit
(** [emit t ~layer kind attrs] publishes a wide event stamped with the
    clock and the ambient correlation id (overridable via [corr]). A
    disabled handle emits nothing. *)

val fresh_correlation : t -> string
(** Mint a correlation id for a new request. *)

val correlation : t -> string option
(** The ambient correlation id, if inside {!with_correlation}. *)

val with_correlation : t -> corr:string -> (unit -> 'a) -> 'a
(** Make [corr] the ambient correlation id for the callback: every
    {!emit} underneath inherits it. Network-delivery continuations use
    this to re-establish their request's id. *)

val ensure_correlation : t -> (unit -> 'a) -> 'a
(** Run under the ambient correlation id, minting a fresh one only when
    none is established — how direct (non-networked) entry points get
    correlated events without double-tagging networked requests. *)

(** {1 Metrics shorthands} *)

val incr : t -> ?by:float -> ?labels:Metrics.labels -> string -> unit
val set_gauge : t -> ?labels:Metrics.labels -> string -> float -> unit
val observe : t -> ?labels:Metrics.labels -> string -> float -> unit

(** {1 Spans} *)

val with_span : t -> ?attrs:(string * string) list -> string -> (Span.span -> 'a) -> 'a
(** Run the callback inside a scoped span; on close, record its duration
    into [stage_seconds{stage=<name>}]. *)

val start_span : t -> ?parent:Span.span -> ?attrs:(string * string) list -> string -> Span.span
(** Detached span (see {!Span.start}); close with {!finish_span}. *)

val finish_span : t -> Span.span -> unit

val in_scope : t -> Span.span -> (unit -> 'a) -> 'a

val stage_metric : string
(** ["stage_seconds"], the histogram fed by span closure. *)

(** {1 Reporting} *)

val pp_summary : t Fmt.t
(** Counters and gauges, then the per-stage latency table — the snapshot
    the examples print after a scenario. *)
