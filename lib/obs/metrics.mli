(** Metrics registry: counters, gauges and fixed-bucket latency histograms,
    keyed by name + label set.

    The registry is the quantitative half of [Grid_obs]: every component on
    the authorization critical path (gatekeeper, job manager, callout,
    policy evaluation, LRM) records into one registry, and the result is
    exposed as Prometheus-style text or JSON. Label sets are canonicalised
    (sorted by key), so [[("a","1");("b","2")]] and [[("b","2");("a","1")]]
    address the same series. A name identifies exactly one metric kind;
    re-registering it as a different kind raises [Invalid_argument]. *)

type t

type labels = (string * string) list

val create : unit -> t

(** {1 Recording} *)

val inc : t -> ?by:float -> ?labels:labels -> string -> unit
(** Increment a counter (default by 1). [by] must be non-negative. *)

val set : t -> ?labels:labels -> string -> float -> unit
(** Set a gauge. *)

val observe : t -> ?buckets:float array -> ?labels:labels -> string -> float -> unit
(** Record a histogram observation. [buckets] (strictly increasing upper
    bounds, inclusive) applies on first registration of the series;
    defaults to {!default_buckets}. *)

val default_buckets : float array
(** Latency buckets in (simulated) seconds, 1 ms .. 10 min. *)

(** {1 Reading} *)

val counter_value : t -> ?labels:labels -> string -> float
(** 0 when the series does not exist. *)

val counter_total : t -> string -> float
(** Sum of a counter over all its label sets. *)

val gauge_value : t -> ?labels:labels -> string -> float

type summary = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** Quantiles are estimated by linear interpolation within buckets and
    clamped to the largest observed value. *)

val histogram_summary : t -> ?labels:labels -> string -> summary option

(** {1 Exposition} *)

type data =
  | Counter of float
  | Gauge of float
  | Histogram of {
      summary : summary;
      buckets : (float * int) list;  (** cumulative, (upper bound, count) *)
    }

type series = {
  series_name : string;
  series_labels : labels;
  series_data : data;
}

val dump : t -> series list
(** All series, sorted by name then labels: the stable exposition order. *)

val to_prometheus : t -> string
val to_json : t -> string

val pp : t Fmt.t
(** Human-readable snapshot (counters and gauges; histograms as
    count/p50/p90/p99/max). *)
