(* Span tracing.

   Spans are stored in reverse start order with a per-name index built
   lazily only by [find] callers — the hot path (enter/exit) is a list
   cons and a stack push/pop. Retention is capped: a long workload keeps
   the first [max_spans] spans (deterministic: the prefix of the run) and
   counts the rest as dropped. *)

type span = {
  id : int;
  name : string;
  parent : int option;
  started_at : Grid_sim.Clock.time;
  mutable ended_at : Grid_sim.Clock.time option;
  mutable attrs : (string * string) list;
}

type t = {
  mutable stored : span list;  (* reverse start order *)
  mutable stored_count : int;
  mutable next_id : int;
  mutable stack : span list;   (* innermost first *)
  mutable dropped : int;
  max_spans : int;
}

let create ?(max_spans = 100_000) () =
  { stored = []; stored_count = 0; next_id = 0; stack = []; dropped = 0; max_spans }

let null =
  { id = -1; name = "(null)"; parent = None; started_at = 0.0; ended_at = Some 0.0;
    attrs = [] }

let mk t ~at ~parent ?(attrs = []) name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let span = { id; name; parent; started_at = at; ended_at = None; attrs } in
  if t.stored_count < t.max_spans then begin
    t.stored <- span :: t.stored;
    t.stored_count <- t.stored_count + 1
  end
  else t.dropped <- t.dropped + 1;
  span

let current_parent t = match t.stack with [] -> None | s :: _ -> Some s.id

let enter t ~at ?attrs name =
  let span = mk t ~at ~parent:(current_parent t) ?attrs name in
  t.stack <- span :: t.stack;
  span

let exit t span ~at =
  (* Pop everything down to and including [span]; deeper spans left open by
     a non-local exit are closed at the same instant. *)
  let rec pop = function
    | [] -> []
    | s :: rest ->
      if s.ended_at = None then s.ended_at <- Some at;
      if s == span then rest else pop rest
  in
  if List.memq span t.stack then t.stack <- pop t.stack
  else if span.ended_at = None then span.ended_at <- Some at

let in_scope t span f =
  t.stack <- span :: t.stack;
  Fun.protect
    ~finally:(fun () ->
      t.stack <- (match t.stack with s :: rest when s == span -> rest | stack -> stack))
    f

let start t ~at ?parent ?attrs name =
  let parent =
    match parent with Some p -> Some p.id | None -> current_parent t
  in
  mk t ~at ~parent ?attrs name

let finish span ~at = if span.ended_at = None then span.ended_at <- Some at

let set_attr span k v = span.attrs <- (k, v) :: List.remove_assoc k span.attrs

let duration span =
  match span.ended_at with Some e -> Some (e -. span.started_at) | None -> None

let spans t = List.rev t.stored
let find t ~name = List.filter (fun s -> String.equal s.name name) (spans t)
let roots t = List.filter (fun s -> s.parent = None) (spans t)
let children t span = List.filter (fun s -> s.parent = Some span.id) (spans t)
let depth t = List.length t.stack
let dropped t = t.dropped

type stage = {
  stage_count : int;
  stage_total : float;
  stage_max : float;
}

let summarize t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match duration s with
      | None -> ()
      | Some d ->
        let st =
          match Hashtbl.find_opt table s.name with
          | Some st -> st
          | None -> { stage_count = 0; stage_total = 0.0; stage_max = 0.0 }
        in
        Hashtbl.replace table s.name
          { stage_count = st.stage_count + 1;
            stage_total = st.stage_total +. d;
            stage_max = Float.max st.stage_max d })
    (spans t);
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name st acc -> (name, st) :: acc) table [])

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Fmt.pf ppf " [%s]"
      (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) (List.rev attrs)))

let pp_span ppf s =
  match s.ended_at with
  | Some e ->
    Fmt.pf ppf "%8.3fs  %s (%.3fs)%a" s.started_at s.name (e -. s.started_at) pp_attrs
      s.attrs
  | None -> Fmt.pf ppf "%8.3fs  %s (open)%a" s.started_at s.name pp_attrs s.attrs

(* Chrome trace_event JSON ("X" complete events): one object per closed
   span, timestamps and durations in microseconds of simulated time.
   Open spans are skipped — the exporter runs after the engine drained,
   so anything still open is the outermost scaffolding. Attributes land
   in [args]; the parent id too, since complete events carry no explicit
   hierarchy. Loadable in chrome://tracing and Perfetto. *)
let to_chrome_json t =
  let buf = Buffer.create 4096 in
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun s ->
      match s.ended_at with
      | None -> ()
      | Some ended ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        let args =
          ("span_id", string_of_int s.id)
          :: (match s.parent with
             | Some p -> [ ("parent_id", string_of_int p) ]
             | None -> [])
          @ List.rev s.attrs
        in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"grid\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":1,\"args\":{%s}}"
             (escape s.name)
             (s.started_at *. 1e6)
             ((ended -. s.started_at) *. 1e6)
             (String.concat ","
                (List.map
                   (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
                   args))))
    (spans t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let pp ppf t =
  (* Index children once: rendering is O(n) over the stored forest. *)
  let by_parent = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.parent with
      | Some p -> Hashtbl.replace by_parent p (s :: (Option.value (Hashtbl.find_opt by_parent p) ~default:[]))
      | None -> ())
    t.stored (* reverse order, so the consing restores start order *);
  let rec render indent s =
    Fmt.pf ppf "%s%a@," indent pp_span s;
    List.iter (render (indent ^ "  "))
      (Option.value (Hashtbl.find_opt by_parent s.id) ~default:[])
  in
  Fmt.pf ppf "@[<v>";
  List.iter (render "") (roots t);
  if t.dropped > 0 then Fmt.pf ppf "(+%d spans dropped at retention cap)@," t.dropped;
  Fmt.pf ppf "@]"
