(* The wide-event pipeline.

   Spans answer "where did the time go"; metrics answer "how often".
   Wide events answer "what exactly happened, in what order, on behalf
   of which request" — the substrate the online safety monitor consumes.
   Every layer that touches [Obs] emits structured events here: the
   gatekeeper's authentication outcomes, every authorization decision
   with its policy epoch, cache hits with the epoch they answered under,
   journal appends, crash/recover transitions, injected network and disk
   faults.

   Each event carries an optional correlation id threaded from the
   originating request. The bus keeps an ambient correlation stack,
   mirroring the span tracer's scope stack: the whole system is
   single-threaded over one simulation engine, so the entry point pushes
   the request's id and everything emitted while processing that request
   inherits it — including work resumed inside network-delivery
   callbacks, which re-establish the id explicitly.

   The bus itself is policy-free: attributes are strings, listeners are
   plain callbacks. The safety monitor is just one subscriber. *)

type t = {
  seq : int;             (* global emission order, for forensics only *)
  at : Grid_sim.Clock.time;
  corr : string option;  (* correlation id of the originating request *)
  layer : string;        (* emitting component: "gram", "callout", ... *)
  kind : string;         (* event name: "authz.decision", "job.created" *)
  attrs : (string * string) list;
}

type bus = {
  mutable listeners : (t -> unit) list;
  mutable next_seq : int;
  mutable emitted : int;
  mutable corr_stack : string list;  (* innermost first *)
  mutable next_corr : int;
}

let create_bus () =
  { listeners = []; next_seq = 0; emitted = 0; corr_stack = []; next_corr = 0 }

let subscribe bus f = bus.listeners <- f :: bus.listeners

let emitted bus = bus.emitted

(* --- Correlation ids --------------------------------------------------- *)

let fresh_corr bus =
  let n = bus.next_corr in
  bus.next_corr <- n + 1;
  Printf.sprintf "c-%06d" n

let current_corr bus =
  match bus.corr_stack with [] -> None | c :: _ -> Some c

let with_corr bus corr f =
  bus.corr_stack <- corr :: bus.corr_stack;
  Fun.protect
    ~finally:(fun () ->
      bus.corr_stack <-
        (match bus.corr_stack with
        | c :: rest when String.equal c corr -> rest
        | stack -> stack))
    f

(* --- Emission ---------------------------------------------------------- *)

let emit bus ~at ?corr ~layer ~kind attrs =
  let corr = match corr with Some _ as c -> c | None -> current_corr bus in
  let seq = bus.next_seq in
  bus.next_seq <- seq + 1;
  bus.emitted <- bus.emitted + 1;
  let event = { seq; at; corr; layer; kind; attrs } in
  List.iter (fun f -> f event) (List.rev bus.listeners)

(* --- Inspection -------------------------------------------------------- *)

let attr event name = List.assoc_opt name event.attrs

let attr_int event name =
  match attr event name with None -> None | Some v -> int_of_string_opt v

let attr_float event name =
  match attr event name with None -> None | Some v -> float_of_string_opt v

let pp ppf e =
  Fmt.pf ppf "%10.3fs %-9s %-20s %-24s%s" e.at
    (match e.corr with Some c -> c | None -> "-")
    e.layer e.kind
    (match e.attrs with
    | [] -> ""
    | attrs ->
      " " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs))
