(* The observability handle. *)

type t = {
  on : bool;
  metrics : Metrics.t;
  tracer : Span.t;
  events : Event.bus;
  clock : unit -> Grid_sim.Clock.time;
  (* Static attributes stamped on every event (and appended as labels to
     every metric) recorded through this handle — how a fleet member's
     whole emission stream gets its [resource=<name>] dimension without
     threading the name through every layer. *)
  extra : (string * string) list;
}

let create ?(clock = fun () -> 0.0) () =
  { on = true;
    metrics = Metrics.create ();
    tracer = Span.create ();
    events = Event.create_bus ();
    clock;
    extra = [] }

let of_engine engine = create ~clock:(fun () -> Grid_sim.Engine.now engine) ()

let noop =
  { on = false;
    metrics = Metrics.create ();
    tracer = Span.create ();
    events = Event.create_bus ();
    clock = (fun () -> 0.0);
    extra = [] }

(* Explicit attributes win over scope attributes, and an inner scope wins
   over an outer one — a handle never overrides what a call site said. *)
let under explicit extra =
  explicit @ List.filter (fun (k, _) -> not (List.mem_assoc k explicit)) extra

let scoped t attrs =
  if (not t.on) || attrs = [] then t else { t with extra = under attrs t.extra }

let enabled t = t.on
let metrics t = t.metrics
let tracer t = t.tracer
let events t = t.events
let now t = t.clock ()

(* --- Wide events and correlation --------------------------------------- *)

let emit t ?corr ~layer kind attrs =
  if t.on then
    let attrs = match t.extra with [] -> attrs | extra -> under attrs extra in
    Event.emit t.events ~at:(t.clock ()) ?corr ~layer ~kind attrs

let fresh_correlation t = Event.fresh_corr t.events
let correlation t = Event.current_corr t.events

let with_correlation t ~corr f =
  if not t.on then f () else Event.with_corr t.events corr f

(* Direct entry points may be the outermost frame (no networked request
   minted an id): give their emissions a correlation of their own. *)
let ensure_correlation t f =
  if not t.on then f ()
  else
    match Event.current_corr t.events with
    | Some _ -> f ()
    | None -> Event.with_corr t.events (Event.fresh_corr t.events) f

let merge_labels t labels =
  match (t.extra, labels) with
  | [], labels -> labels
  | extra, None -> Some extra
  | extra, Some ls -> Some (under ls extra)

let incr t ?by ?labels name =
  if t.on then Metrics.inc t.metrics ?by ?labels:(merge_labels t labels) name

let set_gauge t ?labels name v =
  if t.on then Metrics.set t.metrics ?labels:(merge_labels t labels) name v

let observe t ?labels name v =
  if t.on then Metrics.observe t.metrics ?labels:(merge_labels t labels) name v

let stage_metric = "stage_seconds"

let record_stage t span =
  match Span.duration span with
  | Some d ->
    Metrics.observe t.metrics ~labels:[ ("stage", span.Span.name) ] stage_metric d
  | None -> ()

let with_span t ?attrs name f =
  if not t.on then f Span.null
  else begin
    let span = Span.enter t.tracer ~at:(t.clock ()) ?attrs name in
    Fun.protect
      ~finally:(fun () ->
        Span.exit t.tracer span ~at:(t.clock ());
        record_stage t span)
      (fun () -> f span)
  end

let start_span t ?parent ?attrs name =
  if not t.on then Span.null
  else Span.start t.tracer ~at:(t.clock ()) ?parent ?attrs name

let finish_span t span =
  if t.on && not (span == Span.null) then begin
    Span.finish span ~at:(t.clock ());
    record_stage t span
  end

let in_scope t span f = if not t.on then f () else Span.in_scope t.tracer span f

let pp_summary ppf t =
  let scalars =
    List.filter
      (fun (s : Metrics.series) ->
        match s.Metrics.series_data with
        | Metrics.Counter _ | Metrics.Gauge _ -> true
        | Metrics.Histogram _ -> false)
      (Metrics.dump t.metrics)
  in
  let pp_scalar ppf (s : Metrics.series) =
    match s.Metrics.series_data with
    | Metrics.Counter v | Metrics.Gauge v ->
      Fmt.pf ppf "  %-66s %10.0f"
        (s.Metrics.series_name
        ^ (match s.Metrics.series_labels with
          | [] -> ""
          | labels ->
            "{"
            ^ String.concat ","
                (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
            ^ "}"))
        v
    | Metrics.Histogram _ -> ()
  in
  Fmt.pf ppf "@[<v>";
  if scalars <> [] then begin
    Fmt.pf ppf "counters & gauges:@,%a@," (Fmt.list pp_scalar) scalars
  end;
  let stages = Span.summarize t.tracer in
  if stages <> [] then begin
    Fmt.pf ppf "per-stage latency (simulated seconds):@,";
    Fmt.pf ppf "  %-28s %8s %12s %12s %12s@," "stage" "count" "total" "mean" "max";
    List.iter
      (fun (name, st) ->
        Fmt.pf ppf "  %-28s %8d %12.4f %12.4f %12.4f@," name st.Span.stage_count
          st.Span.stage_total
          (st.Span.stage_total /. float_of_int st.Span.stage_count)
          st.Span.stage_max)
      stages
  end;
  Fmt.pf ppf "@]"
