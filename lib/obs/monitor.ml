(* Online safety-invariant monitor.

   Subscribes to the wide-event bus and continuously asserts the paper's
   enforcement guarantees over the live event stream:

     1. default-deny: no Permit without a matching policy statement at
        the decision's epoch (checked through an injected oracle — the
        monitor itself is policy-agnostic);
     2. no decision served from a stale policy epoch strictly after an
        epoch bump has propagated (scoped per resource: each fleet
        member's decisions are judged against its own reloads);
     3. no expired or revoked credential authorizing an action past the
        propagation window;
     4. post-recovery equivalence: every durably-admitted live job is
        restored after a crash (unless the store reported lost bytes —
        then the loss is accounted to the disk, not the monitor);
     5. fail-closed degradation is never upgraded to Permit.

   Events are buffered per simulation tick and flushed in a canonical
   order (state-changing events before checked events, ties broken by
   content, never by arrival order), so verdicts are invariant under
   reordering of events within a tick — the property the QCheck suite
   pins down. A same-tick epoch bump therefore excuses same-tick
   decisions: propagation is only expected to have happened strictly
   after the bump's tick. *)

type violation_class =
  | Default_deny
  | Stale_epoch
  | Expired_credential
  | Recovery_divergence
  | Fail_open_upgrade
  | Token_revocation

let class_to_string = function
  | Default_deny -> "default_deny"
  | Stale_epoch -> "stale_epoch"
  | Expired_credential -> "expired_credential"
  | Recovery_divergence -> "recovery_divergence"
  | Fail_open_upgrade -> "fail_open_upgrade"
  | Token_revocation -> "token_revocation"

let class_of_string = function
  | "default_deny" -> Some Default_deny
  | "stale_epoch" -> Some Stale_epoch
  | "expired_credential" -> Some Expired_credential
  | "recovery_divergence" -> Some Recovery_divergence
  | "fail_open_upgrade" -> Some Fail_open_upgrade
  | "token_revocation" -> Some Token_revocation
  | _ -> None

let all_classes =
  [ Default_deny; Stale_epoch; Expired_credential; Recovery_divergence;
    Fail_open_upgrade; Token_revocation ]

type violation = {
  vclass : violation_class;
  at : Grid_sim.Clock.time;
  corr : string option;
  message : string;
  chain : Event.t list;  (* the correlated event chain, chronological *)
}

(* --- Oracles ------------------------------------------------------------ *)

type oracle = Event.t -> bool option

(* Scope an oracle to one PEP: decision events carry the backend label
   [Callout.instrument] stamped them with, and an oracle answering for
   the wrong backend would re-derive answers from the wrong policy
   world. *)
let oracle_for_backend backend (oracle : oracle) : oracle =
 fun e -> if Event.attr e "backend" = Some backend then oracle e else None

(* Compose per-backend oracles into one: the first that claims the event
   answers. With [oracle_for_backend] scoping, claims are disjoint, so
   composition order carries no meaning. *)
let any_oracle (oracles : oracle list) : oracle =
 fun e -> List.find_map (fun o -> o e) oracles

type t = {
  (* [oracle event] re-derives the policy answer for an
     ["authz.decision"] event: [Some true] = policy permits, [Some
     false] = policy denies (a permit is then a default-deny violation),
     [None] = not my backend / epoch unknown. Injected by the campaign
     driver, which holds the live policy sources per epoch. *)
  oracle : oracle option;
  propagation_window : float;
  chain_limit : int;
  (* Epoch freshness is scoped per resource (the "resource" event
     attribute; "" when absent): each fleet member reloads on its own
     cadence, and site A's decisions must only be judged against site
     A's reloads. Single-site streams carry no resource attribute and
     collapse to one scope, behaving exactly as before. *)
  epochs : (string, int * Grid_sim.Clock.time) Hashtbl.t;
  revoked : (string, Grid_sim.Clock.time) Hashtbl.t;  (* subject -> revoked at *)
  revoked_jti : (string, Grid_sim.Clock.time) Hashtbl.t;  (* jti -> revoked at *)
  (* Crash/recovery bookkeeping is scoped per resource (the "resource"
     event attribute; "" when absent, which keeps single-site event
     streams behaving exactly as before): in a fleet, site A's recovery
     must only answer for jobs durably admitted at site A. *)
  live_durable : (string, string * Grid_sim.Clock.time) Hashtbl.t;
    (* contact -> (resource scope, created at) *)
  restored : (string, unit) Hashtbl.t;  (* scope\x00contact since last crash *)
  crashed_at : (string, Grid_sim.Clock.time) Hashtbl.t;  (* scope -> crash tick *)
  by_corr : (string, Event.t list) Hashtbl.t;  (* reversed chains *)
  mutable chain_count : int;
  mutable pending : Event.t list;  (* current tick, arrival order reversed *)
  mutable pending_at : Grid_sim.Clock.time;
  mutable violations_rev : violation list;
  mutable events_seen : int;
}

(* --- Canonical intra-tick order ---------------------------------------- *)

(* State-changing events apply before anything they could excuse or
   implicate; [job.restored] applies before the [resource.recovered]
   that closes the books on a recovery. Checked events come last. The
   tie-break is by content only — two events that differ merely in
   arrival order are interchangeable, which is what makes verdicts
   permutation-invariant within a tick. *)
let rank kind =
  match kind with
  | "policy.epoch" -> 0
  (* "token.revoked" shares the revocation rank; the string tie-break
     below keeps intra-rank order canonical. *)
  | "credential.revoked" | "token.revoked" -> 1
  | "credential.renewed" -> 2
  | "job.created" -> 3
  | "job.terminal" -> 4
  | "resource.crashed" -> 5
  | "job.restored" -> 6
  | "resource.recovered" -> 7
  | _ -> 10

let canonical_compare (a : Event.t) (b : Event.t) =
  let c = compare (rank a.Event.kind) (rank b.Event.kind) in
  if c <> 0 then c
  else
    let c = String.compare a.Event.kind b.Event.kind in
    if c <> 0 then c
    else
      let c = compare a.Event.corr b.Event.corr in
      if c <> 0 then c else compare a.Event.attrs b.Event.attrs

(* --- Violation recording ----------------------------------------------- *)

let chain_of t (event : Event.t) =
  match event.Event.corr with
  | None -> [ event ]
  | Some corr -> begin
    match Hashtbl.find_opt t.by_corr corr with
    | Some events -> List.rev events
    | None -> [ event ]
  end

let violate t ~event vclass message =
  t.violations_rev <-
    { vclass;
      at = event.Event.at;
      corr = event.Event.corr;
      message;
      chain = chain_of t event }
    :: t.violations_rev

(* --- Per-event checks --------------------------------------------------- *)

let scope_of (e : Event.t) = Option.value (Event.attr e "resource") ~default:""
let restored_key scope contact = scope ^ "\x00" ^ contact

let apply_state t (e : Event.t) =
  match e.Event.kind with
  | "policy.epoch" -> begin
    match Event.attr_int e "epoch" with
    | Some epoch ->
      let scope = scope_of e in
      (match Hashtbl.find_opt t.epochs scope with
      | Some (cur, _) when epoch <= cur -> ()
      | Some _ | None -> Hashtbl.replace t.epochs scope (epoch, e.Event.at))
    | None -> ()
  end
  | "credential.revoked" -> begin
    match Event.attr e "subject" with
    | Some subject ->
      if not (Hashtbl.mem t.revoked subject) then
        Hashtbl.replace t.revoked subject e.Event.at
    | None -> ()
  end
  | "token.revoked" -> begin
    match Event.attr e "jti" with
    | Some jti ->
      if not (Hashtbl.mem t.revoked_jti jti) then
        Hashtbl.replace t.revoked_jti jti e.Event.at
    | None -> ()
  end
  | "job.created" -> begin
    match (Event.attr e "contact", Event.attr e "durable") with
    | Some contact, Some "true" ->
      Hashtbl.replace t.live_durable contact (scope_of e, e.Event.at)
    | _ -> ()
  end
  | "job.terminal" -> begin
    match Event.attr e "contact" with
    | Some contact -> Hashtbl.remove t.live_durable contact
    | None -> ()
  end
  | "resource.crashed" ->
    let scope = scope_of e in
    Hashtbl.replace t.crashed_at scope e.Event.at;
    Hashtbl.iter
      (fun key () ->
        if String.length key > String.length scope
           && String.sub key 0 (String.length scope) = scope
           && key.[String.length scope] = '\x00'
        then Hashtbl.remove t.restored key)
      (Hashtbl.copy t.restored)
  | "job.restored" -> begin
    match Event.attr e "contact" with
    | Some contact -> Hashtbl.replace t.restored (restored_key (scope_of e) contact) ()
    | None -> ()
  end
  | "resource.recovered" -> begin
    (* Invariant 4, per resource scope. Everything durably admitted at
       this resource before its crash tick must come back; losses
       explained by the disk (torn/corrupt tail bytes, undecodable
       records) are excused but still reconciled, so a disk-explained
       loss is not re-reported at the next recovery. *)
    let scope = scope_of e in
    let dropped = Option.value (Event.attr_int e "dropped_bytes") ~default:0 in
    let undecodable = Option.value (Event.attr_int e "decode_failures") ~default:0 in
    let crash_tick =
      Option.value (Hashtbl.find_opt t.crashed_at scope) ~default:e.Event.at
    in
    let missing =
      Hashtbl.fold
        (fun contact (job_scope, created_at) acc ->
          if
            String.equal job_scope scope && created_at < crash_tick
            && not (Hashtbl.mem t.restored (restored_key scope contact))
          then contact :: acc
          else acc)
        t.live_durable []
      |> List.sort String.compare
    in
    if missing <> [] then begin
      if dropped = 0 && undecodable = 0 then
        violate t ~event:e Recovery_divergence
          (Printf.sprintf
             "recovery diverged from the uncrashed oracle: %d durable live job(s) \
              not restored (%s) with no reported store loss"
             (List.length missing)
             (String.concat ", " missing));
      List.iter (Hashtbl.remove t.live_durable) missing
    end;
    Hashtbl.remove t.crashed_at scope
  end
  | _ -> ()

let check_epoch t (e : Event.t) =
  (* Invariant 2: strictly after a bump's tick at the same resource, no
     decision (or cache answer) there may carry an older epoch.
     Same-tick decisions are excused: within one simulation instant
     ordering against the reload is not defined. *)
  match (Event.attr_int e "epoch", Hashtbl.find_opt t.epochs (scope_of e)) with
  | Some epoch, Some (current, changed_at)
    when epoch < current && e.Event.at > changed_at ->
    violate t ~event:e Stale_epoch
      (Printf.sprintf "%s served under stale policy epoch %d (current %d since t=%.3fs)"
         e.Event.kind epoch current changed_at)
  | _ -> ()

let check_decision t (e : Event.t) =
  check_epoch t e;
  if Event.attr e "outcome" = Some "permitted" then begin
    (* Invariant 3: a permit must rest on a live, unrevoked credential. *)
    (match Event.attr_float e "cred_expiry" with
    | Some expiry when e.Event.at > expiry ->
      violate t ~event:e Expired_credential
        (Printf.sprintf "permit authorized by a credential expired at t=%.3fs" expiry)
    | _ -> ());
    (match Event.attr e "subject" with
    | Some subject -> begin
      match Hashtbl.find_opt t.revoked subject with
      | Some revoked_at when e.Event.at > revoked_at +. t.propagation_window ->
        violate t ~event:e Expired_credential
          (Printf.sprintf
             "permit for %s whose credential was revoked at t=%.3fs (window %.0fs)"
             subject revoked_at t.propagation_window)
      | _ -> ()
    end
    | None -> ());
    (* Invariant 1: the oracle re-derives the policy answer for the
       decision's epoch; a permit the policy would deny violates
       default-deny. *)
    match t.oracle with
    | None -> ()
    | Some oracle -> begin
      match oracle e with
      | Some false ->
        violate t ~event:e Default_deny
          (Printf.sprintf "permit with no matching policy statement at epoch %s"
             (match Event.attr e "epoch" with Some s -> s | None -> "?"))
      | Some true | None -> ()
    end
  end

(* Invariant 6 (token revocation): an accepted token check must rest on
   a token that is within its window and not revoked longer ago than the
   propagation window the deployment's revocation mode promises. *)
let check_token t (e : Event.t) =
  if Event.attr e "outcome" = Some "accepted" then begin
    (match Event.attr_float e "not_after" with
    | Some not_after when e.Event.at > not_after ->
      violate t ~event:e Expired_credential
        (Printf.sprintf "token accepted past its expiry at t=%.3fs" not_after)
    | _ -> ());
    match Event.attr e "jti" with
    | None -> ()
    | Some jti -> begin
      match Hashtbl.find_opt t.revoked_jti jti with
      | Some revoked_at when e.Event.at > revoked_at +. t.propagation_window ->
        violate t ~event:e Token_revocation
          (Printf.sprintf
             "token %s accepted although revoked at t=%.3fs (window %.0fs)" jti
             revoked_at t.propagation_window)
      | _ -> ()
    end
  end

let check_degraded t (e : Event.t) =
  (* Invariant 5: fail-closed degradation converts outages to refusals,
     never to permits. *)
  if
    Event.attr e "mode" = Some "fail_closed"
    && Event.attr e "final" = Some "permitted"
  then
    violate t ~event:e Fail_open_upgrade
      "fail-closed degradation upgraded an authorization outage to Permit"

let process t (e : Event.t) =
  t.events_seen <- t.events_seen + 1;
  apply_state t e;
  match e.Event.kind with
  | "authz.decision" -> check_decision t e
  | "cache.hit" -> check_epoch t e
  | "authz.degraded" -> check_degraded t e
  | "token.validated" -> check_token t e
  | _ -> ()

(* --- Tick buffering ----------------------------------------------------- *)

let flush t =
  match t.pending with
  | [] -> ()
  | pending ->
    t.pending <- [];
    List.iter (process t) (List.stable_sort canonical_compare (List.rev pending))

let remember t (e : Event.t) =
  match e.Event.corr with
  | None -> ()
  | Some corr ->
    if t.chain_count < t.chain_limit then begin
      t.chain_count <- t.chain_count + 1;
      Hashtbl.replace t.by_corr corr
        (e :: Option.value (Hashtbl.find_opt t.by_corr corr) ~default:[])
    end

let ingest t (e : Event.t) =
  remember t e;
  if t.pending <> [] && e.Event.at > t.pending_at then flush t;
  t.pending_at <- e.Event.at;
  t.pending <- e :: t.pending

(* --- Construction ------------------------------------------------------- *)

let create ?oracle ?(propagation_window = 300.0) ?(chain_limit = 500_000) bus =
  let t =
    { oracle;
      propagation_window;
      chain_limit;
      epochs = Hashtbl.create 8;
      revoked = Hashtbl.create 8;
      revoked_jti = Hashtbl.create 8;
      live_durable = Hashtbl.create 64;
      restored = Hashtbl.create 64;
      crashed_at = Hashtbl.create 8;
      by_corr = Hashtbl.create 1024;
      chain_count = 0;
      pending = [];
      pending_at = 0.0;
      violations_rev = [];
      events_seen = 0 }
  in
  Event.subscribe bus (ingest t);
  t

let violations t = List.rev t.violations_rev
let violation_count t = List.length t.violations_rev
let events_seen t = t.events_seen

(* The newest epoch observed across every resource scope. *)
let current_epoch t =
  Hashtbl.fold
    (fun _ (epoch, _) acc ->
      match acc with Some e when e >= epoch -> acc | _ -> Some epoch)
    t.epochs None

let classes t =
  List.sort_uniq compare (List.map (fun v -> v.vclass) t.violations_rev)

let pp_violation ppf v =
  Fmt.pf ppf "@[<v>VIOLATION %s at t=%.3fs%a: %s@,correlated event chain:@,%a@]"
    (class_to_string v.vclass) v.at
    (fun ppf -> function None -> () | Some c -> Fmt.pf ppf " [%s]" c)
    v.corr v.message
    (Fmt.list ~sep:Fmt.cut (fun ppf e -> Fmt.pf ppf "  %a" Event.pp e))
    v.chain

let pp ppf t =
  let vs = violations t in
  if vs = [] then
    Fmt.pf ppf "safety monitor: %d events checked, 0 violations" t.events_seen
  else
    Fmt.pf ppf "@[<v>safety monitor: %d events checked, %d violation(s)@,%a@]"
      t.events_seen (List.length vs)
      (Fmt.list ~sep:Fmt.cut pp_violation) vs
