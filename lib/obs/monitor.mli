(** Online safety-invariant monitor over the wide-event stream.

    Consumes {!Event} streams and continuously asserts the paper's
    enforcement guarantees: default-deny (via an injected policy
    oracle), epoch freshness, credential liveness past the propagation
    window, crash-recovery equivalence, and fail-closed integrity.

    Events are buffered per simulation tick and applied in a canonical
    content-based order, so verdicts never depend on the arrival order
    of events within one tick; a same-tick epoch bump excuses same-tick
    decisions. Each violation carries the full correlated event chain of
    the offending request. *)

type violation_class =
  | Default_deny
      (** a Permit with no matching policy statement at the decision's
          epoch *)
  | Stale_epoch
      (** a decision or cache answer served under an old policy epoch
          strictly after a bump propagated at the same resource *)
  | Expired_credential
      (** an expired or revoked credential authorized an action past
          the propagation window *)
  | Recovery_divergence
      (** a durably-admitted live job did not come back from recovery
          although the store reported no loss *)
  | Fail_open_upgrade
      (** fail-closed degradation produced a Permit *)
  | Token_revocation
      (** a revoked STS token was accepted by a validating PEP past the
          revocation mode's propagation window (["token.validated"]
          events checked against ["token.revoked"] state) *)

val class_to_string : violation_class -> string
val class_of_string : string -> violation_class option
val all_classes : violation_class list

type violation = {
  vclass : violation_class;
  at : Grid_sim.Clock.time;
  corr : string option;
  message : string;
  chain : Event.t list;  (** correlated event chain, chronological *)
}

type oracle = Event.t -> bool option
(** Re-derives the policy answer for an ["authz.decision"] event:
    [Some true] = policy permits, [Some false] = policy denies (a
    permitted event is then a default-deny violation), [None] = not my
    backend / unknown epoch. *)

val oracle_for_backend : string -> oracle -> oracle
(** Scope an oracle to decision events stamped with the given [backend]
    label ({!Grid_callout.Callout.instrument}'s [?backend]); all other
    events answer [None]. *)

val any_oracle : oracle list -> oracle
(** First claiming oracle answers — compose one {!oracle_for_backend}
    per PEP into the composite a mixed-backend campaign injects. *)

type t

val create :
  ?oracle:oracle ->
  ?propagation_window:float ->
  ?chain_limit:int ->
  Event.bus ->
  t
(** Subscribe a fresh monitor to the bus. [oracle] re-derives the policy
    answer for an ["authz.decision"] event ([Some false] means the
    policy denies — a permitted event is then a default-deny violation;
    [None] means "not my backend / unknown epoch"). The campaign driver
    injects it, keeping the monitor free of policy dependencies.
    [propagation_window] (default 300 s) is the grace period granted to
    revocation propagation. [chain_limit] bounds retained per-request
    chains. *)

val flush : t -> unit
(** Process the still-buffered final tick. Call once the run is over
    (no more events will arrive) before reading {!violations}. *)

val violations : t -> violation list
(** Chronological. Does not {!flush}. *)

val violation_count : t -> int
val events_seen : t -> int
val current_epoch : t -> int option
(** The newest policy epoch observed across every resource scope. *)

val classes : t -> violation_class list
(** Distinct violation classes seen, sorted. *)

val pp_violation : violation Fmt.t
val pp : t Fmt.t
