(* Metrics registry.

   One flat table of series keyed by (metric name, canonical label set).
   Counters and gauges are a mutable float; histograms are fixed-bucket
   with inclusive upper bounds, plus sum/count/max so quantile estimates
   can be clamped to reality. Everything is O(1) per recording (histogram
   recording is O(#buckets) in the worst case), because these calls sit on
   the job-submission critical path. *)

type labels = (string * string) list

type histogram = {
  bounds : float array;            (* strictly increasing upper bounds *)
  counts : int array;              (* length = Array.length bounds + 1; last is +Inf *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_max : float;
}

type cell =
  | Counter_cell of { mutable c : float }
  | Gauge_cell of { mutable g : float }
  | Histogram_cell of histogram

type entry = {
  e_name : string;
  e_labels : labels;
  cell : cell;
}

type t = { table : (string, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

(* 1 ms .. 10 simulated minutes: network hops are ~5 ms, job walltimes are
   minutes. Sub-millisecond stages land in the first bucket and summarise
   as ~0, which is the honest answer inside a discrete-event simulator. *)
let default_buckets =
  [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0;
     10.0; 30.0; 60.0; 120.0; 300.0; 600.0 |]

let canonical labels =
  List.stable_sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let kind_name = function
  | Counter_cell _ -> "counter"
  | Gauge_cell _ -> "gauge"
  | Histogram_cell _ -> "histogram"

let find_or_create t name labels make check =
  let labels = canonical labels in
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some e -> begin
    match check e.cell with
    | Some cell -> cell
    | None ->
      Printf.ksprintf invalid_arg "Metrics: %s is a %s, not re-registrable" name
        (kind_name e.cell)
  end
  | None ->
    let cell = make () in
    Hashtbl.replace t.table k { e_name = name; e_labels = labels; cell };
    cell

(* --- Recording -------------------------------------------------------- *)

let inc t ?(by = 1.0) ?(labels = []) name =
  if by < 0.0 then invalid_arg "Metrics.inc: negative increment";
  let cell =
    find_or_create t name labels
      (fun () -> Counter_cell { c = 0.0 })
      (function Counter_cell _ as c -> Some c | _ -> None)
  in
  match cell with Counter_cell r -> r.c <- r.c +. by | _ -> assert false

let set t ?(labels = []) name v =
  let cell =
    find_or_create t name labels
      (fun () -> Gauge_cell { g = v })
      (function Gauge_cell _ as c -> Some c | _ -> None)
  in
  match cell with Gauge_cell r -> r.g <- v | _ -> assert false

let validate_buckets bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.observe: empty buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Metrics.observe: buckets must be strictly increasing")
    bounds

let observe t ?(buckets = default_buckets) ?(labels = []) name v =
  let cell =
    find_or_create t name labels
      (fun () ->
        validate_buckets buckets;
        Histogram_cell
          { bounds = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0.0;
            h_count = 0;
            h_max = neg_infinity })
      (function Histogram_cell _ as c -> Some c | _ -> None)
  in
  match cell with
  | Histogram_cell h ->
    let n = Array.length h.bounds in
    let i = ref 0 in
    while !i < n && v > h.bounds.(!i) do incr i done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1;
    if v > h.h_max then h.h_max <- v
  | _ -> assert false

(* --- Reading ----------------------------------------------------------- *)

let lookup t name labels =
  Hashtbl.find_opt t.table (key name (canonical labels))

let counter_value t ?(labels = []) name =
  match lookup t name labels with
  | Some { cell = Counter_cell r; _ } -> r.c
  | Some _ | None -> 0.0

let counter_total t name =
  Hashtbl.fold
    (fun _ e acc ->
      match e.cell with
      | Counter_cell r when String.equal e.e_name name -> acc +. r.c
      | _ -> acc)
    t.table 0.0

let gauge_value t ?(labels = []) name =
  match lookup t name labels with
  | Some { cell = Gauge_cell r; _ } -> r.g
  | Some _ | None -> 0.0

type summary = {
  count : int;
  sum : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* Rank-based estimate: find the bucket holding the q-th observation and
   interpolate linearly inside it, then clamp to the observed maximum (an
   all-zero histogram reports 0, not half the first bucket). *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.h_count in
    let n = Array.length h.bounds in
    let rec go i cumulative =
      if i > n then h.h_max
      else
        let here = cumulative + h.counts.(i) in
        if float_of_int here >= rank && h.counts.(i) > 0 then begin
          let lo = if i = 0 then 0.0 else h.bounds.(i - 1) in
          let hi = if i < n then h.bounds.(i) else h.h_max in
          let frac = (rank -. float_of_int cumulative) /. float_of_int h.counts.(i) in
          lo +. (frac *. (hi -. lo))
        end
        else go (i + 1) here
    in
    Float.min (go 0 0) h.h_max
  end

let summary_of h =
  { count = h.h_count;
    sum = h.h_sum;
    max = (if h.h_count = 0 then 0.0 else h.h_max);
    p50 = quantile h 0.5;
    p90 = quantile h 0.9;
    p99 = quantile h 0.99 }

let histogram_summary t ?(labels = []) name =
  match lookup t name labels with
  | Some { cell = Histogram_cell h; _ } -> Some (summary_of h)
  | Some _ | None -> None

(* --- Exposition -------------------------------------------------------- *)

type data =
  | Counter of float
  | Gauge of float
  | Histogram of {
      summary : summary;
      buckets : (float * int) list;
    }

type series = {
  series_name : string;
  series_labels : labels;
  series_data : data;
}

let cumulative_buckets h =
  let n = Array.length h.bounds in
  let acc = ref 0 in
  List.init (n + 1) (fun i ->
      acc := !acc + h.counts.(i);
      ((if i < n then h.bounds.(i) else infinity), !acc))

let dump t =
  let all =
    Hashtbl.fold
      (fun _ e acc ->
        let data =
          match e.cell with
          | Counter_cell r -> Counter r.c
          | Gauge_cell r -> Gauge r.g
          | Histogram_cell h ->
            Histogram { summary = summary_of h; buckets = cumulative_buckets h }
        in
        { series_name = e.e_name; series_labels = e.e_labels; series_data = data } :: acc)
      t.table []
  in
  List.sort
    (fun a b ->
      match String.compare a.series_name b.series_name with
      | 0 -> compare a.series_labels b.series_labels
      | c -> c)
    all

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v)) labels)
    ^ "}"

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun s ->
      let type_line kind =
        if not (String.equal !last_name s.series_name) then begin
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.series_name kind);
          last_name := s.series_name
        end
      in
      match s.series_data with
      | Counter v ->
        type_line "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" s.series_name (render_labels s.series_labels)
             (float_repr v))
      | Gauge v ->
        type_line "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" s.series_name (render_labels s.series_labels)
             (float_repr v))
      | Histogram { summary; buckets } ->
        type_line "histogram";
        List.iter
          (fun (le, count) ->
            let le_str = if Float.is_integer le && le < infinity then Printf.sprintf "%.1f" le
              else if le = infinity then "+Inf"
              else Printf.sprintf "%g" le
            in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.series_name
                 (render_labels (s.series_labels @ [ ("le", le_str) ]))
                 count))
          buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %g\n" s.series_name (render_labels s.series_labels)
             summary.sum);
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" s.series_name (render_labels s.series_labels)
             summary.count))
    (dump t);
  Buffer.contents buf

(* Hand-rolled JSON: the toolchain has no JSON library and the shapes here
   are fixed. *)
let json_string v = "\"" ^ escape_label_value v ^ "\""

let json_labels labels =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let json_float v =
  if Float.is_nan v then "null"
  else if v = infinity then "\"+Inf\""
  else if v = neg_infinity then "\"-Inf\""
  else float_repr v

let to_json t =
  let series_json s =
    let common =
      Printf.sprintf "\"name\":%s,\"labels\":%s" (json_string s.series_name)
        (json_labels s.series_labels)
    in
    match s.series_data with
    | Counter v -> Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%s}" common (json_float v)
    | Gauge v -> Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s}" common (json_float v)
    | Histogram { summary; buckets } ->
      Printf.sprintf
        "{%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":[%s]}"
        common summary.count (json_float summary.sum) (json_float summary.max)
        (json_float summary.p50) (json_float summary.p90) (json_float summary.p99)
        (String.concat ","
           (List.map
              (fun (le, count) ->
                Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le) count)
              buckets))
  in
  "{\"series\":[" ^ String.concat "," (List.map series_json (dump t)) ^ "]}"

let pp ppf t =
  let pp_series ppf s =
    match s.series_data with
    | Counter v ->
      Fmt.pf ppf "%s%s %s" s.series_name (render_labels s.series_labels) (float_repr v)
    | Gauge v ->
      Fmt.pf ppf "%s%s %s" s.series_name (render_labels s.series_labels) (float_repr v)
    | Histogram { summary; _ } ->
      Fmt.pf ppf "%s%s count=%d p50=%.4f p90=%.4f p99=%.4f max=%.4f" s.series_name
        (render_labels s.series_labels) summary.count summary.p50 summary.p90
        summary.p99 summary.max
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_series) (dump t)
