(** The information service (GT2 MDS stand-in): resource registration,
    status publication with TTL-based staleness, filtered queries. *)

type static_info = {
  resource_name : string;
  site : string;
  total_cpus : int;
  queues : string list;
}

type status = {
  free_cpus : int;
  running_jobs : int;
  pending_jobs : int;
  published_at : Grid_sim.Clock.time;
}

type entry = {
  info : static_info;
  mutable latest : status option;
}

type t

val create : ?ttl:Grid_sim.Clock.time -> Grid_sim.Engine.t -> t
(** Default TTL 60 simulated seconds. *)

val engine : t -> Grid_sim.Engine.t

val register : t -> static_info -> unit
(** Raises [Invalid_argument] on duplicate registration. *)

val deregister : t -> string -> unit
(** Remove a resource entirely (decommissioning): it no longer appears
    in any query or lookup until re-registered. No-op when unknown. *)

val registered : t -> string -> bool

val publish : t -> resource_name:string -> status -> unit
(** Raises [Invalid_argument] for unregistered resources. *)

val fresh : t -> entry -> bool

val lookup : t -> string -> entry option
val entries : t -> entry list

val query :
  ?fresh_only:bool ->
  ?min_free_cpus:int ->
  ?queue:string ->
  ?site:string ->
  t ->
  entry list
(** Filtered entries, most free capacity first. [fresh_only] defaults to
    [true]. *)

val publications : t -> int
val queries : t -> int

val pp_entry : Grid_sim.Clock.time -> entry Fmt.t
