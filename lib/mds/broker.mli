(** Resource broker: discovery-driven site selection with optional
    VO-policy pre-check, capacity- and queue-aware ranking, seeded
    tie-breaking, per-site circuit breakers, and fall-through retries. *)

type t

type failure = {
  site : string;
  error : string;
}

type error =
  | No_candidates
  | All_failed of failure list

val error_to_string : error -> string

val create :
  ?precheck:(Grid_policy.Types.request -> bool) ->
  ?seed:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  ?obs:Grid_obs.Obs.t ->
  directory:Directory.t ->
  Grid_gram.Resource.t list ->
  t
(** [precheck] is advisory (the resource PEPs stay authoritative): it
    saves doomed submissions when the VO policy already denies. [seed]
    (default 0) drives the tie-break: equal-capacity ties rotate from
    one selection to the next (a per-plan salt), but the whole sequence
    is reproducible per seed. Each site gets a circuit breaker
    ([breaker_threshold] consecutive timeouts open it, default 3;
    [breaker_cooldown] seconds before a half-open probe, default 30):
    while open the site is skipped by {!plan} and {!submit}. [obs]
    counts selections and skips per resource. *)

val seed : t -> int

val plan : t -> job:Grid_rsl.Job.t -> Grid_gram.Resource.t list
(** Candidate resources for a job, ranked: most free cpus first, then
    fewest pending jobs, then the seeded tie-break. Only fresh directory
    entries (stale and deregistered sites never appear); breaker-open
    sites are skipped. *)

val select : t -> job:Grid_rsl.Job.t -> Grid_gram.Resource.t list
(** Alias of {!plan} — the ranked selection without submitting. *)

val breaker_state : t -> string -> Grid_util.Retry.Breaker.state option
(** The named site's breaker state, [None] for unknown sites. *)

val observe : t -> site:string -> [ `Timeout | `Answered ] -> unit
(** Feed the named site's breaker from an external submission lane:
    [`Timeout] counts a failure, [`Answered] (any protocol or policy
    answer, including denials) a success. Unknown sites are ignored. *)

val submit :
  t ->
  identity:Grid_gsi.Identity.t ->
  rsl:string ->
  (string * Grid_gram.Protocol.submit_reply, error) result
(** Try candidates in ranked order; returns the winning site name and
    reply. Timeouts feed the site's breaker; any policy answer (even a
    denial) resets it — breakers track reachability, not authorization. *)
