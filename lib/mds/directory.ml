(* The information service (GT2's MDS stand-in).

   Section 4 lists "resource monitoring and discovery (MDS)" among the
   Globus Toolkit's mechanisms. This directory plays the GIIS role:
   resources register static descriptions and publish dynamic status;
   consumers (users, the {!Broker}) query it. Entries go stale when not
   republished within the TTL — queries can ask for fresh entries only,
   the standard MDS hygiene. *)

type static_info = {
  resource_name : string;
  site : string;                  (* administrative domain label *)
  total_cpus : int;
  queues : string list;
}

type status = {
  free_cpus : int;
  running_jobs : int;
  pending_jobs : int;
  published_at : Grid_sim.Clock.time;
}

type entry = {
  info : static_info;
  mutable latest : status option;
}

type t = {
  engine : Grid_sim.Engine.t;
  ttl : Grid_sim.Clock.time;
  entries : (string, entry) Hashtbl.t;
  mutable publications : int;
  mutable queries : int;
}

let create ?(ttl = 60.0) engine = { engine; ttl; entries = Hashtbl.create 16; publications = 0; queries = 0 }

let engine t = t.engine

let register t (info : static_info) =
  if Hashtbl.mem t.entries info.resource_name then
    invalid_arg ("Directory.register: duplicate resource " ^ info.resource_name);
  Hashtbl.replace t.entries info.resource_name { info; latest = None }

(* Administrative removal (decommissioning, or a provider detaching):
   the entry disappears immediately — unlike TTL staleness, not even
   [~fresh_only:false] queries see it again until re-registration. A
   no-op for unknown names, so churny detach paths need no guard. *)
let deregister t resource_name = Hashtbl.remove t.entries resource_name

let registered t resource_name = Hashtbl.mem t.entries resource_name

let publish t ~resource_name status =
  match Hashtbl.find_opt t.entries resource_name with
  | None -> invalid_arg ("Directory.publish: unregistered resource " ^ resource_name)
  | Some entry ->
    t.publications <- t.publications + 1;
    entry.latest <- Some status

let fresh t (entry : entry) =
  match entry.latest with
  | None -> false
  | Some s -> Grid_sim.Engine.now t.engine -. s.published_at <= t.ttl

let lookup t resource_name = Hashtbl.find_opt t.entries resource_name

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []

(* Query with optional filters; [fresh_only] drops entries whose last
   publication is older than the TTL. Results are sorted by free
   capacity, fullest-first consumers can reverse. *)
let query ?(fresh_only = true) ?min_free_cpus ?queue ?site t =
  t.queries <- t.queries + 1;
  entries t
  |> List.filter (fun e ->
         ((not fresh_only) || fresh t e)
         && (match site with None -> true | Some s -> e.info.site = s)
         && (match queue with None -> true | Some q -> List.mem q e.info.queues)
         &&
         match (min_free_cpus, e.latest) with
         | None, _ -> true
         | Some _, None -> false
         | Some n, Some st -> st.free_cpus >= n)
  |> List.sort (fun a b ->
         match (a.latest, b.latest) with
         | Some x, Some y -> compare y.free_cpus x.free_cpus
         | Some _, None -> -1
         | None, Some _ -> 1
         | None, None -> compare a.info.resource_name b.info.resource_name)

let publications t = t.publications
let queries t = t.queries

let pp_entry now ppf (e : entry) =
  match e.latest with
  | None ->
    Fmt.pf ppf "%-14s %-10s %3d cpus  (never published)" e.info.resource_name e.info.site
      e.info.total_cpus
  | Some s ->
    Fmt.pf ppf "%-14s %-10s %3d cpus  %3d free  %2d running  %2d pending  (age %.0fs)"
      e.info.resource_name e.info.site e.info.total_cpus s.free_cpus s.running_jobs
      s.pending_jobs (now -. s.published_at)
