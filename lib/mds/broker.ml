(* A resource broker.

   Answers "where can this job run?" by combining discovery (the
   directory), an optional authorization pre-check (evaluating the VO's
   own policy before burning a round trip on a doomed submission),
   capacity- and queue-aware ranking, and per-site circuit breakers. On
   submission failure at the best candidate it falls through to the next
   — the retry pattern every metascheduler built on GRAM used.

   Selection is deterministic per seed: candidates are ranked by free
   capacity (desc), then queue backlog (asc), and ties are broken by a
   seeded per-site rank fixed at [create] — two brokers built with the
   same seed over the same directory state produce the same order.
   Sites that stopped publishing (TTL staleness) or were deregistered
   never appear; sites whose submissions keep timing out (a partition,
   say) trip their breaker and are skipped until the cooldown admits a
   half-open probe. *)

type candidate = {
  name : string;
  resource : Grid_gram.Resource.t;
  breaker : Grid_util.Retry.Breaker.t;
  tiebreak : int;
}

type t = {
  directory : Directory.t;
  candidates : candidate list;
  (* Authorization pre-check: VO-side advice only. The resource's own
     PEP remains authoritative — the broker never bypasses it. *)
  precheck : (Grid_policy.Types.request -> bool) option;
  seed : int;
  obs : Grid_obs.Obs.t;
  (* Per-plan salt folded into the tie-break: equal-capacity sites
     rotate across successive selections instead of funnelling every
     job to one site while published stats are stale. *)
  mutable plans : int;
}

type failure = {
  site : string;
  error : string;
}

type error =
  | No_candidates (* discovery produced nothing usable *)
  | All_failed of failure list

let error_to_string = function
  | No_candidates -> "no resource matches the request"
  | All_failed failures ->
    "all candidate resources refused:\n"
    ^ Grid_util.Strings.concat_map "\n"
        (fun f -> Printf.sprintf "  %s: %s" f.site f.error)
        failures

(* The seeded tie-break base: a pure function of (seed, name), folded
   with a per-plan salt at selection time. Equal-capacity ties therefore
   rotate across successive selections (load spreading while published
   stats are stale) yet the whole sequence replays identically for one
   seed and differently across seeds. *)
let tiebreak_of ~seed name = Hashtbl.hash (seed, name)

let create ?precheck ?(seed = 0) ?breaker_threshold ?breaker_cooldown ?obs ~directory
    candidates =
  { directory;
    candidates =
      List.map
        (fun resource ->
          let name = Grid_gram.Resource.name resource in
          { name;
            resource;
            breaker =
              Grid_util.Retry.Breaker.create ?failure_threshold:breaker_threshold
                ?cooldown:breaker_cooldown ();
            tiebreak = tiebreak_of ~seed name })
        candidates;
    precheck;
    seed;
    obs = Option.value obs ~default:Grid_obs.Obs.noop;
    plans = 0 }

let seed t = t.seed
let now t = Grid_sim.Engine.now (Directory.engine t.directory)

let breaker_state t name =
  List.find_opt (fun c -> c.name = name) t.candidates
  |> Option.map (fun c -> Grid_util.Retry.Breaker.state c.breaker ~now:(now t))

let skip t candidate reason =
  if Grid_obs.Obs.enabled t.obs then
    Grid_obs.Obs.incr t.obs
      ~labels:[ ("resource", candidate.name); ("reason", reason) ]
      "broker_skips_total"

(* Rank the discovered, fresh, capacity-fitting sites. The directory
   already excludes stale and deregistered entries; the broker overlays
   the breaker gate and its own ordering. *)
let plan_candidates t ~(job : Grid_rsl.Job.t) =
  let salt = t.plans in
  t.plans <- t.plans + 1;
  let entries =
    Directory.query ~min_free_cpus:job.Grid_rsl.Job.count ?queue:job.Grid_rsl.Job.queue
      t.directory
  in
  let scored =
    List.filter_map
      (fun (entry : Directory.entry) ->
        match
          List.find_opt
            (fun c -> c.name = entry.Directory.info.Directory.resource_name)
            t.candidates
        with
        | None -> None
        | Some c ->
          if not (Grid_util.Retry.Breaker.allow c.breaker ~now:(now t)) then begin
            skip t c "breaker_open";
            None
          end
          else
            let free, pending =
              match entry.Directory.latest with
              | Some s -> (s.Directory.free_cpus, s.Directory.pending_jobs)
              | None -> (0, 0)
            in
            Some (free, pending, c))
      entries
  in
  List.stable_sort
    (fun (free_a, pending_a, a) (free_b, pending_b, b) ->
      let c = compare free_b free_a in
      if c <> 0 then c
      else
        let c = compare pending_a pending_b in
        if c <> 0 then c
        else
          let c =
            compare (Hashtbl.hash (a.tiebreak, salt)) (Hashtbl.hash (b.tiebreak, salt))
          in
          if c <> 0 then c else String.compare a.name b.name)
    scored
  |> List.map (fun (_, _, c) -> c)

let plan t ~job = List.map (fun c -> c.resource) (plan_candidates t ~job)

let select = plan

(* Which submission outcomes implicate the site rather than the job:
   a timeout means the site (or the path to it) is unresponsive and
   feeds the breaker; any policy or protocol answer proves the site is
   alive and resets it. *)
let record_outcome t candidate outcome =
  match outcome with
  | Error (Grid_gram.Protocol.Request_timeout _) ->
    Grid_util.Retry.Breaker.failure candidate.breaker ~now:(now t)
  | Ok _ | Error _ -> Grid_util.Retry.Breaker.success candidate.breaker ~now:(now t)

(* External submission paths (the fleet's asynchronous lane) report their
   outcomes here so one shared breaker view covers every lane. *)
let observe t ~site outcome =
  match List.find_opt (fun c -> c.name = site) t.candidates with
  | None -> ()
  | Some c -> begin
    match outcome with
    | `Timeout -> Grid_util.Retry.Breaker.failure c.breaker ~now:(now t)
    | `Answered -> Grid_util.Retry.Breaker.success c.breaker ~now:(now t)
  end

let submit t ~(identity : Grid_gsi.Identity.t) ~rsl =
  match Grid_rsl.Job.of_string rsl with
  | Error e -> Error (All_failed [ { site = "(parse)"; error = Grid_rsl.Job.error_to_string e } ])
  | Ok job ->
    let authorized_by_precheck =
      match t.precheck with
      | None -> true
      | Some check ->
        check
          (Grid_policy.Types.start_request
             ~subject:(Grid_gsi.Identity.effective_subject identity)
             ~job:(Grid_rsl.Job.clause job))
    in
    if not authorized_by_precheck then
      Error
        (All_failed
           [ { site = "(broker pre-check)";
               error = "request is outside the community policy; not submitted" } ])
    else begin
      match plan_candidates t ~job with
      | [] -> Error No_candidates
      | candidates ->
        let rec try_each failures = function
          | [] -> Error (All_failed (List.rev failures))
          | c :: rest -> begin
            let client = Grid_gram.Client.create ~identity ~resource:c.resource () in
            let result = Grid_gram.Client.submit_sync client ~rsl in
            record_outcome t c result;
            match result with
            | Ok reply ->
              if Grid_obs.Obs.enabled t.obs then
                Grid_obs.Obs.incr t.obs
                  ~labels:[ ("resource", c.name) ]
                  "broker_selections_total";
              Ok (c.name, reply)
            | Error e ->
              try_each
                ({ site = c.name;
                   error = Grid_gram.Protocol.submit_error_to_string e }
                :: failures)
                rest
          end
        in
        try_each [] candidates
    end
