(* A resource broker.

   Answers "where can this job run?" by combining discovery (the
   directory), an optional authorization pre-check (evaluating the VO's
   own policy before burning a round trip on a doomed submission), and
   capacity ranking. On submission failure at the best candidate it
   falls through to the next — the retry pattern every metascheduler
   built on GRAM used. *)

type candidate = {
  name : string;
  resource : Grid_gram.Resource.t;
}

type t = {
  directory : Directory.t;
  candidates : candidate list;
  (* Authorization pre-check: VO-side advice only. The resource's own
     PEP remains authoritative — the broker never bypasses it. *)
  precheck : (Grid_policy.Types.request -> bool) option;
}

type failure = {
  site : string;
  error : string;
}

type error =
  | No_candidates (* discovery produced nothing usable *)
  | All_failed of failure list

let error_to_string = function
  | No_candidates -> "no resource matches the request"
  | All_failed failures ->
    "all candidate resources refused:\n"
    ^ Grid_util.Strings.concat_map "\n"
        (fun f -> Printf.sprintf "  %s: %s" f.site f.error)
        failures

let create ?precheck ~directory candidates =
  { directory;
    candidates =
      List.map
        (fun resource -> { name = Grid_gram.Resource.name resource; resource })
        candidates;
    precheck }

let plan_candidates t ~(job : Grid_rsl.Job.t) =
  Directory.query ~min_free_cpus:job.Grid_rsl.Job.count ?queue:job.Grid_rsl.Job.queue
    t.directory
  |> List.filter_map (fun (entry : Directory.entry) ->
         List.find_opt
           (fun c -> c.name = entry.Directory.info.Directory.resource_name)
           t.candidates)

let plan t ~job = List.map (fun c -> c.resource) (plan_candidates t ~job)

let submit t ~(identity : Grid_gsi.Identity.t) ~rsl =
  match Grid_rsl.Job.of_string rsl with
  | Error e -> Error (All_failed [ { site = "(parse)"; error = Grid_rsl.Job.error_to_string e } ])
  | Ok job ->
    let authorized_by_precheck =
      match t.precheck with
      | None -> true
      | Some check ->
        check
          (Grid_policy.Types.start_request
             ~subject:(Grid_gsi.Identity.effective_subject identity)
             ~job:(Grid_rsl.Job.clause job))
    in
    if not authorized_by_precheck then
      Error
        (All_failed
           [ { site = "(broker pre-check)";
               error = "request is outside the community policy; not submitted" } ])
    else begin
      match plan_candidates t ~job with
      | [] -> Error No_candidates
      | candidates ->
        let rec try_each failures = function
          | [] -> Error (All_failed (List.rev failures))
          | c :: rest -> begin
            let client = Grid_gram.Client.create ~identity ~resource:c.resource () in
            match Grid_gram.Client.submit_sync client ~rsl with
            | Ok reply -> Ok (c.name, reply)
            | Error e ->
              try_each
                ({ site = c.name;
                   error = Grid_gram.Protocol.submit_error_to_string e }
                :: failures)
                rest
          end
        in
        try_each [] candidates
    end
