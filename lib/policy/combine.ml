(* Multi-source policy combination (requirement 1 of Section 2).

   The resource provider outsources part of its policy administration to
   the VO: the enforcement point must combine policies from both sources,
   and an action proceeds only if every source authorizes it. A source is a
   named policy; the combined decision records which source denied, so GRAM
   can return a meaningful authorization error. *)

type source = {
  name : string; (* e.g. "resource-owner", "fusion-vo" *)
  policy : Types.t;
}

type combined_decision =
  | Permit
  | Deny of { source : string; reason : Eval.reason }

let source ~name policy = { name; policy }

let decision_to_string = function
  | Permit -> "PERMIT"
  | Deny { source; reason } ->
    Printf.sprintf "DENY by %s: %s" source (Eval.reason_to_string reason)

let pp_decision ppf d = Fmt.string ppf (decision_to_string d)

let is_permit = function Permit -> true | Deny _ -> false

(* Conjunctive combination: every source must permit. Sources are checked
   in order and the first denial is reported. *)
let evaluate ?obs (sources : source list) (request : Types.request) : combined_decision =
  let rec go = function
    | [] -> Permit
    | s :: rest -> begin
      match Eval.observed ?obs ~source:s.name s.policy request with
      | Eval.Permit -> go rest
      | Eval.Deny reason -> Deny { source = s.name; reason }
    end
  in
  if sources = [] then
    (* No policy sources configured: fail closed, consistent with the
       language's default-deny stance. *)
    Deny { source = "(none)"; reason = Eval.No_applicable_grant }
  else go sources

(* All denials, not just the first: used by the CLI's explain mode. *)
let evaluate_all (sources : source list) (request : Types.request) :
    (string * Eval.decision) list =
  List.map (fun s -> (s.name, Eval.evaluate s.policy request)) sources

(* --- Compiled sources -------------------------------------------------- *)

(* The same conjunctive combination over pre-compiled policies: the hot
   path the PEPs actually run. Decisions (and the per-source
   [policy_eval_total] instrumentation) are identical to [evaluate]. *)

type compiled_source = {
  origin : source;
  compiled : Compile.t;
}

let compile_source (s : source) = { origin = s; compiled = Compile.compile s.policy }
let compile_sources = List.map compile_source

let epoch_of (sources : compiled_source list) =
  List.fold_left (fun acc c -> max acc (Compile.epoch c.compiled)) 0 sources

let evaluate_compiled ?obs (sources : compiled_source list) (request : Types.request) :
    combined_decision =
  let rec go = function
    | [] -> Permit
    | c :: rest -> begin
      match
        Eval.observed_with ?obs ~source:c.origin.name ~eval:(Compile.eval c.compiled)
          request
      with
      | Eval.Permit -> go rest
      | Eval.Deny reason -> Deny { source = c.origin.name; reason }
    end
  in
  if sources = [] then Deny { source = "(none)"; reason = Eval.No_applicable_grant }
  else go sources

(* Batched conjunction, source-major: evaluate the whole pending batch
   against source 1, drop the requests it denied (recording the denial),
   and hand only the survivors to source 2, and so on. Element-wise this
   answers exactly what [evaluate_compiled] answers — a request's first
   denying source (in source order) is the one reported — while each
   source sees one amortized [Compile.eval_many] pass instead of
   per-request calls. Answers are scattered back by original index, so
   batch order is preserved. *)
let evaluate_compiled_many ?obs (sources : compiled_source list)
    (requests : Types.request array) : combined_decision array =
  let n = Array.length requests in
  if n = 0 then [||]
  else if sources = [] then
    Array.make n (Deny { source = "(none)"; reason = Eval.No_applicable_grant })
  else begin
    let results = Array.make n Permit in
    let pending = Array.init n (fun i -> i) in
    let n_pending = ref n in
    List.iter
      (fun c ->
        if !n_pending > 0 then begin
          let batch = Array.init !n_pending (fun k -> requests.(pending.(k))) in
          let decisions =
            Eval.observed_many_with ?obs ~source:c.origin.name
              ~eval_many:(Compile.eval_many c.compiled)
              batch
          in
          let kept = ref 0 in
          Array.iteri
            (fun k d ->
              match d with
              | Eval.Permit ->
                pending.(!kept) <- pending.(k);
                incr kept
              | Eval.Deny reason ->
                results.(pending.(k)) <- Deny { source = c.origin.name; reason })
            decisions;
          n_pending := !kept
        end)
      sources;
    results
  end
