(* Multi-source policy combination (requirement 1 of Section 2).

   The resource provider outsources part of its policy administration to
   the VO: the enforcement point must combine policies from both sources,
   and an action proceeds only if every source authorizes it. A source is a
   named policy; the combined decision records which source denied, so GRAM
   can return a meaningful authorization error. *)

type source = {
  name : string; (* e.g. "resource-owner", "fusion-vo" *)
  policy : Types.t;
}

type combined_decision =
  | Permit
  | Deny of { source : string; reason : Eval.reason }

let source ~name policy = { name; policy }

let decision_to_string = function
  | Permit -> "PERMIT"
  | Deny { source; reason } ->
    Printf.sprintf "DENY by %s: %s" source (Eval.reason_to_string reason)

let pp_decision ppf d = Fmt.string ppf (decision_to_string d)

let is_permit = function Permit -> true | Deny _ -> false

(* Conjunctive combination: every source must permit. Sources are checked
   in order and the first denial is reported. *)
let evaluate ?obs (sources : source list) (request : Types.request) : combined_decision =
  let rec go = function
    | [] -> Permit
    | s :: rest -> begin
      match Eval.observed ?obs ~source:s.name s.policy request with
      | Eval.Permit -> go rest
      | Eval.Deny reason -> Deny { source = s.name; reason }
    end
  in
  if sources = [] then
    (* No policy sources configured: fail closed, consistent with the
       language's default-deny stance. *)
    Deny { source = "(none)"; reason = Eval.No_applicable_grant }
  else go sources

(* All denials, not just the first: used by the CLI's explain mode. *)
let evaluate_all (sources : source list) (request : Types.request) :
    (string * Eval.decision) list =
  List.map (fun s -> (s.name, Eval.evaluate s.policy request)) sources

(* --- Compiled sources -------------------------------------------------- *)

(* The same conjunctive combination over pre-compiled policies: the hot
   path the PEPs actually run. Decisions (and the per-source
   [policy_eval_total] instrumentation) are identical to [evaluate]. *)

type compiled_source = {
  origin : source;
  compiled : Compile.t;
}

let compile_source (s : source) = { origin = s; compiled = Compile.compile s.policy }
let compile_sources = List.map compile_source

let epoch_of (sources : compiled_source list) =
  List.fold_left (fun acc c -> max acc (Compile.epoch c.compiled)) 0 sources

let evaluate_compiled ?obs (sources : compiled_source list) (request : Types.request) :
    combined_decision =
  let rec go = function
    | [] -> Permit
    | c :: rest -> begin
      match
        Eval.observed_with ?obs ~source:c.origin.name ~eval:(Compile.eval c.compiled)
          request
      with
      | Eval.Permit -> go rest
      | Eval.Deny reason -> Deny { source = c.origin.name; reason }
    end
  in
  if sources = [] then Deny { source = "(none)"; reason = Eval.No_applicable_grant }
  else go sources
