(** One-shot policy compilation: an indexed, pre-normalized form of
    {!Types.t} whose {!eval} answers exactly what {!Eval.evaluate}
    answers — decision and reason — while skipping the per-request
    statement scan and constant re-parsing.

    Statements are bucketed by subject pattern (component-wise DN hash;
    short-prefix buckets are the group/"wildcard" statements), constraints
    are constant-folded (NULL shape, numeric bounds, [self] separation),
    and attribute names are interned so the attribute view becomes an
    array. Each compilation is stamped with a process-globally monotonic
    {e policy epoch}; recompiling (a policy reload) always yields a larger
    epoch, which is what decision caches key on. *)

type t

val compile : Types.t -> t
(** Compile and stamp with a fresh epoch. *)

val policy : t -> Types.t
(** The source policy, unchanged (e.g. for explanation paths). *)

val epoch : t -> int

val fresh_epoch : unit -> int
(** Draw the next policy epoch without compiling; for components that
    must remain epoch-monotonic across an empty policy set. *)

val eval : t -> Types.request -> Eval.decision
(** Semantically identical to [Eval.evaluate (policy t)] — the
    differential property suite ([test_policy_compile]) holds this to
    decision-and-reason equality on generated policies. *)

val eval_many : t -> Types.request array -> Eval.decision array
(** Element-wise identical to [Array.map (eval t)], in request order,
    but amortized across the batch: structurally equal requests are
    evaluated once (requests are plain data, so equal requests get equal
    decisions), distinct requests are grouped by subject so the DN
    rendering and index probe are shared per group, and one scratch view
    array serves the whole batch. *)

val observed :
  ?obs:Grid_obs.Obs.t -> ?source:string -> t -> Types.request -> Eval.decision
(** {!eval} under the same span/counter instrumentation as
    {!Eval.observed}. *)

val observed_many :
  ?obs:Grid_obs.Obs.t -> ?source:string -> t -> Types.request array -> Eval.decision array
(** {!eval_many} under the bulk instrumentation of
    {!Eval.observed_many_with}. *)

(** A mutable slot holding the current compilation of a reloadable
    policy; [reload] recompiles and therefore bumps the epoch. *)
module Store : sig
  type compiled = t

  type t

  val create : Types.t -> t
  val current : t -> compiled
  val epoch : t -> int
  val reload : t -> Types.t -> unit
  val eval : t -> Types.request -> Eval.decision
end
