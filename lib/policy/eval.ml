(* Policy evaluation (the decision procedure behind every PEP).

   Semantics, following Section 5.1:

     - Default deny: a request is permitted only if some applicable grant
       statement has a fully satisfied clause.
     - Requirements: for every applicable requirement statement, whenever
       the clause's action-guards match the request, all its remaining
       constraints must hold; a violated requirement denies the request
       even if a grant would match.

   A request is judged through its *attribute view*: a finite map from
   attribute name to the list of string values the request carries.
   The view contains [action], [jobowner], [jobtag], and — for start
   requests — every [=] binding of the submitted RSL clause. [count]
   defaults to "1" on start requests, matching the job manager's own
   default, so "(count < 4)" correctly admits a request that omits count. *)

type reason =
  | No_applicable_grant
    (* no grant statement's subject pattern matched the requester *)
  | No_satisfied_clause of { considered : int }
    (* grants applied, but no clause was fully satisfied *)
  | Requirement_violated of {
      subject_pattern : Grid_gsi.Dn.t;
      constr : Types.constr;
    }

type decision =
  | Permit
  | Deny of reason

let reason_to_string = function
  | No_applicable_grant -> "no policy statement applies to this subject"
  | No_satisfied_clause { considered } ->
    Printf.sprintf "no clause satisfied (%d applicable grant clause%s considered)" considered
      (if considered = 1 then "" else "s")
  | Requirement_violated { subject_pattern; constr } ->
    Printf.sprintf "requirement for %s violated: %s"
      (Grid_gsi.Dn.to_string subject_pattern)
      (Types.constr_to_string constr)

let decision_to_string = function
  | Permit -> "PERMIT"
  | Deny r -> "DENY: " ^ reason_to_string r

let pp_decision ppf d = Fmt.string ppf (decision_to_string d)

let is_permit = function Permit -> true | Deny _ -> false

(* ------------------------------------------------------------------ *)
(* Attribute view                                                      *)

module View = struct
  type t = (string * string list) list

  let find (view : t) attribute = List.assoc_opt attribute view

  (* Merge-append: a repeated attribute keeps its first position and
     accumulates every value in encounter order. Duplicate [=] bindings
     like (a=1)(a=2) therefore present a=["1";"2"] to the policy instead
     of silently shadowing the later binding — the documented semantics
     the compiled evaluator relies on. *)
  let add (view : t) (name, vals) =
    let rec go = function
      | [] -> [ (name, vals) ]
      | (n, existing) :: rest when String.equal n name -> (n, existing @ vals) :: rest
      | entry :: rest -> entry :: go rest
    in
    go view

  (* Entries are [add]ed one at a time in the same encounter order the
     old [base @ owner @ tag @ job_bindings] concatenation produced, so
     the merge-append semantics (and the resulting view, entry for
     entry) are unchanged — just without materializing four intermediate
     lists per request. *)
  let of_request (r : Types.request) : t =
    let view = add [] ("action", [ Types.Action.to_string r.action ]) in
    let view =
      match r.jobowner with
      | Some dn -> add view ("jobowner", [ Grid_gsi.Dn.to_string dn ])
      | None -> view
    in
    let view = match r.jobtag with Some t -> add view ("jobtag", [ t ]) | None -> view in
    let view =
      match r.job with
      | None -> view
      | Some clause ->
        List.fold_left
          (fun view (rel : Grid_rsl.Ast.relation) ->
            if rel.op <> Grid_rsl.Ast.Eq then view
            else if r.jobtag <> None && String.equal rel.attribute "jobtag" then
              (* the explicit jobtag was parsed out of this very clause;
                 it wins over (rather than merging with) the binding *)
              view
            else
              add view
                ( rel.attribute,
                  List.map
                    (function
                      | Grid_rsl.Ast.Literal s -> s
                      | Grid_rsl.Ast.Variable v -> Printf.sprintf "$(%s)" v
                      | Grid_rsl.Ast.Binding (n, v) -> Printf.sprintf "(%s %s)" n v)
                    rel.values ))
          view clause
    in
    (* Materialize the job manager's count default for start requests. *)
    if r.action = Types.Action.Start && List.assoc_opt "count" view = None then
      view @ [ ("count", [ "1" ]) ]
    else view
end

(* ------------------------------------------------------------------ *)
(* Constraint satisfaction                                             *)

let resolve_cvalue ~subject = function
  | Types.Str s -> Some s
  | Types.Self -> Some (Grid_gsi.Dn.to_string subject)
  | Types.Null -> None

(* Satisfaction of one constraint against the view. *)
let constr_satisfied ~subject (view : View.t) (c : Types.constr) : bool =
  let present = View.find view c.attribute in
  let is_null_constraint = List.exists (fun v -> v = Types.Null) c.values in
  if is_null_constraint then
    (* NULL must stand alone; a constraint mixing NULL with values is
       unsatisfiable (validation flags it). *)
    List.length c.values = 1
    &&
    match c.op with
    | Grid_rsl.Ast.Eq -> present = None || present = Some []
    | Grid_rsl.Ast.Neq -> ( match present with Some (_ :: _) -> true | Some [] | None -> false)
    | Grid_rsl.Ast.Lt | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Le | Grid_rsl.Ast.Ge -> false
  else
    let allowed = List.filter_map (resolve_cvalue ~subject) c.values in
    match c.op with
    | Grid_rsl.Ast.Eq -> begin
      (* Present, and every request value drawn from the permitted set. *)
      match present with
      | Some (_ :: _ as actual) ->
        List.for_all (fun v -> List.exists (String.equal v) allowed) actual
      | Some [] | None -> false
    end
    | Grid_rsl.Ast.Neq -> begin
      (* Absent, or carrying none of the forbidden values. *)
      match present with
      | None | Some [] -> true
      | Some actual -> not (List.exists (fun v -> List.exists (String.equal v) allowed) actual)
    end
    | (Grid_rsl.Ast.Lt | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Le | Grid_rsl.Ast.Ge) as op -> begin
      match (present, allowed) with
      | Some (_ :: _ as actual), [ bound ] -> begin
        match float_of_string_opt bound with
        | None -> false
        | Some b ->
          List.for_all
            (fun v ->
              match float_of_string_opt v with
              | None -> false
              | Some x -> (
                match op with
                | Grid_rsl.Ast.Lt -> x < b
                | Grid_rsl.Ast.Gt -> x > b
                | Grid_rsl.Ast.Le -> x <= b
                | Grid_rsl.Ast.Ge -> x >= b
                | Grid_rsl.Ast.Eq | Grid_rsl.Ast.Neq -> assert false))
            actual
      end
      | _, _ -> false
    end

let clause_satisfied ~subject view (clause : Types.clause) =
  List.for_all (constr_satisfied ~subject view) clause

(* ------------------------------------------------------------------ *)
(* Requirements                                                        *)

let is_action_guard (c : Types.constr) = c.attribute = "action"

(* A requirement clause applies when its action-guards hold; then all other
   constraints must hold. Returns the first violated constraint if any. *)
let requirement_violation ~subject view (clause : Types.clause) =
  let guards, obligations = List.partition is_action_guard clause in
  if not (List.for_all (constr_satisfied ~subject view) guards) then None
  else List.find_opt (fun c -> not (constr_satisfied ~subject view c)) obligations

(* ------------------------------------------------------------------ *)
(* Top-level decision                                                  *)

let evaluate (policy : Types.t) (request : Types.request) : decision =
  let subject = request.subject in
  let view = View.of_request request in
  let applicable = List.filter (Types.statement_applies ~subject) policy in
  let violated =
    List.find_map
      (fun (st : Types.statement) ->
        if st.kind <> Types.Requirement then None
        else
          List.find_map
            (fun clause ->
              match requirement_violation ~subject view clause with
              | Some constr ->
                Some (Requirement_violated { subject_pattern = st.subject_pattern; constr })
              | None -> None)
            st.clauses)
      applicable
  in
  match violated with
  | Some reason -> Deny reason
  | None ->
    let grants = List.filter (fun (st : Types.statement) -> st.kind = Types.Grant) applicable in
    if grants = [] then Deny No_applicable_grant
    else
      let clauses = List.concat_map (fun (st : Types.statement) -> st.clauses) grants in
      if List.exists (clause_satisfied ~subject view) clauses then Permit
      else Deny (No_satisfied_clause { considered = List.length clauses })

(* ------------------------------------------------------------------ *)
(* Static validation                                                   *)

let validate_constr (c : Types.constr) =
  let null_count = List.length (List.filter (fun v -> v = Types.Null) c.values) in
  if null_count > 0 && List.length c.values > 1 then
    Error (Printf.sprintf "constraint %s mixes NULL with other values" (Types.constr_to_string c))
  else
    match c.op with
    | Grid_rsl.Ast.Lt | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Le | Grid_rsl.Ast.Ge -> begin
      match c.values with
      | [ Types.Str s ] -> begin
        match float_of_string_opt s with
        | Some _ -> Ok ()
        | None ->
          Error
            (Printf.sprintf "constraint %s compares against a non-number"
               (Types.constr_to_string c))
      end
      | _ ->
        Error
          (Printf.sprintf "constraint %s: numeric comparison needs exactly one numeric bound"
             (Types.constr_to_string c))
    end
    | Grid_rsl.Ast.Eq | Grid_rsl.Ast.Neq -> Ok ()

let validate (policy : Types.t) =
  let rec check = function
    | [] -> Ok ()
    | (st : Types.statement) :: rest ->
      let rec check_clauses = function
        | [] -> check rest
        | clause :: more -> begin
          let rec check_constrs = function
            | [] -> check_clauses more
            | c :: cs -> begin
              match validate_constr c with
              | Error _ as e -> e
              | Ok () -> check_constrs cs
            end
          in
          check_constrs clause
        end
      in
      check_clauses st.clauses
  in
  check policy

(* ------------------------------------------------------------------ *)
(* Explanation (for the CLI and the Figure 3 reproduction)             *)

type explanation = {
  decision : decision;
  requirements_checked : int;
  grants_considered : int;
  matched_clause : Types.clause option;
}

let explain (policy : Types.t) (request : Types.request) : explanation =
  let subject = request.subject in
  let view = View.of_request request in
  let applicable = List.filter (Types.statement_applies ~subject) policy in
  let requirements =
    List.filter (fun (st : Types.statement) -> st.kind = Types.Requirement) applicable
  in
  let grants = List.filter (fun (st : Types.statement) -> st.kind = Types.Grant) applicable in
  let matched_clause =
    List.concat_map (fun (st : Types.statement) -> st.clauses) grants
    |> List.find_opt (clause_satisfied ~subject view)
  in
  { decision = evaluate policy request;
    requirements_checked = List.length requirements;
    grants_considered = List.length grants;
    matched_clause }

(* ------------------------------------------------------------------ *)
(* Instrumentation hook: the PEPs evaluate through this wrapper so every
   decision lands in the metrics registry and on the span trail. *)

let decision_label = function Permit -> "permit" | Deny _ -> "deny"

(* Generalized over the evaluator so the compiled path (Compile.eval)
   lands in the same span and counter vocabulary as the reference. *)
let observed_with ?(obs = Grid_obs.Obs.noop) ?(source = "policy") ~eval request =
  if not (Grid_obs.Obs.enabled obs) then eval request
  else
    Grid_obs.Obs.with_span obs ~attrs:[ ("source", source) ] "policy.eval" (fun _ ->
        let decision = eval request in
        Grid_obs.Obs.incr obs
          ~labels:[ ("source", source); ("decision", decision_label decision) ]
          "policy_eval_total";
        decision)

(* Batched sibling: one span for the whole batch, [policy_eval_total]
   incremented in bulk per decision label — the counter totals stay
   identical to running [observed_with] per request. *)
let observed_many_with ?(obs = Grid_obs.Obs.noop) ?(source = "policy") ~eval_many requests
    =
  if not (Grid_obs.Obs.enabled obs) then eval_many requests
  else
    Grid_obs.Obs.with_span obs ~attrs:[ ("source", source) ] "policy.eval" (fun _ ->
        let decisions = eval_many requests in
        let permits =
          Array.fold_left (fun acc d -> if is_permit d then acc + 1 else acc) 0 decisions
        in
        let denies = Array.length decisions - permits in
        if permits > 0 then
          Grid_obs.Obs.incr obs ~by:(float_of_int permits)
            ~labels:[ ("source", source); ("decision", "permit") ]
            "policy_eval_total";
        if denies > 0 then
          Grid_obs.Obs.incr obs ~by:(float_of_int denies)
            ~labels:[ ("source", source); ("decision", "deny") ]
            "policy_eval_total";
        decisions)

let observed ?obs ?source policy request =
  observed_with ?obs ?source ~eval:(evaluate policy) request
