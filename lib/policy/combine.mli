(** Conjunctive combination of policies from multiple sources
    (resource owner AND virtual organization). *)

type source = {
  name : string;
  policy : Types.t;
}

type combined_decision =
  | Permit
  | Deny of { source : string; reason : Eval.reason }

val source : name:string -> Types.t -> source

val decision_to_string : combined_decision -> string
val pp_decision : combined_decision Fmt.t
val is_permit : combined_decision -> bool

val evaluate : ?obs:Grid_obs.Obs.t -> source list -> Types.request -> combined_decision
(** Permit iff every source permits; the first denial is reported. An empty
    source list fails closed. When [obs] is given, each per-source
    evaluation is spanned and counted (see {!Eval.observed}). *)

val evaluate_all : source list -> Types.request -> (string * Eval.decision) list
(** Per-source decisions, for explanation output. *)
