(** Conjunctive combination of policies from multiple sources
    (resource owner AND virtual organization). *)

type source = {
  name : string;
  policy : Types.t;
}

type combined_decision =
  | Permit
  | Deny of { source : string; reason : Eval.reason }

val source : name:string -> Types.t -> source

val decision_to_string : combined_decision -> string
val pp_decision : combined_decision Fmt.t
val is_permit : combined_decision -> bool

val evaluate : ?obs:Grid_obs.Obs.t -> source list -> Types.request -> combined_decision
(** Permit iff every source permits; the first denial is reported. An empty
    source list fails closed. When [obs] is given, each per-source
    evaluation is spanned and counted (see {!Eval.observed}). *)

val evaluate_all : source list -> Types.request -> (string * Eval.decision) list
(** Per-source decisions, for explanation output. *)

(** {1 Compiled sources}

    The combination the PEPs run in production: each source's policy is
    compiled once ({!Compile}) and the conjunction evaluates through the
    index. Decisions and instrumentation are identical to {!evaluate}. *)

type compiled_source = {
  origin : source;
  compiled : Compile.t;
}

val compile_source : source -> compiled_source
val compile_sources : source list -> compiled_source list

val epoch_of : compiled_source list -> int
(** The newest policy epoch across the sources (0 when empty); bumps
    whenever any source is recompiled. *)

val evaluate_compiled :
  ?obs:Grid_obs.Obs.t -> compiled_source list -> Types.request -> combined_decision
(** Same contract as {!evaluate}, through the compiled index. *)

val evaluate_compiled_many :
  ?obs:Grid_obs.Obs.t ->
  compiled_source list ->
  Types.request array ->
  combined_decision array
(** Element-wise identical to mapping {!evaluate_compiled}, in request
    order, evaluated source-major: each source answers one amortized
    {!Compile.eval_many} pass over the requests every earlier source
    permitted; the first denying source (in source order) is the one
    reported, exactly as in the single-shot path. *)
