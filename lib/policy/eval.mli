(** Policy evaluation: the decision procedure behind every PEP.

    Default-deny. Requirement statements act as filters (violating one
    denies the request outright); grant statements permit a request when
    one of their clauses is fully satisfied by the request's attribute
    view. See the implementation header for the exact constraint
    semantics. *)

type reason =
  | No_applicable_grant
  | No_satisfied_clause of { considered : int }
  | Requirement_violated of {
      subject_pattern : Grid_gsi.Dn.t;
      constr : Types.constr;
    }

type decision =
  | Permit
  | Deny of reason

val reason_to_string : reason -> string
val decision_to_string : decision -> string
val pp_decision : decision Fmt.t
val is_permit : decision -> bool

(** The request's attribute view: attribute name to carried values.
    Repeated attributes (duplicate [=] bindings) accumulate all their
    values in encounter order; [count] defaults to ["1"] on start
    requests that omit it. *)
module View : sig
  type t = (string * string list) list

  val find : t -> string -> string list option
  val of_request : Types.request -> t
end

val constr_satisfied : subject:Grid_gsi.Dn.t -> View.t -> Types.constr -> bool
val clause_satisfied : subject:Grid_gsi.Dn.t -> View.t -> Types.clause -> bool

val evaluate : Types.t -> Types.request -> decision

val validate : Types.t -> (unit, string) result
(** Static checks: NULL not mixed with other values; numeric comparisons
    carry exactly one numeric bound. *)

type explanation = {
  decision : decision;
  requirements_checked : int;
  grants_considered : int;
  matched_clause : Types.clause option;
}

val explain : Types.t -> Types.request -> explanation

val decision_label : decision -> string
(** ["permit"] / ["deny"]: the metric label vocabulary. *)

val observed_with :
  ?obs:Grid_obs.Obs.t ->
  ?source:string ->
  eval:(Types.request -> decision) ->
  Types.request ->
  decision
(** Run any evaluator under the ["policy.eval"] span and the
    [policy_eval_total{source,decision}] counter — the hook the compiled
    evaluator ({!Compile}) shares with the reference path. *)

val observed_many_with :
  ?obs:Grid_obs.Obs.t ->
  ?source:string ->
  eval_many:(Types.request array -> decision array) ->
  Types.request array ->
  decision array
(** Batched sibling of {!observed_with}: one ["policy.eval"] span for
    the whole batch, with [policy_eval_total{source,decision}] bulk
    incremented so counter totals match the per-request path. *)

val observed :
  ?obs:Grid_obs.Obs.t -> ?source:string -> Types.t -> Types.request -> decision
(** [evaluate] wrapped in a ["policy.eval"] span and a
    [policy_eval_total{source,decision}] counter increment. With the
    default (disabled) observer it is exactly [evaluate]. *)
