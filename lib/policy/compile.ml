(* One-shot policy compilation: [Types.t] lowered to an indexed form that
   answers the same decisions as [Eval.evaluate], bit for bit, but without
   re-scanning every statement and re-parsing every constant per request.

   Three things are precomputed:

     - Subject index. Statements are bucketed by their (exact) subject
       pattern, keyed on a component-wise encoding of the pattern DN.
       Because patterns match by DN *prefix*, lookup enumerates the
       request subject's prefixes (there are [length subject] + 1 of
       them, and never more than the longest pattern in the policy) and
       merges the matching buckets back into statement order. A bucket
       keyed on a short prefix is exactly the "wildcard/pattern list" —
       group statements — while full-DN buckets hold the per-user
       statements; both are one hash probe each.

     - Constraint folding. Everything about a constraint that does not
       depend on the request is resolved at compile time: NULL shape
       (NULL mixed with other values is constant-false), numeric bounds
       parsed once, constant string sets separated from [self], and
       numeric comparisons with a non-numeric or non-singleton bound
       folded to constant-false.

     - Attribute interning. Attribute names become dense integer ids and
       the request's attribute view becomes an array indexed by them, so
       constraint checks cost an array load instead of an assoc-list
       walk. The view is built with the same merge-append rule as
       [Eval.View.of_request].

   Every compilation is stamped with a monotonically increasing *policy
   epoch* drawn from a process-global counter. Reloading a policy (see
   {!Store}) compiles afresh and therefore bumps the epoch; decision
   caches key on it to invalidate without tracking policy contents. *)

type check =
  | Const of bool
  | Null_absent (* attribute = NULL *)
  | Null_present (* attribute != NULL *)
  | Member of { allowed : string list; self : bool }
  | Not_member of { forbidden : string list; self : bool }
  | Compare of { op : Grid_rsl.Ast.op; bound : float }
  | Compare_self of { op : Grid_rsl.Ast.op }

type cconstr = {
  attr : int;
  check : check;
  source : Types.constr; (* for Requirement_violated reporting *)
}

type creq_clause = {
  guards : cconstr list; (* constraints on "action" *)
  obligations : cconstr list;
}

type cbody =
  | Cgrant of {
      clauses : cconstr list list;
      clause_count : int;
    }
  | Crequirement of creq_clause list

type cstatement = {
  index : int; (* original statement order *)
  pattern : Grid_gsi.Dn.t;
  body : cbody;
}

type t = {
  policy : Types.t;
  epoch : int;
  n_attrs : int;
  action_id : int;
  jobowner_id : int;
  jobtag_id : int;
  count_id : int;
  ids : (string, int) Hashtbl.t;
  buckets : (string, cstatement list) Hashtbl.t;
  max_pattern : int; (* longest subject pattern, bounds prefix probing *)
}

let policy t = t.policy
let epoch t = t.epoch

(* --- Policy epoch ------------------------------------------------------ *)

let epoch_counter = ref 0

let fresh_epoch () =
  incr epoch_counter;
  !epoch_counter

(* --- Compilation ------------------------------------------------------- *)

(* Length-prefixed component encoding: [Dn.t] is a concrete rdn list, so
   hand-built DNs can hold any byte — '/', '=', former separator bytes —
   and a bucket-key collision silently widens (or narrows) a statement's
   audience. [<len>.<bytes>] per attr and value is injective whatever
   the bytes are; test_policy_compile's edge-case suite pinned the
   separator-joined encoding aliasing [a=b,c=d] with [a=b\x00c\x01d]
   before this. *)
let component_key (rdn : Grid_gsi.Dn.rdn) =
  Printf.sprintf "%d.%s%d.%s" (String.length rdn.attr) rdn.attr
    (String.length rdn.value) rdn.value
let extend_key key comp = key ^ comp
let pattern_key (dn : Grid_gsi.Dn.t) =
  List.fold_left (fun key rdn -> extend_key key (component_key rdn)) "" dn

let compile_check (c : Types.constr) : check =
  let is_null = List.exists (fun v -> v = Types.Null) c.values in
  if is_null then
    if List.length c.values <> 1 then Const false (* NULL must stand alone *)
    else
      match c.op with
      | Grid_rsl.Ast.Eq -> Null_absent
      | Grid_rsl.Ast.Neq -> Null_present
      | Grid_rsl.Ast.Lt | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Le | Grid_rsl.Ast.Ge ->
        Const false
  else
    let self = List.exists (fun v -> v = Types.Self) c.values in
    let consts =
      List.filter_map (function Types.Str s -> Some s | _ -> None) c.values
    in
    match c.op with
    | Grid_rsl.Ast.Eq -> Member { allowed = consts; self }
    | Grid_rsl.Ast.Neq -> Not_member { forbidden = consts; self }
    | (Grid_rsl.Ast.Lt | Grid_rsl.Ast.Gt | Grid_rsl.Ast.Le | Grid_rsl.Ast.Ge) as op
      -> begin
      (* The reference demands exactly one resolvable numeric bound. *)
      match c.values with
      | [ Types.Str s ] -> begin
        match float_of_string_opt s with
        | Some bound -> Compare { op; bound }
        | None -> Const false
      end
      | [ Types.Self ] -> Compare_self { op }
      | _ -> Const false
    end

let compile (policy : Types.t) : t =
  let ids = Hashtbl.create 16 in
  let intern name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None ->
      let id = Hashtbl.length ids in
      Hashtbl.add ids name id;
      id
  in
  (* The view's built-in attributes are always interned so the builder
     can address their slots unconditionally. *)
  let action_id = intern "action" in
  let jobowner_id = intern "jobowner" in
  let jobtag_id = intern "jobtag" in
  let count_id = intern "count" in
  let compile_constr (c : Types.constr) =
    { attr = intern c.attribute; check = compile_check c; source = c }
  in
  let compile_statement index (st : Types.statement) =
    let body =
      match st.kind with
      | Types.Grant ->
        Cgrant
          { clauses = List.map (List.map compile_constr) st.clauses;
            clause_count = List.length st.clauses }
      | Types.Requirement ->
        Crequirement
          (List.map
             (fun clause ->
               let guards, obligations =
                 List.partition (fun (c : Types.constr) -> c.attribute = "action") clause
               in
               { guards = List.map compile_constr guards;
                 obligations = List.map compile_constr obligations })
             st.clauses)
    in
    { index; pattern = st.subject_pattern; body }
  in
  let buckets = Hashtbl.create 16 in
  List.iteri
    (fun index st ->
      let cst = compile_statement index st in
      let key = pattern_key st.subject_pattern in
      let existing = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
      Hashtbl.replace buckets key (cst :: existing))
    policy;
  (* Buckets were accumulated in reverse; restore statement order. *)
  Hashtbl.iter (fun key sts -> Hashtbl.replace buckets key (List.rev sts))
    (Hashtbl.copy buckets);
  let max_pattern =
    List.fold_left
      (fun acc (st : Types.statement) -> max acc (Grid_gsi.Dn.length st.subject_pattern))
      0 policy
  in
  { policy;
    epoch = fresh_epoch ();
    n_attrs = Hashtbl.length ids;
    action_id;
    jobowner_id;
    jobtag_id;
    count_id;
    ids;
    buckets;
    max_pattern }

(* --- Evaluation -------------------------------------------------------- *)

(* The request's attribute view as a dense array over interned ids,
   following the same construction as [Eval.View.of_request]: action,
   jobowner, explicit jobtag, then the RSL clause's [=] bindings in
   order, with repeated attributes accumulating their values and [count]
   defaulting to "1" on start requests. Attributes the policy never
   names are not interned and simply dropped — no constraint can
   observe them. *)
let build_view_into t (view : string list option array) (r : Types.request) : unit =
  let append id vals =
    match view.(id) with
    | None -> view.(id) <- Some vals
    | Some existing -> view.(id) <- Some (existing @ vals)
  in
  append t.action_id [ Types.Action.to_string r.action ];
  (match r.jobowner with
  | Some dn -> append t.jobowner_id [ Grid_gsi.Dn.to_string dn ]
  | None -> ());
  (match r.jobtag with Some tag -> append t.jobtag_id [ tag ] | None -> ());
  (match r.job with
  | None -> ()
  | Some clause ->
    List.iter
      (fun (rel : Grid_rsl.Ast.relation) ->
        if
          rel.op = Grid_rsl.Ast.Eq
          && not (r.jobtag <> None && String.equal rel.attribute "jobtag")
        then
          match Hashtbl.find_opt t.ids rel.attribute with
          | None -> ()
          | Some id ->
            append id
              (List.map
                 (function
                   | Grid_rsl.Ast.Literal s -> s
                   | Grid_rsl.Ast.Variable v -> Printf.sprintf "$(%s)" v
                   | Grid_rsl.Ast.Binding (n, v) -> Printf.sprintf "(%s %s)" n v)
                 rel.values))
      clause);
  if r.action = Types.Action.Start && view.(t.count_id) = None then
    view.(t.count_id) <- Some [ "1" ]

let build_view t (r : Types.request) : string list option array =
  let view = Array.make t.n_attrs None in
  build_view_into t view r;
  view

let numeric_holds op bound present =
  match present with
  | Some (_ :: _ as actual) ->
    List.for_all
      (fun v ->
        match float_of_string_opt v with
        | None -> false
        | Some x -> (
          match op with
          | Grid_rsl.Ast.Lt -> x < bound
          | Grid_rsl.Ast.Gt -> x > bound
          | Grid_rsl.Ast.Le -> x <= bound
          | Grid_rsl.Ast.Ge -> x >= bound
          | Grid_rsl.Ast.Eq | Grid_rsl.Ast.Neq -> assert false))
      actual
  | Some [] | None -> false

let check_sat ~subject_str (view : string list option array) (c : cconstr) =
  let present = view.(c.attr) in
  match c.check with
  | Const b -> b
  | Null_absent -> ( match present with None | Some [] -> true | Some (_ :: _) -> false)
  | Null_present -> ( match present with Some (_ :: _) -> true | Some [] | None -> false)
  | Member { allowed; self } -> begin
    match present with
    | Some (_ :: _ as actual) ->
      List.for_all
        (fun v ->
          List.exists (String.equal v) allowed || (self && String.equal v subject_str))
        actual
    | Some [] | None -> false
  end
  | Not_member { forbidden; self } -> begin
    match present with
    | None | Some [] -> true
    | Some actual ->
      not
        (List.exists
           (fun v ->
             List.exists (String.equal v) forbidden
             || (self && String.equal v subject_str))
           actual)
  end
  | Compare { op; bound } -> numeric_holds op bound present
  | Compare_self { op } -> begin
    (* [self] as a numeric bound: resolves to the subject DN, which must
       itself parse as a number (it never does for real DNs — the
       reference answers false there, and so do we). *)
    match float_of_string_opt subject_str with
    | None -> false
    | Some bound -> numeric_holds op bound present
  end

(* All statements whose pattern prefixes [subject], in statement order:
   probe the bucket of every subject prefix and re-sort the (few) hits. *)
let applicable t (subject : Grid_gsi.Dn.t) : cstatement list =
  let rec probe comps depth key acc =
    let acc =
      match Hashtbl.find_opt t.buckets key with
      | Some sts -> List.rev_append sts acc
      | None -> acc
    in
    if depth >= t.max_pattern then acc
    else
      match comps with
      | [] -> acc
      | rdn :: rest -> probe rest (depth + 1) (extend_key key (component_key rdn)) acc
  in
  List.sort
    (fun a b -> compare a.index b.index)
    (probe subject 0 "" [])

(* The decision procedure proper, over an already-built view and an
   already-probed applicable-statement list — shared by [eval] and the
   per-subject groups of [eval_many]. *)
let decide ~subject_str (view : string list option array)
    (statements : cstatement list) : Eval.decision =
  let sat = check_sat ~subject_str view in
  let violated =
    List.find_map
      (fun st ->
        match st.body with
        | Cgrant _ -> None
        | Crequirement clauses ->
          List.find_map
            (fun { guards; obligations } ->
              if not (List.for_all sat guards) then None
              else
                match List.find_opt (fun c -> not (sat c)) obligations with
                | Some c ->
                  Some
                    (Eval.Requirement_violated
                       { subject_pattern = st.pattern; constr = c.source })
                | None -> None)
            clauses)
      statements
  in
  match violated with
  | Some reason -> Eval.Deny reason
  | None ->
    let grants =
      List.filter (fun st -> match st.body with Cgrant _ -> true | _ -> false)
        statements
    in
    if grants = [] then Eval.Deny Eval.No_applicable_grant
    else if
      List.exists
        (fun st ->
          match st.body with
          | Cgrant { clauses; _ } ->
            List.exists (fun clause -> List.for_all sat clause) clauses
          | Crequirement _ -> false)
        grants
    then Eval.Permit
    else
      let considered =
        List.fold_left
          (fun acc st ->
            match st.body with
            | Cgrant { clause_count; _ } -> acc + clause_count
            | Crequirement _ -> acc)
          0 grants
      in
      Eval.Deny (Eval.No_satisfied_clause { considered })

let eval (t : t) (request : Types.request) : Eval.decision =
  let subject = request.subject in
  let subject_str = Grid_gsi.Dn.to_string subject in
  let view = build_view t request in
  decide ~subject_str view (applicable t subject)

(* Batched evaluation: element-wise identical to [Array.map (eval t)],
   answers in request order. Amortization within the batch:

     - Dedupe. Management ticks over a running job population repeat the
       same (subject, action, jobowner, jobtag) request many times per
       batch — requests are plain data, so structurally equal requests
       necessarily get the same decision and are evaluated once, with
       the representative's decision (a shared immutable value) written
       to every duplicate slot.
     - Subject grouping. Distinct requests are sorted by subject so each
       subject's DN rendering and index probe happen once per group, not
       once per request.
     - Scratch view. One view array serves the whole batch, cleared
       between requests — no per-decision view allocation.

   The result array is scattered by original index, so the sort is
   invisible to the caller. *)
let eval_many (t : t) (requests : Types.request array) : Eval.decision array =
  let n = Array.length requests in
  if n = 0 then [||]
  else if n = 1 then [| eval t requests.(0) |]
  else begin
    let rep = Array.make n (-1) in
    let seen : (Types.request, int) Hashtbl.t = Hashtbl.create (min n 64) in
    let n_unique = ref 0 in
    for i = 0 to n - 1 do
      match Hashtbl.find_opt seen requests.(i) with
      | Some j -> rep.(i) <- j
      | None ->
        Hashtbl.add seen requests.(i) i;
        rep.(i) <- i;
        incr n_unique
    done;
    let order = Array.make !n_unique 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if rep.(i) = i then begin
        order.(!k) <- i;
        incr k
      end
    done;
    Array.sort
      (fun i j -> Stdlib.compare requests.(i).Types.subject requests.(j).Types.subject)
      order;
    let results = Array.make n Eval.Permit in
    let view = Array.make t.n_attrs None in
    let m = Array.length order in
    let i = ref 0 in
    while !i < m do
      let subject = requests.(order.(!i)).Types.subject in
      let subject_str = Grid_gsi.Dn.to_string subject in
      let statements = applicable t subject in
      let same_subject r =
        Stdlib.compare r.Types.subject subject = 0
      in
      while !i < m && same_subject requests.(order.(!i)) do
        let idx = order.(!i) in
        Array.fill view 0 t.n_attrs None;
        build_view_into t view requests.(idx);
        results.(idx) <- decide ~subject_str view statements;
        incr i
      done
    done;
    for i = 0 to n - 1 do
      if rep.(i) <> i then results.(i) <- results.(rep.(i))
    done;
    results
  end

let observed ?obs ?source t request =
  Eval.observed_with ?obs ?source ~eval:(eval t) request

let observed_many ?obs ?source t requests =
  Eval.observed_many_with ?obs ?source ~eval_many:(eval_many t) requests

(* --- Reloadable store -------------------------------------------------- *)

module Store = struct
  type compiled = t

  type t = { mutable current : compiled }

  let create policy = { current = compile policy }
  let current s = s.current
  let epoch s = s.current.epoch
  let reload s policy = s.current <- compile policy
  let eval s request = eval s.current request
end
