(* Signed short-TTL capability tokens. *)

type t = {
  subject : Grid_gsi.Dn.t;
  audience : string;
  entitlements : string list;
  jti : string;
  epoch : int;
  issued_at : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  signature : string;
}

(* Canonical to-be-signed bytes. Length-prefixed so no field boundary
   can be moved by adversarial bytes in a DN component or entitlement
   string: two different tokens never share signing bytes. Timestamps
   use the lossless hex-float form: a decimal rendering can round
   [issued_at] up by a fraction of a microsecond, making a token
   invalid at the very instant it was minted (seen by in-process batch
   validation, where no network delay masks the skew). *)
let signing_parts ~subject ~audience ~entitlements ~jti ~epoch ~issued_at ~not_after =
  "sts-token" :: Grid_gsi.Dn.to_string subject :: audience
  :: string_of_int (List.length entitlements)
  :: entitlements
  @ [ jti; string_of_int epoch;
      Printf.sprintf "%h" issued_at; Printf.sprintf "%h" not_after ]

let signing_bytes t =
  Grid_util.Wire.encode
    (signing_parts ~subject:t.subject ~audience:t.audience
       ~entitlements:t.entitlements ~jti:t.jti ~epoch:t.epoch
       ~issued_at:t.issued_at ~not_after:t.not_after)

let make ~subject ~audience ~entitlements ~jti ~epoch ~issued_at ~not_after
    ~signing_key =
  let body =
    Grid_util.Wire.encode
      (signing_parts ~subject ~audience ~entitlements ~jti ~epoch ~issued_at
         ~not_after)
  in
  { subject; audience; entitlements; jti; epoch; issued_at; not_after;
    signature = Grid_crypto.Keypair.sign signing_key body }

type verify_error =
  | Bad_signature
  | Expired
  | Not_yet_valid
  | Audience_mismatch of { bound : string; presented_to : string }
  | Subject_mismatch of { bound : Grid_gsi.Dn.t; presenter : Grid_gsi.Dn.t }

let verify_error_to_string = function
  | Bad_signature -> "token signature invalid"
  | Expired -> "token expired"
  | Not_yet_valid -> "token not yet valid"
  | Audience_mismatch { bound; presented_to } ->
    Printf.sprintf "token bound to audience %s presented to %s" bound presented_to
  | Subject_mismatch { bound; presenter } ->
    Printf.sprintf "token bound to %s presented by %s"
      (Grid_gsi.Dn.to_string bound) (Grid_gsi.Dn.to_string presenter)

let verify t ~sts_key ~presenter ~audience ~now =
  if not (Grid_crypto.Keypair.verify sts_key ~signature:t.signature (signing_bytes t))
  then Error Bad_signature
  else if now > t.not_after then Error Expired
  else if now < t.issued_at then Error Not_yet_valid
  else if not (t.audience = "*" || String.equal t.audience audience) then
    Error (Audience_mismatch { bound = t.audience; presented_to = audience })
  else if not (Grid_gsi.Dn.equal t.subject presenter) then
    Error (Subject_mismatch { bound = t.subject; presenter })
  else Ok ()

let permits t action =
  match t.entitlements with
  | [ "*" ] -> true
  | entitlements ->
    let name = Grid_policy.Types.Action.to_string action in
    List.exists (String.equal name) entitlements

(* --- Wire encoding ----------------------------------------------------- *)

let encode t =
  Grid_util.Wire.encode
    (signing_parts ~subject:t.subject ~audience:t.audience
       ~entitlements:t.entitlements ~jti:t.jti ~epoch:t.epoch
       ~issued_at:t.issued_at ~not_after:t.not_after
    @ [ t.signature ])

let decode s =
  match Grid_util.Wire.decode s with
  | None -> Error "malformed token encoding"
  | Some ("sts-token" :: subject :: audience :: count :: rest) -> begin
    match int_of_string_opt count with
    | Some n when n >= 0 && List.length rest = n + 5 -> begin
      let entitlements = List.filteri (fun i _ -> i < n) rest in
      match List.filteri (fun i _ -> i >= n) rest with
      | [ jti; epoch; issued; expiry; signature ] -> begin
        try
          Ok
            { subject = Grid_gsi.Dn.parse subject;
              audience;
              entitlements;
              jti;
              epoch = int_of_string epoch;
              issued_at = float_of_string issued;
              not_after = float_of_string expiry;
              signature }
        with
        | Grid_gsi.Dn.Parse_error m -> Error ("bad subject DN: " ^ m)
        | Failure _ -> Error "malformed token encoding"
      end
      | _ -> Error "malformed token encoding"
    end
    | _ -> Error "malformed token encoding"
  end
  | Some _ -> Error "malformed token encoding"

let extension_oid = "sts-token"

let to_extension t =
  { Grid_gsi.Cert.oid = extension_oid; critical = false; payload = encode t }

let find_in_credential (cred : Grid_gsi.Credential.t) =
  List.find_map
    (fun cert ->
      match Grid_gsi.Cert.find_extension cert extension_oid with
      | Some ext -> Some (decode ext.Grid_gsi.Cert.payload)
      | None -> None)
    cred.Grid_gsi.Credential.chain

let credential_deadline cred =
  match find_in_credential cred with
  | Some (Ok token) -> Some token.not_after
  | Some (Error _) | None -> None
