(* The token-validating PEP: gate on a valid STS token, then delegate
   the policy decision to the resource's inner callout. *)

module Callout = Grid_callout.Callout
module Obs = Grid_obs.Obs

type clock = unit -> Grid_sim.Clock.time

(* Registry coordinates, alongside libauthz_file / CAS / ReBAC. *)
let library = "libsts_authz.so"
let symbol = "sts_authz_callout"

type checked =
  | Accepted of Token.t
  | Not_accepted of Callout.error

let check_outcome = function
  | Accepted _ -> "accepted"
  | Not_accepted (Callout.Denied reason) ->
    if String.length reason >= 7 && String.sub reason 0 7 = "revoked" then
      "revoked"
    else "rejected"
  | Not_accepted _ -> "undecodable"

(* Find-decode-verify-revocation-entitlement, one outcome label. *)
let check_token ?validator ~sts_key ~audience ~now (query : Callout.query) :
    checked =
  match query.Callout.requester_credential with
  | None ->
    Not_accepted
      (Callout.Denied "no credential presented; STS PEP requires a token")
  | Some credential -> begin
    match Token.find_in_credential credential with
    | None -> Not_accepted (Callout.Denied "credential carries no STS token")
    | Some (Error m) ->
      Not_accepted (Callout.System_error ("cannot decode token: " ^ m))
    | Some (Ok token) -> begin
      match
        Token.verify token ~sts_key ~presenter:query.Callout.requester
          ~audience ~now:(now ())
      with
      | Error e -> Not_accepted (Callout.Denied (Token.verify_error_to_string e))
      | Ok () ->
        let revoked =
          match validator with
          | None -> false
          | Some v ->
            Validator.is_revoked v ~jti:token.Token.jti
              ~subject:(Grid_gsi.Dn.to_string token.Token.subject)
        in
        if revoked then
          Not_accepted
            (Callout.Denied (Printf.sprintf "revoked token %s" token.Token.jti))
        else if not (Token.permits token query.Callout.action) then
          Not_accepted
            (Callout.Denied
               (Printf.sprintf "token %s does not entitle %s" token.Token.jti
                  (Grid_policy.Types.Action.to_string query.Callout.action)))
        else Accepted token
    end
  end

let note ~obs (query : Callout.query) checked =
  if Obs.enabled obs then begin
    let outcome = check_outcome checked in
    Obs.incr obs ~labels:[ ("outcome", outcome) ] "token_checks_total";
    let attrs =
      [ ("outcome", outcome);
        ("subject", Grid_gsi.Dn.to_string query.Callout.requester);
        ("action", Grid_policy.Types.Action.to_string query.Callout.action) ]
      @
      match checked with
      | Accepted token ->
        [ ("jti", token.Token.jti);
          ("not_after", Printf.sprintf "%.6f" token.Token.not_after) ]
      | Not_accepted e -> [ ("reason", Callout.error_to_string e) ]
    in
    Obs.emit obs ~layer:"sts" "token.validated" attrs
  end

let checked_span ~obs ?validator ~sts_key ~audience ~now query =
  let checked =
    if not (Obs.enabled obs) then
      check_token ?validator ~sts_key ~audience ~now query
    else
      Obs.with_span obs "sts.verify" (fun span ->
          let checked = check_token ?validator ~sts_key ~audience ~now query in
          Grid_obs.Span.set_attr span "outcome" (check_outcome checked);
          checked)
  in
  note ~obs query checked;
  checked

let callout ?(obs = Obs.noop) ?validator ~sts_key ~audience ~now inner :
    Callout.t =
 fun query ->
  match checked_span ~obs ?validator ~sts_key ~audience ~now query with
  | Not_accepted error -> Error error
  | Accepted _token -> inner query

let batch ?(obs = Obs.noop) ?validator ~sts_key ~audience ~now
    (inner : Callout.Batch.t) : Callout.Batch.t =
  let single =
    callout ~obs ?validator ~sts_key ~audience ~now
      (Callout.Batch.check inner)
  in
  (* Check tokens per query, send only the survivors to the inner many
     lane (keeping its batch amortization), splice answers back in
     request order. *)
  let many (queries : Callout.query array) =
    let n = Array.length queries in
    let answers = Array.make n Callout.permitted in
    let keep = ref [] in
    for i = n - 1 downto 0 do
      match
        checked_span ~obs ?validator ~sts_key ~audience ~now queries.(i)
      with
      | Not_accepted error -> answers.(i) <- Error error
      | Accepted _ -> keep := i :: !keep
    done;
    let kept = Array.of_list !keep in
    if Array.length kept > 0 then begin
      let sub = Array.map (fun i -> queries.(i)) kept in
      let sub_answers = Callout.Batch.evaluate_many inner sub in
      Array.iteri (fun k i -> answers.(i) <- sub_answers.(k)) kept
    end;
    answers
  in
  Callout.Batch.make ~single ~many
