(* Resource-side revocation state, per distribution mode. *)

type mode =
  | Short_ttl
  | Push
  | Pull

let mode_to_string = function
  | Short_ttl -> "short-ttl"
  | Push -> "push"
  | Pull -> "pull"

let mode_of_string = function
  | "short-ttl" | "short_ttl" -> Some Short_ttl
  | "push" -> Some Push
  | "pull" -> Some Pull
  | _ -> None

let all_modes = [ Short_ttl; Push; Pull ]

type entry = {
  jti : string;
  subject : string;
  revoked_at : Grid_sim.Clock.time;
}

let encode_crl entries =
  Grid_util.Wire.encode
    (List.concat_map
       (fun e -> [ e.jti; e.subject; Printf.sprintf "%.6f" e.revoked_at ])
       entries)

let decode_crl s =
  match Grid_util.Wire.decode s with
  | None -> None
  | Some parts ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | jti :: subject :: at :: rest -> begin
        match float_of_string_opt at with
        | Some revoked_at -> go ({ jti; subject; revoked_at } :: acc) rest
        | None -> None
      end
      | _ -> None
    in
    go [] parts

type t = {
  name : string;
  mode : mode;
  engine : Grid_sim.Engine.t;
  obs : Grid_obs.Obs.t;
  window : Grid_sim.Clock.time;
  poll_interval : Grid_sim.Clock.time;
  disk : Grid_sim.Disk.t option;
  crl_file : string;
  revoked_jti : (string, Grid_sim.Clock.time) Hashtbl.t;
  revoked_subjects : (string, Grid_sim.Clock.time) Hashtbl.t;
  mutable hooks : (jti:string -> subject:string -> unit) list;
  mutable latencies : Grid_sim.Clock.time list;
  mutable deliveries : int;
  mutable fetches : int;
  mutable polling : bool;
}

let create ~mode ~engine ?(obs = Grid_obs.Obs.noop) ?(token_ttl = 900.0)
    ?(push_window = 1.0) ?(poll_interval = 60.0) ?disk ?(crl_file = "sts-crl")
    ~name () =
  if mode = Pull && disk = None then
    invalid_arg "Validator.create: pull mode needs a disk to fetch the CRL from";
  if token_ttl <= 0.0 || push_window <= 0.0 || poll_interval <= 0.0 then
    invalid_arg "Validator.create: windows must be positive";
  let window =
    match mode with
    | Short_ttl -> token_ttl
    | Push -> push_window
    | Pull -> poll_interval +. 1.0
  in
  { name; mode; engine; obs; window; poll_interval; disk; crl_file;
    revoked_jti = Hashtbl.create 64;
    revoked_subjects = Hashtbl.create 64;
    hooks = [];
    latencies = [];
    deliveries = 0;
    fetches = 0;
    polling = false }

let name t = t.name
let mode t = t.mode
let propagation_window t = t.window
let on_revocation t f = t.hooks <- f :: t.hooks
let entries t = Hashtbl.length t.revoked_jti + Hashtbl.length t.revoked_subjects
let deliveries t = t.deliveries
let fetches t = t.fetches
let enforcement_latencies t = t.latencies

(* Hashtbl entry overhead (bucket slot, boxed float) on top of the key
   bytes — an estimate, but a mode-fair one: both stateful modes pay it
   per entry, short-TTL pays nothing. *)
let entry_overhead = 24

let state_bytes t =
  let table tbl =
    Hashtbl.fold (fun key _ acc -> acc + String.length key + entry_overhead) tbl 0
  in
  table t.revoked_jti + table t.revoked_subjects

let is_revoked t ~jti ~subject =
  match t.mode with
  | Short_ttl -> false
  | Push | Pull -> Hashtbl.mem t.revoked_jti jti || Hashtbl.mem t.revoked_subjects subject

let note_state t =
  Grid_obs.Obs.set_gauge t.obs
    ~labels:[ ("validator", t.name); ("mode", mode_to_string t.mode) ]
    "revocation_state_bytes"
    (float_of_int (state_bytes t))

(* Apply one distributed revocation. The subject record is installed
   alongside the jti so a subject-wide revocation also refuses tokens
   whose jti this validator never saw; enforcement latency is charged
   once per entry, at first sight. *)
let install t ~now e =
  let fresh = not (Hashtbl.mem t.revoked_jti e.jti) in
  if fresh then begin
    Hashtbl.replace t.revoked_jti e.jti e.revoked_at;
    if not (Hashtbl.mem t.revoked_subjects e.subject) then
      Hashtbl.replace t.revoked_subjects e.subject e.revoked_at;
    let latency = Float.max 0.0 (now -. e.revoked_at) in
    t.latencies <- latency :: t.latencies;
    Grid_obs.Obs.incr t.obs
      ~labels:[ ("mode", mode_to_string t.mode) ]
      "revocation_applied_total";
    Grid_obs.Obs.observe t.obs
      ~labels:[ ("mode", mode_to_string t.mode) ]
      "revocation_enforcement_latency_seconds" latency;
    Grid_obs.Obs.emit t.obs ~layer:"sts" "revocation.applied"
      [ ("validator", t.name); ("mode", mode_to_string t.mode); ("jti", e.jti);
        ("subject", e.subject); ("latency", Printf.sprintf "%.6f" latency) ];
    List.iter (fun f -> f ~jti:e.jti ~subject:e.subject) t.hooks
  end

let deliver t ~now entries =
  t.deliveries <- t.deliveries + 1;
  List.iter (install t ~now) entries;
  note_state t

let fetch t =
  match t.disk with
  | None -> ()
  | Some disk ->
    t.fetches <- t.fetches + 1;
    Grid_obs.Obs.incr t.obs "revocation_fetches_total";
    (match Grid_sim.Disk.read disk ~file:t.crl_file with
    | None -> ()
    | Some content -> begin
      match decode_crl content with
      | None -> ()
      | Some entries ->
        let now = Grid_sim.Engine.now t.engine in
        List.iter (install t ~now) entries
    end);
    note_state t

let rec poll_loop t =
  if t.polling then
    Grid_sim.Engine.schedule_after t.engine t.poll_interval (fun () ->
        if t.polling then begin
          fetch t;
          poll_loop t
        end)

let start t =
  if t.mode = Pull && not t.polling then begin
    t.polling <- true;
    poll_loop t
  end

let stop t = t.polling <- false
