(** Trust relations: the STS's exchange configuration.

    A relation states that claims from a given issuer, under given
    claim conditions, exchange for given entitlements — the access-token
    RFC shape (issuer + claim conditions -> entitlements). Two claim
    sources exist: an authenticated GSI identity (the issuer is the CA
    that certified it) and a verified CAS capability (the issuer is the
    community that minted it). *)

type claim_source =
  | Gsi_identity
  | Cas_capability

val claim_source_to_string : claim_source -> string

type relation = {
  rel_name : string;
  source : claim_source;
  issuer : string;
      (** trusted issuer: the CA's DN string for GSI claims, the VO name
          for CAS claims; ["*"] accepts any issuer the claim itself
          verified against *)
  subject_prefix : Grid_gsi.Dn.t;
      (** claim condition: the subject must extend this DN prefix ([[]]
          places no condition) *)
  entitlements : string list;  (** granted action names; [["*"]] = all *)
  max_ttl : Grid_sim.Clock.time;  (** cap on the minted token lifetime *)
  audience : string;  (** audience minted tokens are bound to *)
}

val relation :
  ?source:claim_source ->
  ?issuer:string ->
  ?subject_prefix:Grid_gsi.Dn.t ->
  ?entitlements:string list ->
  ?max_ttl:Grid_sim.Clock.time ->
  ?audience:string ->
  string ->
  relation
(** [relation name] with permissive defaults: GSI claims from any
    issuer, no subject condition, all entitlements, 1 h cap, audience
    ["*"]. *)

val matches :
  relation -> source:claim_source -> issuer:string -> subject:Grid_gsi.Dn.t -> bool

val first_match :
  relation list ->
  source:claim_source ->
  issuer:string ->
  subject:Grid_gsi.Dn.t ->
  relation option
(** Relations are ordered; the first match wins (the RFC's rule list). *)
