(* The Security Token Service: token exchange + revocation distribution. *)

module Dn = Grid_gsi.Dn
module Obs = Grid_obs.Obs

type exchange_error =
  | Claim_invalid of string
  | No_matching_relation of {
      source : Trust.claim_source;
      issuer : string;
      subject : Dn.t;
    }
  | Subject_revoked of Dn.t

let exchange_error_to_string = function
  | Claim_invalid reason -> Printf.sprintf "claim invalid: %s" reason
  | No_matching_relation { source; issuer; subject } ->
    Printf.sprintf "no trust relation matches %s claim from %s for %s"
      (Trust.claim_source_to_string source)
      issuer (Dn.to_string subject)
  | Subject_revoked dn ->
    Printf.sprintf "subject revoked: %s" (Dn.to_string dn)

type refresh_error =
  | Renewal of Grid_gsi.Renewal.error
  | Exchange of exchange_error

let refresh_error_to_string = function
  | Renewal e -> Grid_gsi.Renewal.error_to_string e
  | Exchange e -> exchange_error_to_string e

type issued = {
  i_subject : Dn.t;
  i_not_after : Grid_sim.Clock.time;
}

type t = {
  s_name : string;
  s_ttl : Grid_sim.Clock.time;
  s_mode : Validator.mode;
  mutable relations : Trust.relation list;
  mutable s_epoch : int;
  engine : Grid_sim.Engine.t;
  trust : Grid_gsi.Ca.Trust_store.store;
  obs : Obs.t;
  network : Grid_sim.Network.t;
  disk : Grid_sim.Disk.t;
  push_window : Grid_sim.Clock.time;
  poll_interval : Grid_sim.Clock.time;
  cas_key : Grid_crypto.Keypair.public option;
  key : Grid_crypto.Keypair.t;
  escrow : Grid_gsi.Renewal.t;
  (* jti -> grant; the index revoke_jti and subject-wide revocation walk *)
  issued : (string, issued) Hashtbl.t;
  revoked_jti : (string, Grid_sim.Clock.time) Hashtbl.t;
  revoked_subjects : (string, Grid_sim.Clock.time) Hashtbl.t;
  mutable crl_entries : Validator.entry list;  (* newest first *)
  mutable attached : Validator.t list;
  mutable issue_count : int;
  mutable revocation_count : int;
  mutable counter : int;
  crl_file : string;
}

let create ?(name = "sts") ?(default_ttl = 900.0) ?(mode = Validator.Short_ttl)
    ?relations ?network ?disk ?(push_window = 1.0) ?(poll_interval = 60.0)
    ?cas_key ~engine ~trust ~obs () =
  if default_ttl <= 0.0 then
    invalid_arg "Service.create: default_ttl must be positive";
  let relations =
    match relations with
    | Some rs -> rs
    | None -> [ Trust.relation ~max_ttl:default_ttl (name ^ "-default") ]
  in
  let network =
    match network with
    | Some n -> n
    | None -> Grid_sim.Network.create engine
  in
  let disk =
    match disk with
    | Some d -> d
    | None -> Grid_sim.Disk.create ()
  in
  let key = Grid_crypto.Keypair.generate ~seed_material:("sts|" ^ name) in
  Grid_crypto.Keypair.register key;
  { s_name = name;
    s_ttl = default_ttl;
    s_mode = mode;
    relations;
    s_epoch = 1;
    engine;
    trust;
    obs;
    network;
    disk;
    push_window;
    poll_interval;
    cas_key;
    key;
    escrow = Grid_gsi.Renewal.create ~obs ();
    issued = Hashtbl.create 256;
    revoked_jti = Hashtbl.create 64;
    revoked_subjects = Hashtbl.create 64;
    crl_entries = [];
    attached = [];
    issue_count = 0;
    revocation_count = 0;
    counter = 0;
    crl_file = name ^ "-crl" }

let name t = t.s_name
let mode t = t.s_mode
let public_key t = Grid_crypto.Keypair.public t.key
let epoch t = t.s_epoch
let default_ttl t = t.s_ttl

let propagation_window t =
  match t.s_mode with
  | Validator.Short_ttl -> t.s_ttl
  | Validator.Push -> t.push_window
  | Validator.Pull -> t.poll_interval +. 1.0

let reload t relations =
  t.relations <- relations;
  t.s_epoch <- t.s_epoch + 1;
  Obs.incr t.obs ~labels:[ ("service", t.s_name) ] "sts_reloads_total";
  Obs.emit t.obs ~layer:"sts" "sts.reload"
    [ ("service", t.s_name);
      ("epoch", string_of_int t.s_epoch);
      ("relations", string_of_int (List.length relations)) ]

let next_counter t =
  t.counter <- t.counter + 1;
  t.counter

let fresh_challenge t =
  Printf.sprintf "%s-challenge-%d" t.s_name (next_counter t)

let subject_revoked_at t subject =
  Hashtbl.find_opt t.revoked_subjects (Dn.to_string subject)

(* Mint a token once the claim is verified: relation lookup, TTL cap,
   grant bookkeeping, audit. *)
let mint t ~now ~source ~issuer subject =
  match subject_revoked_at t subject with
  | Some _ -> Error (Subject_revoked subject)
  | None -> begin
    match Trust.first_match t.relations ~source ~issuer ~subject with
    | None -> Error (No_matching_relation { source; issuer; subject })
    | Some rel ->
      let ttl = Float.min t.s_ttl rel.Trust.max_ttl in
      let jti = Printf.sprintf "%s-jti-%d" t.s_name (next_counter t) in
      let token =
        Token.make ~subject ~audience:rel.Trust.audience
          ~entitlements:rel.Trust.entitlements ~jti ~epoch:t.s_epoch
          ~issued_at:now ~not_after:(now +. ttl)
          ~signing_key:(Grid_crypto.Keypair.secret t.key)
      in
      Hashtbl.replace t.issued jti
        { i_subject = subject; i_not_after = token.Token.not_after };
      t.issue_count <- t.issue_count + 1;
      Obs.incr t.obs
        ~labels:[ ("service", t.s_name); ("relation", rel.Trust.rel_name) ]
        "tokens_issued_total";
      Obs.emit t.obs ~layer:"sts" "token.issued"
        [ ("service", t.s_name);
          ("jti", jti);
          ("subject", Dn.to_string subject);
          ("audience", rel.Trust.audience);
          ("relation", rel.Trust.rel_name);
          ("source", Trust.claim_source_to_string source);
          ("epoch", string_of_int t.s_epoch);
          ("not_after", Printf.sprintf "%.6f" token.Token.not_after) ];
      Ok token
  end

(* The claim issuer of a GSI identity is the CA that certified the
   end-entity beneath any proxies. *)
let end_entity_issuer (cred : Grid_gsi.Credential.t) =
  let rec go = function
    | [] -> None
    | (c : Grid_gsi.Cert.t) :: rest ->
      if c.Grid_gsi.Cert.kind = Grid_gsi.Cert.End_entity then
        Some (Dn.to_string c.Grid_gsi.Cert.issuer)
      else go rest
  in
  go cred.Grid_gsi.Credential.chain

let exchange t ~now credential =
  match Grid_gsi.Credential.validate credential ~trust:t.trust ~now with
  | Error e -> Error (Claim_invalid (Grid_gsi.Credential.error_to_string e))
  | Ok subject ->
    let issuer =
      match end_entity_issuer credential with
      | Some i -> i
      | None -> ""
    in
    mint t ~now ~source:Trust.Gsi_identity ~issuer subject

let exchange_capability t ~now ~presenter capability =
  match t.cas_key with
  | None -> Error (Claim_invalid "service holds no CAS community key")
  | Some cas_key -> begin
    match Grid_cas.Capability.verify capability ~cas_key ~presenter ~now with
    | Error e ->
      Error (Claim_invalid (Grid_cas.Capability.verify_error_to_string e))
    | Ok () ->
      mint t ~now ~source:Trust.Cas_capability
        ~issuer:capability.Grid_cas.Capability.vo
        capability.Grid_cas.Capability.holder
  end

let proxy_with_token t ~now identity =
  let credential =
    Grid_gsi.Credential.of_identity identity ~challenge:(fresh_challenge t)
  in
  match exchange t ~now credential with
  | Error e -> Error e
  | Ok token ->
    let lifetime = token.Token.not_after -. now in
    let proxy =
      Grid_gsi.Identity.delegate identity ~now ~lifetime
        ~extensions:[ Token.to_extension token ]
    in
    Ok (proxy, token)

(* Escrow *)

let deposit t ~identity ~authorized_renewers ?max_proxy_lifetime ~now () =
  Grid_gsi.Renewal.deposit t.escrow ~identity ~authorized_renewers
    ?max_proxy_lifetime ~now ()

let refresh t ~now ?lifetime ~owner renewer_credential =
  match subject_revoked_at t owner with
  | Some _ -> Error (Exchange (Subject_revoked owner))
  | None -> begin
    match
      Grid_gsi.Renewal.renew t.escrow ~trust:t.trust ~now ?lifetime ~owner
        renewer_credential
    with
    | Error e -> Error (Renewal e)
    | Ok proxy -> begin
      match proxy_with_token t ~now proxy with
      | Error e -> Error (Exchange e)
      | Ok (tokenized, token) -> Ok (tokenized, token)
    end
  end

(* Revocation + distribution *)

let crl t = List.rev t.crl_entries

let write_crl t =
  let snapshot = Validator.encode_crl (crl t) in
  Grid_sim.Disk.truncate t.disk ~file:t.crl_file;
  Grid_sim.Disk.append t.disk ~file:t.crl_file snapshot;
  ignore (Grid_sim.Disk.sync t.disk ~file:t.crl_file)

let distribute t entries =
  match t.s_mode with
  | Validator.Short_ttl -> ()
  | Validator.Push ->
    List.iter
      (fun v ->
        Grid_sim.Network.send ~link:("sts->" ^ Validator.name v) t.network
          (fun () ->
            Validator.deliver v ~now:(Grid_sim.Engine.now t.engine) entries))
      t.attached
  | Validator.Pull -> write_crl t

let record_revocation t ~now ~jti ~subject =
  let entry =
    { Validator.jti; subject = Dn.to_string subject; revoked_at = now }
  in
  t.crl_entries <- entry :: t.crl_entries;
  t.revocation_count <- t.revocation_count + 1;
  Hashtbl.replace t.revoked_jti jti now;
  Obs.incr t.obs
    ~labels:[ ("service", t.s_name);
              ("mode", Validator.mode_to_string t.s_mode) ]
    "revocation_events_total";
  Obs.emit t.obs ~layer:"sts" "token.revoked"
    [ ("service", t.s_name);
      ("jti", jti);
      ("subject", Dn.to_string subject);
      ("revoked_at", Printf.sprintf "%.6f" now) ];
  entry

let revoke_jti t ~now jti =
  match Hashtbl.find_opt t.issued jti with
  | None -> ()
  | Some grant ->
    if not (Hashtbl.mem t.revoked_jti jti) then begin
      let entry = record_revocation t ~now ~jti ~subject:grant.i_subject in
      distribute t [ entry ]
    end

let revoke_subject t ~now subject =
  let key = Dn.to_string subject in
  if not (Hashtbl.mem t.revoked_subjects key) then begin
    Hashtbl.replace t.revoked_subjects key now;
    (* Every outstanding grant dies, plus a subject-wide entry so
       validators refuse tokens whose jti they never saw minted. *)
    let outstanding =
      Hashtbl.fold
        (fun jti grant acc ->
          if Dn.equal grant.i_subject subject
             && not (Hashtbl.mem t.revoked_jti jti)
          then jti :: acc
          else acc)
        t.issued []
      |> List.sort String.compare
    in
    let entries =
      List.map (fun jti -> record_revocation t ~now ~jti ~subject) outstanding
    in
    let wide =
      record_revocation t ~now ~jti:("subject-revocation:" ^ key) ~subject
    in
    (* The subject-level audit record the monitor's expired-credential
       invariant keys on. *)
    Obs.emit t.obs ~layer:"sts" "credential.revoked"
      [ ("service", t.s_name); ("subject", key);
        ("revoked_at", Printf.sprintf "%.6f" now) ];
    distribute t (entries @ [ wide ])
  end

let outstanding_not_after t subject =
  Hashtbl.fold
    (fun _jti grant acc ->
      if Dn.equal grant.i_subject subject then
        match acc with
        | None -> Some grant.i_not_after
        | Some best -> Some (Float.max best grant.i_not_after)
      else acc)
    t.issued None

(* Validators *)

let attach_validator t ?obs ~name () =
  let obs = match obs with Some o -> o | None -> t.obs in
  let v =
    Validator.create ~mode:t.s_mode ~engine:t.engine ~obs ~token_ttl:t.s_ttl
      ~push_window:t.push_window ~poll_interval:t.poll_interval
      ~disk:t.disk ~crl_file:t.crl_file ~name ()
  in
  t.attached <- v :: t.attached;
  (* A late joiner must not miss earlier revocations: seed push-mode
     state in-band, and arm the pull loop. *)
  (match t.s_mode with
  | Validator.Short_ttl -> ()
  | Validator.Push ->
    let entries = crl t in
    if entries <> [] then
      Grid_sim.Network.send ~link:("sts->" ^ name) t.network (fun () ->
          Validator.deliver v ~now:(Grid_sim.Engine.now t.engine) entries)
  | Validator.Pull -> Validator.start v);
  v

let validators t = t.attached
let quiesce t = List.iter Validator.stop t.attached

let tokens_issued t = t.issue_count
let revocations t = t.revocation_count
let escrow_replacements t = Grid_gsi.Renewal.replacements t.escrow
