(* Trust relations: issuer + claim conditions -> entitlements. *)

type claim_source =
  | Gsi_identity
  | Cas_capability

let claim_source_to_string = function
  | Gsi_identity -> "gsi"
  | Cas_capability -> "cas"

type relation = {
  rel_name : string;
  source : claim_source;
  issuer : string;
  subject_prefix : Grid_gsi.Dn.t;
  entitlements : string list;
  max_ttl : Grid_sim.Clock.time;
  audience : string;
}

let relation ?(source = Gsi_identity) ?(issuer = "*") ?(subject_prefix = [])
    ?(entitlements = [ "*" ]) ?(max_ttl = Grid_sim.Clock.hours 1.0)
    ?(audience = "*") rel_name =
  if max_ttl <= 0.0 then invalid_arg "Trust.relation: max_ttl must be positive";
  { rel_name; source; issuer; subject_prefix; entitlements; max_ttl; audience }

let matches r ~source ~issuer ~subject =
  r.source = source
  && (r.issuer = "*" || String.equal r.issuer issuer)
  && Grid_gsi.Dn.is_prefix r.subject_prefix subject

let first_match relations ~source ~issuer ~subject =
  List.find_opt (fun r -> matches r ~source ~issuer ~subject) relations
