(** The Security Token Service: trust-relation token exchange with a
    revocation layer.

    The service holds the trust relations ({!Trust.relation}), a signing
    key, a MyProxy-style escrow ({!Grid_gsi.Renewal}) for
    refresh-before-expiry, and the revocation registry. Its distribution
    mode decides how revocations reach the validators attached to it:
    pushed in-band over {!Grid_sim.Network}, persisted as a CRL snapshot
    on {!Grid_sim.Disk} for periodic pull, or not at all (stateless
    short-TTL).

    Revocations surface on the wide-event bus twice: as
    ["token.revoked"] (per [jti], the handle the monitor's
    token-revocation invariant tracks) and as ["credential.revoked"]
    (per subject, so the monitor's existing expired-credential invariant
    covers post-revocation token use outside the propagation window with
    no special casing). *)

type t

type exchange_error =
  | Claim_invalid of string
      (** the presented credential or capability failed verification *)
  | No_matching_relation of {
      source : Trust.claim_source;
      issuer : string;
      subject : Grid_gsi.Dn.t;
    }
  | Subject_revoked of Grid_gsi.Dn.t

val exchange_error_to_string : exchange_error -> string

type refresh_error =
  | Renewal of Grid_gsi.Renewal.error
  | Exchange of exchange_error

val refresh_error_to_string : refresh_error -> string

val create :
  ?name:string ->
  ?default_ttl:Grid_sim.Clock.time ->
  ?mode:Validator.mode ->
  ?relations:Trust.relation list ->
  ?network:Grid_sim.Network.t ->
  ?disk:Grid_sim.Disk.t ->
  ?push_window:Grid_sim.Clock.time ->
  ?poll_interval:Grid_sim.Clock.time ->
  ?cas_key:Grid_crypto.Keypair.public ->
  engine:Grid_sim.Engine.t ->
  trust:Grid_gsi.Ca.Trust_store.store ->
  obs:Grid_obs.Obs.t ->
  unit ->
  t
(** Defaults: name ["sts"], 900 s token TTL, [Short_ttl] mode, one
    permissive relation accepting any GSI identity the trust store
    validates. [Push] mode creates its own network when none is given;
    [Pull] mode its own disk. [cas_key] enables capability exchange. *)

val name : t -> string
val mode : t -> Validator.mode
val public_key : t -> Grid_crypto.Keypair.public
val epoch : t -> int
val default_ttl : t -> Grid_sim.Clock.time

val propagation_window : t -> Grid_sim.Clock.time
(** The enforcement bound of the configured mode — what attached
    validators promise and what the safety monitor should allow. *)

val reload : t -> Trust.relation list -> unit
(** Swap the trust relations and bump the epoch (stamped into every
    token minted from then on). *)

val fresh_challenge : t -> string
(** A unique challenge for authenticating an exchange. *)

(** {1 Exchange} *)

val exchange :
  t -> now:Grid_sim.Clock.time -> Grid_gsi.Credential.t ->
  (Token.t, exchange_error) result
(** Exchange an authenticated GSI identity: the credential validates
    against the service's trust store, the certifying CA is the claim
    issuer, and the first matching relation decides entitlements,
    audience and TTL cap. *)

val exchange_capability :
  t ->
  now:Grid_sim.Clock.time ->
  presenter:Grid_gsi.Dn.t ->
  Grid_cas.Capability.t ->
  (Token.t, exchange_error) result
(** Exchange a verified CAS capability; the minting community is the
    claim issuer. Requires [cas_key]. *)

val proxy_with_token :
  t ->
  now:Grid_sim.Clock.time ->
  Grid_gsi.Identity.t ->
  (Grid_gsi.Identity.t * Token.t, exchange_error) result
(** Exchange on behalf of [identity] and delegate a proxy carrying the
    token as a certificate extension. The proxy's lifetime equals the
    token's remaining TTL, so chain expiry and token expiry coincide —
    the alignment the decision cache and the expired-credential
    invariant rest on. *)

(** {1 Escrow (refresh-before-expiry)} *)

val deposit :
  t ->
  identity:Grid_gsi.Identity.t ->
  authorized_renewers:Grid_gsi.Dn.t list ->
  ?max_proxy_lifetime:Grid_sim.Clock.time ->
  now:Grid_sim.Clock.time ->
  unit ->
  [ `Deposited | `Replaced ]
(** Escrow a credential with the service ({!Grid_gsi.Renewal.deposit});
    a replacement of an existing escrow is reported and audited. *)

val refresh :
  t ->
  now:Grid_sim.Clock.time ->
  ?lifetime:Grid_sim.Clock.time ->
  owner:Grid_gsi.Dn.t ->
  Grid_gsi.Credential.t ->
  (Grid_gsi.Identity.t * Token.t, refresh_error) result
(** Draw a fresh proxy of the escrowed identity and a fresh token in one
    step — the refresh-before-expiry path a client runs shortly before
    its current token's [not_after]. A revoked subject cannot refresh. *)

(** {1 Revocation} *)

val revoke_jti : t -> now:Grid_sim.Clock.time -> string -> unit
(** Revoke one grant by token id and distribute per the mode. Unknown
    jtis are ignored. *)

val revoke_subject : t -> now:Grid_sim.Clock.time -> Grid_gsi.Dn.t -> unit
(** Revoke a subject: every outstanding token dies, future exchange and
    refresh refuse, and a subject-wide entry is distributed. *)

val subject_revoked_at : t -> Grid_gsi.Dn.t -> Grid_sim.Clock.time option
val crl : t -> Validator.entry list
(** Every revocation so far, oldest first — the pull snapshot's content. *)

val outstanding_not_after : t -> Grid_gsi.Dn.t -> Grid_sim.Clock.time option
(** Latest [not_after] among the subject's unexpired issued tokens — the
    stateless mode's de-facto enforcement time for that subject. *)

(** {1 Validators} *)

val attach_validator :
  t -> ?obs:Grid_obs.Obs.t -> name:string -> unit -> Validator.t
(** A validator wired for this service's mode: push deliveries arrive
    over the service network on link ["sts-><name>"], pull polling
    starts immediately against the service's CRL file, short-TTL
    validators hold no state. A late joiner is seeded with the
    revocations it missed. *)

val validators : t -> Validator.t list

val quiesce : t -> unit
(** Stop every attached validator's poll loop so the engine can drain. *)

(** {1 Introspection} *)

val tokens_issued : t -> int
val revocations : t -> int
val escrow_replacements : t -> int
